(** E10 — Section 6.1, "Future Multicores": on a hypothetical 64-core
    machine with more cores per unit of off-chip bandwidth, larger
    per-core caches, and hardware-assisted (cheap) migration, O2
    scheduling should pay off for a larger range of working sets. Sweeps
    the same benchmark on {!O2_simcore.Config.future64} and compares the
    speedup band against the 16-core machine's. *)

val run : ?shards:int -> quick:bool -> jobs:int -> Format.formatter -> unit
(** [shards > 0] runs every cell on the windowed sharded engine
    ({!O2_runtime.Engine.create_sharded}) — future64's 8 chips become 8
    logical shards, so 64–256-core topologies stay interactive on
    multi-core hosts. [shards = 0] (the default) uses the serial engine. *)
