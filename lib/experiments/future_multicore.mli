(** E10 — Section 6.1, "Future Multicores": on a hypothetical 64-core
    machine with more cores per unit of off-chip bandwidth, larger
    per-core caches, and hardware-assisted (cheap) migration, O2
    scheduling should pay off for a larger range of working sets. Sweeps
    the same benchmark on {!O2_simcore.Config.future64} and compares the
    speedup band against the 16-core machine's. *)

val run : quick:bool -> jobs:int -> Format.formatter -> unit
