(** The examples/quickstart workload as a catalogue experiment: a bounded,
    deterministic run (each of the 16 cores performs a fixed number of
    annotated 64 KB table scans plus one lock-protected counter update) —
    the demo target for the observability flags.

    [o2sim run quickstart --trace out.json --metrics] records the whole
    run with an {!O2_obs.Recorder}, writes the Perfetto trace, and prints
    the o2top metrics table; the metrics [ops] counter equals the
    CoreTime completed-operation count exactly. [--occupancy], [--heat]
    and [--explain] attach the cache observatory; {!explain} is the
    [o2explain] CLI's everything-on report over the same run. *)

type result = {
  ops : int;
  promotions : int;
  op_migrations : int;
  horizon : int;  (** Virtual cycles until every worker finished. *)
  recorder : O2_obs.Recorder.t option;
}

val iterations : quick:bool -> int
(** Scans per core: 60, or 30 under [quick]. *)

val execute :
  ?recorder_of:(O2_runtime.Engine.t -> O2_obs.Recorder.t) ->
  ?attach:(O2_runtime.Engine.t -> unit) ->
  quick:bool ->
  unit ->
  result
(** Build and run the workload to completion. [recorder_of] (called on
    the fresh engine, before any thread is spawned) attaches the flight
    recorder whose handle comes back in [result.recorder] — used by the
    CLI and by the trace-shape tests. [attach] runs right after, for
    observatory subscriptions whose handles the caller keeps. *)

val run : quick:bool -> obs:Harness.obs -> Format.formatter -> unit
(** Catalogue entry point: run, print the summary, and honour
    [obs.metrics] / [obs.trace] / [obs.occupancy] / [obs.heat] /
    [obs.explain]. *)

val explain : ?top:int -> quick:bool -> Format.formatter -> unit
(** The [o2explain] report: run quickstart with the full observatory
    attached and print the heat table (top [top], default 10), the
    occupancy summary, and every scheduler decision fully explained. *)
