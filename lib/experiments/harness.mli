(** Shared machinery for the paper's experiments: build a machine, run the
    directory workload under a policy, and report steady-state throughput
    in thousands of name resolutions per second (the y-axis of Figure 4). *)

type oscillation = { period : int; divisor : int }
(** Flip the active directory set between full and [full / divisor] every
    [period] cycles (Figure 4(b)). *)

type obs = {
  metrics : bool;  (** Collect/print latency histograms and counters. *)
  trace : string option;  (** Write a Perfetto trace_event JSON here. *)
  trace_sample : int;  (** Keep 1-in-N [Mem] events in the trace ring. *)
  occupancy : bool;  (** Attach the cache observatory's occupancy tracker. *)
  occupancy_interval : int;  (** Cycles between occupancy timeline samples. *)
  heat : bool;  (** Attach per-object heat attribution. *)
  heat_top : int;  (** Rows in the printed heat table. *)
  explain : bool;  (** Record and print scheduler decision provenance. *)
}
(** Observability options threaded from the [o2sim] command line into the
    experiments ({!Registry.run_ids}). *)

val no_obs : obs
(** Everything off: no recorder is attached, probes stay inactive.
    Intervals and counts default to usable values (200_000-cycle
    occupancy sampling, top-10 heat) so flags can be flipped on
    individually. *)

val validate_obs : obs -> (unit, string) result
(** Reject nonsensical knob values with a CLI-ready message:
    [trace_sample <= 0], [occupancy_interval <= 0], [heat_top <= 0]. *)

type point = {
  data_kb : int;  (** Total directory-content size (x-axis). *)
  kres_per_sec : float;  (** Steady-state resolutions/s, in thousands. *)
  ops : int;  (** Resolutions completed in the measured window. *)
  promotions : int;
  op_migrations : int;
  rebalancer_moves : int;
  rebalancer_demotions : int;
  dram_loads : int;  (** During the measured window. *)
  remote_hits : int;
  spin_cycles : int;
  avg_busy : float;  (** Mean per-core busy(+spin) ratio in the window. *)
  metrics : O2_obs.Metrics.t option;
      (** Measured-window latency histograms and counters, when the cell
          asked for them ([collect_metrics]). [None] otherwise, so points
          from plain sweeps still compare structurally. *)
}

type setup = {
  cfg : O2_simcore.Config.t;
  policy : Coretime.Policy.t;
  spec : O2_workload.Dir_workload.spec;
  warmup : int;  (** Cycles before the measured window. *)
  measure : int;  (** Cycles measured. *)
  oscillation : oscillation option;
  threads_per_core : int;
  placement : int array option;
      (** Explicit thread placement (defaults to one worker per core). *)
  collect_metrics : bool;
      (** Attach a metrics-only {!O2_obs.Recorder} for the measured
          window and return its registry in [point.metrics]. *)
  shards : int;
      (** [0] (the default) runs the classic serial engine. [>= 1] runs
          the windowed sharded engine
          ({!O2_runtime.Engine.create_sharded}) with
          [min shards chips] worker domains. Windowed results are
          bit-identical for every [shards >= 1] but are {e not}
          comparable with serial-engine numbers: cross-chip coherence is
          windowed instead of instantaneous (DESIGN.md, "Sharded
          time"). Incompatible with [collect_metrics] and [attach]. *)
}

val setup :
  ?cfg:O2_simcore.Config.t ->
  ?policy:Coretime.Policy.t ->
  ?warmup:int ->
  ?measure:int ->
  ?oscillation:oscillation ->
  ?threads_per_core:int ->
  ?placement:int array ->
  ?collect_metrics:bool ->
  ?shards:int ->
  O2_workload.Dir_workload.spec ->
  setup
(** Defaults: {!O2_simcore.Config.amd16}, {!Coretime.Policy.default},
    40 M cycles warmup, 40 M measured, no oscillation, 1 thread/core,
    no metrics, serial engine ([shards = 0]).
    @raise Invalid_argument if [shards < 0]. *)

val run : ?attach:(O2_runtime.Engine.t -> unit) -> setup -> point
(** Build everything, warm up, measure, and tear down. Deterministic in
    the spec's seed. Pure per cell: no state shared with other [run]s, so
    cells may run on separate domains.

    [attach] is called on the fresh engine before the workload is built —
    the hook for subscribing an {!O2_obs.Recorder} that should see the
    whole run (traces). Listeners must observe only; they run inline with
    the simulation. *)

val effective_jobs : jobs:int -> int
(** [jobs] clamped to [Domain.recommended_domain_count ()] — oversubscribing
    domains only slows an embarrassingly parallel sweep down. Logs to
    stderr (once per process) when it clamps. *)

val run_cells :
  ?attach:(int -> O2_runtime.Engine.t -> unit) ->
  jobs:int ->
  setup list ->
  point list
(** Run independent cells through a domain pool of
    [effective_jobs ~jobs] workers ({!O2_runtime.Domain_pool});
    [jobs = 1] is plain sequential [run]. Results are in input order and
    bit-identical whatever [jobs] is.

    [attach i engine] is each cell's {!run}[ ~attach] hook with the cell's
    input-order index — observatory sweeps use it to file per-cell
    trackers in caller-side slots (each worker touches only its own
    index; the pool joins before the caller reads). *)

val scaled : quick:bool -> int -> int
(** Scale a cycle horizon down (x1/4) in quick mode. *)

val kb_ladder : quick:bool -> int list
(** The Figure 4 x-axis: 256 KB .. 20 MB (fewer points when [quick]). *)

val ratio_summary :
  with_ct:O2_stats.Series.t -> without_ct:O2_stats.Series.t -> string
(** Human-readable comparison: speedup in the beyond-L3 region, parity
    region, crossover points — the claims Section 5 makes about Figure 4. *)
