(** The experiment catalogue: every paper figure/table plus the ablations,
    addressable by id from the benchmark harness and the CLI. *)

type exp = {
  id : string;
  title : string;
  paper_ref : string;  (** Where in the paper this comes from. *)
  default_set : bool;  (** Run when no ids are given (the paper's own
                           figures and tables). *)
  run :
    quick:bool ->
    jobs:int ->
    obs:Harness.obs ->
    shards:int ->
    Format.formatter ->
    unit;
}

val all : exp list
val find : string -> exp option
val ids : unit -> string list

val run_ids :
  ?obs:Harness.obs ->
  ?shards:int ->
  quick:bool ->
  jobs:int ->
  Format.formatter ->
  string list ->
  (unit, string) result
(** Run the named experiments in catalogue order ([Error] lists unknown
    ids without running anything). An empty list runs the default set.
    [jobs] is the domain-pool width for experiments that parallelise
    their independent cells; [jobs = 1] runs everything sequentially with
    bit-identical output. [obs] (default {!Harness.no_obs}) carries the
    [--metrics] / [--trace] / [--trace-sample] flags to the experiments
    that support them (quickstart, the figures, and some ablations);
    the others ignore it. [shards] (default 0 = serial engine) runs each
    cell of the figure-4 sweeps and the {!Harness.setup}-based ablations
    on the windowed sharded engine ({!Harness.setup}'s [shards]); output
    is bit-identical for any [shards >= 1], intentionally different from
    serial output, and incompatible with [obs]; the other experiments
    ignore it. *)
