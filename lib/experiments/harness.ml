open O2_simcore
open O2_workload

type oscillation = { period : int; divisor : int }

type obs = {
  metrics : bool;
  trace : string option;
  trace_sample : int;
  occupancy : bool;
  occupancy_interval : int;
  heat : bool;
  heat_top : int;
  explain : bool;
}

let no_obs =
  {
    metrics = false;
    trace = None;
    trace_sample = 1;
    occupancy = false;
    occupancy_interval = 200_000;
    heat = false;
    heat_top = 10;
    explain = false;
  }

let validate_obs o =
  if o.trace_sample <= 0 then
    Error
      (Printf.sprintf
         "--trace-sample must be >= 1 (got %d): 1 keeps every memory event, \
          N keeps 1-in-N"
         o.trace_sample)
  else if o.occupancy_interval <= 0 then
    Error
      (Printf.sprintf
         "--occupancy-interval must be >= 1 cycle (got %d)"
         o.occupancy_interval)
  else if o.heat_top <= 0 then
    Error (Printf.sprintf "--heat-top must be >= 1 (got %d)" o.heat_top)
  else Ok ()

type point = {
  data_kb : int;
  kres_per_sec : float;
  ops : int;
  promotions : int;
  op_migrations : int;
  rebalancer_moves : int;
  rebalancer_demotions : int;
  dram_loads : int;
  remote_hits : int;
  spin_cycles : int;
  avg_busy : float;
  metrics : O2_obs.Metrics.t option;
}

type setup = {
  cfg : Config.t;
  policy : Coretime.Policy.t;
  spec : Dir_workload.spec;
  warmup : int;
  measure : int;
  oscillation : oscillation option;
  threads_per_core : int;
  placement : int array option;
  collect_metrics : bool;
  shards : int;
      (* 0 = the classic serial engine; >= 1 = the windowed sharded
         engine with min(shards, chips) worker domains. Results under
         the windowed engine are bit-identical for every shards >= 1
         (the logical partition is always one shard per chip), but
         differ from the serial engine, whose cross-chip coherence is
         instantaneous rather than windowed. *)
}

let setup ?(cfg = Config.amd16) ?(policy = Coretime.Policy.default)
    ?(warmup = 40_000_000) ?(measure = 40_000_000) ?oscillation
    ?(threads_per_core = 1) ?placement ?(collect_metrics = false) ?(shards = 0)
    spec =
  if shards < 0 then invalid_arg "Harness.setup: shards must be >= 0";
  {
    cfg;
    policy;
    spec;
    warmup;
    measure;
    oscillation;
    threads_per_core;
    placement;
    collect_metrics;
    shards;
  }

let sum_counters counters field =
  Array.fold_left (fun acc c -> acc + field c) 0 counters

let run ?attach s =
  if s.shards > 0 && (Option.is_some attach || s.collect_metrics) then
    invalid_arg
      "Harness.run: observation (attach/metrics) requires the serial engine; \
       sharded cells keep probes inactive";
  let machine = Machine.create s.cfg in
  let engine =
    if s.shards > 0 then
      O2_runtime.Engine.create_sharded machine ~shards:s.shards
    else O2_runtime.Engine.create machine
  in
  let ct = Coretime.create ~policy:s.policy engine () in
  (match attach with Some f -> f engine | None -> ());
  let w = Dir_workload.build ct s.spec in
  (match s.placement with
  | Some placement -> Dir_workload.spawn_threads_placed w placement
  | None ->
      for _ = 1 to s.threads_per_core do
        Dir_workload.spawn_threads w
      done);
  (match s.oscillation with
  | Some { period; divisor } ->
      Phase.oscillate_active engine w ~period ~divisor
  | None -> ());
  O2_runtime.Engine.run ~until:s.warmup engine;
  let counters = Machine.all_counters machine in
  O2_runtime.Engine.finalize_idle engine;
  let snap = Array.map Counters.copy counters in
  let ct_snap_promotions = (Coretime.stats ct).Coretime.promotions in
  let ct_snap_migrations = (Coretime.stats ct).Coretime.op_migrations in
  let rb = Coretime.Rebalancer.stats (Coretime.rebalancer ct) in
  let rb_snap_moves = rb.Coretime.Rebalancer.moves in
  let rb_snap_demotions = rb.Coretime.Rebalancer.demotions in
  (* Metrics cover only the measured window: subscribe after warmup.
     Histogram/counter mode only — no event ring, no span storage — so the
     per-cell memory cost is a few registry entries. The recorder observes
     without mutating simulator state, so points stay bit-identical. *)
  let recorder =
    if s.collect_metrics then
      Some
        (O2_obs.Recorder.attach ~ring_capacity:0 ~span_capacity:0 ~sample_mem:0
           engine)
    else None
  in
  O2_runtime.Engine.run ~until:(s.warmup + s.measure) engine;
  O2_runtime.Engine.finalize_idle engine;
  let delta =
    Array.map2 (fun c sn -> Counters.diff c ~since:sn) counters snap
  in
  let ops = sum_counters delta (fun c -> c.Counters.ops_completed) in
  let seconds = float_of_int s.measure /. (s.cfg.Config.ghz *. 1e9) in
  let busy_sum =
    Array.fold_left
      (fun acc c ->
        acc
        +. (float_of_int (c.Counters.busy_cycles + c.Counters.spin_cycles)
           /. float_of_int s.measure))
      0.0 delta
  in
  {
    data_kb = Dir_workload.data_kb s.spec;
    kres_per_sec = float_of_int ops /. seconds /. 1000.0;
    ops;
    promotions = (Coretime.stats ct).Coretime.promotions - ct_snap_promotions;
    op_migrations =
      (Coretime.stats ct).Coretime.op_migrations - ct_snap_migrations;
    rebalancer_moves = rb.Coretime.Rebalancer.moves - rb_snap_moves;
    rebalancer_demotions =
      rb.Coretime.Rebalancer.demotions - rb_snap_demotions;
    dram_loads = sum_counters delta (fun c -> c.Counters.dram_loads);
    remote_hits = sum_counters delta (fun c -> c.Counters.remote_hits);
    spin_cycles = sum_counters delta (fun c -> c.Counters.spin_cycles);
    avg_busy = busy_sum /. float_of_int (Config.cores s.cfg);
    metrics = Option.map O2_obs.Recorder.metrics recorder;
  }

(* [run] builds everything fresh — machine, engine, coretime, workload —
   and reads no shared mutable state, so independent cells can run on
   separate domains; results come back in input order and are bit-identical
   to a sequential run (each cell's RNG seeding depends only on its own
   spec). *)
(* More worker domains than hardware cores never helps an embarrassingly
   parallel sweep, so requests clamp to the detected core count through
   the shared [Domain_pool.clamped] (which owns the noisy diagnostic). *)
let effective_jobs ~jobs = O2_runtime.Domain_pool.clamped ~what:"harness" jobs

let run_cells ?attach ~jobs setups =
  match attach with
  | None ->
      O2_runtime.Domain_pool.map ~jobs:(effective_jobs ~jobs) (fun s -> run s)
        setups
  | Some attach ->
      (* Pair each cell with its index so the per-cell hook can file what it
         attached (e.g. an occupancy tracker) in a caller-side slot. Each
         worker writes only its own slots, and the pool joins before the
         caller reads them. *)
      let indexed = List.mapi (fun i s -> (i, s)) setups in
      O2_runtime.Domain_pool.map ~jobs:(effective_jobs ~jobs)
        (fun (i, s) -> run ~attach:(attach i) s)
        indexed

let scaled ~quick cycles = if quick then cycles / 4 else cycles

let kb_ladder ~quick =
  if quick then [ 256; 1024; 2048; 4096; 8192; 16384; 20480 ]
  else
    [ 256; 512; 1024; 1536; 2048; 3072; 4096; 6144; 8192; 10240; 12288; 16384; 20480 ]

let ratio_summary ~with_ct ~without_ct =
  let open O2_stats in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let ratio = Series.ratio ~num:with_ct ~den:without_ct in
  let region lo hi =
    let rs =
      List.filter
        (fun p -> p.Series.x >= float_of_int lo && p.Series.x <= float_of_int hi)
        ratio.Series.points
    in
    match Summary.of_list (List.map (fun p -> p.Series.y) rs) with
    | None -> None
    | Some s -> Some s
  in
  (match region 3072 16384 with
  | Some s ->
      add "beyond-L3 region (3MB..16MB): CoreTime/baseline = %.2fx mean (min %.2fx, max %.2fx)"
        s.Summary.mean s.Summary.min s.Summary.max
  | None -> ());
  (match region 512 2048 with
  | Some s ->
      add "fits-in-L3 region (512KB..2MB): CoreTime/baseline = %.2fx mean"
        s.Summary.mean
  | None -> ());
  (match Series.crossover ~a:with_ct ~b:without_ct with
  | Some x -> add "curves cross near %.0f KB" x
  | None -> add "no crossover within the sweep");
  Buffer.contents buf
