(* The native-backend experiment: the one table in the catalogue whose
   numbers are wall-clock, not simulated cycles.

   Two halves, always printed together so neither can be quoted without
   the other: (1) the simulator-as-oracle cross-check — the same kv/dir
   programs on both backends must agree bit-for-bit (O2_native.Oracle) —
   and (2) measured ops/sec for the same workloads on real domains
   across a 1/2/4 ladder. The ladder is taken literally (no clamp): on a
   host with fewer cores the extra domains time-share and the curve goes
   flat or down, which is itself the honest number — the CLI's --domains
   flag is what clamps (O2_runtime.Domain_pool.clamped). *)

module NB = O2_native.Native_backend
module Kv = O2_native.Backend_kv.Make (O2_native.Native_backend)
module Dir = O2_native.Backend_dir.Make (O2_native.Native_backend)
module Op = O2_native.Op_program
module Oracle = O2_native.Oracle
module Tel = O2_runtime.Telemetry

type row = {
  workload : string;
  domains : int;
  clients : int;
  ops : int;  (** Completed backend ops, from the backend's own counter. *)
  seconds : float;
  ops_per_sec : float;
  p50_ns : float;  (** Submit-to-end wall-clock latency percentiles... *)
  p99_ns : float;  (** ...from metrics-only telemetry (no ring traffic) *)
  p999_ns : float;  (** left attached during the measured window. *)
}

(* Submit-to-end latency across home and shipped ops, merged over every
   sink — the telemetry stays in metrics-only mode (ring_capacity 0),
   so the percentiles cost two clock reads per op, not a trace. *)
let latency_hist tel =
  let m = O2_obs.Native_tel.metrics tel in
  let h = O2_obs.Hist.create () in
  O2_obs.Hist.merge_into ~into:h (O2_obs.Metrics.hist m "op_ns/home");
  O2_obs.Hist.merge_into ~into:h (O2_obs.Metrics.hist m "op_ns/shipped");
  h

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Result sink: each client folds its op results into its own slot so
   nothing is dead code, without cross-client synchronization. *)
let fold_sink sinks c acc = sinks.(c) <- sinks.(c) lxor acc

let kv_throughput ~domains ~clients ~ops_per_client ~rounds =
  let tel = Tel.create ~ring_capacity:0 ~sample:0 ~domains () in
  let b = NB.create ~telemetry:tel ~domains () in
  Fun.protect
    ~finally:(fun () -> NB.shutdown b)
    (fun () ->
      let store =
        Kv.create b ~name:"kv" ~buckets:64 ~slots_per_bucket:32 ()
      in
      let sinks = Array.make clients 0 in
      let round r =
        for c = 0 to clients - 1 do
          let prog =
            Op.kv_program ~clients ~client:c ~ops:ops_per_client
              ~keyspace:1024 ~seed:(811 + (97 * r))
          in
          NB.spawn b ~core:(c mod domains) ~name:"kv-client" (fun () ->
              let acc = ref 0 in
              Array.iter
                (fun op ->
                  let raw =
                    match op with
                    | Op.Get k -> Kv.get store ~key:k
                    | Op.Put (k, v) ->
                        if Kv.put store ~key:k ~value:v then 1 else 0
                    | Op.Delete k -> if Kv.delete store ~key:k then 1 else 0
                  in
                  acc := !acc lxor Op.kv_result op ~raw)
                prog;
              fold_sink sinks c !acc)
        done;
        NB.run b
      in
      let (), seconds =
        time (fun () ->
            for r = 0 to rounds - 1 do
              round r;
              if r < rounds - 1 then NB.rebalance b
            done)
      in
      ignore (Sys.opaque_identity sinks);
      let ops = NB.ops_completed b in
      let lat = latency_hist tel in
      {
        workload = "kv_store";
        domains;
        clients;
        ops;
        seconds;
        ops_per_sec = (if seconds > 0. then float_of_int ops /. seconds else nan);
        p50_ns = O2_obs.Hist.p50 lat;
        p99_ns = O2_obs.Hist.p99 lat;
        p999_ns = O2_obs.Hist.p999 lat;
      })

let dir_throughput ~domains ~clients ~ops_per_client ~rounds =
  let tel = Tel.create ~ring_capacity:0 ~sample:0 ~domains () in
  let b = NB.create ~telemetry:tel ~domains () in
  Fun.protect
    ~finally:(fun () -> NB.shutdown b)
    (fun () ->
      let fs =
        Dir.create b ~name:"dir" ~dirs:24 ~entries_per_dir:48 ()
      in
      let sinks = Array.make clients 0 in
      let round r =
        for c = 0 to clients - 1 do
          let prog =
            Op.dir_program ~dirs:24 ~entries_per_dir:48 ~ops:ops_per_client
              ~seed:(131 * ((r * clients) + c + 1))
          in
          NB.spawn b ~core:(c mod domains) ~name:"dir-client" (fun () ->
              let acc = ref 0 in
              Array.iter
                (fun (dir, key) -> acc := !acc lxor Dir.lookup fs ~dir ~key)
                prog;
              fold_sink sinks c !acc)
        done;
        NB.run b
      in
      let (), seconds =
        time (fun () ->
            for r = 0 to rounds - 1 do
              round r;
              if r < rounds - 1 then NB.rebalance b
            done)
      in
      ignore (Sys.opaque_identity sinks);
      let ops = NB.ops_completed b in
      let lat = latency_hist tel in
      {
        workload = "dir_workload";
        domains;
        clients;
        ops;
        seconds;
        ops_per_sec = (if seconds > 0. then float_of_int ops /. seconds else nan);
        p50_ns = O2_obs.Hist.p50 lat;
        p99_ns = O2_obs.Hist.p99 lat;
        p999_ns = O2_obs.Hist.p999 lat;
      })

let ladder ~extra =
  let base = [ 1; 2; 4 ] in
  if extra > 0 && not (List.mem extra base) then base @ [ extra ] else base

let measure ~quick ~domains () =
  let kv_ops = Harness.scaled ~quick 20_000
  and dir_ops = Harness.scaled ~quick 20_000 in
  List.concat_map
    (fun d ->
      [
        kv_throughput ~domains:d ~clients:8 ~ops_per_client:kv_ops ~rounds:3;
        dir_throughput ~domains:d ~clients:8 ~ops_per_client:dir_ops ~rounds:2;
      ])
    (ladder ~extra:domains)

let oracle_reports ~domains =
  List.concat_map
    (fun d ->
      [
        ("kv_store", Oracle.kv_cross_check ~domains:d ());
        ("dir_workload", Oracle.dir_cross_check ~domains:d ());
      ])
    (ladder ~extra:domains)

let print_rows ppf rows =
  Format.fprintf ppf "  %-13s %8s %8s %10s %9s %12s %9s %9s %9s@." "workload"
    "domains" "clients" "ops" "seconds" "ops/sec" "p50(ns)" "p99(ns)"
    "p999(ns)";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-13s %8d %8d %10d %9.3f %12.0f %9.0f %9.0f %9.0f@."
        r.workload r.domains r.clients r.ops r.seconds r.ops_per_sec r.p50_ns
        r.p99_ns r.p999_ns)
    rows

let run ~quick ~domains ppf =
  Format.fprintf ppf "== Native backend: real domains, wall-clock ops/sec ==@.";
  Format.fprintf ppf
    "   (paper section 3: the O2 model is meant to run on real cores;@.";
  Format.fprintf ppf
    "    the simulator stays the oracle — same programs, same results)@.@.";
  Format.fprintf ppf "  oracle cross-check (simulator vs native):@.";
  let oracle = oracle_reports ~domains in
  List.iter
    (fun (w, r) ->
      Format.fprintf ppf "    %-13s %a@." w Oracle.pp_report r)
    oracle;
  let ok = List.for_all (fun (_, r) -> r.Oracle.ok) oracle in
  Format.fprintf ppf "@.  throughput (host has %d core(s)):@."
    (O2_runtime.Domain_pool.default_jobs ());
  let rows = measure ~quick ~domains () in
  print_rows ppf rows;
  if not ok then
    Format.fprintf ppf "@.  ORACLE MISMATCH — the table above is suspect@.";
  Format.fprintf ppf "@.";
  (ok, oracle, rows)

(* Hand-rolled JSON, matching BENCH_fig4.json's style (no json dep). *)
let json ~quick ~oracle ~rows =
  let row_json r =
    Printf.sprintf
      "    {\"workload\": \"%s\", \"domains\": %d, \"clients\": %d, \"ops\": \
       %d, \"seconds\": %.3f, \"ops_per_sec\": %.0f, \"p50_ns\": %.0f, \
       \"p99_ns\": %.0f, \"p999_ns\": %.0f}"
      r.workload r.domains r.clients r.ops r.seconds r.ops_per_sec r.p50_ns
      r.p99_ns r.p999_ns
  in
  let oracle_json (w, r) =
    Printf.sprintf
      "    {\"workload\": \"%s\", \"domains\": %d, \"ok\": %b, \"total_ops\": \
       %d, \"ships_out\": %d, \"ships_in\": %d, \"migrations\": %d, \
       \"steals\": %d}"
      w r.Oracle.domains r.Oracle.ok r.Oracle.total_ops
      (fst r.Oracle.native_ships) (snd r.Oracle.native_ships)
      r.Oracle.native_migrations r.Oracle.native_steals
  in
  String.concat "\n"
    ([
       "{";
       "  \"benchmark\": \"native backend wall-clock ops/sec\",";
       "  \"latency_unit\": \"wall-clock ns\",";
       Printf.sprintf "  \"quick\": %b," quick;
       Printf.sprintf "  \"available_cores\": %d,"
         (O2_runtime.Domain_pool.default_jobs ());
       Printf.sprintf "  \"oracle_ok\": %b,"
         (List.for_all (fun (_, r) -> r.Oracle.ok) oracle);
       "  \"oracle\": [";
     ]
    @ [ String.concat ",\n" (List.map oracle_json oracle) ]
    @ [ "  ],"; "  \"rows\": [" ]
    @ [ String.concat ",\n" (List.map row_json rows) ]
    @ [ "  ]"; "}"; "" ])

let write_json ~path ~quick ~oracle ~rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json ~quick ~oracle ~rows))

(* The observed cell: one kv run with the full flight recorder attached
   — ring events on, op spans sampled 1-in-[sample] — feeding the o2top
   readout, the per-domain table, and the Perfetto export. Deliberately
   separate from the measured ladder above, whose telemetry stays
   metrics-only so ring traffic never contaminates the throughput
   numbers. *)
let observed_cell ~quick ~domains ~sample ~metrics ~trace ppf =
  let tel = Tel.create ~ring_capacity:(1 lsl 18) ~sample ~domains () in
  let b = NB.create ~telemetry:tel ~domains () in
  Fun.protect
    ~finally:(fun () -> NB.shutdown b)
    (fun () ->
      let store =
        Kv.create b ~name:"kv" ~buckets:64 ~slots_per_bucket:32 ()
      in
      let clients = 8 in
      let ops_per_client = Harness.scaled ~quick 4_000 in
      let rounds = 3 in
      let sinks = Array.make clients 0 in
      for r = 0 to rounds - 1 do
        for c = 0 to clients - 1 do
          let prog =
            Op.kv_program ~clients ~client:c ~ops:ops_per_client
              ~keyspace:1024 ~seed:(499 + (31 * r))
          in
          NB.spawn b ~core:(c mod domains) ~name:"kv-client" (fun () ->
              let acc = ref 0 in
              Array.iter
                (fun op ->
                  let raw =
                    match op with
                    | Op.Get k -> Kv.get store ~key:k
                    | Op.Put (k, v) ->
                        if Kv.put store ~key:k ~value:v then 1 else 0
                    | Op.Delete k -> if Kv.delete store ~key:k then 1 else 0
                  in
                  acc := !acc lxor Op.kv_result op ~raw)
                prog;
              fold_sink sinks c !acc)
        done;
        NB.run b;
        if r < rounds - 1 then NB.rebalance b
      done;
      ignore (Sys.opaque_identity sinks);
      if metrics then begin
        Format.fprintf ppf
          "  observed cell (kv_store, %d domain(s), flight recorder \
           attached):@.@."
          domains;
        Format.pp_print_string ppf
          (O2_obs.O2top.render ~units:"wall-clock ns"
             (O2_obs.Native_tel.metrics tel));
        Format.fprintf ppf "@.-- per-domain breakdown --@.";
        Format.pp_print_string ppf (O2_obs.Native_tel.domain_table tel);
        Format.fprintf ppf "@."
      end;
      Option.iter
        (fun path ->
          O2_obs.Native_trace.write_file tel ~path;
          Format.fprintf ppf
            "  wrote native Perfetto trace to %s (wall-clock ns, one track \
             per domain + coordinator)@."
            path)
        trace)

let run_cli ~quick ~domains ~json:json_path ~metrics ~trace ~trace_sample ppf =
  let domains = O2_runtime.Domain_pool.clamped ~what:"--domains" domains in
  let ok, oracle, rows = run ~quick ~domains ppf in
  if metrics || trace <> None then
    observed_cell ~quick ~domains ~sample:trace_sample ~metrics ~trace ppf;
  Option.iter
    (fun path ->
      write_json ~path ~quick ~oracle ~rows;
      Format.fprintf ppf "  wrote %s@." path)
    json_path;
  ok
