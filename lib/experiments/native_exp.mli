(** The native-backend experiment: oracle cross-check plus measured
    (wall-clock) ops/sec on real OCaml 5 domains.

    Unlike every other table in the catalogue these numbers are host
    time, not simulated cycles, so they vary run to run and machine to
    machine; the oracle half — identical logical results on both
    backends — is the part CI gates on. The domain ladder [1; 2; 4] is
    taken literally (oversubscribed domains time-share, honestly
    flattening the curve); only the CLI's --domains flag clamps, via
    {!O2_runtime.Domain_pool.clamped}. *)

type row = {
  workload : string;  (** "kv_store" or "dir_workload". *)
  domains : int;
  clients : int;
  ops : int;  (** Completed backend ops, from the backend's counter. *)
  seconds : float;
  ops_per_sec : float;
  p50_ns : float;
      (** Submit-to-end wall-clock latency percentiles (home and shipped
          ops merged), from metrics-only telemetry left attached during
          the measured window — two clock reads per op, no ring
          traffic. *)
  p99_ns : float;
  p999_ns : float;
}

val measure : quick:bool -> domains:int -> unit -> row list
(** Throughput rows for both workloads at domains [1; 2; 4] plus
    [domains] when distinct. [quick] quarters the per-client op count. *)

val oracle_reports :
  domains:int -> (string * O2_native.Oracle.report) list
(** Simulator-vs-native cross-checks over the same ladder. *)

val run :
  quick:bool ->
  domains:int ->
  Format.formatter ->
  bool * (string * O2_native.Oracle.report) list * row list
(** Print the experiment (oracle table then throughput table); the
    returned bool is the conjunction of oracle [ok]s. *)

val write_json :
  path:string ->
  quick:bool ->
  oracle:(string * O2_native.Oracle.report) list ->
  rows:row list ->
  unit
(** BENCH_native.json: oracle verdicts and throughput rows. *)

val observed_cell :
  quick:bool ->
  domains:int ->
  sample:int ->
  metrics:bool ->
  trace:string option ->
  Format.formatter ->
  unit
(** One kv run with the full flight recorder attached (ring capacity
    2^18, op spans sampled 1-in-[sample]); with [metrics] prints the
    o2top latency/counter readout (unit-labeled wall-clock ns) and the
    per-domain breakdown, with [trace] writes the Perfetto export.
    Separate from {!measure}'s ladder, whose telemetry stays
    metrics-only so ring traffic never touches the throughput rows. *)

val run_cli :
  quick:bool ->
  domains:int ->
  json:string option ->
  metrics:bool ->
  trace:string option ->
  trace_sample:int ->
  Format.formatter ->
  bool
(** The [o2sim run --backend native] entry point: clamps [domains]
    through {!O2_runtime.Domain_pool.clamped}, runs {!run}, then the
    {!observed_cell} when [metrics] or [trace] ask for it, and writes
    [json] when given. Returns the oracle verdict — callers should exit
    nonzero on [false]. *)
