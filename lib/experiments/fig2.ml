open O2_simcore
open O2_workload

type snapshot = {
  scheduler : string;
  per_cache : (string * string list) list;
  off_chip : string list;
  distinct_lines : int;
  throughput : float;
}

(* The toy machine's exclusive caches hold 36 KB in aggregate; 32 1-KB
   directories make partitioning matter the way the paper's twenty do
   against its (smaller) cartoon caches. *)
let spec =
  {
    Dir_workload.default_spec with
    dirs = 32;
    entries_per_dir = 32;  (* 1 KB per directory *)
    cluster_bytes = 512;
    think_cycles = 50;
  }

(* Fraction of a directory's lines resident in one cache. *)
let residency machine fs d cache =
  let cfg = Machine.cfg machine in
  let line_bytes = cfg.Config.line_bytes in
  let img = O2_fs.Fat.image fs in
  let cluster_bytes = O2_fs.Fat_image.cluster_bytes img in
  let total = ref 0 and present = ref 0 in
  List.iter
    (fun cluster ->
      let base = O2_fs.Fat_image.cluster_addr img cluster in
      for l = base / line_bytes to (base + cluster_bytes - 1) / line_bytes do
        incr total;
        if Cache.contains cache l then incr present
      done)
    (O2_fs.Fat.dir_clusters fs d);
  if !total = 0 then 0.0 else float_of_int !present /. float_of_int !total

(* Directories here are only 16 lines, so "expensive to fetch" must mean
   a few misses per operation, not the default tuned for 32 KB objects. *)
let o2_policy =
  {
    Coretime.Policy.default with
    Coretime.Policy.promote_threshold = 4.0;
    promote_min_ops = 2;
    (* a static snapshot wants a stable partition: spread at promotion
       time instead of repairing with the monitor afterwards *)
    placement = Coretime.Policy.Least_loaded;
    rebalance = false;
  }

let run_one ~policy ~scheduler =
  let horizon = 30_000_000 in
  let machine = Machine.create Config.small4 in
  let engine = O2_runtime.Engine.create machine in
  let ct = Coretime.create ~policy engine () in
  let w = Dir_workload.build ct spec in
  Dir_workload.spawn_threads w;
  O2_runtime.Engine.run ~until:horizon engine;
  let fs = Dir_workload.fs w in
  let caches = Machine.all_caches machine in
  let dir_names = List.init spec.Dir_workload.dirs (Printf.sprintf "d%d") in
  let per_cache =
    List.map
      (fun cache ->
        let resident =
          List.filteri
            (fun i _ ->
              residency machine fs (Dir_workload.directory w i) cache >= 0.5)
            dir_names
        in
        (Cache.name cache, resident))
      caches
  in
  let off_chip =
    List.filteri
      (fun i _ ->
        List.for_all
          (fun cache ->
            residency machine fs (Dir_workload.directory w i) cache < 0.5)
          caches)
      dir_names
  in
  {
    scheduler;
    per_cache;
    off_chip;
    distinct_lines = Machine.distinct_cached_lines machine;
    throughput =
      float_of_int (Dir_workload.lookups_done w)
      /. (float_of_int horizon /. (Config.small4.Config.ghz *. 1e9))
      /. 1000.0;
  }

let print_snapshot ppf s =
  Format.fprintf ppf "--- %s ---@." s.scheduler;
  List.iter
    (fun (cache, dirs) ->
      Format.fprintf ppf "%-10s: %s@." cache
        (if dirs = [] then "-" else String.concat " " dirs))
    s.per_cache;
  Format.fprintf ppf "off-chip  : %s@."
    (if s.off_chip = [] then "(none)" else String.concat " " s.off_chip);
  Format.fprintf ppf "distinct lines on chip: %d; throughput %.0f kres/s@.@."
    s.distinct_lines s.throughput

let fig2 ?quick:_ ?(jobs = 1) ppf =
  Format.fprintf ppf
    "@.=== Figure 2: cache contents, thread scheduler vs O2 scheduler ===@.";
  Format.fprintf ppf
    "(small 4-core machine: 1KB L1 / 4KB L2 per core, 16KB L3; thirty-two \
     1KB directories)@.@.";
  (* the two snapshots are independent cells: run them through the pool *)
  let snaps =
    O2_runtime.Domain_pool.map ~jobs
      (fun (policy, scheduler) -> run_one ~policy ~scheduler)
      [
        (Coretime.Policy.baseline, "(a) Thread scheduler");
        (o2_policy, "(b) O2 scheduler");
      ]
  in
  let thread_sched, o2 =
    match snaps with [ a; b ] -> (a, b) | _ -> assert false
  in
  print_snapshot ppf thread_sched;
  print_snapshot ppf o2;
  Format.fprintf ppf
    "distinct on-chip data: %d lines (thread) vs %d lines (O2); the O2 \
     scheduler keeps %s directories off-chip vs %s under the thread \
     scheduler.@."
    thread_sched.distinct_lines o2.distinct_lines
    (string_of_int (List.length o2.off_chip))
    (string_of_int (List.length thread_sched.off_chip))
