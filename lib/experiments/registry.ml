type exp = {
  id : string;
  title : string;
  paper_ref : string;
  default_set : bool;
  run :
    quick:bool ->
    jobs:int ->
    obs:Harness.obs ->
    shards:int ->
    Format.formatter ->
    unit;
}

let all =
  [
    {
      id = "latency";
      title = "Hardware latencies: paper vs simulated machine";
      paper_ref = "Section 5, 'Hardware'";
      default_set = true;
      run = (fun ~quick:_ ~jobs:_ ~obs:_ ~shards:_ ppf -> Latency_table.print ppf);
    };
    {
      id = "quickstart";
      title = "Bounded quickstart workload (flight-recorder demo)";
      paper_ref = "Figure 3";
      default_set = false;
      run = (fun ~quick ~jobs:_ ~obs ~shards:_ ppf -> Quickstart_exp.run ~quick ~obs ppf);
    };
    {
      id = "fig2";
      title = "Cache contents under thread vs O2 scheduling";
      paper_ref = "Figure 2";
      default_set = true;
      run = (fun ~quick ~jobs ~obs:_ ~shards:_ ppf -> Fig2.fig2 ~quick ~jobs ppf);
    };
    {
      id = "fig4a";
      title = "File system benchmark, uniform directory popularity";
      paper_ref = "Figure 4(a)";
      default_set = true;
      run = (fun ~quick ~jobs ~obs ~shards ppf -> Figure4.fig4a ~quick ~jobs ~obs ~shards ppf);
    };
    {
      id = "fig4b";
      title = "File system benchmark, oscillating directory popularity";
      paper_ref = "Figure 4(b)";
      default_set = true;
      run = (fun ~quick ~jobs ~obs ~shards ppf -> Figure4.fig4b ~quick ~jobs ~obs ~shards ppf);
    };
    {
      id = "ablation-migration";
      title = "Migration-cost sensitivity";
      paper_ref = "Section 6.1";
      default_set = false;
      run =
        (fun ~quick ~jobs ~obs ~shards ppf ->
          Ablations.migration_cost ~obs ~shards ~quick ~jobs ppf);
    };
    {
      id = "ablation-replication";
      title = "Replicate read-only objects vs schedule them";
      paper_ref = "Section 6.2";
      default_set = false;
      run =
        (fun ~quick ~jobs ~obs:_ ~shards ppf ->
          Ablations.replication ~shards ~quick ~jobs ppf);
    };
    {
      id = "ablation-overflow";
      title = "Working sets larger than on-chip memory";
      paper_ref = "Section 6.2";
      default_set = false;
      run = (fun ~quick ~jobs ~obs:_ ~shards:_ ppf -> Ablations.overflow ~quick ~jobs ppf);
    };
    {
      id = "ablation-clustering";
      title = "Object clustering for two-object operations";
      paper_ref = "Section 6.2";
      default_set = false;
      run = (fun ~quick ~jobs ~obs:_ ~shards:_ ppf -> Ablations.clustering ~quick ~jobs ppf);
    };
    {
      id = "ablation-rebalance";
      title = "Packing pathology vs the runtime monitor";
      paper_ref = "Section 4";
      default_set = false;
      run =
        (fun ~quick ~jobs ~obs ~shards ppf ->
          Ablations.rebalance ~obs ~shards ~quick ~jobs ppf);
    };
    {
      id = "ablation-clustering-sched";
      title = "Thread clustering comparator";
      paper_ref = "Sections 2 and 7";
      default_set = false;
      run =
        (fun ~quick ~jobs ~obs:_ ~shards ppf ->
          Ablations.thread_clustering ~shards ~quick ~jobs ppf);
    };
    {
      id = "ablation-shipping";
      title = "Operation shipping by active message";
      paper_ref = "Section 6.1";
      default_set = false;
      run =
        (fun ~quick ~jobs ~obs:_ ~shards ppf ->
          Ablations.op_shipping ~shards ~quick ~jobs ppf);
    };
    {
      id = "btree";
      title = "B+-tree index lookups";
      paper_ref = "Sections 1 and 6.2";
      default_set = false;
      run = (fun ~quick ~jobs:_ ~obs:_ ~shards:_ ppf -> Btree_exp.run ~quick ppf);
    };
    {
      id = "native";
      title = "Native backend: wall-clock ops/sec + simulator oracle";
      paper_ref = "Section 3, 'Implementation'";
      default_set = false;
      (* Wall-clock, real domains: the sweep-parallelism and sharding
         knobs don't apply, and probes stay detached. *)
      run =
        (fun ~quick ~jobs:_ ~obs:_ ~shards:_ ppf ->
          ignore (Native_exp.run ~quick ~domains:2 ppf));
    };
    {
      id = "future";
      title = "A future 64-core multicore";
      paper_ref = "Section 6.1";
      default_set = false;
      run =
        (fun ~quick ~jobs ~obs:_ ~shards ppf ->
          Future_multicore.run ~shards ~quick ~jobs ppf);
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all

let run_ids ?(obs = Harness.no_obs) ?(shards = 0) ~quick ~jobs ppf requested =
  match List.filter (fun id -> Option.is_none (find id)) requested with
  | _ :: _ as unknown ->
      Error
        (Printf.sprintf "unknown experiment id(s): %s (known: %s)"
           (String.concat ", " unknown)
           (String.concat ", " (ids ())))
  | [] ->
      let selected =
        if requested = [] then List.filter (fun e -> e.default_set) all
        else List.filter (fun e -> List.mem e.id requested) all
      in
      List.iter (fun e -> e.run ~quick ~jobs ~obs ~shards ppf) selected;
      Ok ()
