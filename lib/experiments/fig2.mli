(** Figure 2: a snapshot of cache contents for the directory-lookup
    workload under (a) a thread scheduler and (b) the O2 scheduler.

    Reproduced on the small 4-core test machine so the listing stays
    readable: 20 one-kilobyte directories against 1 KB L1s, 4 KB L2s and
    one 16 KB L3 — the same shape as the paper's figure, where the thread
    scheduler replicates hot directories and spills the rest off-chip
    while the O2 scheduler partitions all of them across the caches. *)

type snapshot = {
  scheduler : string;
  per_cache : (string * string list) list;
      (** Cache name, names of directories mostly (>= 50%) resident. *)
  off_chip : string list;  (** Directories mostly absent from every cache. *)
  distinct_lines : int;  (** Distinct data lines on chip. *)
  throughput : float;  (** kres/s over the run, for reference. *)
}

val o2_policy : Coretime.Policy.t
(** {!Coretime.Policy.default} rescaled to the toy machine's 16-line
    directories (lower promote threshold, stable placement). *)

val run_one : policy:Coretime.Policy.t -> scheduler:string -> snapshot
val print_snapshot : Format.formatter -> snapshot -> unit
val fig2 : ?quick:bool -> ?jobs:int -> Format.formatter -> unit
