open O2_workload
open O2_stats

type row = {
  kb : int;
  dirs : int;
  without_ct : Harness.point;
  with_ct : Harness.point;
}

let oscillation_default = { Harness.period = 10_000_000; divisor = 16 }

let sweep ?(progress = fun _ -> ()) ?(jobs = 1) ~quick ~oscillation () =
  (* oscillating runs measure longer so whole phase cycles average out *)
  let horizon_scale = match oscillation with None -> 2 | Some _ -> 3 in
  let cell policy kb =
    let spec = Dir_workload.spec_for_data_kb ~kb () in
    (* Warming a working set out of DRAM (and letting promotion and the
       monitor converge) takes time proportional to its size. *)
    let warmup = Harness.scaled ~quick (40_000_000 + (kb * 2500)) in
    Harness.setup ~policy ~warmup
      ~measure:(Harness.scaled ~quick (20_000_000 * horizon_scale))
      ?oscillation spec
  in
  let ladder = Harness.kb_ladder ~quick in
  progress
    (Printf.sprintf "  sweeping %d sizes x 2 policies (jobs=%d)..."
       (List.length ladder) jobs);
  (* Independent (kb, policy) cells, dispatched through the domain pool;
     points come back in input order, so re-zipping by ladder position
     reconstructs exactly the rows a sequential sweep would build. *)
  let cells =
    List.concat_map
      (fun kb -> [ cell Coretime.Policy.baseline kb; cell Coretime.Policy.default kb ])
      ladder
  in
  let points = Harness.run_cells ~jobs cells in
  let rec zip ladder points =
    match (ladder, points) with
    | [], [] -> []
    | kb :: ladder, without_ct :: with_ct :: points ->
        let spec = Dir_workload.spec_for_data_kb ~kb () in
        { kb; dirs = spec.Dir_workload.dirs; without_ct; with_ct }
        :: zip ladder points
    | _ -> invalid_arg "Figure4.sweep: cell/ladder mismatch"
  in
  zip ladder points

let to_series rows =
  let mk label f =
    Series.make ~label
      (List.map (fun r -> (float_of_int r.kb, (f r).Harness.kres_per_sec)) rows)
  in
  (mk "with CoreTime" (fun r -> r.with_ct), mk "without CoreTime" (fun r -> r.without_ct))

let print_rows ppf rows =
  let open O2_stats in
  let t =
    Table.create
      ~columns:
        [
          ("data (KB)", Table.Right);
          ("dirs", Table.Right);
          ("without CT (kres/s)", Table.Right);
          ("with CT (kres/s)", Table.Right);
          ("speedup", Table.Right);
          ("dram w/o", Table.Right);
          ("dram w/", Table.Right);
          ("migrations", Table.Right);
          ("moves", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      let sp =
        if r.without_ct.Harness.kres_per_sec > 0.0 then
          r.with_ct.Harness.kres_per_sec /. r.without_ct.Harness.kres_per_sec
        else nan
      in
      Table.add_row t
        [
          string_of_int r.kb;
          string_of_int r.dirs;
          Printf.sprintf "%.0f" r.without_ct.Harness.kres_per_sec;
          Printf.sprintf "%.0f" r.with_ct.Harness.kres_per_sec;
          Printf.sprintf "%.2fx" sp;
          string_of_int r.without_ct.Harness.dram_loads;
          string_of_int r.with_ct.Harness.dram_loads;
          string_of_int r.with_ct.Harness.op_migrations;
          string_of_int r.with_ct.Harness.rebalancer_moves;
        ])
    rows;
  Format.pp_print_string ppf (Table.render t)

let print_figure ppf ~title rows =
  Format.fprintf ppf "@.=== %s ===@.@." title;
  print_rows ppf rows;
  let with_ct, without_ct = to_series rows in
  Format.pp_print_newline ppf ();
  Format.pp_print_string ppf
    (Ascii_plot.render
       ~x_label:"Total data size (Kilobytes)"
       ~y_label:"1000s of resolutions per second"
       [ with_ct; without_ct ]);
  Format.pp_print_newline ppf ();
  Format.pp_print_string ppf (Harness.ratio_summary ~with_ct ~without_ct);
  Format.pp_print_newline ppf ()

let progress_to_stderr line =
  prerr_endline line

let fig4a ?(quick = false) ?(jobs = 1) ppf =
  let rows =
    sweep ~progress:progress_to_stderr ~jobs ~quick ~oscillation:None ()
  in
  print_figure ppf
    ~title:
      "Figure 4(a): file system results, uniform directory popularity"
    rows

let fig4b ?(quick = false) ?(jobs = 1) ppf =
  let rows =
    sweep ~progress:progress_to_stderr ~jobs ~quick
      ~oscillation:(Some oscillation_default) ()
  in
  print_figure ppf
    ~title:
      "Figure 4(b): file system results, oscillating directory popularity"
    rows
