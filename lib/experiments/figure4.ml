open O2_workload
open O2_stats

type row = {
  kb : int;
  dirs : int;
  without_ct : Harness.point;
  with_ct : Harness.point;
  occ_without : (int * int) option;
  occ_with : (int * int) option;
}

let oscillation_default = { Harness.period = 10_000_000; divisor = 16 }

let sweep ?(progress = fun _ -> ()) ?(jobs = 1) ?(metrics = false) ?occupancy
    ?(shards = 0) ~quick ~oscillation () =
  (* oscillating runs measure longer so whole phase cycles average out *)
  let horizon_scale = match oscillation with None -> 2 | Some _ -> 3 in
  let cell policy kb =
    let spec = Dir_workload.spec_for_data_kb ~kb () in
    (* Warming a working set out of DRAM (and letting promotion and the
       monitor converge) takes time proportional to its size. *)
    let warmup = Harness.scaled ~quick (40_000_000 + (kb * 2500)) in
    Harness.setup ~policy ~warmup
      ~measure:(Harness.scaled ~quick (20_000_000 * horizon_scale))
      ?oscillation ~collect_metrics:metrics ~shards spec
  in
  let ladder = Harness.kb_ladder ~quick in
  progress
    (Printf.sprintf "  sweeping %d sizes x 2 policies (jobs=%d)..."
       (List.length ladder) jobs);
  (* Independent (kb, policy) cells, dispatched through the domain pool;
     points come back in input order, so re-zipping by ladder position
     reconstructs exactly the rows a sequential sweep would build. *)
  let cells =
    List.concat_map
      (fun kb -> [ cell Coretime.Policy.baseline kb; cell Coretime.Policy.default kb ])
      ladder
  in
  (* With the observatory on, every cell carries an occupancy tracker; the
     end-of-run chip state is read back per cell after the pool joins. The
     trackers only observe, so the points (and golden digests) are
     bit-identical with or without them. *)
  let occs = Array.make (List.length cells) None in
  let attach =
    Option.map
      (fun interval i engine ->
        occs.(i) <-
          Some
            (O2_obs.Occupancy.attach ~interval
               (O2_runtime.Engine.machine engine)))
      occupancy
  in
  let points = Harness.run_cells ?attach ~jobs cells in
  let occ i =
    Option.map
      (fun o -> (O2_obs.Occupancy.distinct_lines o, O2_obs.Occupancy.replicated o))
      occs.(i)
  in
  let rec zip i ladder points =
    match (ladder, points) with
    | [], [] -> []
    | kb :: ladder, without_ct :: with_ct :: points ->
        let spec = Dir_workload.spec_for_data_kb ~kb () in
        {
          kb;
          dirs = spec.Dir_workload.dirs;
          without_ct;
          with_ct;
          occ_without = occ (2 * i);
          occ_with = occ ((2 * i) + 1);
        }
        :: zip (i + 1) ladder points
    | _ -> invalid_arg "Figure4.sweep: cell/ladder mismatch"
  in
  zip 0 ladder points

let to_series rows =
  let mk label f =
    Series.make ~label
      (List.map (fun r -> (float_of_int r.kb, (f r).Harness.kres_per_sec)) rows)
  in
  (mk "with CoreTime" (fun r -> r.with_ct), mk "without CoreTime" (fun r -> r.without_ct))

let print_rows ppf rows =
  let open O2_stats in
  (* When cells carried a metrics recorder, append the measured-window
     operation-latency percentiles (cycles, with-CoreTime cell). *)
  let with_lat =
    List.exists (fun r -> r.with_ct.Harness.metrics <> None) rows
  in
  (* Occupancy columns (distinct lines on chip at the end of the cell)
     appear when the sweep ran with the observatory attached. *)
  let with_occ = List.exists (fun r -> r.occ_with <> None) rows in
  let t =
    Table.create
      ~columns:
        ([
           ("data (KB)", Table.Right);
           ("dirs", Table.Right);
           ("without CT (kres/s)", Table.Right);
           ("with CT (kres/s)", Table.Right);
           ("speedup", Table.Right);
           ("dram w/o", Table.Right);
           ("dram w/", Table.Right);
           ("migrations", Table.Right);
           ("moves", Table.Right);
         ]
        @ (if with_occ then
             [
               ("chip lines w/o", Table.Right);
               ("chip lines w/", Table.Right);
               ("replicated w/", Table.Right);
             ]
           else [])
        @
        if with_lat then
          [ ("op p50 (cyc)", Table.Right); ("op p99 (cyc)", Table.Right) ]
        else [])
  in
  List.iter
    (fun r ->
      let sp =
        if r.without_ct.Harness.kres_per_sec > 0.0 then
          r.with_ct.Harness.kres_per_sec /. r.without_ct.Harness.kres_per_sec
        else nan
      in
      let lat_cells =
        if not with_lat then []
        else
          match r.with_ct.Harness.metrics with
          | Some m ->
              let h = O2_obs.Metrics.hist m "op/latency" in
              if O2_obs.Hist.count h = 0 then [ "-"; "-" ]
              else
                [
                  Printf.sprintf "%.0f" (O2_obs.Hist.p50 h);
                  Printf.sprintf "%.0f" (O2_obs.Hist.p99 h);
                ]
          | None -> [ "-"; "-" ]
      in
      let occ_cells =
        if not with_occ then []
        else
          [
            (match r.occ_without with
            | Some (lines, _) -> string_of_int lines
            | None -> "-");
            (match r.occ_with with
            | Some (lines, _) -> string_of_int lines
            | None -> "-");
            (match r.occ_with with
            | Some (_, replicated) -> string_of_int replicated
            | None -> "-");
          ]
      in
      Table.add_row t
        ([
           string_of_int r.kb;
           string_of_int r.dirs;
           Printf.sprintf "%.0f" r.without_ct.Harness.kres_per_sec;
           Printf.sprintf "%.0f" r.with_ct.Harness.kres_per_sec;
           Printf.sprintf "%.2fx" sp;
           string_of_int r.without_ct.Harness.dram_loads;
           string_of_int r.with_ct.Harness.dram_loads;
           string_of_int r.with_ct.Harness.op_migrations;
           string_of_int r.with_ct.Harness.rebalancer_moves;
         ]
        @ occ_cells @ lat_cells))
    rows;
  Format.pp_print_string ppf (Table.render t)

let print_figure ppf ~title rows =
  Format.fprintf ppf "@.=== %s ===@.@." title;
  print_rows ppf rows;
  let with_ct, without_ct = to_series rows in
  Format.pp_print_newline ppf ();
  Format.pp_print_string ppf
    (Ascii_plot.render
       ~x_label:"Total data size (Kilobytes)"
       ~y_label:"1000s of resolutions per second"
       [ with_ct; without_ct ]);
  Format.pp_print_newline ppf ();
  Format.pp_print_string ppf (Harness.ratio_summary ~with_ct ~without_ct);
  Format.pp_print_newline ppf ()

let progress_to_stderr line =
  prerr_endline line

(* [--trace] on a figure re-runs one representative beyond-L3 cell (8 MB,
   CoreTime on) with a flight recorder attached for the whole run and
   writes the Perfetto JSON. Tracing a single short cell rather than the
   sweep keeps the file loadable and the sweep itself recorder-free. *)
let write_trace ~quick ~oscillation ~sample ~occupancy_interval ~path ppf =
  let kb = 8192 in
  let spec = Dir_workload.spec_for_data_kb ~kb () in
  (* Short horizon: enough for promotion, migrations, and several monitor
     periods; oscillation (if any) is compressed to fit the window. *)
  let oscillation =
    Option.map
      (fun o -> { o with Harness.period = Harness.scaled ~quick o.Harness.period })
      oscillation
  in
  let s =
    Harness.setup
      ~warmup:(Harness.scaled ~quick 8_000_000)
      ~measure:(Harness.scaled ~quick 8_000_000)
      ?oscillation spec
  in
  let recorder = ref None in
  let occ = ref None in
  ignore
    (Harness.run
       ~attach:(fun engine ->
         recorder := Some (O2_obs.Recorder.attach ~sample_mem:sample engine);
         occ :=
           Some
             (O2_obs.Occupancy.attach ~interval:occupancy_interval
                (O2_runtime.Engine.machine engine)))
       s);
  match !recorder with
  | None -> ()
  | Some r ->
      O2_obs.Trace_export.write_file ?occupancy:!occ r ~path;
      Format.fprintf ppf
        "trace: one %d KB CoreTime cell written to %s (%d spans, %d events \
         retained, %d dropped; occupancy counter tracks attached) — load in \
         https://ui.perfetto.dev@."
        kb path (O2_obs.Recorder.span_count r)
        (O2_obs.Recorder.events_retained r)
        (O2_obs.Recorder.events_dropped r)

let figure ~title ~oscillation ?(quick = false) ?(jobs = 1)
    ?(obs = Harness.no_obs) ?(shards = 0) ppf =
  let rows =
    sweep ~progress:progress_to_stderr ~jobs ~quick ~metrics:obs.Harness.metrics
      ?occupancy:
        (if obs.Harness.occupancy then Some obs.Harness.occupancy_interval
         else None)
      ~shards ~oscillation ()
  in
  print_figure ppf ~title rows;
  match obs.Harness.trace with
  | Some path ->
      write_trace ~quick ~oscillation ~sample:obs.Harness.trace_sample
        ~occupancy_interval:obs.Harness.occupancy_interval ~path ppf
  | None -> ()

let fig4a ?quick ?jobs ?obs ?shards ppf =
  figure
    ~title:"Figure 4(a): file system results, uniform directory popularity"
    ~oscillation:None ?quick ?jobs ?obs ?shards ppf

let fig4b ?quick ?jobs ?obs ?shards ppf =
  figure
    ~title:
      "Figure 4(b): file system results, oscillating directory popularity"
    ~oscillation:(Some oscillation_default) ?quick ?jobs ?obs ?shards ppf
