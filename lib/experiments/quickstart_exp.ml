(* The examples/quickstart workload as a catalogue experiment: a small,
   bounded, deterministic run (every core does a fixed number of annotated
   table scans) that the observability flags can exercise end to end —
   `o2sim run quickstart --trace out.json --metrics` is the one-command
   flight-recorder demo, and the golden trace-shape test drives the same
   entry point. *)

open O2_simcore
open O2_runtime

type result = {
  ops : int;
  promotions : int;
  op_migrations : int;
  horizon : int;  (** Virtual cycles until every worker finished. *)
  recorder : O2_obs.Recorder.t option;
}

let iterations ~quick = if quick then 30 else 60

(* Same shape as examples/quickstart.ml, but bounded: [iterations] scans
   per core over four 64 KB tables, plus a lock-protected shared counter
   so the trace shows hand-offs too. *)
let execute ?recorder_of ~quick () =
  let machine = Machine.create Config.amd16 in
  let engine = Engine.create machine in
  let ct = Coretime.create ~policy:Coretime.Policy.default engine () in
  let recorder = Option.map (fun f -> f engine) recorder_of in
  let mem = Machine.memory machine in
  let table_size = 64 * 1024 in
  let tables =
    Array.init 4 (fun i ->
        let ext =
          Memsys.alloc mem ~name:(Printf.sprintf "table%d" i) ~size:table_size
        in
        ignore
          (Coretime.register ct ~base:ext.Memsys.base ~size:table_size
             ~name:ext.Memsys.name ());
        ext.Memsys.base)
  in
  let counter = Memsys.alloc_isolated mem ~name:"ops-counter" ~size:8 in
  let counter_lock = Spinlock.create mem ~name:"ops-counter-lock" in
  let iters = iterations ~quick in
  for core = 0 to Engine.cores engine - 1 do
    let rng = O2_workload.Rng.create ~seed:(0xC0DE + core) in
    ignore
      (Engine.spawn engine ~core ~name:(Printf.sprintf "worker%d" core)
         (fun () ->
           for _ = 1 to iters do
             let table = tables.(O2_workload.Rng.int rng ~bound:4) in
             Coretime.ct_start ct table;
             ignore (Api.read ~addr:table ~len:table_size);
             Api.compute 500;
             Api.lock counter_lock;
             ignore (Api.read ~addr:counter.Memsys.base ~len:8);
             ignore (Api.write ~addr:counter.Memsys.base ~len:8);
             Api.unlock counter_lock;
             Coretime.ct_end ct
           done))
  done;
  Engine.run engine;
  let stats = Coretime.stats ct in
  {
    ops = stats.Coretime.ops;
    promotions = stats.Coretime.promotions;
    op_migrations = stats.Coretime.op_migrations;
    horizon = Engine.now engine;
    recorder;
  }

let run ~quick ~obs:(obs : Harness.obs) ppf =
  Format.fprintf ppf
    "@.=== quickstart: bounded table-scan workload (%d cores x %d ops) \
     ===@.@."
    (Config.cores Config.amd16) (iterations ~quick);
  let want_recorder = obs.Harness.metrics || obs.Harness.trace <> None in
  let recorder_of =
    if want_recorder then
      Some
        (fun engine ->
          O2_obs.Recorder.attach ~sample_mem:obs.Harness.trace_sample engine)
    else None
  in
  let r = execute ?recorder_of ~quick () in
  Format.fprintf ppf "operations completed : %d@." r.ops;
  Format.fprintf ppf "objects promoted     : %d@." r.promotions;
  Format.fprintf ppf "operation migrations : %d@." r.op_migrations;
  Format.fprintf ppf "virtual horizon      : %d cycles@." r.horizon;
  (match r.recorder with
  | Some rec_ when obs.Harness.metrics ->
      Format.fprintf ppf "@.%s"
        (O2_obs.O2top.render (O2_obs.Recorder.metrics rec_))
  | Some _ | None -> ());
  match (r.recorder, obs.Harness.trace) with
  | Some rec_, Some path ->
      O2_obs.Trace_export.write_file rec_ ~path;
      Format.fprintf ppf
        "trace written to %s (%d spans, %d events retained, %d dropped) — \
         load in https://ui.perfetto.dev@."
        path
        (O2_obs.Recorder.span_count rec_)
        (O2_obs.Recorder.events_retained rec_)
        (O2_obs.Recorder.events_dropped rec_)
  | _ -> ()
