(* The examples/quickstart workload as a catalogue experiment: a small,
   bounded, deterministic run (every core does a fixed number of annotated
   table scans) that the observability flags can exercise end to end —
   `o2sim run quickstart --trace out.json --metrics` is the one-command
   flight-recorder demo, and the golden trace-shape test drives the same
   entry point. *)

open O2_simcore
open O2_runtime

type result = {
  ops : int;
  promotions : int;
  op_migrations : int;
  horizon : int;  (** Virtual cycles until every worker finished. *)
  recorder : O2_obs.Recorder.t option;
}

let iterations ~quick = if quick then 30 else 60

(* Same shape as examples/quickstart.ml, but bounded: [iterations] scans
   per core over four 64 KB tables, plus a lock-protected shared counter
   so the trace shows hand-offs too. *)
let execute ?recorder_of ?attach ~quick () =
  let machine = Machine.create Config.amd16 in
  let engine = Engine.create machine in
  let ct = Coretime.create ~policy:Coretime.Policy.default engine () in
  let recorder = Option.map (fun f -> f engine) recorder_of in
  (match attach with Some f -> f engine | None -> ());
  let mem = Machine.memory machine in
  let table_size = 64 * 1024 in
  let tables =
    Array.init 4 (fun i ->
        let ext =
          Memsys.alloc mem ~name:(Printf.sprintf "table%d" i) ~size:table_size
        in
        ignore
          (Coretime.register ct ~base:ext.Memsys.base ~size:table_size
             ~name:ext.Memsys.name ());
        ext.Memsys.base)
  in
  let counter = Memsys.alloc_isolated mem ~name:"ops-counter" ~size:8 in
  let counter_lock = Spinlock.create mem ~name:"ops-counter-lock" in
  let iters = iterations ~quick in
  for core = 0 to Engine.cores engine - 1 do
    let rng = O2_workload.Rng.create ~seed:(0xC0DE + core) in
    ignore
      (Engine.spawn engine ~core ~name:(Printf.sprintf "worker%d" core)
         (fun () ->
           for _ = 1 to iters do
             let table = tables.(O2_workload.Rng.int rng ~bound:4) in
             Coretime.ct_start ct table;
             ignore (Api.read ~addr:table ~len:table_size);
             Api.compute 500;
             Api.lock counter_lock;
             ignore (Api.read ~addr:counter.Memsys.base ~len:8);
             ignore (Api.write ~addr:counter.Memsys.base ~len:8);
             Api.unlock counter_lock;
             Coretime.ct_end ct
           done))
  done;
  Engine.run engine;
  let stats = Coretime.stats ct in
  {
    ops = stats.Coretime.ops;
    promotions = stats.Coretime.promotions;
    op_migrations = stats.Coretime.op_migrations;
    horizon = Engine.now engine;
    recorder;
  }

(* The cache-observatory attachments a run asked for. An occupancy tracker
   also rides along whenever a trace is requested, so the Perfetto export
   gets its counter tracks. *)
type observatory = {
  occupancy : O2_obs.Occupancy.t option;
  heat : O2_obs.Heat.t option;
  provenance : O2_obs.Provenance.t option;
}

let attach_observatory ~(obs : Harness.obs) engine =
  let want_occ = obs.Harness.occupancy || obs.Harness.trace <> None in
  {
    occupancy =
      (if want_occ then
         Some
           (O2_obs.Occupancy.attach ~interval:obs.Harness.occupancy_interval
              (Engine.machine engine))
       else None);
    heat = (if obs.Harness.heat then Some (O2_obs.Heat.attach engine) else None);
    provenance =
      (if obs.Harness.explain then Some (O2_obs.Provenance.attach engine)
       else None);
  }

let run ~quick ~obs:(obs : Harness.obs) ppf =
  Format.fprintf ppf
    "@.=== quickstart: bounded table-scan workload (%d cores x %d ops) \
     ===@.@."
    (Config.cores Config.amd16) (iterations ~quick);
  let want_recorder = obs.Harness.metrics || obs.Harness.trace <> None in
  let recorder_of =
    if want_recorder then
      Some
        (fun engine ->
          O2_obs.Recorder.attach ~sample_mem:obs.Harness.trace_sample engine)
    else None
  in
  let observatory = ref None in
  let attach engine = observatory := Some (attach_observatory ~obs engine) in
  let r = execute ?recorder_of ~attach ~quick () in
  let observatory =
    match !observatory with Some o -> o | None -> assert false
  in
  Format.fprintf ppf "operations completed : %d@." r.ops;
  Format.fprintf ppf "objects promoted     : %d@." r.promotions;
  Format.fprintf ppf "operation migrations : %d@." r.op_migrations;
  Format.fprintf ppf "virtual horizon      : %d cycles@." r.horizon;
  (match r.recorder with
  | Some rec_ when obs.Harness.metrics ->
      Format.fprintf ppf "@.%s"
        (O2_obs.O2top.render ~recorder:rec_ (O2_obs.Recorder.metrics rec_))
  | Some _ | None -> ());
  (match observatory.heat with
  | Some h ->
      Format.fprintf ppf "@.-- cache observatory: heat --@.%s"
        (O2_obs.Heat.render ~top:obs.Harness.heat_top h)
  | None -> ());
  (match observatory.occupancy with
  | Some o when obs.Harness.occupancy ->
      Format.fprintf ppf "@.-- cache observatory: occupancy --@.%s"
        (O2_obs.Occupancy.render o)
  | Some _ | None -> ());
  (match observatory.provenance with
  | Some p ->
      Format.fprintf ppf "@.%s" (O2_obs.Provenance.render p)
  | None -> ());
  match (r.recorder, obs.Harness.trace) with
  | Some rec_, Some path ->
      O2_obs.Trace_export.write_file ?occupancy:observatory.occupancy rec_
        ~path;
      Format.fprintf ppf
        "trace written to %s (%d spans, %d events retained, %d dropped) — \
         load in https://ui.perfetto.dev@."
        path
        (O2_obs.Recorder.span_count rec_)
        (O2_obs.Recorder.events_retained rec_)
        (O2_obs.Recorder.events_dropped rec_)
  | _ -> ()

(* The o2explain report: the full observatory on the quickstart run —
   heat, occupancy, and every scheduler decision fully explained. *)
let explain ?(top = 10) ~quick ppf =
  let obs =
    {
      Harness.no_obs with
      Harness.occupancy = true;
      heat = true;
      heat_top = top;
      explain = true;
    }
  in
  Format.fprintf ppf
    "=== o2explain: cache observatory + decision provenance (quickstart, \
     %d cores x %d ops) ===@.@."
    (Config.cores Config.amd16) (iterations ~quick);
  let observatory = ref None in
  let attach engine = observatory := Some (attach_observatory ~obs engine) in
  let r = execute ~attach ~quick () in
  let { occupancy; heat; provenance } =
    match !observatory with Some o -> o | None -> assert false
  in
  Format.fprintf ppf
    "operations %d; promotions %d; op migrations %d; horizon %d cycles@."
    r.ops r.promotions r.op_migrations r.horizon;
  (match heat with
  | Some h -> Format.fprintf ppf "@.%s" (O2_obs.Heat.render ~top h)
  | None -> ());
  (match occupancy with
  | Some o -> Format.fprintf ppf "@.%s" (O2_obs.Occupancy.render o)
  | None -> ());
  match provenance with
  | Some p -> Format.fprintf ppf "@.%s" (O2_obs.Provenance.render p)
  | None -> ()
