open O2_simcore
open O2_workload
open O2_stats

let kres p = p.Harness.kres_per_sec

(* Optional per-cell latency columns, shared by the ablations that accept
   [--metrics] from the CLI. *)
let lat_columns (obs : Harness.obs) =
  if obs.Harness.metrics then
    [ ("op p50 (cyc)", Table.Right); ("op p99 (cyc)", Table.Right) ]
  else []

let lat_cells (obs : Harness.obs) p =
  if not obs.Harness.metrics then []
  else
    match p.Harness.metrics with
    | Some m ->
        let h = O2_obs.Metrics.hist m "op/latency" in
        if O2_obs.Hist.count h = 0 then [ "-"; "-" ]
        else
          [
            Printf.sprintf "%.0f" (O2_obs.Hist.p50 h);
            Printf.sprintf "%.0f" (O2_obs.Hist.p99 h);
          ]
    | None -> [ "-"; "-" ]

(* Optional per-cell occupancy column ([--occupancy]): distinct lines on
   chip when the cell finished. The helpers return an [attach] hook for
   {!Harness.run_cells} plus the per-cell readback. *)
let occ_columns (obs : Harness.obs) =
  if obs.Harness.occupancy then [ ("chip lines", Table.Right) ] else []

let occ_trackers (obs : Harness.obs) n =
  let occs = Array.make n None in
  let attach =
    if obs.Harness.occupancy then
      Some
        (fun i engine ->
          occs.(i) <-
            Some
              (O2_obs.Occupancy.attach ~interval:obs.Harness.occupancy_interval
                 (O2_runtime.Engine.machine engine)))
    else None
  in
  let cell i =
    if not obs.Harness.occupancy then []
    else
      [
        (match occs.(i) with
        | Some o -> string_of_int (O2_obs.Occupancy.distinct_lines o)
        | None -> "-");
      ]
  in
  (attach, cell)

let migration_cost ?(obs = Harness.no_obs) ?(shards = 0) ~quick ~jobs ppf =
  Format.fprintf ppf
    "@.=== E6: migration-cost sensitivity (8 MB working set) ===@.@.";
  let kb = 8192 in
  let spec = Dir_workload.spec_for_data_kb ~kb () in
  let warmup = Harness.scaled ~quick (40_000_000 + (kb * 2500)) in
  let measure = Harness.scaled ~quick 40_000_000 in
  let costs =
    if quick then [ 500; 2000; 8000 ]
    else [ 250; 500; 1000; 2000; 4000; 8000; 16000 ]
  in
  let cost_cell cost =
    let cfg =
      {
        Config.amd16 with
        Config.migration_save = cost / 4;
        migration_xfer = cost / 2;
        migration_restore = cost / 4;
        poll_interval = 0;
      }
    in
    Harness.setup ~cfg ~warmup ~measure
      ~collect_metrics:obs.Harness.metrics ~shards spec
  in
  (* baseline rides along as cell 0 of the same batch *)
  let cells =
    Harness.setup ~policy:Coretime.Policy.baseline ~warmup ~measure
      ~collect_metrics:obs.Harness.metrics ~shards spec
    :: List.map cost_cell costs
  in
  let attach, occ_cell = occ_trackers obs (List.length cells) in
  let baseline, points =
    match Harness.run_cells ?attach ~jobs cells with
    | baseline :: points -> (baseline, points)
    | [] -> assert false
  in
  let t =
    Table.create
      ~columns:
        ([
           ("migration cost (cycles)", Table.Right);
           ("CoreTime (kres/s)", Table.Right);
           ("vs baseline", Table.Right);
         ]
        @ occ_columns obs @ lat_columns obs)
  in
  List.iteri
    (fun i (cost, p) ->
      Table.add_row t
        ([
           string_of_int cost;
           Printf.sprintf "%.0f" (kres p);
           Printf.sprintf "%.2fx" (kres p /. kres baseline);
         ]
        @ occ_cell (i + 1) (* cell 0 is the baseline *)
        @ lat_cells obs p))
    (List.combine costs points);
  Format.pp_print_string ppf (Table.render t);
  Format.fprintf ppf "baseline (no CoreTime): %.0f kres/s@." (kres baseline);
  Format.fprintf ppf
    "cheaper migration (hardware active messages) widens the win; costly \
     migration erodes it.@."

let replication ?(shards = 0) ~quick ~jobs ppf =
  Format.fprintf ppf
    "@.=== E7: replicate read-only objects vs schedule them (zipf 1.1, \
     lock-free lookups) ===@.@.";
  let spec =
    {
      (Dir_workload.spec_for_data_kb ~kb:4096 ()) with
      Dir_workload.dir_dist = `Zipf 1.1;
      use_locks = false;
    }
  in
  let warmup = Harness.scaled ~quick 40_000_000 in
  let measure = Harness.scaled ~quick 40_000_000 in
  let cell policy = Harness.setup ~policy ~warmup ~measure ~shards spec in
  let baseline, partition, replicate =
    match
      Harness.run_cells ~jobs
        [
          cell Coretime.Policy.baseline;
          cell Coretime.Policy.default;
          cell
            {
              Coretime.Policy.default with
              Coretime.Policy.replicate_read_only = true;
            };
        ]
    with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let t =
    Table.create
      ~columns:
        [ ("policy", Table.Left); ("kres/s", Table.Right); ("migrations", Table.Right) ]
  in
  List.iter
    (fun (name, p) ->
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f" (kres p);
          string_of_int p.Harness.op_migrations;
        ])
    [
      ("hardware-managed (baseline)", baseline);
      ("partition all hot objects", partition);
      ("replicate hot read-only objects", replicate);
    ];
  Format.pp_print_string ppf (Table.render t);
  Format.fprintf ppf
    "the replication policy keeps the hot head parallel (fewer forced \
     migrations) while still scheduling the cold tail.@."

(* With a *static* skew, miss-driven promotion already captures the hot
   head (the hottest objects cross the promotion threshold first), so the
   replacement policy only matters when popularity drifts: here the
   rank-to-directory mapping rotates by an eighth every 10M cycles, so the
   hot set keeps moving off whatever the table holds. *)
let overflow ~quick ~jobs ppf =
  Format.fprintf ppf
    "@.=== E8: working set larger than on-chip memory (16 MB capacity; \
     zipf 1.0, drifting hot set) ===@.@.";
  let measure = Harness.scaled ~quick 60_000_000 in
  let sizes = if quick then [ 24576 ] else [ 18432; 24576; 32768 ] in
  let drift_period = 10_000_000 in
  (* builds its own machine/engine and shares nothing: safe as a pool cell *)
  let run_one (kb, policy) =
    let machine = Machine.create Config.amd16 in
    let engine = O2_runtime.Engine.create machine in
    let ct = Coretime.create ~policy engine () in
    let spec =
      {
        (Dir_workload.spec_for_data_kb ~kb ()) with
        Dir_workload.dir_dist = `Zipf 1.0;
        shuffle_popularity = true;
      }
    in
    let w = Dir_workload.build ct spec in
    Dir_workload.spawn_threads w;
    O2_runtime.Engine.every engine ~period:drift_period (fun ~now:_ ->
        Dir_workload.rotate_popularity w ~by:(spec.Dir_workload.dirs / 8));
    let warmup = Harness.scaled ~quick (40_000_000 + (kb * 2500)) in
    O2_runtime.Engine.run ~until:warmup engine;
    let ops0 = Dir_workload.lookups_done w in
    O2_runtime.Engine.run ~until:(warmup + measure) engine;
    let ops = Dir_workload.lookups_done w - ops0 in
    let rb = Coretime.Rebalancer.stats (Coretime.rebalancer ct) in
    ( float_of_int ops
      /. (float_of_int measure /. (Config.amd16.Config.ghz *. 1e9))
      /. 1000.0,
      rb.Coretime.Rebalancer.demotions )
  in
  let frozen_policy =
    {
      Coretime.Policy.default with
      (* never demote: whatever promoted first keeps its slot *)
      Coretime.Policy.demote_idle_periods = max_int / 2;
    }
  in
  let cells =
    List.concat_map
      (fun kb ->
        [
          (kb, Coretime.Policy.baseline);
          (kb, frozen_policy);
          (kb, Coretime.Policy.default);
        ])
      sizes
  in
  let points = O2_runtime.Domain_pool.map ~jobs run_one cells in
  let t =
    Table.create
      ~columns:
        [
          ("data (KB)", Table.Right);
          ("baseline", Table.Right);
          ("CoreTime, frozen table", Table.Right);
          ("CoreTime, replacement on", Table.Right);
          ("demotions", Table.Right);
        ]
  in
  let rec rows sizes points =
    match (sizes, points) with
    | [], [] -> ()
    | ( kb :: sizes,
        (baseline, _) :: (frozen, _) :: (adaptive, demotions) :: points ) ->
        Table.add_row t
          [
            string_of_int kb;
            Printf.sprintf "%.0f" baseline;
            Printf.sprintf "%.0f" frozen;
            Printf.sprintf "%.0f" adaptive;
            string_of_int demotions;
          ];
        rows sizes points
    | _ -> invalid_arg "Ablations.overflow: cell/size mismatch"
  in
  rows sizes points;
  Format.pp_print_string ppf (Table.render t);
  Format.fprintf ppf
    "a frozen table goes stale and loses even to the hardware; demoting \
     idle objects under budget pressure and re-promoting the new hot set \
     keeps the most-operated-on objects on-chip (the Section 6.2 \
     replacement policy).@."

(* E9 uses its own paired-lookup loop rather than Dir_workload's. *)
let clustering ~quick ~jobs ppf =
  Format.fprintf ppf
    "@.=== E9: object clustering for operations that use two objects \
     ===@.@.";
  let warmup = Harness.scaled ~quick 40_000_000 in
  let measure = Harness.scaled ~quick 40_000_000 in
  let horizon = warmup + measure in
  let run_one with_clustering =
    let machine = Machine.create Config.amd16 in
    let engine = O2_runtime.Engine.create machine in
    let policy =
      {
        Coretime.Policy.default with
        Coretime.Policy.clustering = with_clustering;
        promote_min_ops = 10;
        cluster_min_coaccess = 6;
      }
    in
    let ct = Coretime.create ~policy engine () in
    let spec =
      {
        (Dir_workload.spec_for_data_kb ~kb:4096 ()) with
        Dir_workload.use_locks = false;
      }
    in
    let w = Dir_workload.build ct spec in
    let dirs = spec.Dir_workload.dirs in
    let half = dirs / 2 in
    (* every operation searches directory i and then its partner i+half *)
    for core = 0 to O2_runtime.Engine.cores engine - 1 do
      let rng = Rng.create ~seed:(spec.Dir_workload.seed + core) in
      ignore
        (O2_runtime.Engine.spawn engine ~core
           ~name:(Printf.sprintf "pair-worker-%d" core)
           (fun () ->
             let fs = Dir_workload.fs w in
             while true do
               let i = Rng.int rng ~bound:half in
               let j = i + half in
               let a = Dir_workload.directory w i in
               let b = Dir_workload.directory w j in
               let name =
                 Printf.sprintf "f%d.dat"
                   (Rng.int rng ~bound:spec.Dir_workload.entries_per_dir)
               in
               Coretime.ct_start ct (O2_fs.Fat.dir_base_addr fs a);
               ignore (O2_fs.Fat.lookup fs a name);
               Coretime.ct_start ct (O2_fs.Fat.dir_base_addr fs b);
               ignore (O2_fs.Fat.lookup fs b name);
               Coretime.ct_end ct;
               Coretime.ct_end ct
             done))
    done;
    O2_runtime.Engine.run ~until:warmup engine;
    let ops0 = (Coretime.stats ct).Coretime.ops in
    let mig0 = (Coretime.stats ct).Coretime.op_migrations in
    O2_runtime.Engine.run ~until:horizon engine;
    let ops = (Coretime.stats ct).Coretime.ops - ops0 in
    let migs = (Coretime.stats ct).Coretime.op_migrations - mig0 in
    let pairs = ops / 2 in
    let seconds = float_of_int measure /. (Config.amd16.Config.ghz *. 1e9) in
    ( float_of_int pairs /. seconds /. 1000.0,
      float_of_int migs /. float_of_int (max pairs 1),
      Coretime.Clustering.pairs_tracked (Coretime.clustering ct) )
  in
  let (off_kres, off_migs, _), (on_kres, on_migs, pairs) =
    match O2_runtime.Domain_pool.map ~jobs run_one [ false; true ] with
    | [ off; on ] -> (off, on)
    | _ -> assert false
  in
  let t =
    Table.create
      ~columns:
        [
          ("clustering", Table.Left);
          ("pair-lookups (k/s)", Table.Right);
          ("migrations per pair", Table.Right);
        ]
  in
  Table.add_row t [ "off"; Printf.sprintf "%.0f" off_kres; Printf.sprintf "%.2f" off_migs ];
  Table.add_row t [ "on"; Printf.sprintf "%.0f" on_kres; Printf.sprintf "%.2f" on_migs ];
  Format.pp_print_string ppf (Table.render t);
  Format.fprintf ppf "co-access pairs tracked: %d@." pairs

let rebalance ?(obs = Harness.no_obs) ?(shards = 0) ~quick ~jobs ppf =
  Format.fprintf ppf
    "@.=== E11: packing pathology vs the runtime monitor (oscillating set, \
     8 MB) ===@.@.";
  let spec = Dir_workload.spec_for_data_kb ~kb:8192 () in
  let warmup = Harness.scaled ~quick 60_000_000 in
  let measure = Harness.scaled ~quick 80_000_000 in
  let oscillation = Figure4.oscillation_default in
  let cell policy =
    Harness.setup ~policy ~warmup ~measure ~oscillation
      ~collect_metrics:obs.Harness.metrics ~shards spec
  in
  let attach, occ_cell = occ_trackers obs 3 in
  let off, on, baseline =
    match
      Harness.run_cells ?attach ~jobs
        [
          cell { Coretime.Policy.default with Coretime.Policy.rebalance = false };
          cell Coretime.Policy.default;
          cell Coretime.Policy.baseline;
        ]
    with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let t =
    Table.create
      ~columns:
        ([
           ("configuration", Table.Left);
           ("kres/s", Table.Right);
           ("moves", Table.Right);
           ("demotions", Table.Right);
         ]
        @ occ_columns obs @ lat_columns obs)
  in
  List.iter
    (fun (name, i, p) ->
      Table.add_row t
        ([
           name;
           Printf.sprintf "%.0f" (kres p);
           string_of_int p.Harness.rebalancer_moves;
           string_of_int p.Harness.rebalancer_demotions;
         ]
        @ occ_cell i @ lat_cells obs p))
    [
      ("without CoreTime", 2, baseline);
      ("CoreTime, monitor off", 0, off);
      ("CoreTime, monitor on", 1, on);
    ];
  Format.pp_print_string ppf (Table.render t);
  Format.fprintf ppf
    "first-fit packs the shrunken active set onto few cores; the monitor \
     spreads it back out.@."

let op_shipping ?(shards = 0) ~quick ~jobs ppf =
  Format.fprintf ppf
    "@.=== E13: operation shipping by active message vs thread migration \
     ===@.@.";
  let sizes = if quick then [ 4096 ] else [ 2048; 4096; 8192; 12288 ] in
  let measure = Harness.scaled ~quick 40_000_000 in
  let cell kb policy =
    let spec = Dir_workload.spec_for_data_kb ~kb () in
    let warmup = Harness.scaled ~quick (40_000_000 + (kb * 2500)) in
    Harness.setup ~policy ~warmup ~measure ~shards spec
  in
  let cells =
    List.concat_map
      (fun kb ->
        [
          cell kb Coretime.Policy.baseline;
          cell kb Coretime.Policy.default;
          cell kb
            { Coretime.Policy.default with Coretime.Policy.op_shipping = true };
        ])
      sizes
  in
  let points = Harness.run_cells ~jobs cells in
  let t =
    Table.create
      ~columns:
        [
          ("data (KB)", Table.Right);
          ("baseline", Table.Right);
          ("thread migration", Table.Right);
          ("active messages", Table.Right);
          ("shipping gain", Table.Right);
        ]
  in
  let rec rows sizes points =
    match (sizes, points) with
    | [], [] -> ()
    | kb :: sizes, baseline :: migrate :: ship :: points ->
        Table.add_row t
          [
            string_of_int kb;
            Printf.sprintf "%.0f" (kres baseline);
            Printf.sprintf "%.0f" (kres migrate);
            Printf.sprintf "%.0f" (kres ship);
            Printf.sprintf "%.2fx" (kres ship /. kres migrate);
          ];
        rows sizes points
    | _ -> invalid_arg "Ablations.op_shipping: cell/size mismatch"
  in
  rows sizes points;
  Format.pp_print_string ppf (Table.render t);
  Format.fprintf ppf
    "hardware active messages cut the per-operation transport from ~2000 \
     to ~240 cycles (Section 6.1's prediction).@."

let thread_clustering ?(shards = 0) ~quick ~jobs ppf =
  Format.fprintf ppf
    "@.=== E12: thread clustering vs O2 scheduling (8 MB, uniform) ===@.@.";
  let spec = Dir_workload.spec_for_data_kb ~kb:8192 () in
  let warmup = Harness.scaled ~quick 60_000_000 in
  let measure = Harness.scaled ~quick 40_000_000 in
  let cores = Config.cores Config.amd16 in
  (* all threads look up files in the same directories: flat similarity *)
  let similarity _ _ = 1.0 in
  let clustered_placement =
    O2_sched.Clustered_sched.assign ~threads:cores ~cores
      ~cores_per_chip:Config.amd16.Config.cores_per_chip ~similarity
  in
  let round_robin =
    O2_sched.Thread_sched.assign ~threads:cores ~cores
      ~cores_per_chip:Config.amd16.Config.cores_per_chip ~similarity
  in
  let cell ?placement policy =
    Harness.setup ~policy ~warmup ~measure ?placement ~shards spec
  in
  let base, clustered, o2 =
    match
      Harness.run_cells ~jobs
        [
          cell ~placement:round_robin Coretime.Policy.baseline;
          cell ~placement:clustered_placement Coretime.Policy.baseline;
          cell Coretime.Policy.default;
        ]
    with
    | [ a; b; c ] -> (a, b, c)
    | _ -> assert false
  in
  let t =
    Table.create
      ~columns:[ ("scheduler", Table.Left); ("kres/s", Table.Right) ]
  in
  List.iter
    (fun (name, p) -> Table.add_row t [ name; Printf.sprintf "%.0f" (kres p) ])
    [
      (O2_sched.Thread_sched.name, base);
      (O2_sched.Clustered_sched.name, clustered);
      ("O2 (CoreTime)", o2);
    ];
  Format.pp_print_string ppf (Table.render t);
  Format.fprintf ppf
    "with a flat working-set similarity matrix, thread clustering cannot \
     beat round-robin; scheduling objects can (Section 2).@."
