(** The paper's headline evaluation (Section 5, Figure 4): throughput of
    the file-system name-resolution benchmark, with and without CoreTime,
    as total directory data sweeps past the machine's cache capacities.

    {!fig4a} is the uniform-popularity sweep; {!fig4b} oscillates the
    number of directories accessed between the full set and a sixteenth of
    it, exercising the rebalancer. *)

type row = {
  kb : int;
  dirs : int;
  without_ct : Harness.point;
  with_ct : Harness.point;
  occ_without : (int * int) option;
      (** (distinct lines on chip, hardware-replicated lines) at the end
          of the baseline cell, when the sweep ran with the observatory. *)
  occ_with : (int * int) option;  (** Same for the CoreTime cell. *)
}

val sweep :
  ?progress:(string -> unit) ->
  ?jobs:int ->
  ?metrics:bool ->
  ?occupancy:int ->
  ?shards:int ->
  quick:bool ->
  oscillation:Harness.oscillation option ->
  unit ->
  row list
(** [metrics] (default false) attaches a measured-window metrics recorder
    to every cell; {!print_rows} then appends op-latency percentile
    columns. [occupancy] (a sampling interval in cycles) attaches a
    cache-observatory occupancy tracker to every cell and fills the
    [occ_*] row fields; the tracker observes only, so the points are
    bit-identical either way. [shards] (default 0) selects the windowed
    sharded engine for every cell; incompatible with [metrics] and
    [occupancy]. *)

val to_series : row list -> O2_stats.Series.t * O2_stats.Series.t
(** (with CoreTime, without CoreTime). *)

val print_rows : Format.formatter -> row list -> unit
val print_figure : Format.formatter -> title:string -> row list -> unit
(** Table + ASCII rendering of the figure + the Section 5 shape claims. *)

val fig4a :
  ?quick:bool ->
  ?jobs:int ->
  ?obs:Harness.obs ->
  ?shards:int ->
  Format.formatter ->
  unit

val fig4b :
  ?quick:bool ->
  ?jobs:int ->
  ?obs:Harness.obs ->
  ?shards:int ->
  Format.formatter ->
  unit
(** [jobs] (default 1) dispatches the sweep's independent cells through a
    {!O2_runtime.Domain_pool} of that many workers; the rows are
    bit-identical whatever [jobs] is. [obs.metrics] adds per-cell latency
    columns; [obs.trace] re-runs one representative 8 MB cell with a
    flight recorder and writes its Perfetto JSON there. [shards] (default
    0 = serial engine) runs every cell on the windowed sharded engine
    ({!Harness.setup}'s [shards]); sharded rows are bit-identical for any
    [shards >= 1] but not comparable with serial rows, and sharding is
    incompatible with the observability options. *)

val oscillation_default : Harness.oscillation
