(** Ablations for the design choices and open questions of Sections 4 and
    6: migration-cost sensitivity, read-only replication, working sets
    beyond on-chip memory, object clustering, packing pathologies repaired
    by the rebalancer, and the thread-clustering comparator.

    Each ablation's independent simulation cells run through
    {!O2_runtime.Domain_pool} with [jobs] workers; [jobs = 1] is plain
    sequential execution and results are identical whatever [jobs] is.

    The ablations whose cells go through {!Harness.setup} also take
    [shards] (default 0 = serial engine) and run every cell on the
    windowed sharded engine when it is positive — bit-identical for any
    [shards >= 1], not comparable with serial numbers, incompatible with
    [obs]. {!overflow} and {!clustering} drive their engines directly and
    stay serial. *)

val migration_cost :
  ?obs:Harness.obs ->
  ?shards:int ->
  quick:bool ->
  jobs:int ->
  Format.formatter ->
  unit
(** E6 — Section 6.1: sweep the end-to-end migration cost (active messages
    would lower it; slower interconnects raise it) at a fixed 8 MB working
    set and report CoreTime throughput against the baseline.
    [obs.metrics] appends per-cell op-latency percentile columns. *)

val replication :
  ?shards:int -> quick:bool -> jobs:int -> Format.formatter -> unit
(** E7 — Section 6.2: replicate hot read-only objects vs schedule them.
    Zipf-skewed, lock-free lookups: partitioning serialises the hot head
    on its home cores; replication lets every core read its own copy. *)

val overflow : quick:bool -> jobs:int -> Format.formatter -> unit
(** E8 — Section 6.2: working sets larger than total on-chip memory, with
    and without the frequency-aware replacement policy
    ([evict_for_hotter]). *)

val clustering : quick:bool -> jobs:int -> Format.formatter -> unit
(** E9 — Section 6.2: operations that use two objects; clustering
    co-locates the pair and halves migrations. *)

val rebalance :
  ?obs:Harness.obs ->
  ?shards:int ->
  quick:bool ->
  jobs:int ->
  Format.formatter ->
  unit
(** E11 — Section 4: first-fit packing piles the oscillating workload's
    shrunken active set onto few cores; the runtime monitor repairs it.
    Compares rebalancing on vs off. [obs.metrics] appends per-cell
    op-latency percentile columns. *)

val thread_clustering :
  ?shards:int -> quick:bool -> jobs:int -> Format.formatter -> unit
(** E12 — Section 2/7: thread clustering cannot help when every thread
    shares every directory; O2 scheduling can. *)

val op_shipping :
  ?shards:int -> quick:bool -> jobs:int -> Format.formatter -> unit
(** E13 — Section 6.1: carry operations by active message (~240 cycles)
    instead of full thread migration (~2000). Sweeps working-set sizes and
    shows shipping extends O2's advantage to smaller objects/operations. *)
