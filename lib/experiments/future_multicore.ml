open O2_simcore
open O2_workload
open O2_stats

let run ?(shards = 0) ~quick ~jobs ppf =
  Format.fprintf ppf
    "@.=== E10: a future 64-core multicore (scarcer bandwidth, cheap \
     migration) ===@.@.";
  Format.fprintf ppf "%a@.@." Config.pp Config.future64;
  if shards > 0 then
    Format.fprintf ppf
      "(windowed sharded engine, %d shard domain(s) requested)@.@." shards;
  let sizes = if quick then [ 24576 ] else [ 8192; 24576 ] in
  let measure = Harness.scaled ~quick 30_000_000 in
  let t =
    Table.create
      ~columns:
        [
          ("data (KB)", Table.Right);
          ("without CT", Table.Right);
          ("with CT", Table.Right);
          ("speedup", Table.Right);
        ]
  in
  let cell policy kb =
    let spec = Dir_workload.spec_for_data_kb ~kb () in
    (* scarce bandwidth makes warming slow, and spreading hundreds of
       first-fit assignments across 64 cores takes the monitor many
       periods *)
    let warmup = Harness.scaled ~quick (60_000_000 + (kb * 6000)) in
    Harness.setup ~cfg:Config.future64 ~policy ~warmup ~measure ~shards spec
  in
  let cells =
    List.concat_map
      (fun kb -> [ cell Coretime.Policy.baseline kb; cell Coretime.Policy.default kb ])
      sizes
  in
  let points = Harness.run_cells ~jobs cells in
  let speedups = ref [] in
  let rec rows sizes points =
    match (sizes, points) with
    | [], [] -> ()
    | kb :: sizes, base :: ct :: points ->
        let sp = ct.Harness.kres_per_sec /. base.Harness.kres_per_sec in
        speedups := sp :: !speedups;
        Table.add_row t
          [
            string_of_int kb;
            Printf.sprintf "%.0f" base.Harness.kres_per_sec;
            Printf.sprintf "%.0f" ct.Harness.kres_per_sec;
            Printf.sprintf "%.2fx" sp;
          ];
        rows sizes points
    | _ -> assert false
  in
  rows sizes points;
  Format.pp_print_string ppf (Table.render t);
  (match Summary.of_list !speedups with
  | Some s ->
      Format.fprintf ppf
        "mean speedup %.2fx (the 16-core machine's beyond-L3 band is \
         ~2-3x): more cores per byte of off-chip bandwidth favour O2 \
         scheduling, as Section 6.1 predicts.@."
        s.Summary.mean
  | None -> ())
