(** Allocation pass over the hot-path manifest.

    Flags boxed constructors, tuples, records, array literals, lazy
    suspensions, non-constant closures, partial applications, [ref]
    cells, known-allocating stdlib calls, and tail-position float boxing
    inside manifest functions. Raising applications are skipped;
    [@alloc_ok "reason"] on an expression or binding suppresses the
    subtree. *)

val check_module :
  ?manifest:Manifest.entry list -> Cmt_load.module_info -> Finding.t list

val check :
  ?manifest:Manifest.entry list -> Cmt_load.module_info list -> Finding.t list
