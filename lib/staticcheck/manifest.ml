(* The hot-path manifest: functions whose bodies must not allocate. These
   are exactly the paths the Gc.minor_words probes in test/suite_hotpath.ml
   pin dynamically — the static pass checks every line of them, not just
   the call sites a probe happens to drive.

   The check is intraprocedural: a manifest function may call helpers
   (growth paths, raise paths) that allocate; what it may not do is
   construct blocks, capture closures, or build partial applications in
   its own body without an explicit [@alloc_ok "reason"] escape hatch. *)

type entry = { module_ : string; functions : string list }

let default =
  [
    (* innermost engine loop: three-parallel-array heap *)
    { module_ = "Event_queue";
      functions =
        [ "before"; "swap"; "sift_up"; "sift_down"; "push"; "min_time";
          "pop_min"; "length"; "is_empty" ] };
    (* the event loop around min_time/pop_min, serial and windowed *)
    { module_ = "Engine";
      functions =
        [ "serial_run"; "chip_loop"; "run_chip_range"; "pump_facade";
          "run_hooks"; "barrier_merge"; "sum_nondaemon"; "any_outbox";
          "min_event_time" ] };
    (* flat extent lookup on every simulated access *)
    { module_ = "Memsys";
      functions = [ "find"; "bsearch"; "index_at"; "object_id_at" ] };
    (* shard logs: pushed on the presence/invalidation write paths *)
    { module_ = "Intvec";
      functions = [ "push"; "length"; "get"; "unsafe_get"; "clear"; "is_empty" ] };
    (* cross-chip message buffering and the per-window round barrier;
       Shard_sync groups its API into submodules, hence the dotted names *)
    { module_ = "Shard_sync";
      functions =
        [ "Outbox.push"; "Outbox.drain"; "Outbox.is_empty"; "Outbox.length";
          "Barrier.post_round"; "Barrier.wait_round"; "Barrier.worker_done";
          "Barrier.wait_workers"; "Barrier.wait_workers_from";
          "Barrier.broadcast"; "Barrier.spin_newer"; "Barrier.spin_at_least";
          "Barrier.shutdown" ] };
    (* cache fill/evict int protocol *)
    { module_ = "Cache";
      functions = [ "probe"; "fill_evict"; "invalidate"; "drop"; "notify_remove" ] };
    { module_ = "Lru";
      functions =
        [ "probe_from"; "probe"; "find_slot"; "mem"; "touch"; "unlink";
          "push_front"; "install"; "add_evict"; "remove"; "backward_shift";
          "table_delete_at"; "table_remove"; "next_of"; "prev_of";
          "pack_link"; "set_next"; "set_prev"; "hash" ] };
    (* the access walk itself: every simulated load and store *)
    { module_ = "Machine";
      functions =
        [ "line_of"; "read"; "write"; "read_line"; "read_lines";
          "write_lines"; "dram_batch_loop"; "dram_batch_cost"; "fill_l1";
          "fill_l2"; "fill_l3"; "fill_private"; "pset_core"; "pclear_core";
          "pset_chip"; "pclear_chip"; "core_still_holds";
          "invalidate_core_bits"; "invalidate_chip_bits";
          "serial_inval_words"; "shard_inval_bits"; "shard_inval_words";
          "shard_inval_chip_bits"; "invalidate_others"; "notify_fill";
          "notify_remove"; "notify_access"; "fill_list"; "remove_list";
          "access_list" ] };
    (* flat per-line presence masks on the miss path of every simulated
       load: direct indexing, so the old hash-probe helpers are gone *)
    { module_ = "Presence";
      functions =
        [ "words_empty"; "line_empty"; "set_core"; "set_chip";
          "clear_core"; "clear_chip"; "core_word"; "chip_holders";
          "cached_anywhere"; "bit_index"; "nearest_core_bits";
          "nearest_core_words"; "nearest_core_holder"; "nearest_chip_bits";
          "nearest_chip_holder"; "core_popcount" ] };
    (* FAT scan kernel: in-place 8.3 compare + packed scan + chain step *)
    { module_ = "Fat_types";
      functions = [ "is_end"; "is_deleted"; "name_eq_from"; "name_matches" ] };
    { module_ = "Fat_dir"; functions = [ "scan_slots"; "scan_cluster" ] };
    { module_ = "Fat_image"; functions = [ "next_cluster" ] };
    (* monitor indexes: O(active set) iteration and accounting *)
    { module_ = "Object_table";
      functions =
        [ "iter_links"; "iter_assigned"; "fold_links"; "fold_assigned";
          "note_op"; "iter_active_links"; "iter_active"; "drain_links";
          "drain_active"; "fits"; "assigned_count"; "active_count" ] };
    (* quiet monitor period *)
    { module_ = "Rebalancer";
      functions = [ "step"; "demotion_pressure"; "decisions_on" ] };
    (* recorder-off probe emission *)
    { module_ = "Probe"; functions = [ "emit"; "notify"; "active" ] };
    (* native backend: the steal loop, cross-domain delivery and worker
       dispatch run on every real-domain operation — the dummy-sentinel
       protocol exists precisely so these stay allocation-free *)
    { module_ = "Deque";
      functions = [ "push"; "pop"; "steal"; "length"; "is_empty" ] };
    { module_ = "Inbox";
      functions =
        [ "drain_into"; "chain_length"; "fill_scratch"; "apply_scratch";
          "is_empty" ] };
    { module_ = "Native_pool";
      functions =
        [ "loop"; "sweep"; "run_task"; "post"; "notify"; "park"; "finish";
          "current_domain" ] };
    { module_ = "Native_backend";
      functions = [ "with_op"; "touch"; "compute"; "delta" ] };
    (* native telemetry writers: every call site in the pool/backend is
       guarded by a cached bool, and when the recorder IS on the writers
       must still be flat int stores — ring append, counter bumps,
       bucket increments. now_ns is deliberately absent: its int64
       result boxes, a cost only ever paid with telemetry attached. *)
    { module_ = "Telemetry";
      functions =
        [ "record_at"; "observe"; "bucket_of"; "note_steal"; "note_park";
          "note_wake"; "note_inbox_batch"; "note_spawned"; "op_submit";
          "note_ship_out"; "note_ship_in"; "note_start"; "note_end";
          "observe_home"; "observe_shipped"; "observe_ship_delay";
          "observe_exec"; "note_rebalance"; "note_quiesce"; "enabled";
          "token_sink"; "token_seq" ] };
  ]

let functions_for manifest ~module_ =
  match List.find_opt (fun e -> e.module_ = module_) manifest with
  | Some e -> e.functions
  | None -> []

let total_functions manifest =
  List.fold_left (fun acc e -> acc + List.length e.functions) 0 manifest
