(** Shared typedtree judgements: which expressions allocate, which calls
    raise, which calls block. All intraprocedural and no-flambda. *)

val loc_line : Typedtree.expression -> int
val loc_file : Typedtree.expression -> string

val callee_path : Typedtree.expression -> Path.t option
val is_raising_path : Path.t -> bool
val prim_name : Types.value_description -> string option
val is_allocating_fn : Path.t -> bool
val is_allocating_op : Path.t -> bool
val is_blocking_call : Path.t -> bool
val allocating_prims : string list

val free_variables :
  top_idents:(string, unit) Hashtbl.t -> Typedtree.expression -> string list
(** Names used below this expression that are neither bound below it nor
    at the module's top level. *)

val nonconstant_closure :
  top_idents:(string, unit) Hashtbl.t -> Typedtree.expression -> bool
(** Does this [fun] capture anything beyond the module's own top level?
    Constant closures are statically allocated and free per call. *)

val alloc_of_node :
  top_idents:(string, unit) Hashtbl.t ->
  Typedtree.expression ->
  (string * string) option
(** [(code, description)] when evaluating the node's own constructor
    allocates; subexpressions are not considered. *)

val is_float_type : Typedtree.expression -> bool
