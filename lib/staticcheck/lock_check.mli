(** Lock-discipline pass.

    Computes the set of possible spinlock depths through every function
    body: [Api.lock]/[Api.unlock] must balance on all normal exits, loop
    bodies must preserve depth, and while a lock may be held neither
    blocking calls (yield, migration, [Engine.run], real [Mutex]/
    [Condition]/[Unix] waits) nor allocating constructs are permitted.
    Simulated memory traffic ([Api.read]/[write]/[compute]) under a lock
    is allowed by design. [@alloc_ok] silences only the
    allocation-under-lock judgement, never depth tracking. *)

val check_module : Cmt_load.module_info -> Finding.t list
val check : Cmt_load.module_info list -> Finding.t list
