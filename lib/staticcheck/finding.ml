type t = {
  pass : string;  (* "alloc" | "effect" | "lock" | "raw" *)
  code : string;
  file : string;
  line : int;
  func : string;  (* enclosing function, "" when not applicable *)
  message : string;
}

let make ~pass ~code ~file ~line ~func message =
  { pass; code; file; line; func; message }

let compare a b =
  let c = Stdlib.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.line b.line in
    if c <> 0 then c else Stdlib.compare (a.pass, a.code) (b.pass, b.code)

let pp ppf f =
  Format.fprintf ppf "%s:%d: [%s/%s]%s %s" f.file f.line f.pass f.code
    (if f.func = "" then "" else Printf.sprintf " in %s:" f.func)
    f.message

(* Minimal JSON string escaping: the fields we emit are paths, identifiers
   and prose produced by this library, but a fixture path could still
   contain a quote or backslash. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf
    {|{"pass":"%s","code":"%s","file":"%s","line":%d,"function":"%s","message":"%s"}|}
    (json_escape f.pass) (json_escape f.code) (json_escape f.file) f.line
    (json_escape f.func) (json_escape f.message)
