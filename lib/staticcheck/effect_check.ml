(* Effect-freedom pass for observability listeners.

   Every listener registered under lib/obs — via [Probe.subscribe] or a
   [Machine.observe] observer record — must be effect-free with respect
   to the simulation: no runtime API calls, no probe re-emission, no
   I/O, no raising, and no mutation of non-local state. "Non-local"
   means rooted at another module ([Pdot]) or at this module's own top
   level; mutation through a parameter (the listener's own accumulator
   state, threaded explicitly) is the whole point of a recorder and is
   allowed.

   Resolution is transitive within the module: a listener that is a
   partial application of a top-level function pulls that function's
   body (and anything top-level it references) into the scanned set. *)

open Typedtree

let io_printf = [ "printf"; "eprintf"; "fprintf"; "kfprintf"; "ifprintf" ]

let io_stdlib =
  [ "print_endline"; "print_string"; "print_newline"; "print_int";
    "print_char"; "print_float"; "prerr_endline"; "prerr_string";
    "prerr_newline"; "output_string"; "output_char"; "output_bytes" ]

let engine_scheduling = [ "spawn"; "run"; "at"; "every"; "finalize_idle" ]

(* Classify a called path as a banned effect. *)
let banned_call p =
  if Expr_scan.is_raising_path p then
    Some ("effect-raise", "raises (listeners must not throw into the engine)")
  else
    match List.rev (Cmt_load.path_components p) with
    | fn :: m :: _ ->
        if m = "Api" then
          Some ("effect-api", Printf.sprintf "calls Api.%s from a listener" fn)
        else if m = "Engine" && List.mem fn engine_scheduling then
          Some
            ( "effect-engine",
              Printf.sprintf "calls Engine.%s from a listener" fn )
        else if m = "Probe" && fn = "emit" then
          Some ("effect-emit", "re-emits probe events from a listener")
        else if (m = "Printf" || m = "Format") && List.mem fn io_printf then
          Some ("effect-io", Printf.sprintf "performs I/O via %s.%s" m fn)
        else if m = "Stdlib" && List.mem fn io_stdlib then
          Some ("effect-io", Printf.sprintf "performs I/O via %s" fn)
        else if m = "Unix" then
          Some ("effect-io", Printf.sprintf "calls Unix.%s from a listener" fn)
        else None
    | [ fn ] ->
        if List.mem fn io_stdlib then
          Some ("effect-io", Printf.sprintf "performs I/O via %s" fn)
        else None
    | [] -> None

(* Root identifier of an lvalue: walk field projections and array/bytes
   reads back to the base. [None] (an unrecognized shape) is treated as
   local, biasing toward no false positives. *)
let rec mutation_root (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Some p
  | Texp_field (b, _, _) -> mutation_root b
  | Texp_apply (f, args) -> (
      match f.exp_desc with
      | Texp_ident (_, _, vd) -> (
          match Expr_scan.prim_name vd with
          | Some
              ( "%array_safe_get" | "%array_unsafe_get" | "%string_safe_get"
              | "%string_unsafe_get" | "%bytes_safe_get" | "%bytes_unsafe_get"
              | "%field0" | "%field1" ) -> (
              match args with
              | (_, Some a) :: _ -> mutation_root a
              | _ -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

let set_prims =
  [ "%array_safe_set"; "%array_unsafe_set"; "%bytes_safe_set";
    "%bytes_unsafe_set"; "%setfield0" ]

(* Collect registered listeners: (origin description, expression). *)
let listeners (m : Cmt_load.module_info) =
  let acc = ref [] in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_apply (f, args) -> (
        match Expr_scan.callee_path f with
        | Some p when Cmt_load.path_is ~modname:"Probe" ~fn:"subscribe" p -> (
            let plain =
              List.filter_map
                (fun (l, a) ->
                  match (l, a) with
                  | Asttypes.Nolabel, Some a -> Some a
                  | _ -> None)
                args
            in
            match List.rev plain with
            | l :: _ -> acc := ("Probe.subscribe listener", l) :: !acc
            | [] -> ())
        | Some p when Cmt_load.path_is ~modname:"Machine" ~fn:"observe" p ->
            List.iter
              (fun (_, a) ->
                match a with
                | Some { exp_desc = Texp_record { fields; _ }; _ } ->
                    Array.iter
                      (fun (ld, defn) ->
                        match defn with
                        | Overridden (_, fe) ->
                            acc :=
                              ( "Machine.observe " ^ ld.Types.lbl_name, fe )
                              :: !acc
                        | Kept _ -> ())
                      fields
                | _ -> ())
              args
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.structure iter m.Cmt_load.structure;
  List.rev !acc

let analyze (m : Cmt_load.module_info) ~bindings ~tops (origin, expr0) =
  let out = ref [] in
  let add ~code ~line msg =
    out :=
      Finding.make ~pass:"effect" ~code ~file:m.Cmt_load.source ~line
        ~func:origin msg
      :: !out
  in
  let visited = Hashtbl.create 8 in
  let pending = Queue.create () in
  Queue.add expr0 pending;
  let enqueue name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.add visited name ();
      match Hashtbl.find_opt bindings name with
      | Some vb -> Queue.add vb.vb_expr pending
      | None -> ()
    end
  in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _)
      when Hashtbl.mem tops (Ident.unique_name id) ->
        enqueue (Ident.name id)
    | Texp_apply (f, args) -> (
        match Expr_scan.callee_path f with
        | Some p -> (
            match banned_call p with
            | Some (code, msg) -> add ~code ~line:(Expr_scan.loc_line e) msg
            | None -> (
                (* mutation through a set primitive *)
                match f.exp_desc with
                | Texp_ident (_, _, vd) -> (
                    match Expr_scan.prim_name vd with
                    | Some pn when List.mem pn set_prims -> (
                        match args with
                        | (_, Some target) :: _ -> (
                            match mutation_root target with
                            | Some (Path.Pdot _ as root) ->
                                add ~code:"effect-mutation"
                                  ~line:(Expr_scan.loc_line e)
                                  (Printf.sprintf
                                     "mutates non-local state %s"
                                     (Cmt_load.path_name root))
                            | Some (Path.Pident id)
                              when Hashtbl.mem tops (Ident.unique_name id) ->
                                add ~code:"effect-mutation"
                                  ~line:(Expr_scan.loc_line e)
                                  (Printf.sprintf
                                     "mutates module-level state %s"
                                     (Ident.name id))
                            | _ -> ())
                        | _ -> ())
                    | _ -> ())
                | _ -> ()))
        | None -> ())
    | Texp_setfield (target, _, ld, _) -> (
        match mutation_root target with
        | Some (Path.Pdot _ as root) ->
            add ~code:"effect-mutation" ~line:(Expr_scan.loc_line e)
              (Printf.sprintf "mutates non-local field %s.%s"
                 (Cmt_load.path_name root) ld.Types.lbl_name)
        | Some (Path.Pident id) when Hashtbl.mem tops (Ident.unique_name id)
          ->
            add ~code:"effect-mutation" ~line:(Expr_scan.loc_line e)
              (Printf.sprintf "mutates module-level field %s.%s"
                 (Ident.name id) ld.Types.lbl_name)
        | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  while not (Queue.is_empty pending) do
    iter.expr iter (Queue.pop pending)
  done;
  !out

let check_module (m : Cmt_load.module_info) =
  match listeners m with
  | [] -> []
  | ls ->
      let bindings = Cmt_load.top_bindings m.Cmt_load.structure in
      let tops = Cmt_load.top_ident_stamps m.Cmt_load.structure in
      List.sort Finding.compare
        (List.concat_map (analyze m ~bindings ~tops) ls)

(* Restricted to lib/obs: those are the modules whose listeners ride on
   the engine's probe stream; test fixtures call [check_module]
   directly. *)
let check mods =
  List.sort Finding.compare
    (List.concat_map
       (fun (m : Cmt_load.module_info) ->
         let src = m.Cmt_load.source in
         if String.length src >= 8 && String.sub src 0 8 = "lib/obs/" then
           check_module m
         else [])
       mods)
