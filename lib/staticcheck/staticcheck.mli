(** Typedtree-based static analysis over the repo's own .cmt files.

    Three semantic passes (allocation on the hot-path manifest,
    effect-freedom of observability listeners, spinlock discipline) plus
    the raw-primitive allowlist, all running on dune's typed trees
    instead of source text. *)

type report = {
  findings : Finding.t list;
  modules_scanned : int;
  manifest_functions : int;
  listeners_checked : int;
}

val run_on_modules :
  ?manifest:Manifest.entry list ->
  ?allowlist:string list ->
  Cmt_load.module_info list ->
  report
(** Run all four passes over an explicit module list (used by the test
    fixtures). *)

val run :
  ?build_dir:string ->
  ?manifest:Manifest.entry list ->
  ?allowlist:string list ->
  root:string ->
  unit ->
  (report, string) result
(** Discover .cmt files under a build tree rooted at [root] (or
    [build_dir]) and run all passes. [Error] when no cmts are found. *)

val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> string
