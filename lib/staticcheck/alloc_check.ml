(* Allocation pass: every function named in the hot-path manifest is
   scanned for allocating constructs in its own body. Raising applications
   (error paths) are excluded, and an [@alloc_ok "reason"] attribute on an
   expression or on the whole binding suppresses the check for that
   subtree — the reason string is the reviewer's contract. *)

open Typedtree

type ctx = {
  file : string;
  func : string;
  tops : (string, unit) Hashtbl.t;
  out : Finding.t list ref;
}

let add ctx ~code ~line msg =
  ctx.out :=
    Finding.make ~pass:"alloc" ~code ~file:ctx.file ~line ~func:ctx.func msg
    :: !(ctx.out)

let is_raising_apply (e : expression) =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match Expr_scan.callee_path f with
      | Some p -> Expr_scan.is_raising_path p
      | None -> false)
  | _ -> false

(* Walk the body; report each allocating node; skip [@alloc_ok] subtrees
   and raising applications wholesale. A curried chain
   [fun a -> fun b -> body] compiles to one n-ary function, so only the
   head of the chain is judged as a closure — the inner [fun]s would
   otherwise spuriously "capture" the outer parameters. *)
let scan ctx root =
  let rec expr sub (e : expression) =
    if Cmt_load.has_attr "alloc_ok" e.exp_attributes then ()
    else if is_raising_apply e then ()
    else begin
      (match Expr_scan.alloc_of_node ~top_idents:ctx.tops e with
      | Some (code, what) -> add ctx ~code ~line:(Expr_scan.loc_line e) what
      | None -> ());
      match e.exp_desc with
      | Texp_function { cases; _ } ->
          List.iter
            (fun c ->
              (match c.c_guard with Some g -> expr sub g | None -> ());
              descend_chain sub c.c_rhs)
            cases
      | _ -> Tast_iterator.default_iterator.expr sub e
    end
  and descend_chain sub (e : expression) =
    match e.exp_desc with
    | Texp_function { cases; _ }
      when not (Cmt_load.has_attr "alloc_ok" e.exp_attributes) ->
        List.iter
          (fun c ->
            (match c.c_guard with Some g -> expr sub g | None -> ());
            descend_chain sub c.c_rhs)
          cases
    | _ -> expr sub e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.expr iter root

(* Float boxing: a float produced by arithmetic in tail position must be
   boxed to be returned. Narrow by construction — only flags arithmetic
   primitives whose fresh float escapes, not loads of already-boxed
   floats. *)
let float_arith_prims =
  [ "%addfloat"; "%subfloat"; "%mulfloat"; "%divfloat"; "%negfloat";
    "%absfloat" ]

let rec tail_exprs (e : expression) acc =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.fold_left (fun acc c -> tail_exprs c.c_rhs acc) acc cases
  | Texp_let (_, _, b) -> tail_exprs b acc
  | Texp_sequence (_, b) -> tail_exprs b acc
  | Texp_ifthenelse (_, t, Some f) -> tail_exprs t (tail_exprs f acc)
  | Texp_ifthenelse (_, t, None) -> tail_exprs t acc
  | Texp_match (_, cases, _) ->
      List.fold_left (fun acc c -> tail_exprs c.c_rhs acc) acc cases
  | Texp_try (b, cases) ->
      List.fold_left (fun acc c -> tail_exprs c.c_rhs acc) (tail_exprs b acc)
        cases
  | _ -> e :: acc

let check_float_tails ctx body =
  List.iter
    (fun (e : expression) ->
      if not (Cmt_load.has_attr "alloc_ok" e.exp_attributes) then
        match e.exp_desc with
        | Texp_apply (f, _) when Expr_scan.is_float_type e -> (
            match f.exp_desc with
            | Texp_ident (_, _, vd) -> (
                match Expr_scan.prim_name vd with
                | Some pn when List.mem pn float_arith_prims ->
                    add ctx ~code:"alloc-floatbox" ~line:(Expr_scan.loc_line e)
                      "fresh float escapes boxed from tail position"
                | _ -> ())
            | _ -> ())
        | _ -> ())
    (tail_exprs body [])

let check_module ?(manifest = Manifest.default) (m : Cmt_load.module_info) =
  let fns = Manifest.functions_for manifest ~module_:m.Cmt_load.short in
  if fns = [] then []
  else begin
    let bindings = Cmt_load.top_bindings m.Cmt_load.structure in
    let tops = Cmt_load.top_ident_stamps m.Cmt_load.structure in
    let out = ref [] in
    List.iter
      (fun fn ->
        match Hashtbl.find_opt bindings fn with
        | None ->
            out :=
              Finding.make ~pass:"alloc" ~code:"manifest-missing"
                ~file:m.Cmt_load.source ~line:0 ~func:fn
                (Printf.sprintf
                   "manifest names %s.%s but no such top-level function exists"
                   m.Cmt_load.short fn)
              :: !out
        | Some vb ->
            if Cmt_load.has_attr "alloc_ok" vb.vb_attributes then ()
            else begin
              let file =
                let f = Expr_scan.loc_file vb.vb_expr in
                if f = "" then m.Cmt_load.source else f
              in
              let ctx = { file; func = fn; tops; out } in
              scan ctx vb.vb_expr;
              check_float_tails ctx vb.vb_expr
            end)
      fns;
    List.sort Finding.compare !out
  end

let check ?manifest mods =
  List.sort Finding.compare
    (List.concat_map (check_module ?manifest) mods)
