(** Effect-freedom pass for observability listeners.

    Listeners registered with [Probe.subscribe] or [Machine.observe] must
    not call the runtime API, schedule engine work, re-emit probe events,
    perform I/O, raise, or mutate state that is not reachable from their
    own parameters. Same-module top-level helpers are resolved
    transitively. *)

val listeners : Cmt_load.module_info -> (string * Typedtree.expression) list
(** Registered listeners found in a module, with a human-readable origin
    label per registration site. *)

val check_module : Cmt_load.module_info -> Finding.t list
(** Check every listener registered anywhere in one module. *)

val check : Cmt_load.module_info list -> Finding.t list
(** Check all [lib/obs/] modules in the tree. *)
