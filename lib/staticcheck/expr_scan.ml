(* Shared typedtree expression analysis: which expressions allocate, which
   calls raise, which calls block — used by the allocation pass (over the
   hot-path manifest) and by the lock-discipline pass (under a held
   spinlock). All judgements are intraprocedural and no-flambda: a callee
   that allocates internally is that function's own problem (and the
   dynamic Gc.minor_words probes' last line of defence). *)

open Typedtree

let loc_line (e : expression) = e.exp_loc.Location.loc_start.Lexing.pos_lnum
let loc_file (e : expression) = e.exp_loc.Location.loc_start.Lexing.pos_fname

(* --------------------------------------------------------------- *)
(* Callee classification                                            *)

let callee_path (e : expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None

(* Functions that never return: their whole application (arguments
   included) is an error path, excluded from allocation accounting just
   as it never runs inside a Gc.minor_words probe window. *)
let raising = [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit" ]

let is_raising_path p =
  match List.rev (Cmt_load.path_components p) with
  | last :: _ -> List.mem last raising
  | [] -> false

(* Primitive externals ("%identity", "%array_safe_get", ...) compile to
   inline code; the only one that allocates a block by itself is ref. *)
let allocating_prims = [ "%makemutable" ]

let prim_name (vd : Types.value_description) =
  match vd.Types.val_kind with
  | Types.Val_prim p -> Some p.Primitive.prim_name
  | _ -> None

(* Stdlib entry points that unavoidably allocate their result. Matched on
   the last two normalized path components so both [List.map] and
   [Stdlib.List.map] hit. Deliberately not exhaustive — the construct
   checks below are the primary detector; this list catches the common
   "allocation hidden behind a call" cases. *)
let allocating_fns =
  [
    ("Array", [ "make"; "init"; "copy"; "append"; "sub"; "of_list"; "to_list";
                "map"; "mapi"; "make_matrix"; "concat"; "split"; "combine" ]);
    ("List", [ "map"; "mapi"; "rev"; "append"; "concat"; "flatten"; "init";
               "filter"; "filter_map"; "concat_map"; "sort"; "stable_sort";
               "sort_uniq"; "merge"; "rev_append"; "cons"; "split"; "combine";
               "of_seq" ]);
    ("String", [ "make"; "init"; "sub"; "concat"; "cat"; "split_on_char";
                 "uppercase_ascii"; "lowercase_ascii"; "capitalize_ascii";
                 "escaped"; "trim"; "of_seq" ]);
    ("Bytes", [ "create"; "make"; "init"; "copy"; "sub"; "extend"; "cat";
                "of_string"; "to_string"; "sub_string" ]);
    ("Printf", [ "sprintf" ]);
    ("Format", [ "asprintf" ]);
    ("Buffer", [ "create"; "contents"; "to_bytes"; "sub" ]);
    ("Hashtbl", [ "create"; "copy"; "fold"; "to_seq"; "to_seq_keys";
                  "to_seq_values" ]);
    ("Queue", [ "create"; "add"; "push"; "copy"; "to_seq"; "of_seq" ]);
    ("Stack", [ "create"; "push"; "of_seq"; "to_seq" ]);
    ("Option", [ "some"; "map"; "bind"; "join"; "to_list"; "to_seq" ]);
    ("Result", [ "ok"; "error"; "map"; "bind"; "to_option"; "to_list" ]);
    ("Stdlib", [ "string_of_int"; "string_of_float"; "string_of_bool";
                 "float_of_string"; "int_of_string_opt"; "float_of_string_opt" ]);
  ]

let stdlib_toplevel_allocating =
  [ "string_of_int"; "string_of_float"; "string_of_bool"; "float_of_string";
    "int_of_string_opt"; "float_of_string_opt" ]

let is_allocating_fn p =
  match List.rev (Cmt_load.path_components p) with
  | fn :: m :: _ ->
      List.exists (fun (m', fns) -> m = m' && List.mem fn fns) allocating_fns
  | [ fn ] -> List.mem fn stdlib_toplevel_allocating
  | [] -> false

(* Operators that build fresh structure. *)
let allocating_ops = [ "^"; "@"; "^^" ]

let is_allocating_op p =
  match List.rev (Cmt_load.path_components p) with
  | op :: _ -> List.mem op allocating_ops
  | [] -> false

(* Calls that block or reschedule the simulated thread: forbidden while a
   spinlock is held. Api.read/write/compute are deliberately absent — a
   locked directory scan charging simulated memory reads is the modeled
   behaviour (the paper's FAT workload holds the dir lock across the
   scan); only operations that surrender the core are blocking. *)
let blocking_under_lock =
  [
    ("Api", "yield");
    ("Api", "migrate_to");
    ("Api", "ship_to");
    ("Engine", "run");
    ("Domain", "join");
    ("Mutex", "lock");
    ("Condition", "wait");
    ("Unix", "sleep");
    ("Unix", "sleepf");
  ]

let is_blocking_call p =
  match List.rev (Cmt_load.path_components p) with
  | fn :: m :: _ -> List.mem (m, fn) blocking_under_lock
  | _ -> false

(* --------------------------------------------------------------- *)
(* Free variables (constant-closure detection)                      *)

(* A nested [fun] with no free variables outside the module's top level is
   a constant closure: closure conversion allocates it statically, so it
   costs nothing per call. Idents are compared by [Ident.unique_name]
   (name + stamp), so locals shadowing a top-level name stay distinct. *)
let free_variables ~top_idents (e : expression) =
  let used = Hashtbl.create 16 in
  let bound = Hashtbl.create 16 in
  let iter =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub ex ->
          (match ex.exp_desc with
          | Texp_ident (Path.Pident id, _, _) ->
              Hashtbl.replace used (Ident.unique_name id) (Ident.name id)
          | Texp_for (id, _, _, _, _, _) ->
              (* the loop index is bound as a bare Ident, not a pattern *)
              Hashtbl.replace bound (Ident.unique_name id) ()
          | _ -> ());
          Tast_iterator.default_iterator.expr sub ex);
      pat =
        (fun (type k) sub (p : k general_pattern) ->
          (match p.pat_desc with
          | Tpat_var (id, _) | Tpat_alias (_, id, _) ->
              Hashtbl.replace bound (Ident.unique_name id) ()
          | _ -> ());
          Tast_iterator.default_iterator.pat sub p);
    }
  in
  iter.expr iter e;
  List.sort_uniq compare
    (Hashtbl.fold
       (fun uniq name acc ->
         if Hashtbl.mem bound uniq || Hashtbl.mem top_idents uniq then acc
         else name :: acc)
       used [])

let nonconstant_closure ~top_idents e = free_variables ~top_idents e <> []

(* --------------------------------------------------------------- *)
(* Allocation judgement for a single node                           *)

(* Returns [Some (code, what)] when evaluating this node's own constructor
   (not its subexpressions) allocates on the minor heap. *)
let alloc_of_node ~top_idents (e : expression) =
  match e.exp_desc with
  | Texp_construct (lid, cd, args) ->
      if args = [] then None
      else
        Some
          ( "alloc-construct",
            Printf.sprintf "constructor %s boxes its argument%s"
              (String.concat "." (Longident.flatten lid.Location.txt))
              (if List.length args > 1 then "s" else "") )
  | Texp_variant (_, Some _) -> Some ("alloc-construct", "polymorphic variant with payload")
  | Texp_tuple _ -> Some ("alloc-tuple", "tuple construction")
  | Texp_record _ -> Some ("alloc-record", "record construction")
  | Texp_array [] -> None
  | Texp_array _ -> Some ("alloc-array", "array literal")
  | Texp_lazy _ -> Some ("alloc-lazy", "lazy suspension")
  | Texp_function _ -> (
      match free_variables ~top_idents e with
      | [] -> None
      | fvs ->
          Some
            ( "alloc-closure",
              "closure capturing " ^ String.concat ", " fvs ))
  | Texp_apply (f, _) -> (
      (* partial application: the result is itself a function -> closure *)
      let partial =
        match Types.get_desc e.exp_type with
        | Types.Tarrow _ -> true
        | _ -> false
      in
      if partial then Some ("alloc-partial", "partial application builds a closure")
      else
        match callee_path f with
        | None -> None
        | Some p ->
            if is_allocating_op p then
              Some
                ( "alloc-call",
                  Printf.sprintf "operator %s allocates its result"
                    (Cmt_load.path_tail ~k:1 p) )
            else
              let prim =
                match f.exp_desc with
                | Texp_ident (_, _, vd) -> prim_name vd
                | _ -> None
              in
              (match prim with
              | Some pn when List.mem pn allocating_prims ->
                  Some ("alloc-ref", "ref cell allocation")
              | Some _ -> None (* other primitives compile inline, no block *)
              | None ->
                  if is_allocating_fn p then
                    Some
                      ( "alloc-call",
                        Printf.sprintf "%s allocates its result"
                          (Cmt_load.path_tail ~k:2 p) )
                  else None))
  | _ -> None

(* Is this expression's type [float]? Used by the tail-position boxing
   check: a fresh float computed and returned escapes boxed. *)
let is_float_type (e : expression) =
  match Types.get_desc e.exp_type with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false
