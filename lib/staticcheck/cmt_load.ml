(* Loading dune's .cmt files and the small bits of compiler-libs plumbing
   every pass needs: normalized path names, top-level binding maps, and
   the [@alloc_ok] escape-hatch attribute. *)

type module_info = {
  cmt_path : string;
  modname : string;  (* e.g. "O2_runtime__Event_queue" *)
  short : string;  (* e.g. "Event_queue" *)
  source : string;  (* e.g. "lib/runtime/event_queue.ml" *)
  structure : Typedtree.structure;
}

(* Dune's wrapping compiles Event_queue as O2_runtime__Event_queue; the
   short name is what manifests and messages use. The separator is the
   last "__" followed by a regular character — module names themselves
   may contain single underscores (Object_table, Fat_dir). *)
let short_of_modname m =
  let n = String.length m in
  let rec last_sep i best =
    if i >= n - 1 then best
    else if m.[i] = '_' && m.[i + 1] = '_' && i + 2 < n && m.[i + 2] <> '_'
    then last_sep (i + 1) (Some (i + 2))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some j -> String.sub m j (n - j)
  | None -> m

let load cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ -> None
  | infos -> (
      match infos.Cmt_format.cmt_annots with
      | Cmt_format.Implementation structure ->
          let source =
            match infos.Cmt_format.cmt_sourcefile with
            | Some s -> s
            | None -> cmt_path
          in
          Some
            {
              cmt_path;
              modname = infos.Cmt_format.cmt_modname;
              short = short_of_modname infos.Cmt_format.cmt_modname;
              source;
              structure;
            }
      | _ -> None)

(* Walk [root] for .cmt files, skipping the duplicate copies dune places
   under _build/install and any VCS directories. *)
let discover ~root =
  let acc = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | exception Sys_error _ -> ()
    | entries ->
        Array.sort compare entries;
        Array.iter
          (fun entry ->
            let path = Filename.concat dir entry in
            if Sys.is_directory path then begin
              if entry <> "install" && entry <> ".git" then walk path
            end
            else if Filename.check_suffix entry ".cmt" then
              acc := path :: !acc)
          entries
  in
  if Sys.file_exists root && Sys.is_directory root then walk root;
  List.rev !acc

(* Candidate build roots for cmt discovery, in preference order: an
   explicit dir, the root itself (a build tree, where the .objs
   directories sit alongside lib/), and _build/default under a source
   root. Only locations under [root] are probed: a typo'd root must
   error, not silently scan whatever tree the cwd happens to hold. *)
let find_build_root ?build_dir ~root () =
  let has_objs dir =
    Sys.file_exists (Filename.concat dir "lib")
    && List.exists
         (fun sub ->
           let d = Filename.concat (Filename.concat dir "lib") sub in
           Sys.file_exists d && Sys.is_directory d
           && Array.exists
                (fun e -> String.length e > 5 && Filename.check_suffix e ".objs")
                (try Sys.readdir d with Sys_error _ -> [||]))
         (try
            Array.to_list (Sys.readdir (Filename.concat dir "lib"))
          with Sys_error _ -> [])
  in
  let candidates =
    (match build_dir with Some d -> [ d ] | None -> [])
    @ [ root; Filename.concat root "_build/default" ]
  in
  List.find_opt has_objs candidates

let load_tree ?build_dir ~root () =
  match find_build_root ?build_dir ~root () with
  | None -> Error "no build tree with .cmt files found (run `dune build @check`)"
  | Some broot ->
      let seen = Hashtbl.create 64 in
      let mods =
        List.filter_map
          (fun p ->
            match load p with
            | Some m
              when (not (Hashtbl.mem seen m.modname))
                   && String.length m.source >= 4
                   && String.sub m.source 0 4 = "lib/" ->
                Hashtbl.add seen m.modname ();
                Some m
            | _ -> None)
          (discover ~root:(Filename.concat broot "lib"))
      in
      if mods = [] then Error ("no library .cmt files under " ^ broot)
      else Ok mods

(* ------------------------------------------------------------------ *)
(* Path normalization                                                  *)

(* "O2_runtime__Api.read" -> ["O2_runtime"; "Api"; "read"]. *)
let split_component s =
  let parts = ref [] in
  let n = String.length s in
  let start = ref 0 in
  let i = ref 0 in
  while !i < n - 1 do
    if s.[!i] = '_' && s.[!i + 1] = '_' && !i + 2 < n && s.[!i + 2] <> '_' then begin
      if !i > !start then parts := String.sub s !start (!i - !start) :: !parts;
      start := !i + 2;
      i := !i + 2
    end
    else incr i
  done;
  if !start < n then parts := String.sub s !start (n - !start) :: !parts;
  List.rev !parts

let rec path_components p =
  match p with
  | Path.Pident id -> split_component (Ident.name id)
  | Path.Pdot (base, s) -> path_components base @ split_component s
  | Path.Papply (a, b) -> path_components a @ path_components b
  | _ -> []

let path_name p = String.concat "." (path_components p)

(* The last [k] components, joined — handy for suffix matching that is
   robust to wrapping prefixes and open/alias differences. *)
let path_tail ~k p =
  let comps = path_components p in
  let n = List.length comps in
  let rec drop i = function
    | l when i <= 0 -> l
    | _ :: tl -> drop (i - 1) tl
    | [] -> []
  in
  String.concat "." (drop (n - k) comps)

(* Does the path denote [Mod.fn] (possibly nested under wrappers)? *)
let path_is ~modname ~fn p = path_tail ~k:2 p = modname ^ "." ^ fn

let path_in_module ~modname p =
  let comps = path_components p in
  let rec go = function
    | [ m; _ ] -> m = modname
    | _ :: tl -> go tl
    | [] -> false
  in
  go comps

(* ------------------------------------------------------------------ *)
(* Attributes                                                          *)

let attr_payload_string (a : Parsetree.attribute) =
  match a.Parsetree.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                _ );
          _;
        };
      ] ->
      Some s
  | _ -> None

let find_attr name (attrs : Parsetree.attributes) =
  List.find_opt (fun a -> a.Parsetree.attr_name.Location.txt = name) attrs

let has_attr name attrs = find_attr name attrs <> None

let attr_reason name attrs =
  match find_attr name attrs with
  | None -> None
  | Some a -> ( match attr_payload_string a with Some s -> Some s | None -> Some "")

(* ------------------------------------------------------------------ *)
(* Top-level structure bindings                                        *)

(* Map from value name to its binding, for manifest lookup and
   same-module transitive analysis. Multiple bindings of the same name
   keep the last one (what the rest of the module sees). Values inside
   nested structures are included under their dotted path ("Outbox.push",
   "Barrier.wait_round") so manifests can name functions of modules that
   group their API into submodules (Shard_sync). *)
let top_bindings (str : Typedtree.structure) =
  let tbl = Hashtbl.create 64 in
  let rec items prefix (str : Typedtree.structure) =
    List.iter
      (fun item ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match vb.Typedtree.vb_pat.Typedtree.pat_desc with
                | Typedtree.Tpat_var (id, _) ->
                    Hashtbl.replace tbl (prefix ^ Ident.name id) vb
                | _ -> ())
              vbs
        | Typedtree.Tstr_module mb -> module_binding prefix mb
        | Typedtree.Tstr_recmodule mbs ->
            List.iter (module_binding prefix) mbs
        | _ -> ())
      str.Typedtree.str_items
  and module_binding prefix (mb : Typedtree.module_binding) =
    match mb.Typedtree.mb_id with
    | None -> ()
    | Some id -> mod_expr (prefix ^ Ident.name id ^ ".") mb.Typedtree.mb_expr
  and mod_expr prefix (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure s -> items prefix s
    | Typedtree.Tmod_constraint (me, _, _, _) -> mod_expr prefix me
    | _ -> ()
  in
  items "" str;
  tbl

(* Idents bound at the structure's top level, keyed by [Ident.unique_name]
   (name + stamp) so that locals shadowing a top-level name are not
   confused with it. A nested closure whose free variables are all
   top-level (or from other modules) is a constant closure, statically
   allocated by the native compiler. *)
let top_ident_stamps (str : Typedtree.structure) =
  let set = Hashtbl.create 64 in
  let rec pat_idents : Typedtree.pattern -> unit =
   fun p ->
    match p.Typedtree.pat_desc with
    | Typedtree.Tpat_var (id, _) ->
        Hashtbl.replace set (Ident.unique_name id) ()
    | Typedtree.Tpat_alias (q, id, _) ->
        Hashtbl.replace set (Ident.unique_name id) ();
        pat_idents q
    | Typedtree.Tpat_tuple ps -> List.iter pat_idents ps
    | _ -> ()
  in
  let rec items (str : Typedtree.structure) =
    List.iter
      (fun item ->
        match item.Typedtree.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
            List.iter (fun vb -> pat_idents vb.Typedtree.vb_pat) vbs
        | Typedtree.Tstr_module mb -> mod_expr mb.Typedtree.mb_expr
        | Typedtree.Tstr_recmodule mbs ->
            List.iter (fun mb -> mod_expr mb.Typedtree.mb_expr) mbs
        | _ -> ())
      str.Typedtree.str_items
  and mod_expr (me : Typedtree.module_expr) =
    match me.Typedtree.mod_desc with
    | Typedtree.Tmod_structure s -> items s
    | Typedtree.Tmod_constraint (me, _, _, _) -> mod_expr me
    | _ -> ()
  in
  items str;
  set
