(* Raw-primitive pass: the typedtree port of the old textual lint rules.
   Everything outside the domain-pool shim must go through the runtime's
   own abstractions — no direct [Mutex]/[Domain] use — and [Obj.magic]
   is banned everywhere. Matching on resolved paths instead of source
   text means aliases, [open]s, and comments cannot fool the rule. *)

open Typedtree

(* The runtime's three concurrency shims: domain_pool.ml parallelises
   whole independent cells; shard_sync.ml holds the windowed engine's
   worker domains and round barrier; native_pool.ml holds the native
   backend's worker domains and park/wake protocol. Raw primitives live
   nowhere else. *)
let default_allowlist =
  [
    "lib/runtime/domain_pool.ml";
    "lib/runtime/shard_sync.ml";
    "lib/native/native_pool.ml";
  ]

(* A use of [Mod.fn] where some non-final path component is one of the
   raw modules. Matching on components (not the head) catches both
   [Domain.spawn] and [Stdlib.Domain.DLS.get]. *)
let raw_module p =
  let comps = Cmt_load.path_components p in
  let rec scan = function
    | [ _ ] | [] -> None
    | "Mutex" :: _ -> Some ("raw-mutex", "Mutex")
    | "Domain" :: _ -> Some ("raw-domain", "Domain")
    | "Condition" :: _ -> Some ("raw-condition", "Condition")
    | _ :: tl -> scan tl
  in
  scan comps

let is_obj_magic p =
  match List.rev (Cmt_load.path_components p) with
  | "magic" :: "Obj" :: _ -> true
  | _ -> false

let check_module ?(allowlist = default_allowlist) (m : Cmt_load.module_info) =
  let allowed = List.mem m.Cmt_load.source allowlist in
  let out = ref [] in
  let add ~code ~line msg =
    out :=
      Finding.make ~pass:"raw" ~code ~file:m.Cmt_load.source ~line ~func:""
        msg
      :: !out
  in
  let expr sub (e : expression) =
    (match e.exp_desc with
    | Texp_ident (p, _, _) ->
        if is_obj_magic p then
          add ~code:"obj-magic" ~line:(Expr_scan.loc_line e)
            "Obj.magic subverts the type system"
        else if not allowed then begin
          match raw_module p with
          | Some (code, what) ->
              add ~code ~line:(Expr_scan.loc_line e)
                (Printf.sprintf
                   "raw %s use (%s) outside the domain-pool shim; go through \
                    O2_runtime"
                   what (Cmt_load.path_name p))
          | None -> ()
        end
    | _ -> ());
    Tast_iterator.default_iterator.expr sub e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  iter.structure iter m.Cmt_load.structure;
  List.sort Finding.compare !out

let check ?allowlist mods =
  List.sort Finding.compare (List.concat_map (check_module ?allowlist) mods)
