(** Loading dune's .cmt files plus the compiler-libs plumbing shared by
    all passes: normalized paths, top-level binding maps, and the
    [@alloc_ok] attribute helpers. *)

type module_info = {
  cmt_path : string;
  modname : string;  (** wrapped name, e.g. ["O2_runtime__Event_queue"] *)
  short : string;  (** unwrapped, e.g. ["Event_queue"] *)
  source : string;  (** e.g. ["lib/runtime/event_queue.ml"] *)
  structure : Typedtree.structure;
}

val short_of_modname : string -> string
val load : string -> module_info option
(** Read one .cmt; [None] for interfaces, packs, or unreadable files. *)

val discover : root:string -> string list
(** All .cmt paths under [root], skipping [_build/install] duplicates. *)

val find_build_root : ?build_dir:string -> root:string -> unit -> string option
val load_tree :
  ?build_dir:string -> root:string -> unit -> (module_info list, string) result
(** Load every library implementation .cmt (sources under [lib/]),
    deduplicated by module name. *)

val split_component : string -> string list
val path_components : Path.t -> string list
(** ["O2_runtime__Api.read"] becomes [["O2_runtime"; "Api"; "read"]]. *)

val path_name : Path.t -> string
val path_tail : k:int -> Path.t -> string
val path_is : modname:string -> fn:string -> Path.t -> bool
val path_in_module : modname:string -> Path.t -> bool

val find_attr :
  string -> Parsetree.attributes -> Parsetree.attribute option

val has_attr : string -> Parsetree.attributes -> bool
val attr_reason : string -> Parsetree.attributes -> string option

val top_bindings :
  Typedtree.structure -> (string, Typedtree.value_binding) Hashtbl.t
(** Value bindings of the structure keyed by name; values inside nested
    structures appear under their dotted path ("Barrier.wait_round"), so
    manifests can reach into modules that group their API into
    submodules. *)

val top_ident_stamps : Typedtree.structure -> (string, unit) Hashtbl.t
(** Idents bound at the structure's top level (including inside nested
    structures), keyed by [Ident.unique_name] — the set against which
    closure free variables are judged constant and mutation roots judged
    module-level. *)
