(** The manifest of hot-path functions whose bodies must not allocate. *)

type entry = { module_ : string; functions : string list }

val default : entry list
(** The repo's hot paths: event queue, engine loop, cache fill/evict, LRU,
    presence scans, FAT scan kernel, object-table indexes, quiet
    rebalancer period, recorder-off probes. *)

val functions_for : entry list -> module_:string -> string list
val total_functions : entry list -> int
