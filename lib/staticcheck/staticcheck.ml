(* Driver: load every library .cmt dune produced, run the four passes,
   and render the combined report as text or JSON. *)

type report = {
  findings : Finding.t list;
  modules_scanned : int;
  manifest_functions : int;
  listeners_checked : int;
}

let listener_count mods =
  List.fold_left
    (fun acc (m : Cmt_load.module_info) ->
      let src = m.Cmt_load.source in
      if String.length src >= 8 && String.sub src 0 8 = "lib/obs/" then
        acc + List.length (Effect_check.listeners m)
      else acc)
    0 mods

let run_on_modules ?manifest ?allowlist mods =
  let findings =
    Alloc_check.check ?manifest mods
    @ Effect_check.check mods
    @ Lock_check.check mods
    @ Raw_use.check ?allowlist mods
  in
  {
    findings = List.sort_uniq Finding.compare findings;
    modules_scanned = List.length mods;
    manifest_functions =
      Manifest.total_functions
        (match manifest with Some m -> m | None -> Manifest.default);
    listeners_checked = listener_count mods;
  }

let run ?build_dir ?manifest ?allowlist ~root () =
  match Cmt_load.load_tree ?build_dir ~root () with
  | Error e -> Error e
  | Ok mods -> Ok (run_on_modules ?manifest ?allowlist mods)

let pp_report ppf r =
  List.iter (fun f -> Format.fprintf ppf "%a@." Finding.pp f) r.findings;
  Format.fprintf ppf
    "o2staticcheck: %d finding%s (%d modules, %d manifest functions, %d \
     listeners)@."
    (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    r.modules_scanned r.manifest_functions r.listeners_checked

let report_to_json r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"findings\": [";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    ";
      Buffer.add_string buf (Finding.to_json f))
    r.findings;
  if r.findings <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"modules_scanned\": %d,\n  \"manifest_functions\": %d,\n  \
        \"listeners_checked\": %d,\n  \"total\": %d\n}\n"
       r.modules_scanned r.manifest_functions r.listeners_checked
       (List.length r.findings));
  Buffer.contents buf
