(** One diagnostic from a typedtree pass. *)

type t = {
  pass : string;  (** which pass: ["alloc"], ["effect"], ["lock"], ["raw"] *)
  code : string;  (** stable short code, e.g. ["alloc-tuple"] *)
  file : string;  (** source path as recorded in the cmt, e.g. [lib/simcore/cache.ml] *)
  line : int;
  func : string;  (** enclosing function name, [""] when not applicable *)
  message : string;
}

val make :
  pass:string -> code:string -> file:string -> line:int -> func:string ->
  string -> t

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_json : t -> string
