(** Raw-primitive pass: typedtree port of the old textual allowlist
    rules. Flags resolved uses of [Mutex]/[Domain]/[Condition] outside
    the allowlisted domain-pool shim, and [Obj.magic] anywhere. *)

val default_allowlist : string list
(** Source paths permitted to touch raw primitives: the runtime's two
    concurrency shims, [lib/runtime/domain_pool.ml] (cell-level
    parallelism) and [lib/runtime/shard_sync.ml] (intra-cell sharding). *)

val check_module :
  ?allowlist:string list -> Cmt_load.module_info -> Finding.t list

val check :
  ?allowlist:string list -> Cmt_load.module_info list -> Finding.t list
