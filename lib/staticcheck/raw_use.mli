(** Raw-primitive pass: typedtree port of the old textual allowlist
    rules. Flags resolved uses of [Mutex]/[Domain]/[Condition] outside
    the allowlisted domain-pool shim, and [Obj.magic] anywhere. *)

val default_allowlist : string list
(** Source paths permitted to touch raw primitives:
    [lib/runtime/domain_pool.ml]. *)

val check_module :
  ?allowlist:string list -> Cmt_load.module_info -> Finding.t list

val check :
  ?allowlist:string list -> Cmt_load.module_info list -> Finding.t list
