(* Lock-discipline pass: an abstract interpretation over each function
   body computing the set of possible spinlock depths at every program
   point. [Api.lock] is +1, [Api.unlock] is -1, branches union, raising
   paths vanish, loop bodies must preserve depth, and every normal exit
   must be back at depth 0. While any possible depth is positive, calls
   that surrender the core and constructs that allocate are flagged —
   [Api.read]/[Api.write]/[Api.compute] are deliberately permitted, since
   charging simulated memory traffic under a held lock is the modeled
   behaviour (the paper's locked directory scan).

   Nested [fun]s are analyzed as fresh contexts at depth 0: the
   discipline is per-function, which matches how the workloads wrap
   locked regions in [Coretime.with_op] thunks. This is the static
   complement of the dynamic lock-order graph in [O2_analysis.Lockdep]:
   that catches cross-lock cycles at runtime, this catches unbalanced or
   hostile critical sections before anything runs. *)

open Typedtree
module ISet = Set.Make (Int)

type ctx = {
  file : string;
  func : string;
  tops : (string, unit) Hashtbl.t;
  out : Finding.t list ref;
  pending : expression Queue.t;  (* nested lambdas, analyzed at depth 0 *)
}

let add ctx ~code ~line msg =
  ctx.out :=
    Finding.make ~pass:"lock" ~code ~file:ctx.file ~line ~func:ctx.func msg
    :: !(ctx.out)

let is_lock p = Cmt_load.path_is ~modname:"Api" ~fn:"lock" p
let is_unlock p = Cmt_load.path_is ~modname:"Api" ~fn:"unlock" p
let held d = ISet.exists (fun x -> x > 0) d

(* [ok] carries an enclosing [@alloc_ok]: it silences the
   allocation-under-lock judgement for the subtree, never the depth
   tracking. *)
let rec eval ctx ~ok (d : ISet.t) (e : expression) : ISet.t =
  if ISet.is_empty d then d
  else begin
    let ok = ok || Cmt_load.has_attr "alloc_ok" e.exp_attributes in
    (if held d && not ok then
       match Expr_scan.alloc_of_node ~top_idents:ctx.tops e with
       | Some (_, what) ->
           add ctx ~code:"lock-alloc" ~line:(Expr_scan.loc_line e)
             (what ^ " while spinlock held")
       | None -> ());
    match e.exp_desc with
    | Texp_apply (f, args) -> (
        match Expr_scan.callee_path f with
        | Some p when is_lock p ->
            let d = eval_args ctx ~ok d args in
            ISet.map (fun x -> x + 1) d
        | Some p when is_unlock p ->
            let d = eval_args ctx ~ok d args in
            if ISet.exists (fun x -> x <= 0) d then
              add ctx ~code:"lock-underflow" ~line:(Expr_scan.loc_line e)
                "Api.unlock without a matching Api.lock on some path";
            ISet.map (fun x -> max 0 (x - 1)) d
        | Some p when Expr_scan.is_raising_path p ->
            ignore (eval_args ctx ~ok d args);
            ISet.empty
        | Some p ->
            let d = eval_args ctx ~ok d args in
            if held d && Expr_scan.is_blocking_call p then
              add ctx ~code:"lock-blocking" ~line:(Expr_scan.loc_line e)
                (Printf.sprintf "%s may block while spinlock held"
                   (Cmt_load.path_tail ~k:2 p));
            d
        | None ->
            let d = eval ctx ~ok d f in
            eval_args ctx ~ok d args)
    | Texp_sequence (a, b) -> eval ctx ~ok (eval ctx ~ok d a) b
    | Texp_let (_, vbs, body) ->
        let d =
          List.fold_left (fun d vb -> eval ctx ~ok d vb.vb_expr) d vbs
        in
        eval ctx ~ok d body
    | Texp_ifthenelse (c, t, fo) ->
        let d = eval ctx ~ok d c in
        let dt = eval ctx ~ok d t in
        let df = match fo with Some f -> eval ctx ~ok d f | None -> d in
        ISet.union dt df
    | Texp_match (scrut, cases, _) ->
        let d = eval ctx ~ok d scrut in
        List.fold_left
          (fun acc c ->
            let d =
              match c.c_guard with Some g -> eval ctx ~ok d g | None -> d
            in
            ISet.union acc (eval ctx ~ok d c.c_rhs))
          ISet.empty cases
    | Texp_try (b, cases) ->
        let db = eval ctx ~ok d b in
        List.fold_left
          (fun acc c -> ISet.union acc (eval ctx ~ok d c.c_rhs))
          db cases
    | Texp_while (cond, body) ->
        let d = eval ctx ~ok d cond in
        let db = eval ctx ~ok d body in
        if not (ISet.is_empty db || ISet.subset db d) then
          add ctx ~code:"lock-loop" ~line:(Expr_scan.loc_line e)
            "loop body changes spinlock depth";
        d
    | Texp_for (_, _, lo, hi, _, body) ->
        let d = eval ctx ~ok d lo in
        let d = eval ctx ~ok d hi in
        let db = eval ctx ~ok d body in
        if not (ISet.is_empty db || ISet.subset db d) then
          add ctx ~code:"lock-loop" ~line:(Expr_scan.loc_line e)
            "loop body changes spinlock depth";
        d
    | Texp_function _ ->
        Queue.add e ctx.pending;
        d
    | Texp_construct (_, _, args) | Texp_tuple args | Texp_array args ->
        List.fold_left (eval ctx ~ok) d args
    | Texp_variant (_, Some a) -> eval ctx ~ok d a
    | Texp_record { fields; extended_expression; _ } ->
        let d =
          match extended_expression with
          | Some base -> eval ctx ~ok d base
          | None -> d
        in
        Array.fold_left
          (fun d (_, defn) ->
            match defn with
            | Overridden (_, fe) -> eval ctx ~ok d fe
            | Kept _ -> d)
          d fields
    | Texp_field (b, _, _) -> eval ctx ~ok d b
    | Texp_setfield (a, _, _, v) -> eval ctx ~ok (eval ctx ~ok d a) v
    | Texp_assert (a, _) -> eval ctx ~ok d a
    | Texp_lazy _ -> d (* suspension does not run here *)
    | Texp_ident _ | Texp_constant _ | Texp_variant (_, None)
    | Texp_unreachable ->
        d
    | _ ->
        (* Structurally opaque node (first-class modules, objects, ...):
           scan the subtree for allocation/blocking at the current depth
           and assume it leaves the depth unchanged. *)
        opaque ctx ~ok d e;
        d
  end

and eval_args ctx ~ok d args =
  List.fold_left
    (fun d (_, a) -> match a with Some a -> eval ctx ~ok d a | None -> d)
    d args

and opaque ctx ~ok d root =
  if held d then begin
    let expr sub (e : expression) =
      let ok = ok || Cmt_load.has_attr "alloc_ok" e.exp_attributes in
      if not ok then begin
        (match Expr_scan.alloc_of_node ~top_idents:ctx.tops e with
        | Some (_, what) ->
            add ctx ~code:"lock-alloc" ~line:(Expr_scan.loc_line e)
              (what ^ " while spinlock held")
        | None -> ());
        (match e.exp_desc with
        | Texp_apply (f, _) -> (
            match Expr_scan.callee_path f with
            | Some p when Expr_scan.is_blocking_call p ->
                add ctx ~code:"lock-blocking" ~line:(Expr_scan.loc_line e)
                  (Printf.sprintf "%s may block while spinlock held"
                     (Cmt_load.path_tail ~k:2 p))
            | _ -> ());
        | _ -> ());
        Tast_iterator.default_iterator.expr sub e
      end
    in
    let iter = { Tast_iterator.default_iterator with expr } in
    iter.expr iter root
  end

(* Unwrap a [fun] chain and require every normal exit at depth 0. *)
let rec run_ctx ctx (e : expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } -> List.iter (fun c -> run_ctx ctx c.c_rhs) cases
  | _ ->
      let final = eval ctx ~ok:false (ISet.singleton 0) e in
      if held final then
        add ctx ~code:"lock-leak" ~line:(Expr_scan.loc_line e)
          "some path exits with the spinlock still held"

let check_module (m : Cmt_load.module_info) =
  let tops = Cmt_load.top_ident_stamps m.Cmt_load.structure in
  let out = ref [] in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              let name =
                match vb.vb_pat.pat_desc with
                | Tpat_var (id, _) -> Ident.name id
                | _ -> "<pattern>"
              in
              let file =
                let f = Expr_scan.loc_file vb.vb_expr in
                if f = "" then m.Cmt_load.source else f
              in
              let ctx =
                { file; func = name; tops; out; pending = Queue.create () }
              in
              Queue.add vb.vb_expr ctx.pending;
              while not (Queue.is_empty ctx.pending) do
                run_ctx ctx (Queue.pop ctx.pending)
              done)
            vbs
      | _ -> ())
    m.Cmt_load.structure.str_items;
  List.sort Finding.compare !out

let check mods =
  List.sort Finding.compare (List.concat_map check_module mods)
