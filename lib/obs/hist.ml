(* 63 buckets cover every non-negative OCaml int: bucket 0 holds the value
   0 and bucket k (k >= 1) holds [2^(k-1), 2^k). *)
let buckets = 63

type t = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { counts = Array.make buckets 0; total = 0; sum = 0; min_v = max_int; max_v = 0 }

(* Import raw accumulator state (e.g. O2_runtime.Telemetry's per-sink
   latency accs, which share this bucket layout but cannot depend on
   lib/obs). The counts array is copied; mismatched lengths are padded /
   truncated rather than rejected so layouts can evolve independently. *)
let of_raw ~counts ~total ~sum ~min_v ~max_v =
  let c = Array.make buckets 0 in
  Array.blit counts 0 c 0 (min buckets (Array.length counts));
  { counts = c; total; sum; min_v; max_v }

let bucket_of v =
  (* number of significant bits: 0 -> 0, 1 -> 1, 2..3 -> 2, 4..7 -> 3 ... *)
  let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
  bits 0 v

let bucket_lo b = if b = 0 then 0 else 1 lsl (b - 1)
let bucket_hi b = if b = 0 then 0 else (1 lsl b) - 1

let add t v =
  let v = max v 0 in
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.total
let sum t = t.sum
let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total
let min_value t = if t.total = 0 then 0 else t.min_v
let max_value t = t.max_v

let merge_into ~into t =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.total <- into.total + t.total;
  into.sum <- into.sum + t.sum;
  if t.total > 0 then begin
    if t.min_v < into.min_v then into.min_v <- t.min_v;
    if t.max_v > into.max_v then into.max_v <- t.max_v
  end

let copy t =
  {
    counts = Array.copy t.counts;
    total = t.total;
    sum = t.sum;
    min_v = t.min_v;
    max_v = t.max_v;
  }

(* Nearest-rank plus linear interpolation across the winning bucket's
   value range: deterministic, and exact at q=0 / q=1 because the range is
   clamped to the observed min/max. *)
let percentile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Hist.percentile: q out of range";
  if t.total = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
    (* the extreme ranks are known exactly — min/max ride along *)
    if rank <= 1 then float_of_int t.min_v
    else if rank >= t.total then float_of_int t.max_v
    else
    let rec find b seen =
      if b >= buckets then float_of_int t.max_v
      else begin
        let c = t.counts.(b) in
        if seen + c >= rank then begin
          let lo = max (bucket_lo b) t.min_v and hi = min (bucket_hi b) t.max_v in
          if c = 1 || hi <= lo then float_of_int hi
          else
            (* position of the rank within this bucket, in [0,1] *)
            let frac = float_of_int (rank - seen - 1) /. float_of_int (c - 1) in
            float_of_int lo +. (frac *. float_of_int (hi - lo))
        end
        else find (b + 1) (seen + c)
      end
    in
    find 0 0
  end

let p50 t = percentile t 0.50
let p90 t = percentile t 0.90
let p99 t = percentile t 0.99
let p999 t = percentile t 0.999

let pp ppf t =
  if t.total = 0 then Format.pp_print_string ppf "n=0"
  else
    Format.fprintf ppf
      "n=%d mean=%.1f min=%d p50=%.0f p90=%.0f p99=%.0f p999=%.0f max=%d"
      t.total (mean t) (min_value t) (p50 t) (p90 t) (p99 t) (p999 t) t.max_v
