open O2_simcore
open O2_runtime

(* ------------------------------------------------------------------ *)
(* Chrome / Perfetto trace_event JSON                                  *)

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* trace_event timestamps are microseconds; ours are cycles. *)
let us_of_cycles ~ghz cycles = float_of_int cycles /. (ghz *. 1000.0)

let object_name machine addr =
  match Memsys.object_at (Machine.memory machine) ~addr with
  | Some e -> e.Memsys.name
  | None -> Printf.sprintf "op@0x%x" addr

let class_name = function
  | Recorder.Home_hit -> "home-hit"
  | Recorder.Remote -> "remote"
  | Recorder.Migrated -> "migrated"

let decision_kind = function
  | Probe.Promoted _ -> "promote"
  | Probe.Promotion_replicated _ -> "replicate"
  | Probe.Moved _ -> "move"
  | Probe.Demoted _ -> "demote"
  | Probe.Displaced _ -> "displace"
  | Probe.Released _ -> "release"

(* The core track a decision belongs on: where the action landed. *)
let decision_core = function
  | Probe.Promoted { core; _ }
  | Probe.Demoted { core; _ }
  | Probe.Displaced { core; _ }
  | Probe.Released { core; _ } ->
      core
  | Probe.Moved { to_core; _ } -> to_core
  | Probe.Promotion_replicated _ -> 0

let decision_obj = function
  | Probe.Promoted { name; _ }
  | Probe.Promotion_replicated { name; _ }
  | Probe.Moved { name; _ }
  | Probe.Demoted { name; _ }
  | Probe.Released { name; _ } ->
      name
  | Probe.Displaced { hot_name; _ } -> hot_name

let to_buffer ?occupancy recorder buf =
  let machine = Recorder.machine recorder in
  let ghz = (Machine.cfg machine).Config.ghz in
  let us = us_of_cycles ~ghz in
  let first = ref true in
  let event fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n";
        Buffer.add_string buf "    ";
        Buffer.add_string buf s)
      fmt
  in
  Buffer.add_string buf "{\n  \"traceEvents\": [\n";
  (* Track metadata: one named track per core (pid 0 is the machine). *)
  event
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"args\": \
     {\"name\": \"o2sim simulated machine\"}}";
  for core = 0 to Config.cores (Machine.cfg machine) - 1 do
    event
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %d, \
       \"args\": {\"name\": \"core %d\"}}"
      core core;
    event
      "{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 0, \"tid\": \
       %d, \"args\": {\"sort_index\": %d}}"
      core core
  done;
  (* Operation spans: complete events on the executing core's track. *)
  List.iter
    (fun (s : Recorder.span) ->
      event
        "{\"name\": \"%s\", \"cat\": \"op\", \"ph\": \"X\", \"pid\": 0, \
         \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": {\"tid\": %d, \
         \"class\": \"%s\", \"queue_cycles\": %d, \"migrate_cycles\": %d, \
         \"exec_cycles\": %d%s}}"
        (escape_json (object_name machine s.Recorder.addr))
        s.Recorder.exec_core
        (us s.Recorder.start_time)
        (us (max s.Recorder.exec 0))
        s.Recorder.tid
        (class_name (Recorder.classify s))
        s.Recorder.queue s.Recorder.migrate s.Recorder.exec
        (match s.Recorder.home with
        | Some h -> Printf.sprintf ", \"home\": %d" h
        | None -> ""))
    (Recorder.spans recorder);
  (* Flow arrows for migrations and instant markers for monitor periods,
     from the retained event window. *)
  let flow_id = ref 0 in
  List.iter
    (fun ev ->
      match ev with
      | Probe.Thread_moved { time; tid; from_core; to_core } ->
          incr flow_id;
          event
            "{\"name\": \"migrate t%d\", \"cat\": \"migration\", \"ph\": \
             \"s\", \"id\": %d, \"pid\": 0, \"tid\": %d, \"ts\": %.3f}"
            tid !flow_id from_core (us time);
          event
            "{\"name\": \"migrate t%d\", \"cat\": \"migration\", \"ph\": \
             \"f\", \"bp\": \"e\", \"id\": %d, \"pid\": 0, \"tid\": %d, \
             \"ts\": %.3f}"
            tid !flow_id to_core (us time)
      | Probe.Rebalanced { time; moves; demotions } ->
          event
            "{\"name\": \"rebalance\", \"cat\": \"monitor\", \"ph\": \"i\", \
             \"s\": \"g\", \"pid\": 0, \"tid\": 0, \"ts\": %.3f, \"args\": \
             {\"moves\": %d, \"demotions\": %d}}"
            (us time) moves demotions
      | Probe.Decision { time; decision } ->
          event
            "{\"name\": \"decision/%s\", \"cat\": \"decision\", \"ph\": \
             \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": %d, \"ts\": %.3f, \
             \"args\": {\"object\": \"%s\"}}"
            (decision_kind decision)
            (decision_core decision)
            (us time)
            (escape_json (decision_obj decision))
      | _ -> ())
    (Recorder.events recorder);
  (* Occupancy counter tracks: one "C" series per cache, sampled on the
     observatory's interval, so Perfetto draws resident lines and distinct
     objects over time next to the operation spans. *)
  (match occupancy with
  | None -> ()
  | Some occ ->
      let n = Occupancy.cache_count occ in
      List.iter
        (fun (s : Occupancy.sample) ->
          for ci = 0 to n - 1 do
            event
              "{\"name\": \"occ/%s\", \"ph\": \"C\", \"pid\": 0, \"ts\": \
               %.3f, \"args\": {\"lines\": %d, \"objects\": %d}}"
              (escape_json (Occupancy.label occ ci))
              (us s.Occupancy.at) s.Occupancy.lines.(ci) s.Occupancy.objs.(ci)
          done)
        (Occupancy.samples occ));
  Buffer.add_string buf "\n  ],\n";
  Printf.ksprintf (Buffer.add_string buf)
    "  \"displayTimeUnit\": \"ms\",\n\
    \  \"otherData\": {\"events_total\": %d, \"events_retained\": %d, \
     \"dropped_events\": %d, \"spans_total\": %d, \"dropped_spans\": %d%s, \
     \"ghz\": %.2f, \"time_unit\": \"simulated cycles\", \"clock\": \
     \"virtual\"}\n"
    (Recorder.events_total recorder)
    (Recorder.events_retained recorder)
    (Recorder.events_dropped recorder)
    (Recorder.span_count recorder + Recorder.spans_dropped recorder)
    (Recorder.spans_dropped recorder)
    (match occupancy with
    | None -> ""
    | Some occ ->
        Printf.sprintf ", \"occupancy_samples\": %d, \"occupancy_dropped\": %d"
          (List.length (Occupancy.samples occ))
          (Occupancy.samples_dropped occ))
    ghz;
  Buffer.add_string buf "}\n"

let to_string ?occupancy recorder =
  let buf = Buffer.create 65536 in
  to_buffer ?occupancy recorder buf;
  Buffer.contents buf

let write_file ?occupancy recorder ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?occupancy recorder))

(* ------------------------------------------------------------------ *)
(* ASCII timeline: a screenshot-equivalent for docs and terminals      *)

let ascii_timeline ?(width = 72) recorder =
  let spans = Recorder.spans recorder in
  let events = Recorder.events recorder in
  let machine = Recorder.machine recorder in
  let cores = Config.cores (Machine.cfg machine) in
  let lo, hi =
    let bounds (lo, hi) t = (min lo t, max hi t) in
    let acc =
      List.fold_left
        (fun acc (s : Recorder.span) ->
          bounds (bounds acc s.Recorder.request_time) s.Recorder.end_time)
        (max_int, min_int) spans
    in
    List.fold_left
      (fun acc ev ->
        match ev with
        | Probe.Thread_moved { time; _ } | Probe.Rebalanced { time; _ } ->
            bounds acc time
        | _ -> acc)
      acc events
  in
  if lo > hi then "(no events recorded)\n"
  else begin
    let span_cycles = max 1 (hi - lo) in
    let col t = min (width - 1) ((t - lo) * width / span_cycles) in
    let lanes = Array.init cores (fun _ -> Bytes.make width '.') in
    let monitor = Bytes.make width '.' in
    List.iter
      (fun (s : Recorder.span) ->
        let core = s.Recorder.exec_core in
        if core >= 0 && core < cores then
          for c = col s.Recorder.start_time to col s.Recorder.end_time do
            Bytes.set lanes.(core) c '#'
          done)
      spans;
    List.iter
      (fun ev ->
        match ev with
        | Probe.Thread_moved { time; from_core; to_core; _ } ->
            let c = col time in
            if from_core >= 0 && from_core < cores then
              Bytes.set lanes.(from_core) c '>';
            if
              to_core >= 0 && to_core < cores
              && Bytes.get lanes.(to_core) c = '.'
            then Bytes.set lanes.(to_core) c '<'
        | Probe.Rebalanced { time; _ } -> Bytes.set monitor (col time) 'R'
        | _ -> ())
      events;
    let buf = Buffer.create ((cores + 3) * (width + 16)) in
    Printf.ksprintf (Buffer.add_string buf)
      "virtual time %d..%d cycles; one column ~ %d cycles\n\
       (# op executing, > migration out, < migration in, R monitor period)\n"
      lo hi
      (span_cycles / width);
    Array.iteri
      (fun core lane ->
        Printf.ksprintf (Buffer.add_string buf) "core %2d |%s|\n" core
          (Bytes.to_string lane))
      lanes;
    Printf.ksprintf (Buffer.add_string buf) "monitor |%s|\n"
      (Bytes.to_string monitor);
    Buffer.contents buf
  end
