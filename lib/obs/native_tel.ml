(* Readers for the native backend's wall-clock flight recorder
   (O2_runtime.Telemetry): the quiescent-side half of the design. Each
   sink's ring is nondecreasing by construction (the writer clamps its
   stamps), so the global order is a k-way cursor merge with no sort —
   pick the smallest head timestamp, ties to the lower sink id, which
   makes the merged order total and deterministic for a fixed capture.

   Span reconstruction replays the merged stream: Submit opens a
   partial span keyed by its token, Ship_out / Ship_in / Start fill in
   the handoff, End completes it. A span whose events were partly
   dropped by the ring bound never sees its End (or sees End first) and
   is counted in [incomplete_spans] instead of being emitted half-built
   — drops are accounted, never papered over. *)

open O2_runtime

type event = {
  ts : int;
  sink : int;
  kind : Telemetry.kind;
  a : int;
  b : int;
  c : int;
}

let merged_events tel =
  let sinks =
    Array.init
      (if Telemetry.enabled tel then Telemetry.domains tel + 1 else 0)
      (fun d -> Telemetry.sink tel d)
  in
  let k = Array.length sinks in
  let cursor = Array.make (max k 1) 0 in
  let total =
    Array.fold_left (fun acc s -> acc + Telemetry.length s) 0 sinks
  in
  let out = Array.make total { ts = 0; sink = 0; kind = Quiesce; a = 0; b = 0; c = 0 } in
  for slot = 0 to total - 1 do
    let best = ref (-1) in
    let best_ts = ref max_int in
    for d = 0 to k - 1 do
      if cursor.(d) < Telemetry.length sinks.(d) then begin
        let ts = Telemetry.ts sinks.(d) cursor.(d) in
        if ts < !best_ts then begin
          best := d;
          best_ts := ts
        end
      end
    done;
    let d = !best in
    let i = cursor.(d) in
    cursor.(d) <- i + 1;
    out.(slot) <-
      {
        ts = Telemetry.ts sinks.(d) i;
        sink = d;
        kind = Telemetry.kind sinks.(d) i;
        a = Telemetry.arg0 sinks.(d) i;
        b = Telemetry.arg1 sinks.(d) i;
        c = Telemetry.arg2 sinks.(d) i;
      }
  done;
  out

type span = {
  token : int;
  obj : int;
  submit_sink : int;
  submit_ts : int;
  ship_out_ts : int;  (* -1 when the op ran at home *)
  ship_in_ts : int;
  ship_dst : int;
  exec_sink : int;
  start_ts : int;
  end_ts : int;
}

let spans_of_events events =
  let open_spans : (int, span) Hashtbl.t = Hashtbl.create 256 in
  let done_ = ref [] in
  let incomplete = ref 0 in
  Array.iter
    (fun e ->
      match e.kind with
      | Telemetry.Submit ->
          (* A token reused after a dropped End would shadow; tokens are
             unique per capture (sink id + sequence), so plain add. *)
          Hashtbl.replace open_spans e.a
            {
              token = e.a;
              obj = e.b;
              submit_sink = e.sink;
              submit_ts = e.ts;
              ship_out_ts = -1;
              ship_in_ts = -1;
              ship_dst = -1;
              exec_sink = -1;
              start_ts = -1;
              end_ts = -1;
            }
      | Telemetry.Ship_out -> (
          match Hashtbl.find_opt open_spans e.a with
          | Some s ->
              Hashtbl.replace open_spans e.a
                { s with ship_out_ts = e.ts; ship_dst = e.c }
          | None -> incr incomplete)
      | Telemetry.Ship_in -> (
          match Hashtbl.find_opt open_spans e.a with
          | Some s -> Hashtbl.replace open_spans e.a { s with ship_in_ts = e.ts }
          | None -> incr incomplete)
      | Telemetry.Start -> (
          match Hashtbl.find_opt open_spans e.a with
          | Some s ->
              Hashtbl.replace open_spans e.a
                { s with start_ts = e.ts; exec_sink = e.sink }
          | None -> incr incomplete)
      | Telemetry.End -> (
          match Hashtbl.find_opt open_spans e.a with
          | Some s when s.start_ts >= 0 ->
              Hashtbl.remove open_spans e.a;
              done_ := { s with end_ts = e.ts } :: !done_
          | Some _ ->
              Hashtbl.remove open_spans e.a;
              incr incomplete
          | None -> incr incomplete)
      | _ -> ())
    events;
  (* Whatever is still open lost its End to the ring bound. *)
  Hashtbl.iter (fun _ _ -> incr incomplete) open_spans;
  (List.rev !done_, !incomplete)

let spans tel = fst (spans_of_events (merged_events tel))
let incomplete_spans tel = snd (spans_of_events (merged_events tel))

let shipped s = s.ship_out_ts >= 0

(* ------------------------------------------------------------------ *)
(* Metrics import                                                      *)

let import_acc m name acc =
  if Telemetry.acc_total acc > 0 then
    Hist.merge_into ~into:(Metrics.hist m name)
      (Hist.of_raw
         ~counts:(Telemetry.acc_counts acc)
         ~total:(Telemetry.acc_total acc)
         ~sum:(Telemetry.acc_sum acc) ~min_v:(Telemetry.acc_min acc)
         ~max_v:(Telemetry.acc_max acc))

let metrics tel =
  let m = Metrics.create () in
  ignore
    (Telemetry.fold_sinks tel ~init:() ~f:(fun () s ->
         (* All hist names carry the unit: these are wall-clock
            nanoseconds, never simulator cycles. *)
         import_acc m "op_ns/home" (Telemetry.lat_home s);
         import_acc m "op_ns/shipped" (Telemetry.lat_shipped s);
         import_acc m "op_ns/ship_delay" (Telemetry.lat_ship_delay s);
         import_acc m "op_ns/exec" (Telemetry.lat_exec s);
         Metrics.incr m "steals" ~by:(Telemetry.steals s);
         Metrics.incr m "ships_out" ~by:(Telemetry.ships_out s);
         Metrics.incr m "ships_in" ~by:(Telemetry.ships_in s);
         Metrics.incr m "parks" ~by:(Telemetry.parks s);
         Metrics.incr m "wakes" ~by:(Telemetry.wakes s);
         Metrics.incr m "spawns" ~by:(Telemetry.spawns s);
         Metrics.incr m "inbox_batches" ~by:(Telemetry.inbox_batches s);
         Metrics.incr m "inbox_tasks" ~by:(Telemetry.inbox_tasks s);
         Metrics.incr m "ops_submitted" ~by:(Telemetry.ops_submitted s);
         Metrics.incr m "events_retained" ~by:(Telemetry.length s);
         Metrics.incr m "events_dropped" ~by:(Telemetry.dropped s)));
  m

(* ------------------------------------------------------------------ *)
(* Per-domain table                                                    *)

let domain_table tel =
  let open O2_stats in
  let t =
    Table.create
      ~columns:
        [
          ("domain", Table.Left);
          ("ops", Table.Right);
          ("steals", Table.Right);
          ("ships out", Table.Right);
          ("ships in", Table.Right);
          ("parks", Table.Right);
          ("inbox batches", Table.Right);
          ("inbox tasks", Table.Right);
          ("max batch", Table.Right);
          ("events", Table.Right);
          ("dropped", Table.Right);
        ]
  in
  let n = if Telemetry.enabled tel then Telemetry.domains tel else 0 in
  ignore
    (Telemetry.fold_sinks tel ~init:() ~f:(fun () s ->
         let id = Telemetry.sink_id s in
         let label = if id = n then "coordinator" else string_of_int id in
         Table.add_row t
           [
             label;
             string_of_int (Telemetry.ops_submitted s);
             string_of_int (Telemetry.steals s);
             string_of_int (Telemetry.ships_out s);
             string_of_int (Telemetry.ships_in s);
             string_of_int (Telemetry.parks s);
             string_of_int (Telemetry.inbox_batches s);
             string_of_int (Telemetry.inbox_tasks s);
             string_of_int (Telemetry.max_batch s);
             string_of_int (Telemetry.length s);
             string_of_int (Telemetry.dropped s);
           ]));
  Table.render t
