(** Perfetto export for a native-backend telemetry capture — the
    wall-clock counterpart of {!Trace_export}.

    Same Chrome [trace_event] dialect, different time domain:
    timestamps are [CLOCK_MONOTONIC] nanoseconds rebased to the
    capture's first event (and scaled to the microseconds the format
    expects); [otherData] carries [time_unit = "wall-clock ns"] and
    [clock = "CLOCK_MONOTONIC"] so the two trace kinds can never be
    confused. The track layout:

    - one named track per worker domain ([tid] = domain index) plus a
      [coordinator] track at [tid] = domain count;
    - each reconstructed op span ({!Native_tel.span}) as a complete
      event on the domain that executed it, classed [home]/[shipped];
    - each ship handoff as a flow arrow ([ph:"s"]/[ph:"f"], id = the
      op's token) from the submitter's [Ship_out] to the home's
      [Ship_in];
    - park..wake windows as [parked] idle spans, steals as instants
      naming the victim, rebalance/quiesce as coordinator instants, and
      inbox batch sizes as a per-domain counter series;
    - ring-drop accounting (retained / dropped events, complete /
      incomplete spans) under [otherData].

    [obj_name] maps object ids to display names (default [objN]). *)

val to_buffer :
  ?obj_name:(int -> string) -> O2_runtime.Telemetry.t -> Buffer.t -> unit

val to_string : ?obj_name:(int -> string) -> O2_runtime.Telemetry.t -> string

val write_file :
  ?obj_name:(int -> string) -> O2_runtime.Telemetry.t -> path:string -> unit
