(** The flight recorder: a probe listener that captures the event stream
    into a bounded {!Ring}, reconstructs annotated-operation {e spans},
    and keeps a {!Metrics} registry up to date — all without touching
    simulator state (listeners observe; they never perform {!O2_runtime.Api}
    effects).

    Costs are paid only when attached: with no listener the engine's
    probes are guarded out entirely (see {!O2_runtime.Probe.active}).

    {2 Span reconstruction}

    A span is one [Coretime.ct_start] .. [ct_end] region, stitched from
    [Op_requested] (annotation entered), an optional [Thread_moved]
    (operation migrated to the object's home), [Op_started] (running at
    its final core) and [Op_ended]:

    - [queue]: request → migration departure (or start when the operation
      did not move) — annotation overhead plus time to leave the core;
    - [migrate]: departure → start — wire transfer plus landing;
    - [exec]: start → end — the operation body.

    Nested operations form nested spans (per-thread stacks). Spans are
    classified {!Home_hit} (object assigned, already on its home),
    {!Migrated} (moved to reach the home) or {!Remote} (object unassigned,
    served wherever the thread runs).

    {2 Metrics maintained}

    Counters: [ops], [migrations], [locks/acquired], [locks/handoffs],
    [threads/spawned], [threads/finished], [mem/events], [mem/sampled],
    [rebalance/periods], [rebalance/moves], [rebalance/demotions].
    Histograms: [op/latency] plus the [op/home_hit]/[op/remote]/
    [op/migrated] split (all request→end, in cycles) and the
    [op/queue]/[op/migrate]/[op/exec] breakdown; [monitor/idle_pct],
    [monitor/dram_loads], [monitor/l2_hits] sampled per core at each
    monitor period. Gauges: per-core [coreNN/idle_frac], [coreNN/dram_loads],
    [coreNN/l2_hits] for the most recent period. *)

type span = {
  tid : int;
  addr : int;  (** The operation's object base ([ct_start]'s argument). *)
  home : int option;  (** The object's home core at start, if assigned. *)
  request_core : int;  (** Core where [ct_start] was entered. *)
  exec_core : int;  (** Core where the operation ran and ended. *)
  request_time : int;
  start_time : int;
  end_time : int;
  queue : int;
  migrate : int;
  exec : int;
  migrated : bool;
}

type op_class = Home_hit | Remote | Migrated

val classify : span -> op_class

type t

val attach :
  ?ring_capacity:int ->
  ?span_capacity:int ->
  ?sample_mem:int ->
  O2_runtime.Engine.t ->
  t
(** Subscribe a recorder to the engine's probe. [ring_capacity] bounds the
    retained event window (default 65536; 0 keeps no events — metrics
    only). [span_capacity] bounds retained spans likewise. [sample_mem]
    keeps 1-in-N [Mem] events (default 1 = all; 0 = none); all other event
    kinds are always captured. The subscription lasts for the engine's
    lifetime.
    @raise Invalid_argument if [sample_mem] is negative. *)

val metrics : t -> Metrics.t
val machine : t -> O2_simcore.Machine.t

val events : t -> O2_runtime.Probe.event list
(** The retained window, oldest first. *)

val events_retained : t -> int
val events_total : t -> int

val events_dropped : t -> int
(** Events captured but then lost to the ring bound. [Mem] events skipped
    by sampling are not captured at all; their count is
    [mem/events - mem/sampled] in {!metrics}. *)

val spans : t -> span list
(** Completed spans in completion order. *)

val span_count : t -> int
val spans_dropped : t -> int
