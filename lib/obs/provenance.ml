open O2_runtime

type record = { time : int; decision : Probe.decision }

type t = { ring : record Ring.t }

let on_event t ev =
  match ev with
  | Probe.Decision { time; decision } -> Ring.push t.ring { time; decision }
  | _ -> ()

let attach ?(capacity = 4096) engine =
  let t = { ring = Ring.create ~capacity } in
  Probe.subscribe (Engine.probe engine) (on_event t);
  t

let records t = Ring.to_list t.ring
let count t = Ring.length t.ring
let total t = Ring.total t.ring
let dropped t = Ring.dropped t.ring

(* One decision, fully explained: inputs the monitor saw, the score that
   won, the tie-break, and the action taken — each on its own line so the
   o2explain report reads as an argument, not a log line. *)
let pp_record ppf { time; decision } =
  match decision with
  | Probe.Promoted
      {
        obj_base;
        name;
        seq;
        assigns;
        core;
        placement;
        clustered;
        ewma_misses;
        threshold;
        ops_total;
        min_ops;
        bytes;
        budget;
        used_after;
        fitting_cores;
      } ->
      Format.fprintf ppf
        "[t=%d] promote %s (seq %d, 0x%x) -> core %d@\n\
        \  inputs: miss EWMA %.3f > threshold %.3f; ops_total %d >= %d@\n\
        \  choice: %s placement%s; %d core(s) had %d B free under budget %d@\n\
        \  action: assigned to core %d (assignment #%d); core now uses %d B"
        time name seq obj_base core ewma_misses threshold ops_total min_ops
        placement
        (if clustered then " overridden by co-access clustering" else "")
        fitting_cores bytes budget core assigns used_after
  | Probe.Promotion_replicated { obj_base; name; seq; ops_period; min_ops } ->
      Format.fprintf ppf
        "[t=%d] leave %s (seq %d, 0x%x) to hardware replication@\n\
        \  inputs: read-only; ops this period %d >= replicate threshold %d@\n\
        \  action: not promoted; hardware caches copies wherever it is read"
        time name seq obj_base ops_period min_ops
  | Probe.Moved
      {
        obj_base;
        name;
        seq;
        assigns;
        ops_period;
        from_core;
        to_core;
        src_busy;
        avg_busy;
        src_dram;
        avg_dram;
        dst_idle;
        runner_up_seq;
        runner_up_name;
        runner_up_ops;
        tie_break;
        shed_before;
        shed_target;
        moves_left;
      } ->
      Format.fprintf ppf
        "[t=%d] move %s (seq %d, 0x%x): core %d -> core %d@\n\
        \  inputs: src busy %.2f (machine avg %.2f); src DRAM loads %d (avg \
         %.1f); dst idle %.2f@\n\
        \  score: ops this period %d%s@\n\
        \  action: reassigned (assignment #%d); %d of %d ops left to shed, %d \
         move(s) left this rebalance"
        time name seq obj_base from_core to_core src_busy avg_busy src_dram
        avg_dram dst_idle ops_period
        (if runner_up_seq >= 0 then
           Format.asprintf
             "; beat runner-up %s (seq %d, ops %d)%s" runner_up_name
             runner_up_seq runner_up_ops
             (if tie_break then " — tie broken by registration order" else "")
         else "; no runner-up candidate")
        assigns
        (max 0 (shed_before - ops_period))
        shed_target (moves_left - 1)
  | Probe.Demoted { obj_base; name; seq; core; idle_periods; threshold_periods }
    ->
      Format.fprintf ppf
        "[t=%d] demote %s (seq %d, 0x%x) from core %d@\n\
        \  inputs: idle %d consecutive monitor period(s) >= threshold %d, \
         under budget pressure@\n\
        \  action: unassigned; its budget bytes are free for hotter objects"
        time name seq obj_base core idle_periods threshold_periods
  | Probe.Displaced
      {
        hot_base;
        hot_name;
        hot_seq;
        hot_ops;
        victim_base;
        victim_name;
        victim_seq;
        victim_ops;
        core;
        placed;
      } ->
      Format.fprintf ppf
        "[t=%d] displace %s (seq %d, 0x%x) from core %d for %s (seq %d, 0x%x)@\n\
        \  inputs: victim saw %d op(s) this period, challenger %d (>= 2x), no \
         core had free budget@\n\
        \  action: victim unassigned; challenger %s" time victim_name victim_seq
        victim_base core hot_name hot_seq hot_base victim_ops hot_ops
        (if placed then Printf.sprintf "assigned to core %d" core
         else "still did not fit")
  | Probe.Released { obj_base; name; seq; core; ops_period; min_ops } ->
      Format.fprintf ppf
        "[t=%d] release %s (seq %d, 0x%x) from core %d to hardware replication@\n\
        \  inputs: read-only; ops this period %d >= replicate threshold %d@\n\
        \  action: unassigned and marked replicated; promotion will leave it \
         alone"
        time name seq obj_base core ops_period min_ops

let render_record r = Format.asprintf "%a" pp_record r

let render t =
  let buf = Buffer.create 4096 in
  Printf.ksprintf (Buffer.add_string buf)
    "-- decision provenance: showing %d of %d decision(s) (%d dropped) --\n"
    (count t) (total t) (dropped t);
  Ring.iter t.ring (fun r ->
      Buffer.add_string buf (render_record r);
      Buffer.add_char buf '\n');
  Buffer.contents buf
