open O2_simcore
open O2_runtime

(* Per-object accumulators live in parallel int arrays indexed by the
   dense Memsys object id, grown on demand: no per-event allocation once
   the tables cover the allocated objects. *)
type t = {
  mem : Memsys.t;
  line_bytes : int;
  mutable width : int;
  mutable ops : int array;  (* ct operations started on the object *)
  mutable src : int array array;  (* source -> obj -> lines served *)
  mutable fills_ : int array;
  mutable evictions_ : int array;  (* lost to capacity or coherence *)
  mutable resident_ : int array;  (* lines currently in some cache *)
  mutable unattributed : int;  (* accesses outside any registered object *)
}

let n_sources = 5 (* src_l1 .. src_dram *)

let grow t want =
  if want > t.width then begin
    let w = max 64 (max want (2 * t.width)) in
    let grown old =
      let a = Array.make w 0 in
      Array.blit old 0 a 0 t.width;
      a
    in
    t.ops <- grown t.ops;
    t.src <- Array.map grown t.src;
    t.fills_ <- grown t.fills_;
    t.evictions_ <- grown t.evictions_;
    t.resident_ <- grown t.resident_;
    t.width <- w
  end

let obj_of_line t line = Memsys.object_id_at t.mem ~addr:(line * t.line_bytes)

let on_access t ~now:_ ~core:_ ~line ~source =
  let obj = obj_of_line t line in
  if obj < 0 then t.unattributed <- t.unattributed + 1
  else begin
    grow t (obj + 1);
    let row = t.src.(source) in
    row.(obj) <- row.(obj) + 1
  end

let on_fill t ~cache:_ ~line ~victim =
  if victim >= 0 then begin
    let v = obj_of_line t victim in
    if v >= 0 then begin
      grow t (v + 1);
      t.evictions_.(v) <- t.evictions_.(v) + 1;
      t.resident_.(v) <- t.resident_.(v) - 1
    end
  end;
  let obj = obj_of_line t line in
  if obj >= 0 then begin
    grow t (obj + 1);
    t.fills_.(obj) <- t.fills_.(obj) + 1;
    t.resident_.(obj) <- t.resident_.(obj) + 1
  end

let on_remove t ~cache:_ ~line =
  let obj = obj_of_line t line in
  if obj >= 0 && obj < t.width then begin
    t.evictions_.(obj) <- t.evictions_.(obj) + 1;
    t.resident_.(obj) <- t.resident_.(obj) - 1
  end

let on_event t ev =
  match ev with
  | Probe.Op_started { addr; _ } ->
      let obj = Memsys.object_id_at t.mem ~addr in
      if obj >= 0 then begin
        grow t (obj + 1);
        t.ops.(obj) <- t.ops.(obj) + 1
      end
  | _ -> ()

let attach engine =
  let machine = Engine.machine engine in
  let t =
    {
      mem = Machine.memory machine;
      line_bytes = (Machine.cfg machine).Config.line_bytes;
      width = 0;
      ops = [||];
      src = Array.make n_sources [||];
      fills_ = [||];
      evictions_ = [||];
      resident_ = [||];
      unattributed = 0;
    }
  in
  Machine.observe machine
    {
      Machine.on_access =
        (fun ~now ~core ~line ~source -> on_access t ~now ~core ~line ~source);
      Machine.on_fill = (fun ~cache ~line ~victim -> on_fill t ~cache ~line ~victim);
      Machine.on_remove = (fun ~cache ~line -> on_remove t ~cache ~line);
    };
  Probe.subscribe (Engine.probe engine) (on_event t);
  t

type row = {
  obj : int;
  name : string;
  ops : int;
  l1 : int;
  l2 : int;
  l3 : int;
  remote : int;
  dram : int;
  fills : int;
  evictions : int;
  resident : int;
}

let row t obj =
  {
    obj;
    name =
      (match Memsys.find t.mem obj with
      | Some e -> e.Memsys.name
      | None -> "?");
    ops = t.ops.(obj);
    l1 = t.src.(Machine.src_l1).(obj);
    l2 = t.src.(Machine.src_l2).(obj);
    l3 = t.src.(Machine.src_l3).(obj);
    remote = t.src.(Machine.src_remote).(obj);
    dram = t.src.(Machine.src_dram).(obj);
    fills = t.fills_.(obj);
    evictions = t.evictions_.(obj);
    resident = t.resident_.(obj);
  }

(* Heat order: who costs the chip most. Off-core traffic (remote + DRAM
   line sources) first, operation count second, object id as the
   deterministic tie-break. *)
let churn r = r.remote + r.dram

let tracked t =
  let acc = ref [] in
  for obj = t.width - 1 downto 0 do
    if
      t.ops.(obj) > 0 || t.fills_.(obj) > 0
      || Array.exists (fun row -> row.(obj) > 0) t.src
    then acc := row t obj :: !acc
  done;
  !acc

let top_k t k =
  let rows =
    List.stable_sort
      (fun a b ->
        let c = compare (churn b) (churn a) in
        if c <> 0 then c
        else
          let c = compare b.ops a.ops in
          if c <> 0 then c else compare a.obj b.obj)
      (tracked t)
  in
  List.filteri (fun i _ -> i < k) rows

let unattributed t = t.unattributed

let render ?(top = 10) t =
  let tbl =
    O2_stats.Table.create
      ~columns:
        [
          ("object", O2_stats.Table.Left);
          ("ops", O2_stats.Table.Right);
          ("l1", O2_stats.Table.Right);
          ("l2", O2_stats.Table.Right);
          ("l3", O2_stats.Table.Right);
          ("remote", O2_stats.Table.Right);
          ("dram", O2_stats.Table.Right);
          ("fills", O2_stats.Table.Right);
          ("evict", O2_stats.Table.Right);
          ("resident", O2_stats.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      O2_stats.Table.add_row tbl
        [
          Printf.sprintf "%s (#%d)" r.name r.obj;
          string_of_int r.ops;
          string_of_int r.l1;
          string_of_int r.l2;
          string_of_int r.l3;
          string_of_int r.remote;
          string_of_int r.dram;
          string_of_int r.fills;
          string_of_int r.evictions;
          string_of_int r.resident;
        ])
    (top_k t top);
  let buf = Buffer.create 1024 in
  Printf.ksprintf (Buffer.add_string buf)
    "top %d objects by off-core traffic (remote + DRAM line sources):\n" top;
  Buffer.add_string buf (O2_stats.Table.render tbl);
  if t.unattributed > 0 then
    Printf.ksprintf (Buffer.add_string buf)
      "(%d line accesses outside any registered object)\n" t.unattributed;
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "object,name,ops,l1,l2,l3,remote,dram,fills,evictions,resident\n";
  List.iter
    (fun r ->
      Printf.ksprintf (Buffer.add_string buf) "%d,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d\n"
        r.obj r.name r.ops r.l1 r.l2 r.l3 r.remote r.dram r.fills r.evictions
        r.resident)
    (tracked t);
  Buffer.contents buf
