(** A registry of named counters, gauges and latency histograms.

    Names are free-form strings; by convention hierarchical with ["/"]
    (["op/home_hit"], ["rebalance/moves"], ["core00/idle_frac"]). Metrics
    are created on first use, so producers never pre-declare. Listings are
    sorted by name, making every rendering deterministic.

    Registries are plain data and merge with {!merge_into} — per-domain or
    per-cell registries combine into one (counters add, histograms merge
    bucket-wise, gauges keep the merged-in sample). *)

type t

val create : unit -> t

(** {2 Counters} *)

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int ref
val counter_value : t -> string -> int
(** 0 for a counter never incremented. *)

(** {2 Gauges} *)

val set_gauge : t -> string -> float -> unit
val gauge_value : t -> string -> float option

(** {2 Histograms} *)

val hist : t -> string -> Hist.t
(** Find-or-create. *)

val observe : t -> string -> int -> unit
(** [observe t name v] = [Hist.add (hist t name) v]. *)

(** {2 Listing and merging} *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float) list
val hists : t -> (string * Hist.t) list

val merge_into : into:t -> t -> unit

val pp : Format.formatter -> t -> unit
