(** A bounded ring buffer that keeps the {e most recent} [capacity]
    elements — flight-recorder semantics. Older elements are overwritten
    silently at push time but accounted for: {!dropped} reports how many
    were lost to the bound, so consumers can say "showing the last N of M
    events" honestly.

    A zero-capacity ring retains nothing (every push is dropped); the
    recorder uses that for metrics-only operation. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument on a negative capacity. *)

val push : 'a t -> 'a -> unit
val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently retained. *)

val total : 'a t -> int
(** Elements ever pushed. *)

val dropped : 'a t -> int
(** [total - length]: elements overwritten (or never stored). *)

val iter : 'a t -> ('a -> unit) -> unit
(** Oldest retained element first. *)

val to_list : 'a t -> 'a list
(** Oldest retained element first. *)

val clear : 'a t -> unit
(** Also resets the {!total} / {!dropped} accounting. *)
