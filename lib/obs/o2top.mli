(** Plain-text rendering of a {!Metrics} registry — the [top]-style
    readout printed by [o2sim --metrics] and the examples.

    Three sections (each omitted when empty): latency histograms with
    count/mean/p50/p90/p99/p999/max columns, counters, and — unless
    [gauges:false] — the per-core gauges from the last monitor period.
    [units] labels the histogram section's header — ["cycles"] by
    default (simulator virtual time); the native backend passes
    ["wall-clock ns"] so a reader can never mistake one domain of time
    for the other. With [?recorder], a footer accounts for the flight
    recorder's ring bounds: events and spans captured, retained and
    dropped. Output is deterministic: rows are sorted by metric name. *)

val render :
  ?units:string -> ?gauges:bool -> ?recorder:Recorder.t -> Metrics.t -> string

val print :
  ?units:string -> ?gauges:bool -> ?recorder:Recorder.t -> Metrics.t -> unit
