let hist_table hists =
  let t =
    O2_stats.Table.create
      ~columns:
        [
          ("histogram", O2_stats.Table.Left);
          ("count", O2_stats.Table.Right);
          ("mean", O2_stats.Table.Right);
          ("p50", O2_stats.Table.Right);
          ("p90", O2_stats.Table.Right);
          ("p99", O2_stats.Table.Right);
          ("p999", O2_stats.Table.Right);
          ("max", O2_stats.Table.Right);
        ]
  in
  List.iter
    (fun (name, h) ->
      if Hist.count h = 0 then
        O2_stats.Table.add_row t [ name; "0"; "-"; "-"; "-"; "-"; "-"; "-" ]
      else
        O2_stats.Table.add_row t
          [
            name;
            string_of_int (Hist.count h);
            Printf.sprintf "%.1f" (Hist.mean h);
            Printf.sprintf "%.0f" (Hist.p50 h);
            Printf.sprintf "%.0f" (Hist.p90 h);
            Printf.sprintf "%.0f" (Hist.p99 h);
            Printf.sprintf "%.0f" (Hist.p999 h);
            string_of_int (Hist.max_value h);
          ])
    hists;
  O2_stats.Table.render t

let counter_table counters =
  let t =
    O2_stats.Table.create
      ~columns:
        [ ("counter", O2_stats.Table.Left); ("value", O2_stats.Table.Right) ]
  in
  List.iter
    (fun (name, v) -> O2_stats.Table.add_row t [ name; string_of_int v ])
    counters;
  O2_stats.Table.render t

let gauge_table gauges =
  let t =
    O2_stats.Table.create
      ~columns:
        [ ("gauge", O2_stats.Table.Left); ("value", O2_stats.Table.Right) ]
  in
  List.iter
    (fun (name, v) -> O2_stats.Table.add_row t [ name; Printf.sprintf "%.3f" v ])
    gauges;
  O2_stats.Table.render t

let render ?(units = "cycles") ?(gauges = true) ?recorder metrics =
  let buf = Buffer.create 2048 in
  let section title body =
    if body <> "" then begin
      Buffer.add_string buf ("-- " ^ title ^ " --\n");
      Buffer.add_string buf body;
      Buffer.add_char buf '\n'
    end
  in
  (match Metrics.hists metrics with
  | [] -> ()
  | hs -> section ("latency histograms (" ^ units ^ ")") (hist_table hs));
  (match Metrics.counters metrics with
  | [] -> ()
  | cs -> section "counters" (counter_table cs));
  (if gauges then
     match Metrics.gauges metrics with
     | [] -> ()
     | gs -> section "gauges (last monitor period)" (gauge_table gs));
  (match recorder with
  | None -> ()
  | Some r ->
      section "recorder"
        (Printf.sprintf
           "events: %d captured, %d retained, %d dropped by the ring bound\n\
            spans:  %d completed, %d retained, %d dropped by the bound\n"
           (Recorder.events_total r)
           (Recorder.events_retained r)
           (Recorder.events_dropped r)
           (Recorder.span_count r + Recorder.spans_dropped r)
           (Recorder.span_count r)
           (Recorder.spans_dropped r)));
  Buffer.contents buf

let print ?units ?gauges ?recorder metrics =
  print_string (render ?units ?gauges ?recorder metrics)
