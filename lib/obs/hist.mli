(** Log₂-bucketed histograms over non-negative integer samples (cycle
    latencies, counts per period).

    Adding a sample is O(1) and allocation-free; the 63 power-of-two
    buckets cover every non-negative OCaml int. Exact minimum, maximum,
    count and sum ride along, so percentile readouts are clamped to the
    observed range and [q=0] / [q=1] are exact. Histograms from different
    domains or measurement cells merge by bucket-wise addition. *)

type t

val create : unit -> t

val of_raw :
  counts:int array -> total:int -> sum:int -> min_v:int -> max_v:int -> t
(** Import an externally maintained accumulator with the same 63-bucket
    log₂ layout (bucket 0 holds 0, bucket [k ≥ 1] holds [2^(k-1), 2^k))
    — e.g. [O2_runtime.Telemetry]'s per-sink latency accumulators,
    which cannot depend on this library. [counts] is copied; [min_v] is
    [max_int] when empty, as in a fresh {!create}. *)

val add : t -> int -> unit
(** Record one sample; negative values are clamped to 0. *)

val count : t -> int
val sum : t -> int
val mean : t -> float

val min_value : t -> int
(** 0 when empty. *)

val max_value : t -> int

val merge_into : into:t -> t -> unit
(** Bucket-wise add [t] into [into] (for combining per-domain or per-cell
    histograms). *)

val copy : t -> t

val percentile : t -> float -> float
(** [percentile t q] with [q] in [0,1]: nearest-rank bucket lookup with
    linear interpolation across the bucket's value range (clamped to the
    observed min/max). Returns [0.] on an empty histogram.
    @raise Invalid_argument if [q] is outside [0,1]. *)

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float
val p999 : t -> float

val pp : Format.formatter -> t -> unit

(**/**)

val bucket_of : int -> int
(** Exposed for tests: index of the bucket holding a value. *)
