open O2_simcore
open O2_runtime

type span = {
  tid : int;
  addr : int;
  home : int option;
  request_core : int;
  exec_core : int;
  request_time : int;
  start_time : int;
  end_time : int;
  queue : int;
  migrate : int;
  exec : int;
  migrated : bool;
}

type op_class = Home_hit | Remote | Migrated

let classify s =
  if s.migrated then Migrated else if s.home <> None then Home_hit else Remote

(* A ct_start that has been requested but not yet started; at most one per
   thread (a nested ct_start can only be entered once the outer one has
   started). *)
type pending = {
  p_addr : int;
  p_core : int;
  p_time : int;
  mutable p_moved_at : int;  (* departure time of the op migration; -1 *)
}

type open_span = {
  o_addr : int;
  o_home : int option;
  o_request_core : int;
  o_request_time : int;
  o_start_time : int;
  o_queue : int;
  o_migrate : int;
  o_migrated : bool;
}

type t = {
  ring : Probe.event Ring.t;
  metrics_ : Metrics.t;
  machine_ : Machine.t;
  sample_mem : int;
  span_capacity : int;
  mutable mem_seen : int;
  mutable spans_rev : span list;
  mutable span_count : int;
  mutable span_drops : int;
  pending : (int, pending) Hashtbl.t;
  open_ : (int, open_span list) Hashtbl.t;
  mutable last_counters : Counters.t array;
  mutable last_snap_time : int;
}

let metrics t = t.metrics_
let machine t = t.machine_
let events t = Ring.to_list t.ring
let events_retained t = Ring.length t.ring
let events_total t = Ring.total t.ring
let events_dropped t = Ring.dropped t.ring
let spans t = List.rev t.spans_rev
let span_count t = t.span_count
let spans_dropped t = t.span_drops

let m_ops = "ops"
let m_migrations = "migrations"
let m_mem_events = "mem/events"
let m_mem_sampled = "mem/sampled"
let m_locks_acquired = "locks/acquired"
let m_locks_handoffs = "locks/handoffs"
let m_threads_spawned = "threads/spawned"
let m_threads_finished = "threads/finished"
let m_rebalance_periods = "rebalance/periods"
let m_rebalance_moves = "rebalance/moves"
let m_rebalance_demotions = "rebalance/demotions"
let m_decisions_promoted = "decisions/promoted"
let m_decisions_replicated = "decisions/replicated"
let m_decisions_moved = "decisions/moved"
let m_decisions_demoted = "decisions/demoted"
let m_decisions_displaced = "decisions/displaced"
let m_decisions_released = "decisions/released"
let h_latency = "op/latency"
let h_home_hit = "op/home_hit"
let h_remote = "op/remote"
let h_migrated = "op/migrated"
let h_queue = "op/queue"
let h_migrate = "op/migrate"
let h_exec = "op/exec"
let h_monitor_idle = "monitor/idle_pct"
let h_monitor_dram = "monitor/dram_loads"
let h_monitor_l2 = "monitor/l2_hits"

let record_span t s =
  let m = t.metrics_ in
  Metrics.incr m m_ops;
  let total = s.end_time - s.request_time in
  Metrics.observe m h_latency total;
  Metrics.observe m
    (match classify s with
    | Home_hit -> h_home_hit
    | Remote -> h_remote
    | Migrated -> h_migrated)
    total;
  Metrics.observe m h_queue s.queue;
  Metrics.observe m h_migrate s.migrate;
  Metrics.observe m h_exec s.exec;
  if t.span_count < t.span_capacity then begin
    t.spans_rev <- s :: t.spans_rev;
    t.span_count <- t.span_count + 1
  end
  else t.span_drops <- t.span_drops + 1

(* Per-core utilisation snapshot for one monitor period. The rebalancer
   finalizes idle accounting before announcing the period, so idle_cycles
   deltas are meaningful here. *)
let snapshot_cores t ~now =
  let current = Machine.all_counters t.machine_ in
  let period = now - t.last_snap_time in
  Array.iteri
    (fun core c ->
      let d = Counters.diff c ~since:t.last_counters.(core) in
      let idle_frac =
        if period > 0 then
          float_of_int d.Counters.idle_cycles /. float_of_int period
        else 0.0
      in
      let prefix = Printf.sprintf "core%02d/" core in
      Metrics.set_gauge t.metrics_ (prefix ^ "idle_frac") idle_frac;
      Metrics.set_gauge t.metrics_ (prefix ^ "dram_loads")
        (float_of_int d.Counters.dram_loads);
      Metrics.set_gauge t.metrics_ (prefix ^ "l2_hits")
        (float_of_int d.Counters.l2_hits);
      Metrics.observe t.metrics_ h_monitor_idle
        (int_of_float (idle_frac *. 100.0));
      Metrics.observe t.metrics_ h_monitor_dram d.Counters.dram_loads;
      Metrics.observe t.metrics_ h_monitor_l2 d.Counters.l2_hits)
    current;
  t.last_counters <- Array.map Counters.copy current;
  t.last_snap_time <- now

let on_event t ev =
  let m = t.metrics_ in
  (match ev with
  | Probe.Mem _ ->
      Metrics.incr m m_mem_events;
      let keep = t.sample_mem > 0 && t.mem_seen mod t.sample_mem = 0 in
      t.mem_seen <- t.mem_seen + 1;
      if keep then begin
        Metrics.incr m m_mem_sampled;
        Ring.push t.ring ev
      end
  | _ -> Ring.push t.ring ev);
  match ev with
  | Probe.Mem _ -> ()
  | Probe.Lock_acquired { contended; _ } ->
      Metrics.incr m m_locks_acquired;
      if contended then Metrics.incr m m_locks_handoffs
  | Probe.Lock_released _ -> ()
  | Probe.Thread_spawned _ -> Metrics.incr m m_threads_spawned
  | Probe.Thread_finished { tid; _ } ->
      Metrics.incr m m_threads_finished;
      Hashtbl.remove t.pending tid;
      Hashtbl.remove t.open_ tid
  | Probe.Thread_moved { time; tid; _ } -> (
      Metrics.incr m m_migrations;
      match Hashtbl.find_opt t.pending tid with
      | Some p when p.p_moved_at < 0 -> p.p_moved_at <- time
      | Some _ | None -> ())
  | Probe.Op_requested { time; core; tid; addr } ->
      Hashtbl.replace t.pending tid
        { p_addr = addr; p_core = core; p_time = time; p_moved_at = -1 }
  | Probe.Op_started { time; tid; addr; home; _ } ->
      let frame =
        match Hashtbl.find_opt t.pending tid with
        | Some p ->
            Hashtbl.remove t.pending tid;
            let migrated = p.p_moved_at >= 0 in
            {
              o_addr = p.p_addr;
              o_home = home;
              o_request_core = p.p_core;
              o_request_time = p.p_time;
              o_start_time = time;
              o_queue = (if migrated then p.p_moved_at else time) - p.p_time;
              o_migrate = (if migrated then time - p.p_moved_at else 0);
              o_migrated = migrated;
            }
        | None ->
            (* start without a request (synthetic event): zero breakdown *)
            {
              o_addr = addr;
              o_home = home;
              o_request_core = -1;
              o_request_time = time;
              o_start_time = time;
              o_queue = 0;
              o_migrate = 0;
              o_migrated = false;
            }
      in
      let stack = Option.value ~default:[] (Hashtbl.find_opt t.open_ tid) in
      Hashtbl.replace t.open_ tid (frame :: stack)
  | Probe.Op_ended { time; core; tid } -> (
      match Hashtbl.find_opt t.open_ tid with
      | Some (frame :: rest) ->
          if rest = [] then Hashtbl.remove t.open_ tid
          else Hashtbl.replace t.open_ tid rest;
          record_span t
            {
              tid;
              addr = frame.o_addr;
              home = frame.o_home;
              request_core =
                (if frame.o_request_core >= 0 then frame.o_request_core
                 else core);
              exec_core = core;
              request_time = frame.o_request_time;
              start_time = frame.o_start_time;
              end_time = time;
              queue = frame.o_queue;
              migrate = frame.o_migrate;
              exec = time - frame.o_start_time;
              migrated = frame.o_migrated;
            }
      | Some [] | None -> () (* unmatched end: the analysis layer's finding *))
  | Probe.Rebalanced { time; moves; demotions } ->
      Metrics.incr m m_rebalance_periods;
      Metrics.incr ~by:moves m m_rebalance_moves;
      Metrics.incr ~by:demotions m m_rebalance_demotions;
      snapshot_cores t ~now:time
  | Probe.Decision { decision; _ } ->
      Metrics.incr m
        (match decision with
        | Probe.Promoted _ -> m_decisions_promoted
        | Probe.Promotion_replicated _ -> m_decisions_replicated
        | Probe.Moved _ -> m_decisions_moved
        | Probe.Demoted _ -> m_decisions_demoted
        | Probe.Displaced _ -> m_decisions_displaced
        | Probe.Released _ -> m_decisions_released)

let attach ?(ring_capacity = 1 lsl 16) ?(span_capacity = 1 lsl 16)
    ?(sample_mem = 1) engine =
  if sample_mem < 0 then invalid_arg "Recorder.attach: sample_mem < 0";
  let machine_ = Engine.machine engine in
  let t =
    {
      ring = Ring.create ~capacity:ring_capacity;
      metrics_ = Metrics.create ();
      machine_;
      sample_mem;
      span_capacity;
      mem_seen = 0;
      spans_rev = [];
      span_count = 0;
      span_drops = 0;
      pending = Hashtbl.create 64;
      open_ = Hashtbl.create 64;
      last_counters = Array.map Counters.copy (Machine.all_counters machine_);
      last_snap_time = 0;
    }
  in
  Probe.subscribe (Engine.probe engine) (on_event t);
  t
