type 'a t = {
  buf : 'a option array;
  mutable head : int;  (* next write position *)
  mutable len : int;
  mutable total : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Ring.create: negative capacity";
  { buf = Array.make capacity None; head = 0; len = 0; total = 0 }

let capacity t = Array.length t.buf
let length t = t.len
let total t = t.total
let dropped t = t.total - t.len

let push t x =
  t.total <- t.total + 1;
  let cap = Array.length t.buf in
  if cap > 0 then begin
    t.buf.(t.head) <- Some x;
    t.head <- (t.head + 1) mod cap;
    if t.len < cap then t.len <- t.len + 1
  end

let iter t f =
  let cap = Array.length t.buf in
  if t.len > 0 then
    let start = (t.head - t.len + cap) mod cap in
    for i = 0 to t.len - 1 do
      match t.buf.((start + i) mod cap) with
      | Some x -> f x
      | None -> assert false
    done

let to_list t =
  let acc = ref [] in
  iter t (fun x -> acc := x :: !acc);
  List.rev !acc

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0;
  t.total <- 0
