open O2_simcore

type sample = { at : int; lines : int array; objs : int array }

type t = {
  machine : Machine.t;
  caches : Cache.t array;
  labels : string array;
  mem : Memsys.t;
  line_bytes : int;
  interval : int;
  occ : int array array;  (* cache index -> object id -> resident lines *)
  mutable occ_width : int;  (* allocated object-id capacity of each row *)
  lines_ : int array;  (* resident lines per cache, attributed or not *)
  objs_ : int array;  (* objects with >= 1 resident line, per cache *)
  fills_ : int array;
  evictions_ : int array;  (* capacity evictions (on_fill victims) *)
  removals_ : int array;  (* invalidations, drops, clears *)
  mutable next_due : int;
  timeline : sample Ring.t;
}

let cache_count t = Array.length t.caches
let label t i = t.labels.(i)
let lines t i = t.lines_.(i)
let objects t i = t.objs_.(i)
let fills t i = t.fills_.(i)
let evictions t i = t.evictions_.(i)
let removals t i = t.removals_.(i)
let samples t = Ring.to_list t.timeline
let samples_dropped t = Ring.dropped t.timeline
let interval t = t.interval

(* Index of a cache in the machine's (fixed) cache list. O(caches) by
   physical equality — runs only while an observer is attached, never on
   the unobserved path. *)
let index_of t cache =
  let n = Array.length t.caches in
  let rec go i =
    if i >= n then -1 else if t.caches.(i) == cache then i else go (i + 1)
  in
  go 0

let grow_rows t want =
  if want > t.occ_width then begin
    let w = max 64 (max want (2 * t.occ_width)) in
    Array.iteri
      (fun ci row ->
        let grown = Array.make w 0 in
        Array.blit row 0 grown 0 t.occ_width;
        t.occ.(ci) <- grown)
      t.occ;
    t.occ_width <- w
  end

let note_fill t ci line =
  t.lines_.(ci) <- t.lines_.(ci) + 1;
  t.fills_.(ci) <- t.fills_.(ci) + 1;
  let obj = Memsys.object_id_at t.mem ~addr:(line * t.line_bytes) in
  if obj >= 0 then begin
    grow_rows t (obj + 1);
    let row = t.occ.(ci) in
    row.(obj) <- row.(obj) + 1;
    if row.(obj) = 1 then t.objs_.(ci) <- t.objs_.(ci) + 1
  end

let note_gone t ci line ~eviction =
  t.lines_.(ci) <- t.lines_.(ci) - 1;
  if eviction then t.evictions_.(ci) <- t.evictions_.(ci) + 1
  else t.removals_.(ci) <- t.removals_.(ci) + 1;
  let obj = Memsys.object_id_at t.mem ~addr:(line * t.line_bytes) in
  if obj >= 0 && obj < t.occ_width then begin
    let row = t.occ.(ci) in
    row.(obj) <- row.(obj) - 1;
    if row.(obj) = 0 then t.objs_.(ci) <- t.objs_.(ci) - 1
  end

let maybe_sample t now =
  if now >= t.next_due then begin
    t.next_due <- now + t.interval;
    Ring.push t.timeline
      { at = now; lines = Array.copy t.lines_; objs = Array.copy t.objs_ }
  end

let attach ?(interval = 100_000) ?(timeline_capacity = 4096) machine =
  if interval <= 0 then invalid_arg "Occupancy.attach: interval must be > 0";
  let caches = Array.of_list (Machine.all_caches machine) in
  let n = Array.length caches in
  let t =
    {
      machine;
      caches;
      labels = Array.map Cache.name caches;
      mem = Machine.memory machine;
      line_bytes = (Machine.cfg machine).Config.line_bytes;
      interval;
      occ = Array.make n [||];
      occ_width = 0;
      lines_ = Array.make n 0;
      objs_ = Array.make n 0;
      fills_ = Array.make n 0;
      evictions_ = Array.make n 0;
      removals_ = Array.make n 0;
      next_due = 0;
      timeline = Ring.create ~capacity:timeline_capacity;
    }
  in
  (* Seed with whatever is already resident, so the tracked counts agree
     with the caches from the first event (attach may happen mid-run). *)
  Array.iteri
    (fun ci c -> Cache.iter_lines (fun line -> note_fill t ci line) c)
    caches;
  Array.fill t.fills_ 0 n 0;
  Machine.observe machine
    {
      Machine.on_access = (fun ~now ~core:_ ~line:_ ~source:_ -> maybe_sample t now);
      Machine.on_fill =
        (fun ~cache ~line ~victim ->
          let ci = index_of t cache in
          if ci >= 0 then begin
            if victim >= 0 then note_gone t ci victim ~eviction:true;
            note_fill t ci line
          end);
      Machine.on_remove =
        (fun ~cache ~line ->
          let ci = index_of t cache in
          if ci >= 0 then note_gone t ci line ~eviction:false);
    };
  t

let distinct_lines t = Machine.distinct_cached_lines t.machine
let replicated t = Presence.replicated_lines (Machine.presence t.machine)

let object_lines t ~cache ~obj =
  if obj >= 0 && obj < t.occ_width then t.occ.(cache).(obj) else 0

let check t =
  let err = ref None in
  let fail fmt =
    Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt
  in
  Array.iteri
    (fun ci c ->
      let actual = Cache.resident_lines c in
      if t.lines_.(ci) <> actual then
        fail "%s: observatory tracks %d lines, cache holds %d" t.labels.(ci)
          t.lines_.(ci) actual;
      (* attribution can only cover a subset of the resident lines *)
      let attributed = Array.fold_left ( + ) 0 t.occ.(ci) in
      if attributed > t.lines_.(ci) then
        fail "%s: %d lines attributed to objects, only %d resident"
          t.labels.(ci) attributed t.lines_.(ci);
      let objs = ref 0 in
      Array.iter (fun k -> if k > 0 then incr objs) t.occ.(ci);
      if !objs <> t.objs_.(ci) then
        fail "%s: object count %d, recount %d" t.labels.(ci) t.objs_.(ci) !objs)
    t.caches;
  match !err with None -> Ok () | Some e -> Error e

let render t =
  let tbl =
    O2_stats.Table.create
      ~columns:
        [
          ("cache", O2_stats.Table.Left);
          ("cap", O2_stats.Table.Right);
          ("lines", O2_stats.Table.Right);
          ("objects", O2_stats.Table.Right);
          ("fills", O2_stats.Table.Right);
          ("evictions", O2_stats.Table.Right);
          ("removals", O2_stats.Table.Right);
        ]
  in
  Array.iteri
    (fun ci c ->
      O2_stats.Table.add_row tbl
        [
          t.labels.(ci);
          string_of_int (Cache.capacity_lines c);
          string_of_int t.lines_.(ci);
          string_of_int t.objs_.(ci);
          string_of_int t.fills_.(ci);
          string_of_int t.evictions_.(ci);
          string_of_int t.removals_.(ci);
        ])
    t.caches;
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (O2_stats.Table.render tbl);
  Printf.ksprintf (Buffer.add_string buf)
    "distinct lines on chip: %d; hardware-replicated lines: %d; timeline: \
     %d samples every %d cycles (%d dropped)\n"
    (Machine.distinct_cached_lines t.machine)
    (Presence.replicated_lines (Machine.presence t.machine))
    (Ring.length t.timeline) t.interval (Ring.dropped t.timeline);
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "cache,object,name,lines\n";
  Array.iteri
    (fun ci row ->
      Array.iteri
        (fun obj k ->
          if k > 0 then
            Printf.ksprintf (Buffer.add_string buf) "%s,%d,%s,%d\n"
              t.labels.(ci) obj
              (match Memsys.find t.mem obj with
              | Some e -> e.Memsys.name
              | None -> "?")
              k)
        row)
    t.occ;
  Buffer.contents buf

let timeline_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "at,cache,lines,objects\n";
  Ring.iter t.timeline (fun s ->
      Array.iteri
        (fun ci l ->
          Printf.ksprintf (Buffer.add_string buf) "%d,%s,%d,%d\n" s.at
            t.labels.(ci) l s.objs.(ci))
        s.lines);
  Buffer.contents buf
