(** The cache observatory's heat tracker: what each object costs the chip.

    One machine observer plus one probe listener accumulate, per
    registered object (dense {!O2_simcore.Memsys.obj_id}): operations
    started on it, where its lines were served from (L1 / L2 / local L3 /
    remote cache / DRAM), fill and eviction churn, and current resident
    lines. The ranking {!top_k} orders by off-core traffic — remote plus
    DRAM line sources, the costs the paper's scheduler exists to avoid —
    with operation count and object id as deterministic tie-breaks.

    Like the rest of the observatory this costs nothing detached; attached,
    each observed line access does an allocation-free address-to-object
    binary search. *)

type t

val attach : O2_runtime.Engine.t -> t
(** Subscribe to the engine's machine observer and probe for the engine's
    lifetime. *)

type row = {
  obj : int;
  name : string;
  ops : int;  (** ct operations started on the object. *)
  l1 : int;  (** Lines served from the accessing core's L1... *)
  l2 : int;
  l3 : int;
  remote : int;  (** ...a remote cache over the interconnect... *)
  dram : int;  (** ...or DRAM. *)
  fills : int;
  evictions : int;  (** Lines lost to capacity or coherence. *)
  resident : int;  (** Lines currently in some cache. *)
}

val top_k : t -> int -> row list
(** Hottest [k] objects: off-core traffic desc, then ops desc, then object
    id asc. Objects with no recorded activity are omitted. *)

val tracked : t -> row list
(** Every object with recorded activity, in object-id order. *)

val unattributed : t -> int
(** Observed line accesses that fell outside every registered object. *)

val render : ?top:int -> t -> string
(** The top-[top] (default 10) heat table. *)

val to_csv : t -> string
(** All tracked rows as CSV. *)
