type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    hists = Hashtbl.create 16;
  }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr ?(by = 1) t name =
  let r = counter t name in
  r := !r + by

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges name (ref v)

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

let hist t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = Hist.create () in
      Hashtbl.add t.hists name h;
      h

let observe t name v = Hist.add (hist t name) v

let sorted tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters t = sorted t.counters ( ! )
let gauges t = sorted t.gauges ( ! )
let hists t = sorted t.hists Fun.id

let merge_into ~into t =
  List.iter (fun (name, v) -> incr ~by:v into name) (counters t);
  (* gauges are point-in-time readings: the merged-in sample wins *)
  List.iter (fun (name, v) -> set_gauge into name v) (gauges t);
  List.iter
    (fun (name, h) -> Hist.merge_into ~into:(hist into name) h)
    (hists t)

let pp ppf t =
  List.iter (fun (n, v) -> Format.fprintf ppf "%s %d@." n v) (counters t);
  List.iter (fun (n, v) -> Format.fprintf ppf "%s %.3f@." n v) (gauges t);
  List.iter (fun (n, h) -> Format.fprintf ppf "%s %a@." n Hist.pp h) (hists t)
