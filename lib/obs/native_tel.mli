(** Quiescent-side readers for {!O2_runtime.Telemetry}, the native
    backend's wall-clock flight recorder.

    All timestamps here are [CLOCK_MONOTONIC] {e nanoseconds} — never
    simulator cycles; every derived metric name carries the unit
    ([op_ns/...]). Read only after [Native_pool.drain] returned: the
    sinks are single-writer and unsynchronised by design. *)

type event = {
  ts : int;  (** Wall-clock ns, monotonic per sink. *)
  sink : int;  (** Writer: worker index, or [domains] = coordinator. *)
  kind : O2_runtime.Telemetry.kind;
  a : int;
  b : int;
  c : int;
}

val merged_events : O2_runtime.Telemetry.t -> event array
(** The k-way merge of every sink's ring. Each ring is nondecreasing by
    construction (writers clamp their stamps), so this is a cursor
    merge with no sort: globally nondecreasing [ts], ties broken toward
    the lower sink id — a total, deterministic order. Empty on the
    disabled instance. *)

(** One operation's reconstructed life, possibly spanning two domains:
    submitted on [submit_sink], executed on [exec_sink] (they differ
    exactly when the op shipped). *)
type span = {
  token : int;
  obj : int;
  submit_sink : int;
  submit_ts : int;
  ship_out_ts : int;  (** [-1] when the op ran at home. *)
  ship_in_ts : int;
  ship_dst : int;
  exec_sink : int;
  start_ts : int;
  end_ts : int;
}

val spans_of_events : event array -> span list * int
(** Replay a merged stream into completed spans (in completion order)
    plus the count of incomplete ones — spans that lost events to the
    ring bound and are withheld rather than emitted half-built. *)

val spans : O2_runtime.Telemetry.t -> span list
val incomplete_spans : O2_runtime.Telemetry.t -> int
val shipped : span -> bool

val metrics : O2_runtime.Telemetry.t -> Metrics.t
(** Import the capture into a {!Metrics} registry: the per-sink latency
    accumulators merge into [op_ns/home], [op_ns/shipped],
    [op_ns/ship_delay] and [op_ns/exec] histograms (via
    {!Hist.of_raw}), and the counters (steals, ships, parks, wakes,
    spawns, inbox batches/tasks, ops submitted, events
    retained/dropped) sum across sinks. Render with
    [O2top.render ~units:"wall-clock ns"]. *)

val domain_table : O2_runtime.Telemetry.t -> string
(** A per-domain breakdown (one row per worker plus the coordinator):
    ops submitted, steals, ships, parks, inbox batching, and each
    sink's ring accounting — retained events and drops, so lossy
    captures are visible right in the readout. *)
