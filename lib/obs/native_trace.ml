(* Perfetto export of a native-backend telemetry capture. Same JSON
   dialect as Trace_export (Chrome trace_event, object-with-traceEvents)
   but a different time domain: these timestamps are CLOCK_MONOTONIC
   nanoseconds rebased to the capture's first event, divided down to the
   microseconds trace_event expects. otherData says so explicitly —
   time_unit / clock labels make a native trace impossible to misread
   as virtual time (and vice versa).

   Track layout: pid 0, one thread per worker domain (tid = domain),
   plus a coordinator track at tid = domains. Ops draw as complete
   spans on the domain that executed them; a shipped op additionally
   draws a flow arrow (id = its token) from the submitter's Ship_out to
   the home's Ship_in, which is the picture the paper promises — the op
   moves, the object never does. Park..wake pairs draw as "parked"
   spans so idle time is visible; steals, rebalances and quiesces are
   instants; inbox batches chart as a per-domain counter series. *)

open O2_runtime

let escape = Trace_export.escape_json

let to_buffer ?obj_name tel buf =
  let events = Native_tel.merged_events tel in
  let spans, incomplete = Native_tel.spans_of_events events in
  let domains = if Telemetry.enabled tel then Telemetry.domains tel else 0 in
  let t0 = if Array.length events > 0 then events.(0).Native_tel.ts else 0 in
  let us ts = float_of_int (ts - t0) /. 1000.0 in
  let name_of obj =
    match obj_name with
    | Some f -> escape (f obj)
    | None -> Printf.sprintf "obj%d" obj
  in
  let track sink = if sink = domains then "coordinator" else Printf.sprintf "domain %d" sink in
  let first = ref true in
  let event fmt =
    Printf.ksprintf
      (fun s ->
        if !first then first := false else Buffer.add_string buf ",\n";
        Buffer.add_string buf "    ";
        Buffer.add_string buf s)
      fmt
  in
  Buffer.add_string buf "{\n  \"traceEvents\": [\n";
  event
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"args\": \
     {\"name\": \"o2sim native run\"}}";
  for d = 0 to domains do
    event
      "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %d, \
       \"args\": {\"name\": \"%s\"}}"
      d (track d);
    event
      "{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 0, \"tid\": \
       %d, \"args\": {\"sort_index\": %d}}"
      d d
  done;
  (* Op spans on the executing domain's track. *)
  List.iter
    (fun (s : Native_tel.span) ->
      event
        "{\"name\": \"%s\", \"cat\": \"op\", \"ph\": \"X\", \"pid\": 0, \
         \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, \"args\": {\"token\": %d, \
         \"obj\": %d, \"class\": \"%s\", \"submit_domain\": %d, \
         \"submit_to_end_ns\": %d}}"
        (name_of s.Native_tel.obj) s.Native_tel.exec_sink
        (us s.Native_tel.start_ts)
        (float_of_int (max (s.Native_tel.end_ts - s.Native_tel.start_ts) 0)
        /. 1000.0)
        s.Native_tel.token s.Native_tel.obj
        (if Native_tel.shipped s then "shipped" else "home")
        s.Native_tel.submit_sink
        (s.Native_tel.end_ts - s.Native_tel.submit_ts))
    spans;
  (* Ship handoffs as flow arrows: submitter -> home, id = token. *)
  List.iter
    (fun (s : Native_tel.span) ->
      if Native_tel.shipped s && s.Native_tel.ship_in_ts >= 0 then begin
        event
          "{\"name\": \"ship %s\", \"cat\": \"ship\", \"ph\": \"s\", \"id\": \
           %d, \"pid\": 0, \"tid\": %d, \"ts\": %.3f}"
          (name_of s.Native_tel.obj) s.Native_tel.token
          s.Native_tel.submit_sink
          (us s.Native_tel.ship_out_ts);
        event
          "{\"name\": \"ship %s\", \"cat\": \"ship\", \"ph\": \"f\", \"bp\": \
           \"e\", \"id\": %d, \"pid\": 0, \"tid\": %d, \"ts\": %.3f}"
          (name_of s.Native_tel.obj) s.Native_tel.token s.Native_tel.exec_sink
          (us s.Native_tel.ship_in_ts)
      end)
    spans;
  (* Scheduler life: parked windows, steals, monitor instants, inbox
     batch counters — straight off the merged stream. *)
  let park_since = Array.make (domains + 1) (-1) in
  Array.iter
    (fun (e : Native_tel.event) ->
      match e.Native_tel.kind with
      | Telemetry.Park -> park_since.(e.Native_tel.sink) <- e.Native_tel.ts
      | Telemetry.Wake ->
          let p = park_since.(e.Native_tel.sink) in
          if p >= 0 then begin
            park_since.(e.Native_tel.sink) <- -1;
            event
              "{\"name\": \"parked\", \"cat\": \"idle\", \"ph\": \"X\", \
               \"pid\": 0, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f}"
              e.Native_tel.sink (us p)
              (float_of_int (e.Native_tel.ts - p) /. 1000.0)
          end
      | Telemetry.Steal ->
          event
            "{\"name\": \"steal from %d\", \"cat\": \"steal\", \"ph\": \
             \"i\", \"s\": \"t\", \"pid\": 0, \"tid\": %d, \"ts\": %.3f, \
             \"args\": {\"victim\": %d}}"
            e.Native_tel.a e.Native_tel.sink (us e.Native_tel.ts)
            e.Native_tel.a
      | Telemetry.Inbox_batch ->
          event
            "{\"name\": \"inbox domain %d\", \"ph\": \"C\", \"pid\": 0, \
             \"ts\": %.3f, \"args\": {\"tasks\": %d}}"
            e.Native_tel.sink (us e.Native_tel.ts) e.Native_tel.a
      | Telemetry.Rebalance ->
          event
            "{\"name\": \"rebalance\", \"cat\": \"monitor\", \"ph\": \"i\", \
             \"s\": \"g\", \"pid\": 0, \"tid\": %d, \"ts\": %.3f, \"args\": \
             {\"moves\": %d}}"
            e.Native_tel.sink (us e.Native_tel.ts) e.Native_tel.a
      | Telemetry.Quiesce ->
          event
            "{\"name\": \"quiesce\", \"cat\": \"monitor\", \"ph\": \"i\", \
             \"s\": \"g\", \"pid\": 0, \"tid\": %d, \"ts\": %.3f}"
            e.Native_tel.sink (us e.Native_tel.ts)
      | _ -> ())
    events;
  Buffer.add_string buf "\n  ],\n";
  Printf.ksprintf (Buffer.add_string buf)
    "  \"displayTimeUnit\": \"ms\",\n\
    \  \"otherData\": {\"domains\": %d, \"sample\": %d, \"events_retained\": \
     %d, \"dropped_events\": %d, \"spans_complete\": %d, \
     \"spans_incomplete\": %d, \"time_unit\": \"wall-clock ns\", \"clock\": \
     \"CLOCK_MONOTONIC\"}\n"
    domains (Telemetry.sample tel) (Array.length events)
    (Telemetry.total_dropped tel)
    (List.length spans) incomplete;
  Buffer.add_string buf "}\n"

let to_string ?obj_name tel =
  let buf = Buffer.create 65536 in
  to_buffer ?obj_name tel buf;
  Buffer.contents buf

let write_file ?obj_name tel ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?obj_name tel))
