(** Exporters for a {!Recorder}'s captured run.

    {!to_string} / {!write_file} produce Chrome [trace_event] JSON (the
    object-with-[traceEvents] form), loadable in Perfetto
    ({:https://ui.perfetto.dev}) or [chrome://tracing]:

    - one named track per simulated core ([pid] 0, [tid] = core id);
    - each completed operation span as a complete ([ph:"X"]) event on the
      core that executed it, with the queue/migrate/execute cycle
      breakdown and the {!Recorder.op_class} in [args];
    - each [Thread_moved] as a flow arrow ([ph:"s"] on the source core,
      [ph:"f"] on the destination) so migrations draw as arcs;
    - each [Rebalanced] monitor period as a global instant marker
      ([ph:"i"]) carrying that period's moves/demotions;
    - each scheduler [Decision] as a thread-scoped instant
      ([decision/promote], [decision/move], ...) on the core the action
      landed on;
    - with [?occupancy], one counter track ([ph:"C"], [occ/<cache>]) per
      cache charting resident lines and distinct objects over time.

    Timestamps are microseconds of virtual time (cycles divided by the
    simulated clock rate); [otherData] carries ring-drop accounting —
    total/retained/dropped events, spans, and occupancy samples — plus
    [time_unit]/[clock] labels ([{"simulated cycles", "virtual"}] here;
    the native exporter writes ["wall-clock ns"]/["CLOCK_MONOTONIC"])
    so a trace can never be misread across the two time domains.

    {!ascii_timeline} renders the same window as a per-core text timeline
    for terminals and docs. *)

val to_buffer : ?occupancy:Occupancy.t -> Recorder.t -> Buffer.t -> unit
val to_string : ?occupancy:Occupancy.t -> Recorder.t -> string
val write_file : ?occupancy:Occupancy.t -> Recorder.t -> path:string -> unit

val ascii_timeline : ?width:int -> Recorder.t -> string
(** One lane per core plus a monitor lane: [#] marks an executing
    operation span, [>]/[<] a migration leaving/arriving, [R] a rebalance
    period. [width] is the number of time columns (default 72). *)

(**/**)

val escape_json : string -> string
(** JSON string-body escaping, shared with the native trace exporter. *)
