(** Scheduler decision provenance: a bounded flight recorder of the
    {!O2_runtime.Probe.decision} records CoreTime's promotion path and the
    rebalancer emit, rendered as fully-explained decisions — the inputs
    the monitor saw, the score that won, the tie-break, and the action
    taken. This is the data behind the [o2explain] report and
    [o2sim --explain]. *)

type record = { time : int; decision : O2_runtime.Probe.decision }

type t

val attach : ?capacity:int -> O2_runtime.Engine.t -> t
(** Subscribe for the engine's lifetime; keep the most recent [capacity]
    (default 4096) decisions. *)

val records : t -> record list
(** Retained decisions, oldest first. *)

val count : t -> int
val total : t -> int
val dropped : t -> int

val pp_record : Format.formatter -> record -> unit
val render_record : record -> string
(** One decision as a multi-line [inputs / score-or-choice / action]
    explanation. *)

val render : t -> string
(** Every retained decision, with a showing-N-of-M header that accounts
    for ring drops honestly. *)
