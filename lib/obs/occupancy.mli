(** The cache observatory's occupancy tracker: who is resident where.

    Attached to a {!O2_simcore.Machine} observer, it mirrors every cache's
    contents incrementally — per-cache resident-line and distinct-object
    counts, a per-(cache, object) line-attribution matrix (via
    {!O2_simcore.Memsys.object_id_at}), fill/eviction/removal totals, and
    a bounded timeline of periodic whole-machine samples for the Perfetto
    counter tracks.

    Attaching costs: every simulated line fill, eviction and removal runs
    the bookkeeping above. Detached (the default), the machine's
    notification sites are single branches that allocate nothing — the
    standing zero-cost-when-off invariant, pinned by suite_hotpath. *)

type sample = {
  at : int;  (** Virtual time (cycles) of the sample. *)
  lines : int array;  (** Resident lines per cache, machine cache order. *)
  objs : int array;  (** Distinct resident objects per cache. *)
}

type t

val attach : ?interval:int -> ?timeline_capacity:int -> O2_simcore.Machine.t -> t
(** Subscribe an occupancy tracker for the machine's lifetime. [interval]
    (virtual cycles, default 100_000) paces the timeline samples;
    [timeline_capacity] (default 4096) bounds how many are retained
    (flight-recorder semantics: newest win). Tracking starts from the
    machine's current cache contents, so mid-run attachment stays
    consistent.
    @raise Invalid_argument if [interval <= 0]. *)

(** {2 Current state} *)

val cache_count : t -> int
(** Caches tracked, in {!O2_simcore.Machine.all_caches} order (all L1s,
    then L2s, then L3s); the index space of the accessors below. *)

val label : t -> int -> string
val lines : t -> int -> int
val objects : t -> int -> int
val fills : t -> int -> int
val evictions : t -> int -> int
(** Capacity evictions (a fill's victim). *)

val removals : t -> int -> int
(** Invalidations, inclusion drops and clears. *)

val object_lines : t -> cache:int -> obj:int -> int
(** Lines of object [obj] ({!O2_simcore.Memsys.obj_id}) resident in
    [cache]. *)

val distinct_lines : t -> int
(** {!O2_simcore.Machine.distinct_cached_lines} of the tracked machine —
    current distinct data on chip (the quantity the paper argues O2
    scheduling maximises; the sweeps report it per cell). *)

val replicated : t -> int
(** Lines currently held by two or more cores' private caches. *)

(** {2 Timeline} *)

val samples : t -> sample list
(** Retained periodic samples, oldest first. *)

val samples_dropped : t -> int
val interval : t -> int

(** {2 Reports} *)

val render : t -> string
(** Per-cache summary table (capacity, resident lines, objects, fills,
    evictions, removals) plus the chip-level distinct/replicated line
    counts the paper's argument turns on. *)

val to_csv : t -> string
(** The cache x object heatmap: [cache,object,name,lines] rows for every
    attribution with at least one resident line. *)

val timeline_csv : t -> string
(** The sample timeline in long form: [at,cache,lines,objects]. *)

val check : t -> (unit, string) result
(** Audit the mirror against the actual caches: tracked line counts must
    equal {!O2_simcore.Cache.resident_lines}, attributions must not exceed
    them, object counts must recount. Test-suite invariant. *)
