open O2_runtime

let slot_bytes = 16  (* key + value-or-child per slot *)

type node = {
  addr : int;  (* simulated base address; the node's object identity *)
  keys : int array;
  mutable nkeys : int;
  kind : kind;
}

and kind =
  | Leaf of { values : int array; lock : Spinlock.t }
  | Internal of { children : node option array; mutable nchildren : int }

type t = {
  ct : Coretime.t;
  pid : int;
  name : string;
  fanout : int;
  mutable root : node option;
  mutable height_ : int;
  mutable nodes : int;
  mutable leaves : int;
  mutable keys_ : int;
}

let create ct ?(pid = 0) ~name ~fanout () =
  if fanout < 4 then invalid_arg "Btree_store.create: fanout must be >= 4";
  {
    ct;
    pid;
    name;
    fanout;
    root = None;
    height_ = 0;
    nodes = 0;
    leaves = 0;
    keys_ = 0;
  }

let node_bytes t = t.fanout * slot_bytes

let mem t = O2_simcore.Machine.memory (Engine.machine (Coretime.engine t.ct))

let new_node t ~leaf =
  let ext =
    O2_simcore.Memsys.alloc (mem t)
      ~name:(Printf.sprintf "%s.n%d" t.name t.nodes)
      ~size:(node_bytes t)
  in
  let addr = ext.O2_simcore.Memsys.base in
  ignore
    (Coretime.register t.ct ~pid:t.pid ~base:addr ~size:(node_bytes t)
       ~name:(Printf.sprintf "%s.n%d" t.name t.nodes) ());
  t.nodes <- t.nodes + 1;
  if leaf then begin
    t.leaves <- t.leaves + 1;
    {
      addr;
      keys = Array.make t.fanout max_int;
      nkeys = 0;
      kind =
        Leaf
          {
            values = Array.make t.fanout 0;
            lock = Spinlock.create (mem t) ~name:(Printf.sprintf "%s.lock%d" t.name t.nodes);
          };
    }
  end
  else
    {
      addr;
      keys = Array.make t.fanout max_int;
      nkeys = 0;
      kind = Internal { children = Array.make t.fanout None; nchildren = 0 };
    }

(* Bulk load: pack sorted keys into ~70%-full leaves, then build internal
   levels bottom-up; each internal key is the smallest key of the child it
   precedes (B+-tree separators). *)
let bulk_load t ~keys ~value_of =
  if t.root <> None then invalid_arg "Btree_store.bulk_load: already loaded";
  let n = Array.length keys in
  if n = 0 then invalid_arg "Btree_store.bulk_load: empty";
  for i = 1 to n - 1 do
    if keys.(i) <= keys.(i - 1) then
      invalid_arg "Btree_store.bulk_load: keys must be sorted and distinct"
  done;
  let per_leaf = max 2 (t.fanout * 7 / 10) in
  let leaves = ref [] in
  let i = ref 0 in
  while !i < n do
    let leaf = new_node t ~leaf:true in
    let take = min per_leaf (n - !i) in
    (match leaf.kind with
    | Leaf { values; _ } ->
        for j = 0 to take - 1 do
          leaf.keys.(j) <- keys.(!i + j);
          values.(j) <- value_of keys.(!i + j)
        done
    | Internal _ -> assert false);
    leaf.nkeys <- take;
    i := !i + take;
    leaves := leaf :: !leaves
  done;
  let rec build level height =
    match level with
    | [ only ] ->
        t.root <- Some only;
        t.height_ <- height
    | nodes ->
        let per_parent = max 2 (t.fanout * 7 / 10) in
        let parents = ref [] in
        let pending = ref nodes in
        while !pending <> [] do
          let parent = new_node t ~leaf:false in
          (match parent.kind with
          | Internal inner ->
              let rec fill k =
                if k < per_parent && !pending <> [] then begin
                  match !pending with
                  | [] -> ()
                  | child :: rest ->
                      inner.children.(k) <- Some child;
                      inner.nchildren <- k + 1;
                      parent.keys.(k) <- child.keys.(0);
                      parent.nkeys <- k + 1;
                      pending := rest;
                      fill (k + 1)
                end
              in
              fill 0
          | Leaf _ -> assert false);
          parents := parent :: !parents
        done;
        build (List.rev !parents) (height + 1)
  in
  build (List.rev !leaves) 1;
  t.keys_ <- n

(* Binary search for the rightmost child whose separator <= key. *)
let child_index node key =
  let lo = ref 0 and hi = ref (node.nkeys - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if node.keys.(mid) <= key then lo := mid else hi := mid - 1
  done;
  !lo

let leaf_slot node key =
  let rec go lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      if node.keys.(mid) = key then Some mid
      else if node.keys.(mid) < key then go (mid + 1) hi
      else go lo (mid - 1)
    end
  in
  go 0 (node.nkeys - 1)

(* Charge the memory a binary search over [steps] probes touches: each
   probe lands on a different line of the node. *)
let charge_search node steps =
  for s = 0 to steps - 1 do
    let probe = s * 61 mod (max node.nkeys 1) in
    ignore (Api.read ~addr:(node.addr + (probe * slot_bytes)) ~len:slot_bytes)
  done;
  Api.compute (4 * steps)

let log2_ceil n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  go 0 n

let rec descend t node key =
  match node.kind with
  | Leaf _ -> node
  | Internal inner ->
      charge_search node (log2_ceil (max node.nkeys 2));
      descend t (Option.get inner.children.(child_index node key)) key

let root_exn t =
  match t.root with
  | Some r -> r
  | None -> invalid_arg "Btree_store: bulk_load first"

let lookup t key =
  let leaf = descend t (root_exn t) key in
  Coretime.with_op t.ct leaf.addr (fun () ->
      match leaf.kind with
      | Internal _ -> assert false
      | Leaf { values; lock } ->
          Api.lock lock;
          charge_search leaf (log2_ceil (max leaf.nkeys 2));
          let r =
            ((Option.map (fun i -> values.(i)) (leaf_slot leaf key))
            [@alloc_ok
              "result option under the leaf lock; simulated time does not \
               observe GC"])
          in
          Api.unlock lock;
          r)

let insert t ~key ~value =
  let leaf = descend t (root_exn t) key in
  Coretime.with_op t.ct ~write:true leaf.addr (fun () ->
      match leaf.kind with
      | Internal _ -> assert false
      | Leaf { values; lock } ->
          Api.lock lock;
          charge_search leaf (log2_ceil (max leaf.nkeys 2));
          let ok =
            match leaf_slot leaf key with
            | Some i ->
                values.(i) <- value;
                ignore
                  (Api.write ~addr:(leaf.addr + (i * slot_bytes)) ~len:slot_bytes);
                true
            | None ->
                if leaf.nkeys >= t.fanout then false
                else begin
                  (* shift the tail up one slot to keep keys sorted *)
                  let pos =
                    ((ref leaf.nkeys)
                    [@alloc_ok "loop cursor under the leaf lock"])
                  in
                  while !pos > 0 && leaf.keys.(!pos - 1) > key do
                    leaf.keys.(!pos) <- leaf.keys.(!pos - 1);
                    values.(!pos) <- values.(!pos - 1);
                    decr pos
                  done;
                  leaf.keys.(!pos) <- key;
                  values.(!pos) <- value;
                  leaf.nkeys <- leaf.nkeys + 1;
                  t.keys_ <- t.keys_ + 1;
                  ignore
                    (Api.write
                       ~addr:(leaf.addr + (!pos * slot_bytes))
                       ~len:((leaf.nkeys - !pos) * slot_bytes));
                  true
                end
          in
          Api.unlock lock;
          ok)

let height t = t.height_
let node_count t = t.nodes
let leaf_count t = t.leaves
let key_count t = t.keys_
let mem_bytes t = t.nodes * node_bytes t
let root_addr t = (root_exn t).addr

let check t =
  match t.root with
  | None -> Error "not loaded"
  | Some root ->
      let problems = ref [] in
      let problem fmt =
        Format.kasprintf (fun s -> problems := s :: !problems) fmt
      in
      let leaves = ref 0 and nodes = ref 0 and keys = ref 0 in
      let rec walk node depth ~lo ~hi =
        incr nodes;
        if node.nkeys <= 0 then problem "empty node at depth %d" depth;
        for i = 1 to node.nkeys - 1 do
          if node.keys.(i) <= node.keys.(i - 1) then
            problem "unsorted keys at depth %d" depth
        done;
        if node.nkeys > 0 then begin
          if node.keys.(0) < lo then problem "key below bound at depth %d" depth;
          if node.keys.(node.nkeys - 1) >= hi then
            problem "key above bound at depth %d" depth
        end;
        match node.kind with
        | Leaf _ ->
            incr leaves;
            keys := !keys + node.nkeys;
            if depth <> t.height_ then
              problem "leaf at depth %d, expected %d" depth t.height_
        | Internal inner ->
            if inner.nchildren <> node.nkeys then
              problem "child/key count mismatch at depth %d" depth;
            for i = 0 to inner.nchildren - 1 do
              let lo' = if i = 0 then lo else node.keys.(i) in
              let hi' = if i = inner.nchildren - 1 then hi else node.keys.(i + 1) in
              match inner.children.(i) with
              | Some child -> walk child (depth + 1) ~lo:lo' ~hi:hi'
              | None -> problem "missing child at depth %d" depth
            done
      in
      walk root 1 ~lo:min_int ~hi:max_int;
      if !leaves <> t.leaves then problem "leaf count %d <> %d" !leaves t.leaves;
      if !nodes <> t.nodes then problem "node count %d <> %d" !nodes t.nodes;
      if !keys <> t.keys_ then problem "key count %d <> %d" !keys t.keys_;
      (match !problems with
      | [] -> Ok ()
      | ps -> Error (String.concat "; " (List.rev ps)))
