open O2_runtime

let slot_bytes = 16  (* 8-byte key + 8-byte value *)

type bucket = {
  addr : int;
  lock : Spinlock.t;
  keys : int array;
  values : int array;
  mutable used : int;
}

type t = {
  ct : Coretime.t;
  bucket_arr : bucket array;
  slots : int;
  mutable size_ : int;
}

let create ct ?(pid = 0) ~name ~buckets ~slots_per_bucket () =
  if buckets <= 0 || slots_per_bucket <= 0 then
    invalid_arg "Kv_store.create: buckets and slots must be positive";
  let engine = Coretime.engine ct in
  let mem = O2_simcore.Machine.memory (Engine.machine engine) in
  let bucket_bytes = slots_per_bucket * slot_bytes in
  let make_bucket i =
    let ext =
      O2_simcore.Memsys.alloc mem
        ~name:(Printf.sprintf "%s.bucket%d" name i)
        ~size:bucket_bytes
    in
    let addr = ext.O2_simcore.Memsys.base in
    ignore
      (Coretime.register ct ~pid ~base:addr ~size:bucket_bytes
         ~name:(Printf.sprintf "%s.b%d" name i) ());
    {
      addr;
      lock = Spinlock.create mem ~name:(Printf.sprintf "%s.lock%d" name i);
      keys = Array.make slots_per_bucket 0;
      values = Array.make slots_per_bucket 0;
      used = 0;
    }
  in
  {
    ct;
    bucket_arr = Array.init buckets make_bucket;
    slots = slots_per_bucket;
    size_ = 0;
  }

let buckets t = Array.length t.bucket_arr

let bucket_of_key t key =
  let h = key * 0x2545F491 land max_int in
  h mod buckets t

let bucket_addr t i = t.bucket_arr.(i).addr

(* Scan the bucket's slots for a key, charging the bytes a linear probe
   would touch. Returns the slot index. *)
let scan_sim b ~key =
  let rec go i = if i >= b.used then None else if b.keys.(i) = key then Some i else go (i + 1) in
  let hit = go 0 in
  let probed = match hit with Some i -> i + 1 | None -> b.used in
  if probed > 0 then ignore (Api.read ~addr:b.addr ~len:(probed * slot_bytes));
  Api.compute (2 * max probed 1);
  hit

let get t ~key =
  let b = t.bucket_arr.(bucket_of_key t key) in
  Coretime.with_op t.ct b.addr (fun () ->
      Api.lock b.lock;
      let result =
        match scan_sim b ~key with
        | Some i ->
            ((Some b.values.(i))
            [@alloc_ok
              "one result option under the bucket lock; simulated time does \
               not observe GC"])
        | None -> None
      in
      Api.unlock b.lock;
      result)

let put t ~key ~value =
  let b = t.bucket_arr.(bucket_of_key t key) in
  Coretime.with_op t.ct ~write:true b.addr (fun () ->
      Api.lock b.lock;
      let ok =
        match scan_sim b ~key with
        | Some i ->
            b.values.(i) <- value;
            ignore (Api.write ~addr:(b.addr + (i * slot_bytes)) ~len:slot_bytes);
            true
        | None ->
            if b.used >= t.slots then false
            else begin
              let i = b.used in
              b.keys.(i) <- key;
              b.values.(i) <- value;
              b.used <- b.used + 1;
              t.size_ <- t.size_ + 1;
              ignore
                (Api.write ~addr:(b.addr + (i * slot_bytes)) ~len:slot_bytes);
              true
            end
      in
      Api.unlock b.lock;
      ok)

let delete t ~key =
  let b = t.bucket_arr.(bucket_of_key t key) in
  Coretime.with_op t.ct ~write:true b.addr (fun () ->
      Api.lock b.lock;
      let ok =
        match scan_sim b ~key with
        | None -> false
        | Some i ->
            let last = b.used - 1 in
            b.keys.(i) <- b.keys.(last);
            b.values.(i) <- b.values.(last);
            b.used <- last;
            t.size_ <- t.size_ - 1;
            ignore (Api.write ~addr:(b.addr + (i * slot_bytes)) ~len:slot_bytes);
            true
      in
      Api.unlock b.lock;
      ok)

let size t = t.size_
let mem_bytes t = buckets t * t.slots * slot_bytes
