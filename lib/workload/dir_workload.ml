open O2_fs

type spec = {
  dirs : int;
  entries_per_dir : int;
  cluster_bytes : int;
  compare_cycles : int;
  think_cycles : int;
  dir_dist : [ `Uniform | `Zipf of float ];
  shuffle_popularity : bool;
  use_locks : bool;
  seed : int;
}

let default_spec =
  {
    dirs = 64;
    entries_per_dir = 1000;
    cluster_bytes = 4096;
    compare_cycles = 2;
    think_cycles = 100;
    dir_dist = `Uniform;
    shuffle_popularity = false;
    use_locks = true;
    seed = 42;
  }

let dir_bytes_of spec =
  (* a directory's chain: entry bytes rounded up to whole clusters *)
  let content = spec.entries_per_dir * Fat_types.entry_bytes in
  (content + spec.cluster_bytes - 1) / spec.cluster_bytes * spec.cluster_bytes

let data_kb spec = spec.dirs * dir_bytes_of spec / 1024

let spec_for_data_kb ?(entries_per_dir = 1000) ?(seed = 42) ~kb () =
  let per_dir = dir_bytes_of { default_spec with entries_per_dir } / 1024 in
  let dirs = max 1 ((kb + (per_dir / 2)) / per_dir) in
  { default_spec with dirs; entries_per_dir; seed }

type t = {
  ct : Coretime.t;
  fs_ : Fat.t;
  spec_ : spec;
  dirs_ : Fat.dir array;
  objs_ : Coretime.Object_table.obj array;
  dir_addr : int array;  (* first-cluster address: the ct_start argument *)
  file_names83 : string array;  (* shared: every dir has the same names *)
  perm : int array;  (* popularity rank -> directory index *)
  zipf_ : Dist.t option;  (* built once here: no global cache, so cells of
                             a parallel sweep share no mutable state *)
  mutable active_ : int;
  mutable next_seed : int;
}

let build ct spec =
  if spec.dirs <= 0 || spec.entries_per_dir <= 0 then
    invalid_arg "Dir_workload.build: dirs and entries must be positive";
  let engine = Coretime.engine ct in
  let mem = O2_simcore.Machine.memory (O2_runtime.Engine.machine engine) in
  let clusters_per_dir = dir_bytes_of spec / spec.cluster_bytes in
  let root_clusters =
    1 + (spec.dirs * Fat_types.entry_bytes / spec.cluster_bytes)
  in
  let clusters =
    (spec.dirs * clusters_per_dir) + root_clusters + spec.dirs + 16
  in
  let fs_ =
    Fat.format mem ~label:"bench" ~cluster_bytes:spec.cluster_bytes ~clusters ()
  in
  Fat.set_compare_cycles fs_ spec.compare_cycles;
  let mkdir i =
    match Fat.mkdir fs_ (Printf.sprintf "d%d" i) with
    | Ok d -> d
    | Error e -> failwith ("Dir_workload.build: mkdir: " ^ e)
  in
  let dirs_ = Array.init spec.dirs mkdir in
  Array.iteri
    (fun i d ->
      match Fat.populate fs_ d ~prefix:"f" ~count:spec.entries_per_dir with
      | Ok () -> ()
      | Error e -> failwith (Printf.sprintf "populate d%d: %s" i e))
    dirs_;
  let dir_addr = Array.map (fun d -> Fat.dir_base_addr fs_ d) dirs_ in
  let objs_ =
    Array.mapi
      (fun i d ->
        Coretime.register ct ~base:dir_addr.(i) ~size:(Fat.dir_bytes fs_ d)
          ~name:d.Fat.dname ())
      dirs_
  in
  let file_names83 =
    Array.init spec.entries_per_dir (fun k ->
        Fat_name.to_83_exn (Printf.sprintf "f%d.dat" k))
  in
  let perm = Array.init spec.dirs Fun.id in
  if spec.shuffle_popularity then
    Rng.shuffle (Rng.create ~seed:(spec.seed lxor 0x5eed)) perm;
  let zipf_ =
    match spec.dir_dist with
    | `Uniform -> None
    | `Zipf s -> Some (Dist.zipf ~n:spec.dirs ~s)
  in
  {
    ct;
    fs_;
    spec_ = spec;
    dirs_;
    objs_;
    dir_addr;
    file_names83;
    perm;
    zipf_;
    active_ = spec.dirs;
    next_seed = spec.seed;
  }

let fs t = t.fs_
let spec t = t.spec_
let directory t i = t.dirs_.(i)
let dir_object t i = t.objs_.(i)
let active t = t.active_

let set_active t n = t.active_ <- max 1 (min n (Array.length t.dirs_))

let rotate_popularity t ~by =
  let n = Array.length t.perm in
  if n > 1 then begin
    let by = ((by mod n) + n) mod n in
    let rotated = Array.init n (fun i -> t.perm.((i + by) mod n)) in
    Array.blit rotated 0 t.perm 0 n
  end

(* Sampling maps the full rank order into the active prefix so shrinking
   the set keeps the skew shape. *)
let pick_dir t rng =
  match t.zipf_ with
  | None -> t.perm.(Rng.int rng ~bound:t.active_)
  | Some d -> t.perm.(Dist.sample d rng mod t.active_)

let one_lookup t rng =
  let di = pick_dir t rng in
  let fi = Rng.int rng ~bound:(Array.length t.file_names83) in
  Coretime.ct_start t.ct t.dir_addr.(di);
  let found =
    if t.spec_.use_locks then
      Fat.lookup_locked_83 t.fs_ t.dirs_.(di) t.file_names83.(fi)
    else Fat.lookup_83 t.fs_ t.dirs_.(di) t.file_names83.(fi)
  in
  Coretime.ct_end t.ct;
  if t.spec_.think_cycles > 0 then O2_runtime.Api.compute t.spec_.think_cycles;
  found <> None

let spawn_thread t ~core =
  let engine = Coretime.engine t.ct in
  let rng = Rng.create ~seed:(t.next_seed + (1000 * core)) in
  t.next_seed <- t.next_seed + 1;
  O2_runtime.Engine.spawn engine ~core
    ~name:(Printf.sprintf "lookup-worker-%d" core)
    (fun () ->
      while true do
        ignore (one_lookup t rng)
      done)

let spawn_threads t =
  let engine = Coretime.engine t.ct in
  for core = 0 to O2_runtime.Engine.cores engine - 1 do
    ignore (spawn_thread t ~core)
  done

let spawn_threads_placed t placement =
  Array.iter (fun core -> ignore (spawn_thread t ~core)) placement

let lookups_done t =
  let machine = O2_runtime.Engine.machine (Coretime.engine t.ct) in
  Array.fold_left
    (fun acc c -> acc + c.O2_simcore.Counters.ops_completed)
    0
    (O2_simcore.Machine.all_counters machine)
