(** CoreTime's object table (paper Section 4, "Interface"): registered
    objects keyed by the address that identifies them, their home-core
    assignment, and per-core cache-budget accounting.

    [ct_start(o)] resolves its address argument through {!find}; promotion
    and rebalancing mutate assignments through {!assign} / {!unassign},
    which maintain how many bytes are packed into each core's budget.

    The table also maintains incremental indexes so the runtime monitor's
    cost tracks the {e active} set rather than the table size: per-core
    intrusive assignment lists ({!iter_assigned} is O(assigned-on-core)
    and allocation-free), and an active-set list of objects operated on
    this period ({!note_op} appends on the first op, {!drain_active}
    resets the period counters of exactly those objects). *)

type obj = {
  base : int;  (** Identifying address (e.g. a directory's first cluster). *)
  size : int;  (** Bytes, as supplied at registration. *)
  name : string;
  seq : int;  (** Registration sequence number (0-based, dense). *)
  mutable home : int option;  (** Assigned core, when in the table. *)
  mutable ewma_misses : float;  (** Per-op cache-miss EWMA. *)
  mutable ops_total : int;
  mutable ops_period : int;  (** Ops since the last monitor period. *)
  mutable idle_periods : int;  (** Consecutive periods with zero ops. *)
  mutable writes : int;  (** Write operations observed on it. *)
  mutable replicated : bool;
      (** The replication policy decided the hardware should manage this
          hot read-only object; promotion leaves it alone until it is
          written. *)
  mutable assigns : int;
      (** Lifetime count of {!assign} calls — how often the scheduler has
          (re)homed this object, surfaced in decision provenance. *)
  mutable owner_pid : int;  (** Owning process (fairness accounting). *)
  mutable link_prev : obj option;
      (** Intrusive per-core assignment list; maintained by
          {!assign}/{!unassign}, never write these directly. *)
  mutable link_next : obj option;
  mutable active_next : obj option;
      (** Intrusive active-set list; maintained by
          {!note_op}/{!drain_active}, never write these directly. *)
  mutable in_active : bool;
}

type t

val create : cores:int -> budget_per_core:int -> t

val register :
  t -> ?pid:int -> base:int -> size:int -> name:string -> unit -> obj
(** @raise Invalid_argument on duplicate base or non-positive size. *)

val find : t -> int -> obj option
(** Lookup by identifying address (exact base match, O(1) — the table
    lookup [ct_start] performs). *)

val find_exn : t -> int -> obj

val iter : t -> (obj -> unit) -> unit
(** Every registered object, in registration order, without allocating. *)

val fold : t -> ('a -> obj -> 'a) -> 'a -> 'a
(** [fold t f init]: {!iter} with an accumulator, registration order. *)

val objects : t -> obj list
[@@alert
  deprecated
    "allocates a fresh list per call; use iter / fold / iter_assigned"]
(** Registration-order compatibility shim. Allocates O(n) per call — keep
    it out of anything periodic; it survives only for callers where the
    materialised registration-order list is the point. *)

val size : t -> int

val assign : t -> obj -> int -> unit
(** Put [obj] in the table with the given home core (moving it if it was
    assigned elsewhere); updates budget accounting and the per-core
    assignment index. *)

val unassign : t -> obj -> unit

val budget : t -> int
val cores : t -> int
val used : t -> int -> int
(** Bytes currently assigned to a core. *)

val total_used : t -> int
val occupancy : t -> float
(** [total_used / (budget * cores)]: how full the table's cache budget is. *)

val free_space : t -> int -> int

val iter_assigned : t -> core:int -> (obj -> unit) -> unit
(** The objects homed on [core], O(assigned-on-core), zero allocation.
    The callback may {!unassign} or re-{!assign} the object it was handed
    (the successor is read first); removing {e other} objects of the same
    core's list mid-iteration is not supported. *)

val fold_assigned : t -> core:int -> ('a -> obj -> 'a) -> 'a -> 'a

val assigned : t -> core:int -> obj list
(** Objects homed on [core], in registration order. Allocates; prefer
    {!iter_assigned} anywhere periodic. *)

val assigned_count : t -> int
(** Objects currently in the table (O(1)). *)

val note_op : t -> obj -> unit
(** Record one completed operation on [obj]: bumps [ops_total] and
    [ops_period], and appends [obj] to the active-set list on the first
    op of the period. All per-period op accounting must go through here —
    writing [ops_period] directly would hide the object from
    {!iter_active} and {!drain_active}. *)

val iter_active : t -> (obj -> unit) -> unit
(** Objects operated on since the last {!drain_active} (newest first),
    zero allocation. *)

val active_count : t -> int

val drain_active : t -> unit
(** End the monitor period: reset [ops_period] on exactly the objects in
    the active set and empty it. O(active), allocation-free. *)

val fits : t -> core:int -> obj -> bool

(** [can_place t o] is whether any core currently has budget for [o]. *)
val can_place : t -> obj -> bool

val check_accounting : t -> (unit, string) result
(** Budget-accounting invariant for the property tests and the o2check
    audits, extended to the incremental indexes: per-core byte totals
    match the [home] fields, every per-core list holds exactly the
    objects homed there with consistent back-links, and the active list
    covers exactly the objects with pending period ops. *)
