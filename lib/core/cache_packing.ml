type item = { key : int; bytes : int; heat : float }

let pack ~budget ~used ~items =
  let used = Array.copy used in
  let n = Array.length used in
  (* Stable sort keeps registration order for equal heat, which makes runs
     reproducible. *)
  let sorted =
    List.stable_sort (fun a b -> compare b.heat a.heat) items
  in
  let placed = ref [] and unplaced = ref [] in
  List.iter
    (fun it ->
      let rec fit c =
        if c >= n then None
        else if used.(c) + it.bytes <= budget then Some c
        else fit (c + 1)
      in
      match fit 0 with
      | Some c ->
          used.(c) <- used.(c) + it.bytes;
          placed := (it, c) :: !placed
      | None -> unplaced := it :: !unplaced)
    sorted;
  (List.rev !placed, List.rev !unplaced)

(* Stateless deterministic hash for Random_fit: mixing (seed, nonce) keeps
   distinct policies independent while leaving no state behind. A module-
   level PRNG table would be shared mutable state — experiment cells now
   run on separate domains, and a shared call counter would make a cell's
   placements depend on what other cells ran before it. *)
let next_random seed nonce bound =
  let z = (seed lxor 0x9E3779B9) + (nonce * 0x9E3779B9) land max_int in
  let z = z lxor (z lsr 16) * 0x45d9f3b land max_int in
  let z = z lxor (z lsr 16) * 0x45d9f3b land max_int in
  let z = z lxor (z lsr 16) in
  z mod bound

let place_one ?(nonce = 0) ~placement ~budget ~used ~bytes () =
  let n = Array.length used in
  let fits c = used.(c) + bytes <= budget in
  match placement with
  | Policy.First_fit ->
      let rec go c = if c >= n then None else if fits c then Some c else go (c + 1) in
      go 0
  | Policy.Least_loaded ->
      let best = ref None in
      for c = 0 to n - 1 do
        if fits c then
          match !best with
          | Some b when used.(b) <= used.(c) -> ()  (* lowest id wins ties *)
          | _ -> best := Some c
      done;
      !best
  | Policy.Random_fit seed ->
      let candidates = ref [] in
      for c = n - 1 downto 0 do
        if fits c then candidates := c :: !candidates
      done;
      let cands = Array.of_list !candidates in
      if Array.length cands = 0 then None
      else Some cands.(next_random seed nonce (Array.length cands))

let is_feasible ~budget ~used ~bytes =
  Array.exists (fun u -> u + bytes <= budget) used

(* Size of the candidate set a placement chose from — recorded in the
   promotion's provenance. Allocation-free: runs on every promotion when a
   decision subscriber is attached. *)
let count_fits ~budget ~used ~bytes =
  let n = Array.length used in
  let rec go c acc =
    if c >= n then acc
    else go (c + 1) (if used.(c) + bytes <= budget then acc + 1 else acc)
  in
  go 0 0
