open O2_simcore

type stats = {
  mutable periods : int;
  mutable demotions : int;
  mutable moves : int;
  mutable displacements : int;
  mutable replications : int;
}

(* Everything the monitor needs per period is preallocated here: counter
   snapshots and deltas are diffed in place, the per-core ratio arrays are
   reused, and object candidates are gathered into a growable scratch
   array and sorted in place. A quiet period — nothing active, no
   pressure, no saturated core — runs through [step] without a single
   minor allocation (pinned by suite_hotpath), and no phase ever walks the
   full object table: cost is proportional to the assigned/active sets. *)
type t = {
  policy : Policy.t;
  table : Object_table.t;
  machine : Machine.t;
  probe : O2_runtime.Probe.t option;
  last : Counters.t array;  (* previous-period snapshot, overwritten in place *)
  deltas : Counters.t array;  (* events of the period being examined *)
  busy_ : float array;
  idle_ : float array;
  fsum : float array;  (* busy-ratio running sum (scratch keeps it unboxed) *)
  isum : int array;  (* [| dram sum; overloaded count |] *)
  dram_ : int array;
  over_ : bool array;
  recv_ : int array;  (* receiver cores, most idle first *)
  mutable cand_ : Object_table.obj array;  (* candidate gather/sort scratch *)
  mutable cand_len : int;
  mutable last_now : int;
  stats_ : stats;
}

let create ?probe policy table machine =
  let counters = Machine.all_counters machine in
  let n = Array.length counters in
  {
    policy;
    table;
    machine;
    probe;
    last = Array.map Counters.copy counters;
    deltas = Array.init n (fun _ -> Counters.create ());
    busy_ = Array.make n 0.0;
    idle_ = Array.make n 0.0;
    fsum = Array.make 1 0.0;
    isum = Array.make 2 0;
    dram_ = Array.make n 0;
    over_ = Array.make n false;
    recv_ = Array.make n 0;
    cand_ = [||];
    cand_len = 0;
    last_now = 0;
    stats_ =
      { periods = 0; demotions = 0; moves = 0; displacements = 0; replications = 0 };
  }

let stats t = t.stats_

(* Decision provenance: each monitor action announces what it did and why
   through the probe. Producers test [decisions_on] first so building the
   record costs nothing when nobody listens (the usual case; pinned by
   suite_hotpath's guarded-emit probe). *)
let decisions_on t =
  match t.probe with Some p -> O2_runtime.Probe.active p | None -> false

let emit_decision t ~now decision =
  match t.probe with
  | Some p -> O2_runtime.Probe.emit p (O2_runtime.Probe.Decision { time = now; decision })
  | None -> ()

(* Candidate scratch: push, then sort in place. The order is total —
   most-operated-on first, registration sequence breaking ties — which is
   exactly what the old stable sort over the registration-ordered table
   produced, so sweep rows stay bit-identical. *)
let push_cand t o =
  if t.cand_len = Array.length t.cand_ then begin
    let grown = Array.make (max 16 (2 * t.cand_len)) o in
    Array.blit t.cand_ 0 grown 0 t.cand_len;
    t.cand_ <- grown
  end;
  t.cand_.(t.cand_len) <- o;
  t.cand_len <- t.cand_len + 1

let hotter (a : Object_table.obj) (b : Object_table.obj) =
  a.Object_table.ops_period > b.Object_table.ops_period
  || (a.Object_table.ops_period = b.Object_table.ops_period
     && a.Object_table.seq < b.Object_table.seq)

let sort_cands t =
  for i = 1 to t.cand_len - 1 do
    let key = t.cand_.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && hotter key t.cand_.(!j) do
      t.cand_.(!j + 1) <- t.cand_.(!j);
      decr j
    done;
    t.cand_.(!j + 1) <- key
  done

(* Hottest [top] candidates to the front, in order; cheaper than a full
   sort when the active set is larger than the bounded work budget. *)
let select_top t top =
  let top = min top t.cand_len in
  for i = 0 to top - 1 do
    let best = ref i in
    for j = i + 1 to t.cand_len - 1 do
      if hotter t.cand_.(j) t.cand_.(!best) then best := j
    done;
    let tmp = t.cand_.(i) in
    t.cand_.(i) <- t.cand_.(!best);
    t.cand_.(!best) <- tmp
  done;
  top

(* Demotion exists to free budget, so it only runs under budget pressure;
   an assignment that merely went quiet keeps its home (rearranging, not
   forgetting, is the monitor's job — Section 4). The threshold leaves
   room for a reasonable burst of new promotions. Written out over ints so
   the every-period check boxes nothing. *)
let demotion_pressure t =
  float_of_int (Object_table.total_used t.table)
  /. float_of_int (Object_table.budget t.table * Object_table.cores t.table)
  > 0.8

(* Only assigned objects can be demoted, so walk the per-core assignment
   lists — O(assigned), not O(table) — and let quiet ones age. *)
let demote_stale t ~now =
  for core = 0 to Object_table.cores t.table - 1 do
    Object_table.iter_assigned t.table ~core (fun o ->
        let open Object_table in
        if o.ops_period = 0 then begin
          o.idle_periods <- o.idle_periods + 1;
          if o.idle_periods >= t.policy.Policy.demote_idle_periods then begin
            if decisions_on t then
              emit_decision t ~now
                (O2_runtime.Probe.Demoted
                   {
                     obj_base = o.base;
                     name = o.name;
                     seq = o.seq;
                     core;
                     idle_periods = o.idle_periods;
                     threshold_periods = t.policy.Policy.demote_idle_periods;
                   });
            Object_table.unassign t.table o;
            o.idle_periods <- 0;
            t.stats_.demotions <- t.stats_.demotions + 1
          end
        end
        else o.idle_periods <- 0)
  done

let move_from_saturated t ~now period =
  let ncores = Array.length t.deltas in
  (* Per-core ratios into reused arrays; sums ride along in scratch cells
     so nothing is boxed. Summation order matches the old left fold. *)
  t.fsum.(0) <- 0.0;
  t.isum.(0) <- 0;
  for core = 0 to ncores - 1 do
    let d = t.deltas.(core) in
    let b =
      if period <= 0 then 0.0
      else
        float_of_int (d.Counters.busy_cycles + d.Counters.spin_cycles)
        /. float_of_int period
    in
    t.busy_.(core) <- b;
    t.idle_.(core) <-
      (if period <= 0 then 0.0
       else float_of_int d.Counters.idle_cycles /. float_of_int period);
    t.dram_.(core) <- d.Counters.dram_loads;
    t.fsum.(0) <- t.fsum.(0) +. b;
    t.isum.(0) <- t.isum.(0) + d.Counters.dram_loads
  done;
  let avg_busy = t.fsum.(0) /. float_of_int ncores in
  let avg_dram = float_of_int t.isum.(0) /. float_of_int ncores in
  (* The paper's trigger (Section 4): a core is a source when it is rarely
     idle OR often loads from DRAM (too many objects packed into its
     cache); receivers have idle cycles and little memory pressure. *)
  t.isum.(1) <- 0;
  for core = 0 to ncores - 1 do
    let over =
      t.busy_.(core) > t.policy.Policy.overload_busy
      || t.busy_.(core) -. avg_busy > 0.2  (* far above the mean: queues build *)
      || (avg_dram > 0.0
         && float_of_int t.dram_.(core) > 2.0 *. avg_dram
         && t.dram_.(core) > 1000
         && t.busy_.(core) > avg_busy)
    in
    t.over_.(core) <- over;
    if over then t.isum.(1) <- t.isum.(1) + 1
  done;
  if t.isum.(1) > 0 then begin
    (* Receivers: idle cores, most idle first; rotate through them. *)
    let n_recv = ref 0 in
    for core = 0 to ncores - 1 do
      if
        t.idle_.(core) > t.policy.Policy.idle_avail
        && float_of_int t.dram_.(core) <= avg_dram
      then begin
        t.recv_.(!n_recv) <- core;
        incr n_recv
      end
    done;
    for i = 1 to !n_recv - 1 do
      let key = t.recv_.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && t.idle_.(t.recv_.(!j)) < t.idle_.(key) do
        t.recv_.(!j + 1) <- t.recv_.(!j);
        decr j
      done;
      t.recv_.(!j + 1) <- key
    done;
    if !n_recv > 0 then begin
      let next_recv = ref 0 in
      let moves_left = ref t.policy.Policy.max_moves_per_rebalance in
      for core = 0 to ncores - 1 do
        if t.over_.(core) then begin
          (* This core's operated-on objects, hottest first: gathered from
             its assignment list at the moment it is processed, so earlier
             cores' moves are visible exactly as they were to the old
             full-scan filter. *)
          t.cand_len <- 0;
          let core_ops = ref 0 in
          Object_table.iter_assigned t.table ~core (fun o ->
              core_ops := !core_ops + o.Object_table.ops_period;
              if o.Object_table.ops_period > 0 then push_cand t o);
          sort_cands t;
          let core_ops = !core_ops in
          (* Shed enough operations to bring this core back to the mean; a
             memory-pressure source sheds at least a quarter of its load
             even when its busy ratio is unremarkable. *)
          let busy_shed =
            if t.busy_.(core) > 0.0 then
              int_of_float
                (ceil
                   (float_of_int core_ops
                   *. ((t.busy_.(core) -. avg_busy) /. t.busy_.(core))))
            else 0
          in
          let shed_target = max busy_shed (core_ops / 4) in
          let shed = ref shed_target in
          for ci = 0 to t.cand_len - 1 do
            let o = t.cand_.(ci) in
            if !shed > 0 && !moves_left > 0 && o.Object_table.ops_period > 0
            then begin
              (* Try each receiver once, starting from the rotation point. *)
              let n = !n_recv in
              let rec try_receiver k =
                if k >= n then None
                else begin
                  let c = t.recv_.((!next_recv + k) mod n) in
                  if c <> core && Object_table.fits t.table ~core:c o then
                    Some (c, k)
                  else try_receiver (k + 1)
                end
              in
              match try_receiver 0 with
              | None -> ()
              | Some (c, k) ->
                  if decisions_on t then begin
                    (* The candidate this one beat: the next-hottest not yet
                       considered, in the same (ops desc, seq asc) order the
                       selection walked. *)
                    let ru =
                      if ci + 1 < t.cand_len then Some t.cand_.(ci + 1)
                      else None
                    in
                    emit_decision t ~now
                      (O2_runtime.Probe.Moved
                         {
                           obj_base = o.Object_table.base;
                           name = o.Object_table.name;
                           seq = o.Object_table.seq;
                           assigns = o.Object_table.assigns + 1;
                           ops_period = o.Object_table.ops_period;
                           from_core = core;
                           to_core = c;
                           src_busy = t.busy_.(core);
                           avg_busy;
                           src_dram = t.dram_.(core);
                           avg_dram;
                           dst_idle = t.idle_.(c);
                           runner_up_seq =
                             (match ru with
                             | Some r -> r.Object_table.seq
                             | None -> -1);
                           runner_up_name =
                             (match ru with
                             | Some r -> r.Object_table.name
                             | None -> "");
                           runner_up_ops =
                             (match ru with
                             | Some r -> r.Object_table.ops_period
                             | None -> 0);
                           tie_break =
                             (match ru with
                             | Some r ->
                                 r.Object_table.ops_period
                                 = o.Object_table.ops_period
                             | None -> false);
                           shed_before = !shed;
                           shed_target;
                           moves_left = !moves_left;
                         })
                  end;
                  Object_table.assign t.table o c;
                  next_recv := (!next_recv + k + 1) mod n;
                  shed := !shed - o.Object_table.ops_period;
                  decr moves_left;
                  t.stats_.moves <- t.stats_.moves + 1
            end
          done
        end
      done
    end
  end

(* Section 6.2 replacement policy: when the working set exceeds on-chip
   memory, prefer to keep the most frequently accessed objects assigned.
   Displace an assigned object when an unassigned one saw at least twice
   its operations this period. Unassigned-but-operated-on objects are by
   definition in the active set, so the candidates come from there — never
   from a table scan. *)
let displace_for_hotter t ~now =
  t.cand_len <- 0;
  Object_table.iter_active t.table (fun o ->
      if o.Object_table.home = None && o.Object_table.ops_period > 0 then
        push_cand t o);
  let top = select_top t 4 (* bounded work per period *) in
  for hi = 0 to top - 1 do
    let hot = t.cand_.(hi) in
    if not (Object_table.can_place t.table hot) then begin
      (* find the coldest assigned victim clearly colder than [hot]:
         minimal (ops_period, seq), the object the old registration-order
         fold would have kept *)
      let victim = ref None in
      for core = 0 to Object_table.cores t.table - 1 do
        Object_table.iter_assigned t.table ~core (fun o ->
            if
              2 * o.Object_table.ops_period <= hot.Object_table.ops_period
              && o.Object_table.size >= hot.Object_table.size
            then
              match !victim with
              | Some v
                when v.Object_table.ops_period < o.Object_table.ops_period
                     || (v.Object_table.ops_period = o.Object_table.ops_period
                        && v.Object_table.seq < o.Object_table.seq) ->
                  ()
              | _ -> victim := Some o)
      done;
      match !victim with
      | Some v ->
          let core = Option.get v.Object_table.home in
          Object_table.unassign t.table v;
          let placed = Object_table.fits t.table ~core hot in
          if placed then begin
            Object_table.assign t.table hot core;
            t.stats_.displacements <- t.stats_.displacements + 1
          end;
          if decisions_on t then
            emit_decision t ~now
              (O2_runtime.Probe.Displaced
                 {
                   hot_base = hot.Object_table.base;
                   hot_name = hot.Object_table.name;
                   hot_seq = hot.Object_table.seq;
                   hot_ops = hot.Object_table.ops_period;
                   victim_base = v.Object_table.base;
                   victim_name = v.Object_table.name;
                   victim_seq = v.Object_table.seq;
                   victim_ops = v.Object_table.ops_period;
                   core;
                   placed;
                 })
      | None -> ()
    end
  done

(* Section 6.2 reconsideration: an object promoted before its popularity
   was evident may be better replicated by the hardware. Un-schedule hot
   read-only assignments — necessarily assigned, so the per-core lists
   hold every candidate; the [replicated] flag keeps promotion away. *)
let release_hot_read_only t ~now =
  for core = 0 to Object_table.cores t.table - 1 do
    Object_table.iter_assigned t.table ~core (fun o ->
        let open Object_table in
        if
          o.writes = 0 && o.ops_period >= t.policy.Policy.replicate_min_ops
        then begin
          if decisions_on t then
            emit_decision t ~now
              (O2_runtime.Probe.Released
                 {
                   obj_base = o.base;
                   name = o.name;
                   seq = o.seq;
                   core;
                   ops_period = o.ops_period;
                   min_ops = t.policy.Policy.replicate_min_ops;
                 });
          Object_table.unassign t.table o;
          o.replicated <- true;
          t.stats_.replications <- t.stats_.replications + 1
        end)
  done

let step t ~now =
  let current = Machine.all_counters t.machine in
  let n = Array.length current in
  for i = 0 to n - 1 do
    Counters.diff_into t.deltas.(i) current.(i) ~since:t.last.(i)
  done;
  let period = now - t.last_now in
  let moves0 = t.stats_.moves and demotions0 = t.stats_.demotions in
  t.stats_.periods <- t.stats_.periods + 1;
  if demotion_pressure t then demote_stale t ~now;
  if t.policy.Policy.replicate_read_only then release_hot_read_only t ~now;
  if t.policy.Policy.evict_for_hotter then displace_for_hotter t ~now;
  if period > 0 then move_from_saturated t ~now period;
  (* End of period: reset op counts on exactly the objects that have any,
     instead of sweeping the whole table. *)
  Object_table.drain_active t.table;
  for i = 0 to n - 1 do
    Counters.copy_into t.last.(i) current.(i)
  done;
  t.last_now <- now;
  (* Announce the period so invariant checkers can audit the table right
     after the monitor mutated it. *)
  match t.probe with
  | Some p when O2_runtime.Probe.active p ->
      O2_runtime.Probe.emit p
        ((O2_runtime.Probe.Rebalanced
            {
              time = now;
              moves = t.stats_.moves - moves0;
              demotions = t.stats_.demotions - demotions0;
            })
        [@alloc_ok "guarded by Probe.active: allocates only when observed"])
  | Some _ | None -> ()
