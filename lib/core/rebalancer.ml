open O2_simcore

type stats = {
  mutable periods : int;
  mutable demotions : int;
  mutable moves : int;
  mutable displacements : int;
  mutable replications : int;
}

type t = {
  policy : Policy.t;
  table : Object_table.t;
  machine : Machine.t;
  probe : O2_runtime.Probe.t option;
  mutable last : Counters.t array;
  mutable last_now : int;
  stats_ : stats;
}

let create ?probe policy table machine =
  {
    policy;
    table;
    machine;
    probe;
    last = Array.map Counters.copy (Machine.all_counters machine);
    last_now = 0;
    stats_ =
      { periods = 0; demotions = 0; moves = 0; displacements = 0; replications = 0 };
  }

let stats t = t.stats_

(* Demotion exists to free budget, so it only runs under budget pressure;
   an assignment that merely went quiet keeps its home (rearranging, not
   forgetting, is the monitor's job — Section 4). The threshold leaves
   room for a reasonable burst of new promotions. *)
let demotion_pressure t = Object_table.occupancy t.table > 0.8

let demote_stale t =
  List.iter
    (fun o ->
      let open Object_table in
      if o.home <> None then
        if o.ops_period = 0 then begin
          o.idle_periods <- o.idle_periods + 1;
          if o.idle_periods >= t.policy.Policy.demote_idle_periods then begin
            Object_table.unassign t.table o;
            o.idle_periods <- 0;
            t.stats_.demotions <- t.stats_.demotions + 1
          end
        end
        else o.idle_periods <- 0)
    (Object_table.objects t.table)

(* Busy fraction of the elapsed period: executing or spinning both occupy
   the core's pinned worker. *)
let busy_ratio delta period =
  if period <= 0 then 0.0
  else
    float_of_int (delta.Counters.busy_cycles + delta.Counters.spin_cycles)
    /. float_of_int period

let idle_ratio delta period =
  if period <= 0 then 0.0
  else float_of_int delta.Counters.idle_cycles /. float_of_int period

let move_from_saturated t deltas period =
  let ncores = Array.length deltas in
  let busy = Array.map (fun d -> busy_ratio d period) deltas in
  let idle = Array.map (fun d -> idle_ratio d period) deltas in
  let avg_busy = Array.fold_left ( +. ) 0.0 busy /. float_of_int ncores in
  let dram = Array.map (fun d -> d.Counters.dram_loads) deltas in
  let avg_dram =
    float_of_int (Array.fold_left ( + ) 0 dram) /. float_of_int ncores
  in
  (* The paper's trigger (Section 4): a core is a source when it is rarely
     idle OR often loads from DRAM (too many objects packed into its
     cache); receivers have idle cycles and little memory pressure. *)
  let overloaded core =
    busy.(core) > t.policy.Policy.overload_busy
    || busy.(core) -. avg_busy > 0.2  (* far above the mean: queues build *)
    || (avg_dram > 0.0
       && float_of_int dram.(core) > 2.0 *. avg_dram
       && dram.(core) > 1000
       && busy.(core) > avg_busy)
  in
  (* Receivers: idle cores, most idle first; rotate through them. *)
  let receivers =
    List.filter
      (fun c ->
        idle.(c) > t.policy.Policy.idle_avail
        && float_of_int dram.(c) <= avg_dram)
      (List.init ncores Fun.id)
    |> List.sort (fun a b -> compare idle.(b) idle.(a))
  in
  if receivers <> [] then begin
    let recv = Array.of_list receivers in
    let next_recv = ref 0 in
    let moves_left = ref t.policy.Policy.max_moves_per_rebalance in
    for core = 0 to ncores - 1 do
      if overloaded core then begin
        let objs =
          Object_table.assigned t.table ~core
          |> List.sort (fun a b ->
                 compare b.Object_table.ops_period a.Object_table.ops_period)
        in
        let core_ops =
          List.fold_left (fun acc o -> acc + o.Object_table.ops_period) 0 objs
        in
        (* Shed enough operations to bring this core back to the mean; a
           memory-pressure source sheds at least a quarter of its load
           even when its busy ratio is unremarkable. *)
        let busy_shed =
          if busy.(core) > 0.0 then
            int_of_float
              (ceil
                 (float_of_int core_ops
                 *. ((busy.(core) -. avg_busy) /. busy.(core))))
          else 0
        in
        let shed = ref (max busy_shed (core_ops / 4)) in
        List.iter
          (fun o ->
            if !shed > 0 && !moves_left > 0 && o.Object_table.ops_period > 0
            then begin
              (* Try each receiver once, starting from the rotation point. *)
              let n = Array.length recv in
              let rec try_receiver k =
                if k >= n then None
                else begin
                  let c = recv.((!next_recv + k) mod n) in
                  if c <> core && Object_table.fits t.table ~core:c o then
                    Some (c, k)
                  else try_receiver (k + 1)
                end
              in
              match try_receiver 0 with
              | None -> ()
              | Some (c, k) ->
                  Object_table.assign t.table o c;
                  next_recv := (!next_recv + k + 1) mod n;
                  shed := !shed - o.Object_table.ops_period;
                  decr moves_left;
                  t.stats_.moves <- t.stats_.moves + 1
            end)
          objs
      end
    done
  end

(* Section 6.2 replacement policy: when the working set exceeds on-chip
   memory, prefer to keep the most frequently accessed objects assigned.
   Displace an assigned object when an unassigned one saw at least twice
   its operations this period. *)
let displace_for_hotter t =
  let objs = Object_table.objects t.table in
  let unassigned_hot =
    List.filter
      (fun o -> o.Object_table.home = None && o.Object_table.ops_period > 0)
      objs
    |> List.sort (fun a b ->
           compare b.Object_table.ops_period a.Object_table.ops_period)
  in
  List.iter
    (fun hot ->
      if not (Object_table.can_place t.table hot) then begin
        (* find the coldest assigned victim clearly colder than [hot] *)
        let victim =
          List.fold_left
            (fun acc o ->
              if
                o.Object_table.home <> None
                && 2 * o.Object_table.ops_period <= hot.Object_table.ops_period
                && o.Object_table.size >= hot.Object_table.size
              then
                match acc with
                | Some v
                  when v.Object_table.ops_period <= o.Object_table.ops_period
                  -> acc
                | _ -> Some o
              else acc)
            None objs
        in
        match victim with
        | Some v ->
            let core = Option.get v.Object_table.home in
            Object_table.unassign t.table v;
            if Object_table.fits t.table ~core hot then begin
              Object_table.assign t.table hot core;
              t.stats_.displacements <- t.stats_.displacements + 1
            end
        | None -> ()
      end)
    (match unassigned_hot with
    | a :: b :: c :: d :: _ -> [ a; b; c; d ]  (* bounded work per period *)
    | l -> l)

(* Section 6.2 reconsideration: an object promoted before its popularity
   was evident may be better replicated by the hardware. Un-schedule hot
   read-only assignments; the [replicated] flag keeps promotion away. *)
let release_hot_read_only t =
  List.iter
    (fun o ->
      let open Object_table in
      if
        o.home <> None && o.writes = 0
        && o.ops_period >= t.policy.Policy.replicate_min_ops
      then begin
        Object_table.unassign t.table o;
        o.replicated <- true;
        t.stats_.replications <- t.stats_.replications + 1
      end)
    (Object_table.objects t.table)

let step t ~now =
  let current = Machine.all_counters t.machine in
  let deltas =
    Array.map2 (fun c l -> Counters.diff c ~since:l) current t.last
  in
  let period = now - t.last_now in
  let moves0 = t.stats_.moves and demotions0 = t.stats_.demotions in
  t.stats_.periods <- t.stats_.periods + 1;
  if demotion_pressure t then demote_stale t;
  if t.policy.Policy.replicate_read_only then release_hot_read_only t;
  if t.policy.Policy.evict_for_hotter then displace_for_hotter t;
  if period > 0 then move_from_saturated t deltas period;
  List.iter
    (fun o -> o.Object_table.ops_period <- 0)
    (Object_table.objects t.table);
  t.last <- Array.map Counters.copy current;
  t.last_now <- now;
  (* Announce the period so invariant checkers can audit the table right
     after the monitor mutated it. *)
  match t.probe with
  | Some p when O2_runtime.Probe.active p ->
      O2_runtime.Probe.emit p
        (O2_runtime.Probe.Rebalanced
           {
             time = now;
             moves = t.stats_.moves - moves0;
             demotions = t.stats_.demotions - demotions0;
           })
  | Some _ | None -> ()
