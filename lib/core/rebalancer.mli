(** The runtime monitor (paper Section 4, "Runtime monitoring"): reads the
    per-core event counters each period and repairs two conditions:

    - {b stale assignments}: objects untouched for
      [demote_idle_periods] periods are removed from the table, freeing
      cache budget (and letting plain shared-memory hardware manage them
      again);
    - {b saturated cores}: when a core's busy(+spin) ratio exceeds
      [overload_busy] while other cores are idle, a portion of its
      objects — most operated-on first — move to the idle cores' caches.

    Driven by {!Coretime} through [Engine.every]; also callable directly
    in tests. *)

type stats = {
  mutable periods : int;
  mutable demotions : int;
  mutable moves : int;
  mutable displacements : int;
      (** Cold-for-hot swaps made by the [evict_for_hotter] replacement
          policy. *)
  mutable replications : int;
      (** Hot read-only assignments released to the hardware by the
          [replicate_read_only] policy. *)
}

type t

val create :
  ?probe:O2_runtime.Probe.t ->
  Policy.t -> Object_table.t -> O2_simcore.Machine.t -> t
(** [probe] (normally the engine's) receives a [Rebalanced] event after
    each {!step}, so analysis passes can audit the table the moment the
    monitor has mutated it. *)

val step : t -> now:int -> unit
(** One monitor period: compute counter deltas since the previous step,
    demote stale objects, move objects off saturated cores, then reset
    per-period op counts. Call [Engine.finalize_idle] first so idle-cycle
    counters are current. *)

val stats : t -> stats
