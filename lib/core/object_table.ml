type obj = {
  base : int;
  size : int;
  name : string;
  seq : int;
  mutable home : int option;
  mutable ewma_misses : float;
  mutable ops_total : int;
  mutable ops_period : int;
  mutable idle_periods : int;
  mutable writes : int;
  mutable replicated : bool;
  mutable assigns : int;
  mutable owner_pid : int;
  mutable link_prev : obj option;
  mutable link_next : obj option;
  mutable active_next : obj option;
  mutable in_active : bool;
}

(* Three incremental indexes keep the monitor's cost proportional to what
   it actually touches, not to the table size:

   - [all]/[n_objs]: registration order, for the (deprecated) [objects]
     shim and full-table audits;
   - [heads]: per-core intrusive doubly-linked assignment lists threaded
     through [link_prev]/[link_next], so iterating a core's objects is
     O(assigned-on-core) with zero allocation;
   - [active_head]: a singly-linked list of objects operated on since the
     last [drain_active], threaded through [active_next]/[in_active] and
     appended to by the first [note_op] of the period.  The rebalancer
     drains it instead of resetting every registered object's
     [ops_period]. *)
type t = {
  by_base : (int, obj) Hashtbl.t;
  used_ : int array;  (* bytes assigned per core *)
  budget_ : int;
  mutable all : obj array;  (* registration order; first [n_objs] live *)
  mutable n_objs : int;
  heads : obj option array;  (* per-core assigned lists, newest first *)
  mutable active_head : obj option;
  mutable active_n : int;
  mutable assigned_n : int;
}

let create ~cores ~budget_per_core =
  if cores <= 0 then invalid_arg "Object_table.create: cores";
  if budget_per_core <= 0 then invalid_arg "Object_table.create: budget";
  {
    by_base = Hashtbl.create 1024;
    used_ = Array.make cores 0;
    budget_ = budget_per_core;
    all = [||];
    n_objs = 0;
    heads = Array.make cores None;
    active_head = None;
    active_n = 0;
    assigned_n = 0;
  }

let register t ?(pid = 0) ~base ~size ~name () =
  if size <= 0 then invalid_arg "Object_table.register: size must be positive";
  if Hashtbl.mem t.by_base base then
    invalid_arg
      (Printf.sprintf "Object_table.register: duplicate object at %#x" base);
  let o =
    {
      base;
      size;
      name;
      seq = t.n_objs;
      home = None;
      ewma_misses = 0.0;
      ops_total = 0;
      ops_period = 0;
      idle_periods = 0;
      writes = 0;
      replicated = false;
      assigns = 0;
      owner_pid = pid;
      link_prev = None;
      link_next = None;
      active_next = None;
      in_active = false;
    }
  in
  Hashtbl.add t.by_base base o;
  if t.n_objs = Array.length t.all then begin
    let grown = Array.make (max 16 (2 * t.n_objs)) o in
    Array.blit t.all 0 grown 0 t.n_objs;
    t.all <- grown
  end;
  t.all.(t.n_objs) <- o;
  t.n_objs <- t.n_objs + 1;
  o

let find t base = Hashtbl.find_opt t.by_base base

let find_exn t base =
  match find t base with
  | Some o -> o
  | None ->
      invalid_arg (Printf.sprintf "Object_table.find_exn: no object at %#x" base)

let iter t f =
  for i = 0 to t.n_objs - 1 do
    f t.all.(i)
  done

let fold t f init =
  let acc = ref init in
  for i = 0 to t.n_objs - 1 do
    acc := f !acc t.all.(i)
  done;
  !acc

let objects t = List.init t.n_objs (fun i -> t.all.(i))
let size t = Hashtbl.length t.by_base

let unassign t o =
  match o.home with
  | None -> ()
  | Some core ->
      t.used_.(core) <- t.used_.(core) - o.size;
      t.assigned_n <- t.assigned_n - 1;
      o.home <- None;
      (match o.link_prev with
      | Some p -> p.link_next <- o.link_next
      | None -> t.heads.(core) <- o.link_next);
      (match o.link_next with
      | Some nx -> nx.link_prev <- o.link_prev
      | None -> ());
      o.link_prev <- None;
      o.link_next <- None

let assign t o core =
  if core < 0 || core >= Array.length t.used_ then
    invalid_arg "Object_table.assign: core out of range";
  unassign t o;
  o.home <- Some core;
  o.assigns <- o.assigns + 1;
  t.used_.(core) <- t.used_.(core) + o.size;
  t.assigned_n <- t.assigned_n + 1;
  o.link_next <- t.heads.(core);
  (match t.heads.(core) with Some h -> h.link_prev <- Some o | None -> ());
  t.heads.(core) <- Some o

let budget t = t.budget_
let cores t = Array.length t.used_
let used t core = t.used_.(core)
let total_used t = Array.fold_left ( + ) 0 t.used_

let occupancy t =
  float_of_int (total_used t)
  /. float_of_int (t.budget_ * Array.length t.used_)
let free_space t core = t.budget_ - t.used_.(core)

(* Tail-recursive so iterating (and draining, below) creates no ref
   cells: these run inside the monitor's zero-allocation period. The
   successor is read before [f] runs so [f] may unassign or move the
   object it was handed. *)
let rec iter_links f = function
  | None -> ()
  | Some o ->
      let next = o.link_next in
      f o;
      iter_links f next

let iter_assigned t ~core f = iter_links f t.heads.(core)

let rec fold_links f acc = function
  | None -> acc
  | Some o ->
      let next = o.link_next in
      fold_links f (f acc o) next

let fold_assigned t ~core f init = fold_links f init t.heads.(core)

let assigned t ~core =
  (* per-core list order is newest-assignment-first; re-sorting by
     registration sequence preserves the order the full-scan filter used
     to produce, so printed assignments stay stable *)
  fold_assigned t ~core (fun acc o -> o :: acc) []
  |> List.sort (fun a b -> compare a.seq b.seq)

let assigned_count t = t.assigned_n

let note_op t o =
  o.ops_total <- o.ops_total + 1;
  o.ops_period <- o.ops_period + 1;
  if not o.in_active then begin
    o.in_active <- true;
    o.active_next <- t.active_head;
    t.active_head <- ((Some o) [@alloc_ok "one option cell per first-op-of-period"]);
    t.active_n <- t.active_n + 1
  end

let rec iter_active_links f = function
  | None -> ()
  | Some o ->
      let next = o.active_next in
      f o;
      iter_active_links f next

let iter_active t f = iter_active_links f t.active_head

let active_count t = t.active_n

let rec drain_links = function
  | None -> ()
  | Some o ->
      let next = o.active_next in
      o.ops_period <- 0;
      o.in_active <- false;
      o.active_next <- None;
      drain_links next

let drain_active t =
  drain_links t.active_head;
  t.active_head <- None;
  t.active_n <- 0

let fits t ~core o = o.size <= free_space t core

let can_place t o = Array.exists (fun u -> u + o.size <= t.budget_) t.used_

let check_accounting t =
  let n = Array.length t.used_ in
  let recomputed = Array.make n 0 in
  let homed = Array.make n 0 in
  Hashtbl.iter
    (fun _ o ->
      match o.home with
      | Some c when c >= 0 && c < n ->
          recomputed.(c) <- recomputed.(c) + o.size;
          homed.(c) <- homed.(c) + 1
      | Some _ | None -> ())
    t.by_base;
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  for c = 0 to n - 1 do
    if recomputed.(c) <> t.used_.(c) then
      fail "core %d: accounted %d bytes, actual %d" c t.used_.(c) recomputed.(c)
  done;
  (* cross-check the per-core index lists against the [home] fields: every
     listed object is homed here, links are mutually consistent, and the
     list holds exactly the objects whose [home] says it should *)
  for c = 0 to n - 1 do
    let listed = ref 0 in
    let cur = ref t.heads.(c) in
    let prev = ref None in
    let continue_ = ref true in
    while !continue_ do
      match !cur with
      | None -> continue_ := false
      | Some o ->
          incr listed;
          if !listed > t.n_objs then begin
            fail "core %d: assignment list cycles" c;
            continue_ := false
          end
          else begin
            if o.home <> Some c then
              fail "core %d: list holds %s whose home is %s" c o.name
                (match o.home with
                | Some h -> string_of_int h
                | None -> "unassigned");
            (match (o.link_prev, !prev) with
            | None, None -> ()
            | Some p, Some q when p == q -> ()
            | _ -> fail "core %d: broken back-link at %s" c o.name);
            prev := Some o;
            cur := o.link_next
          end
    done;
    if !listed <> homed.(c) then
      fail "core %d: %d objects on the index list, %d homed there" c !listed
        homed.(c)
  done;
  (* the active list must cover exactly the objects with pending period
     ops, and its length counter must agree *)
  let active_listed = ref 0 in
  let cur = ref t.active_head in
  let continue_ = ref true in
  while !continue_ do
    match !cur with
    | None -> continue_ := false
    | Some o ->
        incr active_listed;
        if !active_listed > t.n_objs then begin
          fail "active list cycles";
          continue_ := false
        end
        else begin
          if not o.in_active then fail "active list holds %s (not in_active)" o.name;
          cur := o.active_next
        end
  done;
  if !active_listed <> t.active_n then
    fail "active list length %d, counter %d" !active_listed t.active_n;
  iter t (fun o ->
      if o.ops_period > 0 && not o.in_active then
        fail "%s has %d period ops but is missing from the active list" o.name
          o.ops_period);
  let assigned_recount = Array.fold_left ( + ) 0 homed in
  if assigned_recount <> t.assigned_n then
    fail "assigned counter %d, actual %d" t.assigned_n assigned_recount;
  match !err with None -> Ok () | Some e -> Error e
