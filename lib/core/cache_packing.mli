(** The greedy first-fit "cache packing" algorithm (paper Section 4,
    "Algorithm"): assign each expensive-to-fetch object to a cache with
    free space, hottest objects first.

    Sorting dominates, so a full pack of [n] objects runs in Θ(n log n) —
    the complexity the paper claims; benchmark E5 measures it. The
    incremental variant {!place_one} is what [ct_start] promotion uses. *)

type item = { key : int; bytes : int; heat : float }
(** [key] is caller-chosen (an object base address); [heat] orders packing
    (e.g. miss EWMA x popularity). *)

val pack :
  budget:int ->
  used:int array ->
  items:item list ->
  (item * int) list * item list
(** [pack ~budget ~used ~items] greedily first-fits items in decreasing
    heat order into cores whose [used.(c)] leaves room under [budget].
    Returns (placed as [(item, core)] pairs, unplaced). [used] is not
    mutated. Deterministic: ties in heat keep input order. *)

val place_one :
  ?nonce:int ->
  placement:Policy.placement ->
  budget:int ->
  used:int array ->
  bytes:int ->
  unit ->
  int option
(** Choose a core with at least [bytes] free under [budget], following the
    placement policy: [First_fit] picks the lowest-numbered such core,
    [Least_loaded] the one with the most free space (lowest id breaks
    ties), [Random_fit] a pseudo-random one — a pure hash of the policy
    seed and [nonce] (default 0), so callers vary [nonce] (e.g. a
    promotion counter) to spread placements. Stateless by design: cells of
    a parallel experiment sweep must not share a PRNG. *)

val is_feasible : budget:int -> used:int array -> bytes:int -> bool

val count_fits : budget:int -> used:int array -> bytes:int -> int
(** How many cores could take [bytes] under [budget] — the size of the
    candidate set {!place_one} chose from, reported in promotion
    provenance records. Allocation-free. *)
