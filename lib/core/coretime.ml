module Policy = Policy
module Object_table = Object_table
module Cache_packing = Cache_packing
module Clustering = Clustering
module Ownership = Ownership
module Rebalancer = Rebalancer

open O2_simcore
open O2_runtime

type frame = {
  obj : Object_table.obj option;
  write : bool;
  migrated_from : int option;
  snap_remote : int;
  snap_dram : int;
  snap_busy : int;
}

(* The per-thread stack of open operation frames lives on the thread
   itself (see {!Thread.ctx}): thread-local state needs no table, and is
   the only kind of CoreTime state a worker domain may touch freely under
   the sharded engine — a thread runs on one domain at a time, and
   cross-chip handoffs pass through a window barrier. *)
type Thread.ctx += Frames of frame list

type stats = {
  mutable promotions : int;
  mutable replications : int;
  mutable op_migrations : int;
  mutable ops : int;
}

(* Deferred shared-state mutation under the sharded engine: ct_start /
   ct_end append one entry per boundary to their chip's log; the window
   barrier merges all chips' logs by (time, chip, seq) — a total,
   domain-count-independent order — and applies them serially. In-window
   code only {e reads} the object table (find, home), so promotion and
   statistics decisions take effect one window late; that is the
   documented semantic delta of the windowed engine, and it is
   bit-identical for every shard count. *)
type lentry = {
  le_start : bool;
  le_time : int;
  le_chip : int;
  le_seq : int;
  le_obj : Object_table.obj option;
  le_parent : Object_table.obj option;  (* start: co-access parent *)
  le_migrated : bool;  (* start: the op was shipped to its home *)
  le_write : bool;  (* end *)
  le_misses : int;  (* end: remote + DRAM misses during the op *)
  le_busy : int;  (* end: busy-cycle delta, for ownership billing *)
}

type shardlog = {
  chip_of : int -> int;
  chip_ops : int array;  (* completed-op counts, one slot per chip *)
  logs : lentry list array;  (* per chip, newest first *)
  nlog : int array;  (* per-chip lengths (and the next le_seq) *)
}

type t = {
  engine_ : Engine.t;
  policy_ : Policy.t;
  table_ : Object_table.t;
  clustering_ : Clustering.t;
  ownership_ : Ownership.t;
  rebalancer_ : Rebalancer.t;
  stats_ : stats;
  shard_ : shardlog option;  (* Some iff the engine is sharded *)
}

(* Forward declaration: [apply_window] is defined after the helpers it
   uses; [create] registers it as the barrier hook through this cell. *)
let apply_window_ref = ref (fun (_ : t) ~wstart:(_ : int) ~wend:(_ : int) -> ())

let create ?(policy = Policy.default) engine () =
  (match Policy.validate policy with
  | Ok () -> ()
  | Error e -> invalid_arg ("Coretime.create: " ^ e));
  let machine = Engine.machine engine in
  let cfg = Machine.cfg machine in
  let budget =
    int_of_float
      (float_of_int (Config.per_core_budget cfg) *. policy.Policy.budget_fraction)
  in
  let table_ = Object_table.create ~cores:(Config.cores cfg) ~budget_per_core:budget in
  let rebalancer_ =
    Rebalancer.create ~probe:(Engine.probe engine) policy table_ machine
  in
  let shard_ =
    if Engine.is_sharded engine then
      Some
        {
          chip_of = Config.chip_of_core cfg;
          chip_ops = Array.make cfg.Config.chips 0;
          logs = Array.make cfg.Config.chips [];
          nlog = Array.make cfg.Config.chips 0;
        }
    else None
  in
  let t =
    {
      engine_ = engine;
      policy_ = policy;
      table_;
      clustering_ = Clustering.create ();
      ownership_ = Ownership.create ();
      rebalancer_;
      stats_ = { promotions = 0; replications = 0; op_migrations = 0; ops = 0 };
      shard_;
    }
  in
  if shard_ <> None then
    Engine.on_barrier engine (fun ~wstart ~wend -> !apply_window_ref t ~wstart ~wend);
  if policy.Policy.enabled && policy.Policy.rebalance then
    Engine.every engine ~period:policy.Policy.rebalance_period (fun ~now ->
        Engine.finalize_idle engine;
        Rebalancer.step rebalancer_ ~now);
  t

let engine t = t.engine_
let policy t = t.policy_
let table t = t.table_
let clustering t = t.clustering_
let ownership t = t.ownership_
let rebalancer t = t.rebalancer_

let stats t =
  (* Sharded runs count completed ops in per-chip slots; fold them in so
     the count is exact even when a run paused mid-window. (Promotion and
     migration stats may lag the final partial window by construction.) *)
  (match t.shard_ with
  | Some sl ->
      for chip = 0 to Array.length sl.chip_ops - 1 do
        t.stats_.ops <- t.stats_.ops + sl.chip_ops.(chip);
        sl.chip_ops.(chip) <- 0
      done
  | None -> ());
  t.stats_

let register t ?pid ~base ~size ~name () =
  Object_table.register t.table_ ?pid ~base ~size ~name ()

let push_frame th frame =
  let existing =
    match th.Thread.ctx with Frames fs -> fs | _ -> []
  in
  th.Thread.ctx <- Frames (frame :: existing)

let pop_frame th =
  match th.Thread.ctx with
  | Frames (frame :: rest) ->
      th.Thread.ctx <- Frames rest;
      frame
  | _ -> invalid_arg "Coretime.ct_end: no operation in progress for this thread"

let parent_obj th =
  match th.Thread.ctx with
  | Frames ({ obj = Some o; _ } :: _) -> Some o
  | _ -> None

(* Should a hot read-only object be left for the hardware to replicate
   instead of being packed onto one home core? (Section 6.2 tradeoff.) *)
let replicate_instead t (o : Object_table.obj) =
  t.policy_.Policy.replicate_read_only
  && o.Object_table.writes = 0
  && (o.Object_table.replicated
     || o.Object_table.ops_period >= t.policy_.Policy.replicate_min_ops)

let maybe_promote t (o : Object_table.obj) =
  let p = t.policy_ in
  if
    o.Object_table.home = None
    && o.Object_table.ops_total >= p.Policy.promote_min_ops
    && o.Object_table.ewma_misses > p.Policy.promote_threshold
  then
    if replicate_instead t o then begin
      o.Object_table.replicated <- true;
      t.stats_.replications <- t.stats_.replications + 1;
      let pr = Engine.probe t.engine_ in
      if Probe.active pr then
        Probe.emit pr
          (Probe.Decision
             {
               time = Api.now ();
               decision =
                 Probe.Promotion_replicated
                   {
                     obj_base = o.Object_table.base;
                     name = o.Object_table.name;
                     seq = o.Object_table.seq;
                     ops_period = o.Object_table.ops_period;
                     min_ops = t.policy_.Policy.replicate_min_ops;
                   };
             })
    end
    else begin
      let used =
        Array.init
          (Engine.cores t.engine_)
          (fun c -> Object_table.used t.table_ c)
      in
      let clustered =
        if p.Policy.clustering then
          Clustering.preferred_core t.clustering_ t.table_
            ~min_coaccess:p.Policy.cluster_min_coaccess o
        else None
      in
      let core =
        match clustered with
        | Some _ as c -> c
        | None ->
            (* the promotion counter as nonce: successive Random_fit
               placements land on different cores, deterministically *)
            Cache_packing.place_one ~nonce:t.stats_.promotions
              ~placement:p.Policy.placement
              ~budget:(Object_table.budget t.table_)
              ~used ~bytes:o.Object_table.size ()
      in
      match core with
      | Some core ->
          Object_table.assign t.table_ o core;
          t.stats_.promotions <- t.stats_.promotions + 1;
          let pr = Engine.probe t.engine_ in
          if Probe.active pr then
            Probe.emit pr
              (Probe.Decision
                 {
                   time = Api.now ();
                   decision =
                     Probe.Promoted
                       {
                         obj_base = o.Object_table.base;
                         name = o.Object_table.name;
                         seq = o.Object_table.seq;
                         assigns = o.Object_table.assigns;
                         core;
                         placement =
                           (match p.Policy.placement with
                           | Policy.First_fit -> "first-fit"
                           | Policy.Least_loaded -> "least-loaded"
                           | Policy.Random_fit _ -> "random-fit");
                         clustered = clustered <> None;
                         ewma_misses = o.Object_table.ewma_misses;
                         threshold = p.Policy.promote_threshold;
                         ops_total = o.Object_table.ops_total;
                         min_ops = p.Policy.promote_min_ops;
                         bytes = o.Object_table.size;
                         budget = Object_table.budget t.table_;
                         used_after = Object_table.used t.table_ core;
                         fitting_cores =
                           Cache_packing.count_fits
                             ~budget:(Object_table.budget t.table_)
                             ~used ~bytes:o.Object_table.size;
                       };
                 })
      | None -> ()  (* no cache has space: hardware keeps managing it *)
    end

(* Publish operation boundaries so the analysis layer can check nesting
   discipline and home-core affinity (no-op without subscribers). *)
let emit_op_requested t th ~addr =
  let p = Engine.probe t.engine_ in
  if Probe.active p then
    Probe.emit p
      (Probe.Op_requested
         { time = Api.now (); core = th.Thread.core; tid = th.Thread.id; addr })

let emit_op_started t th ~addr ~home =
  let p = Engine.probe t.engine_ in
  if Probe.active p then
    Probe.emit p
      (Probe.Op_started
         {
           time = Api.now ();
           core = th.Thread.core;
           tid = th.Thread.id;
           addr;
           home;
         })

let emit_op_ended t th =
  let p = Engine.probe t.engine_ in
  if Probe.active p then
    Probe.emit p
      (Probe.Op_ended
         { time = Api.now (); core = th.Thread.core; tid = th.Thread.id })

(* Append a boundary entry to the executing chip's log (sharded only). *)
let log_entry sl ~core e =
  let chip = sl.chip_of core in
  sl.logs.(chip) <- e :: sl.logs.(chip);
  sl.nlog.(chip) <- sl.nlog.(chip) + 1

let ct_start t ?(write = false) addr =
  let th = Api.self () in
  emit_op_requested t th ~addr;
  if not t.policy_.Policy.enabled then begin
    push_frame th
      {
        obj = None;
        write;
        migrated_from = None;
        snap_remote = 0;
        snap_dram = 0;
        snap_busy = 0;
      };
    emit_op_started t th ~addr ~home:None
  end
  else begin
    Api.compute t.policy_.Policy.ct_overhead;
    let obj = Object_table.find t.table_ addr in
    let parent = parent_obj th in
    (match t.shard_ with
    | None ->
        (match (obj, parent) with
        | Some o, Some p ->
            Clustering.note_coaccess t.clustering_ o.Object_table.base
              p.Object_table.base
        | _ -> ());
        (match obj with Some o -> maybe_promote t o | None -> ())
    | Some _ -> ()  (* deferred: applied at the window barrier *));
    (* Read the home once: migrating yields, and the rebalancer may move
       the object meanwhile — the operation still runs where we decided. *)
    let home_target =
      match obj with Some o -> o.Object_table.home | None -> None
    in
    let migrated_from =
      match home_target with
      | Some home when home <> th.Thread.core ->
          let from = th.Thread.core in
          (match t.shard_ with
          | None -> t.stats_.op_migrations <- t.stats_.op_migrations + 1
          | Some _ -> ());
          if t.policy_.Policy.op_shipping then Api.ship_to home
          else Api.migrate_to home;
          Some from
      | _ -> None
    in
    let c = Machine.counters (Engine.machine t.engine_) th.Thread.core in
    push_frame th
      {
        obj;
        write;
        migrated_from;
        snap_remote = c.Counters.remote_hits;
        snap_dram = c.Counters.dram_loads;
        snap_busy = c.Counters.busy_cycles;
      };
    (match t.shard_ with
    | Some sl ->
        (* Logged after any shipping, on the chip where the op runs. *)
        let chip = sl.chip_of th.Thread.core in
        log_entry sl ~core:th.Thread.core
          {
            le_start = true;
            le_time = Api.now ();
            le_chip = chip;
            le_seq = sl.nlog.(chip);
            le_obj = obj;
            le_parent = parent;
            le_migrated = migrated_from <> None;
            le_write = false;
            le_misses = 0;
            le_busy = 0;
          }
    | None -> ());
    emit_op_started t th ~addr ~home:home_target
  end

let ct_end t =
  let th = Api.self () in
  let frame = pop_frame th in
  emit_op_ended t th;
  let machine = Engine.machine t.engine_ in
  let c = Machine.counters machine th.Thread.core in
  c.Counters.ops_completed <- c.Counters.ops_completed + 1;
  (match t.shard_ with
  | None -> t.stats_.ops <- t.stats_.ops + 1
  | Some sl ->
      let chip = sl.chip_of th.Thread.core in
      sl.chip_ops.(chip) <- sl.chip_ops.(chip) + 1);
  if t.policy_.Policy.enabled then begin
    (match (frame.obj, t.shard_) with
    | Some o, None ->
        let misses =
          c.Counters.remote_hits - frame.snap_remote
          + (c.Counters.dram_loads - frame.snap_dram)
        in
        let alpha = t.policy_.Policy.ewma_alpha in
        o.Object_table.ewma_misses <-
          (alpha *. float_of_int misses)
          +. ((1.0 -. alpha) *. o.Object_table.ewma_misses);
        (* through the table so the monitor's active-set index sees it *)
        Object_table.note_op t.table_ o;
        if frame.write then begin
          o.Object_table.writes <- o.Object_table.writes + 1;
          (* a written object is no longer a replication candidate *)
          o.Object_table.replicated <- false
        end;
        Ownership.charge t.ownership_ ~pid:o.Object_table.owner_pid
          ~cycles:(c.Counters.busy_cycles - frame.snap_busy)
    | Some o, Some sl ->
        let chip = sl.chip_of th.Thread.core in
        log_entry sl ~core:th.Thread.core
          {
            le_start = false;
            le_time = Api.now ();
            le_chip = chip;
            le_seq = sl.nlog.(chip);
            le_obj = Some o;
            le_parent = None;
            le_migrated = false;
            le_write = frame.write;
            le_misses =
              c.Counters.remote_hits - frame.snap_remote
              + (c.Counters.dram_loads - frame.snap_dram);
            le_busy = c.Counters.busy_cycles - frame.snap_busy;
          }
    | None, _ -> ());
    match frame.migrated_from with
    | Some home_core when t.policy_.Policy.migrate_back ->
        if t.policy_.Policy.op_shipping then Api.ship_to home_core
        else Api.migrate_to home_core
    | Some _ | None -> ()
  end

(* The barrier hook: merge every chip's log into one total order —
   (time, chip, seq), independent of how chips were grouped onto
   domains — and apply the deferred mutations serially. Runs in the
   barrier's serial phase, before the facade's control events (so the
   rebalancer always sees fully merged state). *)
let apply_entry t e =
  if e.le_start then begin
    (match (e.le_obj, e.le_parent) with
    | Some o, Some p ->
        Clustering.note_coaccess t.clustering_ o.Object_table.base
          p.Object_table.base
    | _ -> ());
    (match e.le_obj with Some o -> maybe_promote t o | None -> ());
    if e.le_migrated then t.stats_.op_migrations <- t.stats_.op_migrations + 1
  end
  else
    match e.le_obj with
    | Some o ->
        let alpha = t.policy_.Policy.ewma_alpha in
        o.Object_table.ewma_misses <-
          (alpha *. float_of_int e.le_misses)
          +. ((1.0 -. alpha) *. o.Object_table.ewma_misses);
        Object_table.note_op t.table_ o;
        if e.le_write then begin
          o.Object_table.writes <- o.Object_table.writes + 1;
          o.Object_table.replicated <- false
        end;
        Ownership.charge t.ownership_ ~pid:o.Object_table.owner_pid
          ~cycles:e.le_busy
    | None -> ()

let compare_entries a b =
  if a.le_time <> b.le_time then compare a.le_time b.le_time
  else if a.le_chip <> b.le_chip then compare a.le_chip b.le_chip
  else compare a.le_seq b.le_seq

let apply_window t ~wstart:_ ~wend:_ =
  match t.shard_ with
  | None -> ()
  | Some sl ->
      let nchips = Array.length sl.chip_ops in
      for chip = 0 to nchips - 1 do
        t.stats_.ops <- t.stats_.ops + sl.chip_ops.(chip);
        sl.chip_ops.(chip) <- 0
      done;
      let total = Array.fold_left ( + ) 0 sl.nlog in
      if total > 0 then begin
        let scratch =
          Array.make total
            {
              le_start = false;
              le_time = 0;
              le_chip = 0;
              le_seq = 0;
              le_obj = None;
              le_parent = None;
              le_migrated = false;
              le_write = false;
              le_misses = 0;
              le_busy = 0;
            }
        in
        let i = ref 0 in
        for chip = 0 to nchips - 1 do
          List.iter
            (fun e ->
              scratch.(!i) <- e;
              incr i)
            sl.logs.(chip);
          sl.logs.(chip) <- [];
          sl.nlog.(chip) <- 0
        done;
        Array.sort compare_entries scratch;
        Array.iter (apply_entry t) scratch
      end

let () = apply_window_ref := apply_window

let with_op t ?write addr f =
  ct_start t ?write addr;
  let result = f () in
  ct_end t;
  result

let assignments t =
  let cores = Engine.cores t.engine_ in
  List.filter_map
    (fun core ->
      match Object_table.assigned t.table_ ~core with
      | [] -> None
      | objs -> Some (core, objs))
    (List.init cores Fun.id)

let pp_assignments ppf t =
  List.iter
    (fun (core, objs) ->
      Format.fprintf ppf "core %2d (%7d bytes): %s@." core
        (Object_table.used t.table_ core)
        (String.concat ", "
           (List.map (fun o -> o.Object_table.name) objs)))
    (assignments t)
