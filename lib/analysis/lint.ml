(* Replace comments (nested), string literals (including [{|...|}] quoted
   strings), and char literals with spaces, preserving newlines so
   reported line numbers stay correct. A full lexer is not needed: we
   only have to avoid false matches inside prose.

   Char literals matter even though no rule matches a single character:
   ['"'] would otherwise open "string mode" and swallow code up to the
   next real quote, hiding everything in between from the rules. *)
let strip source =
  let n = String.length source in
  let out = Bytes.of_string source in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let blank_range i j =
    for k = i to min j (n - 1) do
      blank k
    done
  in
  let is_quoted_id_char = function 'a' .. 'z' | '_' -> true | _ -> false in
  let rec code i =
    if i >= n then ()
    else if i + 1 < n && source.[i] = '(' && source.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      comment (i + 2) 1
    end
    else if source.[i] = '"' then begin
      blank i;
      string (i + 1)
    end
    else if
      source.[i] = '\''
      && (i = 0 || not (is_ident_char source.[i - 1]))
      && i + 2 < n
    then begin
      (* ['x'] / ['\n'] / ['\123'] / ['\xFF'] — but not type variables
         (['a]) or primed identifiers ([x']) *)
      if source.[i + 1] <> '\\' && source.[i + 2] = '\'' then begin
        blank_range i (i + 2);
        code (i + 3)
      end
      else if source.[i + 1] = '\\' then begin
        match String.index_from_opt source (i + 2) '\'' with
        | Some close when close - i <= 6 ->
            blank_range i close;
            code (close + 1)
        | _ -> code (i + 1)
      end
      else code (i + 1)
    end
    else if source.[i] = '{' then begin
      (* quoted string literal [{|...|}] or [{id|...|id}] *)
      let rec ident_end j =
        if j < n && is_quoted_id_char source.[j] then ident_end (j + 1) else j
      in
      let j = ident_end (i + 1) in
      if j < n && source.[j] = '|' then begin
        let delim = String.sub source (i + 1) (j - i - 1) in
        blank_range i j;
        quoted delim (j + 1)
      end
      else code (i + 1)
    end
    else code (i + 1)
  and comment i depth =
    if i >= n then ()
    else if i + 1 < n && source.[i] = '(' && source.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      comment (i + 2) (depth + 1)
    end
    else if i + 1 < n && source.[i] = '*' && source.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then code (i + 2) else comment (i + 2) (depth - 1)
    end
    else begin
      blank i;
      comment (i + 1) depth
    end
  and string i =
    if i >= n then ()
    else if source.[i] = '\\' && i + 1 < n then begin
      blank i;
      blank (i + 1);
      string (i + 2)
    end
    else if source.[i] = '"' then begin
      blank i;
      code (i + 1)
    end
    else begin
      blank i;
      string (i + 1)
    end
  and quoted delim i =
    if i >= n then ()
    else if
      source.[i] = '|'
      && i + String.length delim + 1 < n
      && String.sub source (i + 1) (String.length delim) = delim
      && source.[i + 1 + String.length delim] = '}'
    then begin
      let close = i + 1 + String.length delim in
      blank_range i close;
      code (close + 1)
    end
    else begin
      blank i;
      quoted delim (i + 1)
    end
  and is_ident_char = function
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> true
    | _ -> false
  in
  code 0;
  Bytes.to_string out

let is_ident_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* [ignore (Api.lock ...)] possibly with extra spaces. *)
let ignored_result_re line callee =
  let n = String.length line in
  let rec skip_spaces i = if i < n && line.[i] = ' ' then skip_spaces (i + 1) else i in
  let rec go i =
    match String.index_from_opt line i 'i' with
    | None -> false
    | Some i ->
        if
          i + 6 <= n
          && String.sub line i 6 = "ignore"
          && (i = 0 || not (is_ident_char line.[i - 1]))
        then begin
          let j = skip_spaces (i + 6) in
          if j < n && line.[j] = '(' then
            let k = skip_spaces (j + 1) in
            let m = String.length callee in
            if k + m <= n && String.sub line k m = callee then true
            else go (i + 1)
          else go (i + 1)
        end
        else go (i + 1)
  in
  go 0

let mk ~path ~lineno ~code message =
  Diagnostic.make ~checker:"lint" ~code ~subject:path
    (Printf.sprintf "%s:%d: %s" path lineno message)

(* The banned-pattern rules that used to live here as token matches —
   obs-effect, obj-magic, raw-mutex/raw-domain — moved to o2staticcheck's
   typedtree passes, which see resolved paths instead of source text.
   What remains below is exactly what needs the raw source: surface idiom
   (ignored-result) and file layout (missing-mli). *)

let scan_string ~path contents =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let lines = String.split_on_char '\n' (strip contents) in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      List.iter
        (fun callee ->
          if ignored_result_re line callee then
            add
              (mk ~path ~lineno ~code:"ignored-result"
                 (Printf.sprintf
                    "ignore (%s ...): this returns unit; the ignore hides \
                     nothing and suggests a discarded status"
                    callee)))
        [ "Api.lock"; "Api.unlock"; "Engine.run" ])
    lines;
  List.rev !diags

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec walk dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path acc else path :: acc)
        acc entries
  | exception Sys_error _ -> acc

let scan_tree ~root =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let scan_dir ~mli_rule dir =
    if Sys.file_exists dir && Sys.is_directory dir then begin
      let files = List.rev (walk dir []) in
      List.iter
        (fun path ->
          if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
          then
            match read_file path with
            | contents -> List.iter add (scan_string ~path contents)
            | exception Sys_error e ->
                add
                  (Diagnostic.make ~checker:"lint" ~code:"unreadable"
                     ~subject:path
                     (Printf.sprintf "%s: cannot read: %s" path e)))
        files;
      if mli_rule then
        List.iter
          (fun path ->
            if
              Filename.check_suffix path ".ml"
              && (not (Filename.check_suffix path "_intf.ml"))
              && not (List.mem (path ^ "i") files)
            then
              add
                (Diagnostic.make ~checker:"lint" ~code:"missing-mli"
                   ~subject:path
                   (Printf.sprintf
                      "%s: library module without an interface file (.mli)"
                      path)))
          files
    end
  in
  scan_dir ~mli_rule:true (Filename.concat root "lib");
  scan_dir ~mli_rule:false (Filename.concat root "examples");
  List.rev !diags
