(* Replace comments (nested) and string literals with spaces, preserving
   newlines so reported line numbers stay correct. A full lexer is not
   needed: we only have to avoid false matches inside prose. *)
let strip source =
  let n = String.length source in
  let out = Bytes.of_string source in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let rec code i =
    if i >= n then ()
    else if i + 1 < n && source.[i] = '(' && source.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      comment (i + 2) 1
    end
    else if source.[i] = '"' then begin
      blank i;
      string (i + 1)
    end
    else code (i + 1)
  and comment i depth =
    if i >= n then ()
    else if i + 1 < n && source.[i] = '(' && source.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      comment (i + 2) (depth + 1)
    end
    else if i + 1 < n && source.[i] = '*' && source.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then code (i + 2) else comment (i + 2) (depth - 1)
    end
    else begin
      blank i;
      comment (i + 1) depth
    end
  and string i =
    if i >= n then ()
    else if source.[i] = '\\' && i + 1 < n then begin
      blank i;
      blank (i + 1);
      string (i + 2)
    end
    else if source.[i] = '"' then begin
      blank i;
      code (i + 1)
    end
    else begin
      blank i;
      string (i + 1)
    end
  in
  code 0;
  Bytes.to_string out

let is_ident_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* Occurrences of [pat] in [line] that start at an identifier boundary,
   so e.g. "My_Mutex." does not match "Mutex.". *)
let contains_token line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then false
    else if
      String.sub line i m = pat && (i = 0 || not (is_ident_char line.[i - 1]))
    then true
    else go (i + 1)
  in
  go 0

(* [ignore (Api.lock ...)] possibly with extra spaces. *)
let ignored_result_re line callee =
  let n = String.length line in
  let rec skip_spaces i = if i < n && line.[i] = ' ' then skip_spaces (i + 1) else i in
  let rec go i =
    match String.index_from_opt line i 'i' with
    | None -> false
    | Some i ->
        if
          i + 6 <= n
          && String.sub line i 6 = "ignore"
          && (i = 0 || not (is_ident_char line.[i - 1]))
        then begin
          let j = skip_spaces (i + 6) in
          if j < n && line.[j] = '(' then
            let k = skip_spaces (j + 1) in
            let m = String.length callee in
            if k + m <= n && String.sub line k m = callee then true
            else go (i + 1)
          else go (i + 1)
        end
        else go (i + 1)
  in
  go 0

let mk ~path ~lineno ~code message =
  Diagnostic.make ~checker:"lint" ~code ~subject:path
    (Printf.sprintf "%s:%d: %s" path lineno message)

(* The one module allowed to name the real concurrency primitives: the
   domain pool wraps them for everyone else (experiment sweeps go through
   Domain_pool.map, never Domain.spawn). This used to exempt all of
   lib/runtime/ wholesale; the allowlist is deliberately a single file so
   a stray Domain.spawn in the engine is caught too. *)
let raw_primitive_allowlist = [ "lib/runtime/domain_pool.ml" ]

let path_allows_raw path =
  List.exists
    (fun allowed ->
      path = allowed || Filename.check_suffix path ("/" ^ allowed))
    raw_primitive_allowlist

(* lib/obs must only observe: its listeners run synchronously inside
   Probe.emit, on the simulation's own stack, so performing an effect
   through Api or driving the engine (spawn/run/at/every/finalize_idle)
   from there would corrupt the run it is recording. Reading engine state
   (Engine.probe, Engine.machine, Engine.now, ...) is fine. *)
let obs_banned_tokens =
  [
    "Api.";
    "Engine.spawn";
    "Engine.run";
    "Engine.at";
    "Engine.every";
    "Engine.finalize_idle";
    "Probe.emit";
  ]

let path_is_obs path =
  let norm = String.concat "/" (String.split_on_char '\\' path) in
  let rec has_sub s sub i =
    let n = String.length s and m = String.length sub in
    i + m <= n && (String.sub s i m = sub || has_sub s sub (i + 1))
  in
  has_sub norm "lib/obs/" 0

let scan_string ~path ?allow_raw_primitives contents =
  let allow_raw =
    match allow_raw_primitives with
    | Some b -> b
    | None -> path_allows_raw path
  in
  let obs_purity = path_is_obs path in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let lines = String.split_on_char '\n' (strip contents) in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if obs_purity then
        List.iter
          (fun tok ->
            if contains_token line tok then
              add
                (mk ~path ~lineno ~code:"obs-effect"
                   (Printf.sprintf
                      "%s in lib/obs: observers must not perform effects or \
                       drive the engine (they run inside Probe.emit)"
                      tok)))
          obs_banned_tokens;
      if contains_token line "Obj.magic" then
        add
          (mk ~path ~lineno ~code:"obj-magic"
             "Obj.magic is banned (defeats the type system)");
      if (not allow_raw) && contains_token line "Mutex." then
        add
          (mk ~path ~lineno ~code:"raw-mutex"
             "raw Mutex use outside lib/runtime/ (use the engine's Spinlock \
              through Api.lock/unlock)");
      if (not allow_raw) && contains_token line "Domain." then
        add
          (mk ~path ~lineno ~code:"raw-domain"
             "raw Domain use outside lib/runtime/ (spawn simulated threads \
              with Engine.spawn)");
      List.iter
        (fun callee ->
          if ignored_result_re line callee then
            add
              (mk ~path ~lineno ~code:"ignored-result"
                 (Printf.sprintf
                    "ignore (%s ...): this returns unit; the ignore hides \
                     nothing and suggests a discarded status"
                    callee)))
        [ "Api.lock"; "Api.unlock"; "Engine.run" ])
    lines;
  List.rev !diags

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec walk dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = Filename.concat dir entry in
          if Sys.is_directory path then walk path acc else path :: acc)
        acc entries
  | exception Sys_error _ -> acc

let scan_tree ~root =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let scan_dir ~mli_rule dir =
    if Sys.file_exists dir && Sys.is_directory dir then begin
      let files = List.rev (walk dir []) in
      List.iter
        (fun path ->
          if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
          then
            match read_file path with
            | contents -> List.iter add (scan_string ~path contents)
            | exception Sys_error e ->
                add
                  (Diagnostic.make ~checker:"lint" ~code:"unreadable"
                     ~subject:path
                     (Printf.sprintf "%s: cannot read: %s" path e)))
        files;
      if mli_rule then
        List.iter
          (fun path ->
            if
              Filename.check_suffix path ".ml"
              && (not (Filename.check_suffix path "_intf.ml"))
              && not (List.mem (path ^ "i") files)
            then
              add
                (Diagnostic.make ~checker:"lint" ~code:"missing-mli"
                   ~subject:path
                   (Printf.sprintf
                      "%s: library module without an interface file (.mli)"
                      path)))
          files
    end
  in
  scan_dir ~mli_rule:true (Filename.concat root "lib");
  scan_dir ~mli_rule:false (Filename.concat root "examples");
  List.rev !diags
