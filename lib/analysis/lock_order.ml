open O2_runtime

module IntSet = Set.Make (Int)

type t = {
  report : Report.t;
  (* lock addr -> locks acquired while it was held (order edges) *)
  succ : (int, IntSet.t ref) Hashtbl.t;
  names : (int, string) Hashtbl.t;
  owners : (int, int) Hashtbl.t;  (* lock addr -> owning tid *)
  held : (int, Probe.lock_info list) Hashtbl.t;  (* tid -> stack *)
  mutable edge_count : int;
}

let create ~report () =
  {
    report;
    succ = Hashtbl.create 32;
    names = Hashtbl.create 32;
    owners = Hashtbl.create 32;
    held = Hashtbl.create 64;
    edge_count = 0;
  }

let succ_of t a =
  match Hashtbl.find_opt t.succ a with
  | Some s -> s
  | None ->
      let s = ref IntSet.empty in
      Hashtbl.add t.succ a s;
      s

let name t a =
  match Hashtbl.find_opt t.names a with
  | Some n -> n
  | None -> Printf.sprintf "lock@%#x" a

(* Is [target] reachable from [from] in the order graph? The graph holds
   one node per lock ever observed — small — so plain DFS suffices. *)
let reachable t ~from ~target =
  let visited = Hashtbl.create 16 in
  let rec go a =
    a = target
    || (not (Hashtbl.mem visited a))
       && begin
            Hashtbl.add visited a ();
            match Hashtbl.find_opt t.succ a with
            | None -> false
            | Some s -> IntSet.exists go !s
          end
  in
  go from

let add_edge t ~tid ~time ~held_addr ~acquired =
  let s = succ_of t held_addr in
  if not (IntSet.mem acquired !s) then begin
    (* Before inserting held->acquired, a path acquired ~> held means some
       other chain takes them in the opposite order: a potential cycle. *)
    if reachable t ~from:acquired ~target:held_addr then
      Report.add t.report
        (Diagnostic.make ~checker:"lock-order" ~code:"deadlock-cycle" ~time
           ~threads:[ tid ]
           ~subject:
             (Printf.sprintf "%s<->%s"
                (name t (min held_addr acquired))
                (name t (max held_addr acquired)))
           (Printf.sprintf
              "potential deadlock: thread %d acquires %s while holding %s, \
               but the opposite order %s -> %s was also observed"
              tid (name t acquired) (name t held_addr) (name t acquired)
              (name t held_addr)));
    s := IntSet.add acquired !s;
    t.edge_count <- t.edge_count + 1
  end

let on_event t ev =
  match ev with
  | Probe.Lock_acquired { time; tid; lock; _ } ->
      Hashtbl.replace t.names lock.Probe.lock_addr lock.Probe.lock_name;
      (match Hashtbl.find_opt t.owners lock.Probe.lock_addr with
      | Some prev ->
          (* The engine hands a lock off before the waiter's grant runs, so
             an owned lock being re-granted would mean the hand-off logic
             double-granted it. *)
          Report.add t.report
            (Diagnostic.make ~checker:"lock-order" ~code:"double-grant" ~time
               ~threads:[ prev; tid ] ~addr:lock.Probe.lock_addr
               ~subject:lock.Probe.lock_name
               (Printf.sprintf
                  "%s granted to thread %d while still owned by thread %d"
                  lock.Probe.lock_name tid prev))
      | None -> ());
      Hashtbl.replace t.owners lock.Probe.lock_addr tid;
      let held = Option.value ~default:[] (Hashtbl.find_opt t.held tid) in
      List.iter
        (fun (h : Probe.lock_info) ->
          if h.Probe.lock_addr <> lock.Probe.lock_addr then
            add_edge t ~tid ~time ~held_addr:h.Probe.lock_addr
              ~acquired:lock.Probe.lock_addr)
        held;
      Hashtbl.replace t.held tid (lock :: held)
  | Probe.Lock_released { time; tid; lock; _ } ->
      (match Hashtbl.find_opt t.owners lock.Probe.lock_addr with
      | Some owner when owner <> tid ->
          Report.add t.report
            (Diagnostic.make ~checker:"lock-order" ~code:"foreign-release"
               ~time ~threads:[ owner; tid ] ~addr:lock.Probe.lock_addr
               ~subject:lock.Probe.lock_name
               (Printf.sprintf "%s released by thread %d but owned by %d"
                  lock.Probe.lock_name tid owner))
      | Some _ | None -> ());
      Hashtbl.remove t.owners lock.Probe.lock_addr;
      let held = Option.value ~default:[] (Hashtbl.find_opt t.held tid) in
      let rec drop_first = function
        | [] -> []
        | (h : Probe.lock_info) :: rest ->
            if h.Probe.lock_addr = lock.Probe.lock_addr then rest
            else h :: drop_first rest
      in
      Hashtbl.replace t.held tid (drop_first held)
  | Probe.Thread_finished { time; tid; core } -> (
      match Hashtbl.find_opt t.held tid with
      | Some ((_ :: _) as held) ->
          Report.add t.report
            (Diagnostic.make ~checker:"lock-order" ~code:"held-at-exit" ~time
               ~cores:[ core ] ~threads:[ tid ]
               ~subject:(Printf.sprintf "thread %d" tid)
               (Printf.sprintf "thread %d finished still holding %s" tid
                  (String.concat ", "
                     (List.map (fun (l : Probe.lock_info) -> l.Probe.lock_name)
                        held))));
          Hashtbl.remove t.held tid
      | Some [] | None -> ())
  | Probe.Mem _ | Probe.Thread_spawned _ | Probe.Thread_moved _
  | Probe.Op_requested _ | Probe.Op_started _ | Probe.Op_ended _
  | Probe.Rebalanced _ | Probe.Decision _ ->
      ()

let finish _t = ()
let edges t = t.edge_count
