type t = {
  limit : int;
  seen : (string, unit) Hashtbl.t;
  mutable diags : Diagnostic.t list;  (* reverse insertion order *)
  mutable count : int;
  mutable errors : int;
  mutable dropped : int;
}

let create ?(limit = 200) () =
  {
    limit;
    seen = Hashtbl.create 64;
    diags = [];
    count = 0;
    errors = 0;
    dropped = 0;
  }

let add t d =
  let k = Diagnostic.key d in
  if not (Hashtbl.mem t.seen k) then begin
    Hashtbl.add t.seen k ();
    if t.count >= t.limit then t.dropped <- t.dropped + 1
    else begin
      t.diags <- d :: t.diags;
      t.count <- t.count + 1;
      if Diagnostic.is_error d then t.errors <- t.errors + 1
    end
  end

let diagnostics t = List.rev t.diags
let count t = t.count
let errors t = t.errors
let dropped t = t.dropped
let is_clean t = t.count = 0 && t.dropped = 0

let pp ppf t =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) (diagnostics t);
  if t.dropped > 0 then
    Format.fprintf ppf "... and %d further distinct diagnostics dropped@."
      t.dropped;
  if is_clean t then Format.fprintf ppf "no diagnostics@."
  else Format.fprintf ppf "%d diagnostics (%d errors)@." t.count t.errors
