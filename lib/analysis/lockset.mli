(** Eraser-style lockset data-race detection over the simulated machine
    (Savage et al., "Eraser: a dynamic data race detector", adapted to the
    O2 runtime).

    The checker consumes {!O2_runtime.Probe} events. For every simulated
    cache line it keeps a shadow state — virgin, exclusive to the first
    accessing thread, or shared — and the {e candidate lockset}: the
    intersection of the locks every thread held while touching the line
    after it became shared. A line that has been written and whose
    candidate set becomes empty is reported as a data race, attributed to
    the object containing it (via the address resolver) and to the two
    cores/threads whose accesses exposed it.

    Two O2-specific refinements:

    - lock words never appear here (the engine reports them as lock
      events, not memory traffic), so lock bouncing is not misreported;
    - an annotated operation running on its object's home core counts as
      holding a {e virtual per-object home lock}: CoreTime serialises
      operations on an object by migrating them all to one cooperative
      core, which is a synchronisation discipline Eraser's ordinary rules
      cannot see. Accesses that bypass the annotation (or run away from
      home) do not hold the virtual lock, so mixed disciplines still
      intersect to empty and are flagged. *)

type t

val create :
  ?granularity:int ->
  report:Report.t ->
  name_of:(int -> string option) ->
  unit ->
  t
(** [granularity] (bytes, default 64) sets the shadow-cell width; it must
    be a power of two. [name_of addr] resolves an address to the name of
    the object containing it, for attribution. *)

val on_event : t -> O2_runtime.Probe.event -> unit

val cells_tracked : t -> int
(** Shadow cells allocated so far (for tests and capacity reporting). *)

val races_found : t -> int
