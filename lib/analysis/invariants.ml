open O2_runtime
module Object_table = Coretime.Object_table

type frame = { o_addr : int; mutable pinned : int option }

type t = {
  report : Report.t;
  name_of : int -> string option;
  table : Object_table.t option;
  cores : int option;
  migrate_back : bool;
  frames : (int, frame list) Hashtbl.t;  (* tid -> open ops, innermost first *)
  depth_flagged : (int, unit) Hashtbl.t;
  mutable audits : int;
}

let max_reasonable_nesting = 32

let create ~report ~name_of ?table ?cores ?(migrate_back = true) () =
  {
    report;
    name_of;
    table;
    cores;
    migrate_back;
    frames = Hashtbl.create 64;
    depth_flagged = Hashtbl.create 8;
    audits = 0;
  }

let subject_of t addr =
  match t.name_of addr with
  | Some n -> n
  | None -> Printf.sprintf "object %#x" addr

let audit t ?time () =
  match t.table with
  | None -> ()
  | Some table ->
      t.audits <- t.audits + 1;
      let budget = Object_table.budget table in
      (match t.cores with
      | None -> ()
      | Some cores ->
          for core = 0 to cores - 1 do
            let used = Object_table.used table core in
            if used > budget then
              Report.add t.report
                (Diagnostic.make ~checker:"invariant" ~code:"capacity" ?time
                   ~cores:[ core ]
                   ~subject:(Printf.sprintf "core %d" core)
                   (Printf.sprintf
                      "cache packing over budget on core %d: %d bytes \
                       assigned, budget %d"
                      core used budget))
          done;
          Object_table.iter table (fun o ->
              match o.Object_table.home with
              | Some h when h < 0 || h >= cores ->
                  Report.add t.report
                    (Diagnostic.make ~checker:"invariant" ~code:"home-range"
                       ?time ~addr:o.Object_table.base
                       ~subject:o.Object_table.name
                       (Printf.sprintf
                          "object %s assigned to out-of-range core %d \
                           (machine has %d cores)"
                          o.Object_table.name h cores))
              | Some _ | None -> ()));
      (match Object_table.check_accounting table with
      | Ok () -> ()
      | Error e ->
          Report.add t.report
            (Diagnostic.make ~checker:"invariant" ~code:"accounting" ?time
               ~subject:"object-table"
               ("object table byte accounting inconsistent: " ^ e)))

let on_event t ev =
  match ev with
  | Probe.Op_started { time; core; tid; addr; home } ->
      (match home with
      | Some h when h <> core ->
          Report.add t.report
            (Diagnostic.make ~checker:"invariant" ~code:"affinity" ~time
               ~cores:[ core; h ] ~threads:[ tid ] ~addr
               ~subject:(subject_of t addr)
               (Printf.sprintf
                  "operation on %s started on core %d but the object's home \
                   is core %d: ct_start failed to bring the operation to \
                   its object"
                  (subject_of t addr) core h))
      | Some _ | None -> ());
      let pinned = match home with Some h when h = core -> Some h | _ -> None in
      let frames =
        Option.value ~default:[] (Hashtbl.find_opt t.frames tid)
      in
      let frames = { o_addr = addr; pinned } :: frames in
      Hashtbl.replace t.frames tid frames;
      if
        List.length frames > max_reasonable_nesting
        && not (Hashtbl.mem t.depth_flagged tid)
      then begin
        Hashtbl.add t.depth_flagged tid ();
        Report.add t.report
          (Diagnostic.make ~checker:"invariant" ~code:"nesting-depth" ~time
             ~severity:Diagnostic.Warning ~threads:[ tid ]
             ~subject:(Printf.sprintf "thread %d" tid)
             (Printf.sprintf
                "thread %d has %d ct_start frames open: a ct_end is \
                 probably being skipped in a loop"
                tid (List.length frames)))
      end
  | Probe.Op_ended { time; core; tid } -> (
      match Option.value ~default:[] (Hashtbl.find_opt t.frames tid) with
      | [] ->
          Report.add t.report
            (Diagnostic.make ~checker:"invariant" ~code:"unmatched-end" ~time
               ~cores:[ core ] ~threads:[ tid ]
               ~subject:(Printf.sprintf "thread %d" tid)
               (Printf.sprintf "thread %d called ct_end with no operation open"
                  tid))
      | _inner :: rest ->
          (* Without migrate-back the thread legitimately continues on the
             inner operation's core, so the enclosing pin no longer holds
             unless the thread never left it. *)
          (match rest with
          | outer :: _ when not t.migrate_back ->
              (match outer.pinned with
              | Some h when h <> core -> outer.pinned <- None
              | Some _ | None -> ())
          | _ -> ());
          Hashtbl.replace t.frames tid rest)
  | Probe.Mem { time; core; tid; addr; _ } -> (
      match Hashtbl.find_opt t.frames tid with
      | Some ({ pinned = Some h; o_addr } :: _) when h <> core ->
          Report.add t.report
            (Diagnostic.make ~checker:"invariant" ~code:"affinity" ~time
               ~cores:[ core; h ] ~threads:[ tid ] ~addr
               ~subject:(subject_of t o_addr)
               (Printf.sprintf
                  "memory access at %#x by thread %d ran on core %d during \
                   an operation homed on core %d: the operation's cycles \
                   are being charged away from its object's core"
                  addr tid core h));
          (* one report per excursion, not per access *)
          (match Hashtbl.find_opt t.frames tid with
          | Some (f :: _) -> f.pinned <- None
          | _ -> ())
      | _ -> ())
  | Probe.Thread_finished { time; core; tid } -> (
      match Hashtbl.find_opt t.frames tid with
      | Some ((_ :: _) as frames) ->
          Report.add t.report
            (Diagnostic.make ~checker:"invariant" ~code:"open-op" ~time
               ~cores:[ core ] ~threads:[ tid ]
               ~subject:(Printf.sprintf "thread %d" tid)
               (Printf.sprintf
                  "thread %d finished with %d operation(s) still open \
                   (ct_start without ct_end): %s"
                  tid (List.length frames)
                  (String.concat ", "
                     (List.map (fun f -> subject_of t f.o_addr) frames))));
          Hashtbl.remove t.frames tid
      | Some [] | None -> ())
  | Probe.Rebalanced { time; _ } -> audit t ~time ()
  | Probe.Lock_acquired _ | Probe.Lock_released _ | Probe.Thread_spawned _
  | Probe.Thread_moved _ | Probe.Op_requested _ | Probe.Decision _ ->
      ()

let finish t = audit t ()

let audits_run t = t.audits
