(** Source lint: the few checks that genuinely need raw source text.
    Comments, string literals (including [{|...|}] quoted strings), and
    char literals are stripped before matching, so prose mentioning a
    banned construct is not flagged.

    Rules (each a diagnostic [code]):

    - [ignored-result] — [ignore (Api.lock ...)], [ignore (Api.unlock ...)]
      or [ignore (Engine.run ...)]: these return [unit]; wrapping them in
      [ignore] suggests the author expected (and discarded) a result such
      as an acquisition status.
    - [missing-mli] — a [lib/] module without an interface file
      ([*_intf.ml] module-type-only files are exempt).

    The banned-pattern rules that used to live here ([obs-effect],
    [obj-magic], [raw-mutex]/[raw-domain]) are now typedtree passes in
    {!O2_staticcheck}: they match resolved paths from the compiler's own
    .cmt output, so aliases and [open]s cannot evade them and prose
    cannot trip them. *)

val strip : string -> string
(** Blank out comments, strings, and char literals, preserving newlines
    and character positions. Exposed for tests. *)

val scan_string : path:string -> string -> Diagnostic.t list
(** Scan one file's contents. [path] is used for reporting. Does not
    apply [missing-mli] (a directory-level rule). *)

val scan_tree : root:string -> Diagnostic.t list
(** Scan [root/lib] and [root/examples] recursively: every [.ml]/[.mli]
    through {!scan_string}, plus the [missing-mli] rule for [lib/]
    modules. Unreadable paths are reported as diagnostics rather than
    raising. *)
