(** Source lint: scans the repository's OCaml sources for patterns banned
    in this codebase. Comments and string literals are stripped before
    matching, so prose mentioning a banned construct is not flagged.

    Rules (each a diagnostic [code]):

    - [obj-magic] — [Obj.magic] defeats the type system; never needed in
      a simulator.
    - [raw-mutex] / [raw-domain] — [Mutex]/[Domain] primitives anywhere
      except the explicit allowlist (only [lib/runtime/domain_pool.ml],
      the module that wraps them): all simulated concurrency must flow
      through the deterministic engine, and all host parallelism through
      the domain pool, or runs stop being reproducible.
    - [ignored-result] — [ignore (Api.lock ...)], [ignore (Api.unlock ...)]
      or [ignore (Engine.run ...)]: these return [unit]; wrapping them in
      [ignore] suggests the author expected (and discarded) a result such
      as an acquisition status.
    - [missing-mli] — a [lib/] module without an interface file
      ([*_intf.ml] module-type-only files are exempt).
    - [obs-effect] — [lib/obs/] sources naming [Api.] or an
      engine-driving call ([Engine.spawn]/[run]/[at]/[every]/
      [finalize_idle]) or [Probe.emit]: observability listeners run
      synchronously inside [Probe.emit] on the simulation's stack, so
      they must read state only — an effect or a recursive emit there
      would corrupt the run being recorded. *)

val scan_string : path:string -> ?allow_raw_primitives:bool -> string ->
  Diagnostic.t list
(** Scan one file's contents. [path] is used for reporting and for the
    raw-primitive allowlist ([allow_raw_primitives] overrides it in
    tests). Does not apply [missing-mli] (a directory-level rule). *)

val scan_tree : root:string -> Diagnostic.t list
(** Scan [root/lib] and [root/examples] recursively: every [.ml]/[.mli]
    through {!scan_string}, plus the [missing-mli] rule for [lib/]
    modules. Unreadable paths are reported as diagnostics rather than
    raising. *)
