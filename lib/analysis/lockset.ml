open O2_runtime

module IntSet = Set.Make (Int)

(* Shadow-cell state machine. [Exclusive] is Eraser's initialisation
   phase: the first thread may read and write freely. On the first access
   by a second thread the cell becomes [Shared] and the candidate lockset
   starts as that thread's held set, thereafter intersected on every
   access. A shared cell that has seen a write anywhere reports as soon as
   the candidate set is empty. *)
type state = Virgin | Exclusive | Shared

type cell = {
  mutable state : state;
  mutable lockset : IntSet.t;  (* candidate set; meaningful when Shared *)
  mutable wrote : bool;
  mutable last_tid : int;
  mutable last_core : int;
  mutable other_tid : int;  (* most recent access by a thread <> last_tid *)
  mutable other_core : int;
  mutable reported : bool;
}

(* Per-thread held set: real spin locks plus virtual per-object home
   locks. A count map backs the cached set so re-entrant virtual locks
   (nested ops on one object) balance correctly. *)
type held = {
  counts : (int, int) Hashtbl.t;
  mutable set : IntSet.t;
  mutable op_tokens : int option list;  (* stack, one per open op *)
}

type t = {
  shift : int;
  report : Report.t;
  name_of : int -> string option;
  cells : (int, cell) Hashtbl.t;
  held : (int, held) Hashtbl.t;  (* by thread id *)
  subjects_reported : (string, unit) Hashtbl.t;
  mutable races : int;
}

let create ?(granularity = 64) ~report ~name_of () =
  if granularity <= 0 || granularity land (granularity - 1) <> 0 then
    invalid_arg "Lockset.create: granularity must be a positive power of two";
  let shift =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 granularity 0
  in
  {
    shift;
    report;
    name_of;
    cells = Hashtbl.create 4096;
    held = Hashtbl.create 64;
    subjects_reported = Hashtbl.create 16;
    races = 0;
  }

let held_of t tid =
  match Hashtbl.find_opt t.held tid with
  | Some h -> h
  | None ->
      let h = { counts = Hashtbl.create 8; set = IntSet.empty; op_tokens = [] } in
      Hashtbl.add t.held tid h;
      h

let acquire t tid token =
  let h = held_of t tid in
  let n = Option.value ~default:0 (Hashtbl.find_opt h.counts token) in
  Hashtbl.replace h.counts token (n + 1);
  if n = 0 then h.set <- IntSet.add token h.set

let release t tid token =
  let h = held_of t tid in
  match Hashtbl.find_opt h.counts token with
  | None | Some 0 -> ()  (* engine enforces ownership; be lenient here *)
  | Some 1 ->
      Hashtbl.remove h.counts token;
      h.set <- IntSet.remove token h.set
  | Some n -> Hashtbl.replace h.counts token (n - 1)

(* Virtual home-lock token for the object at [base]: a negative number
   outside the simulated address space, so it can never collide with a
   real lock word's address. *)
let home_token base = lnot base

let cell_of t line =
  match Hashtbl.find_opt t.cells line with
  | Some c -> c
  | None ->
      let c =
        {
          state = Virgin;
          lockset = IntSet.empty;
          wrote = false;
          last_tid = -1;
          last_core = -1;
          other_tid = -1;
          other_core = -1;
          reported = false;
        }
      in
      Hashtbl.add t.cells line c;
      c

let report_race t ~line ~cell ~tid ~core ~time =
  cell.reported <- true;
  t.races <- t.races + 1;
  (* The racing access may come from the thread that also made the last
     one; the other party is then the latest access by a different
     thread (a cell only reaches Shared after two threads touched it). *)
  let other_tid, other_core =
    if cell.last_tid <> tid then (cell.last_tid, cell.last_core)
    else (cell.other_tid, cell.other_core)
  in
  let addr = line lsl t.shift in
  let subject =
    match t.name_of addr with
    | Some n -> n
    | None -> Printf.sprintf "line %#x" addr
  in
  (* One diagnostic per object keeps a racy scan from producing a report
     for each of its lines. *)
  if not (Hashtbl.mem t.subjects_reported subject) then begin
    Hashtbl.add t.subjects_reported subject ();
    Report.add t.report
      (Diagnostic.make ~checker:"lockset" ~code:"race" ~time
         ~cores:[ other_core; core ]
         ~threads:[ other_tid; tid ]
         ~addr ~subject
         (Printf.sprintf
            "data race on %s at %#x: written while shared with an empty \
             lockset; cores %d and %d (threads %d and %d) access it with no \
             common lock or home-core discipline"
            subject addr other_core core other_tid tid))
  end

let touch t ~time ~core ~tid ~store line =
  let cell = cell_of t line in
  let held = (held_of t tid).set in
  (match cell.state with
  | Virgin ->
      cell.state <- Exclusive;
      cell.wrote <- store
  | Exclusive when cell.last_tid = tid -> cell.wrote <- cell.wrote || store
  | Exclusive ->
      cell.state <- Shared;
      cell.lockset <- held;
      cell.wrote <- cell.wrote || store;
      if cell.wrote && IntSet.is_empty held && not cell.reported then
        report_race t ~line ~cell ~tid ~core ~time
  | Shared ->
      cell.lockset <- IntSet.inter cell.lockset held;
      cell.wrote <- cell.wrote || store;
      if cell.wrote && IntSet.is_empty cell.lockset && not cell.reported then
        report_race t ~line ~cell ~tid ~core ~time);
  if cell.last_tid <> tid && cell.last_tid >= 0 then begin
    cell.other_tid <- cell.last_tid;
    cell.other_core <- cell.last_core
  end;
  cell.last_tid <- tid;
  cell.last_core <- core

(* Bound the per-access work: a huge streaming access degenerates to its
   first cells rather than stalling the simulation. *)
let max_cells_per_access = 4096

let on_event t ev =
  match ev with
  | Probe.Mem { time; core; tid; kind; addr; len } ->
      let store = kind = Probe.Store in
      let first = addr asr t.shift in
      let last = (addr + max 1 len - 1) asr t.shift in
      let last = min last (first + max_cells_per_access - 1) in
      for line = first to last do
        touch t ~time ~core ~tid ~store line
      done
  | Probe.Lock_acquired { tid; lock; _ } -> acquire t tid lock.Probe.lock_addr
  | Probe.Lock_released { tid; lock; _ } -> release t tid lock.Probe.lock_addr
  | Probe.Op_started { tid; core; addr; home; _ } ->
      let h = held_of t tid in
      let token =
        match home with
        | Some hc when hc = core ->
            let tok = home_token addr in
            acquire t tid tok;
            Some tok
        | Some _ | None -> None
      in
      h.op_tokens <- token :: h.op_tokens
  | Probe.Op_ended { tid; _ } -> (
      let h = held_of t tid in
      match h.op_tokens with
      | [] -> ()  (* unmatched end is the invariant checker's finding *)
      | tok :: rest ->
          h.op_tokens <- rest;
          (match tok with Some token -> release t tid token | None -> ()))
  | Probe.Thread_finished _ | Probe.Thread_spawned _ | Probe.Thread_moved _
  | Probe.Op_requested _ | Probe.Rebalanced _ | Probe.Decision _ ->
      ()

let cells_tracked t = Hashtbl.length t.cells
let races_found t = t.races
