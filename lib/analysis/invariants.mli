(** The O2 runtime invariant checker — the properties the paper's design
    depends on (PAPER.md section 4) that the engine itself does not
    enforce:

    - {b nesting}: [ct_start]/[ct_end] frames balance per thread; a
      thread must not finish with operations still open, and runaway
      nesting depth (a [ct_end] skipped in a loop) is flagged;
    - {b home-core affinity}: an operation on an object with a home core
      executes — and therefore is charged — on that core: the
      [Op_started] event must already be at home, and every memory access
      until the matching [Op_ended] must stay there;
    - {b table consistency}: per-core packed bytes never exceed the cache
      budget, the byte accounting matches the actual assignments, and no
      entry's home core is out of range — audited after every rebalancer
      period and once more in {!finish}, so a monitor bug is caught the
      period it happens. *)

type t

val create :
  report:Report.t ->
  name_of:(int -> string option) ->
  ?table:Coretime.Object_table.t ->
  ?cores:int ->
  ?migrate_back:bool ->
  unit ->
  t
(** [table]/[cores] enable the table audits. [migrate_back] mirrors
    [Policy.migrate_back] (default [true]): when false, a thread
    legitimately stays on an inner operation's home core after the inner
    [ct_end], so the enclosing frame's affinity pin is relaxed instead of
    enforced. *)

val on_event : t -> O2_runtime.Probe.event -> unit

val finish : t -> unit
(** Final table audit. *)

val audits_run : t -> int
