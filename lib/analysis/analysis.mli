(** o2check: attach every dynamic checker to a simulation and collect the
    diagnostics.

    {[
      let ct = Coretime.create engine () in
      let check = Analysis.attach ct in
      (* ... spawn threads, Engine.run ... *)
      Analysis.finish check;
      assert (Analysis.is_clean check)
    ]}

    Attaching subscribes one dispatcher to the engine's {!O2_runtime.Probe}
    that feeds the {!Lockset} race detector, the {!Lock_order} deadlock
    checker and the {!Invariants} checker. Addresses in diagnostics are
    resolved to object names through the machine's {!O2_simcore.Memsys}
    registry. *)

type t

val attach : ?granularity:int -> ?limit:int -> Coretime.t -> t
(** Full instrumentation: race + lock-order + invariants, with object
    table audits and the policy's [migrate_back] semantics. Attach before
    spawning threads so no event is missed. *)

val attach_engine :
  ?granularity:int ->
  ?limit:int ->
  ?table:Coretime.Object_table.t ->
  ?migrate_back:bool ->
  O2_runtime.Engine.t ->
  t
(** Like {!attach} for runs without a [Coretime.t] (raw engine
    workloads); table audits run only if [table] is given. *)

val finish : t -> unit
(** Run the end-of-run audits. Idempotent; call after the last
    {!O2_runtime.Engine.run}. *)

val report : t -> Report.t
val diagnostics : t -> Diagnostic.t list
val is_clean : t -> bool

val races : t -> int
val pp : Format.formatter -> t -> unit
