(** Lock discipline checks: a global lock-order graph with cycle
    detection (potential deadlock), release-by-owner verification, and
    threads finishing while still holding locks.

    The simulated runs are deterministic, so an actual deadlock may never
    manifest on the schedule being observed — the order graph flags the
    {e potential}: if thread A ever takes [l1] then [l2] while thread B
    takes [l2] then [l1], some interleaving deadlocks, and the checker
    reports the cycle whether or not this run hit it. *)

type t

val create : report:Report.t -> unit -> t
val on_event : t -> O2_runtime.Probe.event -> unit

val finish : t -> unit
(** End-of-run sweep; currently nothing to flush (held-at-exit is
    reported per thread on its [Thread_finished] event, because a thread
    legitimately holds its locks when a bounded-horizon run stops
    mid-operation), but callers should still invoke it for symmetry with
    the other checkers. *)

val edges : t -> int
(** Distinct ordered lock pairs observed (for tests). *)
