type severity = Error | Warning

type t = {
  checker : string;
  code : string;
  severity : severity;
  message : string;
  time : int option;
  cores : int list;
  threads : int list;
  addr : int option;
  subject : string option;
}

let make ~checker ~code ?(severity = Error) ?time ?(cores = []) ?(threads = [])
    ?addr ?subject message =
  { checker; code; severity; message; time; cores; threads; addr; subject }

let is_error t = t.severity = Error

let key t =
  Printf.sprintf "%s/%s/%s/%s" t.checker t.code
    (match t.subject with Some s -> s | None -> "")
    (match t.addr with Some a -> Printf.sprintf "%#x" a | None -> "")

let pp ppf t =
  let sev = match t.severity with Error -> "error" | Warning -> "warning" in
  Format.fprintf ppf "[%s] %s/%s: %s" sev t.checker t.code t.message;
  (match t.time with
  | Some time -> Format.fprintf ppf " (at cycle %d)" time
  | None -> ());
  match t.cores with
  | [] -> ()
  | cores ->
      Format.fprintf ppf " [cores %s]"
        (String.concat "," (List.map string_of_int cores))

let to_string t = Format.asprintf "%a" pp t
