(** The sink every checker writes into: accumulates {!Diagnostic.t}s,
    deduplicates repeats of the same finding (by {!Diagnostic.key}) and
    caps the total so a systematically-broken run cannot flood memory. *)

type t

val create : ?limit:int -> unit -> t
(** [limit] (default 200) bounds {e distinct} retained diagnostics;
    further ones are counted in {!dropped} but not stored. *)

val add : t -> Diagnostic.t -> unit

val diagnostics : t -> Diagnostic.t list
(** In insertion order. *)

val count : t -> int
(** Distinct diagnostics retained. *)

val errors : t -> int
(** Retained diagnostics with severity [Error]. *)

val dropped : t -> int
(** Diagnostics discarded after [limit] was reached. *)

val is_clean : t -> bool
(** No diagnostics at all (dropped included). *)

val pp : Format.formatter -> t -> unit
(** One line per diagnostic plus a summary tail. *)
