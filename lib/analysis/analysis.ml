open O2_runtime
open O2_simcore

type t = {
  report_ : Report.t;
  lockset : Lockset.t;
  lock_order : Lock_order.t;
  invariants : Invariants.t;
}

let attach_engine ?granularity ?limit ?table ?migrate_back engine =
  let report_ = Report.create ?limit () in
  let mem = Machine.memory (Engine.machine engine) in
  let name_of addr =
    match Memsys.object_at mem ~addr with
    | Some e -> Some e.Memsys.name
    | None -> None
  in
  let lockset = Lockset.create ?granularity ~report:report_ ~name_of () in
  let lock_order = Lock_order.create ~report:report_ () in
  let invariants =
    Invariants.create ~report:report_ ~name_of ?table
      ~cores:(Engine.cores engine) ?migrate_back ()
  in
  let t = { report_; lockset; lock_order; invariants } in
  Probe.subscribe (Engine.probe engine) (fun ev ->
      Lockset.on_event lockset ev;
      Lock_order.on_event lock_order ev;
      Invariants.on_event invariants ev);
  t

let attach ?granularity ?limit ct =
  attach_engine ?granularity ?limit ~table:(Coretime.table ct)
    ~migrate_back:(Coretime.policy ct).Coretime.Policy.migrate_back
    (Coretime.engine ct)

let finish t =
  Lock_order.finish t.lock_order;
  Invariants.finish t.invariants

let report t = t.report_
let diagnostics t = Report.diagnostics t.report_
let is_clean t = Report.is_clean t.report_
let races t = Lockset.races_found t.lockset
let pp ppf t = Report.pp ppf t.report_
