(** Structured diagnostics reported by the o2check analysis passes.

    Every checker — the lockset race detector, the O2 invariant checker,
    the source lint — reports violations as values of this one type, so
    the CLI, the test suite and future CI tooling can filter, dedupe and
    render them uniformly. *)

type severity = Error | Warning

type t = {
  checker : string;  (** Which pass produced it: ["lockset"], ["lock-order"],
                         ["invariant"] or ["lint"]. *)
  code : string;  (** Stable short code, e.g. ["race"], ["deadlock-cycle"],
                      ["open-op"], ["capacity"], ["obj-magic"]. *)
  severity : severity;
  message : string;  (** Human-readable, self-contained description. *)
  time : int option;  (** Virtual time, for dynamic diagnostics. *)
  cores : int list;  (** Cores involved (e.g. the two racing cores). *)
  threads : int list;  (** Thread ids involved. *)
  addr : int option;  (** Simulated address, when one identifies the site. *)
  subject : string option;
      (** The object, lock or file the diagnostic is about. *)
}

val make :
  checker:string ->
  code:string ->
  ?severity:severity ->
  ?time:int ->
  ?cores:int list ->
  ?threads:int list ->
  ?addr:int ->
  ?subject:string ->
  string ->
  t
(** [make ~checker ~code msg]; [severity] defaults to [Error]. *)

val is_error : t -> bool

val key : t -> string
(** Deduplication key: checker, code, subject and addr (not the message,
    whose times and counters vary between otherwise-identical reports). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
