let slot_bytes = 16 (* 8-byte key + 8-byte value, as in Kv_store *)

module Make (B : O2_runtime.Backend_intf.S) = struct
  type bucket = {
    obj : int;  (* backend object handle *)
    keys : int array;
    values : int array;
    mutable used : int;
  }

  type t = { b : B.t; bucket_arr : bucket array; slots : int }

  let create b ~name ~buckets ~slots_per_bucket () =
    if buckets <= 0 || slots_per_bucket <= 0 then
      invalid_arg "Backend_kv.create: buckets and slots must be positive";
    let bucket_bytes = slots_per_bucket * slot_bytes in
    let make_bucket i =
      {
        obj =
          B.register b ~size:bucket_bytes
            ~name:(Printf.sprintf "%s.b%d" name i);
        keys = Array.make slots_per_bucket 0;
        values = Array.make slots_per_bucket 0;
        used = 0;
      }
    in
    { b; bucket_arr = Array.init buckets make_bucket; slots = slots_per_bucket }

  let buckets t = Array.length t.bucket_arr

  let bucket_of_key t key =
    let h = key * 0x2545F491 land max_int in
    h mod buckets t

  let bucket_obj t i = t.bucket_arr.(i).obj

  (* Pure probe: the slot holding [key], or -1. No backend calls — see
     the .mli on why the logical section must stay effect-free. *)
  let scan bk ~key =
    let rec go i =
      if i >= bk.used then -1 else if bk.keys.(i) = key then i else go (i + 1)
    in
    go 0

  (* The cost a linear probe of [probed] slots would incur, charged once
     the logical section is decided (mirrors Kv_store.scan_sim). *)
  let charge t bk ~probed ~wrote =
    if probed > 0 then
      B.touch t.b ~write:false ~obj:bk.obj ~off:0 ~len:(probed * slot_bytes);
    B.compute t.b (2 * max probed 1);
    if wrote >= 0 then
      B.touch t.b ~write:true ~obj:bk.obj ~off:(wrote * slot_bytes)
        ~len:slot_bytes

  let get t ~key =
    let bk = t.bucket_arr.(bucket_of_key t key) in
    B.with_op t.b bk.obj (fun () ->
        let i = scan bk ~key in
        let result = if i >= 0 then bk.values.(i) else -1 in
        let probed = if i >= 0 then i + 1 else bk.used in
        charge t bk ~probed ~wrote:(-1);
        result)

  let put t ~key ~value =
    let bk = t.bucket_arr.(bucket_of_key t key) in
    B.with_op t.b ~write:true bk.obj (fun () ->
        let i = scan bk ~key in
        let probed = if i >= 0 then i + 1 else bk.used in
        let wrote =
          if i >= 0 then begin
            bk.values.(i) <- value;
            i
          end
          else if bk.used >= t.slots then -1
          else begin
            let i = bk.used in
            bk.keys.(i) <- key;
            bk.values.(i) <- value;
            bk.used <- i + 1;
            i
          end
        in
        charge t bk ~probed ~wrote;
        wrote >= 0)

  let delete t ~key =
    let bk = t.bucket_arr.(bucket_of_key t key) in
    B.with_op t.b ~write:true bk.obj (fun () ->
        let i = scan bk ~key in
        let probed = if i >= 0 then i + 1 else bk.used in
        if i < 0 then begin
          charge t bk ~probed ~wrote:(-1);
          false
        end
        else begin
          let last = bk.used - 1 in
          bk.keys.(i) <- bk.keys.(last);
          bk.values.(i) <- bk.values.(last);
          bk.used <- last;
          charge t bk ~probed ~wrote:i;
          true
        end)

  let size t =
    Array.fold_left (fun acc bk -> acc + bk.used) 0 t.bucket_arr
end
