(* Counter layout: everything hot is a per-domain row written only by
   its owning worker (ops_by_obj, submits, dstats), so the hot path has
   no contended atomics at all. Rows are summed by the coordinator only
   at quiescence; [home] is plain too — written only inside [rebalance]
   (inflight = 0, no worker executing clients) and published to workers
   by the next spawn's inbox CAS / drain exchange pair. *)

type dstats = {
  mutable ops : int;
  mutable ships_out : int;
  mutable ships_in : int;
}

type t = {
  pool : Native_pool.t;
  n : int;  (* pool domains *)
  probe : O2_runtime.Probe.t;
  tel : O2_runtime.Telemetry.t;
  tel_on : bool;  (* cached for with_op's hot path *)
  tsinks : O2_runtime.Telemetry.sink array;  (* per-worker, prefetched *)
  tcoord : O2_runtime.Telemetry.sink;
  mutable nobjs : int;
  mutable home_ : int array;  (* obj -> home domain *)
  mutable names : string array;
  mutable sizes : int array;
  mutable ops_by_obj : int array array;  (* [domain].(obj), owner-written *)
  mutable submits : int array array;  (* [domain].(obj), owner-written *)
  mutable submits_snap : int array array;  (* coordinator-owned snapshot *)
  stats : dstats array;  (* per-domain, owner-written *)
  mutable migrations_ : int;
  mutable periods : int;  (* completed rebalance steps *)
}

let create ?(telemetry = O2_runtime.Telemetry.off) ~domains () =
  let pool = Native_pool.create ~telemetry ~domains () in
  {
    pool;
    n = domains;
    probe = O2_runtime.Probe.create ();
    tel = telemetry;
    tel_on = O2_runtime.Telemetry.enabled telemetry;
    tsinks = O2_runtime.Telemetry.sink_array telemetry ~n:domains;
    tcoord = O2_runtime.Telemetry.coordinator telemetry;
    nobjs = 0;
    home_ = Array.make 16 0;
    names = Array.make 16 "";
    sizes = Array.make 16 0;
    ops_by_obj = Array.init domains (fun _ -> Array.make 16 0);
    submits = Array.init domains (fun _ -> Array.make 16 0);
    submits_snap = Array.init domains (fun _ -> Array.make 16 0);
    stats = Array.init domains (fun _ -> { ops = 0; ships_out = 0; ships_in = 0 });
    migrations_ = 0;
    periods = 0;
  }

let shutdown t = Native_pool.shutdown t.pool
let pool t = t.pool
let name _ = "native"
let cores t = t.n
let probe t = t.probe
let objects t = t.nobjs
let home t o = t.home_.(o)

let grow_int_array a cap =
  let a' = Array.make cap 0 in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let ensure_capacity t =
  let cap = Array.length t.home_ in
  if t.nobjs >= cap then begin
    let cap' = cap * 2 in
    t.home_ <- grow_int_array t.home_ cap';
    t.sizes <- grow_int_array t.sizes cap';
    let names = Array.make cap' "" in
    Array.blit t.names 0 names 0 cap;
    t.names <- names;
    t.ops_by_obj <- Array.map (fun r -> grow_int_array r cap') t.ops_by_obj;
    t.submits <- Array.map (fun r -> grow_int_array r cap') t.submits;
    t.submits_snap <- Array.map (fun r -> grow_int_array r cap') t.submits_snap
  end

let register t ~size ~name =
  if size <= 0 then invalid_arg "Native_backend.register: size must be > 0";
  if Native_pool.current_domain t.pool >= 0 then
    invalid_arg "Native_backend.register: must be called off-pool";
  ensure_capacity t;
  let o = t.nobjs in
  t.nobjs <- o + 1;
  t.home_.(o) <- o mod t.n;
  t.sizes.(o) <- size;
  t.names.(o) <- name;
  o

let spawn t ~core ~name body = Native_pool.spawn t.pool ~core ~name body

let run t =
  Native_pool.drain t.pool;
  if t.tel_on then O2_runtime.Telemetry.note_quiesce t.tcoord

let telemetry t = t.tel

(* Telemetry timestamps ride in locals: [t0]/[t1] live in the shipped
   continuation's frame, so a span that crosses domains keeps its
   submit-side clock reading with no shared state. Ints when off, so
   the disabled branch costs a cached-bool test and two zero loads. *)
let with_op t ?write:_ obj f =
  let me = Native_pool.current_domain t.pool in
  if me < 0 then
    invalid_arg "Native_backend.with_op: called outside a pool worker";
  if obj < 0 || obj >= t.nobjs then
    invalid_arg "Native_backend.with_op: unknown object";
  let row = t.submits.(me) in
  row.(obj) <- row.(obj) + 1;
  let tel_on = t.tel_on in
  let t0 = if tel_on then O2_runtime.Telemetry.now_ns () else 0 in
  let token =
    if tel_on then O2_runtime.Telemetry.op_submit t.tsinks.(me) ~obj else -1
  in
  let h = t.home_.(obj) in
  let shipped = h <> me in
  if shipped then begin
    let s = t.stats.(me) in
    s.ships_out <- s.ships_out + 1;
    if tel_on then
      O2_runtime.Telemetry.note_ship_out t.tsinks.(me) ~token ~obj ~dst:h;
    O2_runtime.Api.ship_to h;
    (* The continuation resumed on the home's worker; from here until
       the next ship, everything runs there — including the telemetry
       writes, which now target the home's own sink. *)
    let s = t.stats.(h) in
    s.ships_in <- s.ships_in + 1;
    if tel_on then
      O2_runtime.Telemetry.note_ship_in t.tsinks.(h) ~token ~obj ~src:me
  end;
  let here = Native_pool.current_domain t.pool in
  let orow = t.ops_by_obj.(here) in
  orow.(obj) <- orow.(obj) + 1;
  let t1 =
    if tel_on then begin
      O2_runtime.Telemetry.note_start t.tsinks.(here) ~token ~obj;
      O2_runtime.Telemetry.now_ns ()
    end
    else 0
  in
  let r = f () in
  let s = t.stats.(here) in
  s.ops <- s.ops + 1;
  if tel_on then begin
    let sk = t.tsinks.(here) in
    let t2 = O2_runtime.Telemetry.now_ns () in
    O2_runtime.Telemetry.note_end sk ~token ~obj;
    O2_runtime.Telemetry.observe_exec sk (t2 - t1);
    if shipped then begin
      O2_runtime.Telemetry.observe_shipped sk (t2 - t0);
      O2_runtime.Telemetry.observe_ship_delay sk (t1 - t0)
    end
    else O2_runtime.Telemetry.observe_home sk (t2 - t0)
  end;
  r

let touch _t ~write:_ ~obj:_ ~off:_ ~len:_ = ()

let compute _t cycles =
  for _ = 1 to cycles do
    ignore (Sys.opaque_identity 0)
  done

let ops_completed t = Array.fold_left (fun acc s -> acc + s.ops) 0 t.stats

let object_ops t o =
  let acc = ref 0 in
  for d = 0 to t.n - 1 do
    acc := !acc + t.ops_by_obj.(d).(o)
  done;
  !acc

let ships t =
  let out = ref 0 and in_ = ref 0 in
  Array.iter
    (fun s ->
      out := !out + s.ships_out;
      in_ := !in_ + s.ships_in)
    t.stats;
  (!out, !in_)

let migrations t = t.migrations_

(* Submit delta for [o] from domain [d] since the last snapshot. *)
let delta t d o = t.submits.(d).(o) - t.submits_snap.(d).(o)

let rebalance t =
  if Native_pool.current_domain t.pool >= 0 then
    invalid_arg "Native_backend.rebalance: must run at a quiesce point";
  let moves = ref 0 in
  (* Pass 1 — affinity: home := the domain that submitted most ops this
     period (ties to the lower index; untouched objects stay put). *)
  for o = 0 to t.nobjs - 1 do
    let best = ref (-1) and best_n = ref 0 in
    for d = 0 to t.n - 1 do
      let n = delta t d o in
      if n > !best_n then begin
        best := d;
        best_n := n
      end
    done;
    if !best >= 0 && !best <> t.home_.(o) then begin
      t.home_.(o) <- !best;
      incr moves
    end
  done;
  (* Pass 2 — spill: while a home carries more than ~1.5x the average
     period load, move its coldest active objects to the least loaded
     domain. Deterministic: ascending object scans, ties to lower
     indices; bounded by one pass over the objects. *)
  let load = Array.make t.n 0 in
  let total = ref 0 in
  for o = 0 to t.nobjs - 1 do
    let w = ref 0 in
    for d = 0 to t.n - 1 do
      w := !w + delta t d o
    done;
    load.(t.home_.(o)) <- load.(t.home_.(o)) + !w;
    total := !total + !w
  done;
  let cap = (!total * 3 / (2 * t.n)) + 1 in
  let arg_extreme better =
    let best = ref 0 in
    for d = 1 to t.n - 1 do
      if better load.(d) load.(!best) then best := d
    done;
    !best
  in
  let budget = ref t.nobjs in
  let continue_ = ref (t.n > 1) in
  while !continue_ && !budget > 0 do
    let hot = arg_extreme ( > ) in
    if load.(hot) <= cap then continue_ := false
    else begin
      (* The coldest active object homed on [hot]. *)
      let victim = ref (-1) and victim_w = ref max_int in
      for o = 0 to t.nobjs - 1 do
        if t.home_.(o) = hot then begin
          let w = ref 0 in
          for d = 0 to t.n - 1 do
            w := !w + delta t d o
          done;
          if !w > 0 && !w < !victim_w then begin
            victim := o;
            victim_w := !w
          end
        end
      done;
      if !victim < 0 then continue_ := false
      else begin
        let cold = arg_extreme ( < ) in
        if cold = hot || load.(hot) - !victim_w < load.(cold) + !victim_w
        then continue_ := false
        else begin
          t.home_.(!victim) <- cold;
          load.(hot) <- load.(hot) - !victim_w;
          load.(cold) <- load.(cold) + !victim_w;
          incr moves;
          decr budget
        end
      end
    end
  done;
  (* Close the period: snapshot submits, publish counters. *)
  for d = 0 to t.n - 1 do
    Array.blit t.submits.(d) 0 t.submits_snap.(d) 0 t.nobjs
  done;
  t.migrations_ <- t.migrations_ + !moves;
  t.periods <- t.periods + 1;
  if t.tel_on then O2_runtime.Telemetry.note_rebalance t.tcoord ~moves:!moves;
  if O2_runtime.Probe.active t.probe then
    O2_runtime.Probe.emit t.probe
      (O2_runtime.Probe.Rebalanced
         { time = t.periods; moves = !moves; demotions = 0 })
