let entry_bytes = 32 (* Fat_types.entry_bytes: one 8.3 directory entry *)

module Make (B : O2_runtime.Backend_intf.S) = struct
  type dir = { obj : int; entries : int array }

  type t = { b : B.t; dir_arr : dir array; compare_cycles : int }

  let create b ~name ~dirs ~entries_per_dir ?(compare_cycles = 2) () =
    if dirs <= 0 || entries_per_dir <= 0 then
      invalid_arg "Backend_dir.create: dirs and entries must be positive";
    let make_dir i =
      {
        obj =
          B.register b
            ~size:(entries_per_dir * entry_bytes)
            ~name:(Printf.sprintf "%s.d%d" name i);
        (* Entries stored shuffled-free: key k at slot k, like a freshly
           populated FAT directory — the probe depth is the key. *)
        entries = Array.init entries_per_dir (fun k -> k);
      }
    in
    { b; dir_arr = Array.init dirs make_dir; compare_cycles }

  let dirs t = Array.length t.dir_arr
  let dir_obj t i = t.dir_arr.(i).obj

  let scan d ~key =
    let n = Array.length d.entries in
    let rec go i =
      if i >= n then -1 else if d.entries.(i) = key then i else go (i + 1)
    in
    go 0

  let lookup t ~dir ~key =
    let d = t.dir_arr.(dir) in
    B.with_op t.b d.obj (fun () ->
        let i = scan d ~key in
        let probed = if i >= 0 then i + 1 else Array.length d.entries in
        B.touch t.b ~write:false ~obj:d.obj ~off:0 ~len:(probed * entry_bytes);
        B.compute t.b (t.compare_cycles * max probed 1);
        i)
end
