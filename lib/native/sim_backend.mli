(** The simulator as a {!O2_runtime.Backend_intf.S} backend — the oracle
    side of the cross-check.

    Wraps a serial {!O2_runtime.Engine} + {!Coretime} instance behind
    the backend signature: [register] allocates a simulated extent and
    registers it with CoreTime, [with_op] is [Coretime.with_op] on the
    extent's base address, [touch]/[compute] charge virtual cycles
    through {!O2_runtime.Api}, and [run] drives the event loop until the
    spawned clients finish. Per-object op counts are reconstructed from
    the probe's [Op_started] stream, which the backend subscribes to at
    creation. *)

type t

val create : ?cfg:O2_simcore.Config.t -> unit -> t
(** [cfg] defaults to {!O2_simcore.Config.amd16}. CoreTime runs with
    {!Coretime.Policy.default}, monitor included. *)

val engine : t -> O2_runtime.Engine.t
val coretime : t -> Coretime.t

(** The {!O2_runtime.Backend_intf.S} surface. *)

val name : t -> string
val cores : t -> int
val probe : t -> O2_runtime.Probe.t
val register : t -> size:int -> name:string -> int
val objects : t -> int
val spawn : t -> core:int -> name:string -> (unit -> unit) -> unit
val with_op : t -> ?write:bool -> int -> (unit -> 'a) -> 'a
val touch : t -> write:bool -> obj:int -> off:int -> len:int -> unit
val compute : t -> int -> unit
val run : t -> unit
val ops_completed : t -> int
val object_ops : t -> int -> int
val ships : t -> int * int
val migrations : t -> int
