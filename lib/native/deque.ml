(* Chase–Lev work-stealing deque (Chase & Lev, SPAA'05; load/store
   orderings per Lê et al., PPoPP'13). OCaml [Atomic] reads and writes
   are sequentially consistent, which subsumes every fence the weaker
   formulations need; the correctness-critical orderings are

   - [pop] publishes its [bottom] decrement before reading [top], and
   - [steal] reads [top] before [bottom],

   so a thief that observed [top = n] can never pair it with a [bottom]
   value older than the owner's decrement to [n] (the SC total order
   forbids it), and the element at [bottom] is never both popped and
   stolen.

   The ring is a { mask; slots } record swapped through one Atomic on
   grow. Slots themselves are plain: the owner's slot write is published
   to thieves by the subsequent [bottom] store (release via SC), and a
   thief holding a stale ring still reads the element the owner copied
   there — grow copies by logical index, and the thief's CAS on [top]
   validates that the element was not consumed meanwhile. Thieves never
   write slots (a slow thief's write could clobber an owner push that
   reused the physical slot); only the owner clears consumed slots back
   to [dummy] so the GC can collect finished tasks. *)

type 'a ring = { mask : int; slots : 'a array }

type 'a t = {
  dummy : 'a;
  top : int Atomic.t;  (* next index thieves take; CAS to advance *)
  bottom : int Atomic.t;  (* next index the owner pushes; owner-written *)
  ring : 'a ring Atomic.t;
}

let create ?(capacity = 64) ~dummy () =
  if capacity < 1 then invalid_arg "Deque.create: capacity must be >= 1";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    dummy;
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    ring = Atomic.make { mask = !cap - 1; slots = Array.make !cap dummy };
  }

(* Owner only. Doubles the ring, copying live elements by logical index,
   and publishes it before any new element lands in it. *)
let grow t r ~top ~bottom =
  let size = (r.mask + 1) * 2 in
  let slots = Array.make size t.dummy in
  let mask = size - 1 in
  for i = top to bottom - 1 do
    slots.(i land mask) <- r.slots.(i land r.mask)
  done;
  let r' = { mask; slots } in
  Atomic.set t.ring r';
  r'

let push t v =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  let r = Atomic.get t.ring in
  let r = if b - tp > r.mask then grow t r ~top:tp ~bottom:b else r in
  r.slots.(b land r.mask) <- v;
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  let r = Atomic.get t.ring in
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if tp > b then begin
    (* Empty: undo the reservation. *)
    Atomic.set t.bottom (b + 1);
    t.dummy
  end
  else if tp < b then begin
    (* At least two elements: index [b] is unreachable by thieves. *)
    let v = r.slots.(b land r.mask) in
    r.slots.(b land r.mask) <- t.dummy;
    v
  end
  else begin
    (* Last element: race thieves for it via the CAS on [top]. *)
    let v = r.slots.(b land r.mask) in
    let won = Atomic.compare_and_set t.top tp (tp + 1) in
    Atomic.set t.bottom (b + 1);
    if won then begin
      r.slots.(b land r.mask) <- t.dummy;
      v
    end
    else t.dummy
  end

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then t.dummy
  else begin
    let r = Atomic.get t.ring in
    let v = r.slots.(tp land r.mask) in
    if Atomic.compare_and_set t.top tp (tp + 1) then v else t.dummy
  end

let length t =
  let b = Atomic.get t.bottom in
  let tp = Atomic.get t.top in
  if b > tp then b - tp else 0

let is_empty t = length t = 0
