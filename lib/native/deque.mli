(** Chase–Lev work-stealing deque: single owner, many thieves.

    Each pool worker owns one deque: only the owner may {!push} and
    {!pop} (LIFO, at the bottom), while any other domain may {!steal}
    (FIFO, at the top). The implementation is the classic Chase–Lev
    circular-buffer algorithm on OCaml [Atomic]s, whose sequentially
    consistent semantics provide the store-load ordering the original
    algorithm obtains from explicit fences.

    Empty and lost-race results are reported by returning the [dummy]
    element the deque was created with (compare with [==]), so the hot
    paths allocate nothing — no options, no exceptions. The buffer grows
    geometrically when the owner outruns the thieves; grown rings are
    published atomically, so a thief holding a stale ring still reads a
    valid element (the element is validated by its CAS on [top]). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [capacity] (default 64) is rounded up to a power of two. [dummy]
    must never be pushed; it is the sentinel returned for "nothing".
    @raise Invalid_argument if [capacity < 1]. *)

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom. Grows the ring when full (the only
    allocating path). *)

val pop : 'a t -> 'a
(** Owner only: take the most recently pushed element, or [dummy] when
    the deque is empty (or a thief won the race for the last element). *)

val steal : 'a t -> 'a
(** Any domain: take the oldest element. Returns [dummy] when the deque
    is empty {e or} when it lost a race with the owner or another thief
    — callers treat both as a miss and move to the next victim. *)

val length : 'a t -> int
(** Racy snapshot ([bottom - top], clamped to 0). Exact only for the
    owner while no thief is active; useful for tests and telemetry. *)

val is_empty : 'a t -> bool
(** [length t = 0]; the same caveat applies. *)
