(* Treiber-stack MPSC inbox. Producers CAS cells onto [head]; the
   consumer detaches the whole chain with one [Atomic.exchange] (an
   acquire: every plain write the producers made before their CAS is
   visible once the exchange returns their cells) and replays it oldest
   first. The chain arrives newest-first, so the drain fills a
   consumer-owned scratch array back to front and then walks it
   forward; the helpers are top-level so the loop builds no closures. *)

type 'a node = Nil | Cons of 'a * 'a node

type 'a t = {
  dummy : 'a;
  head : 'a node Atomic.t;
  mutable scratch : 'a array;  (* consumer-owned; grows, never shrinks *)
}

let create ~dummy () =
  { dummy; head = Atomic.make Nil; scratch = Array.make 64 dummy }

let push t v =
  let rec go () =
    let h = Atomic.get t.head in
    if not (Atomic.compare_and_set t.head h (Cons (v, h))) then go ()
  in
  go ()

let rec chain_length n = function
  | Nil -> n
  | Cons (_, rest) -> chain_length (n + 1) rest

(* Newest-first chain -> scratch.(0 .. n-1) oldest-first. *)
let rec fill_scratch s i = function
  | Nil -> ()
  | Cons (v, rest) ->
      s.(i) <- v;
      fill_scratch s (i - 1) rest

let rec apply_scratch s dummy f i n =
  if i < n then begin
    let v = s.(i) in
    s.(i) <- dummy;
    f v;
    apply_scratch s dummy f (i + 1) n
  end

let grow_scratch t n =
  let cap = ref (Array.length t.scratch) in
  while !cap < n do
    cap := !cap * 2
  done;
  t.scratch <- Array.make !cap t.dummy

let drain_into t f =
  match Atomic.exchange t.head Nil with
  | Nil -> 0
  | chain ->
      let n = chain_length 0 chain in
      if n > Array.length t.scratch then grow_scratch t n;
      let s = t.scratch in
      fill_scratch s (n - 1) chain;
      apply_scratch s t.dummy f 0 n;
      n

let is_empty t = match Atomic.get t.head with Nil -> true | Cons _ -> false
