(** Multi-producer single-consumer mailbox: cross-domain task delivery.

    Every pool worker owns one inbox; any domain (workers shipping
    operations, the coordinator spawning clients) may {!push} into it,
    but only the owner drains it. Internally a Treiber stack: [push] is
    one CAS (plus the cons cell it links — the producer side is allowed
    that allocation), and {!drain_into} detaches the whole stack with a
    single [Atomic.exchange], then replays it in FIFO order through a
    consumer-owned scratch array so the drain loop itself allocates
    nothing once the scratch has warmed up. *)

type 'a t

val create : dummy:'a -> unit -> 'a t
(** [dummy] is never delivered; it back-fills scratch slots after use so
    drained tasks do not linger reachable. *)

val push : 'a t -> 'a -> unit
(** Any domain. Lock-free; retries its CAS under contention. *)

val drain_into : 'a t -> ('a -> unit) -> int
(** Owner only: atomically take everything pushed so far and apply [f]
    to each element, oldest first (per-producer FIFO; pushes racing the
    drain are left for the next one). Returns how many were delivered.
    [f] may push into {e other} inboxes but must not touch this one's
    drain side — [drain_into] is not reentrant. *)

val is_empty : 'a t -> bool
(** Snapshot; a racing push can invalidate it immediately. *)
