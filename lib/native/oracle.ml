type report = {
  ok : bool;
  domains : int;
  total_ops : int;
  native_ships : int * int;
  native_migrations : int;
  native_steals : int;
  mismatches : string list;
}

(* One backend's observable outcome of a full multi-round run. *)
type outcome = {
  results : int array array array;  (* round -> client -> per-op result *)
  ops : int;
  per_object : int array;
  o_ships : int * int;
  o_migrations : int;
  store_size : int;
}

module Run_kv (B : O2_runtime.Backend_intf.S) = struct
  module Kv = Backend_kv.Make (B)

  let go b ~clients ~ops_per_client ~rounds ~buckets ~slots_per_bucket
      ~keyspace ~seed ~between_rounds =
    let kv = Kv.create b ~name:"kv" ~buckets ~slots_per_bucket () in
    let results =
      Array.init rounds (fun _ ->
          Array.init clients (fun _ -> Array.make ops_per_client 0))
    in
    for round = 0 to rounds - 1 do
      for c = 0 to clients - 1 do
        let prog =
          Op_program.kv_program ~clients ~client:c ~ops:ops_per_client
            ~keyspace
            ~seed:(seed + (7919 * round))
        in
        let out = results.(round).(c) in
        (* Not [c mod cores]: the store's odd multiplicative hash
           preserves [key mod 2^k], so with round-robin bucket homes that
           placement would park every client exactly on its own keys'
           home domain and the kv check would never ship. The stride-5
           offset placement breaks the alignment (results are placement-
           independent either way — that is the whole point of key
           ownership). *)
        B.spawn b ~core:(((c * 5) + 3) mod B.cores b)
          ~name:(Printf.sprintf "kv-client-%d" c)
          (fun () ->
            Array.iteri
              (fun i op ->
                let raw =
                  match op with
                  | Op_program.Get k -> Kv.get kv ~key:k
                  | Op_program.Put (k, v) ->
                      if Kv.put kv ~key:k ~value:v then 1 else 0
                  | Op_program.Delete k ->
                      if Kv.delete kv ~key:k then 1 else 0
                in
                out.(i) <- Op_program.kv_result op ~raw)
              prog)
      done;
      B.run b;
      between_rounds ()
    done;
    {
      results;
      ops = B.ops_completed b;
      per_object = Array.init (B.objects b) (fun o -> B.object_ops b o);
      o_ships = B.ships b;
      o_migrations = B.migrations b;
      store_size = Kv.size kv;
    }
end

module Run_dir (B : O2_runtime.Backend_intf.S) = struct
  module Dir = Backend_dir.Make (B)

  let go b ~clients ~ops_per_client ~rounds ~dirs ~entries_per_dir ~seed
      ~between_rounds =
    let d = Dir.create b ~name:"dir" ~dirs ~entries_per_dir () in
    let results =
      Array.init rounds (fun _ ->
          Array.init clients (fun _ -> Array.make ops_per_client 0))
    in
    for round = 0 to rounds - 1 do
      for c = 0 to clients - 1 do
        let prog =
          Op_program.dir_program ~dirs ~entries_per_dir ~ops:ops_per_client
            ~seed:(seed + (7919 * round) + (97 * c))
        in
        let out = results.(round).(c) in
        B.spawn b ~core:(c mod B.cores b)
          ~name:(Printf.sprintf "dir-client-%d" c)
          (fun () ->
            Array.iteri
              (fun i (dir, key) -> out.(i) <- 1 + Dir.lookup d ~dir ~key)
              prog)
      done;
      B.run b;
      between_rounds ()
    done;
    {
      results;
      ops = B.ops_completed b;
      per_object = Array.init (B.objects b) (fun o -> B.object_ops b o);
      o_ships = B.ships b;
      o_migrations = B.migrations b;
      store_size = 0;
    }
end

module Sim_kv = Run_kv (Sim_backend)
module Nat_kv = Run_kv (Native_backend)
module Sim_dir = Run_dir (Sim_backend)
module Nat_dir = Run_dir (Native_backend)

let compare_outcomes ~expected_ops sim nat =
  let mismatches = ref [] in
  let fail fmt = Format.kasprintf (fun s -> mismatches := s :: !mismatches) fmt in
  if sim.ops <> expected_ops then
    fail "sim completed %d ops, expected %d" sim.ops expected_ops;
  if nat.ops <> expected_ops then
    fail "native completed %d ops, expected %d" nat.ops expected_ops;
  if sim.store_size <> nat.store_size then
    fail "final store size: sim %d vs native %d" sim.store_size nat.store_size;
  if Array.length sim.per_object <> Array.length nat.per_object then
    fail "object count: sim %d vs native %d"
      (Array.length sim.per_object)
      (Array.length nat.per_object)
  else
    Array.iteri
      (fun o s ->
        if s <> nat.per_object.(o) then
          fail "object %d op count: sim %d vs native %d" o s
            nat.per_object.(o))
      sim.per_object;
  let out, in_ = nat.o_ships in
  if out <> in_ then fail "native ship balance: %d out vs %d in" out in_;
  Array.iteri
    (fun round sim_clients ->
      Array.iteri
        (fun c sim_ops ->
          let nat_ops = nat.results.(round).(c) in
          Array.iteri
            (fun i s ->
              if s <> nat_ops.(i) then
                fail "round %d client %d op %d: sim %d vs native %d" round c
                  i s nat_ops.(i))
            sim_ops)
        sim_clients)
    sim.results;
  List.rev !mismatches

let finish ~domains ~expected_ops ~steals sim nat =
  let mismatches = compare_outcomes ~expected_ops sim nat in
  {
    ok = mismatches = [];
    domains;
    total_ops = expected_ops;
    native_ships = nat.o_ships;
    native_migrations = nat.o_migrations;
    native_steals = steals;
    mismatches;
  }

let kv_cross_check ?(telemetry = O2_runtime.Telemetry.off) ?(clients = 8)
    ?(ops_per_client = 240) ?(rounds = 3) ?(buckets = 16)
    ?(slots_per_bucket = 32) ?(keyspace = 128) ?(seed = 42) ~domains () =
  if clients <= 0 || ops_per_client <= 0 || rounds <= 0 then
    invalid_arg "Oracle.kv_cross_check: counts must be positive";
  if keyspace < clients then
    invalid_arg "Oracle.kv_cross_check: keyspace must cover every client";
  let worst = Op_program.max_bucket_load ~buckets ~keyspace in
  if worst > slots_per_bucket then
    invalid_arg
      (Printf.sprintf
         "Oracle.kv_cross_check: a bucket can receive %d distinct keys but \
          only has %d slots — results would depend on the schedule"
         worst slots_per_bucket);
  let sim =
    Sim_kv.go (Sim_backend.create ()) ~clients ~ops_per_client ~rounds
      ~buckets ~slots_per_bucket ~keyspace ~seed ~between_rounds:ignore
  in
  let nb = Native_backend.create ~telemetry ~domains () in
  Fun.protect
    ~finally:(fun () -> Native_backend.shutdown nb)
    (fun () ->
      let nat =
        Nat_kv.go nb ~clients ~ops_per_client ~rounds ~buckets
          ~slots_per_bucket ~keyspace ~seed ~between_rounds:(fun () ->
            Native_backend.rebalance nb)
      in
      finish ~domains
        ~expected_ops:(clients * ops_per_client * rounds)
        ~steals:(Native_pool.steals (Native_backend.pool nb))
        sim nat)

let dir_cross_check ?(telemetry = O2_runtime.Telemetry.off) ?(clients = 8)
    ?(ops_per_client = 160) ?(rounds = 2) ?(dirs = 24) ?(entries_per_dir = 48)
    ?(seed = 42) ~domains () =
  if clients <= 0 || ops_per_client <= 0 || rounds <= 0 then
    invalid_arg "Oracle.dir_cross_check: counts must be positive";
  let sim =
    Sim_dir.go (Sim_backend.create ()) ~clients ~ops_per_client ~rounds ~dirs
      ~entries_per_dir ~seed ~between_rounds:ignore
  in
  let nb = Native_backend.create ~telemetry ~domains () in
  Fun.protect
    ~finally:(fun () -> Native_backend.shutdown nb)
    (fun () ->
      let nat =
        Nat_dir.go nb ~clients ~ops_per_client ~rounds ~dirs ~entries_per_dir
          ~seed ~between_rounds:(fun () -> Native_backend.rebalance nb)
      in
      finish ~domains
        ~expected_ops:(clients * ops_per_client * rounds)
        ~steals:(Native_pool.steals (Native_backend.pool nb))
        sim nat)

let pp_report ppf r =
  let out, in_ = r.native_ships in
  Format.fprintf ppf
    "oracle %s: domains=%d ops=%d ships=%d/%d migrations=%d steals=%d"
    (if r.ok then "OK" else "MISMATCH")
    r.domains r.total_ops out in_ r.native_migrations r.native_steals;
  if not r.ok then
    List.iter (fun m -> Format.fprintf ppf "@.  %s" m) r.mismatches
