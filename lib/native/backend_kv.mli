(** The kv_store bucket logic, written once against the backend
    signature — the workload program both sides of the oracle
    cross-check execute.

    This is the same open-addressed store as {!O2_workload.Kv_store}
    (same multiplicative hash, same linear-probe cost model, same
    full-bucket and delete-swap-last behavior) with two deliberate
    differences that keep one program portable across backends:

    - No bucket spinlocks: the logical read-modify-write on a bucket is
      a straight OCaml section with no backend call inside, so it is
      atomic on both backends — the simulator's engine only switches
      threads at effect points, and the native backend runs every op for
      a bucket on its single home domain. Probe/compute costs are
      charged {e after} the logical section for exactly this reason.
    - Results are sentinel ints, not options ([get] returns [-1] for
      absent), so native hot paths allocate nothing. *)

module Make (B : O2_runtime.Backend_intf.S) : sig
  type t

  val create :
    B.t -> name:string -> buckets:int -> slots_per_bucket:int -> unit -> t
  (** Registers one backend object per bucket (handle order = bucket
      order, so per-object counters line up across backends).
      @raise Invalid_argument unless both sizes are positive. *)

  val buckets : t -> int
  val bucket_of_key : t -> int -> int
  val bucket_obj : t -> int -> int
  (** The backend object handle of bucket [i]. *)

  val get : t -> key:int -> int
  (** The value bound to [key], or [-1] when absent. Call from a client
      body; stores only nonnegative values if you use the sentinel. *)

  val put : t -> key:int -> value:int -> bool
  (** [false] iff the bucket was full and the key absent. *)

  val delete : t -> key:int -> bool
  val size : t -> int
  (** Total keys stored; meaningful at quiescence only. *)
end
