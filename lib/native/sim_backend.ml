open O2_runtime

type t = {
  engine : Engine.t;
  ct : Coretime.t;
  mem : O2_simcore.Memsys.t;
  mutable nobjs : int;
  mutable bases : int array;  (* obj -> extent base address *)
  mutable op_counts : int array;  (* obj -> Op_started count, via probe *)
  by_addr : (int, int) Hashtbl.t;  (* base address -> obj handle *)
}

let create ?(cfg = O2_simcore.Config.amd16) () =
  let machine = O2_simcore.Machine.create cfg in
  let engine = Engine.create machine in
  let ct = Coretime.create engine () in
  let t =
    {
      engine;
      ct;
      mem = O2_simcore.Machine.memory machine;
      nobjs = 0;
      bases = Array.make 16 0;
      op_counts = Array.make 16 0;
      by_addr = Hashtbl.create 64;
    }
  in
  (* Reconstruct per-object op counts the same way the native backend
     counts them at execution sites: one tick per op arrival. *)
  Probe.subscribe (Engine.probe engine) (fun ev ->
      match ev with
      | Probe.Op_started { addr; _ } -> (
          match Hashtbl.find_opt t.by_addr addr with
          | Some o -> t.op_counts.(o) <- t.op_counts.(o) + 1
          | None -> ())
      | _ -> ());
  t

let engine t = t.engine
let coretime t = t.ct
let name _ = "sim"
let cores t = Engine.cores t.engine
let probe t = Engine.probe t.engine
let objects t = t.nobjs

let register t ~size ~name =
  if size <= 0 then invalid_arg "Sim_backend.register: size must be > 0";
  let ext = O2_simcore.Memsys.alloc t.mem ~name ~size in
  let base = ext.O2_simcore.Memsys.base in
  ignore (Coretime.register t.ct ~base ~size ~name ());
  let o = t.nobjs in
  if o >= Array.length t.bases then begin
    let cap = Array.length t.bases * 2 in
    let bases = Array.make cap 0 and counts = Array.make cap 0 in
    Array.blit t.bases 0 bases 0 o;
    Array.blit t.op_counts 0 counts 0 o;
    t.bases <- bases;
    t.op_counts <- counts
  end;
  t.nobjs <- o + 1;
  t.bases.(o) <- base;
  Hashtbl.replace t.by_addr base o;
  o

let spawn t ~core ~name body = ignore (Engine.spawn t.engine ~core ~name body)
let with_op t ?write obj f = Coretime.with_op t.ct ?write t.bases.(obj) f

let touch t ~write ~obj ~off ~len =
  if len > 0 then begin
    let addr = t.bases.(obj) + off in
    if write then ignore (Api.write ~addr ~len) else ignore (Api.read ~addr ~len)
  end

let compute _t cycles = Api.compute cycles
let run t = Engine.run t.engine
let ops_completed t = (Coretime.stats t.ct).Coretime.ops
let object_ops t o = t.op_counts.(o)

let ships t =
  (* Every ct_start migration is one departure and one arrival, so the
     balance invariant holds by construction on this backend. *)
  let m = (Coretime.stats t.ct).Coretime.op_migrations in
  (m, m)

let migrations t =
  (Coretime.Rebalancer.stats (Coretime.rebalancer t.ct)).Coretime.Rebalancer.moves
