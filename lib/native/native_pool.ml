(* The raw-primitive shim of lib/native: every Domain / Mutex /
   Condition use in the native backend lives here, beside the effect
   handler that interprets Api shipping on real domains — the same
   confinement discipline as Domain_pool and Shard_sync (o2staticcheck's
   raw-primitive allowlist names exactly these three files).

   Park/wake protocol: posts increment [epoch] (then broadcast iff a
   sleeper is advertised); a worker records the epoch BEFORE its final
   empty scan and only sleeps while the epoch is unchanged, re-checked
   under the mutex. A post racing the park either bumps the epoch before
   the worker's check (worker rescans) or blocks on the mutex the
   checking worker still holds until it reaches [Condition.wait] — so no
   wakeup is lost. [sleepers] is advertised before the re-check and the
   poster reads it after its bump (SC atomics: at least one side sees
   the other), so the poster skips the mutex on the fast path safely.

   Quiescence: [inflight] counts spawned client bodies not yet finished;
   the handler's retc/exnc decrement it exactly once per client no
   matter how many times the client shipped between domains. *)

open O2_runtime

type task =
  | Done  (* the dummy sentinel for Deque/Inbox; never executed *)
  | Fresh of { name : string; body : unit -> unit }
  | Resume of (unit, unit) Effect.Deep.continuation

type worker = {
  deque : task Deque.t;
  inbox : task Inbox.t;
  mutable executed : int;  (* owner-written *)
  mutable stolen : int;  (* owner-written *)
  mutable last_victim : int;  (* deque index the last successful steal hit *)
  sink : Telemetry.sink;  (* this worker's single-writer telemetry sink *)
}

type t = {
  n : int;
  tel : Telemetry.t;
  tel_on : bool;  (* Telemetry.enabled tel, cached for the hot loop *)
  coord_sink : Telemetry.sink;
  workers : worker array;
  inflight : int Atomic.t;
  epoch : int Atomic.t;  (* wake ticket: bumped by every post *)
  sleepers : int Atomic.t;
  stop : bool Atomic.t;
  error : exn option Atomic.t;  (* first client exception, kept for drain *)
  lock : Mutex.t;
  wake : Condition.t;  (* workers park here *)
  idle : Condition.t;  (* drain waits here *)
  mutable handles : unit Domain.t array;
  mutable down : bool;
}

(* Worker identity travels in domain-local storage, not in captured
   closure state: a shipped continuation resumes on another domain, and
   its handler must see the NEW domain's index (e.g. for Yield's
   re-queue). The slot also names the pool, so nested/successive pools
   cannot alias each other's indices. *)
let dls_slot : (t * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let domains t = t.n

let current_domain t =
  match Domain.DLS.get dls_slot with
  | Some (p, i) when p == t -> i
  | _ -> -1

let notify t =
  Atomic.incr t.epoch;
  if Atomic.get t.sleepers > 0 then begin
    Mutex.lock t.lock;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock
  end

let post t ~core task =
  Inbox.push t.workers.(core).inbox task;
  notify t

let record_error t e = ignore (Atomic.compare_and_set t.error None (Some e))

let finish t =
  if Atomic.fetch_and_add t.inflight (-1) = 1 then begin
    Mutex.lock t.lock;
    Condition.broadcast t.idle;
    Mutex.unlock t.lock
  end

let make_handler t =
  {
    Effect.Deep.retc = (fun () -> finish t);
    exnc =
      (fun e ->
        record_error t e;
        finish t);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Api.Ship_to core ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                post t ~core (Resume k))
        | Api.Migrate_to core ->
            (* Same delivery as shipping: on real domains there is no
               register state to drag along, only the continuation. *)
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                post t ~core (Resume k))
        | Api.Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                let me = current_domain t in
                Deque.push t.workers.(me).deque (Resume k))
        | _ -> None);
  }

let run_task w handler task =
  w.executed <- w.executed + 1;
  match task with
  | Done -> ()
  | Fresh f -> Effect.Deep.match_with f.body () handler
  | Resume k -> Effect.Deep.continue k ()

(* Thief sweep over peers' deques, round-robin from me+1. A miss (empty
   or lost race) moves on; one full silent lap gives up. A hit leaves
   the victim's index in [w.last_victim] (a plain owner-written field)
   so the telemetry event can name it without the sweep returning a
   pair. *)
let rec sweep t w me i =
  if i >= t.n then Done
  else begin
    let j = me + i in
    let j = if j >= t.n then j - t.n else j in
    let v = Deque.steal t.workers.(j).deque in
    if v != Done then begin
      w.last_victim <- j;
      v
    end
    else sweep t w me (i + 1)
  end

(* Telemetry brackets the blocking section only: a park that loses the
   epoch race before taking the mutex was never asleep and records
   nothing. *)
let park t w e =
  Atomic.incr t.sleepers;
  if Atomic.get t.epoch = e && not (Atomic.get t.stop) then begin
    if t.tel_on then Telemetry.note_park w.sink;
    Mutex.lock t.lock;
    while Atomic.get t.epoch = e && not (Atomic.get t.stop) do
      Condition.wait t.wake t.lock
    done;
    Mutex.unlock t.lock;
    if t.tel_on then Telemetry.note_wake w.sink
  end;
  Atomic.decr t.sleepers

let rec loop t w me handler on_task =
  if not (Atomic.get t.stop) then begin
    let e = Atomic.get t.epoch in
    let drained = Inbox.drain_into w.inbox on_task in
    if drained > 0 && t.tel_on then
      Telemetry.note_inbox_batch w.sink ~count:drained;
    let task = Deque.pop w.deque in
    if task != Done then begin
      run_task w handler task;
      loop t w me handler on_task
    end
    else if drained > 0 then loop t w me handler on_task
    else begin
      let stolen = sweep t w me 1 in
      if stolen != Done then begin
        w.stolen <- w.stolen + 1;
        if t.tel_on then Telemetry.note_steal w.sink ~victim:w.last_victim;
        run_task w handler stolen;
        loop t w me handler on_task
      end
      else begin
        park t w e;
        loop t w me handler on_task
      end
    end
  end

let worker_main t me () =
  Domain.DLS.set dls_slot (Some (t, me));
  let w = t.workers.(me) in
  let handler = make_handler t in
  (* Built once per worker: the drain callback runs shipped/yielded
     continuations immediately (FIFO, preserving per-object op order)
     and makes fresh client bodies stealable on the own deque. *)
  let on_task task =
    match task with
    | Resume _ -> run_task w handler task
    | Fresh _ ->
        Deque.push w.deque task;
        notify t
    | Done -> ()
  in
  loop t w me handler on_task

let create ?(telemetry = Telemetry.off) ~domains () =
  if domains < 1 then invalid_arg "Native_pool.create: domains must be >= 1";
  let sinks = Telemetry.sink_array telemetry ~n:domains in
  let worker i =
    {
      deque = Deque.create ~dummy:Done ();
      inbox = Inbox.create ~dummy:Done ();
      executed = 0;
      stolen = 0;
      last_victim = -1;
      sink = sinks.(i);
    }
  in
  let t =
    {
      n = domains;
      tel = telemetry;
      tel_on = Telemetry.enabled telemetry;
      coord_sink = Telemetry.coordinator telemetry;
      workers = Array.init domains worker;
      inflight = Atomic.make 0;
      epoch = Atomic.make 0;
      sleepers = Atomic.make 0;
      stop = Atomic.make false;
      error = Atomic.make None;
      lock = Mutex.create ();
      wake = Condition.create ();
      idle = Condition.create ();
      handles = [||];
      down = false;
    }
  in
  t.handles <- Array.init domains (fun i -> Domain.spawn (worker_main t i));
  t

let spawn t ~core ~name body =
  if core < 0 || core >= t.n then
    invalid_arg "Native_pool.spawn: core out of range";
  if t.down then invalid_arg "Native_pool.spawn: pool is shut down";
  if t.tel_on then begin
    (* Spawns come from the coordinator or from a worker; either way the
       caller owns exactly one sink. *)
    let me = current_domain t in
    let s = if me >= 0 then t.workers.(me).sink else t.coord_sink in
    Telemetry.note_spawned s ~core
  end;
  Atomic.incr t.inflight;
  Inbox.push t.workers.(core).inbox (Fresh { name; body });
  notify t

let drain t =
  if current_domain t >= 0 then
    invalid_arg "Native_pool.drain: must be called off-pool";
  Mutex.lock t.lock;
  while Atomic.get t.inflight > 0 do
    Condition.wait t.idle t.lock
  done;
  Mutex.unlock t.lock;
  match Atomic.get t.error with
  | None -> ()
  | Some e ->
      Atomic.set t.error None;
      raise e

let shutdown t =
  if not t.down then begin
    t.down <- true;
    Atomic.set t.stop true;
    Atomic.incr t.epoch;
    Mutex.lock t.lock;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.handles
  end

let tasks_executed t =
  Array.fold_left (fun acc w -> acc + w.executed) 0 t.workers

let steals t = Array.fold_left (fun acc w -> acc + w.stolen) 0 t.workers
let telemetry t = t.tel
