(** A directory-lookup workload against the backend signature — the
    read-only side of the oracle cross-check, modelled on
    {!O2_workload.Dir_workload}: each directory is one backend object
    holding [entries] 32-byte entries, and a lookup is a linear scan
    charged per probed entry ([compare_cycles] each, as FAT's 8.3
    compare is). Read-only means results are interleaving-independent
    on any backend, so this exercises shipping and rebalancing without
    the single-writer sizing constraints Backend_kv needs. *)

module Make (B : O2_runtime.Backend_intf.S) : sig
  type t

  val create :
    B.t ->
    name:string ->
    dirs:int ->
    entries_per_dir:int ->
    ?compare_cycles:int ->
    unit ->
    t
  (** Directory [d] holds entry keys [0 .. entries_per_dir - 1]; handle
      order = directory order. [compare_cycles] defaults to 2.
      @raise Invalid_argument unless both counts are positive. *)

  val dirs : t -> int
  val dir_obj : t -> int -> int

  val lookup : t -> dir:int -> key:int -> int
  (** The entry index for [key] in [dir], or [-1]. One backend op. *)
end
