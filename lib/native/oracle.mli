(** The simulator-as-oracle cross-check.

    Runs the {e same} workload program — same functor, same generated op
    sequences — on the simulator backend and on the native backend, and
    compares everything the two must agree on: per-client per-op result
    arrays (bit-identical), total completed ops, per-object op counts,
    final store size, plus the native backend's internal invariants
    (ships out = ships in). What it deliberately does {e not} pin:
    schedules, ship counts across backends, or which monitor moved what
    — see DESIGN.md, "Two backends, one API". *)

type report = {
  ok : bool;
  domains : int;  (** Native worker domains the check ran with. *)
  total_ops : int;  (** Agreed completed-op count (when [ok]). *)
  native_ships : int * int;  (** (out, in) on the native side. *)
  native_migrations : int;  (** Quiesce-point re-homings performed. *)
  native_steals : int;  (** Successful deque steals (telemetry). *)
  mismatches : string list;  (** Human-readable; empty iff [ok]. *)
}

val kv_cross_check :
  ?telemetry:O2_runtime.Telemetry.t ->
  ?clients:int ->
  ?ops_per_client:int ->
  ?rounds:int ->
  ?buckets:int ->
  ?slots_per_bucket:int ->
  ?keyspace:int ->
  ?seed:int ->
  domains:int ->
  unit ->
  report
(** Defaults: 8 clients x 240 ops x 3 rounds over 128 keys in 16
    buckets of 32 slots. Validates up front (via
    {!Op_program.max_bucket_load}) that no bucket can overflow — the
    precondition for schedule-independent [put] results — and that
    clients <= keyspace. The native monitor runs between rounds; the
    simulator's runs on virtual time as usual. [telemetry] is attached
    to the native backend — the suite uses this to pin that a flight
    recorder does not perturb results.
    @raise Invalid_argument if the sizing precondition fails. *)

val dir_cross_check :
  ?telemetry:O2_runtime.Telemetry.t ->
  ?clients:int ->
  ?ops_per_client:int ->
  ?rounds:int ->
  ?dirs:int ->
  ?entries_per_dir:int ->
  ?seed:int ->
  domains:int ->
  unit ->
  report
(** Read-only analogue over {!Backend_dir}; defaults: 8 clients x 160
    lookups x 2 rounds over 24 directories of 48 entries. *)

val pp_report : Format.formatter -> report -> unit
