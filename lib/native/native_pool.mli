(** The native execution pool: one OCaml 5 domain per "core".

    Each worker domain owns a {!Deque} (its run queue, stolen from by
    idle peers) and an {!Inbox} (cross-domain delivery: client spawns
    from the coordinator, shipped operations from other workers). The
    worker loop drains the inbox, pops its own deque, then sweeps peers'
    deques as a thief, and parks on a condition variable when the whole
    pool looks quiet — an epoch ticket read before the final scan makes
    the park race-free against concurrent posts.

    Tasks run under an {!Effect.Deep} handler that interprets the
    shipping subset of {!O2_runtime.Api}: [Ship_to]/[Migrate_to] capture
    the client's continuation and post it to the target worker's inbox
    (this is the paper's operation shipping — the op descriptor crosses,
    the data stays), and [Yield] re-queues the continuation locally.
    Continuations are resumed on whichever domain receives them;
    {!current_domain} always names the executing worker because the
    handler consults domain-local state, never a captured id.

    The pool is the only [lib/native] module touching raw [Domain] /
    [Mutex] / [Condition]; it is allowlisted in o2staticcheck's
    raw-primitive rule the same way [Domain_pool] and [Shard_sync]
    are. *)

type t

val create : ?telemetry:O2_runtime.Telemetry.t -> domains:int -> unit -> t
(** Spawn [domains] worker domains, idle until work arrives. The pool
    takes the count literally — oversubscribing the host is legal (the
    correctness tests do it); CLI entry points clamp first via
    {!O2_runtime.Domain_pool.clamped}.

    [telemetry] (default {!O2_runtime.Telemetry.off}) attaches the
    wall-clock flight recorder: each worker stamps steal / park / wake /
    inbox-batch events and counters into its own single-writer sink,
    and spawns are stamped on the caller's sink. With the default the
    instrumented paths are a cached-bool branch — pinned
    allocation-free by suite_hotpath and the o2staticcheck manifest.
    @raise Invalid_argument if [domains < 1], or if [telemetry] was
    created for a different domain count. *)

val domains : t -> int

val current_domain : t -> int
(** The worker index executing the caller, or [-1] off-pool (the
    coordinator). Valid inside client bodies wherever they ran. *)

val spawn : t -> core:int -> name:string -> (unit -> unit) -> unit
(** Queue a client body on worker [core]'s inbox (it may later be stolen
    by an idle peer). Callable from the coordinator or from a worker.
    @raise Invalid_argument if [core] is out of range. *)

val drain : t -> unit
(** Block the coordinator until every spawned client has finished. If
    any client raised, the first exception recorded is re-raised here
    (after quiescence). Workers stay alive, parked, for the next batch. *)

val shutdown : t -> unit
(** Stop and join every worker. The pool must be quiescent ({!drain}
    returned). Idempotent. *)

val tasks_executed : t -> int
(** Tasks run across all workers (client bodies plus resumed shipped /
    yielded continuations) — telemetry; stable only at quiescence. *)

val steals : t -> int
(** Successful deque steals across all workers; stable at quiescence. *)

val telemetry : t -> O2_runtime.Telemetry.t
(** The telemetry handed to {!create} ([Telemetry.off] if none). *)
