(** The native backend: the O2 object/operation model on real domains.

    Implements {!O2_runtime.Backend_intf.S} over a {!Native_pool}. Every
    registered object has a {e home domain}; an operation submitted from
    anywhere else is shipped — [Api.ship_to] captures the client's
    continuation and posts it to the home's inbox — so object state is
    only ever touched by its home domain's worker. That single-writer
    discipline is the backend's whole data-race story: no per-object
    locks, and ops on one object execute in inbox FIFO order.

    The monitor is a quiesce-point rebalancer: {!rebalance} may only run
    between {!run} batches (inflight = 0), when no client is executing,
    so re-homing never races an op in flight and per-object op order is
    preserved across the move. It re-homes each object to its dominant
    submitting domain since the last call and then spills load off
    overloaded homes — the wall-clock analogue of the simulator's
    periodic {!Coretime.Rebalancer}. *)

type t

val create : ?telemetry:O2_runtime.Telemetry.t -> domains:int -> unit -> t
(** Spawns the worker pool (see {!Native_pool.create} — the count is
    taken literally; clamp at the CLI with
    {!O2_runtime.Domain_pool.clamped}). Freshly registered objects are
    homed round-robin across domains until the monitor moves them.

    [telemetry] (default {!O2_runtime.Telemetry.off}) additionally
    instruments the op path: every [with_op] stamps submit / ship /
    start / end span events (1-in-[sample]) and feeds the wall-clock
    latency accumulators, carrying its timestamps in locals across the
    ship so submit-to-end covers the whole handoff. {!rebalance} and
    {!run} stamp rebalance / quiesce instants on the coordinator
    sink. *)

val shutdown : t -> unit
(** Join the pool. Required before discarding the backend; idempotent. *)

val rebalance : t -> unit
(** One monitor step at a quiesce point. Re-homes objects to their
    dominant submitter, spills overloaded homes to the least loaded
    domain, snapshots the submit counters for the next period, and emits
    [Probe.Rebalanced] when the probe is active.
    @raise Invalid_argument if called from a pool worker. *)

val pool : t -> Native_pool.t
val home : t -> int -> int
(** The object's current home domain. *)

val telemetry : t -> O2_runtime.Telemetry.t
(** The telemetry handed to {!create} ([Telemetry.off] if none). *)

(** The {!O2_runtime.Backend_intf.S} surface. *)

val name : t -> string
val cores : t -> int
val probe : t -> O2_runtime.Probe.t
val register : t -> size:int -> name:string -> int
val objects : t -> int
val spawn : t -> core:int -> name:string -> (unit -> unit) -> unit
val with_op : t -> ?write:bool -> int -> (unit -> 'a) -> 'a
val touch : t -> write:bool -> obj:int -> off:int -> len:int -> unit
val compute : t -> int -> unit
val run : t -> unit
val ops_completed : t -> int
val object_ops : t -> int -> int
val ships : t -> int * int
val migrations : t -> int
