type op = Get of int | Put of int * int | Delete of int

(* xorshift64*, truncated to OCaml's 63-bit int. Self-contained so the
   native library stays independent of lib/workload's Rng. *)
type rng = { mutable s : int }

let make_rng seed = { s = (if seed = 0 then 0x2545F4914F6CDD1D else seed) }

let next r =
  let s = r.s in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  r.s <- s;
  s land max_int

let below r bound = next r mod bound

let kv_program ~clients ~client ~ops ~keyspace ~seed =
  if clients <= 0 || ops < 0 then
    invalid_arg "Op_program.kv_program: counts must be positive";
  if client < 0 || client >= clients then
    invalid_arg "Op_program.kv_program: client out of range";
  if keyspace < clients then
    invalid_arg "Op_program.kv_program: keyspace must cover every client";
  let r = make_rng (seed + (0x1000 * client) + 1) in
  let own_keys = (keyspace - client + clients - 1) / clients in
  let key () = client + (clients * below r own_keys) in
  Array.init ops (fun _ ->
      let roll = below r 100 in
      if roll < 60 then Get (key ())
      else if roll < 90 then Put (key (), below r 1_000_000)
      else Delete (key ()))

let kv_result op ~raw = match op with Get _ -> raw + 1 | _ -> raw

let dir_program ~dirs ~entries_per_dir ~ops ~seed =
  if dirs <= 0 || entries_per_dir <= 0 || ops < 0 then
    invalid_arg "Op_program.dir_program: counts must be positive";
  let r = make_rng (seed + 0x5eed) in
  Array.init ops (fun _ -> (below r dirs, below r (entries_per_dir + 4)))

let max_bucket_load ~buckets ~keyspace =
  if buckets <= 0 || keyspace <= 0 then
    invalid_arg "Op_program.max_bucket_load: counts must be positive";
  let load = Array.make buckets 0 in
  for key = 0 to keyspace - 1 do
    let h = key * 0x2545F491 land max_int in
    let b = h mod buckets in
    load.(b) <- load.(b) + 1
  done;
  Array.fold_left max 0 load
