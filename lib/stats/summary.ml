type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.percentile: q out of range";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let of_array a =
  let n = Array.length a in
  if n = 0 then None
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    let sum = Array.fold_left ( +. ) 0.0 a in
    let mean = sum /. float_of_int n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a
      /. float_of_int n
    in
    Some
      {
        n;
        mean;
        stddev = sqrt var;
        min = sorted.(0);
        max = sorted.(n - 1);
        p50 = percentile sorted 0.5;
        p90 = percentile sorted 0.9;
        p99 = percentile sorted 0.99;
        p999 = percentile sorted 0.999;
      }
  end

let of_list l = of_array (Array.of_list l)

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f p999=%.2f \
     max=%.2f"
    t.n t.mean t.stddev t.min t.p50 t.p90 t.p99 t.p999 t.max
