(** Summary statistics over float samples. *)

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
}

val of_list : float list -> t option
(** [None] on an empty list. *)

val of_array : float array -> t option
val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0,1]; linear interpolation.
    @raise Invalid_argument on empty input or q outside [0,1]. *)

val pp : Format.formatter -> t -> unit
