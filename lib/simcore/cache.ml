type level = L1 | L2 | L3

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable fills : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type t = { level : level; owner : int; lru : Lru.t; stats : stats }

let create level ~owner ~cap_bytes ~line_bytes =
  if cap_bytes < line_bytes then
    invalid_arg "Cache.create: capacity smaller than one line";
  {
    level;
    owner;
    lru = Lru.create ~cap:(cap_bytes / line_bytes);
    stats = { hits = 0; misses = 0; fills = 0; evictions = 0; invalidations = 0 };
  }

let level t = t.level
let owner t = t.owner
let capacity_lines t = Lru.capacity t.lru
let resident_lines t = Lru.length t.lru
let stats t = t.stats

let probe t line =
  if Lru.touch t.lru line then (
    t.stats.hits <- t.stats.hits + 1;
    true)
  else (
    t.stats.misses <- t.stats.misses + 1;
    false)

let contains t line = Lru.mem t.lru line

let fill_evict t line =
  t.stats.fills <- t.stats.fills + 1;
  let victim = Lru.add_evict t.lru line in
  if victim >= 0 then t.stats.evictions <- t.stats.evictions + 1;
  victim

let fill t line =
  let victim = fill_evict t line in
  if victim < 0 then None else Some victim

let invalidate t line =
  let present = Lru.remove t.lru line in
  if present then t.stats.invalidations <- t.stats.invalidations + 1;
  present

let drop t line = Lru.remove t.lru line
let iter_lines f t = Lru.iter f t.lru
let clear t = Lru.clear t.lru

let level_to_string = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3"

let name t =
  Printf.sprintf "%s[%s%d]" (level_to_string t.level)
    (match t.level with L3 -> "chip" | L1 | L2 -> "core")
    t.owner
