type level = L1 | L2 | L3

(* A thin shell over the flat Lru arrays: identity (level/owner, for
   observers and reports) plus the watcher hook. Hit/miss accounting
   lives in the per-core Counters the experiments actually read — this
   record deliberately carries no per-cache stat fields, so a probe is
   exactly an Lru touch. *)
type t = {
  level : level;
  owner : int;
  lru : Lru.t;
  mutable watcher : watcher option;
}

and watcher = {
  on_fill : t -> line:int -> victim:int -> unit;
  on_remove : t -> line:int -> unit;
}

let create level ~owner ~cap_bytes ~line_bytes =
  if cap_bytes < line_bytes then
    invalid_arg "Cache.create: capacity smaller than one line";
  { level; owner; lru = Lru.create ~cap:(cap_bytes / line_bytes); watcher = None }

let set_watcher t w = t.watcher <- w
let watched t = t.watcher <> None

let level t = t.level
let owner t = t.owner
let capacity_lines t = Lru.capacity t.lru
let resident_lines t = Lru.length t.lru

let probe t line = Lru.touch t.lru line
let contains t line = Lru.mem t.lru line

let fill_evict t line =
  let victim = Lru.add_evict t.lru line in
  (match t.watcher with
  | None -> ()
  | Some w -> w.on_fill t ~line ~victim);
  victim

let notify_remove t line =
  match t.watcher with None -> () | Some w -> w.on_remove t ~line

let invalidate t line =
  let present = Lru.remove t.lru line in
  if present then notify_remove t line;
  present

let drop t line =
  let present = Lru.remove t.lru line in
  if present then notify_remove t line;
  present

let iter_lines f t = Lru.iter f t.lru

let clear t =
  (match t.watcher with
  | None -> ()
  | Some w -> Lru.iter (fun line -> w.on_remove t ~line) t.lru);
  Lru.clear t.lru

let level_to_string = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3"

let name t =
  Printf.sprintf "%s[%s%d]" (level_to_string t.level)
    (match t.level with L3 -> "chip" | L1 | L2 -> "core")
    t.owner
