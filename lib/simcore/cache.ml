type level = L1 | L2 | L3

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable fills : int;
  mutable evictions : int;
  mutable invalidations : int;
}

type t = {
  level : level;
  owner : int;
  lru : Lru.t;
  stats : stats;
  mutable watcher : watcher option;
}

and watcher = {
  on_fill : t -> line:int -> victim:int -> unit;
  on_remove : t -> line:int -> unit;
}

let create level ~owner ~cap_bytes ~line_bytes =
  if cap_bytes < line_bytes then
    invalid_arg "Cache.create: capacity smaller than one line";
  {
    level;
    owner;
    lru = Lru.create ~cap:(cap_bytes / line_bytes);
    stats = { hits = 0; misses = 0; fills = 0; evictions = 0; invalidations = 0 };
    watcher = None;
  }

let set_watcher t w = t.watcher <- w
let watched t = t.watcher <> None

let level t = t.level
let owner t = t.owner
let capacity_lines t = Lru.capacity t.lru
let resident_lines t = Lru.length t.lru
let stats t = t.stats

let probe t line =
  if Lru.touch t.lru line then (
    t.stats.hits <- t.stats.hits + 1;
    true)
  else (
    t.stats.misses <- t.stats.misses + 1;
    false)

let contains t line = Lru.mem t.lru line

let fill_evict t line =
  t.stats.fills <- t.stats.fills + 1;
  let victim = Lru.add_evict t.lru line in
  if victim >= 0 then t.stats.evictions <- t.stats.evictions + 1;
  (match t.watcher with
  | None -> ()
  | Some w -> w.on_fill t ~line ~victim);
  victim

let fill t line =
  let victim = fill_evict t line in
  if victim < 0 then None else Some victim

let notify_remove t line =
  match t.watcher with None -> () | Some w -> w.on_remove t ~line

let invalidate t line =
  let present = Lru.remove t.lru line in
  if present then begin
    t.stats.invalidations <- t.stats.invalidations + 1;
    notify_remove t line
  end;
  present

let drop t line =
  let present = Lru.remove t.lru line in
  if present then notify_remove t line;
  present

let iter_lines f t = Lru.iter f t.lru

let clear t =
  (match t.watcher with
  | None -> ()
  | Some w -> Lru.iter (fun line -> w.on_remove t ~line) t.lru);
  Lru.clear t.lru

let level_to_string = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3"

let name t =
  Printf.sprintf "%s[%s%d]" (level_to_string t.level)
    (match t.level with L3 -> "chip" | L1 | L2 -> "core")
    t.owner
