type t = { cfg : Config.t; width : int }

let create cfg =
  let rec width n = if n * n >= cfg.Config.chips then n else width (n + 1) in
  { cfg; width = width 1 }

(* Chips sit on a [width]-wide grid: chip [c] is at
   [(c mod width, c / width)]. [hops] keeps the coordinates as bare ints —
   it runs on the locate path of every simulated cache miss, and a
   tuple-returning [coords] helper would box per chip visited. *)
let hops t a b =
  abs ((a mod t.width) - (b mod t.width))
  + abs ((a / t.width) - (b / t.width))

let max_hops t =
  let n = t.cfg.Config.chips in
  let best = ref 0 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if hops t a b > !best then best := hops t a b
    done
  done;
  !best

let remote_cache_latency t ~from_chip ~to_chip =
  t.cfg.Config.remote_same_chip
  + (hops t from_chip to_chip * t.cfg.Config.remote_hop)

let dram_latency t ~from_chip ~home_chip =
  t.cfg.Config.dram_latency
  + (hops t from_chip home_chip * t.cfg.Config.dram_hop)

let home_chip t ~addr = addr / t.cfg.Config.page_bytes mod t.cfg.Config.chips

let pp ppf t =
  Format.fprintf ppf "%d chips on a %dx%d grid (max %d hops)"
    t.cfg.Config.chips t.width
    ((t.cfg.Config.chips + t.width - 1) / t.width)
    (max_hops t)
