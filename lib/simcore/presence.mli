(** Coherence presence directory: for every cached line, which cores hold a
    copy in their private hierarchy (L1 or L2) and which chips hold one in
    their shared L3.

    This mirrors the broadcast/snoop information the AMD interconnect
    carries: a read miss consults it to find the nearest copy; a write
    consults it to invalidate every other copy. It is a pure bookkeeping
    structure — {!Machine} is responsible for keeping it consistent with
    the per-cache LRU contents (a property the test suite checks).

    Storage is flat struct-of-arrays: the line number indexes directly
    into per-line mask arrays (no hashing, no per-line records). Core
    masks are 32 bits per word so topologies wider than an OCaml int
    (64–256 cores) work; chip masks are one int per line (<= 62 chips,
    validated by {!Machine}). Lookups never allocate; updates allocate
    only when the arrays double to cover a new highest line. *)

type t

val create : cores:int -> t
(** [create ~cores] — [cores] fixes the core-mask width (number of
    32-bit words per line). Raises [Invalid_argument] if [cores <= 0]. *)

val words : t -> int
(** Number of 32-bit core-mask words per line. *)

val set_core : t -> line:int -> core:int -> unit
(** Record that [core]'s private hierarchy now holds [line]. *)

val clear_core : t -> line:int -> core:int -> unit

val set_chip : t -> line:int -> chip:int -> unit
(** Record that [chip]'s L3 now holds [line]. *)

val clear_chip : t -> line:int -> chip:int -> unit

val core_word : t -> line:int -> w:int -> int
(** [core_word t ~line ~w] is the [w]th 32-bit word of [line]'s core
    mask: core [c] is bit [c land 31] of word [c lsr 5]. *)

val core_holders : t -> line:int -> int
(** Bitmask of cores whose private caches hold [line]. Only valid for
    configs of at most 62 cores (every bit fits one OCaml int); raises
    [Invalid_argument] on wider ones — use {!core_word} there. *)

val chip_holders : t -> line:int -> int
(** Bitmask of chips whose L3 holds [line]. *)

val cached_anywhere : t -> line:int -> bool

val nearest_core_holder :
  t -> line:int -> exclude_core:int -> chip_of:int array -> from_chip:int ->
  hops:int array -> nchips:int -> int
(** The holder core (other than [exclude_core]) whose chip is fewest hops
    from [from_chip]; ties broken by lowest core id. [-1] when no other
    core holds the line — a bare int rather than an option, because this
    runs on the miss path of every simulated load and must not allocate.
    [chip_of] maps core to chip and [hops] is the flat row-major
    [nchips * nchips] hop matrix, both prebuilt by {!Machine}. *)

val nearest_chip_holder :
  t -> line:int -> exclude_chip:int -> from_chip:int ->
  hops:int array -> nchips:int -> int
(** Nearest chip (other than [exclude_chip]) whose L3 holds [line]; [-1]
    when none. *)

val tracked_lines : t -> int
(** Number of lines with at least one holder (for tests/metrics). *)

val popcount : int -> int
(** Bits set in a holder mask. *)

val bit_index : int -> int -> int
(** [bit_index b i] is the index of the single set bit in [b], plus [i]
    ([b] must be a power of two — typically [m land -m]). *)

val core_popcount : t -> line:int -> int
(** Cores privately holding [line] (popcount across all mask words). *)

val replicated_lines : t -> int
(** Lines held in the private hierarchy of two or more cores — data the
    hardware is replicating rather than the scheduler partitioning (the
    cache observatory reports this alongside occupancy). *)

val iter_lines : (int -> unit) -> t -> unit
(** Iterate over lines with at least one holder, in ascending line order. *)
