(** Coherence presence directory: for every cached line, which cores hold a
    copy in their private hierarchy (L1 or L2) and which chips hold one in
    their shared L3.

    This mirrors the broadcast/snoop information the AMD interconnect
    carries: a read miss consults it to find the nearest copy; a write
    consults it to invalidate every other copy. It is a pure bookkeeping
    structure — {!Machine} is responsible for keeping it consistent with
    the per-cache LRU contents (a property the test suite checks). *)

type t

val create : unit -> t

val set_core : t -> line:int -> core:int -> unit
(** Record that [core]'s private hierarchy now holds [line]. *)

val clear_core : t -> line:int -> core:int -> unit

val set_chip : t -> line:int -> chip:int -> unit
(** Record that [chip]'s L3 now holds [line]. *)

val clear_chip : t -> line:int -> chip:int -> unit

val core_holders : t -> line:int -> int
(** Bitmask of cores whose private caches hold [line]. *)

val chip_holders : t -> line:int -> int
(** Bitmask of chips whose L3 holds [line]. *)

val cached_anywhere : t -> line:int -> bool

val nearest_core_holder :
  t -> line:int -> exclude_core:int -> chip_of_core:(int -> int) -> from_chip:int ->
  hops:(int -> int -> int) -> int
(** The holder core (other than [exclude_core]) whose chip is fewest hops
    from [from_chip]; ties broken by lowest core id. [-1] when no other
    core holds the line — a bare int rather than an option, because this
    runs on the miss path of every simulated load and must not allocate. *)

val nearest_chip_holder :
  t -> line:int -> exclude_chip:int -> from_chip:int ->
  hops:(int -> int -> int) -> int
(** Nearest chip (other than [exclude_chip]) whose L3 holds [line]; [-1]
    when none. *)

val tracked_lines : t -> int
(** Number of lines with at least one holder (for tests/metrics). *)

val popcount : int -> int
(** Bits set in a holder mask. *)

val replicated_lines : t -> int
(** Lines held in the private hierarchy of two or more cores — data the
    hardware is replicating rather than the scheduler partitioning (the
    cache observatory reports this alongside occupancy). *)

val iter : (int -> cores:int -> chips:int -> unit) -> t -> unit
