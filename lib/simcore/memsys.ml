type obj_id = int
type extent = { id : obj_id; base : int; size : int; name : string }

(* Ids are handed out densely (the n-th allocation gets id n) and the bump
   allocator only ever grows upward, so [exts] is simultaneously sorted by
   base *and* indexed by id: [exts.(i).id = i]. That makes the id lookup a
   bounds-checked array read, and lets the address lookups binary-search the
   flat [bases]/[sizes] int arrays instead of chasing extent records — the
   arrays stay hot in cache across the simulator's per-access attribution
   calls. *)
type t = {
  line_bytes : int;
  mutable next_addr : int;
  mutable exts : extent array;  (* sorted by base = id order; append-only *)
  mutable bases : int array;    (* bases.(i) = exts.(i).base *)
  mutable sizes : int array;    (* sizes.(i) = exts.(i).size *)
  mutable count : int;
}

let create ?(base = 0x1000) ~line_bytes () =
  if line_bytes <= 0 then invalid_arg "Memsys.create: line_bytes";
  {
    line_bytes;
    next_addr = base;
    exts = [||];
    bases = [||];
    sizes = [||];
    count = 0;
  }

let round_up v align = (v + align - 1) / align * align

let push t ext =
  if t.count = Array.length t.exts then begin
    let cap = max 64 (2 * t.count) in
    let bigger = Array.make cap ext in
    Array.blit t.exts 0 bigger 0 t.count;
    t.exts <- bigger;
    let bigger_b = Array.make cap 0 in
    Array.blit t.bases 0 bigger_b 0 t.count;
    t.bases <- bigger_b;
    let bigger_s = Array.make cap 0 in
    Array.blit t.sizes 0 bigger_s 0 t.count;
    t.sizes <- bigger_s
  end;
  t.exts.(t.count) <- ext;
  t.bases.(t.count) <- ext.base;
  t.sizes.(t.count) <- ext.size;
  t.count <- t.count + 1

let alloc t ~name ~size =
  if size <= 0 then invalid_arg "Memsys.alloc: size must be positive";
  let size = round_up size t.line_bytes in
  let base = t.next_addr in
  let id = t.count in
  let ext = { id; base; size; name } in
  t.next_addr <- base + size;
  push t ext;
  ext

let alloc_isolated t ~name ~size =
  (* A line-aligned allocation of whole lines never shares a line with a
     neighbour, but make the isolation explicit by padding to at least one
     full line on its own. *)
  let size = max size t.line_bytes in
  alloc t ~name ~size

let find t id =
  if id >= 0 && id < t.count then
    (Some t.exts.(id) [@alloc_ok "the option result is the only allocation"])
  else None

let find_exn t id =
  if id >= 0 && id < t.count then t.exts.(id)
  else invalid_arg (Printf.sprintf "Memsys.find_exn: no object %d" id)

(* Index of the last extent with base <= [addr] in bases.(lo..hi); the
   search runs on every attributed access, so it recurses on ints rather
   than allocating ref cells. *)
let rec bsearch bases addr lo hi =
  if lo >= hi then lo
  else begin
    let mid = (lo + hi + 1) / 2 in
    if Array.unsafe_get bases mid <= addr then bsearch bases addr mid hi
    else bsearch bases addr lo (mid - 1)
  end

(* Index of the extent that actually contains [addr], or -1. Pure
   int-array binary search; shared by both lookup entry points. *)
let index_at t ~addr =
  if t.count = 0 then -1
  else begin
    let bases = t.bases in
    let i = bsearch bases addr 0 (t.count - 1) in
    if Array.unsafe_get bases i <= addr
       && addr < Array.unsafe_get bases i + Array.unsafe_get t.sizes i
    then i
    else -1
  end

let object_at t ~addr =
  match index_at t ~addr with -1 -> None | i -> Some t.exts.(i)

(* Allocation-free variant of [object_at] for the observatory's access
   attribution: the id of the extent containing [addr], or -1. Runs once
   per observed cache fill, so it must not box an option. *)
let object_id_at t ~addr = index_at t ~addr

let extents t = Array.to_list (Array.sub t.exts 0 t.count)

let lines_of t ext =
  let first = ext.base / t.line_bytes in
  let last = (ext.base + ext.size - 1) / t.line_bytes in
  last - first + 1

let brk t = t.next_addr
let size t = t.count
