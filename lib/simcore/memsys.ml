type obj_id = int
type extent = { id : obj_id; base : int; size : int; name : string }

type t = {
  line_bytes : int;
  mutable next_addr : int;
  mutable exts : extent array;  (* sorted by base; grows append-only *)
  mutable count : int;
  by_id : (obj_id, extent) Hashtbl.t;
}

let create ?(base = 0x1000) ~line_bytes () =
  if line_bytes <= 0 then invalid_arg "Memsys.create: line_bytes";
  {
    line_bytes;
    next_addr = base;
    exts = [||];
    count = 0;
    by_id = Hashtbl.create 1024;
  }

let round_up v align = (v + align - 1) / align * align

let push t ext =
  if t.count = Array.length t.exts then begin
    let cap = max 64 (2 * t.count) in
    let bigger = Array.make cap ext in
    Array.blit t.exts 0 bigger 0 t.count;
    t.exts <- bigger
  end;
  t.exts.(t.count) <- ext;
  t.count <- t.count + 1

let alloc t ~name ~size =
  if size <= 0 then invalid_arg "Memsys.alloc: size must be positive";
  let size = round_up size t.line_bytes in
  let base = t.next_addr in
  let id = t.count in
  let ext = { id; base; size; name } in
  t.next_addr <- base + size;
  push t ext;
  Hashtbl.add t.by_id id ext;
  ext

let alloc_isolated t ~name ~size =
  (* A line-aligned allocation of whole lines never shares a line with a
     neighbour, but make the isolation explicit by padding to at least one
     full line on its own. *)
  let size = max size t.line_bytes in
  alloc t ~name ~size

let find t id = Hashtbl.find_opt t.by_id id

let find_exn t id =
  match find t id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Memsys.find_exn: no object %d" id)

let object_at t ~addr =
  (* Binary search for the last extent with base <= addr. *)
  if t.count = 0 then None
  else begin
    let lo = ref 0 and hi = ref (t.count - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.exts.(mid).base <= addr then lo := mid else hi := mid - 1
    done;
    let e = t.exts.(!lo) in
    if e.base <= addr && addr < e.base + e.size then Some e else None
  end

(* Allocation-free variant of [object_at] for the observatory's access
   attribution: the id of the extent containing [addr], or -1. Runs once
   per observed cache fill, so it must not box an option. *)
let object_id_at t ~addr =
  if t.count = 0 then -1
  else begin
    let lo = ref 0 and hi = ref (t.count - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.exts.(mid).base <= addr then lo := mid else hi := mid - 1
    done;
    let e = t.exts.(!lo) in
    if e.base <= addr && addr < e.base + e.size then e.id else -1
  end

let extents t = Array.to_list (Array.sub t.exts 0 t.count)

let lines_of t ext =
  let first = ext.base / t.line_bytes in
  let last = (ext.base + ext.size - 1) / t.line_bytes in
  last - first + 1

let brk t = t.next_addr
let size t = t.count
