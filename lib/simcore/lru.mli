(** A fixed-capacity LRU set of integer keys (cache lines), with O(1)
    membership, touch, insert and remove.

    This is the replacement machinery shared by every simulated cache
    level. Keys are arbitrary ints (line numbers); the set never holds more
    than [capacity] keys — inserting into a full set evicts the least
    recently used key and returns it. *)

type t

val create : cap:int -> t
(** [create ~cap] is an empty set holding at most [cap] keys.
    @raise Invalid_argument if [cap <= 0]. *)

val capacity : t -> int
val length : t -> int
val mem : t -> int -> bool

val touch : t -> int -> bool
(** [touch t k] moves [k] to most-recently-used position; returns whether
    [k] was present. *)

val add : t -> int -> int option
(** [add t k] inserts [k] as most-recently-used. Returns [Some victim] if a
    least-recently-used key had to be evicted, [None] otherwise. Adding a
    present key just touches it (returns [None]). Allocating wrapper over
    {!add_evict}. *)

val add_evict : t -> int -> int
(** [add_evict t k] is {!add} without the option: returns the evicted key,
    or [-1] when nothing was evicted. Allocation-free; assumes keys are
    non-negative (cache line numbers are). *)

val remove : t -> int -> bool
(** [remove t k] deletes [k]; returns whether it was present. *)

val lru_key : t -> int option
(** The key that would be evicted next, if any. *)

val iter : (int -> unit) -> t -> unit
(** Iterate keys from most to least recently used. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
(** Fold keys from most to least recently used. *)

val to_list : t -> int list
(** Keys from most to least recently used. *)

val clear : t -> unit

val check_invariants : t -> (unit, string) result
(** Used by the property tests: list and table agree, no duplicates,
    length within capacity. *)
