(** The simulated physical address space and object registry.

    A bump allocator hands out address ranges; each allocation is a named
    extent so that cache lines can be mapped back to the object they belong
    to (used for the Figure 2 cache-contents snapshot and by CoreTime's
    object table, which identifies objects by address exactly as the
    paper's [ct_start(o)] does). *)

type obj_id = int

type extent = {
  id : obj_id;
  base : int;  (** First byte of the extent. *)
  size : int;  (** Bytes. *)
  name : string;
}

type t

val create : ?base:int -> line_bytes:int -> unit -> t
(** [base] defaults to [0x1000]; allocations are line-aligned. *)

val alloc : t -> name:string -> size:int -> extent
(** Allocate [size] bytes (rounded up to whole lines), line-aligned.
    @raise Invalid_argument if [size <= 0]. *)

val alloc_isolated : t -> name:string -> size:int -> extent
(** Like {!alloc} but padded so the extent shares no cache line with any
    other allocation (used for locks, to avoid false sharing). *)

val find : t -> obj_id -> extent option
(** O(1): ids are dense allocation indices, so this is an array read. *)

val find_exn : t -> obj_id -> extent
val object_at : t -> addr:int -> extent option
(** The extent containing [addr], if any. Binary search over flat
    base/size int arrays. *)

val object_id_at : t -> addr:int -> obj_id
(** Like {!object_at} but returns the extent's id, or [-1] when [addr] is
    unmapped. Allocation-free — the cache observatory attributes every
    observed fill and eviction through this. *)

val extents : t -> extent list
(** All extents in allocation (= address) order. *)

val lines_of : t -> extent -> int
(** Number of cache lines the extent spans. *)

val brk : t -> int
(** First unallocated address. *)

val size : t -> int
(** Number of extents allocated. *)
