(** Growable unboxed-int vector for the shard outbox logs.

    [push]/[clear] are allocation-free in the steady state (the backing
    array doubles amortized and never shrinks), which is what lets the
    per-window shard loop stay at zero minor allocations. *)

type t

val create : ?cap:int -> unit -> t
val push : t -> int -> unit
val length : t -> int
val get : t -> int -> int
val unsafe_get : t -> int -> int
val clear : t -> unit
(** Reset length to 0, keeping capacity. *)

val is_empty : t -> bool
val iter : (int -> unit) -> t -> unit
