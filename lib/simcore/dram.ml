type controller = { mutable free_at : int; mutable served : int }

type t = {
  cfg : Config.t;
  topo : Topology.t;
  controllers : controller array;
  (* Per-window reservation deltas for the sharded engine: when a shard's
     DRAM mirror tracks deltas, every fetch also records (service cycles,
     lines) per home bank, and at the window barrier each peer mirror
     absorbs them. Off (and free) for the serial engine. *)
  mutable track_deltas : bool;
  delta_service : int array;
  delta_lines : int array;
}

let create cfg topo =
  {
    cfg;
    topo;
    controllers =
      Array.init cfg.Config.chips (fun _ -> { free_at = 0; served = 0 });
    track_deltas = false;
    delta_service = Array.make cfg.Config.chips 0;
    delta_lines = Array.make cfg.Config.chips 0;
  }

let fetch t ~now ~from_chip ~home_chip ~lines =
  if lines <= 0 then 0
  else begin
    let c = t.controllers.(home_chip) in
    let start = max now c.free_at in
    let service = lines * t.cfg.Config.dram_service in
    c.free_at <- start + service;
    c.served <- c.served + lines;
    if t.track_deltas then begin
      t.delta_service.(home_chip) <- t.delta_service.(home_chip) + service;
      t.delta_lines.(home_chip) <- t.delta_lines.(home_chip) + lines
    end;
    let latency = Topology.dram_latency t.topo ~from_chip ~home_chip in
    start - now + latency + service
  end

let enable_delta_tracking t = t.track_deltas <- true

(* Fold [src]'s window deltas into [dst]'s controller state. Reservations
   made by a peer shard during [window_start, window_start + delta) are
   re-played here as a single blocked reservation starting no earlier than
   [window_start]: if the bank was already booked into the future, the peer
   traffic extends the queue; if it was idle, it occupies the window. This
   keeps every mirror within one window of the true global bank queue, and
   the merge (max then add) is order-independent across sources. *)
let absorb dst ~src ~window_start =
  for bank = 0 to Array.length dst.controllers - 1 do
    let service = src.delta_service.(bank) in
    if service > 0 then begin
      let c = dst.controllers.(bank) in
      c.free_at <- max c.free_at window_start + service;
      c.served <- c.served + src.delta_lines.(bank)
    end
  done

let clear_deltas t =
  Array.fill t.delta_service 0 (Array.length t.delta_service) 0;
  Array.fill t.delta_lines 0 (Array.length t.delta_lines) 0

let controller_free_at t ~chip = t.controllers.(chip).free_at
let lines_served t ~chip = t.controllers.(chip).served

let total_lines_served t =
  Array.fold_left (fun acc c -> acc + c.served) 0 t.controllers

let utilization t ~now =
  if now <= 0 then 0.0
  else begin
    let busy =
      Array.fold_left
        (fun acc c ->
          acc +. float_of_int (c.served * t.cfg.Config.dram_service))
        0.0 t.controllers
    in
    busy /. (float_of_int now *. float_of_int (Array.length t.controllers))
  end

let reset t =
  Array.iter
    (fun c ->
      c.free_at <- 0;
      c.served <- 0)
    t.controllers
