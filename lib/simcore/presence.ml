(* Flat per-line holder arrays, indexed directly by line number: no
   hashing, no probe chains, no per-line records. Lines are dense small
   ints (the memory map allocates from a low base), so [chips_.(line)]
   and the [words]-wide slice of [cores_] at [line * words] are the whole
   directory entry. This sits on the miss path of every simulated load —
   lookups are a bounds check and one or two array loads, and nothing on
   the lookup or update path allocates (growth is amortized doubling,
   marked [@alloc_ok] for the static manifest).

   Core masks are stored 32 bits per word so configs wider than an OCaml
   int (future64's 64 cores, or 256-core sweeps) still work: core [c]
   lives in word [c lsr 5], bit [c land 31]. Chip masks stay one int per
   line — Machine validates chips <= 62. *)

type t = {
  ncores : int;
  words : int;  (* 32-bit core-mask words per line *)
  mutable cap : int;  (* lines covered by the arrays *)
  mutable cores_ : int array;  (* line * words + w -> core mask word *)
  mutable chips_ : int array;  (* line -> chip mask *)
  mutable size : int;  (* lines with at least one holder *)
}

let bits_per_word = 32

let create ~cores =
  if cores <= 0 then invalid_arg "Presence.create: cores must be positive";
  let words = (cores + bits_per_word - 1) / bits_per_word in
  let cap = 4096 in
  {
    ncores = cores;
    words;
    cap;
    cores_ = Array.make (cap * words) 0;
    chips_ = Array.make cap 0;
    size = 0;
  }

let words t = t.words

(* Grow to cover [line]: amortized doubling, off the steady-state path
   (a line is grown past at most once per run). *)
let grow t line =
  let rec next cap = if cap > line then cap else next (2 * cap) in
  let cap = next (2 * t.cap) in
  let cores_ = Array.make (cap * t.words) 0 in
  Array.blit t.cores_ 0 cores_ 0 (t.cap * t.words);
  let chips_ = Array.make cap 0 in
  Array.blit t.chips_ 0 chips_ 0 t.cap;
  t.cores_ <- cores_;
  t.chips_ <- chips_;
  t.cap <- cap
  [@@alloc_ok "amortized doubling of the per-line arrays"]

(* Whether [line]'s entry is all-zero, scanning its core words. [words]
   is 1 for <= 32 cores, 2 for future64 — the scan is a couple of loads. *)
let rec words_empty t base w =
  w < 0 || (t.cores_.(base + w) = 0 && words_empty t base (w - 1))

let line_empty t line =
  t.chips_.(line) = 0 && words_empty t (line * t.words) (t.words - 1)

let set_core t ~line ~core =
  if line >= t.cap then grow t line;
  let was_empty = line_empty t line in
  let i = (line * t.words) + (core lsr 5) in
  t.cores_.(i) <- t.cores_.(i) lor (1 lsl (core land 31));
  if was_empty then t.size <- t.size + 1

let set_chip t ~line ~chip =
  if line >= t.cap then grow t line;
  let was_empty = line_empty t line in
  t.chips_.(line) <- t.chips_.(line) lor (1 lsl chip);
  if was_empty then t.size <- t.size + 1

let clear_core t ~line ~core =
  if line < t.cap then begin
    let i = (line * t.words) + (core lsr 5) in
    let m = t.cores_.(i) in
    let m' = m land lnot (1 lsl (core land 31)) in
    if m' <> m then begin
      t.cores_.(i) <- m';
      if line_empty t line then t.size <- t.size - 1
    end
  end

let clear_chip t ~line ~chip =
  if line < t.cap then begin
    let m = t.chips_.(line) in
    let m' = m land lnot (1 lsl chip) in
    if m' <> m then begin
      t.chips_.(line) <- m';
      if line_empty t line then t.size <- t.size - 1
    end
  end

let core_word t ~line ~w = if line < t.cap then t.cores_.((line * t.words) + w) else 0
let chip_holders t ~line = if line < t.cap then t.chips_.(line) else 0

(* Single-int core mask, for configs narrow enough that every core bit
   fits one OCaml int (all test/consistency callers run amd16). *)
let core_holders t ~line =
  if t.ncores > 62 then
    invalid_arg "Presence.core_holders: more than 62 cores; use core_word"
  else if line >= t.cap then 0
  else begin
    let base = line * t.words in
    if t.words = 1 then t.cores_.(base)
    else t.cores_.(base) lor (t.cores_.(base + 1) lsl bits_per_word)
  end

let cached_anywhere t ~line = line < t.cap && not (line_empty t line)

(* The nearest-holder scans return a bare id with [-1] for "no holder",
   and loop over mask words and bits directly — no option, no closure, no
   refs — because they run on the miss path of every simulated load.
   [chip_of] is the per-core chip table and [hops] the flat chips x chips
   hop matrix (row-major), both prebuilt by Machine. Ties on hop distance
   go to the lowest id: words ascend and the lowest set bit wins. *)
let rec bit_index b i = if b = 1 then i else bit_index (b lsr 1) (i + 1)

let rec nearest_core_bits ~chip_of ~hops ~row base mask best best_h =
  if mask = 0 then best
  else begin
    let bit = mask land -mask in
    let core = base + bit_index bit 0 in
    let h = hops.(row + chip_of.(core)) in
    let rest = mask land lnot bit in
    if h < best_h then nearest_core_bits ~chip_of ~hops ~row base rest core h
    else nearest_core_bits ~chip_of ~hops ~row base rest best best_h
  end

let rec nearest_core_words t ~line ~exclude_core ~chip_of ~hops ~row w best
    best_h =
  if w >= t.words then best
  else begin
    let mask = t.cores_.((line * t.words) + w) in
    let mask =
      if exclude_core lsr 5 = w then mask land lnot (1 lsl (exclude_core land 31))
      else mask
    in
    let best =
      nearest_core_bits ~chip_of ~hops ~row (w * bits_per_word) mask best best_h
    in
    let best_h = if best >= 0 then hops.(row + chip_of.(best)) else best_h in
    nearest_core_words t ~line ~exclude_core ~chip_of ~hops ~row (w + 1) best
      best_h
  end

let nearest_core_holder t ~line ~exclude_core ~chip_of ~from_chip ~hops ~nchips =
  if line >= t.cap then -1
  else
    nearest_core_words t ~line ~exclude_core ~chip_of ~hops
      ~row:(from_chip * nchips) 0 (-1) max_int

let rec nearest_chip_bits ~hops ~row mask best best_h =
  if mask = 0 then best
  else begin
    let bit = mask land -mask in
    let chip = bit_index bit 0 in
    let h = hops.(row + chip) in
    let rest = mask land lnot bit in
    if h < best_h then nearest_chip_bits ~hops ~row rest chip h
    else nearest_chip_bits ~hops ~row rest best best_h
  end

let nearest_chip_holder t ~line ~exclude_chip ~from_chip ~hops ~nchips =
  if line >= t.cap then -1
  else begin
    let mask = t.chips_.(line) land lnot (1 lsl exclude_chip) in
    nearest_chip_bits ~hops ~row:(from_chip * nchips) mask (-1) max_int
  end

let tracked_lines t = t.size

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go mask 0

let rec core_popcount_words t base w acc =
  if w >= t.words then acc
  else core_popcount_words t base (w + 1) (acc + popcount t.cores_.(base + w))

let core_popcount t ~line =
  if line >= t.cap then 0 else core_popcount_words t (line * t.words) 0 0

(* Lines with private copies on two or more cores: the hardware is
   replicating them, the opposite of what object packing wants. *)
let replicated_lines t =
  let n = ref 0 in
  for line = 0 to t.cap - 1 do
    if core_popcount t ~line >= 2 then incr n
  done;
  !n

(* Lines with at least one holder, ascending. (The old hash-table
   implementation iterated in probe order; every caller is
   order-independent, but ascending is what they now see.) *)
let iter_lines f t =
  for line = 0 to t.cap - 1 do
    if not (line_empty t line) then f line
  done
