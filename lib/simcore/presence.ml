(* Open-addressing linear-probe table: line -> (core mask, chip mask).
   Stored unboxed in parallel int arrays ([keys] holds line + 1 so 0 means
   empty); entries whose masks both reach zero are deleted with
   backward-shift, keeping probe chains short. This sits on the miss path
   of every simulated load, so it must not allocate. *)

type t = {
  mutable keys : int array;  (* line + 1; 0 = empty *)
  mutable cores_ : int array;
  mutable chips_ : int array;
  mutable mask : int;
  mutable size : int;
}

let initial_bits = 16

let create () =
  let n = 1 lsl initial_bits in
  {
    keys = Array.make n 0;
    cores_ = Array.make n 0;
    chips_ = Array.make n 0;
    mask = n - 1;
    size = 0;
  }

let hash t line = (line * 0x2545F491) land t.mask

(* Recursive rather than a [ref] loop: no flambda, so a local ref would
   allocate on every miss-path lookup. *)
let rec probe_from t k i =
  if t.keys.(i) <> 0 && t.keys.(i) <> k then probe_from t k ((i + 1) land t.mask)
  else i

let probe t line = probe_from t (line + 1) (hash t line)

let rec grow t =
  let old_keys = t.keys and old_cores = t.cores_ and old_chips = t.chips_ in
  let n = 2 * (t.mask + 1) in
  t.keys <- Array.make n 0;
  t.cores_ <- Array.make n 0;
  t.chips_ <- Array.make n 0;
  t.mask <- n - 1;
  t.size <- 0;
  Array.iteri
    (fun i k ->
      if k <> 0 then insert_masks t (k - 1) old_cores.(i) old_chips.(i))
    old_keys

and insert_masks t line cores chips =
  if 2 * (t.size + 1) > t.mask + 1 then grow t;
  let i = probe t line in
  if t.keys.(i) = 0 then begin
    t.keys.(i) <- line + 1;
    t.size <- t.size + 1
  end;
  t.cores_.(i) <- t.cores_.(i) lor cores;
  t.chips_.(i) <- t.chips_.(i) lor chips

let rec backward_shift t i j =
  if t.keys.(j) <> 0 then begin
    let h = (t.keys.(j) - 1) * 0x2545F491 land t.mask in
    if (j - h) land t.mask >= (j - i) land t.mask then begin
      t.keys.(i) <- t.keys.(j);
      t.cores_.(i) <- t.cores_.(j);
      t.chips_.(i) <- t.chips_.(j);
      t.keys.(j) <- 0;
      t.cores_.(j) <- 0;
      t.chips_.(j) <- 0;
      backward_shift t j ((j + 1) land t.mask)
    end
    else backward_shift t i ((j + 1) land t.mask)
  end

let delete_at t i =
  t.keys.(i) <- 0;
  t.cores_.(i) <- 0;
  t.chips_.(i) <- 0;
  t.size <- t.size - 1;
  backward_shift t i ((i + 1) land t.mask)

let set_core t ~line ~core = insert_masks t line (1 lsl core) 0
let set_chip t ~line ~chip = insert_masks t line 0 (1 lsl chip)

let clear_core t ~line ~core =
  let i = probe t line in
  if t.keys.(i) <> 0 then begin
    t.cores_.(i) <- t.cores_.(i) land lnot (1 lsl core);
    if t.cores_.(i) = 0 && t.chips_.(i) = 0 then delete_at t i
  end

let clear_chip t ~line ~chip =
  let i = probe t line in
  if t.keys.(i) <> 0 then begin
    t.chips_.(i) <- t.chips_.(i) land lnot (1 lsl chip);
    if t.cores_.(i) = 0 && t.chips_.(i) = 0 then delete_at t i
  end

let core_holders t ~line =
  let i = probe t line in
  if t.keys.(i) = 0 then 0 else t.cores_.(i)

let chip_holders t ~line =
  let i = probe t line in
  if t.keys.(i) = 0 then 0 else t.chips_.(i)

let cached_anywhere t ~line =
  let i = probe t line in
  t.keys.(i) <> 0 && (t.cores_.(i) <> 0 || t.chips_.(i) <> 0)

(* The nearest-holder scans return a bare id with [-1] for "no holder",
   and loop over the mask bits directly — no option, no closure, no refs —
   because they run on the miss path of every simulated load. Ties on hop
   distance go to the lowest id (the lowest set bit wins). *)
let rec bit_index b i = if b = 1 then i else bit_index (b lsr 1) (i + 1)

let rec nearest_core_loop ~chip_of_core ~from_chip ~hops mask best best_h =
  if mask = 0 then best
  else begin
    let bit = mask land -mask in
    let core = bit_index bit 0 in
    let h = hops from_chip (chip_of_core core) in
    let rest = mask land lnot bit in
    if h < best_h then
      nearest_core_loop ~chip_of_core ~from_chip ~hops rest core h
    else nearest_core_loop ~chip_of_core ~from_chip ~hops rest best best_h
  end

let nearest_core_holder t ~line ~exclude_core ~chip_of_core ~from_chip ~hops =
  let mask = core_holders t ~line land lnot (1 lsl exclude_core) in
  nearest_core_loop ~chip_of_core ~from_chip ~hops mask (-1) max_int

let rec nearest_chip_loop ~from_chip ~hops mask best best_h =
  if mask = 0 then best
  else begin
    let bit = mask land -mask in
    let chip = bit_index bit 0 in
    let h = hops from_chip chip in
    let rest = mask land lnot bit in
    if h < best_h then nearest_chip_loop ~from_chip ~hops rest chip h
    else nearest_chip_loop ~from_chip ~hops rest best best_h
  end

let nearest_chip_holder t ~line ~exclude_chip ~from_chip ~hops =
  let mask = chip_holders t ~line land lnot (1 lsl exclude_chip) in
  nearest_chip_loop ~from_chip ~hops mask (-1) max_int

let tracked_lines t = t.size

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go mask 0

(* Lines with private copies on two or more cores: the hardware is
   replicating them, the opposite of what object packing wants. *)
let replicated_lines t =
  let n = ref 0 in
  Array.iteri
    (fun i k -> if k <> 0 && popcount t.cores_.(i) >= 2 then incr n)
    t.keys;
  !n

let iter f t =
  Array.iteri
    (fun i k -> if k <> 0 then f (k - 1) ~cores:t.cores_.(i) ~chips:t.chips_.(i))
    t.keys
