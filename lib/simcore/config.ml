type t = {
  name : string;
  chips : int;
  cores_per_chip : int;
  ghz : float;
  line_bytes : int;
  page_bytes : int;
  l1_bytes : int;
  l1_latency : int;
  l2_bytes : int;
  l2_latency : int;
  l3_bytes : int;
  l3_latency : int;
  remote_same_chip : int;
  remote_hop : int;
  dram_latency : int;
  dram_hop : int;
  dram_service : int;
  invalidate_cycles : int;
  migration_save : int;
  migration_xfer : int;
  migration_restore : int;
  poll_interval : int;
  amsg_send : int;
  amsg_wire : int;
  amsg_dispatch : int;
}

let cores t = t.chips * t.cores_per_chip
let chip_of_core t core = core / t.cores_per_chip

let migration_cycles t =
  t.migration_save + t.migration_xfer + t.migration_restore
  + (t.poll_interval / 2)

let amsg_cycles t = t.amsg_send + t.amsg_wire + t.amsg_dispatch

(* Conservative lookahead for the sharded (windowed) engine: the smallest
   number of cycles any cross-chip effect takes to become visible on
   another chip. Within a window of this length a chip can run on local
   state alone; everything cross-chip is delivered at the window barrier.
   Candidates: invalidation propagation, a remote same-chip cache probe,
   an active-message wire hop, migration transfer (+ mean poll delay),
   and a DRAM round trip. *)
let sync_window t =
  let m a b = if a < b then a else b in
  let w =
    m t.invalidate_cycles
      (m t.remote_same_chip
         (m t.amsg_wire
            (m
               (t.migration_xfer + (t.poll_interval / 2))
               t.dram_latency)))
  in
  max 1 w

let on_chip_capacity t =
  (cores t * t.l2_bytes) + (t.chips * t.l3_bytes)

let per_core_budget t = t.l2_bytes + (t.l3_bytes / t.cores_per_chip)

let kb n = n * 1024
let mb n = n * 1024 * 1024

let amd16 =
  {
    name = "amd16";
    chips = 4;
    cores_per_chip = 4;
    ghz = 2.0;
    line_bytes = 64;
    page_bytes = 4096;
    l1_bytes = kb 64;
    l1_latency = 3;
    l2_bytes = kb 512;
    l2_latency = 14;
    l3_bytes = mb 2;
    l3_latency = 75;
    remote_same_chip = 127;
    remote_hop = 60;
    (* Local-bank load = 202 + 14 service = 216 cycles; the most distant
       bank (2 hops) = 336, the paper's measured extreme. One controller
       per chip streaming a line every 14 cycles is ~37 GB/s aggregate at
       2 GHz — the "high off-chip memory bandwidth" of Section 6.1. *)
    dram_latency = 202;
    dram_hop = 60;
    dram_service = 14;
    invalidate_cycles = 90;
    migration_save = 500;
    migration_xfer = 1000;
    migration_restore = 400;
    poll_interval = 200;
    (* save + xfer + restore + poll/2 = 2000, the paper's measured cost *)
    amsg_send = 60;
    amsg_wire = 130;
    amsg_dispatch = 60;
  }

let small4 =
  {
    amd16 with
    name = "small4";
    chips = 1;
    cores_per_chip = 4;
    l1_bytes = kb 1;
    l2_bytes = kb 4;
    l3_bytes = kb 16;
    page_bytes = 256;
    (* everything about this machine is miniature, migration included *)
    migration_save = 50;
    migration_xfer = 100;
    migration_restore = 50;
    poll_interval = 0;
  }

let future64 =
  {
    amd16 with
    name = "future64";
    chips = 8;
    cores_per_chip = 8;
    l1_bytes = kb 64;
    l2_bytes = mb 1;
    l3_bytes = mb 4;
    (* More cores contending for relatively less off-chip bandwidth, and
       hardware support (active messages) making migration cheap. *)
    dram_service = 120;
    migration_save = 150;
    migration_xfer = 250;
    migration_restore = 100;
    poll_interval = 0;
  }

let validate t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  if t.chips <= 0 || t.cores_per_chip <= 0 then fail "no cores"
  else if t.line_bytes <= 0 || t.line_bytes land (t.line_bytes - 1) <> 0 then
    fail "line_bytes must be a positive power of two"
  else if t.page_bytes < t.line_bytes || t.page_bytes mod t.line_bytes <> 0
  then fail "page_bytes must be a multiple of line_bytes"
  else if
    t.l1_bytes mod t.line_bytes <> 0
    || t.l2_bytes mod t.line_bytes <> 0
    || t.l3_bytes mod t.line_bytes <> 0
  then fail "cache capacities must be whole lines"
  else if t.l1_bytes <= 0 || t.l2_bytes <= 0 || t.l3_bytes <= 0 then
    fail "cache capacities must be positive"
  else if
    t.l1_latency < 0 || t.l2_latency < 0 || t.l3_latency < 0
    || t.dram_latency < 0 || t.remote_same_chip < 0
  then fail "latencies must be non-negative"
  else if t.ghz <= 0.0 then fail "ghz must be positive"
  else if t.amsg_send < 0 || t.amsg_wire < 0 || t.amsg_dispatch < 0 then
    fail "active-message costs must be non-negative"
  else Ok ()

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: %d chips x %d cores @@ %.1f GHz@,\
     line %dB; L1 %dKB/%dcyc L2 %dKB/%dcyc L3 %dKB/%dcyc (per chip)@,\
     remote %d+%d/hop; dram %d+%d/hop, %d cyc/line service@,\
     migration %d cycles@]"
    t.name t.chips t.cores_per_chip t.ghz t.line_bytes (t.l1_bytes / 1024)
    t.l1_latency (t.l2_bytes / 1024) t.l2_latency (t.l3_bytes / 1024)
    t.l3_latency t.remote_same_chip t.remote_hop t.dram_latency t.dram_hop
    t.dram_service (migration_cycles t)
