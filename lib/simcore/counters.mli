(** Per-core event counters — the simulated equivalent of the AMD hardware
    performance counters CoreTime reads (Section 4, "Runtime monitoring").

    The machine updates the memory-system fields on every access; the
    runtime engine updates the busy / idle / spin / migration fields. The
    scheduler only ever reads them, exactly as real CoreTime reads MSRs. *)

type t = {
  mutable loads : int;  (** Line-granularity loads issued. *)
  mutable stores : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;  (** Loads served by the local chip's L3. *)
  mutable remote_hits : int;  (** Loads served by another cache. *)
  mutable dram_loads : int;  (** Lines loaded from DRAM. *)
  mutable invalidations_sent : int;
  mutable busy_cycles : int;  (** Cycles spent executing operations. *)
  mutable spin_cycles : int;  (** Cycles spent spinning on locks. *)
  mutable idle_cycles : int;  (** Cycles with nothing runnable. *)
  mutable migrations_in : int;
  mutable migrations_out : int;
  mutable ops_completed : int;  (** ct_start/ct_end pairs retired here. *)
}

val create : unit -> t
val create_array : int -> t array
val copy : t -> t

val diff : t -> since:t -> t
(** Field-wise subtraction: the events between two snapshots. *)

val copy_into : t -> t -> unit
(** [copy_into dst src] overwrites every field of [dst] with [src]'s —
    a {!copy} into preallocated storage, for snapshot scratch that must
    not allocate per period. *)

val diff_into : t -> t -> since:t -> unit
(** [diff_into dst t ~since] is {!diff} written into preallocated [dst]. *)

val add_into : t -> t -> unit
(** [add_into acc x] accumulates [x] into [acc]. *)

val misses : t -> int
(** Loads not served by the core's own L1/L2 or its chip's L3 — the
    "cache misses" CoreTime counts between a pair of annotations. *)

val total_cache_misses : t -> int
(** Loads that left the core entirely (remote or DRAM). *)

val pp : Format.formatter -> t -> unit
val pp_array : Format.formatter -> t array -> unit
