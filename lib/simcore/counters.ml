type t = {
  mutable loads : int;
  mutable stores : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable remote_hits : int;
  mutable dram_loads : int;
  mutable invalidations_sent : int;
  mutable busy_cycles : int;
  mutable spin_cycles : int;
  mutable idle_cycles : int;
  mutable migrations_in : int;
  mutable migrations_out : int;
  mutable ops_completed : int;
}

let create () =
  {
    loads = 0;
    stores = 0;
    l1_hits = 0;
    l2_hits = 0;
    l3_hits = 0;
    remote_hits = 0;
    dram_loads = 0;
    invalidations_sent = 0;
    busy_cycles = 0;
    spin_cycles = 0;
    idle_cycles = 0;
    migrations_in = 0;
    migrations_out = 0;
    ops_completed = 0;
  }

let create_array n = Array.init n (fun _ -> create ())

let copy t = { t with loads = t.loads }

let diff t ~since =
  {
    loads = t.loads - since.loads;
    stores = t.stores - since.stores;
    l1_hits = t.l1_hits - since.l1_hits;
    l2_hits = t.l2_hits - since.l2_hits;
    l3_hits = t.l3_hits - since.l3_hits;
    remote_hits = t.remote_hits - since.remote_hits;
    dram_loads = t.dram_loads - since.dram_loads;
    invalidations_sent = t.invalidations_sent - since.invalidations_sent;
    busy_cycles = t.busy_cycles - since.busy_cycles;
    spin_cycles = t.spin_cycles - since.spin_cycles;
    idle_cycles = t.idle_cycles - since.idle_cycles;
    migrations_in = t.migrations_in - since.migrations_in;
    migrations_out = t.migrations_out - since.migrations_out;
    ops_completed = t.ops_completed - since.ops_completed;
  }

let copy_into dst src =
  dst.loads <- src.loads;
  dst.stores <- src.stores;
  dst.l1_hits <- src.l1_hits;
  dst.l2_hits <- src.l2_hits;
  dst.l3_hits <- src.l3_hits;
  dst.remote_hits <- src.remote_hits;
  dst.dram_loads <- src.dram_loads;
  dst.invalidations_sent <- src.invalidations_sent;
  dst.busy_cycles <- src.busy_cycles;
  dst.spin_cycles <- src.spin_cycles;
  dst.idle_cycles <- src.idle_cycles;
  dst.migrations_in <- src.migrations_in;
  dst.migrations_out <- src.migrations_out;
  dst.ops_completed <- src.ops_completed

let diff_into dst t ~since =
  dst.loads <- t.loads - since.loads;
  dst.stores <- t.stores - since.stores;
  dst.l1_hits <- t.l1_hits - since.l1_hits;
  dst.l2_hits <- t.l2_hits - since.l2_hits;
  dst.l3_hits <- t.l3_hits - since.l3_hits;
  dst.remote_hits <- t.remote_hits - since.remote_hits;
  dst.dram_loads <- t.dram_loads - since.dram_loads;
  dst.invalidations_sent <- t.invalidations_sent - since.invalidations_sent;
  dst.busy_cycles <- t.busy_cycles - since.busy_cycles;
  dst.spin_cycles <- t.spin_cycles - since.spin_cycles;
  dst.idle_cycles <- t.idle_cycles - since.idle_cycles;
  dst.migrations_in <- t.migrations_in - since.migrations_in;
  dst.migrations_out <- t.migrations_out - since.migrations_out;
  dst.ops_completed <- t.ops_completed - since.ops_completed

let add_into acc x =
  acc.loads <- acc.loads + x.loads;
  acc.stores <- acc.stores + x.stores;
  acc.l1_hits <- acc.l1_hits + x.l1_hits;
  acc.l2_hits <- acc.l2_hits + x.l2_hits;
  acc.l3_hits <- acc.l3_hits + x.l3_hits;
  acc.remote_hits <- acc.remote_hits + x.remote_hits;
  acc.dram_loads <- acc.dram_loads + x.dram_loads;
  acc.invalidations_sent <- acc.invalidations_sent + x.invalidations_sent;
  acc.busy_cycles <- acc.busy_cycles + x.busy_cycles;
  acc.spin_cycles <- acc.spin_cycles + x.spin_cycles;
  acc.idle_cycles <- acc.idle_cycles + x.idle_cycles;
  acc.migrations_in <- acc.migrations_in + x.migrations_in;
  acc.migrations_out <- acc.migrations_out + x.migrations_out;
  acc.ops_completed <- acc.ops_completed + x.ops_completed

let misses t = t.remote_hits + t.dram_loads
let total_cache_misses t = t.remote_hits + t.dram_loads

let pp ppf t =
  Format.fprintf ppf
    "@[<h>loads %d (L1 %d, L2 %d, L3 %d, remote %d, dram %d) stores %d \
     inval %d busy %d spin %d idle %d mig %d/%d ops %d@]"
    t.loads t.l1_hits t.l2_hits t.l3_hits t.remote_hits t.dram_loads t.stores
    t.invalidations_sent t.busy_cycles t.spin_cycles t.idle_cycles
    t.migrations_in t.migrations_out t.ops_completed

let pp_array ppf a =
  Array.iteri (fun i t -> Format.fprintf ppf "core %2d: %a@." i pp t) a
