(** Off-chip DRAM with one memory controller per chip and a finite
    bandwidth.

    Latency alone does not describe 2009-era Opterons: the directory-scan
    workload streams sequentially, so the effective per-line cost is set by
    controller bandwidth once many cores miss at once (the paper's "high
    off-chip memory bandwidth" remark, Section 6.1). Each controller is a
    simple queueing server: it is occupied for [dram_service] cycles per
    line it streams, so a burst of [n] lines from one bank completes at

      max(now, controller free time) + latency(hops) + n * dram_service

    and pushes the controller's free time forward by [n * dram_service].
    Concurrent demand from many cores therefore queues, which is what caps
    baseline throughput for DRAM-resident working sets. *)

type t

val create : Config.t -> Topology.t -> t

val fetch :
  t -> now:int -> from_chip:int -> home_chip:int -> lines:int -> int
(** [fetch t ~now ~from_chip ~home_chip ~lines] reserves controller time
    for [lines] consecutive lines on [home_chip]'s bank and returns the
    number of cycles after [now] at which the data has arrived at
    [from_chip]. [lines = 0] returns 0. *)

val controller_free_at : t -> chip:int -> int
(** When the chip's controller next becomes free (for tests and metrics). *)

val lines_served : t -> chip:int -> int
val total_lines_served : t -> int

val utilization : t -> now:int -> float
(** Fraction of elapsed time the controllers spent busy, averaged over
    controllers (0 when [now = 0]). *)

val reset : t -> unit

(** {2 Sharded-engine mirror support}

    Each shard of the windowed engine owns a private DRAM mirror. With
    delta tracking on, fetches also tally (service cycles, lines) per home
    bank for the current window; at the barrier every peer mirror absorbs
    them, so all mirrors agree on bank queues to within one window. *)

val enable_delta_tracking : t -> unit

val absorb : t -> src:t -> window_start:int -> unit
(** Replay [src]'s tracked window deltas into [t]'s controllers as
    reservations starting no earlier than [window_start]. Commutative
    across sources. Does not clear [src]'s deltas. *)

val clear_deltas : t -> unit
