(* Array-based LRU, struct-of-arrays with packed fields. Slots hold keys
   doubly linked through a single packed [links] array (slot [cap] is the
   list sentinel), and an open-addressing linear-probe table maps
   key -> slot with the key packed into the table entry itself:

     table.(i) = (key lsl 25) lor (slot + 1)     0 = empty
     links.(s) = (prev lsl 24) lor next

   so a probe is one array load and one compare (no second load into a
   keys array), and an unlink reads both neighbours in one load. Keys
   must be non-negative (cache line numbers) and capacity below 2^24.
   No allocation on any operation, so the cache simulator's hot path
   stays off the GC. Deletion uses backward-shift (no tombstones), which
   keeps probes short under the constant churn of fills and evictions. *)

type t = {
  cap : int;
  mutable size : int;
  mutable keys : int array;  (* slot -> key (for eviction and iteration) *)
  mutable links : int array;
      (* slot -> (prev lsl 24) lor next; slot cap = sentinel *)
  mutable free : int;  (* head of the free-slot list, threaded via next *)
  mutable table : int array;  (* probe position -> (key lsl 25) lor (slot + 1) *)
  mask : int;
}

let slot_shift = 25
let slot_mask = (1 lsl slot_shift) - 1
let link_bits = 24
let link_mask = (1 lsl link_bits) - 1

let next_of l = l land link_mask
let prev_of l = l lsr link_bits
let pack_link ~prev ~next = (prev lsl link_bits) lor next

let set_next t s n = t.links.(s) <- (t.links.(s) land lnot link_mask) lor n

let set_prev t s p =
  t.links.(s) <- (t.links.(s) land link_mask) lor (p lsl link_bits)

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

(* Creation defers the arrays until the first insert: a Machine builds
   L1+L2+L3 LRUs for every core and chip up front (megabytes of int
   arrays on amd16), but small cells and short tests touch a handful of
   caches — a victim L3 that never sees an eviction never pays for its
   table. The empty state is observable only as [size = 0], which every
   read path already treats as a miss. *)
let create ~cap =
  if cap <= 0 then invalid_arg "Lru.create: capacity must be positive";
  if cap >= 1 lsl link_bits then
    invalid_arg "Lru.create: capacity exceeds the packed 24-bit slot index";
  let tbl_size = pow2 (2 * cap) 16 in
  { cap; size = 0; keys = [||]; links = [||]; free = 0; table = [||];
    mask = tbl_size - 1 }

(* One-time slot allocation on the first insert. Free list through the
   next field; safe at [cap = 1] because the free-list terminator lives
   at index [cap - 1 = 0] and the sentinel self-links live at index
   [cap = 1] — distinct cells, so the write order cannot clobber
   anything (pinned by the cap=1 tests in suite_lru). *)
let ensure_slots t =
  if Array.length t.links = 0 then begin
    let links = Array.make (t.cap + 1) 0 in
    for i = 0 to t.cap - 1 do
      links.(i) <- pack_link ~prev:0 ~next:(i + 1)
    done;
    links.(t.cap - 1) <- pack_link ~prev:0 ~next:link_mask;
    links.(t.cap) <- pack_link ~prev:t.cap ~next:t.cap;
    t.links <- links;
    t.keys <- Array.make t.cap 0;
    t.table <- Array.make (t.mask + 1) 0;
    t.free <- 0
  end
  [@@alloc_ok "one-time lazy allocation of the slot arrays"]

let capacity t = t.cap
let length t = t.size

let hash t key = (key * 0x2545F491) land t.mask

(* Probe position of [key], or of the first empty slot. Recursive rather
   than a [ref] loop: no flambda, so a local ref would allocate on every
   cache probe. *)
let rec probe_from t key i =
  let e = t.table.(i) in
  if e <> 0 && e lsr slot_shift <> key then probe_from t key ((i + 1) land t.mask)
  else i

let probe t key = probe_from t key (hash t key)

let find_slot t key =
  if t.size = 0 then -1
  else (t.table.(probe t key) land slot_mask) - 1  (* -1 when empty *)

let mem t key = find_slot t key >= 0

let unlink t s =
  let l = t.links.(s) in
  let p = prev_of l and n = next_of l in
  set_next t p n;
  set_prev t n p

let push_front t s =
  let sent = t.cap in
  let head = next_of t.links.(sent) in
  t.links.(s) <- pack_link ~prev:sent ~next:head;
  set_prev t head s;
  set_next t sent s

let touch t key =
  if t.size = 0 then false
  else
  let e = t.table.(probe t key) in
  if e = 0 then false
  else begin
    let s = (e land slot_mask) - 1 in
    (* MRU fast path: repeated hits on the hottest line skip the relink. *)
    if prev_of t.links.(s) <> t.cap then begin
      unlink t s;
      push_front t s
    end;
    true
  end

(* Backward-shift deletion: walk forward from the hole at [i], moving each
   entry at [j] into the hole unless its home position lies cyclically
   within (i, j]. *)
let rec backward_shift t i j =
  let e = t.table.(j) in
  if e <> 0 then begin
    let h = hash t (e lsr slot_shift) in
    if (j - h) land t.mask >= (j - i) land t.mask then begin
      t.table.(i) <- e;
      t.table.(j) <- 0;
      backward_shift t j ((j + 1) land t.mask)
    end
    else backward_shift t i ((j + 1) land t.mask)
  end

let table_delete_at t i =
  t.table.(i) <- 0;
  backward_shift t i ((i + 1) land t.mask)

let table_remove t key =
  let i = probe t key in
  if t.table.(i) <> 0 then table_delete_at t i

let remove t key =
  let s = find_slot t key in
  if s < 0 then false
  else begin
    unlink t s;
    table_remove t key;
    set_next t s t.free;
    t.free <- s;
    t.size <- t.size - 1;
    true
  end

let lru_key t =
  if t.size = 0 then None else Some t.keys.(prev_of t.links.(t.cap))

(* Allocation-free insert: the evicted key comes back as a bare int, with
   [-1] for "nothing evicted". Fine for cache lines, whose numbers are
   always non-negative. *)
let install t key s =
  t.keys.(s) <- key;
  push_front t s;
  let i = probe t key in
  t.table.(i) <- (key lsl slot_shift) lor (s + 1);
  t.size <- t.size + 1

let add_evict t key =
  if touch t key then -1
  else begin
    ensure_slots t;
    if t.size >= t.cap then begin
      (* evict the tail slot and reuse it *)
      let tail = prev_of t.links.(t.cap) in
      let vkey = t.keys.(tail) in
      unlink t tail;
      table_remove t vkey;
      t.size <- t.size - 1;
      install t key tail;
      vkey
    end
    else begin
      let s = t.free in
      t.free <- next_of t.links.(s);
      install t key s;
      -1
    end
  end

let add t key =
  let victim = add_evict t key in
  if victim < 0 then None else Some victim

let iter f t =
  if t.size > 0 then begin
    let s = ref (next_of t.links.(t.cap)) in
    while !s <> t.cap do
      f t.keys.(!s);
      s := next_of t.links.(!s)
    done
  end

let fold f acc t =
  let acc = ref acc in
  iter (fun k -> acc := f !acc k) t;
  !acc

let to_list t = List.rev (fold (fun acc k -> k :: acc) [] t)

let clear t =
  if Array.length t.links > 0 then begin
    Array.fill t.table 0 (Array.length t.table) 0;
    t.size <- 0;
    for i = 0 to t.cap - 1 do
      t.links.(i) <- pack_link ~prev:0 ~next:(i + 1)
    done;
    t.links.(t.cap - 1) <- pack_link ~prev:0 ~next:link_mask;
    t.free <- 0;
    t.links.(t.cap) <- pack_link ~prev:t.cap ~next:t.cap
  end

let check_invariants t =
  if Array.length t.links = 0 then
    if t.size <> 0 then Error "unallocated slots but size <> 0" else Ok ()
  else
  let l = to_list t in
  let n = List.length l in
  if n <> t.size then Error "list length <> size"
  else if n > t.cap then Error "over capacity"
  else if List.length (List.sort_uniq compare l) <> n then
    Error "duplicate keys in list"
  else if not (List.for_all (mem t) l) then Error "list key missing in table"
  else begin
    (* walk backwards too, to catch broken prev pointers *)
    let back = ref [] in
    let s = ref (prev_of t.links.(t.cap)) in
    while !s <> t.cap do
      back := t.keys.(!s) :: !back;
      s := prev_of t.links.(!s)
    done;
    if !back <> l then Error "prev-chain disagrees with next-chain"
    else begin
      (* every table entry must point at a live slot carrying its key *)
      let live = Hashtbl.create 64 in
      List.iter (fun k -> Hashtbl.replace live k ()) l;
      let table_count = ref 0 in
      let bad = ref false in
      Array.iter
        (fun e ->
          if e <> 0 then begin
            incr table_count;
            let s = (e land slot_mask) - 1 in
            let key = e lsr slot_shift in
            if t.keys.(s) <> key || not (Hashtbl.mem live key) then bad := true
          end)
        t.table;
      if !bad then Error "table entry disagrees with slot key"
      else if !table_count <> n then Error "table population <> size"
      else Ok ()
    end
  end
