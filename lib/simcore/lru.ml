(* Array-based LRU: slots hold keys doubly linked through [prev]/[next]
   index arrays (slot [cap] is the list sentinel), and an open-addressing
   linear-probe table maps key -> slot. No allocation on any operation, so
   the cache simulator's hot path stays off the GC. Deletion uses
   backward-shift (no tombstones), which keeps probes short under the
   constant churn of fills and evictions. *)

type t = {
  cap : int;
  mutable size : int;
  keys : int array;  (* slot -> key *)
  next : int array;  (* slot links; slot = cap is the sentinel *)
  prev : int array;
  mutable free : int;  (* head of the free-slot list, threaded via next *)
  table : int array;  (* probe position -> slot + 1; 0 = empty *)
  mask : int;
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~cap =
  if cap <= 0 then invalid_arg "Lru.create: capacity must be positive";
  let tbl_size = pow2 (4 * cap) 16 in
  let next = Array.make (cap + 1) (-1) in
  let prev = Array.make (cap + 1) (-1) in
  (* free list through next; safe at [cap = 1] because the free-list
     terminator lives at index [cap - 1 = 0] and the sentinel self-links
     live at index [cap = 1] — distinct cells, so the write order cannot
     clobber anything (pinned by the cap=1 tests in suite_lru). *)
  for i = 0 to cap - 1 do
    next.(i) <- i + 1
  done;
  next.(cap - 1) <- -1;
  next.(cap) <- cap;
  prev.(cap) <- cap;
  {
    cap;
    size = 0;
    keys = Array.make cap 0;
    next;
    prev;
    free = 0;
    table = Array.make tbl_size 0;
    mask = tbl_size - 1;
  }

let capacity t = t.cap
let length t = t.size

let hash t key = (key * 0x2545F491) land t.mask

(* Probe position of [key], or of the first empty slot. Recursive rather
   than a [ref] loop: no flambda, so a local ref would allocate on every
   cache probe. *)
let rec probe_from t key i =
  let s = t.table.(i) in
  if s <> 0 && t.keys.(s - 1) <> key then probe_from t key ((i + 1) land t.mask)
  else i

let probe t key = probe_from t key (hash t key)

let find_slot t key =
  let i = probe t key in
  t.table.(i) - 1  (* -1 when empty *)

let mem t key = find_slot t key >= 0

let unlink t s =
  t.next.(t.prev.(s)) <- t.next.(s);
  t.prev.(t.next.(s)) <- t.prev.(s)

let push_front t s =
  let sent = t.cap in
  t.next.(s) <- t.next.(sent);
  t.prev.(s) <- sent;
  t.prev.(t.next.(sent)) <- s;
  t.next.(sent) <- s

let touch t key =
  let s = find_slot t key in
  if s < 0 then false
  else begin
    unlink t s;
    push_front t s;
    true
  end

(* Backward-shift deletion: walk forward from the hole at [i], moving each
   entry at [j] into the hole unless its home position lies cyclically
   within (i, j]. *)
let rec backward_shift t i j =
  if t.table.(j) <> 0 then begin
    let h = hash t t.keys.(t.table.(j) - 1) in
    if (j - h) land t.mask >= (j - i) land t.mask then begin
      t.table.(i) <- t.table.(j);
      t.table.(j) <- 0;
      backward_shift t j ((j + 1) land t.mask)
    end
    else backward_shift t i ((j + 1) land t.mask)
  end

let table_delete_at t i =
  t.table.(i) <- 0;
  backward_shift t i ((i + 1) land t.mask)

let table_remove t key =
  let i = probe t key in
  if t.table.(i) <> 0 then table_delete_at t i

let remove t key =
  let s = find_slot t key in
  if s < 0 then false
  else begin
    unlink t s;
    table_remove t key;
    t.next.(s) <- t.free;
    t.free <- s;
    t.size <- t.size - 1;
    true
  end

let lru_key t = if t.size = 0 then None else Some t.keys.(t.prev.(t.cap))

(* Allocation-free insert: the evicted key comes back as a bare int, with
   [-1] for "nothing evicted". Fine for cache lines, whose numbers are
   always non-negative. *)
let install t key s =
  t.keys.(s) <- key;
  push_front t s;
  let i = probe t key in
  t.table.(i) <- s + 1;
  t.size <- t.size + 1

let add_evict t key =
  if touch t key then -1
  else if t.size >= t.cap then begin
    (* evict the tail slot and reuse it *)
    let tail = t.prev.(t.cap) in
    let vkey = t.keys.(tail) in
    unlink t tail;
    table_remove t vkey;
    t.size <- t.size - 1;
    install t key tail;
    vkey
  end
  else begin
    let s = t.free in
    t.free <- t.next.(s);
    install t key s;
    -1
  end

let add t key =
  let victim = add_evict t key in
  if victim < 0 then None else Some victim

let iter f t =
  let s = ref t.next.(t.cap) in
  while !s <> t.cap do
    f t.keys.(!s);
    s := t.next.(!s)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun k -> acc := f !acc k) t;
  !acc

let to_list t = List.rev (fold (fun acc k -> k :: acc) [] t)

let clear t =
  Array.fill t.table 0 (Array.length t.table) 0;
  t.size <- 0;
  for i = 0 to t.cap - 1 do
    t.next.(i) <- i + 1
  done;
  t.next.(t.cap - 1) <- -1;
  t.free <- 0;
  t.next.(t.cap) <- t.cap;
  t.prev.(t.cap) <- t.cap

let check_invariants t =
  let l = to_list t in
  let n = List.length l in
  if n <> t.size then Error "list length <> size"
  else if n > t.cap then Error "over capacity"
  else if List.length (List.sort_uniq compare l) <> n then
    Error "duplicate keys in list"
  else if not (List.for_all (mem t) l) then Error "list key missing in table"
  else begin
    (* walk backwards too, to catch broken prev pointers *)
    let back = ref [] in
    let s = ref t.prev.(t.cap) in
    while !s <> t.cap do
      back := t.keys.(!s) :: !back;
      s := t.prev.(!s)
    done;
    if !back <> l then Error "prev-chain disagrees with next-chain"
    else begin
      (* every table slot must point at a live key *)
      let live = Hashtbl.create 64 in
      List.iter (fun k -> Hashtbl.replace live k ()) l;
      let table_count = ref 0 in
      let bad = ref false in
      Array.iter
        (fun v ->
          if v <> 0 then begin
            incr table_count;
            if not (Hashtbl.mem live t.keys.(v - 1)) then bad := true
          end)
        t.table;
      if !bad then Error "table references dead slot"
      else if !table_count <> n then Error "table population <> size"
      else Ok ()
    end
  end
