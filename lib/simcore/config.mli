(** Static description of a simulated multicore machine.

    All latencies are in CPU cycles; all sizes in bytes unless the field name
    says otherwise. The default configuration, {!amd16}, reproduces the
    16-core, 4-chip AMD Opteron system of the paper's Section 5: per-core L1
    and L2 caches, a per-chip shared L3, a square interconnect between the
    four chips, and one DRAM controller per chip. *)

type t = {
  name : string;  (** Human-readable machine name. *)
  chips : int;  (** Number of chips (sockets). *)
  cores_per_chip : int;  (** Cores on each chip. *)
  ghz : float;  (** Core clock; converts cycles to seconds. *)
  line_bytes : int;  (** Cache-line size. *)
  page_bytes : int;  (** DRAM interleave granularity across controllers. *)
  l1_bytes : int;  (** Per-core L1 data-cache capacity. *)
  l1_latency : int;  (** L1 hit latency (paper: 3 cycles). *)
  l2_bytes : int;  (** Per-core L2 capacity (paper: 512 KB). *)
  l2_latency : int;  (** L2 hit latency (paper: 14 cycles). *)
  l3_bytes : int;  (** Per-chip shared L3 capacity (paper: 2 MB). *)
  l3_latency : int;  (** L3 hit latency (paper: 75 cycles). *)
  remote_same_chip : int;
      (** Fetch from the cache of another core on the same chip
          (paper: 127 cycles). *)
  remote_hop : int;
      (** Extra cycles per interconnect hop for a remote-cache fetch. *)
  dram_latency : int;  (** Load from the local chip's DRAM bank. *)
  dram_hop : int;
      (** Extra cycles per hop to a remote DRAM bank (paper: the most
          distant bank costs 336 cycles in total). *)
  dram_service : int;
      (** Bandwidth model: cycles a DRAM controller is occupied per line it
          streams. Lower = more off-chip bandwidth. *)
  invalidate_cycles : int;
      (** Cost charged to a writer that must invalidate remote copies. *)
  migration_save : int;  (** Cycles to save a thread context (source core). *)
  migration_xfer : int;  (** Cycles for the context to cross the interconnect. *)
  migration_restore : int;  (** Cycles to load the context (destination). *)
  poll_interval : int;
      (** Destination cores notice pending migrations only when they poll;
          on average half this interval is added to a migration. *)
  amsg_send : int;
      (** Active-message support (Section 6.1): cycles the sender spends
          launching an operation descriptor instead of a whole context. *)
  amsg_wire : int;  (** Interconnect cycles for the descriptor. *)
  amsg_dispatch : int;
      (** Receiver-side cycles to start executing the shipped operation
          (no polling: active messages interrupt). *)
}

val cores : t -> int
(** Total core count ([chips * cores_per_chip]). *)

val chip_of_core : t -> int -> int
(** [chip_of_core cfg core] is the chip that [core] belongs to. *)

val migration_cycles : t -> int
(** Sum of the save / transfer / restore components plus the mean polling
    delay: the end-to-end cost of one thread migration (paper: 2000). *)

val amsg_cycles : t -> int
(** End-to-end cost of shipping one operation by active message. *)

val sync_window : t -> int
(** Conservative lookahead Δ for the sharded engine: the minimum cycles
    any cross-chip effect (invalidation, remote cache probe, active
    message, migration, DRAM round trip) needs to become visible on
    another chip. A chip simulating the window [T, T+Δ) can therefore run
    on local state alone. Always ≥ 1; 90 for {!amd16}. *)

val on_chip_capacity : t -> int
(** Aggregate L2 + L3 bytes across the machine (paper: 16 MB); the point
    past which even a perfectly packed working set spills to DRAM. *)

val per_core_budget : t -> int
(** Cache bytes the packing algorithm may assign to one core: its private
    L2 plus an even share of its chip's L3. *)

val amd16 : t
(** The paper's testbed: 4 chips x 4 cores at 2 GHz, 64 KB L1 / 512 KB L2
    per core, 2 MB L3 per chip, latencies 3/14/75, remote fetches from 127
    cycles (same-chip cache) to 336 cycles (most distant DRAM bank), and a
    2000-cycle thread migration. *)

val small4 : t
(** A 1-chip, 4-core machine with tiny caches: used by unit tests and by
    the Figure 2 snapshot so cache contents stay human-readable. *)

val future64 : t
(** A hypothetical future multicore (Section 6.1): 8 chips x 8 cores,
    larger per-core caches, scarcer off-chip bandwidth, cheaper migration
    (hardware active messages). *)

val validate : t -> (unit, string) result
(** Check internal consistency (positive sizes, line divides capacities,
    at least one core...). All built-in configurations validate. *)

val pp : Format.formatter -> t -> unit
