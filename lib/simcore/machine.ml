(* Where a load was sourced, for the observatory's access stream. Bare
   ints (not a variant reused across calls) so observers can index arrays
   without a match on the hot path. *)
let src_l1 = 0
let src_l2 = 1
let src_l3 = 2
let src_remote = 3
let src_dram = 4

type observer = {
  on_access : now:int -> core:int -> line:int -> source:int -> unit;
  on_fill : cache:Cache.t -> line:int -> victim:int -> unit;
  on_remove : cache:Cache.t -> line:int -> unit;
}

(* One chip's view of the machine under the sharded (windowed) engine.
   The view shares the cache arrays, counters, memory map and topology with
   the root machine — a chip only ever mutates its own cores' L1/L2, its
   own L3 and its own counters, so sharing is race-free — but carries a
   private presence mirror and DRAM mirror plus the outbox logs that peers
   replay at each window barrier:

   - [plog]: every presence-bit update this chip made to its OWN bits this
     window, packed one int per op. Replayed into every peer's mirror at
     the barrier (streams from different chips touch disjoint bits, so
     replay order across chips does not matter; order within a chip's log
     is preserved).
   - [ilog]: invalidation commands for lines this chip wrote that remote
     chips still hold (per the mirror). The victim chip applies them at
     the barrier — dropping the line from its caches and clearing its own
     presence bits, which enter the victim's next-window [plog]. *)
type shard_info = {
  shard_chip : int;
  first_core : int;
  last_core : int;
  plog : Intvec.t;
  ilog : Intvec.t;
}

type t = {
  cfg : Config.t;
  topo : Topology.t;
  l1 : Cache.t array;  (* per core *)
  l2 : Cache.t array;  (* per core *)
  l3 : Cache.t array;  (* per chip *)
  presence : Presence.t;
  pwords : int;  (* Presence.words, hoisted for the invalidation loops *)
  dram : Dram.t;
  mem : Memsys.t;
  ctr : Counters.t array;
  (* Per home bank: how many lines the access in flight streams from DRAM.
     A scratch array hoisted out of [read]/[write] (which never nest) so
     the access path does not allocate. All-zero between accesses:
     [dram_batch_cost] clears each bank as it reads it, and [dram_touched]
     skips the batch walk entirely for accesses that never reached DRAM —
     the common case pays one flag test instead of an [Array.fill]. *)
  dram_scratch : int array;
  mutable dram_touched : bool;
  (* Flat topology tables consulted on every miss: core -> chip, and the
     row-major chips x chips hop matrix. Plain int arrays instead of the
     prebuilt closures this module used to carry — an indexed load instead
     of a call. *)
  chip_tab : int array;
  hop_mat : int array;
  nchips : int;
  line_shift : int;  (* log2 line_bytes; Config.validate enforces pow2 *)
  (* Cache-observatory subscribers. Empty list = not observed: every
     notification site is a single [match] on it, so the unobserved access
     path allocates nothing and pays one branch (pinned by suite_hotpath). *)
  mutable observers : observer list;
  (* Per-object line tally reused by [residency]; grown on demand. *)
  mutable res_scratch : int array;
  (* [Some _] iff this is a per-chip shard view; [None] on the root
     machine and under the serial engine. Every shard-aware site is a
     single match on this field, so serial behaviour is unchanged. *)
  shard : shard_info option;
}

let rec log2 v k = if v <= 1 then k else log2 (v lsr 1) (k + 1)

let create cfg =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Machine.create: " ^ msg));
  if cfg.Config.chips > 62 then
    invalid_arg "Machine.create: more than 62 chips overflows the per-line \
                 int chip mask";
  let topo = Topology.create cfg in
  let ncores = Config.cores cfg in
  let nchips = cfg.Config.chips in
  let line = cfg.Config.line_bytes in
  let presence = Presence.create ~cores:ncores in
  let hops = Topology.hops topo in
  {
    cfg;
    topo;
    l1 =
      Array.init ncores (fun c ->
          Cache.create L1 ~owner:c ~cap_bytes:cfg.Config.l1_bytes
            ~line_bytes:line);
    l2 =
      Array.init ncores (fun c ->
          Cache.create L2 ~owner:c ~cap_bytes:cfg.Config.l2_bytes
            ~line_bytes:line);
    l3 =
      Array.init nchips (fun p ->
          Cache.create L3 ~owner:p ~cap_bytes:cfg.Config.l3_bytes
            ~line_bytes:line);
    presence;
    pwords = Presence.words presence;
    dram = Dram.create cfg topo;
    mem = Memsys.create ~line_bytes:line ();
    ctr = Counters.create_array ncores;
    dram_scratch = Array.make nchips 0;
    dram_touched = false;
    chip_tab = Array.init ncores (Config.chip_of_core cfg);
    hop_mat =
      Array.init (nchips * nchips) (fun i -> hops (i / nchips) (i mod nchips));
    nchips;
    line_shift = log2 line 0;
    observers = [];
    res_scratch = [||];
    shard = None;
  }

let shard_view root ~chip =
  if root.shard <> None then invalid_arg "Machine.shard_view: view of a view";
  (* The packed presence/invalidation log entries carry a 12-bit core or
     chip index; anything wider than 4096 cores has no business in this
     simulator anyway. (The per-line core masks themselves are multi-word,
     so 64–256-core configs shard fine — future64 runs here.) *)
  if Config.cores root.cfg > 4096 then
    invalid_arg
      (Printf.sprintf
         "Machine.shard_view: %d cores exceed the 4096 the packed shard \
          logs support"
         (Config.cores root.cfg));
  let per = root.cfg.Config.cores_per_chip in
  let first_core = chip * per in
  let dram = Dram.create root.cfg root.topo in
  Dram.enable_delta_tracking dram;
  let presence = Presence.create ~cores:(Config.cores root.cfg) in
  {
    root with
    presence;
    pwords = Presence.words presence;
    dram;
    dram_scratch = Array.make root.cfg.Config.chips 0;
    dram_touched = false;
    observers = [];
    res_scratch = [||];
    shard =
      Some
        {
          shard_chip = chip;
          first_core;
          last_core = first_core + per - 1;
          plog = Intvec.create ~cap:256 ();
          ilog = Intvec.create ~cap:64 ();
        };
  }

let shard_chip t =
  match t.shard with Some s -> s.shard_chip | None -> -1

let cfg t = t.cfg
let topology t = t.topo
let memory t = t.mem
let counters t core = t.ctr.(core)
let all_counters t = t.ctr
let dram t = t.dram
let l1 t ~core = t.l1.(core)
let l2 t ~core = t.l2.(core)
let l3 t ~chip = t.l3.(chip)

let all_caches t =
  Array.to_list t.l1 @ Array.to_list t.l2 @ Array.to_list t.l3

let presence t = t.presence

let line_of t addr = addr lsr t.line_shift

(* Fan cache fill/remove notifications out to the machine-level observer
   list. Installed on every cache at the first [observe]; before that the
   caches carry no watcher and their notification sites stay free. The
   fan-outs are recursive list walks rather than [List.iter f] — the
   iterated closure would be a minor allocation per notification, and the
   observed access path is pinned zero-alloc too (the observers' own
   callbacks allocate or not on their own account). *)
let rec fill_list obs cache ~line ~victim =
  match obs with
  | [] -> ()
  | o :: rest ->
      o.on_fill ~cache ~line ~victim;
      fill_list rest cache ~line ~victim

let notify_fill t cache ~line ~victim = fill_list t.observers cache ~line ~victim

let rec remove_list obs cache ~line =
  match obs with
  | [] -> ()
  | o :: rest ->
      o.on_remove ~cache ~line;
      remove_list rest cache ~line

let notify_remove t cache ~line = remove_list t.observers cache ~line

let rec access_list obs ~now ~core ~line ~source =
  match obs with
  | [] -> ()
  | o :: rest ->
      o.on_access ~now ~core ~line ~source;
      access_list rest ~now ~core ~line ~source

let notify_access t ~now ~core ~line ~source =
  access_list t.observers ~now ~core ~line ~source

let observe t observer =
  if t.observers = [] then begin
    let w =
      Some
        {
          Cache.on_fill = (fun c ~line ~victim -> notify_fill t c ~line ~victim);
          Cache.on_remove = (fun c ~line -> notify_remove t c ~line);
        }
    in
    Array.iter (fun c -> Cache.set_watcher c w) t.l1;
    Array.iter (fun c -> Cache.set_watcher c w) t.l2;
    Array.iter (fun c -> Cache.set_watcher c w) t.l3
  end;
  t.observers <- observer :: t.observers

let observed t = t.observers <> []

(* Presence updates funnel through these wrappers so a shard view can log
   its own-bit updates for replay into peer mirrors. Packed one int per op:
   (line lsl 14) lor (core-or-chip lsl 2) lor op — 12 bits of core/chip
   index, wide enough for 256-core sweep topologies. Serial machines pay
   one branch. *)
let op_set_core = 0
let op_clear_core = 1
let op_set_chip = 2
let op_clear_chip = 3

let pack_pop ~line ~idx ~op = (line lsl 14) lor (idx lsl 2) lor op

let pset_core t ~line ~core =
  Presence.set_core t.presence ~line ~core;
  match t.shard with
  | None -> ()
  | Some s -> Intvec.push s.plog (pack_pop ~line ~idx:core ~op:op_set_core)

let pclear_core t ~line ~core =
  Presence.clear_core t.presence ~line ~core;
  match t.shard with
  | None -> ()
  | Some s -> Intvec.push s.plog (pack_pop ~line ~idx:core ~op:op_clear_core)

let pset_chip t ~line ~chip =
  Presence.set_chip t.presence ~line ~chip;
  match t.shard with
  | None -> ()
  | Some s -> Intvec.push s.plog (pack_pop ~line ~idx:chip ~op:op_set_chip)

let pclear_chip t ~line ~chip =
  Presence.clear_chip t.presence ~line ~chip;
  match t.shard with
  | None -> ()
  | Some s -> Intvec.push s.plog (pack_pop ~line ~idx:chip ~op:op_clear_chip)

(* A core "holds" a line when it is in its L1 or L2; clear the presence bit
   only when it has left both. *)
let core_still_holds t core line =
  Cache.contains t.l1.(core) line || Cache.contains t.l2.(core) line

(* The L3 is a victim cache, as on the paper's AMD system: lines enter it
   only when evicted from a private L2, and an L3 hit moves the line back
   into the reader's private hierarchy. Private L2s and the L3 therefore
   hold (mostly) disjoint lines, which is what makes the chip's aggregate
   capacity the paper's 16 MB (16 x 512 KB L2 + 4 x 2 MB L3). *)

let fill_l3 t chip line =
  let victim = Cache.fill_evict t.l3.(chip) line in
  if victim >= 0 then pclear_chip t ~line:victim ~chip;
  pset_chip t ~line ~chip

let fill_l1 t core line =
  let victim = Cache.fill_evict t.l1.(core) line in
  if victim >= 0 && not (Cache.contains t.l2.(core) victim) then
    pclear_core t ~line:victim ~core

let fill_l2 t core line =
  let victim = Cache.fill_evict t.l2.(core) line in
  if victim >= 0 && not (Cache.contains t.l1.(core) victim) then begin
    pclear_core t ~line:victim ~core;
    (* victim-cache insertion into the chip's L3 *)
    fill_l3 t t.chip_tab.(core) victim
  end

let fill_private t core line =
  fill_l1 t core line;
  fill_l2 t core line;
  pset_core t ~line ~core

(* One load: the cost in cache cycles of sourcing [line]. Lines that miss
   everywhere and fall through to DRAM cost 0 here; they are tallied into
   [t.dram_scratch] per home bank so [read]/[write] can batch them (fetches
   to different banks overlap). The whole path — probes, fills, presence
   updates, nearest-holder location — is allocation-free. *)
let read_line t ~core ~chip ~now line =
  let c = t.ctr.(core) in
  c.Counters.loads <- c.Counters.loads + 1;
  if Cache.probe t.l1.(core) line then begin
    c.Counters.l1_hits <- c.Counters.l1_hits + 1;
    notify_access t ~now ~core ~line ~source:src_l1;
    t.cfg.Config.l1_latency
  end
  else if Cache.probe t.l2.(core) line then begin
    c.Counters.l2_hits <- c.Counters.l2_hits + 1;
    fill_l1 t core line;
    pset_core t ~line ~core;
    notify_access t ~now ~core ~line ~source:src_l2;
    t.cfg.Config.l2_latency
  end
  else if Cache.probe t.l3.(chip) line then begin
    c.Counters.l3_hits <- c.Counters.l3_hits + 1;
    (* exclusive: the line moves from the L3 into the private hierarchy *)
    ignore (Cache.drop t.l3.(chip) line);
    pclear_chip t ~line ~chip;
    fill_private t core line;
    notify_access t ~now ~core ~line ~source:src_l3;
    t.cfg.Config.l3_latency
  end
  else begin
    (* Missed the local hierarchy: nearest remote holder, else home DRAM. *)
    let holder =
      Presence.nearest_core_holder t.presence ~line ~exclude_core:core
        ~chip_of:t.chip_tab ~from_chip:chip ~hops:t.hop_mat ~nchips:t.nchips
    in
    let holder_chip =
      if holder >= 0 then t.chip_tab.(holder)
      else
        Presence.nearest_chip_holder t.presence ~line ~exclude_chip:chip
          ~from_chip:chip ~hops:t.hop_mat ~nchips:t.nchips
    in
    if holder_chip >= 0 then begin
      c.Counters.remote_hits <- c.Counters.remote_hits + 1;
      fill_private t core line;
      notify_access t ~now ~core ~line ~source:src_remote;
      Topology.remote_cache_latency t.topo ~from_chip:chip
        ~to_chip:holder_chip
    end
    else begin
      let home =
        Topology.home_chip t.topo ~addr:(line * t.cfg.Config.line_bytes)
      in
      c.Counters.dram_loads <- c.Counters.dram_loads + 1;
      fill_private t core line;
      t.dram_scratch.(home) <- t.dram_scratch.(home) + 1;
      t.dram_touched <- true;
      notify_access t ~now ~core ~line ~source:src_dram;
      0
    end
  end

(* The accumulating loops below are recursive rather than [ref]-based:
   without flambda a local ref is a minor allocation, and [read]/[write]
   are the hottest functions in the simulator. *)

let rec read_lines t ~core ~chip ~now line last acc =
  if line > last then acc
  else
    read_lines t ~core ~chip ~now (line + 1) last
      (acc + read_line t ~core ~chip ~now line)

(* Cost of the batched DRAM traffic tallied in [t.dram_scratch]: fetches
   to different home banks overlap, so the result is the max over banks.
   Clears each bank tally as it reads it, restoring the all-zero scratch
   invariant without an [Array.fill] on every access. *)
let rec dram_batch_loop t ~now ~chip home acc =
  if home >= t.nchips then acc
  else begin
    let n = t.dram_scratch.(home) in
    let acc =
      if n = 0 then acc
      else begin
        t.dram_scratch.(home) <- 0;
        let c = Dram.fetch t.dram ~now ~from_chip:chip ~home_chip:home ~lines:n in
        if c > acc then c else acc
      end
    in
    dram_batch_loop t ~now ~chip (home + 1) acc
  end

let dram_batch_cost t ~now ~chip =
  if t.dram_touched then begin
    t.dram_touched <- false;
    dram_batch_loop t ~now ~chip 0 0
  end
  else 0

let read t ~core ~now ~addr ~len =
  if len <= 0 then 0
  else begin
    let chip = t.chip_tab.(core) in
    let first = line_of t addr in
    let last = line_of t (addr + len - 1) in
    let cache_cycles = read_lines t ~core ~chip ~now first last 0 in
    cache_cycles + dram_batch_cost t ~now:(now + cache_cycles) ~chip
  end

(* Invalidation of every other holder, walking the presence mask words and
   visiting only the set bits (ascending, as the old all-core loop did). *)
let rec invalidate_core_bits t line base m =
  if m <> 0 then begin
    let bit = m land -m in
    let h = base + Presence.bit_index bit 0 in
    ignore (Cache.invalidate t.l1.(h) line);
    ignore (Cache.invalidate t.l2.(h) line);
    pclear_core t ~line ~core:h;
    invalidate_core_bits t line base (m land lnot bit)
  end

let rec invalidate_chip_bits t line m =
  if m <> 0 then begin
    let bit = m land -m in
    let p = Presence.bit_index bit 0 in
    ignore (Cache.invalidate t.l3.(p) line);
    pclear_chip t ~line ~chip:p;
    invalidate_chip_bits t line (m land lnot bit)
  end

(* Invalidation commands shipped to remote chips: (line lsl 14) lor
   (victim lsl 2) lor kind, where kind 0 invalidates a core's L1+L2 copy
   and kind 1 a chip's L3 copy. *)
let ik_core = 0
let ik_chip = 1

(* Serial engine: drop every other core's and chip's copy immediately.
   Returns whether any other holder existed. *)
let rec serial_inval_words t line ~xw ~xbit w any =
  if w >= t.pwords then any
  else begin
    let m = Presence.core_word t.presence ~line ~w in
    let m = if w = xw then m land lnot xbit else m in
    if m = 0 then serial_inval_words t line ~xw ~xbit (w + 1) any
    else begin
      invalidate_core_bits t line (w * 32) m;
      serial_inval_words t line ~xw ~xbit (w + 1) true
    end
  end

(* Sharded engine: same-chip copies drop immediately, exactly as under
   the serial engine. Remote copies (per this chip's mirror, which may lag
   true state by up to one window) are invalidated by their owner at the
   window barrier: we must not touch a peer's caches, nor clear a peer's
   presence bits — those are the peer's to clear, and the clears reach us
   through its replayed log. *)
let rec shard_inval_bits t s line base m any =
  if m = 0 then any
  else begin
    let bit = m land -m in
    let h = base + Presence.bit_index bit 0 in
    if h >= s.first_core && h <= s.last_core then begin
      ignore (Cache.invalidate t.l1.(h) line);
      ignore (Cache.invalidate t.l2.(h) line);
      pclear_core t ~line ~core:h
    end
    else Intvec.push s.ilog ((line lsl 14) lor (h lsl 2) lor ik_core);
    shard_inval_bits t s line base (m land lnot bit) true
  end

let rec shard_inval_words t s line ~xw ~xbit w any =
  if w >= t.pwords then any
  else begin
    let m = Presence.core_word t.presence ~line ~w in
    let m = if w = xw then m land lnot xbit else m in
    let any = shard_inval_bits t s line (w * 32) m any in
    shard_inval_words t s line ~xw ~xbit (w + 1) any
  end

let rec shard_inval_chip_bits s line m =
  if m <> 0 then begin
    let bit = m land -m in
    let p = Presence.bit_index bit 0 in
    Intvec.push s.ilog ((line lsl 14) lor (p lsl 2) lor ik_chip);
    shard_inval_chip_bits s line (m land lnot bit)
  end

let invalidate_others t ~core ~chip line =
  let xw = core lsr 5 and xbit = 1 lsl (core land 31) in
  let chip_mask =
    Presence.chip_holders t.presence ~line land lnot (1 lsl chip)
  in
  match t.shard with
  | None ->
      let any = serial_inval_words t line ~xw ~xbit 0 false in
      invalidate_chip_bits t line chip_mask;
      any || chip_mask <> 0
  | Some s ->
      let any = shard_inval_words t s line ~xw ~xbit 0 false in
      shard_inval_chip_bits s line chip_mask;
      any || chip_mask <> 0

let rec write_lines t ~core ~chip ~now line last acc =
  if line > last then acc
  else begin
    let c = t.ctr.(core) in
    c.Counters.stores <- c.Counters.stores + 1;
    let acc = acc + read_line t ~core ~chip ~now line in
    let acc =
      if invalidate_others t ~core ~chip line then begin
        c.Counters.invalidations_sent <- c.Counters.invalidations_sent + 1;
        acc + t.cfg.Config.invalidate_cycles
      end
      else acc
    in
    write_lines t ~core ~chip ~now (line + 1) last acc
  end

let write t ~core ~now ~addr ~len =
  if len <= 0 then 0
  else begin
    let chip = t.chip_tab.(core) in
    let first = line_of t addr in
    let last = line_of t (addr + len - 1) in
    let cycles = write_lines t ~core ~chip ~now first last 0 in
    cycles + dram_batch_cost t ~now:(now + cycles) ~chip
  end

let line_resident t ~core ~addr =
  let line = line_of t addr in
  core_still_holds t core line

(* Per-line attribution into a dense per-object tally: object ids are
   allocation indices, so a flat int array replaces the old per-call
   Hashtbl + sort; ids come out ascending by construction. *)
let residency t cache =
  let n = Memsys.size t.mem in
  if Array.length t.res_scratch < n then t.res_scratch <- Array.make (max 64 n) 0
  else Array.fill t.res_scratch 0 n 0;
  let tally = t.res_scratch in
  Cache.iter_lines
    (fun line ->
      let id = Memsys.object_id_at t.mem ~addr:(line * t.cfg.Config.line_bytes) in
      if id >= 0 then tally.(id) <- tally.(id) + 1)
    cache;
  let acc = ref [] in
  for id = n - 1 downto 0 do
    if tally.(id) > 0 then acc := (Memsys.find_exn t.mem id, tally.(id)) :: !acc
  done;
  !acc

let object_residency t ext =
  List.filter_map
    (fun cache ->
      let n = ref 0 in
      let first = ext.Memsys.base / t.cfg.Config.line_bytes in
      let last =
        (ext.Memsys.base + ext.Memsys.size - 1) / t.cfg.Config.line_bytes
      in
      for line = first to last do
        if Cache.contains cache line then incr n
      done;
      if !n > 0 then Some (cache, !n) else None)
    (all_caches t)

let distinct_cached_lines t = Presence.tracked_lines t.presence

let check_presence_consistency t =
  let ncores = Config.cores t.cfg in
  let err = ref None in
  let set_err fmt = Format.kasprintf (fun s -> if !err = None then err := Some s) fmt in
  (* every cached line must have its presence bit set *)
  List.iter
    (fun cache ->
      Cache.iter_lines
        (fun line ->
          match Cache.level cache with
          | Cache.L1 | Cache.L2 ->
              let o = Cache.owner cache in
              if
                Presence.core_word t.presence ~line ~w:(o lsr 5)
                land (1 lsl (o land 31))
                = 0
              then set_err "%s holds line %d but presence bit clear"
                  (Cache.name cache) line
          | Cache.L3 ->
              if
                Presence.chip_holders t.presence ~line
                land (1 lsl Cache.owner cache)
                = 0
              then set_err "%s holds line %d but presence bit clear"
                  (Cache.name cache) line)
        cache)
    (all_caches t);
  (* every presence bit must correspond to a cached line *)
  Presence.iter_lines
    (fun line ->
      for c = 0 to ncores - 1 do
        if
          Presence.core_word t.presence ~line ~w:(c lsr 5)
          land (1 lsl (c land 31))
          <> 0
          && not (core_still_holds t c line)
        then
          set_err "presence says core %d holds line %d but caches do not" c
            line
      done;
      let chips = Presence.chip_holders t.presence ~line in
      for p = 0 to t.cfg.Config.chips - 1 do
        if chips land (1 lsl p) <> 0 && not (Cache.contains t.l3.(p) line)
        then set_err "presence says chip %d holds line %d but L3 does not" p line
      done)
    t.presence;
  match !err with None -> Ok () | Some e -> Error e

let place t ~core ~addr ~l1 ~l2 ~l3 =
  let line = line_of t addr in
  let chip = t.chip_tab.(core) in
  if l1 then fill_l1 t core line;
  if l2 then fill_l2 t core line;
  if l1 || l2 then pset_core t ~line ~core;
  if l3 then fill_l3 t chip line

let flush_line t ~addr =
  let line = line_of t addr in
  Array.iteri
    (fun c cache ->
      let dropped1 = Cache.drop cache line in
      let dropped2 = Cache.drop t.l2.(c) line in
      if dropped1 || dropped2 then ();
      pclear_core t ~line ~core:c)
    t.l1;
  Array.iteri
    (fun p cache ->
      ignore (Cache.drop cache line);
      pclear_chip t ~line ~chip:p)
    t.l3

let flush_all t =
  List.iter Cache.clear (all_caches t);
  let lines = ref [] in
  Presence.iter_lines (fun line -> lines := line :: !lines) t.presence;
  List.iter
    (fun line ->
      for c = 0 to Config.cores t.cfg - 1 do
        pclear_core t ~line ~core:c
      done;
      for p = 0 to t.cfg.Config.chips - 1 do
        pclear_chip t ~line ~chip:p
      done)
    !lines

let seconds_of_cycles t cycles =
  float_of_int cycles /. (t.cfg.Config.ghz *. 1e9)

(* ------------------------------------------------------------------ *)
(* Window-barrier merge, driven by the sharded engine's serial phase.  *)

let shard_info_exn t fn =
  match t.shard with
  | Some s -> s
  | None -> invalid_arg ("Machine." ^ fn ^ ": not a shard view")

let shard_outbox_empty t =
  let s = shard_info_exn t "shard_outbox_empty" in
  Intvec.is_empty s.plog && Intvec.is_empty s.ilog

(* Replay [src]'s presence log into [dst]'s mirror. [src]'s log references
   only [src]-owned bits, so replays from different chips commute; within
   one chip's log the order is the order the updates happened. *)
let shard_replay_presence dst ~src =
  let s = shard_info_exn src "shard_replay_presence" in
  let n = Intvec.length s.plog in
  for i = 0 to n - 1 do
    let e = Intvec.unsafe_get s.plog i in
    let line = e lsr 14 in
    let idx = (e lsr 2) land 0xfff in
    match e land 0x3 with
    | 0 (* op_set_core *) -> Presence.set_core dst.presence ~line ~core:idx
    | 1 (* op_clear_core *) -> Presence.clear_core dst.presence ~line ~core:idx
    | 2 (* op_set_chip *) -> Presence.set_chip dst.presence ~line ~chip:idx
    | _ (* op_clear_chip *) -> Presence.clear_chip dst.presence ~line ~chip:idx
  done

(* Apply the commands in [src]'s invalidation log that target [victim]'s
   chip: drop the line from the victim's caches and clear the victim's own
   presence bits. The clears go through the logging wrappers, so peers
   (including the writer) learn of them when [victim]'s next-window log is
   replayed — remote state is stale by at most one window either way. *)
let shard_apply_invals victim ~src =
  let sv = shard_info_exn victim "shard_apply_invals" in
  let ss = shard_info_exn src "shard_apply_invals(src)" in
  let n = Intvec.length ss.ilog in
  for i = 0 to n - 1 do
    let e = Intvec.unsafe_get ss.ilog i in
    let line = e lsr 14 in
    let idx = (e lsr 2) land 0xfff in
    match e land 0x3 with
    | 0 (* ik_core *) ->
        if idx >= sv.first_core && idx <= sv.last_core then begin
          ignore (Cache.invalidate victim.l1.(idx) line);
          ignore (Cache.invalidate victim.l2.(idx) line);
          pclear_core victim ~line ~core:idx
        end
    | _ (* ik_chip *) ->
        if idx = sv.shard_chip then begin
          ignore (Cache.invalidate victim.l3.(idx) line);
          pclear_chip victim ~line ~chip:idx
        end
  done

let shard_absorb_dram dst ~src ~window_start =
  Dram.absorb dst.dram ~src:src.dram ~window_start

(* Barrier order matters: presence logs and DRAM deltas are replayed and
   then cleared BEFORE invalidations are applied, so the presence clears
   that [shard_apply_invals] performs land in the victim's fresh log and
   are replayed to peers at the NEXT barrier. The ilogs are cleared last. *)
let shard_clear_plog_and_dram t =
  let s = shard_info_exn t "shard_clear_plog_and_dram" in
  Intvec.clear s.plog;
  Dram.clear_deltas t.dram

let shard_clear_ilog t =
  let s = shard_info_exn t "shard_clear_ilog" in
  Intvec.clear s.ilog
