(* A growable vector of unboxed ints. The shard outbox logs (presence ops,
   invalidation commands, DRAM deltas) push into these on the simulator hot
   path, so [push] must not allocate in the steady state: the backing array
   doubles amortized and is never shrunk, and [clear] just resets the
   length. *)

type t = { mutable a : int array; mutable len : int }

let create ?(cap = 64) () = { a = Array.make (max 1 cap) 0; len = 0 }

let push t v =
  if t.len = Array.length t.a then begin
    let bigger =
      (Array.make (2 * t.len) 0 [@alloc_ok "amortized doubling, never shrunk"])
    in
    Array.blit t.a 0 bigger 0 t.len;
    t.a <- bigger
  end;
  Array.unsafe_set t.a t.len v;
  t.len <- t.len + 1

let length t = t.len
let get t i = t.a.(i)
let unsafe_get t i = Array.unsafe_get t.a i
let clear t = t.len <- 0
let is_empty t = t.len = 0

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.a i)
  done
