(** One cache array (an L1, an L2 or an L3): an LRU set of lines tagged
    with its identity. Placement and coherence live in {!Machine}; this
    module only answers "is line [l] here?" and maintains recency.
    Hit/miss/eviction accounting lives in the per-core {!Counters} that
    {!Machine} maintains — a probe is exactly an LRU touch. *)

type level = L1 | L2 | L3

type t

type watcher = {
  on_fill : t -> line:int -> victim:int -> unit;
      (** Called after every {!fill_evict}; [victim] is the evicted line or
          [-1]. The cache already contains [line] and no longer contains the
          victim when the watcher runs. *)
  on_remove : t -> line:int -> unit;
      (** Called after a present line leaves by {!invalidate}, {!drop} or
          {!clear} (evictions are reported as the [victim] of [on_fill]). *)
}
(** Observation hook for the cache observatory. At most one watcher per
    cache; {!Machine.observe} installs a forwarder that fans out. Watchers
    must only observe — they run on the access hot path and must not touch
    cache or simulator state. With no watcher the notification sites cost a
    single immediate match (zero allocation, pinned by suite_hotpath). *)

val create : level -> owner:int -> cap_bytes:int -> line_bytes:int -> t
(** [owner] is a core id for L1/L2 and a chip id for L3. *)

val set_watcher : t -> watcher option -> unit
val watched : t -> bool

val level : t -> level
val owner : t -> int
val capacity_lines : t -> int
val resident_lines : t -> int

val probe : t -> int -> bool
(** [probe t line] is a lookup for the access path: touches the line's
    recency and reports whether it was present. *)

val contains : t -> int -> bool
(** Membership without touching recency (for assertions and snapshots). *)

val fill_evict : t -> int -> int
(** Insert a line after a miss: the evicted victim line, or [-1] when
    nothing was evicted. Allocation-free (the access path uses this). *)

val invalidate : t -> int -> bool
(** Coherence removal; returns whether the line was present. *)

val drop : t -> int -> bool
(** Silent removal (inclusion maintenance). *)

val iter_lines : (int -> unit) -> t -> unit
val clear : t -> unit
val level_to_string : level -> string
val name : t -> string
(** e.g. ["L2[core3]"] or ["L3[chip1]"]. *)
