(** The simulated multicore machine: per-core L1/L2, per-chip L3, a
    coherence presence directory, bandwidth-limited DRAM and per-core event
    counters.

    {!read} and {!write} are the only operations workload code performs;
    they walk the same path real loads take on the paper's AMD system —
    L1, L2, local L3, then the nearest remote cache located by snooping,
    then the home DRAM bank — charge the corresponding latencies
    (3 / 14 / 75 / 127..336 cycles on {!Config.amd16}), move lines between
    caches, and maintain the presence directory. Placement is therefore
    controlled exactly as on real hardware: only by choosing {e which core
    performs the access} — which is the lever the O2 scheduler pulls. *)

type t

val create : Config.t -> t
(** @raise Invalid_argument if the configuration does not {!Config.validate}. *)

val cfg : t -> Config.t
val topology : t -> Topology.t
val memory : t -> Memsys.t
val counters : t -> int -> Counters.t
val all_counters : t -> Counters.t array
val dram : t -> Dram.t

val read : t -> core:int -> now:int -> addr:int -> len:int -> int
(** [read t ~core ~now ~addr ~len] performs a load of [len] bytes starting
    at [addr] on [core] at virtual time [now] and returns its cost in
    cycles. Lines that miss everywhere are streamed from their home DRAM
    banks; misses to different banks overlap, so the DRAM component of the
    cost is the {e maximum} over banks rather than the sum. *)

val write : t -> core:int -> now:int -> addr:int -> len:int -> int
(** Like {!read} but obtains each line exclusively, invalidating every
    other cached copy (cache-coherence write). *)

(** {2 Inspection} *)

val l1 : t -> core:int -> Cache.t
val l2 : t -> core:int -> Cache.t
val l3 : t -> chip:int -> Cache.t
val all_caches : t -> Cache.t list

val presence : t -> Presence.t
(** The coherence directory (read-only for observers: the occupancy
    report counts hardware-replicated lines through it). *)

val line_resident : t -> core:int -> addr:int -> bool
(** Whether the line containing [addr] is in [core]'s L1 or L2. *)

(** {2 Cache observatory hooks}

    The access-stream sources, as bare ints so observers can index
    per-source arrays without a hot-path match: where each loaded line was
    found. *)

val src_l1 : int
val src_l2 : int
val src_l3 : int

val src_remote : int
(** Another core's or chip's cache, over the interconnect. *)

val src_dram : int

type observer = {
  on_access : now:int -> core:int -> line:int -> source:int -> unit;
      (** One line sourced by {!read} / {!write}: [now] is the access's
          start time, [source] one of the [src_*] constants above. *)
  on_fill : cache:Cache.t -> line:int -> victim:int -> unit;
      (** A line entered [cache] ([victim] evicted, or [-1]). *)
  on_remove : cache:Cache.t -> line:int -> unit;
      (** A present line left [cache] by invalidation, drop or clear. *)
}

val observe : t -> observer -> unit
(** Subscribe an observer for the machine's lifetime (first subscription
    installs the {!Cache.watcher} forwarders). Observers must not mutate
    simulator state; they run synchronously on the access path. With no
    observer every notification site is a single branch and allocates
    nothing (pinned by suite_hotpath). *)

val observed : t -> bool

val residency : t -> Cache.t -> (Memsys.extent * int) list
(** For one cache, how many lines of each registered object are resident
    (objects with zero lines omitted); drives the Figure 2 snapshot. *)

val object_residency : t -> Memsys.extent -> (Cache.t * int) list
(** Where one object's lines currently live. *)

val distinct_cached_lines : t -> int
(** Lines present in at least one cache — the "distinct data stored on
    chip" the paper argues O2 scheduling maximises. *)

val check_presence_consistency : t -> (unit, string) result
(** Verify the presence directory agrees exactly with cache contents
    (test-suite invariant). *)

(** {2 Test and experiment hooks}

    These manipulate simulator state directly, bypassing costs. They exist
    so the latency-validation experiment (paper Section 5 "Hardware") and
    the unit tests can place lines at a precise level before probing. *)

val place : t -> core:int -> addr:int -> l1:bool -> l2:bool -> l3:bool -> unit
val flush_line : t -> addr:int -> unit
val flush_all : t -> unit

val seconds_of_cycles : t -> int -> float

(** {2 Shard views (windowed sharded engine)}

    [shard_view root ~chip] is chip [chip]'s view of [root] for the
    conservative time-window engine: it shares the cache arrays, counters,
    memory map and topology (a chip only mutates its own cores' caches and
    counters), but owns a private presence mirror, a private DRAM mirror
    with per-window delta tracking, and outbox logs of this window's
    own-bit presence updates and outbound invalidations. The engine's
    barrier serial phase replays each view's logs into its peers with the
    [shard_*] functions below, in this order for every window: replay
    presence logs pairwise, absorb DRAM deltas pairwise, clear presence
    logs and deltas, apply invalidation logs pairwise (the victims' own
    presence clears land in their next-window logs), clear invalidation
    logs. Remote state in any mirror is thus stale by at most one window.

    The root machine's own presence directory and DRAM are NOT maintained
    while shard views are driving the caches; consistency checks and
    occupancy reports apply to serial runs only. *)

val shard_view : t -> chip:int -> t
(** @raise Invalid_argument when applied to a view, or when the config
    has more than 4096 cores (the packed shard-log entries carry a
    12-bit core/chip index). The per-line presence masks are multi-word
    (32 bits per word), so wide machines — future64's 8x8, 256-core
    sweeps — shard fine. *)

val shard_chip : t -> int
(** The view's chip, or [-1] for a root machine. *)

val shard_outbox_empty : t -> bool
(** No cross-chip traffic was generated this window (barrier fast path). *)

val shard_replay_presence : t -> src:t -> unit
val shard_apply_invals : t -> src:t -> unit
val shard_absorb_dram : t -> src:t -> window_start:int -> unit
val shard_clear_plog_and_dram : t -> unit
val shard_clear_ilog : t -> unit
