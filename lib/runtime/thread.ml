type state = Runnable | Spinning | Migrating | Finished

(* An open slot for scheduler layers (CoreTime) to hang per-thread state
   off the thread itself. Thread-local storage is what makes the state
   safe under the sharded engine: a thread only ever runs on one domain
   at a time, and cross-chip handoffs pass through a window barrier. *)
type ctx = ..
type ctx += No_ctx

type t = {
  id : int;
  name : string;
  origin_core : int;
  mutable core : int;
  mutable state : state;
  mutable migrations : int;
  mutable ctx : ctx;
}

let make ~id ~name ~core =
  {
    id;
    name;
    origin_core = core;
    core;
    state = Runnable;
    migrations = 0;
    ctx = No_ctx;
  }

let state_to_string = function
  | Runnable -> "runnable"
  | Spinning -> "spinning"
  | Migrating -> "migrating"
  | Finished -> "finished"

let pp ppf t =
  Format.fprintf ppf "thread %d (%s) on core %d [%s, %d migrations]" t.id
    t.name t.core (state_to_string t.state) t.migrations
