(** A cooperative simulated thread.

    Mirrors CoreTime's threading model (Section 4, "Implementation"): each
    simulated core runs one pinned worker, and threads within it are
    cooperative — they only leave a core at explicit points (migration,
    yield, lock hand-off, termination). *)

type state =
  | Runnable  (** On some core's run queue or currently executing. *)
  | Spinning  (** Blocked acquiring a spin lock (occupies its core). *)
  | Migrating  (** Context in flight between cores. *)
  | Finished

type ctx = ..
(** An open slot for scheduler layers (CoreTime) to hang per-thread
    state off the thread itself — e.g. the stack of open operation
    frames. Keeping it thread-local makes it safe under the sharded
    engine: a thread runs on one domain at a time, and cross-chip
    handoffs pass through a window barrier. *)

type ctx += No_ctx  (** Initial value: nothing attached. *)

type t = {
  id : int;
  name : string;
  origin_core : int;  (** The core the thread was spawned on. *)
  mutable core : int;  (** Where it is currently placed. *)
  mutable state : state;
  mutable migrations : int;  (** How many times it has migrated. *)
  mutable ctx : ctx;  (** See {!type:ctx}. *)
}

val make : id:int -> name:string -> core:int -> t
val state_to_string : state -> string
val pp : Format.formatter -> t -> unit
