(** Cross-shard plumbing for the windowed sharded engine.

    {!Outbox} buffers one chip's outbound cross-chip effects (migration
    arrivals, shipped operations, lock protocol messages) as timestamped
    thunks during a window; the coordinator drains them in posting order in
    the barrier's serial phase. {!Barrier} is the coordinator/worker round
    barrier: spin-then-block, so it degrades gracefully when domains
    outnumber hardware cores. *)

module Outbox : sig
  type t

  val create : unit -> t
  val length : t -> int
  val is_empty : t -> bool

  val push : t -> arrive:int -> (unit -> unit) -> unit
  (** Record a delivery taking effect at virtual time [arrive]. *)

  val drain : t -> deadline:int -> unit
  (** Run all pending thunks in posting order and reset.
      @raise Invalid_argument if any arrival is before [deadline] — a
      cross-chip effect outran the conservative window. *)
end

module Domains : sig
  type handle

  val spawn : (unit -> unit) -> handle
  val join : handle -> unit
end

module Barrier : sig
  type t

  val exit_round : int
  (** Sentinel stop time telling workers to return. *)

  val create : workers:int -> t
  val post_round : t -> stop:int -> unit
  val wait_round : t -> seen:int -> int * int
  (** Worker side: blocks until a round newer than [seen] is posted;
      returns [(round, stop_time)]. *)

  val worker_done : t -> worker:int -> round:int -> unit
  val wait_workers : t -> round:int -> unit
  val shutdown : t -> unit
end
