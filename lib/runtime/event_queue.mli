(** A minimum priority queue of timestamped events.

    Ties on time are broken by insertion order (FIFO), which makes the
    whole simulation deterministic: two events scheduled for the same cycle
    always fire in the order they were scheduled.

    The heap stores times and sequence numbers in unboxed int arrays, so
    {!push}, {!min_time} and {!pop_min} allocate nothing (outside of
    amortised array growth) — this queue sits on the engine's innermost
    loop. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:int -> 'a -> unit
(** @raise Invalid_argument if [time < 0]. *)

val min_time : 'a t -> int
(** Time of the earliest event, without allocating.
    @raise Invalid_argument on an empty queue. *)

val pop_min : 'a t -> 'a
(** Remove and return the earliest event's payload, without allocating.
    @raise Invalid_argument on an empty queue. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event as [(time, payload)]. Allocating
    convenience wrapper over {!min_time} + {!pop_min}. *)

val peek_time : 'a t -> int option
val clear : 'a t -> unit

val check_heap_property : 'a t -> bool
(** For the property tests. *)
