(** A fixed pool of OCaml 5 domains for running independent simulation
    cells in parallel.

    This is the one place in the tree that spawns {e real} domains: the
    simulated machine is single-domain and deterministic, but experiment
    sweeps (Figure 4's 13-point ladder, the ablation grids) are
    embarrassingly parallel — every cell builds a fresh
    [Machine]/[Engine]/[Coretime] and shares no mutable state — so the
    harness farms whole cells out to a pool and reassembles results in
    input order. Parallel output is bit-identical to sequential output
    because each cell's RNG seeding depends only on its spec.

    The pool is a plain mutex/condition work queue: [run] enqueues one
    thunk per element, worker domains (and the calling domain, which
    drains the queue too) pull thunks until the batch completes. A pool
    may be reused for any number of batches before [shutdown]. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains (the caller is the
    [jobs]th worker during {!run}). [jobs = 1] spawns no domains at all —
    every batch runs inline, exactly like a plain [List.map].
    @raise Invalid_argument if [jobs <= 0]. *)

val jobs : t -> int

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the detected core count. *)

val clamped : what:string -> int -> int
(** [clamped ~what n] is [min n (default_jobs ())], warning on stderr
    (once per process per [what] label) when it actually clamps.
    Oversubscribing real domains never speeds anything up — the experiment
    harness and the native backend's domain ladder both clamp through
    here so the diagnostic reads the same everywhere. *)

val run : t -> ('a -> 'b) -> 'a list -> 'b list
(** [run t f xs] applies [f] to every element of [xs], using every domain
    of the pool plus the calling domain, and returns the results {e in
    input order}. If one or more applications raise, the whole batch still
    runs to completion and the exception of the smallest input index is
    re-raised in the caller. Not reentrant: one batch at a time per pool. *)

val map : ?pool:t -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [run] on [pool] when given, else on a transient
    pool of [jobs] workers (created and shut down around the batch).
    [jobs <= 1] is sequential [List.map] — no domains, no queue. *)

val shutdown : t -> unit
(** Graceful teardown: signal the workers to exit once the queue is empty
    and join them. Idempotent. *)

val with_pool : jobs:int -> (t -> 'b) -> 'b
(** [with_pool ~jobs f] runs [f] with a fresh pool, guaranteeing
    {!shutdown} on exit (normal or exceptional). *)
