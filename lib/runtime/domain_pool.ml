(* A mutex/condition work queue shared by [jobs - 1] worker domains plus
   the calling domain. Tasks are plain thunks; [run] packages each list
   element as a thunk that writes its slot of a results array, so result
   order is the input order no matter which domain ran which element.

   Everything under the mutex is cheap bookkeeping — each task itself (a
   whole simulation cell, typically tens of milliseconds) runs unlocked,
   so contention on the queue is negligible. *)

type t = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t; (* signalled when tasks arrive or [stop] flips *)
  tasks : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = Domain.recommended_domain_count ()
let jobs t = t.jobs

(* More domains than hardware cores never helps — parallel sweeps just
   pick up scheduling churn (BENCH_fig4.json once recorded jobs=2 running
   0.81x as fast as jobs=1 on a 1-core host) and the native backend adds
   stealing traffic between workers that time-share a core — so every
   request funnels through this clamp. One warning per [what] label per
   process: a sweep re-clamps per batch and the CLI per run. *)
let clamp_warned : (string, unit) Hashtbl.t = Hashtbl.create 4

let clamped ~what requested =
  let avail = default_jobs () in
  if requested <= avail then requested
  else begin
    if not (Hashtbl.mem clamp_warned what) then begin
      Hashtbl.add clamp_warned what ();
      Printf.eprintf
        "%s: clamping %d to the %d core(s) Domain.recommended_domain_count \
         reports — extra domains only slow things down\n%!"
        what requested avail
    end;
    avail
  end

let rec worker t =
  Mutex.lock t.m;
  while Queue.is_empty t.tasks && not t.stop do
    Condition.wait t.work t.m
  done;
  match Queue.take_opt t.tasks with
  | None ->
      (* stopped and drained *)
      Mutex.unlock t.m
  | Some task ->
      Mutex.unlock t.m;
      task ();
      worker t

let create ~jobs =
  if jobs <= 0 then invalid_arg "Domain_pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      m = Mutex.create ();
      work = Condition.create ();
      tasks = Queue.create ();
      stop = false;
      domains = [];
    }
  in
  (* The caller drains the queue during [run], so it counts as one of the
     [jobs] workers and only [jobs - 1] domains are spawned. *)
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join t.domains;
  t.domains <- []

let run t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs ->
      let inputs = Array.of_list xs in
      let n = Array.length inputs in
      let results = Array.make n None in
      (* When several elements raise, the one with the smallest input index
         wins — the same exception a sequential [List.map] would surface —
         so propagation is deterministic regardless of completion order. *)
      let error = ref None in
      let remaining = ref n in
      let batch_done = Condition.create () in
      let task i () =
        let r = try Ok (f inputs.(i)) with e -> Error e in
        Mutex.lock t.m;
        (match r with
        | Ok v -> results.(i) <- Some v
        | Error e -> (
            match !error with
            | Some (j, _) when j < i -> ()
            | _ -> error := Some (i, e)));
        decr remaining;
        if !remaining = 0 then Condition.broadcast batch_done;
        Mutex.unlock t.m
      in
      Mutex.lock t.m;
      for i = 0 to n - 1 do
        Queue.add (task i) t.tasks
      done;
      Condition.broadcast t.work;
      (* The caller helps: drain tasks until the queue is empty, then wait
         for whatever the worker domains still have in flight. *)
      let rec drain () =
        match Queue.take_opt t.tasks with
        | Some task ->
            Mutex.unlock t.m;
            task ();
            Mutex.lock t.m;
            drain ()
        | None -> ()
      in
      drain ();
      while !remaining > 0 do
        Condition.wait batch_done t.m
      done;
      Mutex.unlock t.m;
      (match !error with Some (_, e) -> raise e | None -> ());
      Array.to_list (Array.map Option.get results)

let map ?pool ~jobs f xs =
  match pool with
  | Some t -> run t f xs
  | None ->
      if jobs <= 1 then List.map f xs
      else
        let t = create ~jobs in
        Fun.protect ~finally:(fun () -> shutdown t) (fun () -> run t f xs)

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
