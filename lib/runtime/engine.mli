(** The per-core cooperative scheduler and discrete-event simulation loop.

    Each simulated core has a virtual cycle clock and a run queue; the
    engine always advances the earliest pending event (ties in scheduling
    order), so execution is deterministic and conservatively ordered — no
    core ever observes memory "from the future" of another core.

    Threads execute OCaml code directly; when they perform an {!Api}
    effect the engine computes its cost on the {!O2_simcore.Machine},
    charges the core's clock and counters, and resumes the thread when the
    virtual time has passed. Cooperative semantics match CoreTime's: a
    core runs one operation at a time and switches only at migration,
    yield, lock or termination points; spinning on a lock occupies the
    core. *)

type t

exception Not_lock_owner of string
(** Raised out of {!run} when a thread releases a spin lock it does not
    hold — a bug in the simulated program. *)

val create : O2_simcore.Machine.t -> t

val create_sharded : O2_simcore.Machine.t -> shards:int -> t
(** A windowed engine sharding the cell by chip (see DESIGN.md, "Sharded
    time"). Every chip gets its own event queue, machine shard view and
    outbox, and advances independently inside conservative windows
    [T, T+Δ) with Δ = {!O2_simcore.Config.sync_window}; cross-chip
    effects (presence updates, invalidations, DRAM contention, migration
    and shipping arrivals, lock messages) apply at the window barrier.
    [shards] only chooses how many domains execute the fixed per-chip
    work — [min shards chips] domains are used — so results are
    bit-identical for every [shards >= 1].

    The returned facade engine is the handle for {!spawn}/{!at}/{!run};
    probes must stay inactive and cache observers are unsupported.
    @raise Invalid_argument if [shards < 1], if [machine] is itself a
    shard view, or if it has cache observers attached. *)

val machine : t -> O2_simcore.Machine.t
val cores : t -> int

val is_sharded : t -> bool

val shards : t -> int
(** Worker domains a {!run} call uses: 0 on a serial engine, the clamped
    domain count on a sharded facade. *)

val on_barrier : t -> (wstart:int -> wend:int -> unit) -> unit
(** Register a hook running in the barrier's serial phase after machine
    state is merged, once per completed window [\[wstart, wend)].
    CoreTime uses this to merge and apply per-chip operation logs.
    @raise Invalid_argument on a non-sharded engine. *)

val probe : t -> Probe.t
(** The engine's observation hooks: every memory access, lock transfer and
    thread lifecycle event flows through this probe (see {!Probe}). The
    analysis layer in [lib/analysis] subscribes here; with no subscribers
    the hooks cost nothing. *)

val spawn : t -> core:int -> name:string -> (unit -> unit) -> Thread.t
(** Create a thread on [core]'s run queue, runnable at the current virtual
    time. The body runs when the engine next dispatches that core.
    @raise Invalid_argument if [core] is out of range. *)

val at : t -> time:int -> (now:int -> unit) -> unit
(** Run a zero-cost control callback at a virtual time (used by monitors
    and workload phase changes).
    @raise Invalid_argument if [time] is in the past. *)

val every : t -> period:int -> ?start:int -> (now:int -> unit) -> unit
(** Recurring {!at}. [start] defaults to [period] from now. Recurring
    callbacks are daemons: they run as long as the simulation has other
    work, but never keep it alive on their own. *)

val run : ?until:int -> ?stop_when:(unit -> bool) -> t -> unit
(** Process events until only daemon events remain, the next event is past
    [until] (virtual cycles), or [stop_when ()] becomes true (checked after
    every event). The engine can be [run] again afterwards to continue.

    On a sharded facade this drives the windowed loop instead: worker
    domains are spawned per call and joined before it returns, a horizon
    mid-window pauses without running the barrier (a later [run] resumes
    the same window), and [stop_when] is rejected with [Invalid_argument]
    (there is no global per-event sequencing to check it against). *)

val now : t -> int
(** Virtual time of the most recently processed event. *)

val core_clock : t -> int -> int
val runq_length : t -> int -> int
val events_processed : t -> int

val finalize_idle : t -> unit
(** Charge idle cycles up to {!now} for cores currently idle; call before
    reading idle-cycle counters at the end of a measurement interval. *)

val live_threads : t -> int
(** Threads spawned and not yet finished. *)
