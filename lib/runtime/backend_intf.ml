(** The backend surface a CoreTime workload program is written against.

    The repo has two execution backends for the paper's object/operation
    model: the deterministic simulator (engine + virtual machine +
    CoreTime, the oracle) and the native backend in [lib/native], which
    runs the same model on real OCaml 5 domains. A workload written
    against this signature — via the functors in
    [O2_native.Backend_kv] / [O2_native.Backend_dir] — runs unchanged on
    both, which is what makes the oracle cross-check possible: the same
    program must produce identical logical results and consistent
    counter invariants on either backend.

    The signature is the Api/CoreTime surface with the simulator's
    address arithmetic abstracted away: objects are dense integer
    handles ([register] hands them out), memory traffic is expressed as
    [touch] against an (object, offset) pair, and operations are
    bracketed by [with_op] exactly as [Coretime.with_op] brackets them.
    On the simulator [touch]/[compute] charge virtual cycles through
    {!Api}; on the native backend memory cost is real, so [touch] is
    free and [compute] spins for real work. *)

module type S = sig
  type t

  val name : t -> string
  (** ["sim"] or ["native"] — for reports and error messages. *)

  val cores : t -> int
  (** Execution lanes: simulated cores, or pool domains. *)

  val probe : t -> Probe.t
  (** The backend's observation hooks. The simulator emits the full
      event stream; the native backend emits only quiescent-point
      monitor events ([Rebalanced]) — see DESIGN.md, "Two backends, one
      API", for exactly what the cross-check does and does not pin. *)

  val register : t -> size:int -> name:string -> int
  (** Declare an object of [size] bytes; returns its dense handle.
      Must be called while the backend is quiescent (before [run], or
      between a completed [run] and the next spawn). *)

  val objects : t -> int
  (** Handles issued so far; valid handles are [0 .. objects - 1]. *)

  val spawn : t -> core:int -> name:string -> (unit -> unit) -> unit
  (** Queue a client body on a lane. Bodies run when [run] drives the
      backend; they may be scheduled elsewhere by the backend (the
      native pool steals idle-lane work). *)

  val with_op : t -> ?write:bool -> int -> (unit -> 'a) -> 'a
  (** Bracket one operation on an object handle, from inside a spawned
      body. Both backends ship the operation to the object's home lane
      (simulator: thread migration; native: the continuation is
      enqueued on the home domain) and count it there. *)

  val touch : t -> write:bool -> obj:int -> off:int -> len:int -> unit
  (** The cost of touching [len] bytes at [off] inside an object:
      charged cycles on the simulator, free on native (the access the
      caller performs on its host-side data is the real cost). *)

  val compute : t -> int -> unit
  (** [cycles] of non-memory work: virtual on the simulator, a real
      spin on native. *)

  val run : t -> unit
  (** Drive every spawned body to completion and quiesce. *)

  (* The counter surface the oracle compares. All of these are stable
     only while the backend is quiescent. *)

  val ops_completed : t -> int
  (** Operations bracketed by [with_op] that ran to completion. *)

  val object_ops : t -> int -> int
  (** Completed operations attributed to one object handle. *)

  val ships : t -> int * int
  (** [(out, in_)]: operations that left their submitting lane for the
      object's home, and operations that arrived by shipping. Both
      backends must keep these balanced ([out = in_] at quiescence). *)

  val migrations : t -> int
  (** Object home reassignments made by the backend's monitor. *)
end
