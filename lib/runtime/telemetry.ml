(* Wall-clock telemetry for the native backend: the flight recorder's
   concurrent sibling. The simulator's Probe delivers events to listener
   closures synchronously — fine on one domain, a contention machine on
   many. Here every writer owns a sink nobody else touches: worker d
   writes sinks.(d), the coordinator writes sinks.(domains), and readers
   only look at quiescence (drain returned, pool idle). No atomics, no
   locks, no cross-domain writes on the hot path.

   Each sink is a flat int-array ring of fixed-width records stamped with
   CLOCK_MONOTONIC nanoseconds (bechamel's noalloc stub). The stamp is
   clamped per-writer to be nondecreasing, so a sink's ring is sorted by
   construction and the k-way merge in O2_obs.Native_tel needs no sort.
   When a ring is full new records are dropped (drop-newest) and counted
   per sink — the retained window is a prefix, never a torn middle.

   Latency aggregation does not ride the ring: with_op carries its own
   timestamps in locals across domain handoffs (they live in the shipped
   continuation) and feeds log2-bucket accumulators on the sink where
   the op ended. That is what makes metrics-only telemetry cheap enough
   to leave attached during throughput measurement: two clock reads and
   a few int-array writes per op, no ring traffic at all.

   Zero-cost when off: the disabled singleton never reaches a clock read
   or a ring write because every call site in lib/native is guarded by
   [enabled]; the guard plus the argument loads are branch + int reads,
   pinned allocation-free by suite_hotpath and the o2staticcheck
   manifest. *)

let buckets = 63
(* Same log2 layout as O2_obs.Hist: bucket 0 holds 0, bucket k >= 1
   holds [2^(k-1), 2^k). Hist.of_raw imports these verbatim. *)

type acc = {
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let make_acc () =
  { counts = Array.make buckets 0; total = 0; sum = 0; min_v = max_int; max_v = 0 }

(* Top-level so bucket_of allocates no closure (it is manifest-pinned). *)
let rec significant_bits acc v =
  if v = 0 then acc else significant_bits (acc + 1) (v lsr 1)

let bucket_of v = significant_bits 0 v

let observe a v =
  let v = if v < 0 then 0 else v in
  a.counts.(bucket_of v) <- a.counts.(bucket_of v) + 1;
  a.total <- a.total + 1;
  a.sum <- a.sum + v;
  if v < a.min_v then a.min_v <- v;
  if v > a.max_v then a.max_v <- v

let acc_counts a = a.counts
let acc_total a = a.total
let acc_sum a = a.sum
let acc_min a = a.min_v
let acc_max a = a.max_v

type kind =
  | Steal  (* a = victim domain *)
  | Park
  | Wake
  | Inbox_batch  (* a = tasks delivered by one drain *)
  | Spawned  (* a = target domain *)
  | Submit  (* a = token, b = obj *)
  | Ship_out  (* a = token, b = obj, c = destination domain *)
  | Ship_in  (* a = token, b = obj, c = source domain *)
  | Start  (* a = token, b = obj *)
  | End  (* a = token, b = obj *)
  | Rebalance  (* a = moves *)
  | Quiesce

let int_of_kind = function
  | Steal -> 0
  | Park -> 1
  | Wake -> 2
  | Inbox_batch -> 3
  | Spawned -> 4
  | Submit -> 5
  | Ship_out -> 6
  | Ship_in -> 7
  | Start -> 8
  | End -> 9
  | Rebalance -> 10
  | Quiesce -> 11

let kind_of_int = function
  | 0 -> Steal
  | 1 -> Park
  | 2 -> Wake
  | 3 -> Inbox_batch
  | 4 -> Spawned
  | 5 -> Submit
  | 6 -> Ship_out
  | 7 -> Ship_in
  | 8 -> Start
  | 9 -> End
  | 10 -> Rebalance
  | 11 -> Quiesce
  | k -> invalid_arg (Printf.sprintf "Telemetry.kind_of_int: %d" k)

let kind_name = function
  | Steal -> "steal"
  | Park -> "park"
  | Wake -> "wake"
  | Inbox_batch -> "inbox_batch"
  | Spawned -> "spawned"
  | Submit -> "submit"
  | Ship_out -> "ship_out"
  | Ship_in -> "ship_in"
  | Start -> "start"
  | End -> "end"
  | Rebalance -> "rebalance"
  | Quiesce -> "quiesce"

(* Record width: ts, kind, a, b, c. *)
let width = 5

type sink = {
  id : int;
  sample : int;  (* 0 = span events never enter the ring; N = 1-in-N ops *)
  buf : int array;  (* cap * width *)
  cap : int;  (* records, not ints *)
  mutable len : int;
  mutable drops : int;
  mutable last_ts : int;
  mutable seq : int;  (* ops submitted from this sink, tokens minted here *)
  mutable steals : int;
  mutable ships_out : int;
  mutable ships_in : int;
  mutable parks : int;
  mutable wakes : int;
  mutable spawns : int;
  mutable inbox_batches : int;
  mutable inbox_tasks : int;
  mutable max_batch : int;
  lat_home : acc;
  lat_shipped : acc;
  lat_ship_delay : acc;  (* submit -> start, shipped ops only *)
  lat_exec : acc;  (* start -> end, all ops *)
}

type t = {
  enabled : bool;
  domains : int;
  sample : int;
  ring_capacity : int;
  sinks : sink array;  (* domains + 1; index [domains] is the coordinator *)
}

(* Tokens pack (minting sink, sequence) so a span's events can be joined
   across domains: token = seq * max_sinks + id. *)
let max_sinks = 1024

let make_sink ~id ~sample ~cap =
  {
    id;
    sample;
    buf = Array.make (cap * width) 0;
    cap;
    len = 0;
    drops = 0;
    last_ts = 0;
    seq = 0;
    steals = 0;
    ships_out = 0;
    ships_in = 0;
    parks = 0;
    wakes = 0;
    spawns = 0;
    inbox_batches = 0;
    inbox_tasks = 0;
    max_batch = 0;
    lat_home = make_acc ();
    lat_shipped = make_acc ();
    lat_ship_delay = make_acc ();
    lat_exec = make_acc ();
  }

let disabled_sink = make_sink ~id:0 ~sample:0 ~cap:0

let off =
  { enabled = false; domains = 0; sample = 0; ring_capacity = 0; sinks = [||] }

let create ?(ring_capacity = 1 lsl 16) ?(sample = 1) ~domains () =
  if domains < 1 then invalid_arg "Telemetry.create: domains must be >= 1";
  if domains + 1 > max_sinks then
    invalid_arg "Telemetry.create: at most 1023 domains (token packing)";
  if ring_capacity < 0 then
    invalid_arg "Telemetry.create: ring_capacity must be >= 0";
  if sample < 0 then invalid_arg "Telemetry.create: sample must be >= 0";
  {
    enabled = true;
    domains;
    sample;
    ring_capacity;
    sinks =
      Array.init (domains + 1) (fun id ->
          make_sink ~id ~sample ~cap:ring_capacity);
  }

let enabled t = t.enabled
let domains t = t.domains
let sample t = t.sample

let sink t d =
  if not t.enabled then disabled_sink
  else if d < 0 || d > t.domains then
    invalid_arg "Telemetry.sink: domain out of range"
  else t.sinks.(d)

let coordinator t = if t.enabled then t.sinks.(t.domains) else disabled_sink

let sink_array t ~n =
  if not t.enabled then Array.make n disabled_sink
  else if n <> t.domains then
    invalid_arg "Telemetry.sink_array: telemetry sized for a different pool"
  else Array.init n (fun i -> t.sinks.(i))

(* ------------------------------------------------------------------ *)
(* The clock                                                           *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* ------------------------------------------------------------------ *)
(* Writers (owner only)                                                *)

(* cap = 0 is metrics-only mode: the ring is disabled, so records are
   discarded without touching the drop counter — a drop means the ring
   overflowed, not that it was never asked for. *)
let record_at s ~ts ~kind ~a ~b ~c =
  let ts = if ts < s.last_ts then s.last_ts else ts in
  s.last_ts <- ts;
  if s.cap > 0 then begin
    if s.len < s.cap then begin
      let base = s.len * width in
      s.buf.(base) <- ts;
      s.buf.(base + 1) <- int_of_kind kind;
      s.buf.(base + 2) <- a;
      s.buf.(base + 3) <- b;
      s.buf.(base + 4) <- c;
      s.len <- s.len + 1
    end
    else s.drops <- s.drops + 1
  end

let record s ~kind ~a ~b ~c = record_at s ~ts:(now_ns ()) ~kind ~a ~b ~c

let note_steal s ~victim =
  s.steals <- s.steals + 1;
  record s ~kind:Steal ~a:victim ~b:0 ~c:0

let note_park s =
  s.parks <- s.parks + 1;
  record s ~kind:Park ~a:0 ~b:0 ~c:0

let note_wake s =
  s.wakes <- s.wakes + 1;
  record s ~kind:Wake ~a:0 ~b:0 ~c:0

let note_inbox_batch s ~count =
  s.inbox_batches <- s.inbox_batches + 1;
  s.inbox_tasks <- s.inbox_tasks + count;
  if count > s.max_batch then s.max_batch <- count;
  record s ~kind:Inbox_batch ~a:count ~b:0 ~c:0

let note_spawned s ~core =
  s.spawns <- s.spawns + 1;
  record s ~kind:Spawned ~a:core ~b:0 ~c:0

(* Mint a token for one op. Returns -1 when this op's span events are
   sampled out — the latency accumulators still see it. *)
let op_submit s ~obj =
  let seq = s.seq in
  s.seq <- seq + 1;
  if s.sample > 0 && seq mod s.sample = 0 then begin
    let token = (seq * max_sinks) + s.id in
    record s ~kind:Submit ~a:token ~b:obj ~c:0;
    token
  end
  else -1

let token_sink token = token mod max_sinks
let token_seq token = token / max_sinks

let note_ship_out s ~token ~obj ~dst =
  s.ships_out <- s.ships_out + 1;
  if token >= 0 then record s ~kind:Ship_out ~a:token ~b:obj ~c:dst

let note_ship_in s ~token ~obj ~src =
  s.ships_in <- s.ships_in + 1;
  if token >= 0 then record s ~kind:Ship_in ~a:token ~b:obj ~c:src

let note_start s ~token ~obj =
  if token >= 0 then record s ~kind:Start ~a:token ~b:obj ~c:0

let note_end s ~token ~obj =
  if token >= 0 then record s ~kind:End ~a:token ~b:obj ~c:0

let observe_home s ns = observe s.lat_home ns
let observe_shipped s ns = observe s.lat_shipped ns
let observe_ship_delay s ns = observe s.lat_ship_delay ns
let observe_exec s ns = observe s.lat_exec ns

let note_rebalance s ~moves =
  record s ~kind:Rebalance ~a:moves ~b:0 ~c:0

let note_quiesce s = record s ~kind:Quiesce ~a:0 ~b:0 ~c:0

(* ------------------------------------------------------------------ *)
(* Readers (quiescence only)                                           *)

let sink_id s = s.id
let length s = s.len
let dropped s = s.drops
let ts s i = s.buf.(i * width)
let kind s i = kind_of_int s.buf.((i * width) + 1)
let arg0 s i = s.buf.((i * width) + 2)
let arg1 s i = s.buf.((i * width) + 3)
let arg2 s i = s.buf.((i * width) + 4)

let steals s = s.steals
let ships_out s = s.ships_out
let ships_in s = s.ships_in
let parks s = s.parks
let wakes s = s.wakes
let spawns s = s.spawns
let inbox_batches s = s.inbox_batches
let inbox_tasks s = s.inbox_tasks
let max_batch s = s.max_batch
let ops_submitted s = s.seq
let lat_home s = s.lat_home
let lat_shipped s = s.lat_shipped
let lat_ship_delay s = s.lat_ship_delay
let lat_exec s = s.lat_exec

let fold_sinks t ~init ~f =
  if not t.enabled then init
  else Array.fold_left f init t.sinks

let total_dropped t = fold_sinks t ~init:0 ~f:(fun acc s -> acc + s.drops)
let total_events t = fold_sinks t ~init:0 ~f:(fun acc s -> acc + s.len + s.drops)
