(** Wall-clock telemetry sinks for the native backend.

    The native sibling of {!Probe}: where the simulator delivers events
    synchronously to listener closures on one domain, real domains need
    a sink per writer. Worker [d] owns sink [d]; the coordinator (the
    thread calling [drain]/[rebalance]) owns sink [domains]. The owner
    is the only writer — no atomics, no locks, no cross-domain writes on
    the hot path — and readers (the merge, metrics and trace exporters
    in [O2_obs]) may only look while the pool is quiescent.

    Each sink holds

    - a bounded ring of fixed-width records stamped with
      [CLOCK_MONOTONIC] nanoseconds, clamped per-writer to be
      nondecreasing (so each ring is sorted by construction and the
      k-way merge needs no sort). A full ring drops new records
      (drop-newest) and counts them: the retained window is a prefix;
    - plain counters (steals, ships, parks, wakes, inbox batches);
    - log2-bucket latency accumulators ({!acc}, same bucket layout as
      [O2_obs.Hist], imported via [Hist.of_raw]) fed by [with_op] with
      timestamps carried in locals across domain handoffs — latency
      percentiles need no ring traffic, which is what makes
      metrics-only telemetry ([ring_capacity = 0]) cheap enough to
      leave attached while measuring throughput.

    Zero-cost when off: call sites guard on {!enabled}, so the disabled
    instance never reaches a clock read or an array write; the guarded
    paths are pinned allocation-free by suite_hotpath and the
    o2staticcheck manifest. *)

type t
type sink

(** {1 Lifecycle} *)

val create : ?ring_capacity:int -> ?sample:int -> domains:int -> unit -> t
(** Telemetry for a pool of [domains] workers ([domains + 1] sinks, the
    extra one for the coordinator). [ring_capacity] (default [2^16]) is
    records per sink; [0] means metrics-only — no ring events at all.
    [sample] (default 1) keeps the span events of 1-in-[sample] ops in
    the ring ([0] = none); steals, parks, wakes, inbox batches,
    rebalances and quiesces are always recorded. At most 1023 domains
    (token packing).
    @raise Invalid_argument on out-of-range arguments. *)

val off : t
(** The disabled instance: {!enabled} is [false], sinks are inert. *)

val enabled : t -> bool
val domains : t -> int
val sample : t -> int

val sink : t -> int -> sink
(** Worker [d]'s sink (index [domains] is the coordinator's). On the
    disabled instance returns an inert dummy for any index. *)

val coordinator : t -> sink

val sink_array : t -> n:int -> sink array
(** The [n] worker sinks as an array (coordinator excluded), or [n]
    inert dummies when disabled — prefetched by the pool/backend so hot
    paths index an array instead of calling {!sink}.
    @raise Invalid_argument if enabled and [n <> domains]. *)

(** {1 The clock} *)

val now_ns : unit -> int
(** [CLOCK_MONOTONIC] in nanoseconds (bechamel's noalloc stub; the
    int64 result is boxed once per call — only ever paid with telemetry
    on). *)

(** {1 Event kinds} *)

type kind =
  | Steal  (** [a] = victim domain *)
  | Park
  | Wake
  | Inbox_batch  (** [a] = tasks delivered by one drain *)
  | Spawned  (** [a] = target domain *)
  | Submit  (** [a] = token, [b] = obj *)
  | Ship_out  (** [a] = token, [b] = obj, [c] = destination domain *)
  | Ship_in  (** [a] = token, [b] = obj, [c] = source domain *)
  | Start  (** [a] = token, [b] = obj *)
  | End  (** [a] = token, [b] = obj *)
  | Rebalance  (** [a] = moves *)
  | Quiesce

val kind_name : kind -> string

(** {1 Writers — owner domain only} *)

val note_steal : sink -> victim:int -> unit
val note_park : sink -> unit
val note_wake : sink -> unit
val note_inbox_batch : sink -> count:int -> unit
val note_spawned : sink -> core:int -> unit

val op_submit : sink -> obj:int -> int
(** Mint this op's token and record its [Submit] event if sampled in.
    Returns [-1] when sampled out — pass it along anyway; the ship/
    start/end writers ignore negative tokens while still counting. *)

val note_ship_out : sink -> token:int -> obj:int -> dst:int -> unit
val note_ship_in : sink -> token:int -> obj:int -> src:int -> unit
val note_start : sink -> token:int -> obj:int -> unit
val note_end : sink -> token:int -> obj:int -> unit

val observe_home : sink -> int -> unit
(** Submit-to-end nanoseconds of an op that ran on its submitter. *)

val observe_shipped : sink -> int -> unit
(** Submit-to-end nanoseconds of an op that shipped to its home. *)

val observe_ship_delay : sink -> int -> unit
(** Submit-to-start nanoseconds, shipped ops only. *)

val observe_exec : sink -> int -> unit
(** Start-to-end nanoseconds, all ops. *)

val note_rebalance : sink -> moves:int -> unit
val note_quiesce : sink -> unit

val record_at :
  sink -> ts:int -> kind:kind -> a:int -> b:int -> c:int -> unit
(** Low-level append with an explicit timestamp (still clamped to the
    sink's nondecreasing order). For tests and tools; the instrumented
    paths use the typed writers above. *)

(** {1 Tokens} *)

val token_sink : int -> int
(** The sink a (nonnegative) token was minted on. *)

val token_seq : int -> int

(** {1 Readers — quiescence only} *)

val sink_id : sink -> int
val length : sink -> int
(** Records retained in the ring. *)

val dropped : sink -> int
(** Records dropped because the ring was full (drop-newest). *)

val ts : sink -> int -> int
val kind : sink -> int -> kind
val arg0 : sink -> int -> int
val arg1 : sink -> int -> int
val arg2 : sink -> int -> int

val steals : sink -> int
val ships_out : sink -> int
val ships_in : sink -> int
val parks : sink -> int
val wakes : sink -> int
val spawns : sink -> int
val inbox_batches : sink -> int
val inbox_tasks : sink -> int
val max_batch : sink -> int
val ops_submitted : sink -> int

(** {1 Latency accumulators} *)

type acc
(** Log2-bucket accumulator, same 63-bucket layout as [O2_obs.Hist]
    (bucket 0 holds 0, bucket [k >= 1] holds [2^(k-1), 2^k)); import
    with [Hist.of_raw]. *)

val acc_counts : acc -> int array
(** The live bucket array — read-only by contract, do not mutate. *)

val acc_total : acc -> int
val acc_sum : acc -> int
val acc_min : acc -> int
(** [max_int] when empty, like [Hist]. *)

val acc_max : acc -> int

val lat_home : sink -> acc
val lat_shipped : sink -> acc
val lat_ship_delay : sink -> acc
val lat_exec : sink -> acc

(** {1 Aggregates} *)

val fold_sinks : t -> init:'a -> f:('a -> sink -> 'a) -> 'a
(** Folds over all [domains + 1] sinks; [init] on the disabled
    instance. *)

val total_dropped : t -> int
val total_events : t -> int
(** Retained + dropped across every sink. *)
