open O2_simcore

type resumption = { thread : Thread.t; run : unit -> unit }

type event =
  | Run of int * (unit -> unit)
      (* Resume the operation occupying this core (core stays busy). *)
  | Release of int
      (* The occupying operation left the core: mark free, dispatch next. *)
  | Poke of int  (* Dispatch if the core is idle. *)
  | Arrive of int * resumption  (* Migration arrival: enqueue and poke. *)
  | Control of { f : now:int -> unit; daemon : bool }
      (* Zero-cost engine callback. Daemon events (recurring monitors)
         never keep the simulation alive by themselves: when only daemons
         remain queued, [run] stops instead of ticking forever. *)

let is_daemon = function
  | Control { daemon; _ } -> daemon
  | Run _ | Release _ | Poke _ | Arrive _ -> false

type core_state = {
  cid : int;
  mutable clock : int;
  runq : resumption Queue.t;
  mutable busy : bool;
  mutable idle_since : int;  (* -1 when not idle *)
}

type t = {
  machine : Machine.t;
  cores_ : core_state array;
  queue : event Event_queue.t;
  probe_ : Probe.t;
  mutable last_time : int;
  mutable next_thread_id : int;
  mutable events : int;
  mutable live : int;
  mutable nondaemon_pending : int;
}

let create machine =
  let n = Config.cores (Machine.cfg machine) in
  {
    machine;
    cores_ =
      Array.init n (fun cid ->
          { cid; clock = 0; runq = Queue.create (); busy = false; idle_since = 0 });
    queue = Event_queue.create ();
    probe_ = Probe.create ();
    last_time = 0;
    next_thread_id = 0;
    events = 0;
    live = 0;
    nondaemon_pending = 0;
  }

let machine t = t.machine
let probe t = t.probe_
let cores t = Array.length t.cores_
let now t = t.last_time
let core_clock t c = t.cores_.(c).clock
let runq_length t c = Queue.length t.cores_.(c).runq
let events_processed t = t.events
let live_threads t = t.live

let schedule t ~time ev =
  if not (is_daemon ev) then t.nondaemon_pending <- t.nondaemon_pending + 1;
  Event_queue.push t.queue ~time ev

let charge_busy t core cost =
  let c = Machine.counters t.machine core in
  c.Counters.busy_cycles <- c.Counters.busy_cycles + cost

let account_idle t cs =
  if cs.idle_since >= 0 then begin
    let c = Machine.counters t.machine cs.cid in
    c.Counters.idle_cycles <- c.Counters.idle_cycles + (cs.clock - cs.idle_since);
    cs.idle_since <- -1
  end

(* Start the next queued operation, or go idle. Precondition: not busy. *)
let dispatch t cs =
  match Queue.take_opt cs.runq with
  | None -> if cs.idle_since < 0 then cs.idle_since <- cs.clock
  | Some r ->
      account_idle t cs;
      cs.busy <- true;
      r.run ()

exception Not_lock_owner of string

(* Shared movement machinery for thread migration and active-message
   operation shipping: charge [send] on the source, free it, land on the
   target [wire] cycles later, charge [land_] there, resume. *)
let move_thread t th ~target ~send ~wire ~land_ k =
  let open Effect.Deep in
  if target < 0 || target >= Array.length t.cores_ then
    invalid_arg "migrate_to: core out of range";
  let src = th.Thread.core in
  let cs = t.cores_.(src) in
  if target = src then
    schedule t ~time:cs.clock (Run (src, fun () -> continue k ()))
  else begin
    let csrc = Machine.counters t.machine src in
    let cdst = Machine.counters t.machine target in
    csrc.Counters.migrations_out <- csrc.Counters.migrations_out + 1;
    cdst.Counters.migrations_in <- cdst.Counters.migrations_in + 1;
    th.Thread.migrations <- th.Thread.migrations + 1;
    if Probe.active t.probe_ then
      Probe.emit t.probe_
        (Probe.Thread_moved
           {
             time = cs.clock;
             tid = th.Thread.id;
             from_core = src;
             to_core = target;
           });
    th.Thread.state <- Thread.Migrating;
    charge_busy t src send;
    let depart = cs.clock + send in
    schedule t ~time:depart (Release src);
    th.Thread.core <- target;
    schedule t ~time:(depart + wire)
      (Arrive
         ( target,
           {
             thread = th;
             run =
               (fun () ->
                 th.Thread.state <- Thread.Runnable;
                 let cst = t.cores_.(target) in
                 charge_busy t target land_;
                 schedule t ~time:(cst.clock + land_)
                   (Run (target, fun () -> continue k ())));
           } ))
  end

(* The effect interpreter for one thread. Handlers never resume
   continuations synchronously for timed operations: they compute the
   cost, mutate machine state at the current virtual time (legal because
   the engine always runs the minimum-clock event first), and schedule the
   resumption. *)
let handler t th =
  let open Effect.Deep in
  let cfg = Machine.cfg t.machine in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | Api.Read { addr; len } ->
        Some
          (fun k ->
            let cs = t.cores_.(th.Thread.core) in
            if Probe.active t.probe_ then
              Probe.emit t.probe_
                (Probe.Mem
                   {
                     time = cs.clock;
                     core = th.Thread.core;
                     tid = th.Thread.id;
                     kind = Probe.Load;
                     addr;
                     len;
                   });
            let cost =
              Machine.read t.machine ~core:th.Thread.core ~now:cs.clock ~addr
                ~len
            in
            charge_busy t th.Thread.core cost;
            schedule t ~time:(cs.clock + cost)
              (Run (th.Thread.core, fun () -> continue k cost)))
    | Api.Write { addr; len } ->
        Some
          (fun k ->
            let cs = t.cores_.(th.Thread.core) in
            if Probe.active t.probe_ then
              Probe.emit t.probe_
                (Probe.Mem
                   {
                     time = cs.clock;
                     core = th.Thread.core;
                     tid = th.Thread.id;
                     kind = Probe.Store;
                     addr;
                     len;
                   });
            let cost =
              Machine.write t.machine ~core:th.Thread.core ~now:cs.clock ~addr
                ~len
            in
            charge_busy t th.Thread.core cost;
            schedule t ~time:(cs.clock + cost)
              (Run (th.Thread.core, fun () -> continue k cost)))
    | Api.Compute cycles ->
        Some
          (fun k ->
            let cs = t.cores_.(th.Thread.core) in
            let cycles = max cycles 0 in
            charge_busy t th.Thread.core cycles;
            schedule t ~time:(cs.clock + cycles)
              (Run (th.Thread.core, fun () -> continue k ())))
    | Api.Lock_acquire l ->
        Some
          (fun k ->
            let core = th.Thread.core in
            let cs = t.cores_.(core) in
            let acquire_word ~now0 ~contended =
              (* Taking the lock writes its line (read-for-ownership). *)
              l.Spinlock.acquisitions <- l.Spinlock.acquisitions + 1;
              if Probe.active t.probe_ then
                Probe.emit t.probe_
                  (Probe.Lock_acquired
                     {
                       time = now0;
                       core = th.Thread.core;
                       tid = th.Thread.id;
                       lock =
                         {
                           Probe.lock_name = l.Spinlock.name;
                           lock_addr = l.Spinlock.addr;
                         };
                       contended;
                     });
              let cost =
                Machine.write t.machine ~core:th.Thread.core ~now:now0
                  ~addr:l.Spinlock.addr ~len:8
              in
              charge_busy t th.Thread.core cost;
              schedule t ~time:(now0 + cost)
                (Run (th.Thread.core, fun () -> continue k ()))
            in
            match l.Spinlock.owner with
            | None ->
                l.Spinlock.owner <- Some th.Thread.id;
                acquire_word ~now0:cs.clock ~contended:false
            | Some _ ->
                l.Spinlock.contended <- l.Spinlock.contended + 1;
                th.Thread.state <- Thread.Spinning;
                let attempt = cs.clock in
                Queue.add
                  {
                    Spinlock.thread = th;
                    attempt;
                    grant =
                      (fun gtime ->
                        (* Ownership was transferred at release time; we
                           resume on the waiter's core, charge the wait as
                           spin cycles, then pay for the lock-word write. *)
                        schedule t ~time:gtime
                          (Run
                             ( th.Thread.core,
                               fun () ->
                                 let cs = t.cores_.(th.Thread.core) in
                                 th.Thread.state <- Thread.Runnable;
                                 let c =
                                   Machine.counters t.machine th.Thread.core
                                 in
                                 c.Counters.spin_cycles <-
                                   c.Counters.spin_cycles + (cs.clock - attempt);
                                 acquire_word ~now0:cs.clock ~contended:true )));
                  }
                  l.Spinlock.waiters)
    | Api.Lock_release l ->
        Some
          (fun k ->
            if l.Spinlock.owner <> Some th.Thread.id then
              raise
                (Not_lock_owner
                   (Printf.sprintf "thread %d releasing %s it does not hold"
                      th.Thread.id l.Spinlock.name));
            let cs = t.cores_.(th.Thread.core) in
            if Probe.active t.probe_ then
              Probe.emit t.probe_
                (Probe.Lock_released
                   {
                     time = cs.clock;
                     core = th.Thread.core;
                     tid = th.Thread.id;
                     lock =
                       {
                         Probe.lock_name = l.Spinlock.name;
                         lock_addr = l.Spinlock.addr;
                       };
                   });
            let cost =
              Machine.write t.machine ~core:th.Thread.core ~now:cs.clock
                ~addr:l.Spinlock.addr ~len:8
            in
            charge_busy t th.Thread.core cost;
            let released_at = cs.clock + cost in
            (match Queue.take_opt l.Spinlock.waiters with
            | Some w ->
                (* Direct hand-off: no steal window between release and the
                   waiter's resumption. *)
                l.Spinlock.owner <- Some w.Spinlock.thread.Thread.id;
                w.Spinlock.grant released_at
            | None -> l.Spinlock.owner <- None);
            schedule t ~time:released_at
              (Run (th.Thread.core, fun () -> continue k ())))
    | Api.Migrate_to target ->
        Some
          (move_thread t th ~target ~send:cfg.Config.migration_save
             ~wire:(cfg.Config.migration_xfer + (cfg.Config.poll_interval / 2))
             ~land_:cfg.Config.migration_restore)
    | Api.Ship_to target ->
        (* Active message (Section 6.1): only the operation descriptor
           crosses; no context save/restore, no polling delay. *)
        Some
          (move_thread t th ~target ~send:cfg.Config.amsg_send
             ~wire:cfg.Config.amsg_wire ~land_:cfg.Config.amsg_dispatch)
    | Api.Yield ->
        Some
          (fun k ->
            let cs = t.cores_.(th.Thread.core) in
            Queue.add { thread = th; run = (fun () -> continue k ()) } cs.runq;
            schedule t ~time:cs.clock (Release th.Thread.core))
    | Api.Self -> Some (fun k -> continue k th)
    | Api.Now -> Some (fun k -> continue k t.cores_.(th.Thread.core).clock)
    | _ -> None
  in
  {
    retc =
      (fun () ->
        th.Thread.state <- Thread.Finished;
        t.live <- t.live - 1;
        if Probe.active t.probe_ then
          Probe.emit t.probe_
            (Probe.Thread_finished
               {
                 time = t.cores_.(th.Thread.core).clock;
                 core = th.Thread.core;
                 tid = th.Thread.id;
               });
        schedule t ~time:t.cores_.(th.Thread.core).clock
          (Release th.Thread.core));
    exnc = (fun e -> raise e);
    effc;
  }

let spawn t ~core ~name body =
  if core < 0 || core >= cores t then invalid_arg "Engine.spawn: bad core";
  let th = Thread.make ~id:t.next_thread_id ~name ~core in
  t.next_thread_id <- t.next_thread_id + 1;
  t.live <- t.live + 1;
  if Probe.active t.probe_ then
    Probe.emit t.probe_
      (Probe.Thread_spawned
         {
           time = max t.last_time t.cores_.(core).clock;
           core;
           tid = th.Thread.id;
           name;
         });
  let r =
    { thread = th; run = (fun () -> Effect.Deep.match_with body () (handler t th)) }
  in
  let cs = t.cores_.(core) in
  Queue.add r cs.runq;
  schedule t ~time:(max t.last_time cs.clock) (Poke core);
  th

let at t ~time f =
  if time < t.last_time then invalid_arg "Engine.at: time is in the past";
  schedule t ~time (Control { f; daemon = false })

let rec reschedule_every t ~period f ~time =
  schedule t ~time
    (Control
       {
         daemon = true;
         f =
           (fun ~now ->
             f ~now;
             reschedule_every t ~period f ~time:(now + period));
       })

let every t ~period ?start f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let time = match start with Some s -> s | None -> t.last_time + period in
  reschedule_every t ~period f ~time

let step t time ev =
  t.last_time <- max t.last_time time;
  t.events <- t.events + 1;
  match ev with
  | Run (core, f) ->
      let cs = t.cores_.(core) in
      cs.clock <- max cs.clock time;
      f ()
  | Release core ->
      let cs = t.cores_.(core) in
      cs.clock <- max cs.clock time;
      cs.busy <- false;
      dispatch t cs
  | Poke core ->
      let cs = t.cores_.(core) in
      cs.clock <- max cs.clock time;
      if not cs.busy then dispatch t cs
  | Arrive (core, r) ->
      let cs = t.cores_.(core) in
      cs.clock <- max cs.clock time;
      Queue.add r cs.runq;
      if not cs.busy then dispatch t cs
  | Control { f; _ } -> f ~now:time

let run ?until ?stop_when t =
  let stop = match stop_when with Some f -> f | None -> fun () -> false in
  let horizon = match until with Some u -> u | None -> max_int in
  let continue_ =
    ((ref true) [@alloc_ok "one cell per run call, not per event"])
  in
  while !continue_ do
    if t.nondaemon_pending = 0 then
      (* Only recurring monitors remain: the simulated program has
         finished (or deadlocked); ticking on would never terminate. *)
      continue_ := false
    else if Event_queue.is_empty t.queue then continue_ := false
    else begin
      (* min_time/pop_min rather than peek_time/pop: this is the innermost
         simulation loop and must not allocate per event. *)
      let time = Event_queue.min_time t.queue in
      if time > horizon then begin
        t.last_time <- max t.last_time horizon;
        continue_ := false
      end
      else begin
        let ev = Event_queue.pop_min t.queue in
        if not (is_daemon ev) then
          t.nondaemon_pending <- t.nondaemon_pending - 1;
        step t time ev;
        if stop () then continue_ := false
      end
    end
  done

let finalize_idle t =
  Array.iter
    (fun cs ->
      if cs.idle_since >= 0 then begin
        let upto = max cs.clock t.last_time in
        let c = Machine.counters t.machine cs.cid in
        c.Counters.idle_cycles <-
          c.Counters.idle_cycles + (upto - cs.idle_since);
        cs.idle_since <- upto
      end)
    t.cores_
