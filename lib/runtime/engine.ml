open O2_simcore

type resumption = { thread : Thread.t; run : unit -> unit }

type event =
  | Run of int * (unit -> unit)
      (* Resume the operation occupying this core (core stays busy). *)
  | Release of int
      (* The occupying operation left the core: mark free, dispatch next. *)
  | Poke of int  (* Dispatch if the core is idle. *)
  | Arrive of int * resumption  (* Migration arrival: enqueue and poke. *)
  | Control of { f : now:int -> unit; daemon : bool }
      (* Zero-cost engine callback. Daemon events (recurring monitors)
         never keep the simulation alive by themselves: when only daemons
         remain queued, [run] stops instead of ticking forever. *)

let is_daemon = function
  | Control { daemon; _ } -> daemon
  | Run _ | Release _ | Poke _ | Arrive _ -> false

type core_state = {
  cid : int;
  mutable clock : int;
  runq : resumption Queue.t;
  mutable busy : bool;
  mutable idle_since : int;  (* -1 when not idle *)
}

(* The sharded (windowed) engine is a set of per-chip engines — each with
   its own event queue, machine shard view and outbox — plus one "facade"
   engine that owns global state (thread ids, control events, the window
   cursor) and is the handle harness code drives. All of them share the
   [cores_] array: a chip engine only ever touches its own cores during a
   window, and the coordinator runs the barrier's serial phase alone.

   The logical partition is ALWAYS one shard per chip, whatever the domain
   count: [--shards N] only chooses how many domains execute the fixed
   per-chip work, which is why results are bit-identical for any N. *)
type t = {
  machine : Machine.t;
  cores_ : core_state array;
  queue : event Event_queue.t;
  probe_ : Probe.t;
  mutable last_time : int;
  mutable next_thread_id : int;
  mutable events : int;
  mutable live : int;
  mutable nondaemon_pending : int;
  mutable shard : shard option;  (* None = classic serial engine *)
}

and shard = {
  chip : int;  (* -1 on the facade *)
  facade : t;
  mutable members : t array;  (* per-chip engines, index = chip *)
  delta : int;  (* conservative window Δ = Config.sync_window *)
  domains : int;  (* worker domains incl. the coordinator (facade) *)
  chip_of : int -> int;
  outbox : Shard_sync.Outbox.t;  (* chip engines: outbound messages *)
  mutable wstart : int;  (* facade: current window start (multiple of Δ) *)
  mutable hooks : (wstart:int -> wend:int -> unit) list;  (* facade *)
}

let mk_cores n =
  Array.init n (fun cid ->
      { cid; clock = 0; runq = Queue.create (); busy = false; idle_since = 0 })

let create machine =
  let n = Config.cores (Machine.cfg machine) in
  {
    machine;
    cores_ = mk_cores n;
    queue = Event_queue.create ();
    probe_ = Probe.create ();
    last_time = 0;
    next_thread_id = 0;
    events = 0;
    live = 0;
    nondaemon_pending = 0;
    shard = None;
  }

let create_sharded machine ~shards =
  if shards < 1 then invalid_arg "Engine.create_sharded: shards must be >= 1";
  if Machine.shard_chip machine >= 0 then
    invalid_arg "Engine.create_sharded: machine is already a shard view";
  if Machine.observed machine then
    invalid_arg "Engine.create_sharded: cache observers are not supported";
  let cfg = Machine.cfg machine in
  let nchips = cfg.Config.chips in
  let delta = Config.sync_window cfg in
  (* Oversubscribed shard counts are pure overhead — domains spinning at
     window barriers with no parallelism underneath (measurably slower
     than shards=1 on a 1-core host) — so clamp to the cores actually
     available, with the same logged warning --jobs gets. *)
  let domains = max 1 (min (Domain_pool.clamped ~what:"shards" shards) nchips) in
  let facade = create machine in
  let chip_of = Config.chip_of_core cfg in
  let mk_shard chip =
    {
      chip;
      facade;
      members = [||];
      delta;
      domains;
      chip_of;
      outbox = Shard_sync.Outbox.create ();
      wstart = 0;
      hooks = [];
    }
  in
  let members =
    Array.init nchips (fun chip ->
        {
          machine = Machine.shard_view machine ~chip;
          cores_ = facade.cores_;
          queue = Event_queue.create ();
          probe_ = Probe.create ();
          last_time = 0;
          next_thread_id = 0;
          events = 0;
          live = 0;
          nondaemon_pending = 0;
          shard = Some (mk_shard chip);
        })
  in
  let fshard = mk_shard (-1) in
  fshard.members <- members;
  Array.iter
    (fun m ->
      match m.shard with Some s -> s.members <- members | None -> assert false)
    members;
  facade.shard <- Some fshard;
  facade

let machine t = t.machine
let probe t = t.probe_
let cores t = Array.length t.cores_
let now t = t.last_time
let core_clock t c = t.cores_.(c).clock
let runq_length t c = Queue.length t.cores_.(c).runq

let is_sharded t = t.shard <> None

let shards t = match t.shard with None -> 0 | Some s -> s.domains

let on_barrier t hook =
  match t.shard with
  | Some s when s.chip < 0 -> s.hooks <- s.hooks @ [ hook ]
  | _ -> invalid_arg "Engine.on_barrier: not a sharded facade engine"

(* Global stats sum over the facade and every chip engine. *)
let sum_members t f =
  match t.shard with
  | None -> f t
  | Some s -> Array.fold_left (fun acc m -> acc + f m) (f t) s.members

let events_processed t = sum_members t (fun e -> e.events)
let live_threads t = sum_members t (fun e -> e.live)

(* The engine responsible for [core]'s events right now: the per-chip
   engine under sharding, [t] itself otherwise. Effect handlers resolve
   through this on every effect, because a thread may have migrated to a
   core owned by a different chip engine since it was spawned. *)
let cur t core =
  match t.shard with None -> t | Some s -> s.members.(s.chip_of core)

(* The engine owning global thread bookkeeping (ids, spawn-side live). *)
let owner t = match t.shard with None -> t | Some s -> s.facade

let schedule t ~time ev =
  if not (is_daemon ev) then t.nondaemon_pending <- t.nondaemon_pending + 1;
  Event_queue.push t.queue ~time ev

let charge_busy t core cost =
  let c = Machine.counters t.machine core in
  c.Counters.busy_cycles <- c.Counters.busy_cycles + cost

let account_idle t cs =
  if cs.idle_since >= 0 then begin
    let c = Machine.counters t.machine cs.cid in
    c.Counters.idle_cycles <- c.Counters.idle_cycles + (cs.clock - cs.idle_since);
    cs.idle_since <- -1
  end

(* Start the next queued operation, or go idle. Precondition: not busy. *)
let dispatch t cs =
  match Queue.take_opt cs.runq with
  | None -> if cs.idle_since < 0 then cs.idle_since <- cs.clock
  | Some r ->
      account_idle t cs;
      cs.busy <- true;
      r.run ()

exception Not_lock_owner of string

(* Shared movement machinery for thread migration and active-message
   operation shipping: charge [send] on the source, free it, land on the
   target [wire] cycles later, charge [land_] there, resume. [t] must be
   the engine owning the thread's current core. Cross-chip movement under
   sharding posts the arrival through the outbox instead of scheduling it
   directly; [wire >= Δ] (guaranteed by Config.sync_window) keeps the
   arrival outside the current window. *)
let move_thread t th ~target ~send ~wire ~land_ k =
  let open Effect.Deep in
  if target < 0 || target >= Array.length t.cores_ then
    invalid_arg "migrate_to: core out of range";
  let src = th.Thread.core in
  let cs = t.cores_.(src) in
  if target = src then
    schedule t ~time:cs.clock (Run (src, fun () -> continue k ()))
  else begin
    (* A cross-chip move must not touch the destination's counters from
       the source chip's domain: its owner may be mid-window on another
       domain, and two senders (or the sender and an intra-chip move)
       would race on the same field. [migrations_out] stays send-side;
       [migrations_in] is charged inside [land_on], which runs on the
       destination chip's domain at arrival. Serial and same-chip moves
       keep the original send-time accounting. *)
    let cross =
      match t.shard with
      | Some s -> s.chip_of target <> s.chip
      | None -> false
    in
    let csrc = Machine.counters t.machine src in
    csrc.Counters.migrations_out <- csrc.Counters.migrations_out + 1;
    if not cross then begin
      let cdst = Machine.counters t.machine target in
      cdst.Counters.migrations_in <- cdst.Counters.migrations_in + 1
    end;
    th.Thread.migrations <- th.Thread.migrations + 1;
    if Probe.active t.probe_ then
      Probe.emit t.probe_
        (Probe.Thread_moved
           {
             time = cs.clock;
             tid = th.Thread.id;
             from_core = src;
             to_core = target;
           });
    th.Thread.state <- Thread.Migrating;
    charge_busy t src send;
    let depart = cs.clock + send in
    schedule t ~time:depart (Release src);
    th.Thread.core <- target;
    let arrive = depart + wire in
    let land_on tgt =
      {
        thread = th;
        run =
          (fun () ->
            if cross then begin
              let cdst = Machine.counters tgt.machine target in
              cdst.Counters.migrations_in <- cdst.Counters.migrations_in + 1
            end;
            th.Thread.state <- Thread.Runnable;
            let cst = tgt.cores_.(target) in
            charge_busy tgt target land_;
            schedule tgt ~time:(cst.clock + land_)
              (Run (target, fun () -> continue k ())));
      }
    in
    match t.shard with
    | Some s when s.chip_of target <> s.chip ->
        let tgt = s.members.(s.chip_of target) in
        Shard_sync.Outbox.push s.outbox ~arrive (fun () ->
            schedule tgt ~time:arrive (Arrive (target, land_on tgt)))
    | _ -> schedule t ~time:arrive (Arrive (target, land_on t))
  end

(* Which chip arbitrates a lock under sharding: the home chip of its
   address. Recomputed on demand — it is two integer divisions on the
   immutable topology, and caching it on the lock would be a write to
   shared lock state from the requester's domain, breaking the rule that
   only the home chip touches a lock. *)
let lock_home t l =
  Topology.home_chip (Machine.topology t.machine) ~addr:l.Spinlock.addr

(* The effect interpreter for one thread. Handlers never resume
   continuations synchronously for timed operations: they compute the
   cost, mutate machine state at the current virtual time (legal because
   the engine always runs the minimum-clock event first), and schedule the
   resumption. Every case re-resolves the current engine from the thread's
   core: under sharding the thread may be running on a different chip
   engine than the one that spawned it. *)
let handler t0 th =
  let open Effect.Deep in
  let cfg = Machine.cfg t0.machine in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | Api.Read { addr; len } ->
        Some
          (fun k ->
            let t = cur t0 th.Thread.core in
            let cs = t.cores_.(th.Thread.core) in
            if Probe.active t.probe_ then
              Probe.emit t.probe_
                (Probe.Mem
                   {
                     time = cs.clock;
                     core = th.Thread.core;
                     tid = th.Thread.id;
                     kind = Probe.Load;
                     addr;
                     len;
                   });
            let cost =
              Machine.read t.machine ~core:th.Thread.core ~now:cs.clock ~addr
                ~len
            in
            charge_busy t th.Thread.core cost;
            schedule t ~time:(cs.clock + cost)
              (Run (th.Thread.core, fun () -> continue k cost)))
    | Api.Write { addr; len } ->
        Some
          (fun k ->
            let t = cur t0 th.Thread.core in
            let cs = t.cores_.(th.Thread.core) in
            if Probe.active t.probe_ then
              Probe.emit t.probe_
                (Probe.Mem
                   {
                     time = cs.clock;
                     core = th.Thread.core;
                     tid = th.Thread.id;
                     kind = Probe.Store;
                     addr;
                     len;
                   });
            let cost =
              Machine.write t.machine ~core:th.Thread.core ~now:cs.clock ~addr
                ~len
            in
            charge_busy t th.Thread.core cost;
            schedule t ~time:(cs.clock + cost)
              (Run (th.Thread.core, fun () -> continue k cost)))
    | Api.Compute cycles ->
        Some
          (fun k ->
            let t = cur t0 th.Thread.core in
            let cs = t.cores_.(th.Thread.core) in
            let cycles = max cycles 0 in
            charge_busy t th.Thread.core cycles;
            schedule t ~time:(cs.clock + cycles)
              (Run (th.Thread.core, fun () -> continue k ())))
    | Api.Lock_acquire l ->
        Some
          (fun k ->
            let t = cur t0 th.Thread.core in
            let core = th.Thread.core in
            let cs = t.cores_.(core) in
            let acquire_word ~now0 ~contended =
              (* Taking the lock writes its line (read-for-ownership). *)
              l.Spinlock.acquisitions <- l.Spinlock.acquisitions + 1;
              if Probe.active t.probe_ then
                Probe.emit t.probe_
                  (Probe.Lock_acquired
                     {
                       time = now0;
                       core = th.Thread.core;
                       tid = th.Thread.id;
                       lock =
                         {
                           Probe.lock_name = l.Spinlock.name;
                           lock_addr = l.Spinlock.addr;
                         };
                       contended;
                     });
              let cost =
                Machine.write t.machine ~core:th.Thread.core ~now:now0
                  ~addr:l.Spinlock.addr ~len:8
              in
              charge_busy t th.Thread.core cost;
              schedule t ~time:(now0 + cost)
                (Run (th.Thread.core, fun () -> continue k ()))
            in
            match t.shard with
            | Some s when lock_home t l <> s.chip ->
                (* Cross-chip acquire: the lock's home chip arbitrates.
                   The request reaches it Δ after the attempt; the grant
                   travels back Δ after it is issued — an uncontended
                   remote acquisition costs a 2Δ round trip, the windowed
                   analogue of bouncing the lock line between chips. All
                   lock state is touched only by the home chip. *)
                let attempt = cs.clock in
                th.Thread.state <- Thread.Spinning;
                let home = s.members.(lock_home t l) in
                let req_engine = t in
                let grant gtime =
                  (* Runs on the home chip's domain — at arrival for an
                     uncontended acquire, at hand-off when granted by a
                     release — so lock state is safe to touch here. *)
                  l.Spinlock.acquisitions <- l.Spinlock.acquisitions + 1;
                  let hs =
                    match home.shard with Some hs -> hs | None -> assert false
                  in
                  let back = gtime + hs.delta in
                  Shard_sync.Outbox.push hs.outbox ~arrive:back (fun () ->
                      schedule req_engine ~time:back
                        (Run
                           ( th.Thread.core,
                             fun () ->
                               let cs = req_engine.cores_.(th.Thread.core) in
                               th.Thread.state <- Thread.Runnable;
                               let c =
                                 Machine.counters req_engine.machine
                                   th.Thread.core
                               in
                               c.Counters.spin_cycles <-
                                 c.Counters.spin_cycles + (cs.clock - attempt);
                               let cost =
                                 Machine.write req_engine.machine
                                   ~core:th.Thread.core ~now:cs.clock
                                   ~addr:l.Spinlock.addr ~len:8
                               in
                               charge_busy req_engine th.Thread.core cost;
                               schedule req_engine ~time:(cs.clock + cost)
                                 (Run (th.Thread.core, fun () -> continue k ()))
                           )))
                in
                let arrive = attempt + s.delta in
                Shard_sync.Outbox.push s.outbox ~arrive (fun () ->
                    schedule home ~time:arrive
                      (Control
                         {
                           daemon = false;
                           f =
                             (fun ~now ->
                               match l.Spinlock.owner with
                               | None ->
                                   l.Spinlock.owner <- Some th.Thread.id;
                                   grant now
                               | Some _ ->
                                   l.Spinlock.contended <-
                                     l.Spinlock.contended + 1;
                                   Queue.add
                                     { Spinlock.thread = th; attempt; grant }
                                     l.Spinlock.waiters);
                         }))
            | _ -> (
                match l.Spinlock.owner with
                | None ->
                    l.Spinlock.owner <- Some th.Thread.id;
                    acquire_word ~now0:cs.clock ~contended:false
                | Some _ ->
                    l.Spinlock.contended <- l.Spinlock.contended + 1;
                    th.Thread.state <- Thread.Spinning;
                    let attempt = cs.clock in
                    Queue.add
                      {
                        Spinlock.thread = th;
                        attempt;
                        grant =
                          (fun gtime ->
                            (* Ownership was transferred at release time; we
                               resume on the waiter's core, charge the wait as
                               spin cycles, then pay for the lock-word write. *)
                            schedule t ~time:gtime
                              (Run
                                 ( th.Thread.core,
                                   fun () ->
                                     let cs = t.cores_.(th.Thread.core) in
                                     th.Thread.state <- Thread.Runnable;
                                     let c =
                                       Machine.counters t.machine th.Thread.core
                                     in
                                     c.Counters.spin_cycles <-
                                       c.Counters.spin_cycles
                                       + (cs.clock - attempt);
                                     acquire_word ~now0:cs.clock ~contended:true
                                 )));
                      }
                      l.Spinlock.waiters))
    | Api.Lock_release l ->
        Some
          (fun k ->
            let t = cur t0 th.Thread.core in
            let cs = t.cores_.(th.Thread.core) in
            let emit_release () =
              if Probe.active t.probe_ then
                Probe.emit t.probe_
                  (Probe.Lock_released
                     {
                       time = cs.clock;
                       core = th.Thread.core;
                       tid = th.Thread.id;
                       lock =
                         {
                           Probe.lock_name = l.Spinlock.name;
                           lock_addr = l.Spinlock.addr;
                         };
                     })
            in
            match t.shard with
            | Some s when lock_home t l <> s.chip ->
                (* Cross-chip release: pay for the lock-word write locally
                   and continue; the home chip processes the release Δ
                   later and hands the lock to the next waiter (whose
                   grant travels another Δ). Ownership is checked at the
                   home, the only place it is authoritative. *)
                emit_release ();
                let cost =
                  Machine.write t.machine ~core:th.Thread.core ~now:cs.clock
                    ~addr:l.Spinlock.addr ~len:8
                in
                charge_busy t th.Thread.core cost;
                let released_at = cs.clock + cost in
                let home = s.members.(lock_home t l) in
                let arrive = released_at + s.delta in
                Shard_sync.Outbox.push s.outbox ~arrive (fun () ->
                    schedule home ~time:arrive
                      (Control
                         {
                           daemon = false;
                           f =
                             (fun ~now ->
                               if l.Spinlock.owner <> Some th.Thread.id then
                                 raise
                                   (Not_lock_owner
                                      (Printf.sprintf
                                         "thread %d releasing %s it does not \
                                          hold"
                                         th.Thread.id l.Spinlock.name));
                               match Queue.take_opt l.Spinlock.waiters with
                               | Some w ->
                                   l.Spinlock.owner <-
                                     Some w.Spinlock.thread.Thread.id;
                                   w.Spinlock.grant now
                               | None -> l.Spinlock.owner <- None);
                         }));
                schedule t ~time:released_at
                  (Run (th.Thread.core, fun () -> continue k ()))
            | _ ->
                if l.Spinlock.owner <> Some th.Thread.id then
                  raise
                    (Not_lock_owner
                       (Printf.sprintf "thread %d releasing %s it does not hold"
                          th.Thread.id l.Spinlock.name));
                emit_release ();
                let cost =
                  Machine.write t.machine ~core:th.Thread.core ~now:cs.clock
                    ~addr:l.Spinlock.addr ~len:8
                in
                charge_busy t th.Thread.core cost;
                let released_at = cs.clock + cost in
                (match Queue.take_opt l.Spinlock.waiters with
                | Some w ->
                    (* Direct hand-off: no steal window between release and
                       the waiter's resumption. *)
                    l.Spinlock.owner <- Some w.Spinlock.thread.Thread.id;
                    w.Spinlock.grant released_at
                | None -> l.Spinlock.owner <- None);
                schedule t ~time:released_at
                  (Run (th.Thread.core, fun () -> continue k ())))
    | Api.Migrate_to target ->
        Some
          (fun k ->
            move_thread (cur t0 th.Thread.core) th ~target
              ~send:cfg.Config.migration_save
              ~wire:(cfg.Config.migration_xfer + (cfg.Config.poll_interval / 2))
              ~land_:cfg.Config.migration_restore k)
    | Api.Ship_to target ->
        (* Active message (Section 6.1): only the operation descriptor
           crosses; no context save/restore, no polling delay. *)
        Some
          (fun k ->
            move_thread (cur t0 th.Thread.core) th ~target
              ~send:cfg.Config.amsg_send ~wire:cfg.Config.amsg_wire
              ~land_:cfg.Config.amsg_dispatch k)
    | Api.Yield ->
        Some
          (fun k ->
            let t = cur t0 th.Thread.core in
            let cs = t.cores_.(th.Thread.core) in
            Queue.add { thread = th; run = (fun () -> continue k ()) } cs.runq;
            schedule t ~time:cs.clock (Release th.Thread.core))
    | Api.Self -> Some (fun k -> continue k th)
    | Api.Now -> Some (fun k -> continue k t0.cores_.(th.Thread.core).clock)
    | _ -> None
  in
  {
    retc =
      (fun () ->
        let t = cur t0 th.Thread.core in
        th.Thread.state <- Thread.Finished;
        let ow = owner t in
        ow.live <- ow.live - 1;
        if Probe.active t.probe_ then
          Probe.emit t.probe_
            (Probe.Thread_finished
               {
                 time = t.cores_.(th.Thread.core).clock;
                 core = th.Thread.core;
                 tid = th.Thread.id;
               });
        schedule t ~time:t.cores_.(th.Thread.core).clock
          (Release th.Thread.core));
    exnc = (fun e -> raise e);
    effc;
  }

let spawn t ~core ~name body =
  if core < 0 || core >= cores t then invalid_arg "Engine.spawn: bad core";
  let ow = owner t in
  let th = Thread.make ~id:ow.next_thread_id ~name ~core in
  ow.next_thread_id <- ow.next_thread_id + 1;
  ow.live <- ow.live + 1;
  let et = cur t core in
  let cs = et.cores_.(core) in
  (* Under sharding, a thread spawned mid-run (from a facade control
     event in the barrier's serial phase) must not start inside a window
     the chips have already executed: if its chip has been idle, the chip
     engine's last_time and core clock lag the window cursor, and the
     thread's first cross-chip effect would arrive inside a closed window
     and trip the outbox conservatism check. Clamp the dispatch time to
     the facade's window cursor, which during the serial phase is the
     start of the next window to run (0 before the run starts, so
     setup-time spawns are unaffected). *)
  let start =
    let base = max et.last_time cs.clock in
    match ow.shard with Some s -> max base s.wstart | None -> base
  in
  if Probe.active ow.probe_ then
    Probe.emit ow.probe_
      (Probe.Thread_spawned
         { time = max ow.last_time start; core; tid = th.Thread.id; name });
  let r =
    { thread = th; run = (fun () -> Effect.Deep.match_with body () (handler et th)) }
  in
  Queue.add r cs.runq;
  schedule et ~time:start (Poke core);
  th

let at t ~time f =
  if time < t.last_time then invalid_arg "Engine.at: time is in the past";
  schedule t ~time (Control { f; daemon = false })

let rec reschedule_every t ~period f ~time =
  schedule t ~time
    (Control
       {
         daemon = true;
         f =
           (fun ~now ->
             f ~now;
             reschedule_every t ~period f ~time:(now + period));
       })

let every t ~period ?start f =
  if period <= 0 then invalid_arg "Engine.every: period must be positive";
  let time = match start with Some s -> s | None -> t.last_time + period in
  reschedule_every t ~period f ~time

let step t time ev =
  t.last_time <- max t.last_time time;
  t.events <- t.events + 1;
  match ev with
  | Run (core, f) ->
      let cs = t.cores_.(core) in
      cs.clock <- max cs.clock time;
      f ()
  | Release core ->
      let cs = t.cores_.(core) in
      cs.clock <- max cs.clock time;
      cs.busy <- false;
      dispatch t cs
  | Poke core ->
      let cs = t.cores_.(core) in
      cs.clock <- max cs.clock time;
      if not cs.busy then dispatch t cs
  | Arrive (core, r) ->
      let cs = t.cores_.(core) in
      cs.clock <- max cs.clock time;
      Queue.add r cs.runq;
      if not cs.busy then dispatch t cs
  | Control { f; _ } -> f ~now:time

let serial_run ?until ?stop_when t =
  let stop = match stop_when with Some f -> f | None -> fun () -> false in
  let horizon = match until with Some u -> u | None -> max_int in
  let continue_ =
    ((ref true) [@alloc_ok "one cell per run call, not per event"])
  in
  while !continue_ do
    if t.nondaemon_pending = 0 then
      (* Only recurring monitors remain: the simulated program has
         finished (or deadlocked); ticking on would never terminate. *)
      continue_ := false
    else if Event_queue.is_empty t.queue then continue_ := false
    else begin
      (* min_time/pop_min rather than peek_time/pop: this is the innermost
         simulation loop and must not allocate per event. *)
      let time = Event_queue.min_time t.queue in
      if time > horizon then begin
        t.last_time <- max t.last_time horizon;
        continue_ := false
      end
      else begin
        let ev = Event_queue.pop_min t.queue in
        if not (is_daemon ev) then
          t.nondaemon_pending <- t.nondaemon_pending - 1;
        step t time ev;
        if stop () then continue_ := false
      end
    end
  done

(* ------------------------------------------------------------------ *)
(* Windowed sharded run. All helpers are top-level so the steady-state
   per-window loop allocates nothing (pinned by suite_hotpath).         *)

(* Drain one chip's events with time <= stop, in (time, seq) order. *)
let rec chip_loop t ~stop =
  if not (Event_queue.is_empty t.queue) then begin
    let time = Event_queue.min_time t.queue in
    if time <= stop then begin
      let ev = Event_queue.pop_min t.queue in
      if not (is_daemon ev) then t.nondaemon_pending <- t.nondaemon_pending - 1;
      step t time ev;
      chip_loop t ~stop
    end
  end

let rec run_chip_range members ~lo ~hi ~stop =
  if lo < hi then begin
    chip_loop members.(lo) ~stop;
    run_chip_range members ~lo:(lo + 1) ~hi ~stop
  end

(* Facade control events due strictly before the new window start run in
   the barrier's serial phase, in (time, seq) order. *)
let rec pump_facade t ~wend =
  if not (Event_queue.is_empty t.queue) then begin
    let time = Event_queue.min_time t.queue in
    if time < wend then begin
      let ev = Event_queue.pop_min t.queue in
      if not (is_daemon ev) then t.nondaemon_pending <- t.nondaemon_pending - 1;
      step t time ev;
      pump_facade t ~wend
    end
  end

let rec run_hooks hooks ~wstart ~wend =
  match hooks with
  | [] -> ()
  | h :: rest ->
      h ~wstart ~wend;
      run_hooks rest ~wstart ~wend

(* The barrier's serial phase: executed by the coordinator alone, with
   every worker quiescent. Order is load-bearing — see Machine's shard_*
   docs: messages first (they schedule next-window events), then presence
   replay and DRAM absorption, then clears, then invalidations (whose
   presence clears land in next-window logs), then registered hooks
   (CoreTime's merged op logs), then facade control events of the closed
   window (the rebalancer runs over fully merged state). *)
let barrier_merge t s ~wend =
  let members = s.members in
  let nm = Array.length members in
  let wstart = wend - s.delta in
  for c = 0 to nm - 1 do
    match members.(c).shard with
    | Some ms ->
        if not (Shard_sync.Outbox.is_empty ms.outbox) then
          Shard_sync.Outbox.drain ms.outbox ~deadline:wend
    | None -> ()
  done;
  for src = 0 to nm - 1 do
    if not (Machine.shard_outbox_empty members.(src).machine) then
      for dst = 0 to nm - 1 do
        if dst <> src then
          Machine.shard_replay_presence members.(dst).machine
            ~src:members.(src).machine
      done
  done;
  for src = 0 to nm - 1 do
    for dst = 0 to nm - 1 do
      if dst <> src then
        Machine.shard_absorb_dram members.(dst).machine
          ~src:members.(src).machine ~window_start:wstart
    done
  done;
  for c = 0 to nm - 1 do
    Machine.shard_clear_plog_and_dram members.(c).machine
  done;
  for src = 0 to nm - 1 do
    for dst = 0 to nm - 1 do
      if dst <> src then
        Machine.shard_apply_invals members.(dst).machine
          ~src:members.(src).machine
    done
  done;
  for c = 0 to nm - 1 do
    Machine.shard_clear_ilog members.(c).machine
  done;
  run_hooks s.hooks ~wstart ~wend;
  pump_facade t ~wend

let rec sum_nondaemon members i acc =
  if i >= Array.length members then acc
  else sum_nondaemon members (i + 1) (acc + members.(i).nondaemon_pending)

let rec any_outbox members i =
  i < Array.length members
  &&
  match members.(i).shard with
  | Some ms ->
      (not (Shard_sync.Outbox.is_empty ms.outbox)) || any_outbox members (i + 1)
  | None -> any_outbox members (i + 1)

let rec min_event_time members i acc =
  if i >= Array.length members then acc
  else
    let m = members.(i) in
    let acc =
      if Event_queue.is_empty m.queue then acc
      else min acc (Event_queue.min_time m.queue)
    in
    min_event_time members (i + 1) acc

let sharded_run ?until ?stop_when t s =
  if stop_when <> None then
    invalid_arg "Engine.run: stop_when is not supported on a sharded engine";
  let horizon = match until with Some u -> u | None -> max_int in
  let members = s.members in
  let nchips = Array.length members in
  let d = s.domains in
  let base = nchips / d and rem = nchips mod d in
  let lo p = (p * base) + min p rem in
  let hi p = lo (p + 1) in
  let barrier =
    if d > 1 then Some (Shard_sync.Barrier.create ~workers:(d - 1)) else None
  in
  let werr = Atomic.make None in
  let workers =
    match barrier with
    | None -> [||]
    | Some b ->
        Array.init (d - 1) (fun i ->
            Shard_sync.Domains.spawn (fun () ->
                let p = i + 1 in
                let rec wloop seen =
                  let round, stop = Shard_sync.Barrier.wait_round b ~seen in
                  if stop <> Shard_sync.Barrier.exit_round then begin
                    (try run_chip_range members ~lo:(lo p) ~hi:(hi p) ~stop
                     with e ->
                       ignore (Atomic.compare_and_set werr None (Some e)));
                    Shard_sync.Barrier.worker_done b ~worker:i ~round;
                    wloop round
                  end
                in
                wloop 0))
  in
  let rounds = ((ref 0) [@alloc_ok "once per run call"]) in
  let continue_ = ((ref true) [@alloc_ok "once per run call"]) in
  let finish () =
    (match barrier with
    | Some b ->
        Shard_sync.Barrier.shutdown b;
        Array.iter Shard_sync.Domains.join workers
    | None -> ());
    match Atomic.get werr with Some e -> raise e | None -> ()
  in
  (try
     while !continue_ do
       let wend = s.wstart + s.delta in
       let nondaemon = t.nondaemon_pending + sum_nondaemon members 0 0 in
       let inflight = any_outbox members 0 in
       if nondaemon = 0 && not inflight then begin
         (* Natural termination: every queue drained mid-window. Flush
            the barrier hooks so deferred per-window state (CoreTime's
            op logs) is applied before the caller reads it. *)
         run_hooks s.hooks ~wstart:s.wstart ~wend;
         continue_ := false
       end
       else begin
         let next_t =
           min_event_time members 0
             (if Event_queue.is_empty t.queue then max_int
              else Event_queue.min_time t.queue)
         in
         if (not inflight) && next_t > horizon then begin
           t.last_time <- max t.last_time horizon;
           continue_ := false
         end
         else if (not inflight) && next_t >= wend then
           (* Nothing due this window and nothing to deliver at its end:
              jump the window cursor to the window containing the next
              event. Mirrors are unchanged by construction (no traffic). *)
           s.wstart <- s.wstart + ((next_t - s.wstart) / s.delta * s.delta)
         else begin
           let stop = min (wend - 1) horizon in
           (match barrier with
           | Some b ->
               incr rounds;
               Shard_sync.Barrier.post_round b ~stop
           | None -> ());
           run_chip_range members ~lo:(lo 0) ~hi:(hi 0) ~stop;
           (match barrier with
           | Some b -> Shard_sync.Barrier.wait_workers b ~round:!rounds
           | None -> ());
           (match Atomic.get werr with Some e -> raise e | None -> ());
           if stop < wend - 1 then begin
             (* The horizon pauses the run mid-window; a later [run]
                resumes the same window before the next barrier. *)
             t.last_time <- max t.last_time horizon;
             continue_ := false
           end
           else begin
             (* Advance the cursor BEFORE the serial phase: facade
                control events run inside [barrier_merge] (pump_facade),
                and anything they schedule — notably [spawn] — clamps
                against the cursor, which must already name the next
                window to execute. *)
             s.wstart <- wend;
             barrier_merge t s ~wend;
             t.last_time <- max t.last_time (wend - 1)
           end
         end
       end
     done
   with e ->
     (try finish () with _ -> ());
     raise e);
  finish ();
  if until <> None then t.last_time <- max t.last_time horizon

let run ?until ?stop_when t =
  match t.shard with
  | None -> serial_run ?until ?stop_when t
  | Some s when s.chip < 0 -> sharded_run ?until ?stop_when t s
  | Some _ -> invalid_arg "Engine.run: chip shards run via their facade"

let finalize_idle t =
  Array.iter
    (fun cs ->
      if cs.idle_since >= 0 then begin
        let upto = max cs.clock t.last_time in
        let c = Machine.counters t.machine cs.cid in
        c.Counters.idle_cycles <-
          c.Counters.idle_cycles + (upto - cs.idle_since);
        cs.idle_since <- upto
      end)
    t.cores_
