(** Per-object spin locks, as added to each directory in the paper's
    file-system benchmark (Section 5, "Setup").

    A lock occupies its own cache line in simulated memory, so contended
    acquisition bounces the line between cores through the coherence
    protocol — which is what makes the far-left region of Figure 4 slow
    both with and without CoreTime. Acquisition and release are performed
    through {!Api.lock} / {!Api.unlock} from inside a simulated thread; this
    module only defines the lock state and its statistics. *)

type waiter = {
  thread : Thread.t;
  attempt : int;  (** Virtual time the acquire was attempted. *)
  grant : int -> unit;  (** Called by the engine at hand-off time. *)
}

type t = {
  name : string;
  addr : int;  (** The lock word's address (its own line). *)
  mutable owner : int option;  (** Owning thread id. *)
  waiters : waiter Queue.t;
  mutable acquisitions : int;
  mutable contended : int;  (** Acquisitions that had to wait. *)
}

val create : O2_simcore.Memsys.t -> name:string -> t
(** Allocates an isolated line for the lock word. *)

val held : t -> bool
val waiting : t -> int

val owner : t -> int option
(** The owning thread id, when held. *)

val acquisitions : t -> int
(** Successful acquisitions so far (the stats layer reads these through
    accessors rather than reaching into the record). *)

val contended : t -> int
(** Acquisitions that found the lock held and had to wait. *)

val pp : Format.formatter -> t -> unit
