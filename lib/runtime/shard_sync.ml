open O2_simcore

(* Cross-shard plumbing for the windowed engine: per-chip outboxes of
   deferred cross-chip deliveries, and the round barrier that separates
   window execution (chips in parallel) from the serial merge phase. *)

module Outbox = struct
  (* Timestamped thunks posted by one chip during its window and executed
     by the coordinator in the barrier's serial phase, in posting order.
     The arrival time rides alongside each thunk purely so the drain can
     assert the conservatism invariant: nothing posted during [T, T+Δ)
     may take effect before T+Δ. [push] is allocation-free in the steady
     state apart from the caller's closure. *)
  type t = {
    arrivals : Intvec.t;
    mutable thunks : (unit -> unit) array;
    mutable len : int;
  }

  let nothing () = ()

  let create () =
    { arrivals = Intvec.create ~cap:64 (); thunks = Array.make 64 nothing; len = 0 }

  let length t = t.len
  let is_empty t = t.len = 0

  let push t ~arrive thunk =
    Intvec.push t.arrivals arrive;
    if t.len = Array.length t.thunks then begin
      let bigger =
        (Array.make (2 * t.len) nothing
        [@alloc_ok "amortized doubling, never shrunk"])
      in
      Array.blit t.thunks 0 bigger 0 t.len;
      t.thunks <- bigger
    end;
    t.thunks.(t.len) <- thunk;
    t.len <- t.len + 1

  (* Execute every pending thunk in posting order. [deadline] is the new
     window start T+Δ: an arrival before it would mean a cross-chip effect
     outran the conservative lookahead — a Config/engine bug. *)
  let drain t ~deadline =
    for i = 0 to t.len - 1 do
      let arrive = Intvec.unsafe_get t.arrivals i in
      if arrive < deadline then
        invalid_arg
          (Printf.sprintf
             "Shard_sync.Outbox.drain: message arrives at %d inside the \
              current window (barrier at %d); sync window is not conservative"
             arrive deadline);
      let th =
        (Array.unsafe_get t.thunks i
        [@alloc_ok "reads a stored closure; nothing is constructed"])
      in
      Array.unsafe_set t.thunks i nothing;
      th ()
    done;
    t.len <- 0;
    Intvec.clear t.arrivals
end

module Domains = struct
  (* The windowed engine's worker domains. Kept here (with the barrier's
     mutex/condition) so raw concurrency primitives stay confined to the
     runtime's two shims — domain_pool.ml for cell-level parallelism and
     this module for intra-cell sharding; o2staticcheck enforces it. *)
  type handle = unit Domain.t

  let spawn f = Domain.spawn f
  let join h = Domain.join h
end

module Barrier = struct
  (* Round-trip barrier between one coordinator and [workers] worker
     domains. Each round the coordinator publishes a per-round command (the
     chip-loop stop time), workers run their chips up to it and report
     back. Waits spin briefly then block on a condition variable, so the
     scheme behaves on hosts with fewer cores than domains. *)
  type t = {
    mutable stop_time : int;  (* command for the round; read after [round] *)
    round : int Atomic.t;
    dones : int Atomic.t array;
    mu : Mutex.t;
    cv : Condition.t;
  }

  let exit_round = min_int

  let create ~workers =
    {
      stop_time = 0;
      round = Atomic.make 0;
      dones = Array.init workers (fun _ -> Atomic.make 0);
      mu = Mutex.create ();
      cv = Condition.create ();
    }

  let spin_budget = 2000

  (* The wait loops are written as direct recursions over the watched
     atomic (no predicate closures): they run once per window per domain
     and must not allocate — the manifest's alloc pass checks them. *)
  let rec spin_newer r seen n =
    Atomic.get r > seen || (n > 0 && (Domain.cpu_relax (); spin_newer r seen (n - 1)))

  let rec spin_at_least d round n =
    Atomic.get d >= round || (n > 0 && (Domain.cpu_relax (); spin_at_least d round (n - 1)))

  let broadcast t =
    Mutex.lock t.mu;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu

  (* Coordinator: publish the next round's stop time. *)
  let post_round t ~stop =
    t.stop_time <- stop;
    Atomic.incr t.round;
    broadcast t

  (* Worker: wait for a round newer than [seen]; returns (round, stop).
     A stop of [exit_round] tells the worker to return. *)
  let wait_round t ~seen =
    if not (spin_newer t.round seen spin_budget) then begin
      Mutex.lock t.mu;
      while not (Atomic.get t.round > seen) do
        Condition.wait t.cv t.mu
      done;
      Mutex.unlock t.mu
    end;
    ((Atomic.get t.round, t.stop_time)
    [@alloc_ok "one result pair per window round, not per event"])

  let worker_done t ~worker ~round =
    Atomic.set t.dones.(worker) round;
    broadcast t

  let rec wait_workers_from t ~round i =
    if i < Array.length t.dones then begin
      let d = t.dones.(i) in
      if not (spin_at_least d round spin_budget) then begin
        Mutex.lock t.mu;
        while not (Atomic.get d >= round) do
          Condition.wait t.cv t.mu
        done;
        Mutex.unlock t.mu
      end;
      wait_workers_from t ~round (i + 1)
    end

  let wait_workers t ~round = wait_workers_from t ~round 0

  let shutdown t = post_round t ~stop:exit_round
end
