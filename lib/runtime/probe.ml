type mem_kind = Load | Store

type lock_info = { lock_name : string; lock_addr : int }

type event =
  | Mem of {
      time : int;
      core : int;
      tid : int;
      kind : mem_kind;
      addr : int;
      len : int;
    }
  | Lock_acquired of {
      time : int;
      core : int;
      tid : int;
      lock : lock_info;
      contended : bool;
    }
  | Lock_released of { time : int; core : int; tid : int; lock : lock_info }
  | Thread_spawned of { time : int; core : int; tid : int; name : string }
  | Thread_finished of { time : int; core : int; tid : int }
  | Thread_moved of { time : int; tid : int; from_core : int; to_core : int }
  | Op_requested of { time : int; core : int; tid : int; addr : int }
  | Op_started of {
      time : int;
      core : int;
      tid : int;
      addr : int;
      home : int option;
    }
  | Op_ended of { time : int; core : int; tid : int }
  | Rebalanced of { time : int; moves : int; demotions : int }

type t = { mutable listeners : (event -> unit) list }

let create () = { listeners = [] }
let subscribe t f = t.listeners <- f :: t.listeners
let active t = t.listeners <> []
let emit t ev = List.iter (fun f -> f ev) t.listeners
