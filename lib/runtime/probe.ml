type mem_kind = Load | Store

type lock_info = { lock_name : string; lock_addr : int }

type decision =
  | Promoted of {
      obj_base : int;
      name : string;
      seq : int;
      assigns : int;
      core : int;
      placement : string;
      clustered : bool;
      ewma_misses : float;
      threshold : float;
      ops_total : int;
      min_ops : int;
      bytes : int;
      budget : int;
      used_after : int;
      fitting_cores : int;
    }
  | Promotion_replicated of {
      obj_base : int;
      name : string;
      seq : int;
      ops_period : int;
      min_ops : int;
    }
  | Moved of {
      obj_base : int;
      name : string;
      seq : int;
      assigns : int;
      ops_period : int;
      from_core : int;
      to_core : int;
      src_busy : float;
      avg_busy : float;
      src_dram : int;
      avg_dram : float;
      dst_idle : float;
      runner_up_seq : int;
      runner_up_name : string;
      runner_up_ops : int;
      tie_break : bool;
      shed_before : int;
      shed_target : int;
      moves_left : int;
    }
  | Demoted of {
      obj_base : int;
      name : string;
      seq : int;
      core : int;
      idle_periods : int;
      threshold_periods : int;
    }
  | Displaced of {
      hot_base : int;
      hot_name : string;
      hot_seq : int;
      hot_ops : int;
      victim_base : int;
      victim_name : string;
      victim_seq : int;
      victim_ops : int;
      core : int;
      placed : bool;
    }
  | Released of {
      obj_base : int;
      name : string;
      seq : int;
      core : int;
      ops_period : int;
      min_ops : int;
    }

type event =
  | Mem of {
      time : int;
      core : int;
      tid : int;
      kind : mem_kind;
      addr : int;
      len : int;
    }
  | Lock_acquired of {
      time : int;
      core : int;
      tid : int;
      lock : lock_info;
      contended : bool;
    }
  | Lock_released of { time : int; core : int; tid : int; lock : lock_info }
  | Thread_spawned of { time : int; core : int; tid : int; name : string }
  | Thread_finished of { time : int; core : int; tid : int }
  | Thread_moved of { time : int; tid : int; from_core : int; to_core : int }
  | Op_requested of { time : int; core : int; tid : int; addr : int }
  | Op_started of {
      time : int;
      core : int;
      tid : int;
      addr : int;
      home : int option;
    }
  | Op_ended of { time : int; core : int; tid : int }
  | Rebalanced of { time : int; moves : int; demotions : int }
  | Decision of { time : int; decision : decision }

type t = { mutable listeners : (event -> unit) list }

let create () = { listeners = [] }
let subscribe t f = t.listeners <- f :: t.listeners
let active t = t.listeners <> []

(* Hand-rolled iteration: [List.iter (fun f -> f ev)] would build a fresh
   closure capturing [ev] on every emit, and call sites only guard emits
   with [active] — the emitting path itself must stay allocation-free. *)
let rec notify ev = function
  | [] -> ()
  | f :: rest ->
      f ev;
      notify ev rest

let emit t ev = notify ev t.listeners
