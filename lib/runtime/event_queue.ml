(* The heap is three parallel arrays — times, seqs, payloads — instead of
   one array of records, so [push]/[pop_min] move plain ints and never
   allocate. (A true single-array packing of [time * seq] into one int is
   not safe: times are unbounded cycle counts and seqs are unbounded
   insertion counters, so their product can exceed 63 bits.)

   A popped payload stays in [payloads] until its slot is overwritten; for
   the engine's small event payloads that retention is harmless. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { times = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let before t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let time = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- time;
  let seq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- seq;
  let payload = t.payloads.(i) in
  t.payloads.(i) <- t.payloads.(j);
  t.payloads.(j) <- payload

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && before t l i then l else i in
  let smallest = if r < t.size && before t r smallest then r else smallest in
  if smallest <> i then begin
    swap t i smallest;
    sift_down t smallest
  end

let grow t payload =
  let cap = max 64 (2 * t.size) in
  let times = Array.make cap 0 in
  let seqs = Array.make cap 0 in
  let payloads = Array.make cap payload in
  Array.blit t.times 0 times 0 t.size;
  Array.blit t.seqs 0 seqs 0 t.size;
  Array.blit t.payloads 0 payloads 0 t.size;
  t.times <- times;
  t.seqs <- seqs;
  t.payloads <- payloads

let push t ~time payload =
  if time < 0 then invalid_arg "Event_queue.push: negative time";
  if t.size = Array.length t.times then grow t payload;
  let i = t.size in
  t.times.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.payloads.(i) <- payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let min_time t =
  if t.size = 0 then invalid_arg "Event_queue.min_time: empty queue";
  t.times.(0)

let pop_min t =
  if t.size = 0 then invalid_arg "Event_queue.pop_min: empty queue";
  let top = t.payloads.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.times.(0) <- t.times.(t.size);
    t.seqs.(0) <- t.seqs.(t.size);
    t.payloads.(0) <- t.payloads.(t.size);
    sift_down t 0
  end;
  top

let pop t =
  if t.size = 0 then None
  else
    let time = t.times.(0) in
    let payload = pop_min t in
    Some (time, payload)

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let clear t =
  t.size <- 0;
  t.times <- [||];
  t.seqs <- [||];
  t.payloads <- [||]

let check_heap_property t =
  let ok = ref true in
  for i = 1 to t.size - 1 do
    if before t i ((i - 1) / 2) then ok := false
  done;
  !ok
