type waiter = { thread : Thread.t; attempt : int; grant : int -> unit }

type t = {
  name : string;
  addr : int;
  mutable owner : int option;
  waiters : waiter Queue.t;
  mutable acquisitions : int;
  mutable contended : int;
}

let create mem ~name =
  let ext = O2_simcore.Memsys.alloc_isolated mem ~name ~size:8 in
  {
    name;
    addr = ext.O2_simcore.Memsys.base;
    owner = None;
    waiters = Queue.create ();
    acquisitions = 0;
    contended = 0;
  }

let held t = t.owner <> None
let waiting t = Queue.length t.waiters
let owner t = t.owner
let acquisitions t = t.acquisitions
let contended t = t.contended

let pp ppf t =
  Format.fprintf ppf "lock %s @@%#x owner=%s waiters=%d acq=%d contended=%d"
    t.name t.addr
    (match t.owner with None -> "-" | Some id -> string_of_int id)
    (waiting t) t.acquisitions t.contended
