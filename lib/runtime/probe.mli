(** Observation hooks for the deterministic simulation.

    Every {!Engine.t} owns a probe; runtime and CoreTime layers publish
    notable events through it (memory accesses, lock transfers, thread
    lifecycle, annotated-operation boundaries, monitor runs). Analysis
    passes — the race detector and invariant checkers in [lib/analysis] —
    subscribe a listener and reconstruct whatever state they need.

    Emission is zero-cost when nobody listens: producers guard event
    construction with {!active}, so benchmarks pay nothing for the hooks.
    Listeners run synchronously at the producer's call site, in the
    simulation's deterministic event order, and must not perform effects
    or mutate simulator state. *)

type mem_kind = Load | Store

type lock_info = {
  lock_name : string;
  lock_addr : int;  (** The lock word's address (its own cache line). *)
}

type event =
  | Mem of {
      time : int;
      core : int;
      tid : int;
      kind : mem_kind;
      addr : int;
      len : int;
    }  (** An {!Api.read} / {!Api.write} performed by a simulated thread.
          Lock-word traffic is not reported here; it arrives as
          [Lock_acquired] / [Lock_released]. *)
  | Lock_acquired of {
      time : int;
      core : int;
      tid : int;
      lock : lock_info;
      contended : bool;
          (** [true] when the grant is a direct hand-off from a releasing
              owner (the acquirer spun); [false] for an uncontended take. *)
    }
      (** Emitted when the lock is actually granted (immediate or after a
          contended hand-off), not when the acquire was attempted. *)
  | Lock_released of { time : int; core : int; tid : int; lock : lock_info }
  | Thread_spawned of { time : int; core : int; tid : int; name : string }
  | Thread_finished of { time : int; core : int; tid : int }
  | Thread_moved of { time : int; tid : int; from_core : int; to_core : int }
      (** Migration or operation shipping departed [from_core]. *)
  | Op_requested of { time : int; core : int; tid : int; addr : int }
      (** A [Coretime.ct_start] was entered, before the annotation overhead
          and before any migration; [core] is where the caller was running.
          Together with [Thread_moved] and [Op_started] this lets an
          observer split an operation into queue (annotation + departure
          wait), migrate (wire + landing) and execute phases. *)
  | Op_started of {
      time : int;
      core : int;
      tid : int;
      addr : int;  (** The [ct_start] argument (the object's base). *)
      home : int option;
          (** The object's home core iff CoreTime is enabled and the object
              is assigned; the emitting core has already migrated, so
              [core] must equal the home when it is [Some _]. *)
    }  (** A [Coretime.ct_start] completed (after any migration). *)
  | Op_ended of { time : int; core : int; tid : int }
      (** A [Coretime.ct_end] popped its frame (before any migrate-back). *)
  | Rebalanced of { time : int; moves : int; demotions : int }
      (** One monitor period finished; [moves]/[demotions] are this
          period's counts. *)

type t

val create : unit -> t

val subscribe : t -> (event -> unit) -> unit
(** Listeners are called in an unspecified order; they stay subscribed for
    the probe's lifetime. *)

val active : t -> bool
(** [true] iff at least one listener is subscribed. Producers check this
    before building an event so inactive probes cost nothing. *)

val emit : t -> event -> unit
