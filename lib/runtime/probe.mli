(** Observation hooks for the deterministic simulation.

    Every {!Engine.t} owns a probe; runtime and CoreTime layers publish
    notable events through it (memory accesses, lock transfers, thread
    lifecycle, annotated-operation boundaries, monitor runs). Analysis
    passes — the race detector and invariant checkers in [lib/analysis] —
    subscribe a listener and reconstruct whatever state they need.

    Emission is zero-cost when nobody listens: producers guard event
    construction with {!active}, so benchmarks pay nothing for the hooks.
    Listeners run synchronously at the producer's call site, in the
    simulation's deterministic event order, and must not perform effects
    or mutate simulator state. *)

type mem_kind = Load | Store

type lock_info = {
  lock_name : string;
  lock_addr : int;  (** The lock word's address (its own cache line). *)
}

(** A structured record of one scheduler choice — the decision-provenance
    feed of the cache observatory. Every promotion, migration, demotion,
    displacement and replication release carries the inputs the scheduler
    saw (counter diffs, candidate scores), the tie-breaks it applied, and
    the action it took, so an observer can replay {e why} the placement
    happened. Emitted only under {!active}, so disabled probes pay
    nothing for the instrumentation. *)
type decision =
  | Promoted of {
      obj_base : int;
      name : string;
      seq : int;  (** Registration sequence (the scheduler's tie-break). *)
      assigns : int;  (** Lifetime assignment count, this one included. *)
      core : int;  (** The chosen home. *)
      placement : string;
          (** ["first-fit"], ["least-loaded"], ["random-fit"] or
              ["clustered"]. *)
      clustered : bool;
      ewma_misses : float;  (** Input: miss EWMA at promotion time. *)
      threshold : float;  (** The policy threshold it exceeded. *)
      ops_total : int;
      min_ops : int;
      bytes : int;
      budget : int;  (** Per-core packing budget. *)
      used_after : int;  (** Bytes used on [core] after this assignment. *)
      fitting_cores : int;
          (** How many cores could have taken the object — the size of the
              candidate set the packer chose from. *)
    }
  | Promotion_replicated of {
      obj_base : int;
      name : string;
      seq : int;
      ops_period : int;
      min_ops : int;
          (** The promotion was withheld: a hot read-only object is left
              for the hardware to replicate (Section 6.2). *)
    }
  | Moved of {
      obj_base : int;
      name : string;
      seq : int;
      assigns : int;
      ops_period : int;  (** The candidate score that won. *)
      from_core : int;
      to_core : int;
      src_busy : float;  (** Input: source-core busy ratio this period. *)
      avg_busy : float;
      src_dram : int;  (** Input: source-core DRAM loads this period. *)
      avg_dram : float;
      dst_idle : float;  (** Receiver idle ratio (most-idle-first order). *)
      runner_up_seq : int;
          (** The next-hottest candidate it beat ([-1] when it was the only
              one). *)
      runner_up_name : string;
      runner_up_ops : int;
      tie_break : bool;
          (** [true] when the runner-up had equal [ops_period] and the
              registration sequence decided. *)
      shed_before : int;  (** Ops still to shed when this move was chosen. *)
      shed_target : int;
      moves_left : int;
    }
  | Demoted of {
      obj_base : int;
      name : string;
      seq : int;
      core : int;  (** The home it lost. *)
      idle_periods : int;
      threshold_periods : int;  (** [demote_idle_periods] it reached. *)
    }
  | Displaced of {
      hot_base : int;
      hot_name : string;
      hot_seq : int;
      hot_ops : int;
      victim_base : int;
      victim_name : string;
      victim_seq : int;
      victim_ops : int;  (** At most half of [hot_ops], by policy. *)
      core : int;  (** The core the victim vacated. *)
      placed : bool;  (** Whether [hot] actually fit there afterwards. *)
    }
  | Released of {
      obj_base : int;
      name : string;
      seq : int;
      core : int;
      ops_period : int;
      min_ops : int;
          (** A hot read-only assignment was released for hardware
              replication ([replicate_min_ops] reached). *)
    }

type event =
  | Mem of {
      time : int;
      core : int;
      tid : int;
      kind : mem_kind;
      addr : int;
      len : int;
    }  (** An {!Api.read} / {!Api.write} performed by a simulated thread.
          Lock-word traffic is not reported here; it arrives as
          [Lock_acquired] / [Lock_released]. *)
  | Lock_acquired of {
      time : int;
      core : int;
      tid : int;
      lock : lock_info;
      contended : bool;
          (** [true] when the grant is a direct hand-off from a releasing
              owner (the acquirer spun); [false] for an uncontended take. *)
    }
      (** Emitted when the lock is actually granted (immediate or after a
          contended hand-off), not when the acquire was attempted. *)
  | Lock_released of { time : int; core : int; tid : int; lock : lock_info }
  | Thread_spawned of { time : int; core : int; tid : int; name : string }
  | Thread_finished of { time : int; core : int; tid : int }
  | Thread_moved of { time : int; tid : int; from_core : int; to_core : int }
      (** Migration or operation shipping departed [from_core]. *)
  | Op_requested of { time : int; core : int; tid : int; addr : int }
      (** A [Coretime.ct_start] was entered, before the annotation overhead
          and before any migration; [core] is where the caller was running.
          Together with [Thread_moved] and [Op_started] this lets an
          observer split an operation into queue (annotation + departure
          wait), migrate (wire + landing) and execute phases. *)
  | Op_started of {
      time : int;
      core : int;
      tid : int;
      addr : int;  (** The [ct_start] argument (the object's base). *)
      home : int option;
          (** The object's home core iff CoreTime is enabled and the object
              is assigned; the emitting core has already migrated, so
              [core] must equal the home when it is [Some _]. *)
    }  (** A [Coretime.ct_start] completed (after any migration). *)
  | Op_ended of { time : int; core : int; tid : int }
      (** A [Coretime.ct_end] popped its frame (before any migrate-back). *)
  | Rebalanced of { time : int; moves : int; demotions : int }
      (** One monitor period finished; [moves]/[demotions] are this
          period's counts. *)
  | Decision of { time : int; decision : decision }
      (** One scheduler choice, with full provenance. Emitted inside the
          period (before the closing [Rebalanced]) for monitor actions, and
          at [ct_start] time for promotions. *)

type t

val create : unit -> t

val subscribe : t -> (event -> unit) -> unit
(** Listeners are called in an unspecified order; they stay subscribed for
    the probe's lifetime. *)

val active : t -> bool
(** [true] iff at least one listener is subscribed. Producers check this
    before building an event so inactive probes cost nothing. *)

val emit : t -> event -> unit
