let sector_bytes = 512
let entry_bytes = 32
let fat_free = 0x0000
let fat_eoc = 0xFFFF
let fat_bad = 0xFFF7
let attr_directory = 0x10
let attr_archive = 0x20

type entry = { name : string; attr : int; first_cluster : int; size : int }

let end_marker = '\x00'
let deleted_marker = '\xE5'

let put16 b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let get16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let put32 b off v =
  put16 b off (v land 0xFFFF);
  put16 b (off + 2) ((v lsr 16) land 0xFFFF)

let get32 b off = get16 b off lor (get16 b (off + 2) lsl 16)

let encode_entry e b ~off =
  if String.length e.name <> 11 then invalid_arg "encode_entry: name not 11 bytes";
  Bytes.blit_string e.name 0 b off 11;
  Bytes.set b (off + 11) (Char.chr (e.attr land 0xFF));
  Bytes.fill b (off + 12) 14 '\x00';
  put16 b (off + 26) e.first_cluster;
  put32 b (off + 28) e.size

let decode_entry b ~off =
  {
    name = Bytes.sub_string b off 11;
    attr = Char.code (Bytes.get b (off + 11));
    first_cluster = get16 b (off + 26);
    size = get32 b (off + 28);
  }

let is_end b ~off = Bytes.get b off = end_marker
let is_deleted b ~off = Bytes.get b off = deleted_marker

(* In-place 8.3 name comparison. The lookup loop calls this once per live
   slot, so it must not allocate — [decode_entry] would build a record and
   an 11-byte string per slot just to compare names. The recursion is
   top-level (not a [let rec ... in] closure) because without flambda an
   inner recursive function capturing [b]/[name] is heap-allocated on
   every call. *)
let rec name_eq_from b ~off name i =
  i = 11 || (Bytes.get b (off + i) = String.get name i && name_eq_from b ~off name (i + 1))

let name_matches b ~off name =
  String.length name = 11 && name_eq_from b ~off name 0

let pp_entry ppf e =
  Format.fprintf ppf "%S attr=%#x cluster=%d size=%d" e.name e.attr
    e.first_cluster e.size
