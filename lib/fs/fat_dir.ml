let entries_per_cluster img =
  Fat_image.cluster_bytes img / Fat_types.entry_bytes

(* Scan one cluster, comparing the 8.3 name bytes in place — no decoded
   entry record, no allocation per live slot. The packed result is:
   the matching slot index (>= 0) on a hit; [-1] when the cluster was
   exhausted without a hit; [-(2 + slot)] when the end-of-directory marker
   sits at [slot]. The loop is a top-level recursion: a [let rec ... in]
   closure would be heap-allocated per scan without flambda. *)
let rec scan_slots buf base per name83 i =
  if i >= per then -1
  else begin
    let off = base + (i * Fat_types.entry_bytes) in
    if Fat_types.is_end buf ~off then -(2 + i)
    else if
      (not (Fat_types.is_deleted buf ~off))
      && Fat_types.name_matches buf ~off name83
    then i
    else scan_slots buf base per name83 (i + 1)
  end

let scan_cluster img cluster ~name83 =
  scan_slots (Fat_image.buf img)
    (Fat_image.cluster_off img cluster)
    (entries_per_cluster img) name83 0

let decode_at img cluster slot =
  Fat_types.decode_entry (Fat_image.buf img)
    ~off:(Fat_image.cluster_off img cluster + (slot * Fat_types.entry_bytes))

(* Walks follow the chain one FAT cell at a time ([Fat_image.next_cluster])
   instead of materialising the whole chain as a list; [steps] bounds the
   walk so a cyclic chain in a corrupt image still terminates. *)

let rec find_walk img name83 total cluster steps =
  if steps > total then failwith "Fat_dir.find: cycle in cluster chain"
  else begin
    let r = scan_cluster img cluster ~name83 in
    if r >= 0 then Some (decode_at img cluster r)
    else if r = -1 then begin
      let next = Fat_image.next_cluster img cluster in
      if next < 0 then None else find_walk img name83 total next (steps + 1)
    end
    else None (* end-of-directory marker *)
  end

let find img ~head ~name83 =
  find_walk img name83 (Fat_image.total_clusters img) head 0

let lookup_sim img ~head ~name83 ~compare_cycles =
  let open O2_runtime in
  let per = entries_per_cluster img in
  let charge cluster slots =
    ignore
      (Api.read
         ~addr:(Fat_image.cluster_addr img cluster)
         ~len:(slots * Fat_types.entry_bytes));
    Api.compute (slots * compare_cycles)
  in
  let total = Fat_image.total_clusters img in
  let rec walk cluster steps =
    if steps > total then failwith "Fat_dir.lookup_sim: cycle in cluster chain"
    else begin
      let r = scan_cluster img cluster ~name83 in
      if r >= 0 then begin
        charge cluster (r + 1);
        Some (decode_at img cluster r)
      end
      else if r = -1 then begin
        charge cluster per;
        let next = Fat_image.next_cluster img cluster in
        if next < 0 then None
        else begin
          (* Moving to the next cluster reads this one's FAT cell. *)
          ignore (Api.read ~addr:(Fat_image.fat_entry_addr img cluster) ~len:2);
          walk next (steps + 1)
        end
      end
      else begin
        (* end marker at slot [-(r + 2)]: examined slots up to and
           including it *)
        charge cluster (-r - 1);
        None
      end
    end
  in
  walk head 0

let zero_cluster img cluster =
  Bytes.fill (Fat_image.buf img)
    (Fat_image.cluster_off img cluster)
    (Fat_image.cluster_bytes img) '\x00'

let add img ~head entry =
  if find img ~head ~name83:entry.Fat_types.name <> None then
    Error (Printf.sprintf "duplicate entry %S" entry.Fat_types.name)
  else begin
    let buf = Fat_image.buf img in
    let per = entries_per_cluster img in
    let write_at cluster slot =
      Fat_types.encode_entry entry buf
        ~off:(Fat_image.cluster_off img cluster + (slot * Fat_types.entry_bytes));
      Ok ()
    in
    (* First free slot: a deleted entry or the end marker. Writing over the
       end marker is safe because the rest of the cluster is zero. *)
    let rec scan_chain = function
      | [] -> assert false
      | [ last ] -> (
          match free_slot last with
          | Some slot -> write_at last slot
          | None -> (
              match Fat_image.alloc_cluster img ~prev:(Some last) with
              | None -> Error "volume full"
              | Some fresh ->
                  zero_cluster img fresh;
                  write_at fresh 0))
      | cluster :: rest -> (
          match free_slot cluster with
          | Some slot -> write_at cluster slot
          | None -> scan_chain rest)
    and free_slot cluster =
      let base = Fat_image.cluster_off img cluster in
      let rec go i =
        if i >= per then None
        else begin
          let off = base + (i * Fat_types.entry_bytes) in
          if Fat_types.is_end buf ~off || Fat_types.is_deleted buf ~off then
            Some i
          else go (i + 1)
        end
      in
      go 0
    in
    scan_chain (Fat_image.chain img head)
  end

let append_bulk img ~head entries =
  let buf = Fat_image.buf img in
  let per = entries_per_cluster img in
  (* Find the append point: last cluster of the chain and the index of its
     end marker (or the cluster's end). *)
  let chain = Fat_image.chain img head in
  let rec find_tail = function
    | [] -> assert false
    | [ last ] ->
        let base = Fat_image.cluster_off img last in
        let rec slot i =
          if i >= per then (last, per)
          else if Fat_types.is_end buf ~off:(base + (i * Fat_types.entry_bytes))
          then (last, i)
          else slot (i + 1)
        in
        slot 0
    | _ :: rest -> find_tail rest
  in
  let cluster, slot = find_tail chain in
  let rec go cluster slot = function
    | [] -> Ok ()
    | entry :: rest ->
        if slot >= per then begin
          match Fat_image.alloc_cluster img ~prev:(Some cluster) with
          | None -> Error "volume full"
          | Some fresh ->
              zero_cluster img fresh;
              go fresh 0 (entry :: rest)
        end
        else begin
          Fat_types.encode_entry entry buf
            ~off:
              (Fat_image.cluster_off img cluster
              + (slot * Fat_types.entry_bytes));
          go cluster (slot + 1) rest
        end
  in
  go cluster slot entries

let remove img ~head ~name83 =
  let buf = Fat_image.buf img in
  let per = entries_per_cluster img in
  let rec walk = function
    | [] -> false
    | cluster :: rest ->
        let base = Fat_image.cluster_off img cluster in
        let rec go i =
          if i >= per then walk rest
          else begin
            let off = base + (i * Fat_types.entry_bytes) in
            if Fat_types.is_end buf ~off then false
            else if
              (not (Fat_types.is_deleted buf ~off))
              && Fat_types.name_matches buf ~off name83
            then begin
              Bytes.set buf off Fat_types.deleted_marker;
              true
            end
            else go (i + 1)
          end
        in
        go 0
  in
  walk (Fat_image.chain img head)

let list img ~head =
  let buf = Fat_image.buf img in
  let per = entries_per_cluster img in
  let rec walk acc = function
    | [] -> List.rev acc
    | cluster :: rest ->
        let base = Fat_image.cluster_off img cluster in
        let rec go acc i =
          if i >= per then walk acc rest
          else begin
            let off = base + (i * Fat_types.entry_bytes) in
            if Fat_types.is_end buf ~off then List.rev acc
            else if Fat_types.is_deleted buf ~off then go acc (i + 1)
            else go (Fat_types.decode_entry buf ~off :: acc) (i + 1)
          end
        in
        go acc 0
  in
  walk [] (Fat_image.chain img head)

let count img ~head = List.length (list img ~head)
