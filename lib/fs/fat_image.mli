(** The in-memory FAT disk image: boot record, file-allocation table,
    cluster data region, and cluster-chain management.

    The image occupies one extent of simulated physical memory, so every
    byte of it has a stable simulated address ({!cluster_addr},
    {!fat_entry_addr}) that threads read through {!O2_runtime.Api} to incur
    cache costs, while the actual contents live in an OCaml [Bytes.t]
    manipulated for free by host code. Clusters are numbered from 2, as on
    real FAT volumes. *)

type t

val create :
  O2_simcore.Memsys.t ->
  label:string ->
  cluster_bytes:int ->
  total_clusters:int ->
  t
(** Format an image: writes the boot record and an all-free FAT.
    @raise Invalid_argument for non-positive or non-sector-multiple
    geometry. *)

val cluster_bytes : t -> int
val total_clusters : t -> int
val free_clusters : t -> int
val base_addr : t -> int
val image_bytes : t -> int
val buf : t -> Bytes.t
(** The raw image, for directory-entry code and for {!Fat_check}. *)

(** Clusters are numbered from [first_cluster_no] = 2. *)
val first_cluster_no : int

val cluster_off : t -> int -> int
(** Byte offset of a cluster's data within {!buf}. *)

val cluster_addr : t -> int -> int
(** Simulated address of a cluster's data. *)

val fat_entry_addr : t -> int -> int
(** Simulated address of a cluster's FAT cell (2 bytes). *)

val fat_get : t -> int -> int
val fat_set : t -> int -> int -> unit

val alloc_cluster : t -> prev:int option -> int option
(** Allocate one free cluster (marked end-of-chain); if [prev] is given,
    link it in after that cluster. [None] when the volume is full. *)

val alloc_chain : t -> int -> int option
(** Allocate a linked chain of [n] clusters; returns its head. Allocations
    are first-fit from a rotating hint, so fresh volumes get contiguous
    chains. [None] (and no allocation) if fewer than [n] clusters are
    free. *)

val free_chain : t -> int -> unit
(** Release a whole chain starting at its head. *)

val chain : t -> int -> int list
(** Follow a chain from its head.
    @raise Failure on a cycle or an out-of-range link (corrupt image). *)

val next_cluster : t -> int -> int
(** The cluster following [c] in its chain, or [-1] at end-of-chain.
    Allocation-free single step (the lookup hot path walks chains with
    this instead of materialising {!chain}).
    @raise Failure on an out-of-range link (corrupt image). *)

val valid_cluster : t -> int -> bool
val magic : string
