let magic = "O2FAT1"
let first_cluster_no = 2

type t = {
  mem_base : int;
  cluster_bytes_ : int;
  total : int;
  fat_off : int;  (* byte offset of the FAT region within the image *)
  data_off : int;  (* byte offset of cluster #2 *)
  buf_ : Bytes.t;
  mutable free : int;
  mutable hint : int;  (* next cluster to try allocating *)
}

let round_up v align = (v + align - 1) / align * align

let create mem ~label ~cluster_bytes ~total_clusters =
  if cluster_bytes <= 0 || cluster_bytes mod Fat_types.sector_bytes <> 0 then
    invalid_arg "Fat_image.create: cluster_bytes must be a sector multiple";
  if total_clusters <= 0 || total_clusters > 0xFFF0 - first_cluster_no then
    invalid_arg "Fat_image.create: total_clusters out of range for FAT16";
  let fat_off = Fat_types.sector_bytes in
  let fat_bytes =
    round_up (2 * (total_clusters + first_cluster_no)) Fat_types.sector_bytes
  in
  let data_off = fat_off + fat_bytes in
  let image_size = data_off + (total_clusters * cluster_bytes) in
  let ext =
    O2_simcore.Memsys.alloc mem ~name:("fat:" ^ label) ~size:image_size
  in
  let buf_ = Bytes.make image_size '\x00' in
  (* Boot record: magic, then geometry, so Fat_check can revalidate. *)
  Bytes.blit_string magic 0 buf_ 0 (String.length magic);
  Fat_types.put32 buf_ 8 cluster_bytes;
  Fat_types.put32 buf_ 12 total_clusters;
  let t =
    {
      mem_base = ext.O2_simcore.Memsys.base;
      cluster_bytes_ = cluster_bytes;
      total = total_clusters;
      fat_off;
      data_off;
      buf_;
      free = total_clusters;
      hint = first_cluster_no;
    }
  in
  (* Reserve the two conventional head cells. *)
  Fat_types.put16 buf_ fat_off 0xFFF8;
  Fat_types.put16 buf_ (fat_off + 2) Fat_types.fat_eoc;
  t

let cluster_bytes t = t.cluster_bytes_
let total_clusters t = t.total
let free_clusters t = t.free
let base_addr t = t.mem_base
let image_bytes t = Bytes.length t.buf_
let buf t = t.buf_
let valid_cluster t c = c >= first_cluster_no && c < first_cluster_no + t.total

let cluster_off t c =
  if not (valid_cluster t c) then
    invalid_arg (Printf.sprintf "Fat_image: bad cluster %d" c);
  t.data_off + ((c - first_cluster_no) * t.cluster_bytes_)

let cluster_addr t c = t.mem_base + cluster_off t c
let fat_entry_addr t c = t.mem_base + t.fat_off + (2 * c)

let fat_get t c =
  if not (valid_cluster t c) then
    invalid_arg (Printf.sprintf "Fat_image.fat_get: bad cluster %d" c);
  Fat_types.get16 t.buf_ (t.fat_off + (2 * c))

let fat_set t c v =
  if not (valid_cluster t c) then
    invalid_arg (Printf.sprintf "Fat_image.fat_set: bad cluster %d" c);
  Fat_types.put16 t.buf_ (t.fat_off + (2 * c)) v

let find_free t =
  if t.free = 0 then None
  else begin
    let limit = first_cluster_no + t.total in
    let rec scan c remaining =
      if remaining = 0 then None
      else begin
        let c = if c >= limit then first_cluster_no else c in
        if fat_get t c = Fat_types.fat_free then Some c
        else scan (c + 1) (remaining - 1)
      end
    in
    scan t.hint t.total
  end

let alloc_cluster t ~prev =
  match find_free t with
  | None -> None
  | Some c ->
      fat_set t c Fat_types.fat_eoc;
      t.free <- t.free - 1;
      t.hint <- c + 1;
      (match prev with Some p -> fat_set t p c | None -> ());
      Some c

let alloc_chain t n =
  if n <= 0 then invalid_arg "Fat_image.alloc_chain: n must be positive";
  if t.free < n then None
  else begin
    let rec go head prev remaining =
      if remaining = 0 then Some head
      else
        match alloc_cluster t ~prev with
        | None -> None  (* cannot happen: free count checked *)
        | Some c ->
            let head = match head with None -> Some c | some -> some in
            go head (Some c) (remaining - 1)
    in
    match go None None n with Some (Some h) -> Some h | _ -> None
  end

(* Single-step chain walk for the lookup hot path: no list, no option. *)
let next_cluster t c =
  let next = fat_get t c in
  if next = Fat_types.fat_eoc then -1
  else if not (valid_cluster t next) then
    failwith (Printf.sprintf "Fat_image.next_cluster: bad link %d" next)
  else next

let chain t head =
  let rec go c acc steps =
    if steps > t.total then failwith "Fat_image.chain: cycle detected"
    else if not (valid_cluster t c) then
      failwith (Printf.sprintf "Fat_image.chain: bad link %d" c)
    else begin
      let next = fat_get t c in
      if next = Fat_types.fat_eoc then List.rev (c :: acc)
      else go next (c :: acc) (steps + 1)
    end
  in
  go head [] 0

let free_chain t head =
  List.iter
    (fun c ->
      fat_set t c Fat_types.fat_free;
      t.free <- t.free + 1)
    (chain t head);
  t.hint <- min t.hint head
