(** On-disk formats for the in-memory FAT16-style file system (derived from
    the EFSL FAT layout the paper modified: in-memory image, no buffer
    cache, 32-byte directory entries). *)

(** [sector_bytes] is 512; [entry_bytes] is 32, as in the paper's
    workload description. *)

val sector_bytes : int
val entry_bytes : int

(** FAT table cell values (2 bytes per cluster): [fat_free] = 0x0000,
    [fat_eoc] = 0xFFFF (end of chain), [fat_bad] = 0xFFF7. *)

val fat_free : int
val fat_eoc : int
val fat_bad : int

(** Directory-entry attribute bits. *)

val attr_directory : int
val attr_archive : int

type entry = {
  name : string;  (** 11-byte padded 8.3 form, see {!Fat_name}. *)
  attr : int;
  first_cluster : int;  (** 0 for empty files. *)
  size : int;  (** File size in bytes. *)
}

val end_marker : char
(** First byte of a directory slot past the last entry (0x00). *)

val deleted_marker : char
(** First byte of a deleted entry (0xE5). *)

(** Little-endian field accessors used across the on-disk structures. *)

val put16 : bytes -> int -> int -> unit
val get16 : bytes -> int -> int
val put32 : bytes -> int -> int -> unit
val get32 : bytes -> int -> int

val encode_entry : entry -> bytes -> off:int -> unit
(** Serialise into 32 bytes at [off]. *)

val decode_entry : bytes -> off:int -> entry
val is_end : bytes -> off:int -> bool
val is_deleted : bytes -> off:int -> bool

val name_matches : bytes -> off:int -> string -> bool
(** [name_matches b ~off name] compares the 11 name bytes of the entry at
    [off] against [name] in place, without decoding the entry. False when
    [name] is not exactly 11 bytes. Allocation-free — this is the compare
    in the lookup hot loop. *)

val pp_entry : Format.formatter -> entry -> unit
