(* The benchmark harness.

   Default invocation regenerates every table and figure of the paper plus
   the Section 4/6 ablations, printing paper-shaped rows (see
   EXPERIMENTS.md for the mapping). `--quick` shrinks windows and ladders;
   positional arguments select experiments by id; `--bechamel` runs the
   microbenchmark suite instead (one Bechamel test per experiment kernel,
   including the Θ(n log n) cache-packing claim, E5). *)

let experiments ~quick ~jobs ids =
  let ppf = Format.std_formatter in
  Format.fprintf ppf
    "o2sched benchmark harness: CoreTime (HotOS 2009) reproduction@.";
  Format.fprintf ppf "machine under test: %a@.@." O2_simcore.Config.pp
    O2_simcore.Config.amd16;
  let ids = if ids = [] then O2_experiments.Registry.ids () else ids in
  match O2_experiments.Registry.run_ids ~quick ~jobs ppf ids with
  | Ok () -> 0
  | Error msg ->
      prerr_endline ("bench: " ^ msg);
      1

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)

open Bechamel
open Toolkit

let packing_items n =
  List.init n (fun i ->
      {
        Coretime.Cache_packing.key = i;
        bytes = 1024 + (i mod 7 * 4096);
        heat = float_of_int ((i * 2654435761) land 0xFFFF);
      })

(* E5: the paper claims the cache-packing algorithm is Θ(n log n); the
   per-element time should stay ~log n across sizes. *)
let test_packing n =
  let items = packing_items n in
  let used = Array.make 16 0 in
  Test.make
    ~name:(Printf.sprintf "cache_packing/pack n=%d" n)
    (Staged.stage (fun () ->
         ignore
           (Coretime.Cache_packing.pack ~budget:(1 lsl 20) ~used ~items)))

let test_lru =
  let lru = O2_simcore.Lru.create ~cap:8192 in
  let i = ref 0 in
  Test.make ~name:"lru/add+touch"
    (Staged.stage (fun () ->
         incr i;
         ignore (O2_simcore.Lru.add lru (!i land 0x3FFF));
         ignore (O2_simcore.Lru.touch lru ((!i * 7) land 0x3FFF))))

let test_read_hit =
  let machine = O2_simcore.Machine.create O2_simcore.Config.amd16 in
  let ext =
    O2_simcore.Memsys.alloc (O2_simcore.Machine.memory machine) ~name:"b"
      ~size:64
  in
  let addr = ext.O2_simcore.Memsys.base in
  ignore (O2_simcore.Machine.read machine ~core:0 ~now:0 ~addr ~len:8);
  Test.make ~name:"machine/read L1 hit"
    (Staged.stage (fun () ->
         ignore (O2_simcore.Machine.read machine ~core:0 ~now:0 ~addr ~len:8)))

let test_read_stream =
  let machine = O2_simcore.Machine.create O2_simcore.Config.amd16 in
  let ext =
    O2_simcore.Memsys.alloc (O2_simcore.Machine.memory machine) ~name:"s"
      ~size:(1 lsl 22)
  in
  let base = ext.O2_simcore.Memsys.base in
  let off = ref 0 in
  Test.make ~name:"machine/read 4KB stream (capacity misses)"
    (Staged.stage (fun () ->
         off := (!off + 4096) land ((1 lsl 22) - 1);
         ignore
           (O2_simcore.Machine.read machine ~core:0 ~now:0 ~addr:(base + !off)
              ~len:4096)))

(* One tiny end-to-end cell per figure: a full build + short simulation.
   These are the units the figure sweeps repeat at scale. *)
let figure_cell ~name ~policy ~oscillate =
  Test.make ~name
    (Staged.stage (fun () ->
         let machine = O2_simcore.Machine.create O2_simcore.Config.amd16 in
         let engine = O2_runtime.Engine.create machine in
         let ct = Coretime.create ~policy engine () in
         let spec = { O2_workload.Dir_workload.default_spec with dirs = 8 } in
         let w = O2_workload.Dir_workload.build ct spec in
         O2_workload.Dir_workload.spawn_threads w;
         if oscillate then
           O2_workload.Phase.oscillate_active engine w ~period:500_000
             ~divisor:16;
         O2_runtime.Engine.run ~until:2_000_000 engine))

let test_fig4a_cell_with =
  figure_cell ~name:"fig4a/cell with-coretime" ~policy:Coretime.Policy.default
    ~oscillate:false

let test_fig4a_cell_without =
  figure_cell ~name:"fig4a/cell without-coretime"
    ~policy:Coretime.Policy.baseline ~oscillate:false

let test_fig4b_cell =
  figure_cell ~name:"fig4b/cell oscillating" ~policy:Coretime.Policy.default
    ~oscillate:true

(* Sharded-vs-serial price of one engine step stream: the same
   compute+shared-line cell, built fresh per run and driven to
   quiescence, on the classic serial engine and on the windowed sharded
   engine at one and four domains. The sharded rows pay the window grid,
   outbox handling and (shards > 1) barrier rounds on top of identical
   event work; on a single-core host the multi-domain row also pays
   spin-then-block barrier waits, so the honest expectation there is a
   slowdown — the row exists to price the machinery, not to flatter it. *)
let machine_step_cell ~name ~shards =
  let cfg = O2_simcore.Config.amd16 in
  Test.make ~name
    (Staged.stage (fun () ->
         let machine = O2_simcore.Machine.create cfg in
         let engine =
           if shards = 0 then O2_runtime.Engine.create machine
           else O2_runtime.Engine.create_sharded machine ~shards
         in
         let mem = O2_simcore.Machine.memory machine in
         let shared = O2_simcore.Memsys.alloc_isolated mem ~name:"s" ~size:64 in
         for chip = 0 to cfg.O2_simcore.Config.chips - 1 do
           let core = chip * cfg.O2_simcore.Config.cores_per_chip in
           ignore
             (O2_runtime.Engine.spawn engine ~core ~name:"w" (fun () ->
                  for _ = 1 to 200 do
                    ignore
                      (O2_runtime.Api.read ~addr:shared.O2_simcore.Memsys.base
                         ~len:8);
                    O2_runtime.Api.compute 400
                  done))
         done;
         O2_runtime.Engine.run engine))

let test_machine_step_serial =
  machine_step_cell ~name:"machine/step serial cell" ~shards:0

let test_machine_step_sharded1 =
  machine_step_cell ~name:"machine/step sharded cell (windowed, 1 domain)"
    ~shards:1

let test_machine_step_sharded4 =
  machine_step_cell ~name:"machine/step sharded cell (windowed, 4 domains)"
    ~shards:4

let test_lookup =
  let machine = O2_simcore.Machine.create O2_simcore.Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let ct = Coretime.create ~policy:Coretime.Policy.baseline engine () in
  let spec = { O2_workload.Dir_workload.default_spec with dirs = 4 } in
  let w = O2_workload.Dir_workload.build ct spec in
  let fs = O2_workload.Dir_workload.fs w in
  let d = O2_workload.Dir_workload.directory w 0 in
  Test.make ~name:"fat/lookup_host (1000-entry dir)"
    (Staged.stage (fun () -> ignore (O2_fs.Fat.lookup_host fs d "f999.dat")))

(* The engine's innermost loop: one push + one pop against a heap kept at
   a realistic steady-state depth. Should sit at a handful of ns and
   allocate nothing. *)
let test_event_queue =
  let q : int O2_runtime.Event_queue.t = O2_runtime.Event_queue.create () in
  for i = 1 to 1024 do
    O2_runtime.Event_queue.push q ~time:i i
  done;
  let i = ref 1024 in
  Test.make ~name:"event_queue/push+pop_min (1k deep)"
    (Staged.stage (fun () ->
         incr i;
         O2_runtime.Event_queue.push q ~time:!i !i;
         ignore (O2_runtime.Event_queue.pop_min q)))

(* Fixed cost of farming a batch through the domain pool: bounds the
   sweep sizes below which --jobs cannot pay off. *)
let test_domain_pool =
  (* lazy so the worker domain only spawns when the bechamel suite runs *)
  let pool = lazy (O2_runtime.Domain_pool.create ~jobs:2) in
  let inputs = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  Test.make ~name:"domain_pool/run (8 trivial cells, jobs=2)"
    (Staged.stage (fun () ->
         ignore
           (O2_runtime.Domain_pool.run (Lazy.force pool) (fun x -> x + 1)
              inputs)))

(* Cost of the flight-recorder probe on the simulator hot path. With no
   subscriber the producer-side guard (Probe.active) short-circuits before
   the event is even constructed — this row should sit at ~1 ns. The twin
   row attaches a full Recorder, so it pays event construction plus the
   listener (ring push + metrics update). *)
let probe_mem_event i =
  O2_runtime.Probe.Mem
    { time = i; core = 0; tid = 0; kind = O2_runtime.Probe.Load; addr = 0; len = 8 }

let test_probe_inactive =
  let probe = O2_runtime.Probe.create () in
  let i = ref 0 in
  Test.make ~name:"probe/emit guarded, no recorder"
    (Staged.stage (fun () ->
         incr i;
         if O2_runtime.Probe.active probe then
           O2_runtime.Probe.emit probe (probe_mem_event !i)))

let test_probe_recorded =
  let machine = O2_simcore.Machine.create O2_simcore.Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let _recorder = O2_obs.Recorder.attach engine in
  let probe = O2_runtime.Engine.probe engine in
  let i = ref 0 in
  Test.make ~name:"probe/emit with recorder subscribed"
    (Staged.stage (fun () ->
         incr i;
         if O2_runtime.Probe.active probe then
           O2_runtime.Probe.emit probe (probe_mem_event !i)))

(* The cache observatory's attached cost, as twin rows of read-hit and
   the capacity-miss stream: the observer pays on_access bookkeeping per
   sourced line, and the stream rows add the fill/eviction mirror (plus
   the heat tracker's address-to-object binary search). Compare against
   the unobserved rows above to price the observatory; suite_hotpath pins
   that the *detached* sites cost nothing. *)
let test_read_hit_observed =
  let machine = O2_simcore.Machine.create O2_simcore.Config.amd16 in
  let _occ = O2_obs.Occupancy.attach machine in
  let ext =
    O2_simcore.Memsys.alloc (O2_simcore.Machine.memory machine) ~name:"b"
      ~size:64
  in
  let addr = ext.O2_simcore.Memsys.base in
  ignore (O2_simcore.Machine.read machine ~core:0 ~now:0 ~addr ~len:8);
  Test.make ~name:"machine/read L1 hit, occupancy attached"
    (Staged.stage (fun () ->
         ignore (O2_simcore.Machine.read machine ~core:0 ~now:0 ~addr ~len:8)))

let test_read_stream_observed =
  let machine = O2_simcore.Machine.create O2_simcore.Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let _occ = O2_obs.Occupancy.attach machine in
  let _heat = O2_obs.Heat.attach engine in
  let ext =
    O2_simcore.Memsys.alloc (O2_simcore.Machine.memory machine) ~name:"s"
      ~size:(1 lsl 22)
  in
  let base = ext.O2_simcore.Memsys.base in
  let off = ref 0 in
  Test.make ~name:"machine/read 4KB stream, occupancy+heat"
    (Staged.stage (fun () ->
         off := (!off + 4096) land ((1 lsl 22) - 1);
         ignore
           (O2_simcore.Machine.read machine ~core:0 ~now:0 ~addr:(base + !off)
              ~len:4096)))

(* Decision provenance on the emission side: one structured Decision
   record built, emitted and ring-buffered per run. This is the unit cost
   a monitor period pays per explained action when --explain is on. *)
let test_decision_emit =
  let machine = O2_simcore.Machine.create O2_simcore.Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let _prov = O2_obs.Provenance.attach engine in
  let probe = O2_runtime.Engine.probe engine in
  let i = ref 0 in
  Test.make ~name:"probe/decision emit, provenance attached"
    (Staged.stage (fun () ->
         incr i;
         if O2_runtime.Probe.active probe then
           O2_runtime.Probe.emit probe
             (O2_runtime.Probe.Decision
                {
                  time = !i;
                  decision =
                    O2_runtime.Probe.Demoted
                      {
                        obj_base = 0x1000;
                        name = "o";
                        seq = 0;
                        core = 3;
                        idle_periods = 4;
                        threshold_periods = 4;
                      };
                })))

(* The PR-4 tentpole claim: one monitor period costs O(active set), not
   O(table). Both rows do identical per-period work — 64 objects operated
   on, then one step — and differ only in registered-table size, so equal
   times here mean the full-scan term is gone. Pre-index numbers for the
   same setup (recorded in bench_bechamel.txt): 10625.5 ns at n=1024,
   155657.7 ns at n=16384. *)
let test_rebalancer_step n =
  let machine = O2_simcore.Machine.create O2_simcore.Config.amd16 in
  let table =
    Coretime.Object_table.create ~cores:16 ~budget_per_core:(1 lsl 20)
  in
  let objs =
    Array.init n (fun i ->
        Coretime.Object_table.register table ~base:(i * 4096) ~size:4096
          ~name:"o" ())
  in
  let stride = n / 64 in
  for k = 0 to 63 do
    Coretime.Object_table.assign table objs.(k * stride) (k mod 16)
  done;
  let rb = Coretime.Rebalancer.create Coretime.Policy.default table machine in
  let period = Coretime.Policy.default.Coretime.Policy.rebalance_period in
  let now = ref 0 in
  Test.make
    ~name:(Printf.sprintf "rebalancer/step n=%d (64 active)" n)
    (Staged.stage (fun () ->
         for k = 0 to 63 do
           Coretime.Object_table.note_op table objs.(k * stride)
         done;
         now := !now + period;
         Coretime.Rebalancer.step rb ~now:!now))

(* The monitor's inner walk: visiting one core's assigned objects through
   the intrusive list. 16 K registered, 64 homed on the measured core —
   the row should price the 64 links, not the 16 K-entry table. *)
let test_iter_assigned =
  let table =
    Coretime.Object_table.create ~cores:16 ~budget_per_core:(1 lsl 20)
  in
  let objs =
    Array.init 16384 (fun i ->
        Coretime.Object_table.register table ~base:(i * 4096) ~size:4096
          ~name:"o" ())
  in
  for k = 0 to 63 do
    Coretime.Object_table.assign table objs.(k * 256) 3
  done;
  let acc = ref 0 in
  Test.make ~name:"object_table/iter_assigned (64 of 16384)"
    (Staged.stage (fun () ->
         Coretime.Object_table.iter_assigned table ~core:3 (fun o ->
             acc := !acc + o.Coretime.Object_table.size)))

(* The native backend's work-stealing deque: owner push+pop kept 1-deep
   (the common dispatch rhythm) and the thief's CAS path. Both must sit
   within a few ns of the event queue above and allocate nothing — the
   dummy-sentinel protocol exists so the steal loop never boxes. *)
let test_deque_push_pop =
  let q = O2_native.Deque.create ~dummy:(-1) () in
  let i = ref 0 in
  Test.make ~name:"deque/push+pop (owner)"
    (Staged.stage (fun () ->
         incr i;
         O2_native.Deque.push q !i;
         ignore (O2_native.Deque.pop q)))

let test_deque_steal =
  let q = O2_native.Deque.create ~dummy:(-1) () in
  let i = ref 0 in
  Test.make ~name:"deque/push+steal (thief CAS)"
    (Staged.stage (fun () ->
         incr i;
         O2_native.Deque.push q !i;
         ignore (O2_native.Deque.steal q)))

(* Native-vs-simulated price of one whole kv cell: the same
   Backend_kv program — 4 clients x 128 ops over 16 buckets — built,
   run to quiescence and torn down per run, on the native backend (one
   real domain: pool spawn + effect-handler dispatch + join) and on the
   simulated machine (engine events + cache model + virtual time). The
   ratio is the headline "what does simulation cost" number; the native
   row's floor is dominated by Domain spawn/join. *)
module Kv_cell (B : O2_runtime.Backend_intf.S) = struct
  module Kv = O2_native.Backend_kv.Make (B)

  let run_cell b =
    let kv = Kv.create b ~name:"kv" ~buckets:16 ~slots_per_bucket:32 () in
    for c = 0 to 3 do
      let prog =
        O2_native.Op_program.kv_program ~clients:4 ~client:c ~ops:128
          ~keyspace:64 ~seed:7
      in
      B.spawn b ~core:(c mod B.cores b) ~name:"kv-client" (fun () ->
          Array.iter
            (fun op ->
              ignore
                (match op with
                | O2_native.Op_program.Get k -> Kv.get kv ~key:k
                | O2_native.Op_program.Put (k, v) ->
                    if Kv.put kv ~key:k ~value:v then 1 else 0
                | O2_native.Op_program.Delete k ->
                    if Kv.delete kv ~key:k then 1 else 0))
            prog)
    done;
    B.run b
end

module Native_kv_cell = Kv_cell (O2_native.Native_backend)
module Sim_kv_cell = Kv_cell (O2_native.Sim_backend)

let test_kv_cell_native =
  Test.make ~name:"native/kv cell (512 ops, 1 domain)"
    (Staged.stage (fun () ->
         let b = O2_native.Native_backend.create ~domains:1 () in
         Fun.protect
           ~finally:(fun () -> O2_native.Native_backend.shutdown b)
           (fun () -> Native_kv_cell.run_cell b)))

let test_kv_cell_sim =
  Test.make ~name:"sim/kv cell (512 ops, simulated machine)"
    (Staged.stage (fun () ->
         let b = O2_native.Sim_backend.create () in
         Sim_kv_cell.run_cell b))

(* What the flight recorder costs. The metrics-only row prices exactly
   what with_op adds per op when telemetry is attached without a ring:
   two CLOCK_MONOTONIC reads plus log2-bucket accumulator updates — the
   overhead left inside the throughput measurement when native_exp runs
   with --metrics. The cell rows price the whole thing end to end
   against the telemetry-off cell above: metrics-only (ring_capacity 0)
   and full tracing (every op's span events in the ring). A fresh
   Telemetry per run keeps the ring in its append regime rather than
   measuring the saturated drop path. *)
let test_tel_metrics_op =
  let tel = O2_runtime.Telemetry.create ~ring_capacity:0 ~sample:0 ~domains:1 () in
  let s = O2_runtime.Telemetry.sink tel 0 in
  Test.make ~name:"telemetry/per-op metrics (2 clock reads + accs)"
    (Staged.stage (fun () ->
         let t0 = O2_runtime.Telemetry.now_ns () in
         let t1 = O2_runtime.Telemetry.now_ns () in
         O2_runtime.Telemetry.observe_home s (t1 - t0);
         O2_runtime.Telemetry.observe_exec s (t1 - t0)))

let test_kv_cell_native_metrics =
  Test.make ~name:"native/kv cell (512 ops, telemetry metrics)"
    (Staged.stage (fun () ->
         let tel =
           O2_runtime.Telemetry.create ~ring_capacity:0 ~sample:0 ~domains:1 ()
         in
         let b = O2_native.Native_backend.create ~telemetry:tel ~domains:1 () in
         Fun.protect
           ~finally:(fun () -> O2_native.Native_backend.shutdown b)
           (fun () -> Native_kv_cell.run_cell b)))

let test_kv_cell_native_traced =
  Test.make ~name:"native/kv cell (512 ops, telemetry ring, sample 1)"
    (Staged.stage (fun () ->
         let tel =
           O2_runtime.Telemetry.create ~ring_capacity:(1 lsl 14) ~sample:1
             ~domains:1 ()
         in
         let b = O2_native.Native_backend.create ~telemetry:tel ~domains:1 () in
         Fun.protect
           ~finally:(fun () -> O2_native.Native_backend.shutdown b)
           (fun () -> Native_kv_cell.run_cell b)))

(* Full o2staticcheck run over the repo's build tree: .cmt discovery,
   parsing, and all four typedtree passes. Prices the static stage that
   @lint-source adds to the gate; run from the repo root after a build. *)
let test_staticcheck =
  Test.make ~name:"staticcheck/full tree (load + 4 passes)"
    (Staged.stage (fun () ->
         match O2_staticcheck.Staticcheck.run ~root:"." () with
         | Ok r -> assert (r.O2_staticcheck.Staticcheck.findings = [])
         | Error _ -> ()))

(* One quota does not fit all rows: with the old single
   limit=2000/quota=1s config the sub-µs rows collected so few distinct
   iteration counts that the OLS fit was garbage (probe/emit reported
   r2=-191) and the multi-ms rows got a handful of samples (cache_packing
   n=16384 at r2=0.401). Each row is therefore classed by its expected
   scale: [`Fast] (sub-µs kernels — many samples, long quota, so the fit
   sees a wide spread of iteration counts), [`Mid] (µs-scale, the old
   config was fine), [`Slow] (multi-ms cells — a longer quota buys enough
   samples for a stable slope). *)
let bechamel_tests =
  [
    (`Mid, test_packing 256);
    (`Mid, test_packing 1024);
    (`Mid, test_packing 4096);
    (`Slow, test_packing 16384);
    (`Fast, test_lru);
    (`Fast, test_read_hit);
    (`Mid, test_read_stream);
    (`Slow, test_machine_step_serial);
    (`Slow, test_machine_step_sharded1);
    (`Slow, test_machine_step_sharded4);
    (`Mid, test_lookup);
    (`Fast, test_event_queue);
    (`Fast, test_deque_push_pop);
    (`Fast, test_deque_steal);
    (`Slow, test_kv_cell_native);
    (`Slow, test_kv_cell_sim);
    (`Fast, test_tel_metrics_op);
    (`Slow, test_kv_cell_native_metrics);
    (`Slow, test_kv_cell_native_traced);
    (`Fast, test_rebalancer_step 1024);
    (`Fast, test_rebalancer_step 16384);
    (`Fast, test_iter_assigned);
    (`Mid, test_domain_pool);
    (`Fast, test_probe_inactive);
    (`Fast, test_probe_recorded);
    (`Fast, test_read_hit_observed);
    (`Mid, test_read_stream_observed);
    (`Fast, test_decision_emit);
    (`Slow, test_staticcheck);
    (`Slow, test_fig4a_cell_with);
    (`Slow, test_fig4a_cell_without);
    (`Slow, test_fig4b_cell);
  ]

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg_fast = Benchmark.cfg ~limit:10_000 ~quota:(Time.second 3.0) ~kde:None () in
  let cfg_mid = Benchmark.cfg ~limit:3000 ~quota:(Time.second 2.0) ~kde:None () in
  let cfg_slow = Benchmark.cfg ~limit:3000 ~quota:(Time.second 5.0) ~kde:None () in
  print_endline "bechamel microbenchmarks (monotonic clock, ns/run):";
  List.iter
    (fun (scale, test) ->
      let cfg =
        match scale with
        | `Fast -> cfg_fast
        | `Mid -> cfg_mid
        | `Slow -> cfg_slow
      in
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Instance.monotonic_clock raw in
          let estimate =
            match Analyze.OLS.estimates result with
            | Some (e :: _) -> e
            | Some [] | None -> nan
          in
          let r2 =
            match Analyze.OLS.r_square result with Some r -> r | None -> nan
          in
          Printf.printf "  %-42s %12.1f ns/run (r2=%.3f)\n%!"
            (Test.Elt.name elt) estimate r2)
        (Test.elements test))
    bechamel_tests;
  print_endline "";
  print_endline
    "cache_packing scaling check (E5): time/run should grow as n log n,";
  print_endline
    "i.e. roughly x4.4 per x4 in n across the four cache_packing rows.";
  0

(* ------------------------------------------------------------------ *)
(* Figure 4 wall-clock: the harness-parallelism headline number         *)

(* Times the quick Figure 4(a) sweep at jobs=1 and jobs=N and checks the
   row lists are bit-identical (the determinism contract of
   Harness.run_cells), then repeats the sweep on the windowed sharded
   engine at shards 1/2/4 (jobs=1) — per-width wall-clock plus the
   shard-count-invariance check (bit-identical rows whatever the domain
   count; intentionally different from the serial rows). Written as JSON
   so CI can trend it. *)
let run_fig4_json ~jobs path =
  let sweep ?(shards = 0) jobs =
    let t0 = Unix.gettimeofday () in
    let rows =
      O2_experiments.Figure4.sweep ~jobs ~shards ~quick:true ~oscillation:None
        ()
    in
    (rows, Unix.gettimeofday () -. t0)
  in
  let rows_seq, seconds_seq = sweep 1 in
  let rows_par, seconds_par = sweep jobs in
  let identical = rows_seq = rows_par in
  let shard_widths = [ 1; 2; 4 ] in
  let sharded = List.map (fun s -> (s, sweep ~shards:s 1)) shard_widths in
  let sharded_identical =
    match sharded with
    | [] -> true
    | (_, (first, _)) :: rest ->
        List.for_all (fun (_, (rows, _)) -> rows = first) rest
  in
  let row_json r =
    Printf.sprintf
      "    {\"kb\": %d, \"without_ct_kres\": %.3f, \"with_ct_kres\": %.3f}"
      r.O2_experiments.Figure4.kb
      r.O2_experiments.Figure4.without_ct.O2_experiments.Harness.kres_per_sec
      r.O2_experiments.Figure4.with_ct.O2_experiments.Harness.kres_per_sec
  in
  let json =
    String.concat "\n"
      ([
         "{";
         "  \"benchmark\": \"fig4a quick sweep wall-clock\",";
         Printf.sprintf "  \"available_cores\": %d,"
           (O2_runtime.Domain_pool.default_jobs ());
         Printf.sprintf "  \"seconds_jobs1\": %.3f," seconds_seq;
         Printf.sprintf "  \"jobs\": %d," jobs;
         Printf.sprintf "  \"seconds_jobsN\": %.3f," seconds_par;
         Printf.sprintf "  \"speedup\": %.2f,"
           (if seconds_par > 0.0 then seconds_seq /. seconds_par else nan);
         Printf.sprintf "  \"rows_bit_identical\": %b," identical;
         "  \"sharded\": [";
       ]
      @ [
          String.concat ",\n"
            (List.map
               (fun (s, (_, secs)) ->
                 Printf.sprintf "    {\"shards\": %d, \"seconds\": %.3f}" s
                   secs)
               sharded);
        ]
      @ [
          "  ],";
          Printf.sprintf "  \"sharded_rows_bit_identical\": %b,"
            sharded_identical;
          "  \"rows\": [";
        ]
      @ [ String.concat ",\n" (List.map row_json rows_seq) ]
      @ [ "  ]"; "}"; "" ])
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "fig4a quick sweep: %.2fs at jobs=1, %.2fs at jobs=%d (%.2fx)\n"
    seconds_seq seconds_par jobs (seconds_seq /. seconds_par);
  Printf.printf "rows bit-identical across jobs: %b\n" identical;
  List.iter
    (fun (s, (_, secs)) ->
      Printf.printf "sharded sweep (windowed engine): %.2fs at shards=%d\n"
        secs s)
    sharded;
  Printf.printf "sharded rows bit-identical across shard widths: %b\n"
    sharded_identical;
  Printf.printf "wrote %s\n" path;
  if identical && sharded_identical then 0 else 1

(* ------------------------------------------------------------------ *)
(* Native backend wall-clock: oracle verdicts + ops/sec ladder as JSON  *)

let run_native_json ~quick path =
  let ok =
    O2_experiments.Native_exp.run_cli ~quick ~domains:2 ~json:(Some path)
      ~metrics:false ~trace:None ~trace_sample:1 Format.std_formatter
  in
  Format.pp_print_flush Format.std_formatter ();
  if ok then 0 else 1

let usage () =
  prerr_endline
    "usage: bench [--quick] [--jobs N] [--bechamel | --fig4-json [FILE] | \
     --native-json [FILE]] [EXPERIMENT-ID...]";
  2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = ref false in
  let bech = ref false in
  let fig4_json = ref None in
  let native_json = ref None in
  let jobs = ref (O2_runtime.Domain_pool.default_jobs ()) in
  let ids = ref [] in
  let bad = ref false in
  let rec parse = function
    | [] -> ()
    | ("--quick" | "-q") :: rest ->
        quick := true;
        parse rest
    | "--bechamel" :: rest ->
        bech := true;
        parse rest
    | "--fig4-json" :: path :: rest
      when String.length path > 0 && path.[0] <> '-' ->
        fig4_json := Some path;
        parse rest
    | "--fig4-json" :: rest ->
        fig4_json := Some "BENCH_fig4.json";
        parse rest
    | "--native-json" :: path :: rest
      when String.length path > 0 && path.[0] <> '-' ->
        native_json := Some path;
        parse rest
    | "--native-json" :: rest ->
        native_json := Some "BENCH_native.json";
        parse rest
    | ("--jobs" | "-j") :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ ->
            bad := true)
    | a :: rest when String.length a > 0 && a.[0] = '-' ->
        prerr_endline ("bench: unknown option " ^ a);
        bad := true;
        ignore rest
    | a :: rest ->
        ids := !ids @ [ a ];
        parse rest
  in
  parse args;
  if !bad then exit (usage ());
  exit
    (if !bech then run_bechamel ()
     else
       match (!fig4_json, !native_json) with
       | Some path, _ ->
           (* at least 2 so the parallel leg exercises real domains even on
              a single-core machine *)
           run_fig4_json ~jobs:(max 2 !jobs) path
       | None, Some path -> run_native_json ~quick:!quick path
       | None, None -> experiments ~quick:!quick ~jobs:!jobs !ids)
