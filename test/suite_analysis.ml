open O2_simcore
open O2_runtime
module A = O2_analysis

let setup_engine () =
  let machine = Machine.create Config.amd16 in
  let engine = Engine.create machine in
  (machine, engine)

(* Two threads on different chips hammer one shared word; [locked] decides
   whether the accesses are protected. The unprotected variant is the
   ISSUE's deliberately-racy workload. *)
let racy_pair ~locked () =
  let machine, engine = setup_engine () in
  let mem = Machine.memory machine in
  let shared = Memsys.alloc mem ~name:"shared-counter" ~size:64 in
  let lock = Spinlock.create mem ~name:"shared-counter-lock" in
  let check = A.Analysis.attach_engine engine in
  let worker core =
    ignore
      (Engine.spawn engine ~core ~name:(Printf.sprintf "w%d" core) (fun () ->
           for _ = 1 to 5 do
             if locked then Api.lock lock;
             ignore (Api.read ~addr:shared.Memsys.base ~len:8);
             Api.compute 200;
             ignore (Api.write ~addr:shared.Memsys.base ~len:8);
             if locked then Api.unlock lock
           done))
  in
  worker 0;
  worker 2;
  Engine.run engine;
  A.Analysis.finish check;
  (check, shared.Memsys.base)

let test_race_flagged () =
  let check, base = racy_pair ~locked:false () in
  Alcotest.(check bool) "a race was found" true (A.Analysis.races check >= 1);
  match
    List.find_opt
      (fun d ->
        d.A.Diagnostic.checker = "lockset" && d.A.Diagnostic.code = "race")
      (A.Analysis.diagnostics check)
  with
  | None -> Alcotest.fail "no lockset/race diagnostic"
  | Some d ->
      Alcotest.(check (option int))
        "names the object's address" (Some base) d.A.Diagnostic.addr;
      Alcotest.(check (option string))
        "names the object" (Some "shared-counter") d.A.Diagnostic.subject;
      Alcotest.(check bool)
        "names both racing cores" true
        (List.mem 0 d.A.Diagnostic.cores && List.mem 2 d.A.Diagnostic.cores)

let test_locked_pair_clean () =
  let check, _ = racy_pair ~locked:true () in
  Alcotest.(check int) "no races" 0 (A.Analysis.races check);
  Alcotest.(check bool) "fully clean" true (A.Analysis.is_clean check)

(* A well-behaved CoreTime workload — annotated read operations plus a
   lock-protected shared counter — must produce zero diagnostics. *)
let test_coretime_clean () =
  let machine, engine = setup_engine () in
  let ct = Coretime.create engine () in
  let check = A.Analysis.attach ct in
  let mem = Machine.memory machine in
  let ext = Memsys.alloc mem ~name:"tree" ~size:(32 * 1024) in
  ignore
    (Coretime.register ct ~base:ext.Memsys.base ~size:ext.Memsys.size
       ~name:"tree" ());
  let counter = Memsys.alloc_isolated mem ~name:"hits" ~size:8 in
  let lock = Spinlock.create mem ~name:"hits-lock" in
  let worker core =
    ignore
      (Engine.spawn engine ~core ~name:(Printf.sprintf "w%d" core) (fun () ->
           for _ = 1 to 15 do
             Coretime.with_op ct ext.Memsys.base (fun () ->
                 ignore (Api.read ~addr:ext.Memsys.base ~len:4096);
                 Api.compute 300);
             Api.lock lock;
             ignore (Api.write ~addr:counter.Memsys.base ~len:8);
             Api.unlock lock
           done))
  in
  List.iter worker [ 0; 3; 7 ];
  Engine.run engine;
  A.Analysis.finish check;
  if not (A.Analysis.is_clean check) then
    Alcotest.failf "expected a clean run, got:@.%a" A.Analysis.pp check

let test_open_op_flagged () =
  let machine, engine = setup_engine () in
  let ct = Coretime.create engine () in
  let check = A.Analysis.attach ct in
  let mem = Machine.memory machine in
  let ext = Memsys.alloc mem ~name:"leaky" ~size:1024 in
  ignore
    (Coretime.register ct ~base:ext.Memsys.base ~size:1024 ~name:"leaky" ());
  ignore
    (Engine.spawn engine ~core:0 ~name:"leaker" (fun () ->
         Coretime.ct_start ct ext.Memsys.base;
         Api.compute 100
         (* no ct_end: the thread exits with the operation open *)));
  Engine.run engine;
  A.Analysis.finish check;
  Alcotest.(check bool) "open-op reported" true
    (List.exists
       (fun d -> d.A.Diagnostic.code = "open-op")
       (A.Analysis.diagnostics check))

(* A -> B then B -> A from the same thread: never an actual deadlock in a
   deterministic run, which is exactly why the order graph must catch it. *)
let test_lock_order_cycle () =
  let machine, engine = setup_engine () in
  let mem = Machine.memory machine in
  let la = Spinlock.create mem ~name:"lockA" in
  let lb = Spinlock.create mem ~name:"lockB" in
  let check = A.Analysis.attach_engine engine in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         Api.lock la;
         Api.lock lb;
         Api.unlock lb;
         Api.unlock la;
         Api.lock lb;
         Api.lock la;
         Api.unlock la;
         Api.unlock lb));
  Engine.run engine;
  A.Analysis.finish check;
  match
    List.find_opt
      (fun d -> d.A.Diagnostic.code = "deadlock-cycle")
      (A.Analysis.diagnostics check)
  with
  | None -> Alcotest.fail "no deadlock-cycle diagnostic"
  | Some d ->
      Alcotest.(check string)
        "from the lock-order checker" "lock-order" d.A.Diagnostic.checker

let test_held_at_exit () =
  let machine, engine = setup_engine () in
  let mem = Machine.memory machine in
  let lock = Spinlock.create mem ~name:"forgotten" in
  let check = A.Analysis.attach_engine engine in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         Api.lock lock;
         Api.compute 100));
  Engine.run engine;
  A.Analysis.finish check;
  Alcotest.(check bool) "held-at-exit reported" true
    (List.exists
       (fun d -> d.A.Diagnostic.code = "held-at-exit")
       (A.Analysis.diagnostics check))

(* Overfill a core's budget behind CoreTime's back; the end-of-run audit
   must notice. *)
let test_capacity_audit () =
  let _machine, engine = setup_engine () in
  let ct = Coretime.create engine () in
  let check = A.Analysis.attach ct in
  let tbl = Coretime.table ct in
  let o =
    Coretime.Object_table.register tbl ~base:0x900000
      ~size:(Coretime.Object_table.budget tbl + 4096)
      ~name:"oversized" ()
  in
  Coretime.Object_table.assign tbl o 0;
  A.Analysis.finish check;
  Alcotest.(check bool) "capacity violation reported" true
    (List.exists
       (fun d -> d.A.Diagnostic.code = "capacity")
       (A.Analysis.diagnostics check))

(* The extended accounting audit cross-checks the incremental indexes
   (per-core assignment lists, active set) against the ground-truth [home]
   and [ops_period] fields. Flip an object's home behind the API and both
   the direct check and the end-of-run audit must object. *)
let test_index_audit () =
  let _machine, engine = setup_engine () in
  let ct = Coretime.create engine () in
  let check = A.Analysis.attach ct in
  let tbl = Coretime.table ct in
  let a = Coretime.Object_table.register tbl ~base:0x1000 ~size:64 ~name:"a" () in
  let b = Coretime.Object_table.register tbl ~base:0x2000 ~size:64 ~name:"b" () in
  Coretime.Object_table.assign tbl a 0;
  Coretime.Object_table.assign tbl b 1;
  Coretime.Object_table.note_op tbl a;
  Alcotest.(check bool) "consistent table passes" true
    (Result.is_ok (Coretime.Object_table.check_accounting tbl));
  (* bypass [assign]: the object now claims core 2 but still sits on core
     0's intrusive list, and the byte ledgers disagree with the homes *)
  a.Coretime.Object_table.home <- Some 2;
  Alcotest.(check bool) "index corruption detected" true
    (Result.is_error (Coretime.Object_table.check_accounting tbl));
  A.Analysis.finish check;
  Alcotest.(check bool) "audit reports the inconsistency" true
    (List.exists
       (fun d -> d.A.Diagnostic.code = "accounting")
       (A.Analysis.diagnostics check))

(* Synthetic probe event: an operation claiming to start away from its
   home core must trip the affinity invariant. *)
let test_affinity_synthetic () =
  let _machine, engine = setup_engine () in
  let check = A.Analysis.attach_engine engine in
  Probe.emit (Engine.probe engine)
    (Probe.Op_started { time = 0; core = 1; tid = 0; addr = 0x5000; home = Some 3 });
  Alcotest.(check bool) "affinity violation reported" true
    (List.exists
       (fun d ->
         d.A.Diagnostic.code = "affinity"
         && List.mem 1 d.A.Diagnostic.cores
         && List.mem 3 d.A.Diagnostic.cores)
       (A.Analysis.diagnostics check))

let test_report_dedup_and_limit () =
  let r = A.Report.create ~limit:2 () in
  let d = A.Diagnostic.make ~checker:"t" ~code:"x" ~subject:"s" "msg" in
  A.Report.add r d;
  A.Report.add r d;
  Alcotest.(check int) "repeat deduplicated" 1 (A.Report.count r);
  A.Report.add r (A.Diagnostic.make ~checker:"t" ~code:"y" ~subject:"s" "msg2");
  A.Report.add r (A.Diagnostic.make ~checker:"t" ~code:"z" ~subject:"s" "msg3");
  Alcotest.(check int) "capped at the limit" 2 (A.Report.count r);
  Alcotest.(check int) "excess counted" 1 (A.Report.dropped r);
  Alcotest.(check bool) "not clean" false (A.Report.is_clean r)

let lint_codes ~path ?allow_raw_primitives src =
  List.map
    (fun d -> d.A.Diagnostic.code)
    (A.Lint.scan_string ~path ?allow_raw_primitives src)

let test_lint_rules () =
  Alcotest.(check (list string))
    "Obj.magic flagged" [ "obj-magic" ]
    (lint_codes ~path:"lib/core/x.ml" "let f x = Obj.magic x\n");
  Alcotest.(check (list string))
    "comments not flagged" []
    (lint_codes ~path:"lib/core/x.ml" "(* Obj.magic is banned *)\nlet x = 1\n");
  Alcotest.(check (list string))
    "string literals not flagged" []
    (lint_codes ~path:"lib/core/x.ml" "let s = \"Obj.magic\"\n");
  Alcotest.(check (list string))
    "raw Mutex outside lib/runtime/" [ "raw-mutex" ]
    (lint_codes ~path:"lib/core/x.ml" "let m = Mutex.create ()\n");
  Alcotest.(check (list string))
    "primitives allowed in the domain pool" []
    (lint_codes ~path:"lib/runtime/domain_pool.ml"
       "let m = Mutex.create ()\nlet d = Domain.spawn f\n");
  Alcotest.(check (list string))
    "allowlist matches under any root prefix" []
    (lint_codes ~path:"./lib/runtime/domain_pool.ml"
       "let m = Mutex.create ()\n");
  Alcotest.(check (list string))
    "other lib/runtime/ modules are not exempt" [ "raw-domain" ]
    (lint_codes ~path:"lib/runtime/engine.ml" "let d = Domain.spawn f\n");
  Alcotest.(check (list string))
    "raw Domain in an experiment sweep" [ "raw-domain" ]
    (lint_codes ~path:"lib/experiments/x.ml"
       "let ds = List.map (fun c -> Domain.spawn c) cells\n");
  Alcotest.(check (list string))
    "calls through Domain_pool are not raw Domain use" []
    (lint_codes ~path:"lib/experiments/x.ml"
       "let ps = O2_runtime.Domain_pool.map ~jobs run cells\n");
  Alcotest.(check (list string))
    "ignored Api.lock result" [ "ignored-result" ]
    (lint_codes ~path:"lib/core/x.ml" "let () = ignore (Api.lock l)\n");
  Alcotest.(check (list string))
    "allow_raw_primitives:false overrides the allowlist"
    [ "raw-domain" ]
    (lint_codes ~path:"lib/runtime/domain_pool.ml" ~allow_raw_primitives:false
       "let d = Domain.spawn f\n")

(* Pin the obs-purity rule: observability listeners run inside Probe.emit
   and must never perform simulation effects or drive the engine. *)
let test_lint_obs_purity () =
  Alcotest.(check (list string))
    "Api call in lib/obs" [ "obs-effect" ]
    (lint_codes ~path:"lib/obs/recorder.ml" "let f () = Api.compute 5\n");
  Alcotest.(check (list string))
    "Engine.spawn in lib/obs" [ "obs-effect" ]
    (lint_codes ~path:"lib/obs/recorder.ml"
       "let t = Engine.spawn engine ~core:0 ~name:\"x\" f\n");
  Alcotest.(check (list string))
    "Engine.run in lib/obs" [ "obs-effect" ]
    (lint_codes ~path:"lib/obs/metrics.ml" "let () = Engine.run engine\n");
  Alcotest.(check (list string))
    "re-emitting from a listener" [ "obs-effect" ]
    (lint_codes ~path:"lib/obs/recorder.ml" "let () = Probe.emit p ev\n");
  Alcotest.(check (list string))
    "reading engine state is allowed" []
    (lint_codes ~path:"lib/obs/recorder.ml"
       "let p = Engine.probe engine\nlet m = Engine.machine engine\n");
  Alcotest.(check (list string))
    "rule is scoped to lib/obs/" []
    (lint_codes ~path:"lib/experiments/x.ml" "let () = Api.compute 5\n");
  (* the real lib/obs sources stay clean under the rule (the test binary
     runs from _build/default/test; try the build copy, then the source
     tree) *)
  let obs_dir =
    List.find_opt
      (fun d -> Sys.file_exists d && Sys.is_directory d)
      [ "../lib/obs"; "../../../lib/obs" ]
    |> Option.value ~default:"../lib/obs"
  in
  if Sys.file_exists obs_dir && Sys.is_directory obs_dir then
    Array.iter
      (fun entry ->
        if Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
        then begin
          let path = Filename.concat obs_dir entry in
          let ic = open_in_bin path in
          let contents =
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          Alcotest.(check (list string))
            (Printf.sprintf "lib/obs/%s is effect-free" entry)
            []
            (lint_codes ~path:("lib/obs/" ^ entry) contents)
        end)
      (Sys.readdir obs_dir)

let suite =
  [
    Alcotest.test_case "unlocked shared writes are flagged as a race" `Quick
      test_race_flagged;
    Alcotest.test_case "the same workload under a lock is clean" `Quick
      test_locked_pair_clean;
    Alcotest.test_case "well-behaved CoreTime run is clean" `Quick
      test_coretime_clean;
    Alcotest.test_case "thread exiting with an open op is flagged" `Quick
      test_open_op_flagged;
    Alcotest.test_case "inconsistent lock order is flagged" `Quick
      test_lock_order_cycle;
    Alcotest.test_case "lock held at thread exit is flagged" `Quick
      test_held_at_exit;
    Alcotest.test_case "table audit catches a capacity violation" `Quick
      test_capacity_audit;
    Alcotest.test_case "table audit cross-checks the core indexes" `Quick
      test_index_audit;
    Alcotest.test_case "affinity invariant catches a stray op" `Quick
      test_affinity_synthetic;
    Alcotest.test_case "report dedups and caps" `Quick
      test_report_dedup_and_limit;
    Alcotest.test_case "source lint rules" `Quick test_lint_rules;
    Alcotest.test_case "lib/obs observers are effect-free" `Quick
      test_lint_obs_purity;
  ]
