open O2_simcore
open O2_runtime
module A = O2_analysis

let setup_engine () =
  let machine = Machine.create Config.amd16 in
  let engine = Engine.create machine in
  (machine, engine)

(* Two threads on different chips hammer one shared word; [locked] decides
   whether the accesses are protected. The unprotected variant is the
   ISSUE's deliberately-racy workload. *)
let racy_pair ~locked () =
  let machine, engine = setup_engine () in
  let mem = Machine.memory machine in
  let shared = Memsys.alloc mem ~name:"shared-counter" ~size:64 in
  let lock = Spinlock.create mem ~name:"shared-counter-lock" in
  let check = A.Analysis.attach_engine engine in
  let worker core =
    ignore
      (Engine.spawn engine ~core ~name:(Printf.sprintf "w%d" core) (fun () ->
           for _ = 1 to 5 do
             if locked then Api.lock lock;
             ignore (Api.read ~addr:shared.Memsys.base ~len:8);
             Api.compute 200;
             ignore (Api.write ~addr:shared.Memsys.base ~len:8);
             if locked then Api.unlock lock
           done))
  in
  worker 0;
  worker 2;
  Engine.run engine;
  A.Analysis.finish check;
  (check, shared.Memsys.base)

let test_race_flagged () =
  let check, base = racy_pair ~locked:false () in
  Alcotest.(check bool) "a race was found" true (A.Analysis.races check >= 1);
  match
    List.find_opt
      (fun d ->
        d.A.Diagnostic.checker = "lockset" && d.A.Diagnostic.code = "race")
      (A.Analysis.diagnostics check)
  with
  | None -> Alcotest.fail "no lockset/race diagnostic"
  | Some d ->
      Alcotest.(check (option int))
        "names the object's address" (Some base) d.A.Diagnostic.addr;
      Alcotest.(check (option string))
        "names the object" (Some "shared-counter") d.A.Diagnostic.subject;
      Alcotest.(check bool)
        "names both racing cores" true
        (List.mem 0 d.A.Diagnostic.cores && List.mem 2 d.A.Diagnostic.cores)

let test_locked_pair_clean () =
  let check, _ = racy_pair ~locked:true () in
  Alcotest.(check int) "no races" 0 (A.Analysis.races check);
  Alcotest.(check bool) "fully clean" true (A.Analysis.is_clean check)

(* A well-behaved CoreTime workload — annotated read operations plus a
   lock-protected shared counter — must produce zero diagnostics. *)
let test_coretime_clean () =
  let machine, engine = setup_engine () in
  let ct = Coretime.create engine () in
  let check = A.Analysis.attach ct in
  let mem = Machine.memory machine in
  let ext = Memsys.alloc mem ~name:"tree" ~size:(32 * 1024) in
  ignore
    (Coretime.register ct ~base:ext.Memsys.base ~size:ext.Memsys.size
       ~name:"tree" ());
  let counter = Memsys.alloc_isolated mem ~name:"hits" ~size:8 in
  let lock = Spinlock.create mem ~name:"hits-lock" in
  let worker core =
    ignore
      (Engine.spawn engine ~core ~name:(Printf.sprintf "w%d" core) (fun () ->
           for _ = 1 to 15 do
             Coretime.with_op ct ext.Memsys.base (fun () ->
                 ignore (Api.read ~addr:ext.Memsys.base ~len:4096);
                 Api.compute 300);
             Api.lock lock;
             ignore (Api.write ~addr:counter.Memsys.base ~len:8);
             Api.unlock lock
           done))
  in
  List.iter worker [ 0; 3; 7 ];
  Engine.run engine;
  A.Analysis.finish check;
  if not (A.Analysis.is_clean check) then
    Alcotest.failf "expected a clean run, got:@.%a" A.Analysis.pp check

let test_open_op_flagged () =
  let machine, engine = setup_engine () in
  let ct = Coretime.create engine () in
  let check = A.Analysis.attach ct in
  let mem = Machine.memory machine in
  let ext = Memsys.alloc mem ~name:"leaky" ~size:1024 in
  ignore
    (Coretime.register ct ~base:ext.Memsys.base ~size:1024 ~name:"leaky" ());
  ignore
    (Engine.spawn engine ~core:0 ~name:"leaker" (fun () ->
         Coretime.ct_start ct ext.Memsys.base;
         Api.compute 100
         (* no ct_end: the thread exits with the operation open *)));
  Engine.run engine;
  A.Analysis.finish check;
  Alcotest.(check bool) "open-op reported" true
    (List.exists
       (fun d -> d.A.Diagnostic.code = "open-op")
       (A.Analysis.diagnostics check))

(* A -> B then B -> A from the same thread: never an actual deadlock in a
   deterministic run, which is exactly why the order graph must catch it. *)
let test_lock_order_cycle () =
  let machine, engine = setup_engine () in
  let mem = Machine.memory machine in
  let la = Spinlock.create mem ~name:"lockA" in
  let lb = Spinlock.create mem ~name:"lockB" in
  let check = A.Analysis.attach_engine engine in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         Api.lock la;
         Api.lock lb;
         Api.unlock lb;
         Api.unlock la;
         Api.lock lb;
         Api.lock la;
         Api.unlock la;
         Api.unlock lb));
  Engine.run engine;
  A.Analysis.finish check;
  match
    List.find_opt
      (fun d -> d.A.Diagnostic.code = "deadlock-cycle")
      (A.Analysis.diagnostics check)
  with
  | None -> Alcotest.fail "no deadlock-cycle diagnostic"
  | Some d ->
      Alcotest.(check string)
        "from the lock-order checker" "lock-order" d.A.Diagnostic.checker

let test_held_at_exit () =
  let machine, engine = setup_engine () in
  let mem = Machine.memory machine in
  let lock = Spinlock.create mem ~name:"forgotten" in
  let check = A.Analysis.attach_engine engine in
  ignore
    (Engine.spawn engine ~core:0 ~name:"t" (fun () ->
         Api.lock lock;
         Api.compute 100));
  Engine.run engine;
  A.Analysis.finish check;
  Alcotest.(check bool) "held-at-exit reported" true
    (List.exists
       (fun d -> d.A.Diagnostic.code = "held-at-exit")
       (A.Analysis.diagnostics check))

(* Overfill a core's budget behind CoreTime's back; the end-of-run audit
   must notice. *)
let test_capacity_audit () =
  let _machine, engine = setup_engine () in
  let ct = Coretime.create engine () in
  let check = A.Analysis.attach ct in
  let tbl = Coretime.table ct in
  let o =
    Coretime.Object_table.register tbl ~base:0x900000
      ~size:(Coretime.Object_table.budget tbl + 4096)
      ~name:"oversized" ()
  in
  Coretime.Object_table.assign tbl o 0;
  A.Analysis.finish check;
  Alcotest.(check bool) "capacity violation reported" true
    (List.exists
       (fun d -> d.A.Diagnostic.code = "capacity")
       (A.Analysis.diagnostics check))

(* The extended accounting audit cross-checks the incremental indexes
   (per-core assignment lists, active set) against the ground-truth [home]
   and [ops_period] fields. Flip an object's home behind the API and both
   the direct check and the end-of-run audit must object. *)
let test_index_audit () =
  let _machine, engine = setup_engine () in
  let ct = Coretime.create engine () in
  let check = A.Analysis.attach ct in
  let tbl = Coretime.table ct in
  let a = Coretime.Object_table.register tbl ~base:0x1000 ~size:64 ~name:"a" () in
  let b = Coretime.Object_table.register tbl ~base:0x2000 ~size:64 ~name:"b" () in
  Coretime.Object_table.assign tbl a 0;
  Coretime.Object_table.assign tbl b 1;
  Coretime.Object_table.note_op tbl a;
  Alcotest.(check bool) "consistent table passes" true
    (Result.is_ok (Coretime.Object_table.check_accounting tbl));
  (* bypass [assign]: the object now claims core 2 but still sits on core
     0's intrusive list, and the byte ledgers disagree with the homes *)
  a.Coretime.Object_table.home <- Some 2;
  Alcotest.(check bool) "index corruption detected" true
    (Result.is_error (Coretime.Object_table.check_accounting tbl));
  A.Analysis.finish check;
  Alcotest.(check bool) "audit reports the inconsistency" true
    (List.exists
       (fun d -> d.A.Diagnostic.code = "accounting")
       (A.Analysis.diagnostics check))

(* Synthetic probe event: an operation claiming to start away from its
   home core must trip the affinity invariant. *)
let test_affinity_synthetic () =
  let _machine, engine = setup_engine () in
  let check = A.Analysis.attach_engine engine in
  Probe.emit (Engine.probe engine)
    (Probe.Op_started { time = 0; core = 1; tid = 0; addr = 0x5000; home = Some 3 });
  Alcotest.(check bool) "affinity violation reported" true
    (List.exists
       (fun d ->
         d.A.Diagnostic.code = "affinity"
         && List.mem 1 d.A.Diagnostic.cores
         && List.mem 3 d.A.Diagnostic.cores)
       (A.Analysis.diagnostics check))

let test_report_dedup_and_limit () =
  let r = A.Report.create ~limit:2 () in
  let d = A.Diagnostic.make ~checker:"t" ~code:"x" ~subject:"s" "msg" in
  A.Report.add r d;
  A.Report.add r d;
  Alcotest.(check int) "repeat deduplicated" 1 (A.Report.count r);
  A.Report.add r (A.Diagnostic.make ~checker:"t" ~code:"y" ~subject:"s" "msg2");
  A.Report.add r (A.Diagnostic.make ~checker:"t" ~code:"z" ~subject:"s" "msg3");
  Alcotest.(check int) "capped at the limit" 2 (A.Report.count r);
  Alcotest.(check int) "excess counted" 1 (A.Report.dropped r);
  Alcotest.(check bool) "not clean" false (A.Report.is_clean r)

let lint_codes ~path src =
  List.map (fun d -> d.A.Diagnostic.code) (A.Lint.scan_string ~path src)

(* The banned-pattern rules (obs-effect, obj-magic, raw-mutex/raw-domain)
   moved to o2staticcheck's typedtree passes; see suite_staticcheck. What
   remains here is the surface-idiom rule and the stripper it runs on. *)
let test_lint_rules () =
  Alcotest.(check (list string))
    "ignored Api.lock result" [ "ignored-result" ]
    (lint_codes ~path:"lib/core/x.ml" "let () = ignore (Api.lock l)\n");
  Alcotest.(check (list string))
    "ignored Engine.run result" [ "ignored-result" ]
    (lint_codes ~path:"lib/core/x.ml" "let () = ignore ( Engine.run e )\n");
  Alcotest.(check (list string))
    "comments not flagged" []
    (lint_codes ~path:"lib/core/x.ml"
       "(* ignore (Api.lock l) would be wrong *)\nlet x = 1\n");
  Alcotest.(check (list string))
    "string literals not flagged" []
    (lint_codes ~path:"lib/core/x.ml" "let s = \"ignore (Api.lock l)\"\n");
  Alcotest.(check (list string))
    "ignore of a different callee is fine" []
    (lint_codes ~path:"lib/core/x.ml" "let () = ignore (Api.read ~addr ~len)\n")

(* Pin the stripper itself: it must blank comments, strings, quoted
   strings, and char literals without desynchronising on tricky lexemes. *)
let test_lint_strip () =
  let strip = A.Lint.strip in
  Alcotest.(check string)
    "newlines survive inside comments"
    "        \n         \nlet x = 1\n"
    (strip "(* first\nsecond *)\nlet x = 1\n");
  (* a ['"'] char literal must not open string mode and hide the rest of
     the line: the violation after it has to stay visible *)
  let src = "let q = '\"' in ignore (Api.lock l)\n" in
  Alcotest.(check (list string))
    "code after a double-quote char literal is still scanned"
    [ "ignored-result" ]
    (lint_codes ~path:"lib/core/x.ml" src);
  Alcotest.(check string)
    "the char literal itself is blanked"
    "let q =     in ignore (Api.lock l)\n" (strip src);
  Alcotest.(check string)
    "escaped char literals are blanked"
    "let nl =      and bs =      in x\n"
    (strip "let nl = '\\n' and bs = '\\\\' in x\n");
  Alcotest.(check string)
    "type variables and primed names are untouched"
    "let f (x' : 'a) = x'\n" (strip "let f (x' : 'a) = x'\n");
  (* quoted strings: no escapes inside, closed only by the matching
     delimiter *)
  Alcotest.(check string)
    "{|...|} quoted string is blanked"
    "let s =                             in s\n"
    (strip "let s = {|ignore (Api.lock l) \" '|} in s\n");
  Alcotest.(check string)
    "{id|...|id} ignores a bare |} inside"
    "let s =                       in s\n"
    (strip "let s = {foo||} not done|foo} in s\n");
  Alcotest.(check (list string))
    "violations inside quoted strings are not flagged" []
    (lint_codes ~path:"lib/core/x.ml" "let s = {|ignore (Api.lock l)|}\n");
  Alcotest.(check (list string))
    "code after a quoted string is still scanned" [ "ignored-result" ]
    (lint_codes ~path:"lib/core/x.ml"
       "let s = {|text|} in ignore (Api.lock l)\n")

let suite =
  [
    Alcotest.test_case "unlocked shared writes are flagged as a race" `Quick
      test_race_flagged;
    Alcotest.test_case "the same workload under a lock is clean" `Quick
      test_locked_pair_clean;
    Alcotest.test_case "well-behaved CoreTime run is clean" `Quick
      test_coretime_clean;
    Alcotest.test_case "thread exiting with an open op is flagged" `Quick
      test_open_op_flagged;
    Alcotest.test_case "inconsistent lock order is flagged" `Quick
      test_lock_order_cycle;
    Alcotest.test_case "lock held at thread exit is flagged" `Quick
      test_held_at_exit;
    Alcotest.test_case "table audit catches a capacity violation" `Quick
      test_capacity_audit;
    Alcotest.test_case "table audit cross-checks the core indexes" `Quick
      test_index_audit;
    Alcotest.test_case "affinity invariant catches a stray op" `Quick
      test_affinity_synthetic;
    Alcotest.test_case "report dedups and caps" `Quick
      test_report_dedup_and_limit;
    Alcotest.test_case "source lint rules" `Quick test_lint_rules;
    Alcotest.test_case "lint stripper handles tricky lexemes" `Quick
      test_lint_strip;
  ]
