(* Effect-pass fixture: listeners registered with [Probe.subscribe] that
   perform effects. The clean listener mutates only through its own
   parameter, which the pass must allow. *)

open O2_runtime

(* effect-io: prints from inside the emit path *)
let install_noisy probe =
  Probe.subscribe probe (fun _ev -> print_endline "rebalanced")

(* effect-api: drives the simulation from a listener *)
let install_api probe =
  Probe.subscribe probe (fun _ev -> Api.compute 5)

(* clean: parameter-rooted accumulator mutation is the point of a
   recorder *)
let install_counter probe counter =
  Probe.subscribe probe (fun _ev -> incr counter)
