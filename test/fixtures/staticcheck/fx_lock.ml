(* Lock-pass fixture: one function per discipline violation, plus a
   balanced control and an [@alloc_ok]-silenced allocation under the
   lock (the escape hatch suppresses lock-alloc but never depth
   tracking). *)

open O2_runtime

(* lock-leak: the implicit else path exits at depth 1 *)
let leak lock flag =
  Api.lock lock;
  if flag then Api.unlock lock

(* lock-blocking: yields while holding the lock *)
let blocking lock =
  Api.lock lock;
  Api.yield ();
  Api.unlock lock

(* lock-alloc: boxes a result under the lock *)
let alloc_under lock x =
  Api.lock lock;
  let r = Some x in
  Api.unlock lock;
  r

(* lock-underflow: releases a lock it never took *)
let underflow lock =
  Api.unlock lock;
  Api.compute 1

(* clean: balanced, simulated traffic under the lock is modeled time *)
let balanced lock =
  Api.lock lock;
  ignore (Api.read ~addr:0 ~len:8);
  Api.compute 5;
  Api.unlock lock

(* clean: the annotation silences the allocation judgement only *)
let annotated lock x =
  Api.lock lock;
  let r = ((Some x) [@alloc_ok "fixture: result box under the lock"]) in
  Api.unlock lock;
  r
