(* Raw-primitive fixture: resolved uses of the banned modules. The suite
   checks both the default verdict (flagged) and that an allowlist entry
   for this source silences the mutex but never [Obj.magic]. *)

let m = Mutex.create ()
let cast x = Obj.magic x
