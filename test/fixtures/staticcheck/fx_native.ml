(* Native-backend fixture: a work-stealing deque / pool lookalike whose
   steal loop and dispatch allocate in exactly the ways the real
   lib/native modules must not, plus a raw Domain.spawn outside the
   shim. suite_staticcheck points a manifest at these functions and
   asserts the new diagnostic surface fires per construct. *)

type 'a t = { top : int Atomic.t; bottom : int Atomic.t; slots : 'a array }

(* alloc-construct: boxes the stolen element in an option instead of
   using the dummy-sentinel protocol *)
let steal_boxed t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then None
  else if Atomic.compare_and_set t.top tp (tp + 1) then
    Some t.slots.(tp land (Array.length t.slots - 1))
  else None

(* alloc-closure: dispatch wraps every task in a fresh closure *)
let dispatch_capturing run task k = run (fun () -> task k)

(* alloc-construct: drain conses the drained element onto a list *)
let drain_consing t acc =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp < b then t.slots.(tp land (Array.length t.slots - 1)) :: acc else acc

(* allocation-free steal, dummy-sentinel style: no finding *)
let clean_steal dummy t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then dummy
  else begin
    let v = t.slots.(tp land (Array.length t.slots - 1)) in
    if Atomic.compare_and_set t.top tp (tp + 1) then v else dummy
  end

(* raw-domain: workers must come from the pool shim, not Domain.spawn *)
let rogue_worker body = Domain.spawn body
