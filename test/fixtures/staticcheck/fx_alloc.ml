(* Allocation-pass fixture: suite_staticcheck points a manifest at these
   functions and asserts one finding per allocating construct, none for
   the annotated or clean cases, and a manifest-missing diagnostic for a
   function the manifest names but this module does not define. *)

(* alloc-tuple *)
let boxed_pair x y = (x, y)

(* alloc-construct *)
let consing x xs = x :: xs

(* alloc-closure: the result captures [n] *)
let closure_maker n =
  let f () = n + 1 in
  f

(* suppressed by the escape hatch: no finding *)
let annotated n = ((ref n) [@alloc_ok "fixture: deliberate cell"])

(* allocation-free: no finding *)
let clean a i = Array.unsafe_get a i + i
