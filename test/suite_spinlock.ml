open O2_simcore
open O2_runtime

let setup () =
  let machine = Machine.create Config.amd16 in
  let engine = Engine.create machine in
  let lock = Spinlock.create (Machine.memory machine) ~name:"l" in
  (machine, engine, lock)

let test_uncontended () =
  let _, e, l = setup () in
  let held_inside = ref false in
  ignore
    (Engine.spawn e ~core:0 ~name:"t" (fun () ->
         Api.lock l;
         held_inside := Spinlock.held l;
         Api.unlock l));
  Engine.run e;
  Alcotest.(check bool) "held inside" true !held_inside;
  Alcotest.(check bool) "released" false (Spinlock.held l);
  Alcotest.(check int) "one acquisition" 1 l.Spinlock.acquisitions;
  Alcotest.(check int) "never contended" 0 l.Spinlock.contended

let test_mutual_exclusion () =
  let _, e, l = setup () in
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  let worker core =
    ignore
      (Engine.spawn e ~core ~name:(Printf.sprintf "w%d" core) (fun () ->
           for _ = 1 to 20 do
             Api.lock l;
             incr inside;
             if !inside > !max_inside then max_inside := !inside;
             Api.compute 500;
             incr total;
             decr inside;
             Api.unlock l
           done))
  in
  List.iter worker [ 0; 1; 5; 9 ];
  Engine.run e;
  Alcotest.(check int) "never two inside" 1 !max_inside;
  Alcotest.(check int) "all critical sections ran" 80 !total;
  Alcotest.(check int) "80 acquisitions" 80 l.Spinlock.acquisitions;
  Alcotest.(check bool) "some contention" true (l.Spinlock.contended > 0)

let test_spin_cycles_counted () =
  let m, e, l = setup () in
  ignore
    (Engine.spawn e ~core:0 ~name:"holder" (fun () ->
         Api.lock l;
         Api.compute 10_000;
         Api.unlock l));
  ignore
    (Engine.spawn e ~core:1 ~name:"waiter" (fun () ->
         Api.compute 100;
         (* ensure the holder got there first *)
         Api.lock l;
         Api.unlock l));
  Engine.run e;
  let c = Machine.counters m 1 in
  Alcotest.(check bool) "waiter spun for most of the critical section" true
    (c.Counters.spin_cycles > 8_000)

let test_fifo_handoff () =
  let _, e, l = setup () in
  let order = ref [] in
  ignore
    (Engine.spawn e ~core:0 ~name:"holder" (fun () ->
         Api.lock l;
         Api.compute 5_000;
         Api.unlock l));
  (* waiters arrive in core order because of deterministic scheduling *)
  List.iter
    (fun core ->
      ignore
        (Engine.spawn e ~core ~name:(Printf.sprintf "w%d" core) (fun () ->
             Api.compute (100 * (core + 1));
             Api.lock l;
             order := core :: !order;
             Api.unlock l)))
    [ 1; 2; 3 ];
  Engine.run e;
  Alcotest.(check (list int)) "granted in arrival order" [ 1; 2; 3 ]
    (List.rev !order)

let test_release_not_owner_raises () =
  let _, e, l = setup () in
  ignore (Engine.spawn e ~core:0 ~name:"t" (fun () -> Api.unlock l));
  Alcotest.(check bool) "raises Not_lock_owner" true
    (match Engine.run e with
    | () -> false
    | exception Engine.Not_lock_owner _ -> true)

let test_release_by_other_raises () =
  let _, e, l = setup () in
  let holder =
    Engine.spawn e ~core:0 ~name:"holder" (fun () ->
        Api.lock l;
        Api.compute 10_000;
        Api.unlock l)
  in
  ignore
    (Engine.spawn e ~core:1 ~name:"thief" (fun () ->
         Api.compute 100;
         (* the holder is inside its critical section *)
         Api.unlock l));
  Alcotest.(check bool) "raises Not_lock_owner" true
    (match Engine.run e with
    | () -> false
    | exception Engine.Not_lock_owner _ -> true);
  Alcotest.(check (option int))
    "still owned by the holder" (Some holder.Thread.id) (Spinlock.owner l)

let test_lock_line_bounces () =
  let m, e, l = setup () in
  (* two cores alternating on the lock force coherence invalidations *)
  let worker core =
    ignore
      (Engine.spawn e ~core ~name:(Printf.sprintf "w%d" core) (fun () ->
           for _ = 1 to 10 do
             Api.lock l;
             Api.compute 50;
             Api.unlock l;
             Api.compute 50
           done))
  in
  worker 0;
  worker 8;
  Engine.run e;
  let inval =
    (Machine.counters m 0).Counters.invalidations_sent
    + (Machine.counters m 8).Counters.invalidations_sent
  in
  Alcotest.(check bool) "lock line bounced between chips" true (inval > 5)

let suite =
  [
    Alcotest.test_case "uncontended acquire/release" `Quick test_uncontended;
    Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion;
    Alcotest.test_case "spin cycles are charged" `Quick test_spin_cycles_counted;
    Alcotest.test_case "FIFO hand-off" `Quick test_fifo_handoff;
    Alcotest.test_case "releasing unowned lock raises" `Quick test_release_not_owner_raises;
    Alcotest.test_case "release by a non-owning thread raises" `Quick
      test_release_by_other_raises;
    Alcotest.test_case "contended lock bounces its line" `Quick test_lock_line_bounces;
  ]
