(* Steady-state allocation probes for the simulator's three hot paths:
   the event queue (innermost engine loop), Machine.read (every simulated
   memory access), and the FAT directory scan (the workload's kernel).
   Each loop runs after a warmup access and must stay within a small
   fixed slack — per-operation allocation would show up as tens of
   thousands of minor words. *)

open O2_simcore

let iters = 10_000

(* Gc.minor_words returns a boxed float (2-3 words per call), and the
   Alcotest plumbing around the probe may allocate a little; anything
   per-op would cost >= iters words. *)
let slack = 256.0

let minor_words_during f =
  let before = Gc.minor_words () in
  f ();
  Gc.minor_words () -. before

let check_zero_alloc name words =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.0f minor words over %d ops (slack %.0f)" name words
       iters slack)
    true
    (words <= slack)

let test_event_queue () =
  let q : int O2_runtime.Event_queue.t = O2_runtime.Event_queue.create () in
  (* preload to final depth so the arrays never grow inside the probe *)
  for i = 1 to 1024 do
    O2_runtime.Event_queue.push q ~time:i i
  done;
  let words =
    minor_words_during (fun () ->
        for i = 1025 to 1024 + iters do
          ignore (O2_runtime.Event_queue.min_time q);
          ignore (O2_runtime.Event_queue.pop_min q);
          O2_runtime.Event_queue.push q ~time:i i
        done)
  in
  check_zero_alloc "event_queue push+min_time+pop_min" words

let test_machine_read_l1_hit () =
  let machine = Machine.create Config.amd16 in
  let ext = Memsys.alloc (Machine.memory machine) ~name:"probe" ~size:64 in
  let addr = ext.Memsys.base in
  ignore (Machine.read machine ~core:0 ~now:0 ~addr ~len:8);
  let words =
    minor_words_during (fun () ->
        for i = 1 to iters do
          ignore (Machine.read machine ~core:0 ~now:i ~addr ~len:8)
        done)
  in
  check_zero_alloc "Machine.read L1 hit" words

let test_machine_write_l1_hit () =
  let machine = Machine.create Config.amd16 in
  let ext = Memsys.alloc (Machine.memory machine) ~name:"probe" ~size:64 in
  let addr = ext.Memsys.base in
  ignore (Machine.write machine ~core:0 ~now:0 ~addr ~len:8);
  let words =
    minor_words_during (fun () ->
        for i = 1 to iters do
          ignore (Machine.write machine ~core:0 ~now:i ~addr ~len:8)
        done)
  in
  check_zero_alloc "Machine.write L1 hit" words

(* The directory-scan kernel shared by Fat_dir.find and Fat_dir.lookup_sim
   (lookup_sim adds only Api.read/compute charges on top of the same
   scan_cluster walk). A missing name scans every entry of every cluster
   through the in-place 8.3 comparison and must not allocate. *)
let test_fat_scan_miss () =
  let machine = Machine.create Config.amd16 in
  let mem = Machine.memory machine in
  let fs = O2_fs.Fat.format mem ~label:"probe" ~clusters:128 () in
  let dir =
    match O2_fs.Fat.mkdir fs "d0" with
    | Ok d -> d
    | Error e -> Alcotest.failf "mkdir: %s" e
  in
  (match O2_fs.Fat.populate fs dir ~prefix:"f" ~count:100 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "populate: %s" e);
  let img = O2_fs.Fat.image fs in
  let head = dir.O2_fs.Fat.head in
  let name83 = O2_fs.Fat_name.to_83_exn "nope.dat" in
  Alcotest.(check bool) "name really absent" true
    (O2_fs.Fat_dir.find img ~head ~name83 = None);
  let words =
    minor_words_during (fun () ->
        for _ = 1 to iters do
          ignore (O2_fs.Fat_dir.find img ~head ~name83)
        done)
  in
  check_zero_alloc "Fat_dir.find miss (100-entry dir)" words

(* The cache observatory's zero-cost-when-off claim, miss-path edition:
   with no Machine.observe subscriber the notification sites on the fill,
   eviction, invalidation and access-source paths are single branches.
   Stream a working set that fits L2 but not L1 so every post-warmup read
   is an L1 fill with a victim (on_access + on_fill sites), then ping-pong
   a line between two cores so every round invalidates a present copy
   (the on_remove site). *)
let test_machine_miss_paths_unobserved () =
  let machine = Machine.create Config.amd16 in
  let mem = Machine.memory machine in
  let lines = 2048 (* 128 KB: 2x the 1024-line L1, inside the 8192-line L2 *) in
  let ext = Memsys.alloc mem ~name:"stream" ~size:(lines * 64) in
  let base = ext.Memsys.base in
  Alcotest.(check bool) "no observer installed" false (Machine.observed machine);
  (* warmup: pull the whole set into L2 *)
  for i = 0 to lines - 1 do
    ignore (Machine.read machine ~core:0 ~now:i ~addr:(base + (i * 64)) ~len:8)
  done;
  let words =
    minor_words_during (fun () ->
        for i = 1 to iters do
          ignore
            (Machine.read machine ~core:0 ~now:(lines + i)
               ~addr:(base + (i mod lines * 64))
               ~len:8)
        done)
  in
  check_zero_alloc "Machine.read L1 fill+evict, no observer" words;
  let ping = Memsys.alloc mem ~name:"ping" ~size:64 in
  let addr = ping.Memsys.base in
  ignore (Machine.read machine ~core:1 ~now:0 ~addr ~len:8);
  ignore (Machine.write machine ~core:2 ~now:1 ~addr ~len:8);
  let words =
    minor_words_during (fun () ->
        for i = 1 to iters do
          ignore (Machine.read machine ~core:1 ~now:(2 * i) ~addr ~len:8);
          ignore (Machine.write machine ~core:2 ~now:((2 * i) + 1) ~addr ~len:8)
        done)
  in
  check_zero_alloc "coherence invalidation, no observer" words

(* The flat presence directory's nearest-holder scans, probed directly:
   per-line mask words walked bit by bit against the prebuilt core->chip
   table and hop matrix, exactly as Machine's miss path drives them. No
   options, no closures, no refs — a scan is loads and shifts only. *)
let test_presence_scan_zero_alloc () =
  let cfg = Config.amd16 in
  let ncores = Config.cores cfg in
  let nchips = cfg.Config.chips in
  let p = Presence.create ~cores:ncores in
  let topo = Topology.create cfg in
  let chip_of = Array.init ncores (Config.chip_of_core cfg) in
  let hops =
    Array.init (nchips * nchips) (fun i ->
        Topology.hops topo (i / nchips) (i mod nchips))
  in
  (* scatter holders so scans cross mask words and chips *)
  for line = 0 to 255 do
    Presence.set_core p ~line ~core:(line mod ncores);
    Presence.set_chip p ~line ~chip:(line mod nchips)
  done;
  let words =
    minor_words_during (fun () ->
        for i = 1 to iters do
          let line = i land 255 in
          ignore
            (Presence.nearest_core_holder p ~line ~exclude_core:0 ~chip_of
               ~from_chip:0 ~hops ~nchips);
          ignore
            (Presence.nearest_chip_holder p ~line ~exclude_chip:0 ~from_chip:0
               ~hops ~nchips);
          ignore (Presence.cached_anywhere p ~line)
        done)
  in
  check_zero_alloc "presence nearest-holder scans" words

(* The observed counterpart of the miss-path probe: with a (no-op)
   observer subscribed, the notification fan-outs are recursive list
   walks, not closures — so hit, fill+evict and invalidation paths still
   allocate nothing beyond what the observer itself does. *)
let test_machine_paths_observed_noop () =
  let machine = Machine.create Config.amd16 in
  Machine.observe machine
    {
      Machine.on_access = (fun ~now:_ ~core:_ ~line:_ ~source:_ -> ());
      on_fill = (fun ~cache:_ ~line:_ ~victim:_ -> ());
      on_remove = (fun ~cache:_ ~line:_ -> ());
    };
  Alcotest.(check bool) "observer installed" true (Machine.observed machine);
  let mem = Machine.memory machine in
  let hot = Memsys.alloc mem ~name:"hot" ~size:64 in
  ignore (Machine.read machine ~core:0 ~now:0 ~addr:hot.Memsys.base ~len:8);
  let words =
    minor_words_during (fun () ->
        for i = 1 to iters do
          ignore
            (Machine.read machine ~core:0 ~now:i ~addr:hot.Memsys.base ~len:8)
        done)
  in
  check_zero_alloc "observed L1 hit" words;
  let lines = 2048 in
  let ext = Memsys.alloc mem ~name:"stream" ~size:(lines * 64) in
  let base = ext.Memsys.base in
  for i = 0 to lines - 1 do
    ignore (Machine.read machine ~core:0 ~now:i ~addr:(base + (i * 64)) ~len:8)
  done;
  let words =
    minor_words_during (fun () ->
        for i = 1 to iters do
          ignore
            (Machine.read machine ~core:0 ~now:(lines + i)
               ~addr:(base + (i mod lines * 64))
               ~len:8)
        done)
  in
  check_zero_alloc "observed L1 fill+evict stream" words;
  let ping = Memsys.alloc mem ~name:"ping" ~size:64 in
  let addr = ping.Memsys.base in
  ignore (Machine.read machine ~core:1 ~now:0 ~addr ~len:8);
  ignore (Machine.write machine ~core:2 ~now:1 ~addr ~len:8);
  let words =
    minor_words_during (fun () ->
        for i = 1 to iters do
          ignore (Machine.read machine ~core:1 ~now:(2 * i) ~addr ~len:8);
          ignore (Machine.write machine ~core:2 ~now:((2 * i) + 1) ~addr ~len:8)
        done)
  in
  check_zero_alloc "observed coherence invalidation" words

(* The flight recorder's zero-cost-when-idle claim: producers guard event
   construction with Probe.active, so with no subscriber the whole
   emission path — guard included — allocates nothing. (With a recorder
   subscribed each event is a fresh block by design; that path is timed,
   not allocation-checked, in bench/main.ml.) *)
let test_probe_inactive_emits_nothing () =
  let probe = O2_runtime.Probe.create () in
  Alcotest.(check bool) "probe starts inactive" false
    (O2_runtime.Probe.active probe);
  let words =
    minor_words_during (fun () ->
        for i = 1 to iters do
          if O2_runtime.Probe.active probe then
            O2_runtime.Probe.emit probe
              (O2_runtime.Probe.Mem
                 {
                   time = i;
                   core = 0;
                   tid = 0;
                   kind = O2_runtime.Probe.Load;
                   addr = 0;
                   len = 8;
                 })
        done)
  in
  check_zero_alloc "guarded emit, no recorder" words

(* The PR-4 tentpole: a monitor period over a large table with nothing
   going on must cost nothing. 4096 registered objects, 64 assigned, zero
   ops since the previous step — the quiet path reads per-core counter
   deltas into preallocated scratch, sees no active objects and no
   pressure, and returns without touching the other 4032 entries or the
   allocator. Before the active-set index this step walked (and, for
   demotion, sorted) the full table every period. *)
let test_rebalancer_quiet_step () =
  let machine = Machine.create Config.amd16 in
  let cores = Config.cores Config.amd16 in
  let table = Coretime.Object_table.create ~cores ~budget_per_core:(1 lsl 20) in
  let objs =
    Array.init 4096 (fun i ->
        Coretime.Object_table.register table ~base:(0x1000 + (i * 64)) ~size:64
          ~name:"o" ())
  in
  for i = 0 to 63 do
    Coretime.Object_table.assign table objs.(i) (i mod cores)
  done;
  let rb =
    Coretime.Rebalancer.create Coretime.Policy.default table machine
  in
  let period = Coretime.Policy.default.Coretime.Policy.rebalance_period in
  (* settle: first step swallows whatever the setup produced *)
  Coretime.Rebalancer.step rb ~now:period;
  let words =
    minor_words_during (fun () ->
        for i = 2 to iters + 1 do
          Coretime.Rebalancer.step rb ~now:(i * period)
        done)
  in
  check_zero_alloc "Rebalancer.step quiet period (4096 objects)" words;
  Alcotest.(check bool) "table still consistent" true
    (Result.is_ok (Coretime.Object_table.check_accounting table))

(* Decision provenance rides the same guard: a rebalancer built with a
   probe that nobody subscribed to must not pay for the instrumentation —
   the [decisions_on] / [Probe.active] checks on the Rebalanced and
   Decision emission sites are branches, not event constructions. *)
let test_rebalancer_inactive_probe_step () =
  let machine = Machine.create Config.amd16 in
  let cores = Config.cores Config.amd16 in
  let table = Coretime.Object_table.create ~cores ~budget_per_core:(1 lsl 20) in
  let objs =
    Array.init 256 (fun i ->
        Coretime.Object_table.register table ~base:(0x1000 + (i * 64)) ~size:64
          ~name:"o" ())
  in
  for i = 0 to 63 do
    Coretime.Object_table.assign table objs.(i) (i mod cores)
  done;
  let probe = O2_runtime.Probe.create () in
  Alcotest.(check bool) "probe inactive" false (O2_runtime.Probe.active probe);
  let rb =
    Coretime.Rebalancer.create ~probe Coretime.Policy.default table machine
  in
  let period = Coretime.Policy.default.Coretime.Policy.rebalance_period in
  Coretime.Rebalancer.step rb ~now:period;
  let words =
    minor_words_during (fun () ->
        for i = 2 to iters + 1 do
          Coretime.Rebalancer.step rb ~now:(i * period)
        done)
  in
  check_zero_alloc "Rebalancer.step with inactive probe" words

(* The PR-7 tentpole: the windowed shard loop — window grid, barrier
   merge, outbox emptiness checks, worker round plumbing — must add
   nothing per window on top of what the same workload costs on the
   serial engine. Run an identical compute-only workload (every chip
   busy, no cross-chip traffic, probes off) over the same steady-state
   segment on both engines and compare minor words; shards:1 keeps every
   chip on the coordinating domain, so Gc.minor_words sees the whole
   windowed machinery. A few thousand windows means even a single
   closure per window would dwarf the slack. *)
let test_sharded_window_loop () =
  let open O2_runtime in
  let cfg = Config.amd16 in
  let delta = Config.sync_window cfg in
  let warmup = 1_000 * delta in
  let horizon = 6_000 * delta in
  let chip_of = Config.chip_of_core cfg in
  let first_core_of chip =
    let rec find c = if chip_of c = chip then c else find (c + 1) in
    find 0
  in
  let words_of engine_of =
    let e = engine_of (Machine.create cfg) in
    for chip = 0 to cfg.Config.chips - 1 do
      ignore
        (Engine.spawn e ~core:(first_core_of chip) ~name:"spin" (fun () ->
             let rec loop () =
               Api.compute 50;
               loop ()
             in
             loop ()))
    done;
    Engine.run e ~until:warmup;
    minor_words_during (fun () -> Engine.run e ~until:horizon)
  in
  let serial = words_of Engine.create in
  let sharded = words_of (fun m -> Engine.create_sharded m ~shards:1) in
  Alcotest.(check bool)
    (Printf.sprintf
       "windowed overhead: %.0f minor words sharded vs %.0f serial over %d \
        windows"
       sharded serial
       ((horizon - warmup) / delta))
    true
    (sharded -. serial <= 1024.0)

(* The PR-10 tentpole's zero-cost-when-off claim, steal-path edition:
   the worker loop's shape — deque traffic plus a cached-bool telemetry
   guard in front of a prefetched (inert) sink — allocates nothing when
   the recorder is detached. Mirrors Native_pool.loop's structure
   without needing a second domain for the Gc.minor_words read. *)
let test_native_steal_path_telemetry_off () =
  let tel = O2_runtime.Telemetry.off in
  Alcotest.(check bool) "off is disabled" false
    (O2_runtime.Telemetry.enabled tel);
  let sinks = O2_runtime.Telemetry.sink_array tel ~n:1 in
  let tel_on = O2_runtime.Telemetry.enabled tel in
  let d = O2_native.Deque.create ~capacity:64 ~dummy:(-1) () in
  for i = 0 to 15 do
    O2_native.Deque.push d i
  done;
  let words =
    minor_words_during (fun () ->
        for i = 1 to iters do
          O2_native.Deque.push d i;
          let v = O2_native.Deque.steal d in
          if v >= 0 && tel_on then
            O2_runtime.Telemetry.note_steal sinks.(0) ~victim:0
        done)
  in
  check_zero_alloc "deque steal path, telemetry off" words

(* The dispatch path: with_op on the op's home domain (no ship, no
   effect) with telemetry off must not allocate — the instrumentation
   is a cached-bool branch and two zero loads. Gc.minor_words is
   per-domain, so the probe runs inside the worker and hands its
   reading out through a preallocated slot. *)
let test_native_with_op_telemetry_off () =
  let b = O2_native.Native_backend.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> O2_native.Native_backend.shutdown b)
    (fun () ->
      let o = O2_native.Native_backend.register b ~size:64 ~name:"probe" in
      let out = Array.make 1 0.0 in
      O2_native.Native_backend.spawn b ~core:0 ~name:"probe" (fun () ->
          for _ = 1 to 100 do
            O2_native.Native_backend.with_op b o (fun () -> ())
          done;
          out.(0) <-
            minor_words_during (fun () ->
                for _ = 1 to iters do
                  O2_native.Native_backend.with_op b o (fun () -> ())
                done));
      O2_native.Native_backend.run b;
      check_zero_alloc "native with_op at home, telemetry off" out.(0))

let suite =
  [
    Alcotest.test_case "event queue allocates nothing per event" `Quick
      test_event_queue;
    Alcotest.test_case "Machine.read L1 hit allocates nothing" `Quick
      test_machine_read_l1_hit;
    Alcotest.test_case "Machine.write L1 hit allocates nothing" `Quick
      test_machine_write_l1_hit;
    Alcotest.test_case "FAT directory scan allocates nothing on a miss"
      `Quick test_fat_scan_miss;
    Alcotest.test_case "unobserved miss paths allocate nothing" `Quick
      test_machine_miss_paths_unobserved;
    Alcotest.test_case "presence nearest-holder scans allocate nothing"
      `Quick test_presence_scan_zero_alloc;
    Alcotest.test_case "observed paths allocate nothing beyond the observer"
      `Quick test_machine_paths_observed_noop;
    Alcotest.test_case "recorder-off probe path allocates nothing" `Quick
      test_probe_inactive_emits_nothing;
    Alcotest.test_case "quiet rebalancer period allocates nothing" `Quick
      test_rebalancer_quiet_step;
    Alcotest.test_case "inactive-probe rebalancer allocates nothing" `Quick
      test_rebalancer_inactive_probe_step;
    Alcotest.test_case "steady-state shard window loop allocates nothing"
      `Quick test_sharded_window_loop;
    Alcotest.test_case "telemetry-off steal path allocates nothing" `Quick
      test_native_steal_path_telemetry_off;
    Alcotest.test_case "telemetry-off with_op allocates nothing" `Quick
      test_native_with_op_telemetry_off;
  ]
