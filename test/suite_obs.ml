(* The flight-recorder subsystem: ring semantics, histogram percentiles,
   span reconstruction from the probe stream, the metrics==simulator
   agreement on a real run, and the shape of the exported Perfetto JSON. *)

open O2_obs
module Probe = O2_runtime.Probe

(* ------------------------------------------------------------------ *)
(* Ring *)

let test_ring () =
  let r = Ring.create ~capacity:3 in
  Alcotest.(check int) "empty length" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check (list int)) "partial fill" [ 1; 2 ] (Ring.to_list r);
  Ring.push r 3;
  Ring.push r 4;
  Ring.push r 5;
  Alcotest.(check (list int)) "keeps most recent" [ 3; 4; 5 ] (Ring.to_list r);
  Alcotest.(check int) "total" 5 (Ring.total r);
  Alcotest.(check int) "dropped = total - retained" 2 (Ring.dropped r);
  Ring.clear r;
  Alcotest.(check int) "clear resets length" 0 (Ring.length r);
  Alcotest.(check int) "clear resets total" 0 (Ring.total r)

let test_ring_zero_capacity () =
  let r = Ring.create ~capacity:0 in
  Ring.push r 42;
  Ring.push r 43;
  Alcotest.(check (list int)) "retains nothing" [] (Ring.to_list r);
  Alcotest.(check int) "still counts" 2 (Ring.total r);
  Alcotest.(check int) "all dropped" 2 (Ring.dropped r);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Ring.create: negative capacity") (fun () ->
      ignore (Ring.create ~capacity:(-1)))

(* ------------------------------------------------------------------ *)
(* Hist *)

let test_hist_buckets () =
  Alcotest.(check int) "bucket of 0" 0 (Hist.bucket_of 0);
  Alcotest.(check int) "bucket of 1" 1 (Hist.bucket_of 1);
  Alcotest.(check int) "bucket of 2" 2 (Hist.bucket_of 2);
  Alcotest.(check int) "bucket of 3" 2 (Hist.bucket_of 3);
  Alcotest.(check int) "bucket of 4" 3 (Hist.bucket_of 4);
  Alcotest.(check int) "bucket of 1023" 10 (Hist.bucket_of 1023);
  Alcotest.(check int) "bucket of 1024" 11 (Hist.bucket_of 1024)

let test_hist_exact_stats () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 10; 20; 30; 40; 1000 ];
  Alcotest.(check int) "count" 5 (Hist.count h);
  Alcotest.(check int) "sum" 1100 (Hist.sum h);
  Alcotest.(check int) "min exact" 10 (Hist.min_value h);
  Alcotest.(check int) "max exact" 1000 (Hist.max_value h);
  Alcotest.(check (float 1e-9)) "mean" 220.0 (Hist.mean h);
  (* q=0 / q=1 are clamped to the exact observed range *)
  Alcotest.(check (float 1e-9)) "q=0 is min" 10.0 (Hist.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "q=1 is max" 1000.0 (Hist.percentile h 1.0)

let test_hist_percentile_edges () =
  let h = Hist.create () in
  Alcotest.(check (float 1e-9)) "empty p50" 0.0 (Hist.p50 h);
  Hist.add h 7;
  (* a single sample answers every quantile with itself *)
  Alcotest.(check (float 1e-9)) "single q=0" 7.0 (Hist.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "single p50" 7.0 (Hist.p50 h);
  Alcotest.(check (float 1e-9)) "single p999" 7.0 (Hist.p999 h);
  Alcotest.(check (float 1e-9)) "single q=1" 7.0 (Hist.percentile h 1.0);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Hist.percentile: q out of range") (fun () ->
      ignore (Hist.percentile h 1.5));
  let neg = Hist.create () in
  Hist.add neg (-5);
  Alcotest.(check int) "negative clamps to 0" 0 (Hist.max_value neg);
  Alcotest.(check int) "clamped sample counted" 1 (Hist.count neg)

let test_hist_percentile_spread () =
  let h = Hist.create () in
  (* 100 samples 1..100: percentile estimates must stay within the
     winning sample's log2 bucket, and the tail must be exact because
     max rides along. *)
  for v = 1 to 100 do
    Hist.add h v
  done;
  let p50 = Hist.p50 h in
  Alcotest.(check bool) "p50 in [32,64)" true (p50 >= 32.0 && p50 < 64.0);
  Alcotest.(check bool) "p90 in [64,100]" true
    (Hist.p90 h >= 64.0 && Hist.p90 h <= 100.0);
  Alcotest.(check (float 1e-9)) "p999 clamps to observed max" 100.0
    (Hist.p999 h)

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.add a) [ 1; 2; 3 ];
  List.iter (Hist.add b) [ 100; 200 ];
  Hist.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 5 (Hist.count a);
  Alcotest.(check int) "merged sum" 306 (Hist.sum a);
  Alcotest.(check int) "merged min" 1 (Hist.min_value a);
  Alcotest.(check int) "merged max" 200 (Hist.max_value a)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr ~by:4 m "a";
  Metrics.incr m "b";
  Metrics.set_gauge m "g" 1.5;
  Metrics.observe m "h" 10;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value m "a");
  Alcotest.(check int) "absent counter is 0" 0 (Metrics.counter_value m "zz");
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("a", 5); ("b", 1) ]
    (Metrics.counters m);
  let m2 = Metrics.create () in
  Metrics.incr ~by:10 m2 "a";
  Metrics.set_gauge m2 "g" 9.0;
  Metrics.observe m2 "h" 30;
  Metrics.merge_into ~into:m m2;
  Alcotest.(check int) "counters add on merge" 15 (Metrics.counter_value m "a");
  Alcotest.(check (option (float 1e-9)))
    "gauge keeps merged-in sample" (Some 9.0) (Metrics.gauge_value m "g");
  Alcotest.(check int) "hists merge" 2 (Hist.count (Metrics.hist m "h"))

(* ------------------------------------------------------------------ *)
(* Span reconstruction from a scripted probe stream *)

let with_recorder ?ring_capacity ?span_capacity ?sample_mem f =
  let machine = O2_simcore.Machine.create O2_simcore.Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let r = Recorder.attach ?ring_capacity ?span_capacity ?sample_mem engine in
  let emit ev = Probe.emit (O2_runtime.Engine.probe engine) ev in
  f r emit

let test_span_migrated () =
  with_recorder (fun r emit ->
      emit (Probe.Op_requested { time = 100; core = 0; tid = 5; addr = 0x40 });
      emit (Probe.Thread_moved { time = 150; tid = 5; from_core = 0; to_core = 3 });
      emit
        (Probe.Op_started
           { time = 180; core = 3; tid = 5; addr = 0x40; home = Some 3 });
      emit (Probe.Op_ended { time = 400; core = 3; tid = 5 });
      match Recorder.spans r with
      | [ s ] ->
          Alcotest.(check int) "queue = request->departure" 50 s.Recorder.queue;
          Alcotest.(check int) "migrate = departure->start" 30 s.Recorder.migrate;
          Alcotest.(check int) "exec = start->end" 220 s.Recorder.exec;
          Alcotest.(check int) "request core" 0 s.Recorder.request_core;
          Alcotest.(check int) "exec core" 3 s.Recorder.exec_core;
          Alcotest.(check bool) "migrated" true s.Recorder.migrated;
          Alcotest.(check bool) "classified Migrated" true
            (Recorder.classify s = Recorder.Migrated);
          let m = Recorder.metrics r in
          Alcotest.(check int) "ops counter" 1 (Metrics.counter_value m "ops");
          Alcotest.(check int) "latency observed" 300
            (Hist.max_value (Metrics.hist m "op/latency"));
          Alcotest.(check int) "migrated split observed" 1
            (Hist.count (Metrics.hist m "op/migrated"))
      | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans))

let test_span_home_hit_and_remote () =
  with_recorder (fun r emit ->
      (* home hit: assigned object, no move *)
      emit (Probe.Op_requested { time = 10; core = 2; tid = 1; addr = 0x80 });
      emit
        (Probe.Op_started
           { time = 15; core = 2; tid = 1; addr = 0x80; home = Some 2 });
      emit (Probe.Op_ended { time = 100; core = 2; tid = 1 });
      (* remote: unassigned object, served in place *)
      emit (Probe.Op_requested { time = 200; core = 7; tid = 2; addr = 0xc0 });
      emit
        (Probe.Op_started
           { time = 210; core = 7; tid = 2; addr = 0xc0; home = None });
      emit (Probe.Op_ended { time = 300; core = 7; tid = 2 });
      match Recorder.spans r with
      | [ hit; remote ] ->
          Alcotest.(check bool) "home hit class" true
            (Recorder.classify hit = Recorder.Home_hit);
          Alcotest.(check int) "home hit queue" 5 hit.Recorder.queue;
          Alcotest.(check int) "home hit migrate" 0 hit.Recorder.migrate;
          Alcotest.(check bool) "remote class" true
            (Recorder.classify remote = Recorder.Remote);
          let m = Recorder.metrics r in
          Alcotest.(check int) "two ops" 2 (Metrics.counter_value m "ops");
          Alcotest.(check int) "home_hit split" 1
            (Hist.count (Metrics.hist m "op/home_hit"));
          Alcotest.(check int) "remote split" 1
            (Hist.count (Metrics.hist m "op/remote"))
      | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_span_nested () =
  with_recorder (fun r emit ->
      emit (Probe.Op_requested { time = 0; core = 0; tid = 9; addr = 0x40 });
      emit
        (Probe.Op_started { time = 5; core = 0; tid = 9; addr = 0x40; home = None });
      emit (Probe.Op_requested { time = 10; core = 0; tid = 9; addr = 0x80 });
      emit
        (Probe.Op_started { time = 12; core = 0; tid = 9; addr = 0x80; home = None });
      emit (Probe.Op_ended { time = 20; core = 0; tid = 9 });
      emit (Probe.Op_ended { time = 50; core = 0; tid = 9 });
      match Recorder.spans r with
      | [ inner; outer ] ->
          Alcotest.(check int) "inner completes first" 0x80 inner.Recorder.addr;
          Alcotest.(check int) "inner exec" 8 inner.Recorder.exec;
          Alcotest.(check int) "outer addr" 0x40 outer.Recorder.addr;
          Alcotest.(check int) "outer exec" 45 outer.Recorder.exec
      | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let mem ~time =
  Probe.Mem { time; core = 0; tid = 0; kind = Probe.Load; addr = 0; len = 8 }

let test_mem_sampling () =
  with_recorder ~sample_mem:2 (fun r emit ->
      for i = 1 to 10 do
        emit (mem ~time:i)
      done;
      let m = Recorder.metrics r in
      Alcotest.(check int) "all counted" 10 (Metrics.counter_value m "mem/events");
      Alcotest.(check int) "half sampled" 5 (Metrics.counter_value m "mem/sampled");
      Alcotest.(check int) "ring holds only the sampled" 5
        (Recorder.events_retained r));
  with_recorder ~sample_mem:0 (fun r emit ->
      emit (mem ~time:1);
      let m = Recorder.metrics r in
      Alcotest.(check int) "counted" 1 (Metrics.counter_value m "mem/events");
      Alcotest.(check int) "none sampled" 0 (Metrics.counter_value m "mem/sampled");
      Alcotest.(check int) "nothing retained" 0 (Recorder.events_retained r))

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader — just enough to assert the exported trace is
   well-formed and to walk its structure. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail ("expected " ^ word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if c = '\\' then begin
          (if !pos >= n then fail "bad escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | 'r' -> Buffer.add_char buf '\r'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
                 if !pos + 4 > n then fail "bad \\u";
                 pos := !pos + 4;
                 Buffer.add_char buf '?'
             | _ -> fail "bad escape");
          go ()
        end
        else begin
          Buffer.add_char buf c;
          go ()
        end
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number"
    else
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
        end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str_member key j =
  match member key j with Some (Str s) -> Some s | _ -> None

let num_member key j =
  match member key j with Some (Num f) -> Some f | _ -> None

(* ------------------------------------------------------------------ *)
(* Trace export shape, on a real (bounded, deterministic) run *)

let quickstart_recorded () =
  O2_experiments.Quickstart_exp.execute
    ~recorder_of:(fun engine -> Recorder.attach engine)
    ~quick:true ()

let test_metrics_match_simulator () =
  let result = quickstart_recorded () in
  let r = Option.get result.O2_experiments.Quickstart_exp.recorder in
  let m = Recorder.metrics r in
  (* the acceptance bar: the histogram table's op count equals the
     simulator's completed-op count exactly, not approximately *)
  Alcotest.(check int) "metrics ops == Coretime ops"
    result.O2_experiments.Quickstart_exp.ops
    (Metrics.counter_value m "ops");
  Alcotest.(check int) "op/latency count == ops"
    result.O2_experiments.Quickstart_exp.ops
    (Hist.count (Metrics.hist m "op/latency"));
  (* the class split partitions the ops *)
  let split =
    Hist.count (Metrics.hist m "op/home_hit")
    + Hist.count (Metrics.hist m "op/remote")
    + Hist.count (Metrics.hist m "op/migrated")
  in
  Alcotest.(check int) "class split partitions ops"
    result.O2_experiments.Quickstart_exp.ops split;
  Alcotest.(check int) "span count == ops (no drops at this size)"
    result.O2_experiments.Quickstart_exp.ops (Recorder.span_count r);
  Alcotest.(check int) "threads spawned" 16
    (Metrics.counter_value m "threads/spawned");
  Alcotest.(check bool) "some rebalance periods ran" true
    (Metrics.counter_value m "rebalance/periods" > 0)

let test_trace_export_shape () =
  let result = quickstart_recorded () in
  let r = Option.get result.O2_experiments.Quickstart_exp.recorder in
  let json =
    match parse_json (Trace_export.to_string r) with
    | j -> j
    | exception Bad_json msg -> Alcotest.failf "invalid JSON: %s" msg
  in
  let events =
    match member "traceEvents" json with
    | Some (Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents array"
  in
  let ph e = Option.value ~default:"?" (str_member "ph" e) in
  let spans = List.filter (fun e -> ph e = "X") events in
  let flows_s = List.filter (fun e -> ph e = "s") events in
  let flows_f = List.filter (fun e -> ph e = "f") events in
  let instants = List.filter (fun e -> ph e = "i") events in
  (* per-core op spans: every span sits on a core track, and the spans
     cover more than one core *)
  Alcotest.(check int) "one X span per completed op"
    result.O2_experiments.Quickstart_exp.ops (List.length spans);
  let span_cores =
    List.sort_uniq compare
      (List.filter_map (fun e -> num_member "tid" e) spans)
  in
  Alcotest.(check bool) "spans cover several cores" true
    (List.length span_cores > 4);
  List.iter
    (fun e ->
      (match num_member "dur" e with
      | Some d -> Alcotest.(check bool) "dur >= 0" true (d >= 0.0)
      | None -> Alcotest.fail "span without dur");
      match member "args" e with
      | Some args ->
          Alcotest.(check bool) "args carry the breakdown" true
            (num_member "queue_cycles" args <> None
            && num_member "migrate_cycles" args <> None
            && num_member "exec_cycles" args <> None
            && str_member "class" args <> None)
      | None -> Alcotest.fail "span without args")
    spans;
  (* at least one migration drawn as a flow arrow, ends paired by id *)
  Alcotest.(check bool) "at least one flow start" true (flows_s <> []);
  let ids which = List.sort compare (List.filter_map (num_member "id") which) in
  Alcotest.(check (list (float 1e-9))) "flow starts pair with finishes"
    (ids flows_s) (ids flows_f);
  (* the monitor's periods appear as global instant markers *)
  Alcotest.(check bool) "at least one rebalance instant" true
    (List.exists (fun e -> str_member "name" e = Some "rebalance") instants);
  (* track metadata names every core *)
  let thread_names =
    List.filter (fun e -> str_member "name" e = Some "thread_name") events
  in
  Alcotest.(check int) "one thread_name per core" 16 (List.length thread_names);
  (* drop accounting is surfaced *)
  match member "otherData" json with
  | Some od ->
      Alcotest.(check bool) "dropped_events reported" true
        (num_member "dropped_events" od <> None)
  | None -> Alcotest.fail "no otherData"

let test_trace_escaping_and_empty_timeline () =
  (* escape_json must keep arbitrary object names JSON-safe *)
  with_recorder (fun r emit ->
      emit (Probe.Op_requested { time = 0; core = 0; tid = 1; addr = 0x40 });
      emit
        (Probe.Op_started { time = 1; core = 0; tid = 1; addr = 0x40; home = None });
      emit (Probe.Op_ended { time = 10; core = 0; tid = 1 });
      match parse_json (Trace_export.to_string r) with
      | _ -> ()
      | exception Bad_json msg -> Alcotest.failf "invalid JSON: %s" msg);
  with_recorder (fun r _emit ->
      Alcotest.(check string) "empty timeline" "(no events recorded)\n"
        (Trace_export.ascii_timeline r))

let test_ascii_timeline () =
  let result = quickstart_recorded () in
  let r = Option.get result.O2_experiments.Quickstart_exp.recorder in
  let timeline = Trace_export.ascii_timeline ~width:60 r in
  let lines = String.split_on_char '\n' timeline in
  Alcotest.(check bool) "a lane per core plus monitor plus header" true
    (List.length lines >= 16 + 3);
  Alcotest.(check bool) "op coverage drawn" true (String.contains timeline '#');
  Alcotest.(check bool) "migrations drawn" true (String.contains timeline '>');
  Alcotest.(check bool) "monitor periods drawn" true
    (String.contains timeline 'R');
  Alcotest.(check bool) "monitor lane present" true
    (List.exists
       (fun l -> String.length l >= 7 && String.sub l 0 7 = "monitor")
       lines)

let test_o2top_render () =
  let result = quickstart_recorded () in
  let r = Option.get result.O2_experiments.Quickstart_exp.recorder in
  let out = O2top.render (Recorder.metrics r) in
  let contains sub =
    let n = String.length out and m = String.length sub in
    let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "histogram section" true
    (contains "latency histograms");
  Alcotest.(check bool) "op/latency row" true (contains "op/latency");
  Alcotest.(check bool) "counters section" true (contains "counters");
  Alcotest.(check bool) "ops counter row" true (contains "ops");
  Alcotest.(check bool) "gauges by default" true (contains "core00/");
  let no_gauges = O2top.render ~gauges:false (Recorder.metrics r) in
  let contains_ng sub =
    let n = String.length no_gauges and m = String.length sub in
    let rec go i =
      i + m <= n && (String.sub no_gauges i m = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "gauges suppressed" false (contains_ng "core00/")

(* ------------------------------------------------------------------ *)
(* Hist.merge as a property: merging must be indistinguishable from
   having fed one histogram the concatenated samples — exact stats and
   every percentile, not just the counters. *)

let hist_of_list l =
  let h = Hist.create () in
  List.iter (Hist.add h) l;
  h

let same_hist_stats a b =
  Hist.count a = Hist.count b
  && Hist.sum a = Hist.sum b
  && Hist.min_value a = Hist.min_value b
  && Hist.max_value a = Hist.max_value b
  && Hist.p50 a = Hist.p50 b
  && Hist.p90 a = Hist.p90 b
  && Hist.p99 a = Hist.p99 b
  && Hist.p999 a = Hist.p999 b

let prop_hist_merge_is_concat =
  QCheck2.Test.make ~name:"Hist.merge_into = histogram of the concatenation"
    ~count:300
    QCheck2.Gen.(
      pair (list (int_bound 2_000_000)) (list (int_bound 2_000_000)))
    (fun (xs, ys) ->
      let merged = hist_of_list xs in
      Hist.merge_into ~into:merged (hist_of_list ys);
      same_hist_stats merged (hist_of_list (xs @ ys)))

let test_hist_merge_empty_identity () =
  let samples = [ 3; 17; 900; 4096 ] in
  let a = hist_of_list samples in
  Hist.merge_into ~into:a (Hist.create ());
  Alcotest.(check bool) "merging an empty histogram changes nothing" true
    (same_hist_stats a (hist_of_list samples));
  let b = Hist.create () in
  Hist.merge_into ~into:b (hist_of_list samples);
  Alcotest.(check bool) "merging into an empty histogram copies" true
    (same_hist_stats b (hist_of_list samples))

(* ------------------------------------------------------------------ *)
(* Trace-export edge cases: the JSON must stay schema-valid when the
   recorder saw nothing, when it saw memory traffic but no completed op,
   and when the stream was rebalance instants alone. *)

let parse_or_fail r ?occupancy () =
  match parse_json (Trace_export.to_string ?occupancy r) with
  | j -> j
  | exception Bad_json msg -> Alcotest.failf "invalid JSON: %s" msg

let events_of json =
  match member "traceEvents" json with
  | Some (Arr evs) -> evs
  | _ -> Alcotest.fail "no traceEvents array"

let test_trace_export_empty () =
  with_recorder (fun r _emit ->
      let json = parse_or_fail r () in
      let events = events_of json in
      Alcotest.(check bool) "no spans in an empty trace" true
        (List.for_all (fun e -> str_member "ph" e <> Some "X") events);
      Alcotest.(check bool) "metadata still names the cores" true
        (List.exists (fun e -> str_member "name" e = Some "thread_name") events);
      match member "otherData" json with
      | Some od ->
          Alcotest.(check (option (float 1e-9))) "zero events retained"
            (Some 0.0) (num_member "events_retained" od);
          Alcotest.(check (option (float 1e-9))) "zero spans" (Some 0.0)
            (num_member "spans_total" od)
      | None -> Alcotest.fail "no otherData")

let test_trace_export_no_completed_ops () =
  with_recorder (fun r emit ->
      for i = 1 to 5 do
        emit (mem ~time:i)
      done;
      (* an op that never ends must not fabricate a span *)
      emit (Probe.Op_requested { time = 10; core = 0; tid = 1; addr = 0x40 });
      emit
        (Probe.Op_started
           { time = 12; core = 0; tid = 1; addr = 0x40; home = None });
      let json = parse_or_fail r () in
      Alcotest.(check bool) "no X spans without Op_ended" true
        (List.for_all
           (fun e -> str_member "ph" e <> Some "X")
           (events_of json));
      Alcotest.(check int) "span count zero" 0 (Recorder.span_count r))

let test_trace_export_rebalance_only () =
  with_recorder (fun r emit ->
      emit (Probe.Rebalanced { time = 1000; moves = 2; demotions = 1 });
      emit (Probe.Rebalanced { time = 2000; moves = 0; demotions = 0 });
      let json = parse_or_fail r () in
      let instants =
        List.filter
          (fun e ->
            str_member "ph" e = Some "i"
            && str_member "name" e = Some "rebalance")
          (events_of json)
      in
      Alcotest.(check int) "one instant per period" 2 (List.length instants))

(* ------------------------------------------------------------------ *)
(* The cache observatory on the quickstart run: occupancy mirror audit,
   heat attribution, decision provenance, and their trace/report faces. *)

let quickstart_observed () =
  let occ = ref None and heat = ref None and prov = ref None in
  let result =
    O2_experiments.Quickstart_exp.execute
      ~recorder_of:(fun engine -> Recorder.attach engine)
      ~attach:(fun engine ->
        occ :=
          Some
            (Occupancy.attach ~interval:200_000
               (O2_runtime.Engine.machine engine));
        heat := Some (Heat.attach engine);
        prov := Some (Provenance.attach engine))
      ~quick:true ()
  in
  (result, Option.get !occ, Option.get !heat, Option.get !prov)

let test_occupancy_tracker () =
  let _result, occ, _heat, _prov = quickstart_observed () in
  (match Occupancy.check occ with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "occupancy mirror drifted: %s" msg);
  Alcotest.(check bool) "data still on chip" true (Occupancy.distinct_lines occ > 0);
  Alcotest.(check bool) "timeline sampled" true (Occupancy.samples occ <> []);
  List.iter
    (fun (s : Occupancy.sample) ->
      Alcotest.(check int) "sample width = cache count"
        (Occupancy.cache_count occ)
        (Array.length s.Occupancy.lines))
    (Occupancy.samples occ);
  let csv = Occupancy.to_csv occ in
  Alcotest.(check bool) "heatmap csv header" true
    (String.length csv >= 24 && String.sub csv 0 24 = "cache,object,name,lines\n");
  let tl = Occupancy.timeline_csv occ in
  Alcotest.(check bool) "timeline csv header" true
    (String.length tl >= 23 && String.sub tl 0 23 = "at,cache,lines,objects\n")

let test_heat_tracker () =
  let result, _occ, heat, _prov = quickstart_observed () in
  let rows = Heat.tracked heat in
  Alcotest.(check bool) "objects tracked" true (rows <> []);
  Alcotest.(check int) "heat ops sum = completed ops"
    result.O2_experiments.Quickstart_exp.ops
    (List.fold_left (fun a r -> a + r.Heat.ops) 0 rows);
  let churn (r : Heat.row) = r.Heat.remote + r.Heat.dram in
  let top = Heat.top_k heat 3 in
  Alcotest.(check bool) "top_k bounded" true (List.length top <= 3);
  let rec sorted = function
    | a :: (b :: _ as tl) -> churn a >= churn b && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "top_k ordered by off-core traffic" true (sorted top);
  Alcotest.(check int) "nothing unattributed in quickstart" 0
    (Heat.unattributed heat)

let test_provenance_records () =
  let result, _occ, _heat, prov = quickstart_observed () in
  Alcotest.(check bool) "decisions captured" true (Provenance.count prov > 0);
  Alcotest.(check int) "nothing dropped at this size" 0
    (Provenance.dropped prov);
  let promotions =
    List.filter
      (fun r ->
        match r.Provenance.decision with
        | Probe.Promoted _ -> true
        | _ -> false)
      (Provenance.records prov)
  in
  Alcotest.(check int) "one Promoted record per simulator promotion"
    result.O2_experiments.Quickstart_exp.promotions
    (List.length promotions);
  let out = Provenance.render prov in
  let contains sub =
    let n = String.length out and m = String.length sub in
    let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "promotion explained" true (contains "promote");
  Alcotest.(check bool) "inputs line present" true (contains "inputs:");
  Alcotest.(check bool) "action line present" true (contains "action:");
  Alcotest.(check bool) "honest header" true
    (contains
       (Printf.sprintf "showing %d of %d decision(s)" (Provenance.count prov)
          (Provenance.total prov)))

let test_trace_occupancy_tracks () =
  (* export the run's recorder with the occupancy timeline merged in *)
  let result, occ2, _heat, _prov = quickstart_observed () in
  let rec_ = Option.get result.O2_experiments.Quickstart_exp.recorder in
  let json = parse_or_fail rec_ ~occupancy:occ2 () in
  let events = events_of json in
  let counters =
    List.filter
      (fun e ->
        str_member "ph" e = Some "C"
        &&
        match str_member "name" e with
        | Some n -> String.length n >= 4 && String.sub n 0 4 = "occ/"
        | None -> false)
      events
  in
  Alcotest.(check int) "one counter event per (sample, cache)"
    (List.length (Occupancy.samples occ2) * Occupancy.cache_count occ2)
    (List.length counters);
  List.iter
    (fun e ->
      match member "args" e with
      | Some args ->
          Alcotest.(check bool) "counter args carry lines and objects" true
            (num_member "lines" args <> None
            && num_member "objects" args <> None)
      | None -> Alcotest.fail "counter without args")
    counters;
  let decisions =
    List.filter
      (fun e ->
        str_member "ph" e = Some "i"
        &&
        match str_member "name" e with
        | Some n -> String.length n >= 9 && String.sub n 0 9 = "decision/"
        | None -> false)
      events
  in
  Alcotest.(check bool) "decision instants exported" true (decisions <> []);
  match member "otherData" json with
  | Some od ->
      Alcotest.(check (option (float 1e-9))) "occupancy sample count surfaced"
        (Some (float_of_int (List.length (Occupancy.samples occ2))))
        (num_member "occupancy_samples" od)
  | None -> Alcotest.fail "no otherData"

let test_o2top_recorder_footer () =
  let result = quickstart_recorded () in
  let r = Option.get result.O2_experiments.Quickstart_exp.recorder in
  let out = O2top.render ~recorder:r (Recorder.metrics r) in
  let contains sub =
    let n = String.length out and m = String.length sub in
    let rec go i = i + m <= n && (String.sub out i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "recorder footer present" true
    (contains "-- recorder --");
  Alcotest.(check bool) "event drop accounting" true
    (contains "dropped by the ring bound");
  let without = O2top.render (Recorder.metrics r) in
  let contains_w sub =
    let n = String.length without and m = String.length sub in
    let rec go i =
      i + m <= n && (String.sub without i m = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "footer only with a recorder" false
    (contains_w "-- recorder --")

let test_ring_bound_drops_spans () =
  with_recorder ~ring_capacity:4 ~span_capacity:1 (fun r emit ->
      for i = 0 to 2 do
        let t0 = i * 100 in
        emit (Probe.Op_requested { time = t0; core = 0; tid = 1; addr = 0x40 });
        emit
          (Probe.Op_started
             { time = t0 + 1; core = 0; tid = 1; addr = 0x40; home = None });
        emit (Probe.Op_ended { time = t0 + 10; core = 0; tid = 1 })
      done;
      Alcotest.(check int) "metrics still exact" 3
        (Metrics.counter_value (Recorder.metrics r) "ops");
      Alcotest.(check int) "span storage bounded" 1 (Recorder.span_count r);
      Alcotest.(check int) "span drops accounted" 2 (Recorder.spans_dropped r);
      Alcotest.(check int) "event window bounded" 4 (Recorder.events_retained r);
      Alcotest.(check int) "event drops accounted" 5 (Recorder.events_dropped r))

let suite =
  [
    Alcotest.test_case "ring keeps the most recent" `Quick test_ring;
    Alcotest.test_case "zero-capacity ring counts but retains nothing" `Quick
      test_ring_zero_capacity;
    Alcotest.test_case "histogram bucket boundaries" `Quick test_hist_buckets;
    Alcotest.test_case "histogram exact count/sum/min/max" `Quick
      test_hist_exact_stats;
    Alcotest.test_case "histogram percentile edge cases" `Quick
      test_hist_percentile_edges;
    Alcotest.test_case "histogram percentile spread" `Quick
      test_hist_percentile_spread;
    Alcotest.test_case "histogram merge" `Quick test_hist_merge;
    QCheck_alcotest.to_alcotest prop_hist_merge_is_concat;
    Alcotest.test_case "histogram merge with empty is identity" `Quick
      test_hist_merge_empty_identity;
    Alcotest.test_case "metrics registry and merge" `Quick test_metrics_registry;
    Alcotest.test_case "span reconstruction: migrated op" `Quick
      test_span_migrated;
    Alcotest.test_case "span reconstruction: home hit and remote" `Quick
      test_span_home_hit_and_remote;
    Alcotest.test_case "span reconstruction: nested ops" `Quick test_span_nested;
    Alcotest.test_case "memory-event sampling" `Quick test_mem_sampling;
    Alcotest.test_case "metrics agree with the simulator exactly" `Quick
      test_metrics_match_simulator;
    Alcotest.test_case "trace export is valid trace_event JSON" `Quick
      test_trace_export_shape;
    Alcotest.test_case "trace JSON stays valid; empty timeline message" `Quick
      test_trace_escaping_and_empty_timeline;
    Alcotest.test_case "ascii timeline draws ops, migrations, monitor" `Quick
      test_ascii_timeline;
    Alcotest.test_case "o2top renders the three sections" `Quick
      test_o2top_render;
    Alcotest.test_case "bounded storage drops are accounted" `Quick
      test_ring_bound_drops_spans;
    Alcotest.test_case "empty trace exports schema-valid JSON" `Quick
      test_trace_export_empty;
    Alcotest.test_case "trace with no completed op has no spans" `Quick
      test_trace_export_no_completed_ops;
    Alcotest.test_case "rebalance-only trace keeps its instants" `Quick
      test_trace_export_rebalance_only;
    Alcotest.test_case "occupancy mirror audits against the caches" `Quick
      test_occupancy_tracker;
    Alcotest.test_case "heat attribution matches the simulator" `Quick
      test_heat_tracker;
    Alcotest.test_case "decision provenance captures and explains" `Quick
      test_provenance_records;
    Alcotest.test_case "occupancy counter tracks in the trace JSON" `Quick
      test_trace_occupancy_tracks;
    Alcotest.test_case "o2top recorder footer" `Quick test_o2top_recorder_footer;
  ]
