(* The windowed sharded engine: one logical shard per chip, worker
   domains chosen by --shards, cross-chip effects applied at conservative
   window barriers. The load-bearing contract is shard-count invariance —
   results are bit-identical for every shards >= 1 because the partition
   is always per chip and only the domain grouping changes. Windowed
   results intentionally differ from the serial engine (DESIGN.md,
   "Sharded time"), so these pins are separate from the serial goldens. *)

open O2_simcore
open O2_runtime

let cfg = Config.amd16
let delta = Config.sync_window cfg
let machine () = Machine.create cfg
let sharded ~shards () = Engine.create_sharded (machine ()) ~shards

let chip_of = Config.chip_of_core cfg

(* First core belonging to [chip]. *)
let core_on chip =
  let rec find c = if chip_of c = chip then c else find (c + 1) in
  find 0

let counters_digest e =
  let m = Engine.machine e in
  let copies = Array.map Counters.copy (Machine.all_counters m) in
  Digest.to_hex (Digest.string (Marshal.to_string copies []))

let test_sync_window () =
  Alcotest.(check int) "amd16 sync window" 90 delta;
  Alcotest.(check bool) "positive for any config" true (delta > 0)

let test_smoke () =
  let e = sharded ~shards:4 () in
  Alcotest.(check bool) "sharded" true (Engine.is_sharded e);
  (* requested shard counts clamp to the host's cores before the
     min-with-chips split, so this is exact on any runner width *)
  let expected =
    max 1 (min (Domain_pool.clamped ~what:"shards" 4) cfg.Config.chips)
  in
  Alcotest.(check int) "domains = min(clamped shards, chips)" expected
    (Engine.shards e);
  for chip = 0 to cfg.Config.chips - 1 do
    ignore
      (Engine.spawn e ~core:(core_on chip) ~name:"t" (fun () ->
           Api.compute 1000))
  done;
  Engine.run e;
  Alcotest.(check int) "no live threads" 0 (Engine.live_threads e);
  for chip = 0 to cfg.Config.chips - 1 do
    Alcotest.(check int) "clock advanced" 1000 (Engine.core_clock e (core_on chip))
  done

(* Regression: an oversubscribed --shards request must not spin up more
   domains than the host has cores — before the clamp, shards=4 on a
   1-core runner was ~11x slower than shards=1 (BENCH_fig4.json), all of
   it barrier spinning with no parallelism underneath. *)
let test_shards_clamped () =
  let e = sharded ~shards:1024 () in
  let expected =
    max 1 (min (Domain_pool.clamped ~what:"shards" 1024) cfg.Config.chips)
  in
  Alcotest.(check int) "oversubscribed request clamps" expected
    (Engine.shards e);
  let ran = ref false in
  ignore (Engine.spawn e ~core:0 ~name:"t" (fun () -> ran := true));
  Engine.run e;
  Alcotest.(check bool) "clamped engine still runs" true !ran

let test_serial_engine_unchanged () =
  let e = Engine.create (machine ()) in
  Alcotest.(check bool) "not sharded" false (Engine.is_sharded e);
  Alcotest.(check int) "no shard domains" 0 (Engine.shards e)

(* A mixed cross-chip workload: every chip has a writer hammering a
   shared line (invalidation + presence traffic), plus a reader of a
   chip-local line, plus one thread migrating across all chips. *)
let mixed_workload e =
  let m = Engine.machine e in
  let mem = Machine.memory m in
  let shared = Memsys.alloc_isolated mem ~name:"shared" ~size:64 in
  let locals =
    Array.init cfg.Config.chips (fun i ->
        Memsys.alloc_isolated mem ~name:(Printf.sprintf "local%d" i) ~size:256)
  in
  for chip = 0 to cfg.Config.chips - 1 do
    let core = core_on chip in
    ignore
      (Engine.spawn e ~core ~name:"writer" (fun () ->
           for _ = 1 to 30 do
             ignore (Api.write ~addr:shared.Memsys.base ~len:8);
             Api.compute 200
           done));
    ignore
      (Engine.spawn e ~core:(core + 1) ~name:"reader" (fun () ->
           for _ = 1 to 40 do
             ignore (Api.read ~addr:locals.(chip).Memsys.base ~len:64);
             ignore (Api.read ~addr:shared.Memsys.base ~len:8);
             Api.compute 100
           done));
    ignore
      (Engine.spawn e ~core:(core + 2) ~name:"hopper" (fun () ->
           for target = 0 to cfg.Config.chips - 1 do
             Api.migrate_to (core_on target + 3);
             Api.compute 500
           done))
  done

let test_shard_count_invariance () =
  let digests =
    List.map
      (fun shards ->
        let e = sharded ~shards () in
        mixed_workload e;
        Engine.run e;
        counters_digest e)
      [ 1; 2; 4 ]
  in
  match digests with
  | [ d1; d2; d4 ] ->
      Alcotest.(check string) "shards=2 identical to shards=1" d1 d2;
      Alcotest.(check string) "shards=4 identical to shards=1" d1 d4
  | _ -> assert false

(* Cross-chip migration goes through the outbox but lands at exactly the
   serial arrival time (depart + wire), so end-to-end timing matches the
   serial engine cycle for cycle. *)
let test_cross_chip_migration_timing () =
  let run_on e =
    ignore
      (Engine.spawn e ~core:(core_on 0) ~name:"t" (fun () ->
           Api.migrate_to (core_on 3);
           Api.compute 10));
    Engine.run e;
    Engine.core_clock e (core_on 3)
  in
  let serial = run_on (Engine.create (machine ())) in
  let windowed = run_on (sharded ~shards:4 ()) in
  Alcotest.(check int) "same landing clock" serial windowed;
  Alcotest.(check int) "migration costs 2000 + 10" 2010 windowed

(* Cross-chip migration accounting: [migrations_in] is charged on the
   destination chip's domain at arrival (charging it at send time would
   race with the destination's own window), and the totals still match
   one count per side once the move completes. *)
let test_cross_chip_migration_counters () =
  let e = sharded ~shards:4 () in
  let m = Engine.machine e in
  ignore
    (Engine.spawn e ~core:(core_on 0) ~name:"t" (fun () ->
         Api.migrate_to (core_on 3)));
  Engine.run e;
  Alcotest.(check int) "out counted on the source" 1
    (Machine.counters m (core_on 0)).Counters.migrations_out;
  Alcotest.(check int) "in counted on the destination" 1
    (Machine.counters m (core_on 3)).Counters.migrations_in

(* A thread spawned mid-run from a facade control event onto a chip that
   has sat idle must start in the next window to execute, not at the
   chip's lagging clock — otherwise its first cross-chip effect arrives
   inside an already-closed window and trips the outbox conservatism
   check ("sync window is not conservative"). *)
let test_mid_run_spawn () =
  let e = sharded ~shards:2 () in
  let spawn_at = 100 * delta in
  Engine.at e ~time:spawn_at (fun ~now:_ ->
      ignore
        (Engine.spawn e ~core:(core_on 1) ~name:"late" (fun () ->
             Api.migrate_to (core_on 2);
             Api.compute 10)));
  Engine.run e;
  Alcotest.(check int) "late thread ran to completion" 0
    (Engine.live_threads e);
  Alcotest.(check bool) "starts no earlier than the spawn window" true
    (Engine.core_clock e (core_on 2) > spawn_at)

(* Presence masks are multi-word (32 bits per word), so configs wider
   than an OCaml int shard correctly: future64 (8x8 = 64 cores, core 63
   in the second mask word) must produce identical counters at every
   shard count. The old single-int masks silently dropped core 63's bit
   and the sharded engine rejected >62 cores outright. *)
let test_wide_config_shards () =
  let run mk =
    let m = Machine.create Config.future64 in
    let e = mk m in
    let last = Config.cores Config.future64 - 1 in
    (* touch the same lines from core 0 and core 63 so the top bit of
       the wide mask is exercised by hits, invalidations and presence *)
    ignore
      (Engine.spawn e ~core:last ~name:"hi" (fun () ->
           ignore (Api.read ~addr:0 ~len:4096);
           Api.compute 500;
           ignore (Api.write ~addr:0 ~len:4096)));
    ignore
      (Engine.spawn e ~core:0 ~name:"lo" (fun () ->
           ignore (Api.read ~addr:0 ~len:4096);
           Api.compute 9000;
           ignore (Api.read ~addr:0 ~len:4096)));
    Engine.run e;
    counters_digest e
  in
  let one = run (fun m -> Engine.create_sharded m ~shards:1) in
  let two = run (fun m -> Engine.create_sharded m ~shards:2) in
  Alcotest.(check string) "64-core counters identical at shards 1 vs 2" one
    two;
  (* and the serial engine accepts the wide config too *)
  ignore (run (fun m -> Engine.create m))

(* Same-chip locking under sharding uses the exact serial path: no
   protocol messages, no extra latency. *)
let test_same_chip_lock_is_serial () =
  let e = sharded ~shards:4 () in
  let m = Engine.machine e in
  let l = Spinlock.create (Machine.memory m) ~name:"l" in
  let home = Topology.home_chip (Machine.topology m) ~addr:l.Spinlock.addr in
  let core = core_on home in
  ignore
    (Engine.spawn e ~core ~name:"t" (fun () ->
         Api.lock l;
         Api.compute 50;
         Api.unlock l));
  Engine.run e;
  Alcotest.(check int) "one acquisition" 1 (Spinlock.acquisitions l);
  Alcotest.(check int) "uncontended" 0 (Spinlock.contended l);
  Alcotest.(check int) "no spin cycles" 0
    (Machine.counters m core).Counters.spin_cycles

(* A remote acquire pays the 2Δ message round trip (request to the home
   chip, grant back), recorded as spin cycles. *)
let test_remote_lock_round_trip () =
  let e = sharded ~shards:4 () in
  let m = Engine.machine e in
  let l = Spinlock.create (Machine.memory m) ~name:"l" in
  let home = Topology.home_chip (Machine.topology m) ~addr:l.Spinlock.addr in
  let remote_chip = (home + 1) mod cfg.Config.chips in
  let core = core_on remote_chip in
  ignore
    (Engine.spawn e ~core ~name:"t" (fun () ->
         Api.lock l;
         Api.compute 50;
         Api.unlock l));
  Engine.run e;
  Alcotest.(check int) "one acquisition" 1 (Spinlock.acquisitions l);
  Alcotest.(check int) "2Δ round trip as spin" (2 * delta)
    (Machine.counters m core).Counters.spin_cycles;
  Alcotest.(check bool) "lock free again" false (Spinlock.held l)

(* Contended remote acquisition: the home chip queues the waiter and
   hands over on release; the lock ends up released with both
   acquisitions counted. *)
let test_remote_lock_contention () =
  let e = sharded ~shards:4 () in
  let m = Engine.machine e in
  let l = Spinlock.create (Machine.memory m) ~name:"l" in
  let home = Topology.home_chip (Machine.topology m) ~addr:l.Spinlock.addr in
  let other = (home + 2) mod cfg.Config.chips in
  let spawn_locker chip hold =
    ignore
      (Engine.spawn e ~core:(core_on chip) ~name:"locker" (fun () ->
           Api.lock l;
           Api.compute hold;
           Api.unlock l))
  in
  spawn_locker home 5000;
  spawn_locker other 100;
  Engine.run e;
  Alcotest.(check int) "both acquired" 2 (Spinlock.acquisitions l);
  Alcotest.(check bool) "someone waited" true (Spinlock.contended l >= 1);
  Alcotest.(check bool) "released at the end" false (Spinlock.held l)

let test_remote_release_not_owner () =
  let e = sharded ~shards:1 () in
  let m = Engine.machine e in
  let l = Spinlock.create (Machine.memory m) ~name:"l" in
  let home = Topology.home_chip (Machine.topology m) ~addr:l.Spinlock.addr in
  let remote_chip = (home + 1) mod cfg.Config.chips in
  ignore
    (Engine.spawn e ~core:(core_on remote_chip) ~name:"t" (fun () ->
         Api.unlock l));
  Alcotest.(check bool) "home-side ownership check raises" true
    (try
       Engine.run e;
       false
     with Engine.Not_lock_owner _ -> true)

(* Pausing at a horizon mid-window and resuming is equivalent to one
   uninterrupted run: the partial window is continued, not re-barriered. *)
let test_window_resume () =
  let uninterrupted =
    let e = sharded ~shards:2 () in
    mixed_workload e;
    Engine.run ~until:500_000 e;
    counters_digest e
  in
  let paused =
    let e = sharded ~shards:2 () in
    mixed_workload e;
    (* 250_000 is not a multiple of Δ=90: the first run stops mid-window. *)
    Engine.run ~until:250_000 e;
    Engine.run ~until:500_000 e;
    counters_digest e
  in
  Alcotest.(check string) "identical counters" uninterrupted paused

let test_stop_when_rejected () =
  let e = sharded ~shards:2 () in
  Alcotest.check_raises "stop_when unsupported"
    (Invalid_argument
       "Engine.run: stop_when is not supported on a sharded engine")
    (fun () -> Engine.run ~stop_when:(fun () -> false) e)

let test_observed_machine_rejected () =
  let m = machine () in
  Machine.observe m
    {
      Machine.on_access = (fun ~now:_ ~core:_ ~line:_ ~source:_ -> ());
      on_fill = (fun ~cache:_ ~line:_ ~victim:_ -> ());
      on_remove = (fun ~cache:_ ~line:_ -> ());
    };
  Alcotest.(check bool) "create_sharded rejects observed machines" true
    (try
       ignore (Engine.create_sharded m ~shards:2);
       false
     with Invalid_argument _ -> true)

(* --------------------------------------------------------------- *)
(* Outbox properties (qcheck): delivery is FIFO — two messages posted
   in order are delivered in order, whatever their arrival stamps — and
   an arrival inside the closing window trips the conservatism check.  *)

let prop_outbox_fifo =
  QCheck2.Test.make ~name:"outbox delivery preserves posting order" ~count:200
    QCheck2.Gen.(list_size (int_range 1 40) (int_range 0 50))
    (fun offsets ->
      let ob = Shard_sync.Outbox.create () in
      let deadline = 1000 in
      let order = ref [] in
      List.iteri
        (fun i off ->
          Shard_sync.Outbox.push ob ~arrive:(deadline + off) (fun () ->
              order := i :: !order))
        offsets;
      Shard_sync.Outbox.drain ob ~deadline;
      !order = List.rev (List.init (List.length offsets) Fun.id)
      && Shard_sync.Outbox.is_empty ob)

let prop_outbox_conservatism =
  QCheck2.Test.make
    ~name:"an arrival inside the window trips the conservatism check"
    ~count:100
    QCheck2.Gen.(pair (int_range 1 1000) (int_range 1 1000))
    (fun (deadline, short) ->
      let ob = Shard_sync.Outbox.create () in
      Shard_sync.Outbox.push ob ~arrive:(deadline - min short deadline)
        (fun () -> ());
      try
        Shard_sync.Outbox.drain ob ~deadline;
        false
      with Invalid_argument _ -> true)

(* Engine-level qcheck: random compute/write interleavings against a
   shared line produce bit-identical counters at shards=1 and shards=4.
   This is the "no same-line reordering within Δ" property in executable
   form — any divergence in invalidation or presence ordering between
   domain groupings would change hit/miss counters. *)
let prop_random_invariance =
  QCheck2.Test.make
    ~name:"random cross-chip traffic: shards=4 counters = shards=1" ~count:15
    QCheck2.Gen.(
      list_size (int_range 4 12)
        (triple (int_range 0 15) (int_range 1 400) bool))
    (fun plan ->
      let digest shards =
        let e = sharded ~shards () in
        let mem = Machine.memory (Engine.machine e) in
        let shared = Memsys.alloc_isolated mem ~name:"s" ~size:64 in
        List.iteri
          (fun i (core, gap, write) ->
            ignore
              (Engine.spawn e ~core ~name:(Printf.sprintf "t%d" i) (fun () ->
                   for _ = 1 to 10 do
                     Api.compute gap;
                     if write then
                       ignore (Api.write ~addr:shared.Memsys.base ~len:8)
                     else ignore (Api.read ~addr:shared.Memsys.base ~len:8)
                   done)))
          plan;
        Engine.run e;
        counters_digest e
      in
      digest 1 = digest 4)

(* --------------------------------------------------------------- *)
(* Harness-level goldens: the fig4(a)/(b)-small sweeps and the ablation
   grid under the windowed engine, pinned bit-identical at every
   shards ∈ {1,2,4} × jobs ∈ {1,2} combination. Captured from the first
   windowed implementation; horizons are shorter than the serial goldens
   (1M+1M) because windowed cells pay ~Δ-granular barrier overhead.     *)

open O2_experiments

let digest_points (points : Harness.point list) =
  Digest.to_hex (Digest.string (Marshal.to_string points []))

let golden_cells ~shards ~oscillation =
  List.concat_map
    (fun kb ->
      let spec = O2_workload.Dir_workload.spec_for_data_kb ~kb () in
      List.map
        (fun policy ->
          Harness.setup ~policy ~warmup:1_000_000 ~measure:1_000_000
            ?oscillation ~shards spec)
        [ Coretime.Policy.baseline; Coretime.Policy.default ])
    [ 256; 1024 ]

let golden_ablation_cells ~shards =
  let spec = O2_workload.Dir_workload.spec_for_data_kb ~kb:1024 () in
  List.map
    (fun policy ->
      Harness.setup ~policy ~warmup:1_000_000 ~measure:1_000_000 ~shards spec)
    [
      Coretime.Policy.baseline;
      { Coretime.Policy.default with Coretime.Policy.evict_for_hotter = true };
      { Coretime.Policy.default with Coretime.Policy.replicate_read_only = true };
      { Coretime.Policy.default with Coretime.Policy.op_shipping = true };
      { Coretime.Policy.default with Coretime.Policy.clustering = true };
    ]

let check_sharded_golden name mk ~digest ~total_ops =
  List.iter
    (fun shards ->
      List.iter
        (fun jobs ->
          let points = Harness.run_cells ~jobs (mk ~shards) in
          Alcotest.(check int)
            (Printf.sprintf "%s: total ops (shards=%d jobs=%d)" name shards jobs)
            total_ops
            (List.fold_left (fun a p -> a + p.Harness.ops) 0 points);
          Alcotest.(check string)
            (Printf.sprintf "%s: digest (shards=%d jobs=%d)" name shards jobs)
            digest (digest_points points))
        (if shards = 1 then [ 1; 2 ] else [ 1 ]))
    [ 1; 2; 4 ]

let test_golden_fig4a_sharded () =
  check_sharded_golden "fig4a-small-sharded"
    (fun ~shards -> golden_cells ~shards ~oscillation:None)
    ~digest:"f644e761d67d80a99fb1de0ad8d25e5a" ~total_ops:1568

let test_golden_fig4b_sharded () =
  check_sharded_golden "fig4b-small-sharded"
    (fun ~shards ->
      golden_cells ~shards
        ~oscillation:(Some { Harness.period = 500_000; divisor = 4 }))
    ~digest:"55612351e28e5361b538d2b268d48b5d" ~total_ops:1433

let test_golden_ablations_sharded () =
  check_sharded_golden "ablation-small-sharded"
    (fun ~shards -> golden_ablation_cells ~shards)
    ~digest:"2f8861d57ca864cf67eeb5a29dc7566b" ~total_ops:803

(* E10's own sharded golden: the future 64-core config on the windowed
   engine (8 chips, one logical shard each; core 63 lives in the second
   presence-mask word). Pinned from the first multi-word-mask
   implementation — the sweep itself runs through the same Harness path
   with longer horizons. *)
let golden_future_cells ~shards =
  let spec = O2_workload.Dir_workload.spec_for_data_kb ~kb:256 () in
  List.map
    (fun policy ->
      Harness.setup ~cfg:Config.future64 ~policy ~warmup:1_000_000
        ~measure:1_000_000 ~shards spec)
    [ Coretime.Policy.baseline; Coretime.Policy.default ]

let test_golden_future_sharded () =
  check_sharded_golden "future64-small-sharded (E10)"
    (fun ~shards -> golden_future_cells ~shards)
    ~digest:"191a341ebaffbfe20386ca00107c7720" ~total_ops:524

let test_attach_rejected () =
  let s =
    Harness.setup ~warmup:1000 ~measure:1000 ~shards:2
      (O2_workload.Dir_workload.spec_for_data_kb ~kb:256 ())
  in
  Alcotest.(check bool) "attach + shards rejected" true
    (try
       ignore (Harness.run ~attach:(fun _ -> ()) s);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "sync window" `Quick test_sync_window;
    Alcotest.test_case "smoke" `Quick test_smoke;
    Alcotest.test_case "oversubscribed shards clamp" `Quick
      test_shards_clamped;
    Alcotest.test_case "serial engine unchanged" `Quick
      test_serial_engine_unchanged;
    Alcotest.test_case "shard-count invariance" `Quick
      test_shard_count_invariance;
    Alcotest.test_case "cross-chip migration timing" `Quick
      test_cross_chip_migration_timing;
    Alcotest.test_case "cross-chip migration counters" `Quick
      test_cross_chip_migration_counters;
    Alcotest.test_case "mid-run spawn clamps to the window cursor" `Quick
      test_mid_run_spawn;
    Alcotest.test_case "wide config shards bit-identically" `Quick
      test_wide_config_shards;
    Alcotest.test_case "same-chip lock is serial" `Quick
      test_same_chip_lock_is_serial;
    Alcotest.test_case "remote lock round trip" `Quick
      test_remote_lock_round_trip;
    Alcotest.test_case "remote lock contention" `Quick
      test_remote_lock_contention;
    Alcotest.test_case "remote release ownership check" `Quick
      test_remote_release_not_owner;
    Alcotest.test_case "window resume" `Quick test_window_resume;
    Alcotest.test_case "stop_when rejected" `Quick test_stop_when_rejected;
    Alcotest.test_case "observed machine rejected" `Quick
      test_observed_machine_rejected;
    QCheck_alcotest.to_alcotest prop_outbox_fifo;
    QCheck_alcotest.to_alcotest prop_outbox_conservatism;
    QCheck_alcotest.to_alcotest prop_random_invariance;
    Alcotest.test_case "golden fig4a sharded" `Slow test_golden_fig4a_sharded;
    Alcotest.test_case "golden fig4b sharded" `Slow test_golden_fig4b_sharded;
    Alcotest.test_case "golden ablations sharded" `Slow
      test_golden_ablations_sharded;
    Alcotest.test_case "golden future64 sharded (E10)" `Slow
      test_golden_future_sharded;
    Alcotest.test_case "attach rejected with shards" `Quick
      test_attach_rejected;
  ]
