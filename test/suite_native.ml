(* The native backend: SPMC deque model + stress, inbox FIFO, pool
   shipping semantics, and the simulator-as-oracle cross-check. *)

open O2_native

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Deque: qcheck model test against a sequential reference.            *)
(* ------------------------------------------------------------------ *)

(* Reference: a list front..back. push appends at the back, pop takes
   the back, steal takes the front — the Chase–Lev contract when used
   sequentially (where no race can make steal/pop return a false miss). *)
module Model = struct
  type t = int list ref

  let create () : t = ref []
  let push m v = m := !m @ [ v ]

  let pop m =
    match List.rev !m with
    | [] -> -1
    | v :: rest ->
        m := List.rev rest;
        v

  let steal m =
    match !m with
    | [] -> -1
    | v :: rest ->
        m := rest;
        v

  let length m = List.length !m
end

let deque_op_gen =
  QCheck2.Gen.(frequency [ (3, pure `Push); (2, pure `Pop); (2, `Steal |> pure) ])

let prop_deque_matches_model =
  QCheck2.Test.make ~name:"Deque model: push/pop/steal = sequential reference"
    ~count:500
    QCheck2.Gen.(list_size (int_range 0 200) deque_op_gen)
    (fun ops ->
      (* Tiny initial capacity so growth is exercised constantly. *)
      let d = Deque.create ~capacity:2 ~dummy:(-1) () in
      let m = Model.create () in
      let next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | `Push ->
              incr next;
              Deque.push d !next;
              Model.push m !next;
              true
          | `Pop -> Deque.pop d = Model.pop m
          | `Steal -> Deque.steal d = Model.steal m)
        ops
      && Deque.length d = Model.length m)

let test_deque_grow () =
  let d = Deque.create ~capacity:1 ~dummy:(-1) () in
  for i = 0 to 999 do
    Deque.push d i
  done;
  checki "length after 1000 pushes" 1000 (Deque.length d);
  (* Steal a prefix FIFO, pop the rest LIFO. *)
  for i = 0 to 99 do
    checki "steal is FIFO" i (Deque.steal d)
  done;
  for i = 999 downto 100 do
    checki "pop is LIFO" i (Deque.pop d)
  done;
  checkb "empty at the end" true (Deque.is_empty d);
  checki "pop on empty returns dummy" (-1) (Deque.pop d);
  checki "steal on empty returns dummy" (-1) (Deque.steal d)

(* Multi-domain stress: one owner pushing/popping, several thieves
   stealing concurrently; every pushed element must be taken exactly
   once across all participants. *)
let test_deque_stress () =
  let n = 20_000 in
  let thieves = 3 in
  let d = Deque.create ~dummy:(-1) () in
  let taken = Atomic.make 0 in
  let thief () =
    let mine = ref [] in
    while Atomic.get taken < n do
      let v = Deque.steal d in
      if v >= 0 then begin
        mine := v :: !mine;
        Atomic.incr taken
      end
      else Domain.cpu_relax ()
    done;
    !mine
  in
  let handles = Array.init thieves (fun _ -> Domain.spawn thief) in
  let owner_got = ref [] in
  for i = 0 to n - 1 do
    Deque.push d i;
    (* Interleave owner pops to hit the last-element CAS race. *)
    if i land 3 = 0 then begin
      let v = Deque.pop d in
      if v >= 0 then begin
        owner_got := v :: !owner_got;
        Atomic.incr taken
      end
    end
  done;
  let rec drain_rest () =
    if Atomic.get taken < n then begin
      let v = Deque.pop d in
      if v >= 0 then begin
        owner_got := v :: !owner_got;
        Atomic.incr taken
      end;
      drain_rest ()
    end
  in
  drain_rest ();
  let stolen = Array.to_list handles |> List.concat_map Domain.join in
  let all = List.sort compare (!owner_got @ stolen) in
  checki "every element taken exactly once" n (List.length all);
  List.iteri (fun i v -> checki "no loss, no duplication" i v) all;
  checkb "deque drained" true (Deque.is_empty d)

(* ------------------------------------------------------------------ *)
(* Inbox: MPSC delivery, per-producer FIFO.                            *)
(* ------------------------------------------------------------------ *)

let test_inbox_fifo () =
  let producers = 4 and per = 2_000 in
  let ib = Inbox.create ~dummy:(-1) () in
  let produce p () =
    for i = 0 to per - 1 do
      Inbox.push ib ((p * per) + i)
    done
  in
  let handles = Array.init producers (fun p -> Domain.spawn (produce p)) in
  let got = Array.make (producers * per) (-1) in
  let count = ref 0 in
  let record v =
    got.(!count) <- v;
    incr count
  in
  while !count < producers * per do
    if Inbox.drain_into ib record = 0 then Domain.cpu_relax ()
  done;
  Array.iter Domain.join handles;
  checkb "inbox empty after drain" true (Inbox.is_empty ib);
  (* Each producer's stream must arrive in its push order. *)
  let last = Array.make producers (-1) in
  Array.iter
    (fun v ->
      let p = v / per in
      checkb "per-producer FIFO preserved" true (v > last.(p));
      last.(p) <- v)
    got;
  Array.iteri
    (fun p l -> checki "producer fully delivered" ((p * per) + per - 1) l)
    last

(* ------------------------------------------------------------------ *)
(* Pool: shipping lands where directed; exceptions propagate; yield
   never loses work.                                                   *)
(* ------------------------------------------------------------------ *)

let test_pool_ship_lands_on_target () =
  let t = Native_pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Native_pool.shutdown t)
    (fun () ->
      let trail = Array.make 3 (-1) in
      Native_pool.spawn t ~core:0 ~name:"tourist" (fun () ->
          for d = 0 to 2 do
            O2_runtime.Api.ship_to d;
            trail.(d) <- Native_pool.current_domain t
          done);
      Native_pool.drain t;
      Array.iteri
        (fun d got -> checki "resumed on the shipped-to domain" d got)
        trail;
      checkb "coordinator is off-pool" true (Native_pool.current_domain t = -1))

let test_pool_exception_propagates () =
  let t = Native_pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Native_pool.shutdown t)
    (fun () ->
      let fine = Atomic.make 0 in
      for c = 0 to 9 do
        Native_pool.spawn t ~core:(c mod 2) ~name:"ok" (fun () ->
            Atomic.incr fine)
      done;
      Native_pool.spawn t ~core:0 ~name:"bad" (fun () -> failwith "boom");
      (match Native_pool.drain t with
      | () -> Alcotest.fail "drain should re-raise the client failure"
      | exception Failure m -> check Alcotest.string "client error" "boom" m);
      checki "other clients still completed" 10 (Atomic.get fine);
      (* The pool stays usable for the next batch. *)
      Native_pool.spawn t ~core:1 ~name:"again" (fun () -> Atomic.incr fine);
      Native_pool.drain t;
      checki "pool survives an error batch" 11 (Atomic.get fine))

let test_pool_yield_and_scale () =
  let t = Native_pool.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Native_pool.shutdown t)
    (fun () ->
      let hits = Atomic.make 0 in
      for _c = 0 to 4 do
        Native_pool.spawn t ~core:0 ~name:"yielder" (fun () ->
            for _ = 1 to 3 do
              Atomic.incr hits;
              O2_runtime.Api.yield ()
            done)
      done;
      Native_pool.drain t;
      checki "yielding clients all finish" 15 (Atomic.get hits);
      checkb "telemetry counted the resumes" true
        (Native_pool.tasks_executed t >= 15))

(* ------------------------------------------------------------------ *)
(* Backend counters and monitor invariants.                            *)
(* ------------------------------------------------------------------ *)

let test_backend_counters () =
  let b = Native_backend.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Native_backend.shutdown b)
    (fun () ->
      let o0 = Native_backend.register b ~size:64 ~name:"a" in
      let o1 = Native_backend.register b ~size:64 ~name:"b" in
      checki "round-robin initial homes" 0 (Native_backend.home b o0);
      checki "round-robin initial homes" 1 (Native_backend.home b o1);
      (match Native_backend.with_op b o0 (fun () -> ()) with
      | () -> Alcotest.fail "with_op off-pool must be rejected"
      | exception Invalid_argument _ -> ());
      for c = 0 to 3 do
        Native_backend.spawn b ~core:(c mod 2) ~name:"client" (fun () ->
            for i = 0 to 24 do
              let o = if i land 1 = 0 then o0 else o1 in
              Native_backend.with_op b o (fun () ->
                  Native_backend.compute b 10)
            done)
      done;
      Native_backend.run b;
      checki "ops_completed" 100 (Native_backend.ops_completed b);
      checki "object_ops o0" 52 (Native_backend.object_ops b o0);
      checki "object_ops o1" 48 (Native_backend.object_ops b o1);
      let out, in_ = Native_backend.ships b in
      checki "ship balance at quiescence" out in_;
      Native_backend.rebalance b;
      (* Another batch after a monitor step must keep every invariant. *)
      Native_backend.spawn b ~core:0 ~name:"client2" (fun () ->
          for _ = 1 to 10 do
            Native_backend.with_op b o0 (fun () -> ())
          done);
      Native_backend.run b;
      checki "ops accumulate across batches" 110
        (Native_backend.ops_completed b);
      checki "object_ops accumulate" 62 (Native_backend.object_ops b o0);
      let out, in_ = Native_backend.ships b in
      checki "ship balance after rebalance" out in_)

(* ------------------------------------------------------------------ *)
(* The oracle: same program, both backends, identical results.         *)
(* ------------------------------------------------------------------ *)

let oracle_ok r =
  if not r.Oracle.ok then
    Alcotest.fail (Format.asprintf "%a" Oracle.pp_report r)

let test_oracle_kv domains () =
  let r = Oracle.kv_cross_check ~domains () in
  oracle_ok r;
  let out, in_ = r.Oracle.native_ships in
  checki "native ships balance" out in_;
  if domains = 1 then checki "one domain never ships" 0 out

let test_oracle_dir () =
  let r = Oracle.dir_cross_check ~domains:2 () in
  oracle_ok r

let test_oracle_rejects_overflowable_buckets () =
  match
    Oracle.kv_cross_check ~domains:1 ~buckets:4 ~slots_per_bucket:2
      ~keyspace:128 ()
  with
  | _ -> Alcotest.fail "sizing that can overflow a bucket must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Native telemetry: merge order, span reconstruction, oracle parity.  *)
(* ------------------------------------------------------------------ *)

module Tel = O2_runtime.Telemetry
module Ntel = O2_obs.Native_tel

(* The k-way ring merge's contract, driven through record_at with
   arbitrary (unsorted) timestamps: each writer clamps its own stamps
   nondecreasing, a full ring drops the newest and counts it, and the
   merge emits a globally nondecreasing stream that loses nothing
   except those counted drops — the retained window is a per-sink
   prefix, never a torn middle. *)
let prop_merge_nondecreasing_lossless =
  QCheck2.Test.make
    ~name:"Telemetry merge: nondecreasing ts, loses only counted drops"
    ~count:300
    QCheck2.Gen.(
      pair (int_range 1 4)
        (pair (int_range 0 8)
           (list_size (int_range 0 200)
              (pair (int_range 0 4) (int_range 0 1000)))))
    (fun (domains, (cap, writes)) ->
      let tel = Tel.create ~ring_capacity:cap ~sample:1 ~domains () in
      let appended = Array.make (domains + 1) 0 in
      List.iter
        (fun (d, ts) ->
          let d = d mod (domains + 1) in
          let s = Tel.sink tel d in
          Tel.record_at s ~ts ~kind:Tel.Inbox_batch ~a:appended.(d) ~b:d ~c:0;
          appended.(d) <- appended.(d) + 1)
        writes;
      let events = Ntel.merged_events tel in
      let ok = ref true in
      let retained = ref 0 in
      for d = 0 to domains do
        let s = Tel.sink tel d in
        retained := !retained + Tel.length s;
        (* drop-newest accounting: retained + dropped = appended, and the
           retained window is exactly the first [cap] records. cap = 0 is
           metrics-only mode — the ring is disabled, not overflowing, so
           nothing is retained and nothing counts as dropped. *)
        if cap = 0 then begin
          if Tel.length s <> 0 || Tel.dropped s <> 0 then ok := false
        end
        else begin
          if Tel.length s + Tel.dropped s <> appended.(d) then ok := false;
          if Tel.length s <> min cap appended.(d) then ok := false
        end;
        for i = 0 to Tel.length s - 1 do
          if Tel.arg0 s i <> i || Tel.arg1 s i <> d then ok := false;
          if i > 0 && Tel.ts s i < Tel.ts s (i - 1) then ok := false
        done
      done;
      if Array.length events <> !retained then ok := false;
      Array.iteri
        (fun i (e : Ntel.event) ->
          if i > 0 then begin
            let p = events.(i - 1) in
            if e.Ntel.ts < p.Ntel.ts then ok := false;
            (* ties are broken toward the lower sink id, so within an
               equal-ts run sink ids never decrease *)
            if e.Ntel.ts = p.Ntel.ts && e.Ntel.sink < p.Ntel.sink then
              ok := false
          end)
        events;
      !ok)

(* The multi-domain stress the ISSUE asks for: an op stream that ships
   on (nearly) every op, reconstructed into spans whose events came
   from two different sinks. Ordering across sinks is meaningful
   because both domains read the same CLOCK_MONOTONIC. *)
let test_span_reconstruction_across_ship () =
  let domains = 2 in
  let tel = Tel.create ~domains () in
  let b = Native_backend.create ~telemetry:tel ~domains () in
  Fun.protect
    ~finally:(fun () -> Native_backend.shutdown b)
    (fun () ->
      let o0 = Native_backend.register b ~size:64 ~name:"a" in
      let o1 = Native_backend.register b ~size:64 ~name:"b" in
      let ops = 40 in
      (* Alternating targets homed on different domains: wherever the
         client body lands (spawn target or stolen), consecutive ops
         cannot both be local, so the stream keeps shipping. *)
      Native_backend.spawn b ~core:0 ~name:"client" (fun () ->
          for i = 0 to ops - 1 do
            let o = if i land 1 = 0 then o0 else o1 in
            Native_backend.with_op b o (fun () -> Native_backend.compute b 5)
          done);
      Native_backend.run b;
      let spans = Ntel.spans tel in
      checki "no spans lost to the ring bound" 0 (Ntel.incomplete_spans tel);
      checki "one span per op" ops (List.length spans);
      let out, _ = Native_backend.ships b in
      checki "shipped spans = the backend's own ship count" out
        (List.length (List.filter Ntel.shipped spans));
      checkb "the alternating client really shipped" true (out > 0);
      List.iter
        (fun (s : Ntel.span) ->
          checkb "submit <= start <= end" true
            (s.Ntel.submit_ts <= s.Ntel.start_ts
            && s.Ntel.start_ts <= s.Ntel.end_ts);
          checki "ops execute on the object's home"
            (Native_backend.home b s.Ntel.obj)
            s.Ntel.exec_sink;
          if Ntel.shipped s then begin
            checkb "ship handoff bracketed inside the span" true
              (s.Ntel.submit_ts <= s.Ntel.ship_out_ts
              && s.Ntel.ship_out_ts <= s.Ntel.ship_in_ts
              && s.Ntel.ship_in_ts <= s.Ntel.start_ts);
            checki "flow arrow lands on the executing domain"
              s.Ntel.exec_sink s.Ntel.ship_dst;
            checkb "shipped means cross-domain" true
              (s.Ntel.submit_sink <> s.Ntel.exec_sink)
          end
          else
            checki "home op stays on its submitter" s.Ntel.submit_sink
              s.Ntel.exec_sink)
        spans;
      (* The latency accumulators ride with_op locals, not the ring: they
         must have seen every op. *)
      let m = Ntel.metrics tel in
      checki "every op observed by the latency accumulators" ops
        (O2_obs.Hist.count (O2_obs.Metrics.hist m "op_ns/exec")))

(* The flight recorder must be an observer, not a participant: the
   oracle's bit-identical cross-check still holds with telemetry
   attached (sampled rings, so drop handling is exercised too). *)
let test_oracle_kv_with_telemetry domains () =
  let telemetry = Tel.create ~ring_capacity:(1 lsl 14) ~sample:7 ~domains () in
  let r = Oracle.kv_cross_check ~telemetry ~domains () in
  oracle_ok r;
  checkb "the recorder captured events" true (Tel.total_events telemetry > 0);
  let out, _ = r.Oracle.native_ships in
  checki "telemetry's ship count matches the backend's" out
    (Tel.fold_sinks telemetry ~init:0 ~f:(fun acc s -> acc + Tel.ships_out s))

let suite =
  [
    Alcotest.test_case "deque grow + FIFO/LIFO ends" `Quick test_deque_grow;
    QCheck_alcotest.to_alcotest prop_deque_matches_model;
    Alcotest.test_case "deque multi-domain stress" `Slow test_deque_stress;
    Alcotest.test_case "inbox MPSC per-producer FIFO" `Quick test_inbox_fifo;
    Alcotest.test_case "pool: shipping lands on target" `Quick
      test_pool_ship_lands_on_target;
    Alcotest.test_case "pool: client exception propagates" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "pool: yield keeps all work" `Quick
      test_pool_yield_and_scale;
    Alcotest.test_case "backend: counters and ship balance" `Quick
      test_backend_counters;
    Alcotest.test_case "oracle: kv at 1 domain" `Slow (test_oracle_kv 1);
    Alcotest.test_case "oracle: kv at 2 domains" `Slow (test_oracle_kv 2);
    Alcotest.test_case "oracle: kv at 4 domains" `Slow (test_oracle_kv 4);
    Alcotest.test_case "oracle: dir at 2 domains" `Slow test_oracle_dir;
    Alcotest.test_case "oracle: rejects overflowable buckets" `Quick
      test_oracle_rejects_overflowable_buckets;
    QCheck_alcotest.to_alcotest prop_merge_nondecreasing_lossless;
    Alcotest.test_case "telemetry: spans survive the ship handoff" `Quick
      test_span_reconstruction_across_ship;
    Alcotest.test_case "oracle: kv with telemetry at 1 domain" `Slow
      (test_oracle_kv_with_telemetry 1);
    Alcotest.test_case "oracle: kv with telemetry at 2 domains" `Slow
      (test_oracle_kv_with_telemetry 2);
    Alcotest.test_case "oracle: kv with telemetry at 4 domains" `Slow
      (test_oracle_kv_with_telemetry 4);
  ]
