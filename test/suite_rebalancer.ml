(* The runtime monitor in isolation: stepping it by hand against a machine
   whose counters we set directly. *)

open O2_simcore
open Coretime

let setup ?(policy = Policy.default) () =
  let machine = Machine.create Config.amd16 in
  let table = Object_table.create ~cores:16 ~budget_per_core:(1 lsl 20) in
  let rb = Rebalancer.create policy table machine in
  (machine, table, rb)

let register table n ~size =
  Array.init n (fun i ->
      Object_table.register table ~base:(i * 1000) ~size ~name:(Printf.sprintf "o%d" i) ())

(* Per-period ops go through [note_op] so the table's active-set index
   sees them, exactly as [Coretime.ct_end] records real operations. *)
let operate table o n =
  for _ = 1 to n do
    Object_table.note_op table o
  done

let period = Policy.default.Policy.rebalance_period

let set_busy machine core ratio =
  let c = Machine.counters machine core in
  c.Counters.busy_cycles <-
    c.Counters.busy_cycles + int_of_float (ratio *. float_of_int period);
  c.Counters.idle_cycles <-
    c.Counters.idle_cycles
    + int_of_float ((1.0 -. ratio) *. float_of_int period)

let test_demotion_under_pressure () =
  let machine, table, rb = setup () in
  (* fill past the pressure threshold with idle objects *)
  let objs = register table 15 ~size:(1 lsl 20) in
  Array.iteri (fun i o -> Object_table.assign table o (i mod 16)) objs;
  Alcotest.(check bool) "pressured" true (Object_table.occupancy table > 0.8);
  Rebalancer.step rb ~now:period;
  Alcotest.(check int) "not yet (needs 2 idle periods)" 0
    (Rebalancer.stats rb).Rebalancer.demotions;
  Rebalancer.step rb ~now:(2 * period);
  Alcotest.(check int) "all idle objects demoted" 15
    (Rebalancer.stats rb).Rebalancer.demotions;
  Alcotest.(check int) "table empty" 0 (Object_table.assigned_count table);
  ignore machine

let test_no_demotion_without_pressure () =
  let _, table, rb = setup () in
  let objs = register table 4 ~size:(1 lsl 18) in
  Array.iter (fun o -> Object_table.assign table o 0) objs;
  Rebalancer.step rb ~now:period;
  Rebalancer.step rb ~now:(2 * period);
  Rebalancer.step rb ~now:(3 * period);
  Alcotest.(check int) "assignments persist" 4 (Object_table.assigned_count table);
  Alcotest.(check int) "no demotions" 0 (Rebalancer.stats rb).Rebalancer.demotions

let test_active_objects_not_demoted () =
  let _, table, rb = setup () in
  let objs = register table 15 ~size:(1 lsl 20) in
  Array.iteri (fun i o -> Object_table.assign table o (i mod 16)) objs;
  for _ = 1 to 3 do
    (* object 0 keeps operating; the others are idle *)
    operate table objs.(0) 10;
    Rebalancer.step rb ~now:(period * (1 + (Rebalancer.stats rb).Rebalancer.periods))
  done;
  Alcotest.(check bool) "active object kept" true
    (objs.(0).Object_table.home <> None)

let test_moves_off_saturated_core () =
  let machine, table, rb = setup () in
  let objs = register table 8 ~size:(1 lsl 16) in
  Array.iter (fun o -> Object_table.assign table o 0) objs;
  Array.iter (fun o -> operate table o 100) objs;
  set_busy machine 0 0.99;
  for core = 1 to 15 do
    set_busy machine core 0.05
  done;
  Rebalancer.step rb ~now:period;
  Alcotest.(check bool) "objects moved" true
    ((Rebalancer.stats rb).Rebalancer.moves > 0);
  Alcotest.(check bool) "core 0 relieved" true
    (List.length (Object_table.assigned table ~core:0) < 8);
  Alcotest.(check bool) "accounting still sound" true
    (Result.is_ok (Object_table.check_accounting table))

let test_balanced_cores_stay_put () =
  let machine, table, rb = setup () in
  let objs = register table 16 ~size:(1 lsl 16) in
  Array.iteri (fun i o -> Object_table.assign table o i) objs;
  Array.iter (fun o -> operate table o 100) objs;
  for core = 0 to 15 do
    set_busy machine core 0.5
  done;
  Rebalancer.step rb ~now:period;
  Alcotest.(check int) "no moves" 0 (Rebalancer.stats rb).Rebalancer.moves

let test_ops_period_reset () =
  let _, table, rb = setup () in
  let objs = register table 3 ~size:1000 in
  operate table objs.(1) 42;
  Alcotest.(check int) "42 ops pending" 42 objs.(1).Object_table.ops_period;
  Alcotest.(check int) "on the active list" 1 (Object_table.active_count table);
  Rebalancer.step rb ~now:period;
  Alcotest.(check int) "reset after the period" 0 objs.(1).Object_table.ops_period;
  Alcotest.(check int) "active list drained" 0 (Object_table.active_count table)

let test_displacement_for_hotter () =
  let policy = { Policy.default with Policy.evict_for_hotter = true } in
  let _, table, rb = setup ~policy () in
  (* a full table of cold objects, plus one hot unassigned object *)
  let cold = register table 16 ~size:(1 lsl 20) in
  Array.iteri (fun i o -> Object_table.assign table o i) cold;
  let hot =
    Object_table.register table ~base:999999 ~size:(1 lsl 20) ~name:"hot" ()
  in
  Array.iter (fun o -> operate table o 1) cold;
  operate table hot 50;
  Rebalancer.step rb ~now:period;
  Alcotest.(check bool) "hot displaced a cold object" true
    (hot.Object_table.home <> None);
  Alcotest.(check int) "one displacement" 1
    (Rebalancer.stats rb).Rebalancer.displacements;
  Alcotest.(check bool) "accounting sound" true
    (Result.is_ok (Object_table.check_accounting table))

let suite =
  [
    Alcotest.test_case "stale objects demote under pressure" `Quick test_demotion_under_pressure;
    Alcotest.test_case "no pressure, no demotion" `Quick test_no_demotion_without_pressure;
    Alcotest.test_case "active objects survive demotion" `Quick test_active_objects_not_demoted;
    Alcotest.test_case "saturated cores shed objects" `Quick test_moves_off_saturated_core;
    Alcotest.test_case "balanced cores stay put" `Quick test_balanced_cores_stay_put;
    Alcotest.test_case "per-period op counts reset" `Quick test_ops_period_reset;
    Alcotest.test_case "frequency-aware replacement displaces cold objects" `Quick test_displacement_for_hotter;
  ]
