let () =
  Alcotest.run "o2sched"
    [
      ("lru", Suite_lru.suite);
      ("event-queue", Suite_event_queue.suite);
      ("domain-pool", Suite_domain_pool.suite);
      ("hotpath-alloc", Suite_hotpath.suite);
      ("config-topology", Suite_config.suite);
      ("counters", Suite_counters.suite);
      ("memsys-dram", Suite_memsys_dram.suite);
      ("machine", Suite_machine.suite);
      ("engine", Suite_engine.suite);
      ("sharded", Suite_sharded.suite);
      ("spinlock", Suite_spinlock.suite);
      ("fat", Suite_fat.suite);
      ("object-table", Suite_object_table.suite);
      ("cache-packing", Suite_packing.suite);
      ("coretime", Suite_coretime.suite);
      ("rebalancer", Suite_rebalancer.suite);
      ("clustering-ownership", Suite_clustering_ownership.suite);
      ("workload", Suite_workload.suite);
      ("btree", Suite_btree.suite);
      ("sched", Suite_sched.suite);
      ("stats", Suite_stats.suite);
      ("obs", Suite_obs.suite);
      ("experiments", Suite_experiments.suite);
      ("native", Suite_native.suite);
      ("analysis", Suite_analysis.suite);
      ("staticcheck", Suite_staticcheck.suite);
    ]
