open Coretime

let table () = Object_table.create ~cores:4 ~budget_per_core:1000

let test_register_and_find () =
  let t = table () in
  let o = Object_table.register t ~base:0x1000 ~size:100 ~name:"a" () in
  Alcotest.(check bool) "found by base" true (Object_table.find t 0x1000 = Some o);
  Alcotest.(check bool) "miss" true (Object_table.find t 0x2000 = None);
  Alcotest.(check int) "one object" 1 (Object_table.size t);
  Alcotest.(check bool) "unassigned" true (o.Object_table.home = None)

let test_register_rejects () =
  let t = table () in
  ignore (Object_table.register t ~base:0x1000 ~size:100 ~name:"a" ());
  Alcotest.(check bool) "duplicate base" true
    (match Object_table.register t ~base:0x1000 ~size:1 ~name:"b" () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "zero size" true
    (match Object_table.register t ~base:0x3000 ~size:0 ~name:"c" () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_assign_accounting () =
  let t = table () in
  let a = Object_table.register t ~base:1 ~size:400 ~name:"a" () in
  let b = Object_table.register t ~base:2 ~size:500 ~name:"b" () in
  Object_table.assign t a 0;
  Object_table.assign t b 0;
  Alcotest.(check int) "used" 900 (Object_table.used t 0);
  Alcotest.(check int) "free" 100 (Object_table.free_space t 0);
  Alcotest.(check int) "assigned count" 2 (Object_table.assigned_count t);
  (* moving updates both cores *)
  Object_table.assign t b 2;
  Alcotest.(check int) "source released" 400 (Object_table.used t 0);
  Alcotest.(check int) "destination charged" 500 (Object_table.used t 2);
  Object_table.unassign t a;
  Object_table.unassign t a;
  Alcotest.(check int) "unassign idempotent" 0 (Object_table.used t 0);
  Alcotest.(check bool) "accounting invariant" true
    (Result.is_ok (Object_table.check_accounting t))

let test_fits_and_place () =
  let t = table () in
  let big = Object_table.register t ~base:1 ~size:900 ~name:"big" () in
  let small = Object_table.register t ~base:2 ~size:200 ~name:"small" () in
  Object_table.assign t big 0;
  Alcotest.(check bool) "small does not fit core 0" false
    (Object_table.fits t ~core:0 small);
  Alcotest.(check bool) "small fits core 1" true (Object_table.fits t ~core:1 small);
  Alcotest.(check bool) "can place somewhere" true (Object_table.can_place t small);
  Alcotest.(check (float 0.001)) "occupancy" 0.225 (Object_table.occupancy t)

(* The compat shim is deprecated (it allocates per call), but where it
   survives, registration order is its contract — pinned here. *)
let test_objects_in_registration_order () =
  let t = table () in
  let names = [ "x"; "y"; "z" ] in
  List.iteri
    (fun i n -> ignore (Object_table.register t ~base:i ~size:1 ~name:n ()))
    names;
  Alcotest.(check (list string)) "order kept" names
    (List.map
       (fun o -> o.Object_table.name)
       ((Object_table.objects [@alert "-deprecated"]) t));
  Alcotest.(check (list string)) "iter agrees with the shim" names
    (List.rev
       (Object_table.fold t (fun acc o -> o.Object_table.name :: acc) []))

let names_assigned t core =
  List.rev
    (Object_table.fold_assigned t ~core (fun acc o ->
         o.Object_table.name :: acc) [])

(* Per-core assignment lists: membership tracks assign/unassign exactly,
   and [assigned] presents the union in registration order (the order the
   deprecated full-list shim guaranteed). *)
let test_assigned_lists () =
  let t = table () in
  let a = Object_table.register t ~base:1 ~size:10 ~name:"a" () in
  let b = Object_table.register t ~base:2 ~size:10 ~name:"b" () in
  let c = Object_table.register t ~base:3 ~size:10 ~name:"c" () in
  Object_table.assign t a 0;
  Object_table.assign t b 0;
  Object_table.assign t c 1;
  Alcotest.(check int) "core 0 holds two" 2
    (List.length (names_assigned t 0));
  Alcotest.(check (list string)) "core 1 holds c" [ "c" ] (names_assigned t 1);
  Alcotest.(check (list string)) "assigned is registration-ordered"
    [ "a"; "b" ]
    (List.map (fun o -> o.Object_table.name) (Object_table.assigned t ~core:0));
  (* moving relinks: off the old core's list, onto the new one *)
  Object_table.assign t b 1;
  Alcotest.(check bool) "b left core 0" true
    (not (List.mem "b" (names_assigned t 0)));
  Alcotest.(check bool) "b joined core 1" true
    (List.mem "b" (names_assigned t 1));
  Object_table.unassign t a;
  Alcotest.(check (list string)) "a unlinked" [] (names_assigned t 0);
  Alcotest.(check bool) "indexes consistent" true
    (Result.is_ok (Object_table.check_accounting t));
  (* removal-safe iteration: unassigning the visited object mid-walk *)
  Object_table.iter_assigned t ~core:1 (fun o -> Object_table.unassign t o);
  Alcotest.(check int) "core 1 drained in one pass" 0
    (Object_table.assigned_count t)

(* The active set: note_op enrolls an object exactly once, drain_active
   resets per-period counts and empties the list without touching
   never-operated objects. *)
let test_active_set () =
  let t = table () in
  let a = Object_table.register t ~base:1 ~size:10 ~name:"a" () in
  let b = Object_table.register t ~base:2 ~size:10 ~name:"b" () in
  ignore (Object_table.register t ~base:3 ~size:10 ~name:"c" ());
  Alcotest.(check int) "starts empty" 0 (Object_table.active_count t);
  Object_table.note_op t a;
  Object_table.note_op t a;
  Object_table.note_op t b;
  Alcotest.(check int) "two active" 2 (Object_table.active_count t);
  Alcotest.(check int) "ops_period counts" 2 a.Object_table.ops_period;
  Alcotest.(check int) "ops_total accumulates" 2 a.Object_table.ops_total;
  let seen = ref [] in
  Object_table.iter_active t (fun o -> seen := o.Object_table.name :: !seen);
  Alcotest.(check bool) "iter_active sees both" true
    (List.sort compare !seen = [ "a"; "b" ]);
  Object_table.drain_active t;
  Alcotest.(check int) "drained" 0 (Object_table.active_count t);
  Alcotest.(check int) "period reset" 0 a.Object_table.ops_period;
  Alcotest.(check int) "total survives" 2 a.Object_table.ops_total;
  (* re-enrollment after a drain works (the in_active flag was cleared) *)
  Object_table.note_op t b;
  Alcotest.(check int) "b re-enrolls" 1 (Object_table.active_count t);
  Alcotest.(check bool) "indexes consistent" true
    (Result.is_ok (Object_table.check_accounting t))

let prop_accounting_invariant =
  QCheck2.Test.make ~name:"budget accounting matches assignments" ~count:200
    QCheck2.Gen.(list_size (int_bound 100) (pair (int_bound 19) (int_bound 4)))
    (fun moves ->
      let t = Object_table.create ~cores:4 ~budget_per_core:100000 in
      let objs =
        Array.init 20 (fun i ->
            Object_table.register t ~base:i ~size:((i + 1) * 7) ~name:"o" ())
      in
      List.iter
        (fun (oi, core) ->
          if core = 4 then Object_table.unassign t objs.(oi)
          else Object_table.assign t objs.(oi) core)
        moves;
      Result.is_ok (Object_table.check_accounting t))

let suite =
  [
    Alcotest.test_case "register and find" `Quick test_register_and_find;
    Alcotest.test_case "register rejects bad input" `Quick test_register_rejects;
    Alcotest.test_case "assignment accounting" `Quick test_assign_accounting;
    Alcotest.test_case "fits / can_place / occupancy" `Quick test_fits_and_place;
    Alcotest.test_case "objects keep registration order" `Quick test_objects_in_registration_order;
    Alcotest.test_case "per-core assignment lists" `Quick test_assigned_lists;
    Alcotest.test_case "active set via note_op / drain_active" `Quick
      test_active_set;
    QCheck_alcotest.to_alcotest prop_accounting_invariant;
  ]
