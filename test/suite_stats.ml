open O2_stats

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_summary () =
  match Summary.of_list [ 1.0; 2.0; 3.0; 4.0; 5.0 ] with
  | None -> Alcotest.fail "summary"
  | Some s ->
      Alcotest.(check int) "n" 5 s.Summary.n;
      Alcotest.(check (float 1e-9)) "mean" 3.0 s.Summary.mean;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.Summary.min;
      Alcotest.(check (float 1e-9)) "max" 5.0 s.Summary.max;
      Alcotest.(check (float 1e-9)) "p50" 3.0 s.Summary.p50;
      Alcotest.(check (float 1e-9)) "p999" (1.0 +. (4.0 *. 0.999)) s.Summary.p999;
      Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.0) s.Summary.stddev;
      let rendered = Format.asprintf "%a" Summary.pp s in
      Alcotest.(check bool) "pp mentions p999" true
        (contains ~sub:"p999=" rendered)

let test_summary_empty_and_percentile () =
  Alcotest.(check bool) "empty" true (Summary.of_list [] = None);
  let sorted = [| 10.0; 20.0 |] in
  Alcotest.(check (float 1e-9)) "interpolated" 15.0 (Summary.percentile sorted 0.5);
  Alcotest.(check (float 1e-9)) "q=0" 10.0 (Summary.percentile sorted 0.0);
  Alcotest.(check (float 1e-9)) "q=1" 20.0 (Summary.percentile sorted 1.0);
  (* a single sample answers every quantile with itself *)
  Alcotest.(check (float 1e-9)) "single q=0" 7.0 (Summary.percentile [| 7.0 |] 0.0);
  Alcotest.(check (float 1e-9)) "single q=0.5" 7.0 (Summary.percentile [| 7.0 |] 0.5);
  Alcotest.(check (float 1e-9)) "single q=1" 7.0 (Summary.percentile [| 7.0 |] 1.0);
  (match Summary.of_list [ 7.0 ] with
  | None -> Alcotest.fail "single-sample summary"
  | Some s ->
      Alcotest.(check (float 1e-9)) "single p50" 7.0 s.Summary.p50;
      Alcotest.(check (float 1e-9)) "single p999" 7.0 s.Summary.p999;
      Alcotest.(check (float 1e-9)) "single stddev" 0.0 s.Summary.stddev);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Summary.percentile: empty") (fun () ->
      ignore (Summary.percentile [||] 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Summary.percentile: q out of range") (fun () ->
      ignore (Summary.percentile sorted 1.5))

let series l = Series.make ~label:"s" l

let test_series_sorted_and_lookup () =
  let s = series [ (3.0, 30.0); (1.0, 10.0); (2.0, 20.0) ] in
  Alcotest.(check (list (float 1e-9))) "xs sorted" [ 1.0; 2.0; 3.0 ] (Series.xs s);
  Alcotest.(check (option (float 1e-9))) "y_at hit" (Some 20.0) (Series.y_at s 2.0);
  Alcotest.(check (option (float 1e-9))) "y_at miss" None (Series.y_at s 2.5)

let test_series_interpolate () =
  let s = series [ (0.0, 0.0); (10.0, 100.0) ] in
  Alcotest.(check (option (float 1e-9))) "midpoint" (Some 50.0)
    (Series.interpolate s 5.0);
  Alcotest.(check (option (float 1e-9))) "endpoint" (Some 100.0)
    (Series.interpolate s 10.0);
  Alcotest.(check (option (float 1e-9))) "outside" None (Series.interpolate s 11.0)

let test_series_ratio_and_crossover () =
  let a = series [ (1.0, 10.0); (2.0, 10.0); (3.0, 40.0) ] in
  let b = Series.make ~label:"b" [ (1.0, 20.0); (2.0, 10.0); (3.0, 10.0) ] in
  let r = Series.ratio ~num:a ~den:b in
  Alcotest.(check (option (float 1e-9))) "ratio at 3" (Some 4.0) (Series.y_at r 3.0);
  Alcotest.(check (option (float 1e-9))) "crossover between 1 and 3" (Some 3.0)
    (Series.crossover ~a ~b);
  let b2 = Series.make ~label:"b2" [ (1.0, 1.0); (2.0, 1.0); (3.0, 1.0) ] in
  Alcotest.(check (option (float 1e-9))) "no crossover" None
    (Series.crossover ~a:b2 ~b:b2)

let test_series_max_y () =
  let s = series [ (1.0, 5.0); (2.0, 9.0); (3.0, 2.0) ] in
  match Series.max_y s with
  | Some p -> Alcotest.(check (float 1e-9)) "peak" 9.0 p.Series.y
  | None -> Alcotest.fail "max_y"

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_rule t;
  Table.add_row t [ "b"; "22222" ];
  let out = Table.render t in
  Alcotest.(check bool) "header present" true
    (String.length out > 0 && String.sub out 0 4 = "name");
  Alcotest.(check int) "2 data rows" 2 (Table.rows t);
  (* right alignment: "1" ends its column *)
  let lines = String.split_on_char '\n' out in
  let alpha_line = List.find (fun l -> String.length l > 0 && l.[0] = 'a') lines in
  Alcotest.(check bool) "right aligned" true
    (String.length alpha_line > 0
    && alpha_line.[String.length alpha_line - 1] = '1');
  Alcotest.check_raises "ragged row rejected"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "only-one" ])

let test_csv () =
  Alcotest.(check string) "plain" "a" (Csv.escape "a");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csv.escape "a\"b");
  let out = Csv.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ] in
  Alcotest.(check string) "rows" "x,y\n1,2\n3,4\n" out;
  let s1 = Series.make ~label:"a" [ (1.0, 2.0) ] in
  let s2 = Series.make ~label:"b" [ (1.0, 3.0); (2.0, 4.0) ] in
  Alcotest.(check string) "wide series format" "x,a,b\n1,2,3\n2,,4\n"
    (Csv.of_series [ s1; s2 ])

let test_ascii_plot () =
  let s = series [ (0.0, 0.0); (5.0, 50.0); (10.0, 100.0) ] in
  let out = Ascii_plot.render ~width:40 ~height:10 [ s ] in
  Alcotest.(check bool) "non-empty" true (String.length out > 0);
  Alcotest.(check bool) "contains the glyph" true (String.contains out '*');
  Alcotest.(check string) "empty input" "" (Ascii_plot.render [])

let suite =
  [
    Alcotest.test_case "summary statistics" `Quick test_summary;
    Alcotest.test_case "summary edge cases" `Quick test_summary_empty_and_percentile;
    Alcotest.test_case "series sorting and lookup" `Quick test_series_sorted_and_lookup;
    Alcotest.test_case "series interpolation" `Quick test_series_interpolate;
    Alcotest.test_case "series ratio and crossover" `Quick test_series_ratio_and_crossover;
    Alcotest.test_case "series max" `Quick test_series_max_y;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "csv escaping and series export" `Quick test_csv;
    Alcotest.test_case "ascii plot" `Quick test_ascii_plot;
  ]
