(* Unit and property tests for the array-based LRU set. The property test
   drives it against a naive reference model (a list ordered
   most-recently-used first). *)

open O2_simcore

let check = Alcotest.check
let intopt = Alcotest.(option int)

let test_create_invalid () =
  Alcotest.check_raises "zero capacity" (Invalid_argument "Lru.create: capacity must be positive")
    (fun () -> ignore (Lru.create ~cap:0))

let test_add_and_mem () =
  let t = Lru.create ~cap:3 in
  check intopt "no eviction" None (Lru.add t 1);
  check intopt "no eviction" None (Lru.add t 2);
  check intopt "no eviction" None (Lru.add t 3);
  check Alcotest.bool "mem 1" true (Lru.mem t 1);
  check intopt "evicts lru (1)" (Some 1) (Lru.add t 4);
  check Alcotest.bool "1 gone" false (Lru.mem t 1);
  check Alcotest.int "length" 3 (Lru.length t)

let test_touch_protects () =
  let t = Lru.create ~cap:3 in
  List.iter (fun k -> ignore (Lru.add t k)) [ 1; 2; 3 ];
  check Alcotest.bool "touch 1" true (Lru.touch t 1);
  (* now 2 is least recently used *)
  check intopt "evicts 2" (Some 2) (Lru.add t 4);
  check Alcotest.bool "1 survives" true (Lru.mem t 1)

let test_add_present_is_touch () =
  let t = Lru.create ~cap:2 in
  ignore (Lru.add t 1);
  ignore (Lru.add t 2);
  check intopt "re-add touches, no evict" None (Lru.add t 1);
  check intopt "then 2 is the victim" (Some 2) (Lru.add t 3)

let test_remove () =
  let t = Lru.create ~cap:2 in
  ignore (Lru.add t 1);
  ignore (Lru.add t 2);
  check Alcotest.bool "removed" true (Lru.remove t 1);
  check Alcotest.bool "second remove false" false (Lru.remove t 1);
  check Alcotest.int "length" 1 (Lru.length t);
  check intopt "room again" None (Lru.add t 3)

let test_order () =
  let t = Lru.create ~cap:4 in
  List.iter (fun k -> ignore (Lru.add t k)) [ 1; 2; 3; 4 ];
  check Alcotest.(list int) "mru first" [ 4; 3; 2; 1 ] (Lru.to_list t);
  ignore (Lru.touch t 2);
  check Alcotest.(list int) "touched to front" [ 2; 4; 3; 1 ] (Lru.to_list t);
  check intopt "lru key" (Some 1) (Lru.lru_key t)

let test_clear () =
  let t = Lru.create ~cap:4 in
  List.iter (fun k -> ignore (Lru.add t k)) [ 1; 2; 3 ];
  Lru.clear t;
  check Alcotest.int "empty" 0 (Lru.length t);
  check Alcotest.bool "gone" false (Lru.mem t 1);
  ignore (Lru.add t 9);
  check Alcotest.bool "usable after clear" true (Lru.mem t 9)

let test_capacity_one () =
  let t = Lru.create ~cap:1 in
  check intopt "fill" None (Lru.add t 1);
  check intopt "evict" (Some 1) (Lru.add t 2);
  check Alcotest.bool "only 2" true (Lru.mem t 2 && not (Lru.mem t 1))

(* cap=1 is the edge where the free-list terminator (index cap-1 = 0) and
   the list sentinel (index cap = 1) are adjacent; exercise every
   operation at that size and re-check the structural invariants. *)
let test_capacity_one_full_cycle () =
  let t = Lru.create ~cap:1 in
  let ok () =
    match Lru.check_invariants t with
    | Ok () -> ()
    | Error e -> Alcotest.failf "invariants: %s" e
  in
  check Alcotest.int "no victim on first fill" (-1) (Lru.add_evict t 5);
  ok ();
  check Alcotest.bool "touch present" true (Lru.touch t 5);
  check intopt "re-add present just touches" None (Lru.add t 5);
  check Alcotest.int "still one key" 1 (Lru.length t);
  check Alcotest.int "full set evicts its only key" 5 (Lru.add_evict t 6);
  ok ();
  check intopt "lru is the sole key" (Some 6) (Lru.lru_key t);
  check Alcotest.bool "remove" true (Lru.remove t 6);
  ok ();
  check Alcotest.int "empty after remove" 0 (Lru.length t);
  check Alcotest.int "slot reusable after remove" (-1) (Lru.add_evict t 7);
  Lru.clear t;
  ok ();
  check Alcotest.int "re-add after clear" (-1) (Lru.add_evict t 8);
  check Alcotest.bool "holds the new key" true (Lru.mem t 8);
  ok ()

(* Reference model: MRU-first list. *)
module Model = struct
  type t = { cap : int; mutable l : int list }

  let create cap = { cap; l = [] }
  let mem m k = List.mem k m.l
  let touch m k =
    if mem m k then begin
      m.l <- k :: List.filter (( <> ) k) m.l;
      true
    end
    else false

  let add m k =
    if touch m k then None
    else begin
      let victim =
        if List.length m.l >= m.cap then begin
          let rec last = function
            | [ x ] -> x
            | _ :: tl -> last tl
            | [] -> assert false
          in
          let v = last m.l in
          m.l <- List.filter (( <> ) v) m.l;
          Some v
        end
        else None
      in
      m.l <- k :: m.l;
      victim
    end

  let remove m k =
    let present = mem m k in
    m.l <- List.filter (( <> ) k) m.l;
    present
end

type op = Add of int | Touch of int | Remove of int

let op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun k -> Add k) (int_bound 40);
        map (fun k -> Touch k) (int_bound 40);
        map (fun k -> Remove k) (int_bound 40);
      ])

let prop_matches_model =
  QCheck2.Test.make ~name:"lru matches reference model" ~count:300
    QCheck2.Gen.(pair (int_range 1 12) (list_size (int_bound 200) op_gen))
    (fun (cap, ops) ->
      let t = Lru.create ~cap in
      let m = Model.create cap in
      List.for_all
        (fun op ->
          let same =
            match op with
            | Add k -> Lru.add t k = Model.add m k
            | Touch k -> Lru.touch t k = Model.touch m k
            | Remove k -> Lru.remove t k = Model.remove m k
          in
          same
          && Lru.to_list t = m.Model.l
          && Result.is_ok (Lru.check_invariants t))
        ops)

(* Same model check with keys at the top of the packed 25-bit range:
   table entries store [(key lsl 25) lor (slot+1)], so maximal keys
   exercise the high bits of the packed word and the single-load probe
   compare. A 64-key pool keeps the sequences collision-rich. *)
let wide_key_base = (1 lsl 25) - 64

let wide_op_gen =
  QCheck2.Gen.(
    oneof
      [
        map (fun k -> Add (wide_key_base + k)) (int_bound 63);
        map (fun k -> Touch (wide_key_base + k)) (int_bound 63);
        map (fun k -> Remove (wide_key_base + k)) (int_bound 63);
      ])

let prop_matches_model_wide_keys =
  QCheck2.Test.make ~name:"lru matches reference model (25-bit keys)"
    ~count:300
    QCheck2.Gen.(pair (int_range 1 12) (list_size (int_bound 200) wide_op_gen))
    (fun (cap, ops) ->
      let t = Lru.create ~cap in
      let m = Model.create cap in
      List.for_all
        (fun op ->
          let same =
            match op with
            | Add k -> Lru.add t k = Model.add m k
            | Touch k -> Lru.touch t k = Model.touch m k
            | Remove k -> Lru.remove t k = Model.remove m k
          in
          same
          && Lru.to_list t = m.Model.l
          && Result.is_ok (Lru.check_invariants t))
        ops)

let suite =
  [
    Alcotest.test_case "create rejects bad capacity" `Quick test_create_invalid;
    Alcotest.test_case "add, mem, evict" `Quick test_add_and_mem;
    Alcotest.test_case "touch protects from eviction" `Quick test_touch_protects;
    Alcotest.test_case "adding a present key touches" `Quick test_add_present_is_touch;
    Alcotest.test_case "remove frees a slot" `Quick test_remove;
    Alcotest.test_case "recency order" `Quick test_order;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "capacity one" `Quick test_capacity_one;
    Alcotest.test_case "capacity one: full operation cycle" `Quick
      test_capacity_one_full_cycle;
    QCheck_alcotest.to_alcotest prop_matches_model;
    QCheck_alcotest.to_alcotest prop_matches_model_wide_keys;
  ]
