(* The domain pool is the only real parallelism in the tree, so its
   contract — input order preserved, deterministic exception choice,
   reusable across batches — is what the parallel experiment harness's
   bit-identical-output guarantee rests on. *)

open O2_runtime

let test_map_preserves_order () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "map at jobs=%d" jobs)
        (List.map (fun x -> x * x) xs)
        (Domain_pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 4; 7 ]

let test_jobs_one_is_sequential () =
  (* jobs=1 must not spawn: the thunks run inline on the caller, so
     side-effect order is exactly List.map's *)
  let order = ref [] in
  let out =
    Domain_pool.map ~jobs:1
      (fun x ->
        order := x :: !order;
        x + 1)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results" [ 2; 3; 4 ] out;
  Alcotest.(check (list int)) "inline evaluation order" [ 3; 2; 1 ] !order

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" []
    (Domain_pool.map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 9 ]
    (Domain_pool.map ~jobs:4 (fun x -> x * 3) [ 3 ])

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      let raised =
        try
          ignore
            (Domain_pool.map ~jobs
               (fun x -> if x >= 3 then failwith (string_of_int x) else x)
               (List.init 11 Fun.id));
          None
        with Failure msg -> Some msg
      in
      (* several cells fail; the *smallest input index* must win whatever
         order the workers finished in *)
      Alcotest.(check (option string))
        (Printf.sprintf "first failing cell wins at jobs=%d" jobs)
        (Some "3") raised)
    [ 1; 2; 4 ]

let test_pool_reuse () =
  Domain_pool.with_pool ~jobs:3 (fun pool ->
      Alcotest.(check int) "width" 3 (Domain_pool.jobs pool);
      Alcotest.(check (list int)) "first batch" [ 2; 4; 6 ]
        (Domain_pool.run pool (fun x -> 2 * x) [ 1; 2; 3 ]);
      (* a failing batch must not poison the pool... *)
      (try ignore (Domain_pool.run pool (fun _ -> failwith "boom") [ 0 ])
       with Failure _ -> ());
      (* ...and a completed batch must leave it ready for the next *)
      Alcotest.(check (list int)) "batch after a failure" [ 10; 20 ]
        (Domain_pool.run pool (fun x -> 10 * x) [ 1; 2 ]))

let test_shutdown_idempotent () =
  let pool = Domain_pool.create ~jobs:2 in
  Alcotest.(check (list int)) "works before shutdown" [ 1 ]
    (Domain_pool.run pool Fun.id [ 1 ]);
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool

let test_create_rejects_nonpositive () =
  Alcotest.check_raises "jobs=0"
    (Invalid_argument "Domain_pool.create: jobs must be >= 1") (fun () ->
      ignore (Domain_pool.create ~jobs:0))

let suite =
  [
    Alcotest.test_case "map preserves input order" `Quick
      test_map_preserves_order;
    Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs_one_is_sequential;
    Alcotest.test_case "empty and singleton batches" `Quick
      test_empty_and_singleton;
    Alcotest.test_case "worker exception reaches the caller" `Quick
      test_exception_propagates;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "create rejects jobs <= 0" `Quick
      test_create_rejects_nonpositive;
  ]
