open Coretime

let item key bytes heat = { Cache_packing.key; bytes; heat }

let test_pack_hottest_first () =
  let items = [ item 1 600 1.0; item 2 600 3.0; item 3 600 2.0 ] in
  let placed, unplaced =
    Cache_packing.pack ~budget:1000 ~used:(Array.make 2 0) ~items
  in
  (* hottest (2) takes core 0; next (3) core 1; coldest (1) cannot fit *)
  Alcotest.(check (list (pair int int))) "placement"
    [ (2, 0); (3, 1) ]
    (List.map (fun (it, c) -> (it.Cache_packing.key, c)) placed);
  Alcotest.(check (list int)) "unplaced" [ 1 ]
    (List.map (fun it -> it.Cache_packing.key) unplaced)

let test_pack_respects_existing_use () =
  let used = [| 900; 0 |] in
  let placed, _ =
    Cache_packing.pack ~budget:1000 ~used ~items:[ item 1 500 1.0 ]
  in
  Alcotest.(check (list (pair int int))) "skips the full core" [ (1, 1) ]
    (List.map (fun (it, c) -> (it.Cache_packing.key, c)) placed);
  Alcotest.(check int) "input used untouched" 900 used.(0)

let test_pack_stable_on_ties () =
  let items = [ item 1 10 1.0; item 2 10 1.0; item 3 10 1.0 ] in
  let placed, _ = Cache_packing.pack ~budget:20 ~used:(Array.make 2 0) ~items in
  Alcotest.(check (list (pair int int))) "registration order on equal heat"
    [ (1, 0); (2, 0); (3, 1) ]
    (List.map (fun (it, c) -> (it.Cache_packing.key, c)) placed)

let test_place_one_first_fit () =
  let used = [| 900; 100; 0 |] in
  Alcotest.(check (option int)) "lowest core with space" (Some 1)
    (Cache_packing.place_one ~placement:Policy.First_fit ~budget:1000 ~used
       ~bytes:500 ())

let test_place_one_least_loaded () =
  let used = [| 900; 100; 0 |] in
  Alcotest.(check (option int)) "emptiest" (Some 2)
    (Cache_packing.place_one ~placement:Policy.Least_loaded ~budget:1000 ~used
       ~bytes:500 ());
  Alcotest.(check (option int)) "ties break to lowest id" (Some 0)
    (Cache_packing.place_one ~placement:Policy.Least_loaded ~budget:1000
       ~used:[| 5; 5 |] ~bytes:1 ())

let test_place_one_none_when_full () =
  let used = [| 999; 999 |] in
  List.iter
    (fun placement ->
      Alcotest.(check (option int)) "no space" None
        (Cache_packing.place_one ~placement ~budget:1000 ~used ~bytes:5 ()))
    [ Policy.First_fit; Policy.Least_loaded; Policy.Random_fit 7 ]

let test_place_one_random_feasible () =
  let used = [| 999; 0; 999; 0 |] in
  for nonce = 1 to 50 do
    match
      Cache_packing.place_one ~nonce ~placement:(Policy.Random_fit 11)
        ~budget:1000 ~used ~bytes:500 ()
    with
    | Some c when c = 1 || c = 3 -> ()
    | Some c -> Alcotest.failf "placed on full core %d" c
    | None -> Alcotest.fail "should fit"
  done;
  (* stateless: the same (seed, nonce) always lands on the same core *)
  let place nonce =
    Cache_packing.place_one ~nonce ~placement:(Policy.Random_fit 11)
      ~budget:1000 ~used ~bytes:500 ()
  in
  Alcotest.(check (option int)) "pure in (seed, nonce)" (place 7) (place 7)

let prop_never_over_budget =
  QCheck2.Test.make ~name:"pack never exceeds any core's budget" ~count:300
    QCheck2.Gen.(
      triple (int_range 1 1000)
        (list_size (int_bound 60) (pair (int_range 1 400) (float_range 0.0 10.0)))
        (int_range 1 8))
    (fun (budget, raw, cores) ->
      let items = List.mapi (fun i (b, h) -> item i b h) raw in
      let used = Array.make cores 0 in
      let placed, unplaced = Cache_packing.pack ~budget ~used ~items in
      let fill = Array.make cores 0 in
      List.iter
        (fun (it, c) -> fill.(c) <- fill.(c) + it.Cache_packing.bytes)
        placed;
      Array.for_all (fun u -> u <= budget) fill
      && List.length placed + List.length unplaced = List.length items)

let prop_unplaced_really_do_not_fit =
  QCheck2.Test.make ~name:"an unplaced item would not fit when it was tried"
    ~count:200
    QCheck2.Gen.(
      pair (int_range 1 500)
        (list_size (int_bound 40) (int_range 1 600)))
    (fun (budget, sizes) ->
      (* equal heat: pack tries items in order; greedy first fit means an
         unplaced item exceeds every core's remaining space at its turn,
         and with equal sizes processed in order that remains true at the
         end for the *largest* unplaced item *)
      let items = List.mapi (fun i b -> item i b 1.0) sizes in
      let placed, unplaced = Cache_packing.pack ~budget ~used:(Array.make 4 0) ~items in
      let fill = Array.make 4 0 in
      List.iter (fun (it, c) -> fill.(c) <- fill.(c) + it.Cache_packing.bytes) placed;
      List.for_all
        (fun it ->
          (* it must not fit in the final state either, since fills only grew *)
          Array.for_all (fun u -> u + it.Cache_packing.bytes > budget) fill)
        unplaced)

let suite =
  [
    Alcotest.test_case "hottest objects pack first" `Quick test_pack_hottest_first;
    Alcotest.test_case "existing use respected" `Quick test_pack_respects_existing_use;
    Alcotest.test_case "deterministic on ties" `Quick test_pack_stable_on_ties;
    Alcotest.test_case "place_one first-fit" `Quick test_place_one_first_fit;
    Alcotest.test_case "place_one least-loaded" `Quick test_place_one_least_loaded;
    Alcotest.test_case "place_one with no space" `Quick test_place_one_none_when_full;
    Alcotest.test_case "place_one random stays feasible" `Quick test_place_one_random_feasible;
    QCheck_alcotest.to_alcotest prop_never_over_budget;
    QCheck_alcotest.to_alcotest prop_unplaced_really_do_not_fit;
  ]
