(* o2staticcheck against known-bad fixtures (test/fixtures/staticcheck):
   each violation class must produce exactly the expected diagnostic, the
   escape hatches must silence exactly what they claim, and the repo's
   own build tree must come back clean. *)

module SC = O2_staticcheck

(* The test binary runs from _build/default/test; the fixture library's
   cmts sit alongside it. Keep a source-tree fallback for direct runs. *)
let fixture_dir () =
  List.find_opt
    (fun d -> Sys.file_exists d && Sys.is_directory d)
    [
      "fixtures/staticcheck/.staticcheck_fixtures.objs/byte";
      "_build/default/test/fixtures/staticcheck/.staticcheck_fixtures.objs/byte";
    ]

let load_fixture short =
  match fixture_dir () with
  | None -> Alcotest.fail "fixture cmts not built (dune build test)"
  | Some dir -> (
      let path =
        Filename.concat dir ("staticcheck_fixtures__" ^ short ^ ".cmt")
      in
      match SC.Cmt_load.load path with
      | Some m -> m
      | None -> Alcotest.fail ("cannot load fixture cmt " ^ path))

let codes findings =
  List.sort compare (List.map (fun f -> f.SC.Finding.code) findings)

let funcs_with ~code findings =
  List.sort compare
    (List.filter_map
       (fun f ->
         if f.SC.Finding.code = code then Some f.SC.Finding.func else None)
       findings)

let test_alloc_fixture () =
  let m = load_fixture "Fx_alloc" in
  let manifest =
    [
      {
        SC.Manifest.module_ = "Fx_alloc";
        functions =
          [
            "boxed_pair"; "consing"; "closure_maker"; "annotated"; "clean";
            "does_not_exist";
          ];
      };
    ]
  in
  let fs = SC.Alloc_check.check_module ~manifest m in
  Alcotest.(check (list string))
    "one finding per allocating construct"
    [ "alloc-closure"; "alloc-construct"; "alloc-tuple"; "manifest-missing" ]
    (codes fs);
  Alcotest.(check (list string))
    "tuple blamed on boxed_pair" [ "boxed_pair" ]
    (funcs_with ~code:"alloc-tuple" fs);
  Alcotest.(check (list string))
    "cons blamed on consing" [ "consing" ]
    (funcs_with ~code:"alloc-construct" fs);
  Alcotest.(check (list string))
    "capture blamed on closure_maker" [ "closure_maker" ]
    (funcs_with ~code:"alloc-closure" fs);
  Alcotest.(check (list string))
    "missing manifest entry reported" [ "does_not_exist" ]
    (funcs_with ~code:"manifest-missing" fs)

let test_effect_fixture () =
  let m = load_fixture "Fx_listener" in
  Alcotest.(check int)
    "all three listeners discovered" 3
    (List.length (SC.Effect_check.listeners m));
  let fs = SC.Effect_check.check_module m in
  Alcotest.(check (list string))
    "print and Api flagged; parameter-rooted counter clean"
    [ "effect-api"; "effect-io" ] (codes fs)

let test_lock_fixture () =
  let m = load_fixture "Fx_lock" in
  let fs = SC.Lock_check.check_module m in
  Alcotest.(check (list string))
    "each discipline violation flagged once"
    [ "lock-alloc"; "lock-blocking"; "lock-leak"; "lock-underflow" ]
    (codes fs);
  List.iter
    (fun (code, func) ->
      Alcotest.(check (list string))
        (code ^ " blamed on " ^ func)
        [ func ]
        (funcs_with ~code fs))
    [
      ("lock-leak", "leak");
      ("lock-blocking", "blocking");
      ("lock-alloc", "alloc_under");
      ("lock-underflow", "underflow");
    ]

let test_raw_fixture () =
  let m = load_fixture "Fx_raw" in
  Alcotest.(check (list string))
    "raw mutex and Obj.magic flagged" [ "obj-magic"; "raw-mutex" ]
    (codes (SC.Raw_use.check_module m));
  Alcotest.(check (list string))
    "allowlisting the source keeps only Obj.magic" [ "obj-magic" ]
    (codes
       (SC.Raw_use.check_module ~allowlist:[ m.SC.Cmt_load.source ] m))

(* The lib/native diagnostic surface: an allocating steal loop and a
   closure-per-task dispatch must fire the alloc pass, a raw
   Domain.spawn outside the shims must fire the raw pass, and the
   dummy-sentinel steal must come back clean. *)
let test_native_fixture () =
  let m = load_fixture "Fx_native" in
  let manifest =
    [
      {
        SC.Manifest.module_ = "Fx_native";
        functions =
          [ "steal_boxed"; "dispatch_capturing"; "drain_consing"; "clean_steal" ];
      };
    ]
  in
  let fs = SC.Alloc_check.check_module ~manifest m in
  Alcotest.(check (list string))
    "boxed steal, consing drain and capturing dispatch flagged"
    [ "alloc-closure"; "alloc-construct"; "alloc-construct" ]
    (codes fs);
  Alcotest.(check (list string))
    "option boxing blamed on the steal loop; sentinel steal clean"
    [ "drain_consing"; "steal_boxed" ]
    (funcs_with ~code:"alloc-construct" fs);
  Alcotest.(check (list string))
    "closure blamed on dispatch" [ "dispatch_capturing" ]
    (funcs_with ~code:"alloc-closure" fs);
  Alcotest.(check (list string))
    "raw Domain.spawn flagged outside the shims" [ "raw-domain" ]
    (codes (SC.Raw_use.check_module m))

(* The repo's own tree must be clean: every hot path either allocation-
   free or annotated, every listener effect-free, every lock balanced. *)
let test_clean_tree () =
  (* ".." is _build/default under dune runtest; "." covers running the
     binary by hand from a source root with _build/default beneath it. *)
  let result =
    match SC.Staticcheck.run ~root:".." () with
    | Ok r -> Ok r
    | Error _ -> SC.Staticcheck.run ~root:"." ()
  in
  match result with
  | Error e -> Alcotest.fail ("clean-tree run failed to find cmts: " ^ e)
  | Ok r ->
      Alcotest.(check (list string))
        "no findings on the repo tree" []
        (List.map (Format.asprintf "%a" SC.Finding.pp) r.SC.Staticcheck.findings);
      Alcotest.(check bool)
        "a useful number of modules scanned" true
        (r.SC.Staticcheck.modules_scanned > 50);
      Alcotest.(check int)
        "whole manifest resolved"
        (SC.Manifest.total_functions SC.Manifest.default)
        r.SC.Staticcheck.manifest_functions;
      Alcotest.(check bool)
        "listeners were actually checked" true
        (r.SC.Staticcheck.listeners_checked > 0)

let suite =
  [
    Alcotest.test_case "allocating hot path fixture" `Quick test_alloc_fixture;
    Alcotest.test_case "effectful listener fixture" `Quick test_effect_fixture;
    Alcotest.test_case "lock discipline fixture" `Quick test_lock_fixture;
    Alcotest.test_case "raw primitive fixture" `Quick test_raw_fixture;
    Alcotest.test_case "native backend fixture" `Quick test_native_fixture;
    Alcotest.test_case "repo tree is clean" `Quick test_clean_tree;
  ]
