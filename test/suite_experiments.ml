(* Experiment-level checks: the latency table matches Section 5 exactly,
   the registry is sound, and a scaled-down Figure 4 point reproduces the
   paper's qualitative claim (CoreTime wins once data exceeds the per-chip
   L3). *)

open O2_experiments

let test_latency_matches_paper () =
  Alcotest.(check (float 1e-9)) "simulated machine hits the paper's numbers"
    0.0
    (Latency_table.max_deviation ())

let test_latency_rows_complete () =
  let rows = Latency_table.all () in
  Alcotest.(check int) "nine probes" 9 (List.length rows);
  let migration = List.nth rows 8 in
  Alcotest.(check int) "migration measures 2000" 2000
    migration.Latency_table.measured_cycles

let test_registry_sound () =
  let ids = Registry.ids () in
  Alcotest.(check bool) "non-empty" true (ids <> []);
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e -> Alcotest.(check string) "find returns the entry" id e.Registry.id
      | None -> Alcotest.failf "missing %s" id)
    ids;
  Alcotest.(check bool) "unknown id is an error" true
    (Result.is_error
       (Registry.run_ids ~quick:true ~jobs:1 Format.str_formatter [ "nope" ]));
  Alcotest.(check bool) "default set non-empty" true
    (List.exists (fun e -> e.Registry.default_set) Registry.all)

let test_harness_point_shape () =
  let spec = O2_workload.Dir_workload.spec_for_data_kb ~kb:1024 () in
  let p =
    Harness.run
      (Harness.setup ~policy:Coretime.Policy.baseline ~warmup:2_000_000
         ~measure:2_000_000 spec)
  in
  Alcotest.(check int) "data size recorded" 1024 p.Harness.data_kb;
  Alcotest.(check bool) "ops measured" true (p.Harness.ops > 0);
  Alcotest.(check bool) "throughput positive" true (p.Harness.kres_per_sec > 0.0);
  Alcotest.(check int) "baseline never migrates" 0 p.Harness.op_migrations

let test_kb_ladder () =
  let full = Harness.kb_ladder ~quick:false in
  let quick = Harness.kb_ladder ~quick:true in
  Alcotest.(check bool) "quick is a subset" true
    (List.for_all (fun kb -> List.mem kb full) quick);
  Alcotest.(check bool) "covers the paper's range" true
    (List.hd full <= 256 && List.nth full (List.length full - 1) >= 20480);
  Alcotest.(check bool) "sorted" true (List.sort compare full = full)

(* The headline claim, scaled down: at 6.4 MB (beyond every L3, inside
   total on-chip memory) CoreTime beats the thread scheduler by a wide
   margin; at 1 MB (fits in each chip's L3) they are comparable. *)
let test_paper_claim_beyond_l3 () =
  let run policy kb =
    let spec = O2_workload.Dir_workload.spec_for_data_kb ~kb () in
    (Harness.run
       (Harness.setup ~policy ~warmup:30_000_000 ~measure:15_000_000 spec))
      .Harness.kres_per_sec
  in
  let base = run Coretime.Policy.baseline 6400 in
  let ct = run Coretime.Policy.default 6400 in
  Alcotest.(check bool)
    (Printf.sprintf "CoreTime wins beyond L3 (%.0f vs %.0f)" ct base)
    true
    (ct > 1.5 *. base)

let test_paper_claim_fits_in_l3 () =
  let run policy kb =
    let spec = O2_workload.Dir_workload.spec_for_data_kb ~kb () in
    (Harness.run
       (Harness.setup ~policy ~warmup:10_000_000 ~measure:10_000_000 spec))
      .Harness.kres_per_sec
  in
  let base = run Coretime.Policy.baseline 1024 in
  let ct = run Coretime.Policy.default 1024 in
  Alcotest.(check bool)
    (Printf.sprintf "no collapse when data fits on chip (%.0f vs %.0f)" ct base)
    true
    (ct > 0.8 *. base)

(* The tentpole guarantee of the parallel harness: dispatching cells
   through the domain pool changes wall-clock only, never results. Every
   point field is an int or a float computed from per-cell state, so
   structural equality is bit-identity. *)
let test_parallel_sweep_bit_identical () =
  let cells =
    List.concat_map
      (fun kb ->
        let spec = O2_workload.Dir_workload.spec_for_data_kb ~kb () in
        List.map
          (fun policy ->
            Harness.setup ~policy ~warmup:2_000_000 ~measure:2_000_000 spec)
          [ Coretime.Policy.baseline; Coretime.Policy.default ])
      [ 256; 1024 ]
  in
  let seq = Harness.run_cells ~jobs:1 cells in
  let par = Harness.run_cells ~jobs:4 cells in
  Alcotest.(check int) "cell count" (List.length cells) (List.length par);
  Alcotest.(check bool) "jobs=4 rows bit-identical to jobs=1" true (seq = par)

(* Golden rows: the indexed object table and allocation-free rebalance
   path are pure reorganisations of the monitor's bookkeeping, so the
   fig4(a)/(b) small sweeps and the ablation grid must stay bit-identical
   to the pre-index implementation. The digests below were captured from
   the full-scan monitor (commit a3b9012); every point field — floats
   included — is marshalled, so any drift in promotion, demotion,
   displacement, or move decisions shows up here. Checked at several
   --jobs widths (widths above the core count clamp, by design). *)
let digest_points (points : Harness.point list) =
  Digest.to_hex (Digest.string (Marshal.to_string points []))

let golden_cells ~oscillation =
  List.concat_map
    (fun kb ->
      let spec = O2_workload.Dir_workload.spec_for_data_kb ~kb () in
      List.map
        (fun policy ->
          Harness.setup ~policy ~warmup:2_000_000 ~measure:2_000_000
            ?oscillation spec)
        [ Coretime.Policy.baseline; Coretime.Policy.default ])
    [ 256; 1024 ]

let golden_ablation_cells () =
  let spec = O2_workload.Dir_workload.spec_for_data_kb ~kb:1024 () in
  List.map
    (fun policy ->
      Harness.setup ~policy ~warmup:2_000_000 ~measure:2_000_000 spec)
    [
      Coretime.Policy.baseline;
      { Coretime.Policy.default with Coretime.Policy.evict_for_hotter = true };
      { Coretime.Policy.default with Coretime.Policy.replicate_read_only = true };
      { Coretime.Policy.default with Coretime.Policy.op_shipping = true };
      { Coretime.Policy.default with Coretime.Policy.clustering = true };
    ]

let check_golden ?attach name cells ~digest ~total_ops =
  let points = Harness.run_cells ?attach ~jobs:1 cells in
  Alcotest.(check int)
    (name ^ ": total measured ops")
    total_ops
    (List.fold_left (fun a p -> a + p.Harness.ops) 0 points);
  Alcotest.(check string)
    (name ^ ": rows bit-identical to the pre-index monitor")
    digest (digest_points points);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "%s: bit-identical at jobs=%d" name jobs)
        digest
        (digest_points (Harness.run_cells ?attach ~jobs cells)))
    [ 2; 4 ]

let test_golden_fig4a () =
  check_golden "fig4a-small" (golden_cells ~oscillation:None)
    ~digest:"881b2ecc755a2780629f98822c71d67c" ~total_ops:8996

let test_golden_fig4b () =
  check_golden "fig4b-small"
    (golden_cells
       ~oscillation:(Some { Harness.period = 500_000; divisor = 4 }))
    ~digest:"112fb861a3f196562a10bb1fca246594" ~total_ops:6205

let test_golden_ablations () =
  check_golden "ablation-small"
    (golden_ablation_cells ())
    ~digest:"43cec61125686ca9e489d44ec90266e0" ~total_ops:6196

(* The cache observatory's standing invariant: occupancy, heat and
   provenance trackers only observe, so running the same golden cells
   with the full observatory attached — at every --jobs width — must
   reproduce the same digests bit for bit. *)
let observatory_attach _cell engine =
  ignore
    (O2_obs.Occupancy.attach ~interval:200_000
       (O2_runtime.Engine.machine engine));
  ignore (O2_obs.Heat.attach engine);
  ignore (O2_obs.Provenance.attach engine)

let test_golden_fig4a_observed () =
  check_golden "fig4a-small+observatory" ~attach:observatory_attach
    (golden_cells ~oscillation:None)
    ~digest:"881b2ecc755a2780629f98822c71d67c" ~total_ops:8996

let test_golden_fig4b_observed () =
  check_golden "fig4b-small+observatory" ~attach:observatory_attach
    (golden_cells
       ~oscillation:(Some { Harness.period = 500_000; divisor = 4 }))
    ~digest:"112fb861a3f196562a10bb1fca246594" ~total_ops:6205

let test_golden_ablations_observed () =
  check_golden "ablation-small+observatory" ~attach:observatory_attach
    (golden_ablation_cells ())
    ~digest:"43cec61125686ca9e489d44ec90266e0" ~total_ops:6196

let test_validate_obs () =
  Alcotest.(check bool) "defaults validate" true
    (Result.is_ok (Harness.validate_obs Harness.no_obs));
  let check_rejected name obs =
    match Harness.validate_obs obs with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s should have been rejected" name
  in
  check_rejected "trace_sample 0"
    { Harness.no_obs with Harness.trace_sample = 0 };
  check_rejected "trace_sample negative"
    { Harness.no_obs with Harness.trace_sample = -3 };
  check_rejected "occupancy_interval 0"
    { Harness.no_obs with Harness.occupancy_interval = 0 };
  check_rejected "heat_top 0" { Harness.no_obs with Harness.heat_top = 0 }

let test_jobs_clamped () =
  let avail = O2_runtime.Domain_pool.default_jobs () in
  Alcotest.(check int) "within the core count is untouched" 1
    (Harness.effective_jobs ~jobs:1);
  Alcotest.(check int) "oversubscription clamps to the core count" avail
    (Harness.effective_jobs ~jobs:(avail + 7))

let test_fig2_partitioning () =
  let o2 = Fig2.run_one ~policy:Fig2.o2_policy ~scheduler:"o2" in
  let thread =
    Fig2.run_one ~policy:Coretime.Policy.baseline ~scheduler:"thread"
  in
  Alcotest.(check bool) "O2 keeps more distinct data on chip" true
    (o2.Fig2.distinct_lines > thread.Fig2.distinct_lines);
  Alcotest.(check bool) "O2 leaves no more off-chip than the thread scheduler"
    true
    (List.length o2.Fig2.off_chip <= List.length thread.Fig2.off_chip)

let suite =
  [
    Alcotest.test_case "latencies match Section 5" `Quick test_latency_matches_paper;
    Alcotest.test_case "latency table is complete" `Quick test_latency_rows_complete;
    Alcotest.test_case "experiment registry" `Quick test_registry_sound;
    Alcotest.test_case "harness point fields" `Quick test_harness_point_shape;
    Alcotest.test_case "figure 4 x-axis ladder" `Quick test_kb_ladder;
    Alcotest.test_case "parallel sweep is bit-identical" `Slow
      test_parallel_sweep_bit_identical;
    Alcotest.test_case "golden rows: figure 4(a) small" `Slow test_golden_fig4a;
    Alcotest.test_case "golden rows: figure 4(b) small" `Slow test_golden_fig4b;
    Alcotest.test_case "golden rows: ablation grid" `Slow test_golden_ablations;
    Alcotest.test_case "golden rows: figure 4(a) with the observatory" `Slow
      test_golden_fig4a_observed;
    Alcotest.test_case "golden rows: figure 4(b) with the observatory" `Slow
      test_golden_fig4b_observed;
    Alcotest.test_case "golden rows: ablations with the observatory" `Slow
      test_golden_ablations_observed;
    Alcotest.test_case "observability knob validation" `Quick test_validate_obs;
    Alcotest.test_case "run_cells clamps jobs to the core count" `Quick
      test_jobs_clamped;
    Alcotest.test_case "paper claim: CoreTime wins beyond L3" `Slow test_paper_claim_beyond_l3;
    Alcotest.test_case "paper claim: parity when data fits" `Slow test_paper_claim_fits_in_l3;
    Alcotest.test_case "figure 2: O2 partitions the caches" `Slow test_fig2_partitioning;
  ]
