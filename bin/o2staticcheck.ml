(* o2staticcheck: typedtree passes over the repo's own .cmt files.

   Reads the trees `dune build @check` leaves under _build, runs the
   allocation / effect-freedom / lock-discipline / raw-primitive passes,
   and prints findings as text or JSON. Exit 1 on findings, 2 when no
   build tree is found — a CI gate must not silently pass because the
   cmts were never built. *)

open Cmdliner

let run root build_dir json json_out exit_zero =
  let build_dir = if build_dir = "" then None else Some build_dir in
  match O2_staticcheck.Staticcheck.run ?build_dir ~root () with
  | Error e ->
      Printf.eprintf "o2staticcheck: %s\n" e;
      2
  | Ok report ->
      let js = O2_staticcheck.Staticcheck.report_to_json report in
      (match json_out with
      | "" -> ()
      | path ->
          let oc = open_out path in
          output_string oc js;
          close_out oc);
      if json then print_string js
      else
        Format.printf "%a" O2_staticcheck.Staticcheck.pp_report report;
      if report.O2_staticcheck.Staticcheck.findings = [] || exit_zero then 0
      else 1

let root_arg =
  let doc =
    "Directory to search for .cmt files (a source root containing \
     _build/default, or a build tree itself)."
  in
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)

let build_dir_arg =
  let doc = "Explicit build tree (overrides discovery under $(b,--root))." in
  Arg.(value & opt string "" & info [ "build-dir" ] ~docv:"DIR" ~doc)

let json_arg =
  let doc = "Print the report as JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let json_out_arg =
  let doc = "Also write the JSON report to $(docv)." in
  Arg.(value & opt string "" & info [ "json-out" ] ~docv:"FILE" ~doc)

let exit_zero_arg =
  let doc =
    "Exit 0 even with findings (for artifact-producing runs that must \
     not gate)."
  in
  Arg.(value & flag & info [ "exit-zero" ] ~doc)

let cmd =
  let doc =
    "typedtree-based allocation, effect, and lock-discipline analysis"
  in
  Cmd.v
    (Cmd.info "o2staticcheck" ~version:"1.0.0" ~doc)
    Term.(
      const run $ root_arg $ build_dir_arg $ json_arg $ json_out_arg
      $ exit_zero_arg)

let () = exit (Cmd.eval' cmd)
