(* o2lint: the o2check analysis passes as a CI gate.

   Three stages, any diagnostic fails the run (exit 1):

   1. source lint over lib/ and examples/ (surface idiom, missing .mli)
      plus the o2staticcheck typedtree passes (allocation manifest,
      listener effect-freedom, lock discipline, raw primitives) over the
      build's own .cmt files;
   2. the dynamic checkers (lockset race detector, lock-order graph, O2
      invariants) over a quickstart-shaped workload: annotated operations
      on shared tables plus a lock-protected shared counter;
   3. the same checkers over a small Figure-4 configuration: the paper's
      directory-lookup benchmark with oscillating popularity, so the
      rebalancer runs and is audited while it works.

   `dune build @lint` runs this over the tree. *)

open Cmdliner
open O2_simcore
open O2_runtime

let banner title = Printf.printf "== %s ==\n%!" title

(* Stage 2: the quickstart workload, bounded so every thread finishes and
   the end-of-life checks (open ops, locks held at exit) also run. *)
let check_quickstart () =
  let machine = Machine.create Config.amd16 in
  let engine = Engine.create machine in
  let ct = Coretime.create ~policy:Coretime.Policy.default engine () in
  let check = O2_analysis.Analysis.attach ct in
  let mem = Machine.memory machine in
  let table_size = 64 * 1024 in
  let tables =
    Array.init 4 (fun i ->
        let ext =
          Memsys.alloc mem ~name:(Printf.sprintf "table%d" i) ~size:table_size
        in
        ignore
          (Coretime.register ct ~base:ext.Memsys.base ~size:table_size
             ~name:ext.Memsys.name ());
        ext.Memsys.base)
  in
  let counter = Memsys.alloc_isolated mem ~name:"ops-counter" ~size:8 in
  let counter_lock = Spinlock.create mem ~name:"ops-counter-lock" in
  let ncores = Engine.cores engine in
  for core = 0 to ncores - 1 do
    let rng = O2_workload.Rng.create ~seed:(0xC0DE + core) in
    ignore
      (Engine.spawn engine ~core ~name:(Printf.sprintf "worker%d" core)
         (fun () ->
           for _ = 1 to 60 do
             let table = tables.(O2_workload.Rng.int rng ~bound:4) in
             Coretime.ct_start ct table;
             ignore (Api.read ~addr:table ~len:table_size);
             Api.compute 500;
             (* a shared mutable word, correctly lock-protected *)
             Api.lock counter_lock;
             ignore (Api.read ~addr:counter.Memsys.base ~len:8);
             ignore (Api.write ~addr:counter.Memsys.base ~len:8);
             Api.unlock counter_lock;
             Coretime.ct_end ct
           done))
  done;
  Engine.run engine;
  O2_analysis.Analysis.finish check;
  let stats = Coretime.stats ct in
  Printf.printf
    "quickstart workload: %d ops, %d promotions, %d migrations, lock \
     acquired %d times (%d contended)\n"
    stats.Coretime.ops stats.Coretime.promotions stats.Coretime.op_migrations
    (Spinlock.acquisitions counter_lock)
    (Spinlock.contended counter_lock);
  check

(* Stage 3: a small Figure-4 point with oscillating popularity — the
   monitor moves objects while the checkers watch the table. *)
let check_fig4_small () =
  let machine = Machine.create Config.amd16 in
  let engine = Engine.create machine in
  let ct = Coretime.create ~policy:Coretime.Policy.default engine () in
  let check = O2_analysis.Analysis.attach ct in
  let spec = O2_workload.Dir_workload.spec_for_data_kb ~kb:1024 () in
  let w = O2_workload.Dir_workload.build ct spec in
  O2_workload.Dir_workload.spawn_threads w;
  O2_workload.Phase.oscillate_active engine w ~period:1_500_000 ~divisor:4;
  Engine.run ~until:6_000_000 engine;
  O2_analysis.Analysis.finish check;
  Printf.printf
    "figure-4 small (%d KB, %d dirs): %d lookups, %d rebalancer periods\n"
    (O2_workload.Dir_workload.data_kb spec)
    spec.O2_workload.Dir_workload.dirs
    (O2_workload.Dir_workload.lookups_done w)
    (Coretime.Rebalancer.stats (Coretime.rebalancer ct))
      .Coretime.Rebalancer.periods;
  (* The audit above ran after every Rebalanced event; finish with one
     explicit pass over the final table so the index cross-check (per-core
     assignment lists, active set vs ops_period) is visibly part of the
     gate even if the run ended between periods. *)
  (match Coretime.Object_table.check_accounting (Coretime.table ct) with
  | Ok () ->
      Printf.printf
        "object-table index audit: consistent (%d assigned, %d active)\n"
        (Coretime.Object_table.assigned_count (Coretime.table ct))
        (Coretime.Object_table.active_count (Coretime.table ct))
  | Error e -> Printf.printf "object-table index audit: FAILED: %s\n" e);
  check

let print_dynamic name check =
  let open O2_analysis in
  if Analysis.is_clean check then begin
    Printf.printf "%s: clean\n" name;
    0
  end
  else begin
    Format.printf "%a" Analysis.pp check;
    Report.count (Analysis.report check) + Report.dropped (Analysis.report check)
  end

let run_lint root skip_source skip_dynamic =
  if not (Sys.file_exists (Filename.concat root "lib")) then begin
    (* A CI gate must not silently pass because of a typo'd path. *)
    Printf.eprintf "o2lint: %s/lib does not exist (wrong --root?)\n" root;
    exit 2
  end;
  let issues = ref 0 in
  if not skip_source then begin
    banner "source lint (lib/, examples/)";
    let diags = O2_analysis.Lint.scan_tree ~root in
    List.iter
      (fun d -> Format.printf "%a@." O2_analysis.Diagnostic.pp d)
      diags;
    if diags = [] then print_endline "source tree: clean";
    issues := !issues + List.length diags;
    banner "static passes (typedtree: alloc / effect / lock / raw)";
    (match O2_staticcheck.Staticcheck.run ~root () with
    | Error e ->
        (* Tolerated: a source-only checkout has no cmts. The dedicated
           @lint-source rule depends on @check, so in CI this branch is
           never taken silently. *)
        Printf.printf "static passes: skipped (%s)\n" e
    | Ok r ->
        Format.printf "%a" O2_staticcheck.Staticcheck.pp_report r;
        issues :=
          !issues + List.length r.O2_staticcheck.Staticcheck.findings)
  end;
  if not skip_dynamic then begin
    banner "dynamic checks: quickstart workload";
    issues := !issues + print_dynamic "quickstart" (check_quickstart ());
    banner "dynamic checks: figure-4 small";
    issues := !issues + print_dynamic "figure-4 small" (check_fig4_small ())
  end;
  if !issues = 0 then begin
    print_endline "o2lint: no diagnostics";
    0
  end
  else begin
    Printf.printf "o2lint: %d diagnostic(s)\n" !issues;
    1
  end

let root_arg =
  let doc = "Repository root to scan (containing lib/ and examples/)." in
  Arg.(value & opt string "." & info [ "root" ] ~docv:"DIR" ~doc)

let skip_source_arg =
  let doc = "Skip the source lint stage." in
  Arg.(value & flag & info [ "skip-source" ] ~doc)

let skip_dynamic_arg =
  let doc = "Skip the dynamic (simulation) checker stages." in
  Arg.(value & flag & info [ "skip-dynamic" ] ~doc)

let cmd =
  let doc =
    "o2check: race / invariant analysis over the O2 runtime, plus source lint"
  in
  Cmd.v
    (Cmd.info "o2lint" ~version:"1.0.0" ~doc)
    Term.(const run_lint $ root_arg $ skip_source_arg $ skip_dynamic_arg)

let () = exit (Cmd.eval' cmd)
