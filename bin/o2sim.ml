(* o2sim: command-line front end for the CoreTime reproduction.

   `o2sim list` shows the experiment catalogue; `o2sim run fig4a ...`
   regenerates figures/tables; `o2sim machine` describes the simulated
   hardware. *)

open Cmdliner

let list_cmd =
  let doc = "List the experiment catalogue." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-26s %-55s [%s]%s\n" e.O2_experiments.Registry.id
          e.O2_experiments.Registry.title e.O2_experiments.Registry.paper_ref
          (if e.O2_experiments.Registry.default_set then " (default)" else ""))
      O2_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let quick_arg =
  let doc = "Shorter warmup and measurement windows (x1/4, fewer points)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let ids_arg =
  let doc =
    "Experiment ids to run (see $(b,o2sim list)); default: the paper's \
     figures and tables."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let all_arg =
  let doc = "Run every experiment in the catalogue, ablations included." in
  Arg.(value & flag & info [ "all"; "a" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for experiments that sweep independent simulation \
     cells (default: the detected core count). $(b,--jobs 1) runs \
     everything sequentially; results are bit-identical whatever the \
     value."
  in
  Arg.(
    value
    & opt int (O2_runtime.Domain_pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let shards_arg =
  let doc =
    "Run each simulation cell on the windowed sharded engine with \
     min($(docv), chips) worker domains (0 = the classic serial engine). \
     Results are bit-identical for every positive value — the logical \
     shard is always one chip — but intentionally differ from serial \
     runs: cross-chip coherence is windowed instead of instantaneous \
     (DESIGN.md, 'Sharded time'). Honoured by the figure-4 sweeps and \
     the harness-based ablations; composes with $(b,--jobs); \
     incompatible with the observability flags."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)

let out_arg =
  let doc = "Also write the report to this file." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let backend_arg =
  let doc =
    "$(b,sim) (default) runs experiments on the deterministic simulated \
     machine; $(b,native) runs the object/operation model on real OCaml 5 \
     domains instead — wall-clock kv/dir throughput plus the \
     simulator-as-oracle cross-check (DESIGN.md, 'Two backends, one \
     API'). Native mode takes no experiment ids; $(b,--metrics), \
     $(b,--trace) and $(b,--trace-sample) attach the wall-clock flight \
     recorder, while the flags that read simulated state \
     ($(b,--shards)/$(b,--occupancy)/$(b,--heat)/$(b,--explain)) are \
     refused with a pointer at what to use instead."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("sim", `Sim); ("native", `Native) ]) `Sim
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

let domains_arg =
  let doc =
    "Worker domains for $(b,--backend native), clamped to the detected \
     core count. The throughput ladder always includes 1/2/4 (taken \
     literally); this adds one more point and sizes the oracle run."
  in
  Arg.(value & opt int 2 & info [ "domains" ] ~docv:"N" ~doc)

let bench_json_arg =
  let doc =
    "With $(b,--backend native): also write the oracle verdicts and \
     throughput rows as JSON to $(docv) (the BENCH_native.json CI \
     artifact)."
  in
  Arg.(
    value & opt (some string) None & info [ "bench-json" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Attach the flight recorder's metrics registry and print latency \
     histograms / counters (quickstart, figures, and the ablations that \
     support per-cell metric columns). With $(b,--backend native): attach \
     the wall-clock telemetry sinks and print the o2top readout in \
     nanoseconds plus a per-domain steal/ship/park breakdown."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_arg =
  let doc =
    "Record the run with the flight recorder and write Chrome/Perfetto \
     trace_event JSON to $(docv) (load it at https://ui.perfetto.dev). On \
     figure sweeps the trace covers one representative 8 MB cell; with \
     $(b,--backend native) it covers the observed kv cell — wall-clock \
     time, one track per domain, ship handoffs as flow arrows."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_sample_arg =
  let doc =
    "Keep 1-in-$(docv) memory-access events in the trace ring (1 = all). \
     Operation spans, migrations, and monitor periods are always kept. \
     With $(b,--backend native) the sampling applies to op spans instead; \
     steals, parks, inbox batches, and rebalances are always kept."
  in
  Arg.(value & opt int 1 & info [ "trace-sample" ] ~docv:"N" ~doc)

let occupancy_arg =
  let doc =
    "Attach the cache observatory's occupancy tracker and print the \
     per-cache occupancy table (quickstart) or per-cell chip-line columns \
     (figures and ablations). Implied for the traced cell whenever \
     $(b,--trace) is given, so the Perfetto export always carries its \
     occupancy counter tracks."
  in
  Arg.(value & flag & info [ "occupancy" ] ~doc)

let occupancy_interval_arg =
  let doc =
    "Occupancy sampling interval in simulated cycles: every $(docv) \
     cycles the tracker snapshots per-cache line/object counts for the \
     timeline and the Perfetto counter tracks."
  in
  Arg.(
    value
    & opt int O2_experiments.Harness.no_obs.O2_experiments.Harness.occupancy_interval
    & info [ "occupancy-interval" ] ~docv:"CYCLES" ~doc)

let heat_arg =
  let doc =
    "Attach the cache observatory's per-object heat tracker and print the \
     top-$(b,--heat-top) table (ops, hits per level, fills, evictions) \
     after the run (quickstart)."
  in
  Arg.(value & flag & info [ "heat" ] ~doc)

let heat_top_arg =
  let doc = "Rows in the $(b,--heat) table (hottest objects first)." in
  Arg.(value & opt int 10 & info [ "heat-top" ] ~docv:"K" ~doc)

let explain_arg =
  let doc =
    "Record scheduler decision provenance and print every promotion, \
     migration, demotion, and rebalance decision with the inputs and \
     scores that produced it (quickstart; see also $(b,o2explain))."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let run_cmd =
  let doc = "Run experiments and print paper-shaped tables and figures." in
  let run quick all jobs shards backend domains bench_json out metrics trace
      trace_sample occupancy occupancy_interval heat heat_top explain ids =
    if jobs < 1 then begin
      prerr_endline "o2sim: --jobs must be at least 1";
      exit 1
    end;
    if shards < 0 then begin
      prerr_endline "o2sim: --shards must be at least 0";
      exit 1
    end;
    (match backend with
    | `Sim ->
        if bench_json <> None then begin
          prerr_endline "o2sim: --bench-json requires --backend native";
          exit 1
        end
    | `Native ->
        if domains < 1 then begin
          prerr_endline "o2sim: --domains must be at least 1";
          exit 1
        end;
        if ids <> [] || all then begin
          prerr_endline
            "o2sim: --backend native runs its own experiment — drop the \
             experiment ids / --all";
          exit 1
        end;
        (* Per-flag validation: --metrics/--trace/--trace-sample drive
           the native flight recorder; the flags that read simulated
           state get a precise refusal each. *)
        if shards > 0 then begin
          prerr_endline
            "o2sim: --shards shards a simulated cell and only applies to \
             --backend sim; --backend native already runs on real domains \
             (size it with --domains)";
          exit 1
        end;
        if occupancy then begin
          prerr_endline
            "o2sim: --occupancy reads the simulated memory system's cache \
             observatory; real caches are not modeled, so it only applies \
             to --backend sim. Native telemetry: --metrics / --trace";
          exit 1
        end;
        if heat then begin
          prerr_endline
            "o2sim: --heat ranks objects by simulated cache hits/fills and \
             only applies to --backend sim. Native telemetry: --metrics / \
             --trace";
          exit 1
        end;
        if explain then begin
          prerr_endline
            "o2sim: --explain records the simulated scheduler's decision \
             provenance and only applies to --backend sim (the native \
             monitor's rebalances appear in --trace instead)";
          exit 1
        end;
        if trace_sample < 1 then begin
          prerr_endline
            "o2sim: --trace-sample must be >= 1 (1 keeps every op span, N \
             keeps 1-in-N; steals/parks/rebalances are always kept)";
          exit 1
        end);
    if
      shards > 0
      && (metrics || trace <> None || occupancy || heat || explain)
    then begin
      prerr_endline
        "o2sim: --shards is incompatible with the observability flags \
         (--metrics/--trace/--occupancy/--heat/--explain): sharded cells \
         keep probes inactive";
      exit 1
    end;
    let obs =
      {
        O2_experiments.Harness.metrics;
        trace;
        trace_sample;
        occupancy;
        occupancy_interval;
        heat;
        heat_top;
        explain;
      }
    in
    (match O2_experiments.Harness.validate_obs obs with
    | Ok () -> ()
    | Error msg ->
        prerr_endline ("o2sim: " ^ msg);
        exit 1);
    let ids = if all then O2_experiments.Registry.ids () else ids in
    let finish ppf result =
      Format.pp_print_flush ppf ();
      match result with
      | Ok () -> ()
      | Error msg ->
          prerr_endline ("o2sim: " ^ msg);
          exit 1
    in
    let go ppf =
      match backend with
      | `Native ->
          if
            O2_experiments.Native_exp.run_cli ~quick ~domains ~json:bench_json
              ~metrics ~trace ~trace_sample ppf
          then Ok ()
          else Error "native backend: oracle cross-check FAILED"
      | `Sim -> O2_experiments.Registry.run_ids ~obs ~shards ~quick ~jobs ppf ids
    in
    match out with
    | None -> finish Format.std_formatter (go Format.std_formatter)
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            let buf = Buffer.create 4096 in
            let ppf = Format.formatter_of_buffer buf in
            let result = go ppf in
            Format.pp_print_flush ppf ();
            output_string oc (Buffer.contents buf);
            print_string (Buffer.contents buf);
            finish Format.std_formatter result)
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run $ quick_arg $ all_arg $ jobs_arg $ shards_arg $ backend_arg
      $ domains_arg $ bench_json_arg $ out_arg $ metrics_arg $ trace_arg
      $ trace_sample_arg $ occupancy_arg $ occupancy_interval_arg $ heat_arg
      $ heat_top_arg $ explain_arg $ ids_arg)

let machine_cmd =
  let doc = "Describe the simulated machines." in
  let run () =
    List.iter
      (fun cfg ->
        Format.printf "%a@." O2_simcore.Config.pp cfg;
        Format.printf "  topology: %a@." O2_simcore.Topology.pp
          (O2_simcore.Topology.create cfg);
        Format.printf "  on-chip capacity: %d KB; per-core packing budget: %d KB@.@."
          (O2_simcore.Config.on_chip_capacity cfg / 1024)
          (O2_simcore.Config.per_core_budget cfg / 1024))
      [ O2_simcore.Config.amd16; O2_simcore.Config.small4; O2_simcore.Config.future64 ]
  in
  Cmd.v (Cmd.info "machine" ~doc) Term.(const run $ const ())

let main =
  let doc =
    "CoreTime: an O2 (object/operation) scheduler reproduction \
     (Boyd-Wickizer et al., HotOS 2009)"
  in
  Cmd.group
    (Cmd.info "o2sim" ~version:"1.0.0" ~doc)
    [ list_cmd; run_cmd; machine_cmd ]

let () = exit (Cmd.eval main)
