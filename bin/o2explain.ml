(* o2explain: the cache-observatory report as its own front end.

   Runs the bounded quickstart workload with the full observatory
   attached — occupancy, heat, and decision provenance — and prints the
   heat table, the per-cache occupancy summary, and every scheduler
   decision explained with the inputs and scores that produced it. *)

open Cmdliner

let quick_arg =
  let doc = "Half the scans per core (faster, fewer decisions)." in
  Arg.(value & flag & info [ "quick"; "q" ] ~doc)

let top_arg =
  let doc = "Rows in the heat table (hottest objects first)." in
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)

let out_arg =
  let doc = "Also write the report to this file." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let main =
  let doc =
    "Explain CoreTime's scheduling: cache occupancy, object heat, and \
     decision provenance over a bounded deterministic run"
  in
  let run quick top out =
    if top < 1 then begin
      prerr_endline "o2explain: --top must be >= 1";
      exit 1
    end;
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    O2_experiments.Quickstart_exp.explain ~top ~quick ppf;
    Format.pp_print_flush ppf ();
    print_string (Buffer.contents buf);
    match out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Buffer.contents buf))
  in
  Cmd.v
    (Cmd.info "o2explain" ~version:"1.0.0" ~doc)
    Term.(const run $ quick_arg $ top_arg $ out_arg)

let () = exit (Cmd.eval main)
