(** Interconnect topology: chips arranged on a square(ish) grid, as in the
    paper's AMD system where four chips sit on a square interconnect.

    Chips are laid out row-major on a grid of width [ceil(sqrt chips)];
    distance between chips is the Manhattan hop count. *)

type t

val create : Config.t -> t

val hops : t -> int -> int -> int
(** [hops t a b] is the interconnect distance between chips [a] and [b];
    0 when [a = b]. *)

val max_hops : t -> int
(** Largest hop count between any two chips (the "most distant" bank). *)

val remote_cache_latency : t -> from_chip:int -> to_chip:int -> int
(** Cycles to fetch a line from a cache on [to_chip] as seen from
    [from_chip]: [remote_same_chip] plus [remote_hop] per hop. *)

val dram_latency : t -> from_chip:int -> home_chip:int -> int
(** Cycles (latency component only) to load a line whose home DRAM bank is
    on [home_chip]: [dram_latency] plus [dram_hop] per hop. *)

val home_chip : t -> addr:int -> int
(** DRAM home bank for an address: pages are interleaved round-robin
    across chips. *)

val pp : Format.formatter -> t -> unit
