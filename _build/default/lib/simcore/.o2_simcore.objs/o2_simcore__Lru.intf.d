lib/simcore/lru.mli:
