lib/simcore/cache.mli:
