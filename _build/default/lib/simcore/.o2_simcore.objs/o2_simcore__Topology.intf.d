lib/simcore/topology.mli: Config Format
