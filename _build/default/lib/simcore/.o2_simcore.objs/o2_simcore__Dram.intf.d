lib/simcore/dram.mli: Config Topology
