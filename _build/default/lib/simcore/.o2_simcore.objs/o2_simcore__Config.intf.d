lib/simcore/config.mli: Format
