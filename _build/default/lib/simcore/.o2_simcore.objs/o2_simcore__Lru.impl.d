lib/simcore/lru.ml: Array Hashtbl List
