lib/simcore/memsys.ml: Array Hashtbl Printf
