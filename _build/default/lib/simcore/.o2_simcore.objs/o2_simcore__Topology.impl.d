lib/simcore/topology.ml: Config Format
