lib/simcore/config.ml: Format
