lib/simcore/presence.ml: Array
