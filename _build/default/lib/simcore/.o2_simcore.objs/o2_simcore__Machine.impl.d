lib/simcore/machine.ml: Array Cache Config Counters Dram Format Hashtbl List Memsys Option Presence Topology
