lib/simcore/counters.mli: Format
