lib/simcore/counters.ml: Array Format
