lib/simcore/dram.ml: Array Config Topology
