lib/simcore/machine.mli: Cache Config Counters Dram Memsys Topology
