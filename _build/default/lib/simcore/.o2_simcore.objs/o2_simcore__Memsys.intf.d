lib/simcore/memsys.mli:
