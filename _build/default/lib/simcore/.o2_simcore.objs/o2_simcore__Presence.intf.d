lib/simcore/presence.mli:
