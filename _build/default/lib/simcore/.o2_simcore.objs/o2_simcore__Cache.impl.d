lib/simcore/cache.ml: Lru Printf
