(* Open-addressing linear-probe table: line -> (core mask, chip mask).
   Stored unboxed in parallel int arrays ([keys] holds line + 1 so 0 means
   empty); entries whose masks both reach zero are deleted with
   backward-shift, keeping probe chains short. This sits on the miss path
   of every simulated load, so it must not allocate. *)

type t = {
  mutable keys : int array;  (* line + 1; 0 = empty *)
  mutable cores_ : int array;
  mutable chips_ : int array;
  mutable mask : int;
  mutable size : int;
}

let initial_bits = 16

let create () =
  let n = 1 lsl initial_bits in
  {
    keys = Array.make n 0;
    cores_ = Array.make n 0;
    chips_ = Array.make n 0;
    mask = n - 1;
    size = 0;
  }

let hash t line = (line * 0x2545F491) land t.mask

let probe t line =
  let k = line + 1 in
  let i = ref (hash t line) in
  while t.keys.(!i) <> 0 && t.keys.(!i) <> k do
    i := (!i + 1) land t.mask
  done;
  !i

let rec grow t =
  let old_keys = t.keys and old_cores = t.cores_ and old_chips = t.chips_ in
  let n = 2 * (t.mask + 1) in
  t.keys <- Array.make n 0;
  t.cores_ <- Array.make n 0;
  t.chips_ <- Array.make n 0;
  t.mask <- n - 1;
  t.size <- 0;
  Array.iteri
    (fun i k ->
      if k <> 0 then insert_masks t (k - 1) old_cores.(i) old_chips.(i))
    old_keys

and insert_masks t line cores chips =
  if 2 * (t.size + 1) > t.mask + 1 then grow t;
  let i = probe t line in
  if t.keys.(i) = 0 then begin
    t.keys.(i) <- line + 1;
    t.size <- t.size + 1
  end;
  t.cores_.(i) <- t.cores_.(i) lor cores;
  t.chips_.(i) <- t.chips_.(i) lor chips

let delete_at t i =
  t.keys.(i) <- 0;
  t.cores_.(i) <- 0;
  t.chips_.(i) <- 0;
  t.size <- t.size - 1;
  let i = ref i in
  let j = ref ((!i + 1) land t.mask) in
  while t.keys.(!j) <> 0 do
    let h = (t.keys.(!j) - 1) * 0x2545F491 land t.mask in
    if (!j - h) land t.mask >= (!j - !i) land t.mask then begin
      t.keys.(!i) <- t.keys.(!j);
      t.cores_.(!i) <- t.cores_.(!j);
      t.chips_.(!i) <- t.chips_.(!j);
      t.keys.(!j) <- 0;
      t.cores_.(!j) <- 0;
      t.chips_.(!j) <- 0;
      i := !j
    end;
    j := (!j + 1) land t.mask
  done

let set_core t ~line ~core = insert_masks t line (1 lsl core) 0
let set_chip t ~line ~chip = insert_masks t line 0 (1 lsl chip)

let clear_core t ~line ~core =
  let i = probe t line in
  if t.keys.(i) <> 0 then begin
    t.cores_.(i) <- t.cores_.(i) land lnot (1 lsl core);
    if t.cores_.(i) = 0 && t.chips_.(i) = 0 then delete_at t i
  end

let clear_chip t ~line ~chip =
  let i = probe t line in
  if t.keys.(i) <> 0 then begin
    t.chips_.(i) <- t.chips_.(i) land lnot (1 lsl chip);
    if t.cores_.(i) = 0 && t.chips_.(i) = 0 then delete_at t i
  end

let core_holders t ~line =
  let i = probe t line in
  if t.keys.(i) = 0 then 0 else t.cores_.(i)

let chip_holders t ~line =
  let i = probe t line in
  if t.keys.(i) = 0 then 0 else t.chips_.(i)

let cached_anywhere t ~line =
  let i = probe t line in
  t.keys.(i) <> 0 && (t.cores_.(i) <> 0 || t.chips_.(i) <> 0)

(* Iterate set bits of [mask], calling [f] with each bit index, lowest
   first. *)
let iter_bits mask f =
  let rec idx b i = if b = 1 then i else idx (b lsr 1) (i + 1) in
  let m = ref mask in
  while !m <> 0 do
    let bit = !m land (- !m) in
    f (idx bit 0);
    m := !m land lnot bit
  done

let nearest_core_holder t ~line ~exclude_core ~chip_of_core ~from_chip ~hops =
  let mask = core_holders t ~line land lnot (1 lsl exclude_core) in
  if mask = 0 then None
  else begin
    let best = ref (-1) and best_h = ref max_int in
    iter_bits mask (fun core ->
        let h = hops from_chip (chip_of_core core) in
        if h < !best_h then begin
          best_h := h;
          best := core
        end);
    Some !best
  end

let nearest_chip_holder t ~line ~exclude_chip ~from_chip ~hops =
  let mask = chip_holders t ~line land lnot (1 lsl exclude_chip) in
  if mask = 0 then None
  else begin
    let best = ref (-1) and best_h = ref max_int in
    iter_bits mask (fun chip ->
        let h = hops from_chip chip in
        if h < !best_h then begin
          best_h := h;
          best := chip
        end);
    Some !best
  end

let tracked_lines t = t.size

let iter f t =
  Array.iteri
    (fun i k -> if k <> 0 then f (k - 1) ~cores:t.cores_.(i) ~chips:t.chips_.(i))
    t.keys
