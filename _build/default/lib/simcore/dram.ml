type controller = { mutable free_at : int; mutable served : int }

type t = {
  cfg : Config.t;
  topo : Topology.t;
  controllers : controller array;
}

let create cfg topo =
  {
    cfg;
    topo;
    controllers =
      Array.init cfg.Config.chips (fun _ -> { free_at = 0; served = 0 });
  }

let fetch t ~now ~from_chip ~home_chip ~lines =
  if lines <= 0 then 0
  else begin
    let c = t.controllers.(home_chip) in
    let start = max now c.free_at in
    let service = lines * t.cfg.Config.dram_service in
    c.free_at <- start + service;
    c.served <- c.served + lines;
    let latency = Topology.dram_latency t.topo ~from_chip ~home_chip in
    start - now + latency + service
  end

let controller_free_at t ~chip = t.controllers.(chip).free_at
let lines_served t ~chip = t.controllers.(chip).served

let total_lines_served t =
  Array.fold_left (fun acc c -> acc + c.served) 0 t.controllers

let utilization t ~now =
  if now <= 0 then 0.0
  else begin
    let busy =
      Array.fold_left
        (fun acc c ->
          acc +. float_of_int (c.served * t.cfg.Config.dram_service))
        0.0 t.controllers
    in
    busy /. (float_of_int now *. float_of_int (Array.length t.controllers))
  end

let reset t =
  Array.iter
    (fun c ->
      c.free_at <- 0;
      c.served <- 0)
    t.controllers
