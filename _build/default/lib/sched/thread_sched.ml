let name = "thread-round-robin"

let assign ~threads ~cores ~cores_per_chip:_ ~similarity:_ =
  if threads < 0 || cores <= 0 then invalid_arg "Thread_sched.assign";
  Array.init threads (fun i -> i mod cores)
