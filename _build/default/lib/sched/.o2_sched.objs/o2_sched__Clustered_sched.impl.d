lib/sched/clustered_sched.ml: Array List
