lib/sched/sched_intf.ml:
