lib/sched/thread_sched.ml: Array
