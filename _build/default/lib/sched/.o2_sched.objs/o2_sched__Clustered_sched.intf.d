lib/sched/clustered_sched.mli: Sched_intf
