lib/sched/thread_sched.mli: Sched_intf
