let name = "thread-clustering"

(* Greedy agglomerative grouping: visit thread pairs in decreasing
   similarity; join a pair when one side is grouped and the other is not
   (or seed a new group), subject to balanced group capacity. Leftover
   threads fill the emptiest groups. *)
let clusters ~threads ~groups ~similarity =
  if threads < 0 || groups <= 0 then invalid_arg "Clustered_sched.clusters";
  let cluster_of = Array.make threads (-1) in
  let cap = (threads + groups - 1) / groups in
  let count = Array.make groups 0 in
  let next_group = ref 0 in
  let pairs = ref [] in
  for a = 0 to threads - 1 do
    for b = a + 1 to threads - 1 do
      pairs := (similarity a b, a, b) :: !pairs
    done
  done;
  let pairs =
    List.stable_sort
      (fun (s1, a1, b1) (s2, a2, b2) ->
        if s1 <> s2 then compare s2 s1 else compare (a1, b1) (a2, b2))
      !pairs
  in
  let place thread group =
    if count.(group) < cap then begin
      cluster_of.(thread) <- group;
      count.(group) <- count.(group) + 1;
      true
    end
    else false
  in
  List.iter
    (fun (_, a, b) ->
      match (cluster_of.(a), cluster_of.(b)) with
      | -1, -1 ->
          if !next_group < groups then begin
            let g = !next_group in
            incr next_group;
            if place a g then ignore (place b g)
          end
      | g, -1 -> ignore (place b g)
      | -1, g -> ignore (place a g)
      | _, _ -> ())
    pairs;
  Array.iteri
    (fun i g ->
      if g = -1 then begin
        (* emptiest group takes the orphan *)
        let best = ref 0 in
        Array.iteri (fun j c -> if c < count.(!best) then best := j) count;
        cluster_of.(i) <- !best;
        count.(!best) <- count.(!best) + 1
      end)
    cluster_of;
  cluster_of

let assign ~threads ~cores ~cores_per_chip ~similarity =
  if cores <= 0 || cores_per_chip <= 0 then invalid_arg "Clustered_sched.assign";
  let chips = max 1 (cores / cores_per_chip) in
  let cluster_of = clusters ~threads ~groups:chips ~similarity in
  (* Within a chip, spread a cluster's threads across its cores. *)
  let next_slot = Array.make chips 0 in
  Array.map
    (fun chip ->
      let slot = next_slot.(chip) in
      next_slot.(chip) <- slot + 1;
      (chip * cores_per_chip) + (slot mod cores_per_chip))
    cluster_of
