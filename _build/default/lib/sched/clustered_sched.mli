(** Thread clustering (Tam et al., EuroSys 2007; paper Section 7):
    greedily group threads with similar working sets and place each group
    on one chip, so they share that chip's cache.

    Included as the comparator for experiment E12: on the directory-lookup
    workload every thread shares every directory, the similarity matrix is
    flat, and clustering degenerates to balanced round-robin — "thread
    clustering will not improve performance since all threads look up
    files in the same directories" (Section 2). *)

include Sched_intf.PLACEMENT

val clusters :
  threads:int ->
  groups:int ->
  similarity:(int -> int -> float) ->
  int array
(** The grouping step alone: greedy agglomerative assignment of [threads]
    into [groups] balanced clusters, highest-similarity pairs first.
    Returns each thread's cluster id. Exposed for tests. *)
