(** The traditional scheduler: keep every core busy with a thread;
    round-robin placement, ignoring working sets. This is the paper's
    "without CoreTime" configuration. *)

include Sched_intf.PLACEMENT
