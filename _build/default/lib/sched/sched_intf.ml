(** Thread-placement strategies — the traditional side of the comparison.

    A placement maps each thread to the core it should run on, given how
    similar the threads' working sets are. This is the whole design space
    of the schedulers in the paper's Section 7 (thread clustering and
    friends): they choose where {e threads} go and let the caches follow,
    whereas the O2 scheduler chooses where {e objects} go and moves the
    threads. *)

module type PLACEMENT = sig
  val name : string

  val assign :
    threads:int ->
    cores:int ->
    cores_per_chip:int ->
    similarity:(int -> int -> float) ->
    int array
  (** [assign ~threads ~cores ~cores_per_chip ~similarity] returns, for
      each thread, the core it is placed on. [similarity a b] is in
      [0, 1]: how much of threads [a] and [b]'s working sets overlap. *)
end
