(** A B+-tree index over simulated memory: the other server-side data
    structure the paper's introduction gestures at (index lookups whose
    working set dwarfs a single cache).

    Every node is one simulated-memory extent registered as a CoreTime
    object; lookups descend from the root reading each node's search path
    and bracket the leaf access with [ct_start]/[ct_end]. Internal nodes
    are read-only after {!bulk_load} and very hot, so they exercise the
    Section 6.2 replicate-vs-schedule tradeoff: partitioning the root
    serialises every lookup through one core, replication lets each core
    keep its own copy. *)

type t

val create :
  Coretime.t -> ?pid:int -> name:string -> fanout:int -> unit -> t
(** [fanout] keys per node (node size = 16 bytes per slot).
    @raise Invalid_argument if [fanout < 4]. *)

val bulk_load : t -> keys:int array -> value_of:(int -> int) -> unit
(** Build the tree host-side from sorted distinct keys (leaves ~70% full,
    standard bulk load). Must be called once, before any operation.
    @raise Invalid_argument if keys are unsorted/duplicated or the tree
    was already loaded. *)

val lookup : t -> int -> int option
(** Simulated point lookup (call inside a thread): reads each internal
    node's binary-search path, then performs an annotated leaf search. *)

val insert : t -> key:int -> value:int -> bool
(** Simulated upsert: annotated write on the leaf. Returns false when the
    leaf is full (this store does not split at run time; size the tree
    with bulk-load slack instead). *)

val height : t -> int
val node_count : t -> int
val leaf_count : t -> int
val key_count : t -> int
val mem_bytes : t -> int
val root_addr : t -> int

val check : t -> (unit, string) result
(** Structural invariants: keys sorted within nodes, separators bound the
    subtrees, all leaves at the same depth, counts consistent. *)
