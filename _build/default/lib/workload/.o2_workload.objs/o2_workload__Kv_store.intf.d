lib/workload/kv_store.mli: Coretime
