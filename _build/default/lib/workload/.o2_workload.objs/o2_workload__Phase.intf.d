lib/workload/phase.mli: Dir_workload O2_runtime
