lib/workload/dir_workload.ml: Array Coretime Dist Fat Fat_name Fat_types Fun Hashtbl O2_fs O2_runtime O2_simcore Printf Rng
