lib/workload/dir_workload.mli: Coretime O2_fs O2_runtime Rng
