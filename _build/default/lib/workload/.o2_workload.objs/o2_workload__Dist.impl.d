lib/workload/dist.ml: Array Printf Rng
