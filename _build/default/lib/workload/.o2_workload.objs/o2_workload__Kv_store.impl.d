lib/workload/kv_store.ml: Api Array Coretime Engine O2_runtime O2_simcore Printf Spinlock
