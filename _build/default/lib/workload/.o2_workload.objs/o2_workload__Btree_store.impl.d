lib/workload/btree_store.ml: Api Array Coretime Engine Format List O2_runtime O2_simcore Option Printf Spinlock String
