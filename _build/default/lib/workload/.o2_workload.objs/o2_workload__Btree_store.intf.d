lib/workload/btree_store.mli: Coretime
