lib/workload/phase.ml: Dir_workload O2_runtime
