lib/workload/rng.mli:
