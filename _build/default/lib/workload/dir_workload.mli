(** The paper's directory-lookup benchmark (Figures 1 and 3): threads — one
    per core — repeatedly look up a randomly chosen file in a randomly
    chosen directory of an in-memory FAT volume. Each directory is a
    CoreTime object; each lookup is an annotated, per-directory-locked
    operation.

    The active set is the first [active ()] directories, so an oscillating
    popularity phase (Figure 4(b)) just shrinks the prefix. *)

type spec = {
  dirs : int;
  entries_per_dir : int;  (** The paper uses 1000 (32 bytes each). *)
  cluster_bytes : int;
  compare_cycles : int;  (** Per-entry compare cost in the scan loop. *)
  think_cycles : int;  (** Non-memory work per iteration. *)
  dir_dist : [ `Uniform | `Zipf of float ];
  shuffle_popularity : bool;
      (** Decorrelate popularity rank from directory index (and hence
          from registration/packing order) with a seeded permutation. *)
  use_locks : bool;
      (** Bracket each lookup with the per-directory spin lock (the
          paper's setup). Read-only ablations can turn locks off. *)
  seed : int;
}

val default_spec : spec
(** 64 directories x 1000 entries, 4 KB clusters, uniform popularity. *)

val data_kb : spec -> int
(** Total directory-content size in KB — the x-axis of Figure 4. *)

val spec_for_data_kb :
  ?entries_per_dir:int -> ?seed:int -> kb:int -> unit -> spec
(** The spec whose directory count best approximates [kb] of directory
    content (at least 1 directory). *)

type t

val build : Coretime.t -> spec -> t
(** Format and populate the volume, register every directory as a CoreTime
    object (identified by its first cluster's address, sized by its
    cluster chain). Host-side; costs nothing. *)

val fs : t -> O2_fs.Fat.t
val spec : t -> spec
val directory : t -> int -> O2_fs.Fat.dir
val dir_object : t -> int -> Coretime.Object_table.obj

val rotate_popularity : t -> by:int -> unit
(** Shift the popularity-rank-to-directory mapping by [by] positions:
    yesterday's hot directories cool off and others heat up (popularity
    drift, for the replacement-policy experiments). *)

val active : t -> int
val set_active : t -> int -> unit
(** Restrict lookups to the first [n] directories (clamped to [1, dirs]).
    Takes effect on each thread's next iteration. *)

val spawn_threads : t -> unit
(** One looping lookup thread per core, as in Figure 1's [main]. *)

val spawn_thread : t -> core:int -> O2_runtime.Thread.t
(** A single worker (used by examples and tests). *)

val spawn_threads_placed : t -> int array -> unit
(** One worker per entry, placed on the given cores (a thread-placement
    scheduler's output). *)

val lookups_done : t -> int
(** Successful resolutions completed so far (sums per-core op counters). *)

val one_lookup : t -> Rng.t -> bool
(** Perform a single annotated lookup from inside an existing simulated
    thread; returns whether the name resolved (it always should). *)
