type kind =
  | Uniform
  | Zipf of { s : float; cdf : float array }
  | Fixed of int

type t = { n_ : int; kind : kind }

let uniform n =
  if n <= 0 then invalid_arg "Dist.uniform: n must be positive";
  { n_ = n; kind = Uniform }

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  if s < 0.0 then invalid_arg "Dist.zipf: s must be non-negative";
  let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { n_ = n; kind = Zipf { s; cdf } }

let fixed v =
  if v < 0 then invalid_arg "Dist.fixed: negative value";
  { n_ = v + 1; kind = Fixed v }

let n t = t.n_

let sample t rng =
  match t.kind with
  | Uniform -> Rng.int rng ~bound:t.n_
  | Fixed v -> v
  | Zipf { cdf; _ } ->
      let u = Rng.float rng in
      (* first index with cdf.(i) >= u *)
      let lo = ref 0 and hi = ref (Array.length cdf - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cdf.(mid) >= u then hi := mid else lo := mid + 1
      done;
      !lo

let pmf t i =
  if i < 0 || i >= t.n_ then 0.0
  else
    match t.kind with
    | Uniform -> 1.0 /. float_of_int t.n_
    | Fixed v -> if i = v then 1.0 else 0.0
    | Zipf { cdf; _ } -> if i = 0 then cdf.(0) else cdf.(i) -. cdf.(i - 1)

let describe t =
  match t.kind with
  | Uniform -> Printf.sprintf "uniform(%d)" t.n_
  | Fixed v -> Printf.sprintf "fixed(%d)" v
  | Zipf { s; _ } -> Printf.sprintf "zipf(n=%d, s=%.2f)" t.n_ s
