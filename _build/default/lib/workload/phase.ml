let square_wave engine ~period ~on_phase =
  if period <= 0 then invalid_arg "Phase.square_wave: period must be positive";
  let phase = ref `High in
  O2_runtime.Engine.every engine ~period (fun ~now:_ ->
      phase := (match !phase with `High -> `Low | `Low -> `High);
      on_phase !phase)

let oscillate_active engine w ~period ~divisor =
  if divisor <= 0 then invalid_arg "Phase.oscillate_active: divisor";
  let full = Dir_workload.spec w |> fun s -> s.Dir_workload.dirs in
  square_wave engine ~period ~on_phase:(function
    | `High -> Dir_workload.set_active w full
    | `Low -> Dir_workload.set_active w (max 1 (full / divisor)))
