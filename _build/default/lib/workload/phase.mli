(** Workload phase control: time-varying popularity, driving Figure 4(b)'s
    oscillation and the rebalancer tests. *)

val square_wave :
  O2_runtime.Engine.t ->
  period:int ->
  on_phase:([ `High | `Low ] -> unit) ->
  unit
(** Starting in [`High], flip the phase every [period] cycles (calls
    [on_phase] at each flip, not at time 0). *)

val oscillate_active :
  O2_runtime.Engine.t -> Dir_workload.t -> period:int -> divisor:int -> unit
(** Figure 4(b): every [period] cycles, the number of directories accessed
    alternates between the full set and [dirs / divisor] (paper: a
    sixteenth). *)
