(** Discrete popularity distributions over [0, n). *)

type t

val uniform : int -> t
(** @raise Invalid_argument if [n <= 0]. *)

val zipf : n:int -> s:float -> t
(** Zipf with exponent [s] over ranks 1..n (rank 0 is most popular).
    @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val fixed : int -> t
(** Always the same value (for tests). *)

val n : t -> int
val sample : t -> Rng.t -> int
val pmf : t -> int -> float
(** Probability of value [i]. *)

val describe : t -> string
