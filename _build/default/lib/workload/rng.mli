(** Deterministic pseudo-random numbers (splitmix64). All workload
    randomness flows through explicit states seeded by the experiment, so
    every run is reproducible bit for bit. *)

type t

val create : seed:int -> t
val split : t -> t
(** An independent stream derived from this one (advances this state). *)

val next : t -> int64
val int : t -> bound:int -> int
(** Uniform in [0, bound). @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)
