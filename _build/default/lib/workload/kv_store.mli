(** A small in-simulated-memory hash table with per-bucket locks and
    CoreTime annotations: the kind of server-side object store the paper's
    introduction motivates (web-server working sets). Each bucket is a
    CoreTime object; each get/put is an operation.

    Data lives host-side (OCaml arrays); the simulated address range of
    each bucket is what operations read and write for cost. *)

type t

val create :
  Coretime.t ->
  ?pid:int ->
  name:string ->
  buckets:int ->
  slots_per_bucket:int ->
  unit ->
  t
(** Allocates [buckets] bucket extents and registers each as a CoreTime
    object owned by [pid]. *)

val buckets : t -> int
val bucket_of_key : t -> int -> int
val bucket_addr : t -> int -> int

val put : t -> key:int -> value:int -> bool
(** Insert or update from inside a simulated thread (annotated write
    operation). Returns false when the bucket is full. *)

val get : t -> key:int -> int option
(** Annotated read operation. *)

val delete : t -> key:int -> bool
val size : t -> int
(** Live keys (host-side). *)

val mem_bytes : t -> int
(** Total simulated bytes across buckets. *)
