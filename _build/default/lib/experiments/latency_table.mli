(** Validation of the machine model against the paper's Section 5 hardware
    description: L1/L2/L3 hit latencies (3 / 14 / 75 cycles), remote
    fetches from 127 cycles (cache of a core on the same chip) to 336
    cycles (most distant DRAM bank), and the 2000-cycle thread migration.

    Each row places a line at a precise location and measures one access;
    the migration row measures a round trip through the runtime. *)

type probe = {
  label : string;
  paper_cycles : int option;  (** What Section 5 reports, when it does. *)
  measured_cycles : int;
}

val probes : unit -> probe list
val migration_probe : unit -> probe
val all : unit -> probe list
val print : Format.formatter -> unit

val max_deviation : unit -> float
(** Largest relative |measured - paper| / paper over probes with a paper
    value; the test suite asserts this is small. *)
