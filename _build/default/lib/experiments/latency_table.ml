open O2_simcore

type probe = {
  label : string;
  paper_cycles : int option;
  measured_cycles : int;
}

(* One measured load on core 0 of a line previously placed at a chosen
   location. A fresh machine per probe keeps state exact. *)
let measure_read ~place =
  let machine = Machine.create Config.amd16 in
  let mem = Machine.memory machine in
  let ext = Memsys.alloc mem ~name:"probe" ~size:64 in
  let addr = ext.Memsys.base in
  place machine ~addr;
  Machine.read machine ~core:0 ~now:0 ~addr ~len:8

(* An uncached load from a DRAM bank the requested number of hops away
   from core 0's chip (pages interleave across banks, so hunt for one). *)
let measure_dram ~hops_wanted =
  let machine = Machine.create Config.amd16 in
  let mem = Machine.memory machine in
  let topo = Machine.topology machine in
  let rec hunt () =
    let ext = Memsys.alloc mem ~name:"probe" ~size:64 in
    let addr = ext.Memsys.base in
    if Topology.hops topo 0 (Topology.home_chip topo ~addr) = hops_wanted then
      addr
    else hunt ()
  in
  let addr = hunt () in
  Machine.read machine ~core:0 ~now:0 ~addr ~len:8

let probes () =
  [
      {
        label = "L1 hit";
        paper_cycles = Some 3;
        measured_cycles =
          measure_read ~place:(fun m ~addr ->
              Machine.place m ~core:0 ~addr ~l1:true ~l2:true ~l3:false);
      };
      {
        label = "L2 hit";
        paper_cycles = Some 14;
        measured_cycles =
          measure_read ~place:(fun m ~addr ->
              Machine.place m ~core:0 ~addr ~l1:false ~l2:true ~l3:false);
      };
      {
        label = "L3 hit (same chip)";
        paper_cycles = Some 75;
        measured_cycles =
          measure_read ~place:(fun m ~addr ->
              Machine.place m ~core:0 ~addr ~l1:false ~l2:false ~l3:true);
      };
      {
        label = "remote cache, same chip";
        paper_cycles = Some 127;
        measured_cycles =
          measure_read ~place:(fun m ~addr ->
              Machine.place m ~core:1 ~addr ~l1:false ~l2:true ~l3:false);
      };
      {
        label = "remote cache, 1 hop";
        paper_cycles = None;
        measured_cycles =
          measure_read ~place:(fun m ~addr ->
              (* core on an adjacent chip *)
              Machine.place m ~core:4 ~addr ~l1:false ~l2:true ~l3:false);
      };
      {
        label = "remote cache, 2 hops";
        paper_cycles = None;
        measured_cycles =
          measure_read ~place:(fun m ~addr ->
              Machine.place m ~core:12 ~addr ~l1:false ~l2:true ~l3:false);
      };
      {
        label = "DRAM, local bank";
        paper_cycles = None;
        measured_cycles = measure_dram ~hops_wanted:0;
      };
      {
        label = "DRAM, most distant bank";
        paper_cycles = Some 336;
        measured_cycles = measure_dram ~hops_wanted:2;
      };
    ]

let migration_probe () =
  let machine = Machine.create Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let cost = ref 0 in
  ignore
    (O2_runtime.Engine.spawn engine ~core:0 ~name:"migration-probe" (fun () ->
         let t0 = O2_runtime.Api.now () in
         O2_runtime.Api.migrate_to 1;
         let t1 = O2_runtime.Api.now () in
         cost := t1 - t0));
  O2_runtime.Engine.run engine;
  { label = "thread migration"; paper_cycles = Some 2000; measured_cycles = !cost }

let all () = probes () @ [ migration_probe () ]

let print ppf =
  let open O2_stats in
  Format.fprintf ppf
    "@.=== Section 5 hardware latencies: paper vs simulated machine ===@.@.";
  let t =
    Table.create
      ~columns:
        [
          ("access", Table.Left);
          ("paper (cycles)", Table.Right);
          ("measured (cycles)", Table.Right);
        ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.label;
          (match p.paper_cycles with Some c -> string_of_int c | None -> "-");
          string_of_int p.measured_cycles;
        ])
    (all ());
  Format.pp_print_string ppf (Table.render t)

let max_deviation () =
  List.fold_left
    (fun acc p ->
      match p.paper_cycles with
      | Some paper when paper > 0 ->
          let d =
            abs_float
              (float_of_int (p.measured_cycles - paper) /. float_of_int paper)
          in
          max acc d
      | Some _ | None -> acc)
    0.0 (all ())
