(** E14 — a second workload: point lookups in a B+-tree index larger than
    any single cache (the index-server shape of the paper's introduction).

    Exercises two CoreTime behaviours the directory benchmark cannot:
    the root and upper internal nodes are {e scorching-hot read-only}
    objects (every lookup touches them), so scheduling them onto one core
    serialises the machine — the replicate-read-only policy (Section 6.2)
    must leave them to the hardware; and leaves are small objects packed
    many-per-core. *)

val run : quick:bool -> Format.formatter -> unit
