open O2_simcore
open O2_workload
open O2_stats

(* Section 6.1: "On the AMD system, CoreTime improves the performance of
   workloads whose bottleneck is reading large objects." A B+-tree lookup
   is the opposite extreme: each operation touches a handful of lines of
   one 4 KB leaf, so a 2000-cycle thread migration dwarfs the work being
   moved. This experiment measures that scoping claim — and shows
   hardware active messages (cheap operation shipping) recovering it. *)

let keys n = Array.init n (fun i -> (i * 7) + 3)

let run_one ~policy ~nkeys ~fanout ~warmup ~measure =
  let machine = Machine.create Config.amd16 in
  let engine = O2_runtime.Engine.create machine in
  let ct = Coretime.create ~policy engine () in
  let tree = Btree_store.create ct ~name:"idx" ~fanout () in
  Btree_store.bulk_load tree ~keys:(keys nkeys) ~value_of:(fun k -> k lxor 0xFF);
  let key_dist = Dist.zipf ~n:nkeys ~s:0.9 in
  for core = 0 to O2_runtime.Engine.cores engine - 1 do
    let rng = Rng.create ~seed:(500 + core) in
    ignore
      (O2_runtime.Engine.spawn engine ~core
         ~name:(Printf.sprintf "client%d" core)
         (fun () ->
           while true do
             let rank = Dist.sample key_dist rng in
             ignore (Btree_store.lookup tree ((rank * 7) + 3));
             O2_runtime.Api.compute 80
           done))
  done;
  O2_runtime.Engine.run ~until:warmup engine;
  let counters = Machine.all_counters machine in
  let ops0 =
    Array.fold_left (fun a c -> a + c.Counters.ops_completed) 0 counters
  in
  O2_runtime.Engine.run ~until:(warmup + measure) engine;
  let ops =
    Array.fold_left (fun a c -> a + c.Counters.ops_completed) 0 counters - ops0
  in
  let seconds = float_of_int measure /. (Config.amd16.Config.ghz *. 1e9) in
  ( float_of_int ops /. seconds /. 1000.0,
    (Coretime.stats ct).Coretime.op_migrations,
    Coretime.Object_table.assigned_count (Coretime.table ct),
    tree )

let run ~quick ppf =
  Format.fprintf ppf
    "@.=== E14: B+-tree index lookups (fine-grained operations) ===@.@.";
  let nkeys = if quick then 1_000_000 else 2_000_000 in
  let fanout = 256 in
  let warmup = Harness.scaled ~quick 80_000_000 in
  let measure = Harness.scaled ~quick 40_000_000 in
  (* a leaf search touches ~10 lines, so "expensive to fetch" means a few
     misses per operation, not the directory benchmark's dozens *)
  let tuned =
    { Coretime.Policy.default with Coretime.Policy.promote_threshold = 3.0 }
  in
  let kres, _, _, tree =
    run_one ~policy:Coretime.Policy.baseline ~nkeys ~fanout ~warmup ~measure
  in
  Format.fprintf ppf
    "index: %d keys, fanout %d, %d nodes (%d leaves, height %d), %d MB \
     against 16 MB of cache; zipf(0.9) keys@.@."
    (Btree_store.key_count tree)
    fanout
    (Btree_store.node_count tree)
    (Btree_store.leaf_count tree)
    (Btree_store.height tree)
    (Btree_store.mem_bytes tree / 1024 / 1024);
  let t =
    Table.create
      ~columns:
        [
          ("policy", Table.Left);
          ("lookups (k/s)", Table.Right);
          ("migrations", Table.Right);
          ("leaves scheduled", Table.Right);
        ]
  in
  let add name (kres, migs, assigned) =
    Table.add_row t
      [
        name;
        Printf.sprintf "%.0f" kres;
        string_of_int migs;
        string_of_int assigned;
      ]
  in
  add "hardware-managed (baseline)" (kres, 0, 0);
  let p_kres, p_migs, p_assigned, _ =
    run_one ~policy:tuned ~nkeys ~fanout ~warmup ~measure
  in
  add "CoreTime, thread migration" (p_kres, p_migs, p_assigned);
  let s_kres, s_migs, s_assigned, _ =
    run_one
      ~policy:{ tuned with Coretime.Policy.op_shipping = true }
      ~nkeys ~fanout ~warmup ~measure
  in
  add "CoreTime, active messages" (s_kres, s_migs, s_assigned);
  Format.pp_print_string ppf (Table.render t);
  Format.fprintf ppf
    "each lookup reads a few lines of one leaf — far less than a \
     2000-cycle thread migration moves, so classic CoreTime loses badly \
     here (the Section 6.1 scoping claim, measured); shipping operations \
     by active message (~%d cycles) recovers it.@."
    (Config.amsg_cycles Config.amd16)
