lib/experiments/fig2.mli: Coretime Format
