lib/experiments/figure4.ml: Ascii_plot Coretime Dir_workload Format Harness List O2_stats O2_workload Printf Series Table
