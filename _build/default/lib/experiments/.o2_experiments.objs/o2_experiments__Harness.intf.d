lib/experiments/harness.mli: Coretime O2_simcore O2_stats O2_workload
