lib/experiments/figure4.mli: Format Harness O2_stats
