lib/experiments/btree_exp.ml: Array Btree_store Config Coretime Counters Dist Format Harness Machine O2_runtime O2_simcore O2_stats O2_workload Printf Rng Table
