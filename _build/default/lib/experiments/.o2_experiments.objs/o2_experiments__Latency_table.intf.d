lib/experiments/latency_table.mli: Format
