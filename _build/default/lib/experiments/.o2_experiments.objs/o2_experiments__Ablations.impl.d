lib/experiments/ablations.ml: Config Coretime Dir_workload Figure4 Format Harness List Machine O2_fs O2_runtime O2_sched O2_simcore O2_stats O2_workload Printf Rng Table
