lib/experiments/harness.ml: Array Buffer Config Coretime Counters Dir_workload List Machine O2_runtime O2_simcore O2_stats O2_workload Phase Printf Series Summary
