lib/experiments/btree_exp.mli: Format
