lib/experiments/latency_table.ml: Config Format List Machine Memsys O2_runtime O2_simcore O2_stats Table Topology
