lib/experiments/registry.ml: Ablations Btree_exp Fig2 Figure4 Format Future_multicore Latency_table List Option Printf String
