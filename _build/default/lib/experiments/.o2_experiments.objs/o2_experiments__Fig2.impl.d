lib/experiments/fig2.ml: Cache Config Coretime Dir_workload Format List Machine O2_fs O2_runtime O2_simcore O2_workload Printf String
