lib/experiments/future_multicore.ml: Config Coretime Dir_workload Format Harness List O2_simcore O2_stats O2_workload Printf Summary Table
