lib/experiments/future_multicore.mli: Format
