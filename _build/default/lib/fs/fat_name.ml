let bad_chars = "\"*+,/:;<=>?[\\]| "

let valid_char c =
  let code = Char.code c in
  code > 0x20 && code < 0x7F && not (String.contains bad_chars c)

let to_83 name =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  match String.index_opt name '.' with
  | Some 0 -> fail "name starts with a dot: %S" name
  | _ when name = "" -> fail "empty name"
  | idx -> (
      let base, ext =
        match idx with
        | None -> (name, "")
        | Some i ->
            (String.sub name 0 i, String.sub name (i + 1) (String.length name - i - 1))
      in
      if String.contains ext '.' then fail "multiple dots: %S" name
      else if base = "" || String.length base > 8 then
        fail "base part must be 1..8 chars: %S" name
      else if String.length ext > 3 then fail "extension over 3 chars: %S" name
      else
        let up = String.uppercase_ascii in
        let base = up base and ext = up ext in
        match String.for_all valid_char base && String.for_all valid_char ext with
        | false -> fail "invalid character in %S" name
        | true ->
            let pad s n = s ^ String.make (n - String.length s) ' ' in
            Ok (pad base 8 ^ pad ext 3))

let to_83_exn name =
  match to_83 name with Ok s -> s | Error e -> invalid_arg ("Fat_name: " ^ e)

let of_83 s =
  if String.length s <> 11 then invalid_arg "Fat_name.of_83: not 11 bytes";
  let strip part = String.trim part in
  let base = strip (String.sub s 0 8) and ext = strip (String.sub s 8 3) in
  let low = String.lowercase_ascii in
  if ext = "" then low base else low base ^ "." ^ low ext

let equal a b =
  match (to_83 a, to_83 b) with Ok x, Ok y -> x = y | _ -> false

let valid name = Result.is_ok (to_83 name)
