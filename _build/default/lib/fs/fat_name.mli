(** 8.3 short-name handling: conversion between user names like
    ["file0042.txt"] and the 11-byte space-padded uppercase form stored in
    directory entries (["FILE0042TXT"]). *)

val to_83 : string -> (string, string) result
(** Encode; [Error] explains why the name is not a valid 8.3 name
    (empty, too long, bad characters, multiple dots...). *)

val to_83_exn : string -> string
val of_83 : string -> string
(** Decode a padded 11-byte form back to ["name.ext"] (lowercased). *)

val equal : string -> string -> bool
(** Case-insensitive comparison of two user names via their 8.3 forms;
    false if either is invalid. *)

val valid : string -> bool
