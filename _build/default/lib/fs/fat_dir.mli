(** Directory-entry operations over a cluster chain: the linear 32-byte
    entry scan at the heart of the paper's benchmark.

    Host-side functions ({!find}, {!add}, {!list}, ...) manipulate the
    image directly and cost nothing; {!lookup_sim} performs the same scan
    from inside a simulated thread, charging memory reads for every FAT
    link followed and every entry examined plus a per-entry compare cost —
    the "higher-performance inner loop for file name lookup" of Section 5. *)

val entries_per_cluster : Fat_image.t -> int

val find : Fat_image.t -> head:int -> name83:string -> Fat_types.entry option
(** Host-side linear scan; stops at the end-of-directory marker. *)

val add : Fat_image.t -> head:int -> Fat_types.entry -> (unit, string) result
(** Write an entry into the first free slot (deleted or end), extending
    the chain with a fresh cluster when full. Fails when the volume is
    full or the entry name duplicates an existing one. *)

val append_bulk :
  Fat_image.t -> head:int -> Fat_types.entry list -> (unit, string) result
(** Append entries in order without duplicate checks, extending the chain
    as needed: O(chain + entries) where {!add} is O(chain) per entry. The
    caller guarantees the names are fresh (directory population). *)

val remove : Fat_image.t -> head:int -> name83:string -> bool
(** Mark an entry deleted; false when absent. *)

val list : Fat_image.t -> head:int -> Fat_types.entry list
(** Live entries, in directory order. *)

val count : Fat_image.t -> head:int -> int

val lookup_sim :
  Fat_image.t ->
  head:int ->
  name83:string ->
  compare_cycles:int ->
  Fat_types.entry option
(** The simulated scan: must run inside an {!O2_runtime.Engine.spawn}ed
    thread. Reads exactly the bytes a real scan would touch before
    matching (or before hitting the end marker) and charges
    [compare_cycles] of compute per entry examined. *)
