(** The public file-system API: a formatted in-memory FAT volume with
    per-directory spin locks, as used by the paper's benchmark (Section 5:
    EFSL modified to an in-memory image, no buffer cache, per-directory
    locks, fast name-lookup inner loop).

    Directories are handles; each carries its own {!O2_runtime.Spinlock.t}.
    Structure-changing operations ([mkdir], [add_file], [remove]) are
    host-side setup operations; {!lookup} and {!lookup_locked} are the
    simulated hot path executed by workload threads. *)

type t

type dir = {
  dname : string;
  head : int;  (** First cluster of the entry chain. *)
  lock : O2_runtime.Spinlock.t;
}

val format :
  O2_simcore.Memsys.t ->
  label:string ->
  ?cluster_bytes:int ->
  clusters:int ->
  unit ->
  t
(** Make a fresh volume. [cluster_bytes] defaults to 4096. *)

val image : t -> Fat_image.t
val root : t -> dir

val mkdir : t -> string -> (dir, string) result
(** Create a directory under the root and return its handle. *)

val mkdir_in : t -> dir -> string -> (dir, string) result
(** Create a subdirectory of an existing directory; its handle is
    registered under its full path (e.g. ["/www/static"]). *)

val mkdir_path : t -> string -> (dir, string) result
(** Create every missing component of an absolute path
    (["/a/b/c"]) and return the final directory. *)

val find_dir : t -> string -> dir option
(** Handle of a directory previously created with {!mkdir} /
    {!mkdir_in}: accepts a root-level name (["www"]) or a full path
    (["/www/static"]). *)

val parent : t -> dir -> dir option
(** The directory containing [dir]; [None] for the root. *)

val resolve : t -> string -> [ `Dir of dir | `File of Fat_types.entry ] option
(** Host-side path resolution from the root; ["."] and [".."] components
    are supported. Cost-free. *)

val resolve_sim :
  t -> ?locked:bool -> string -> [ `Dir of dir | `File of Fat_types.entry ] option
(** Simulated path resolution: scans each component's directory from
    inside a thread, optionally taking each directory's lock. *)

val dirs : t -> dir list
(** All directories created with {!mkdir}, in creation order. *)

val add_file : t -> dir -> name:string -> size:int -> (unit, string) result
(** Create a file entry (no data clusters are allocated: the benchmark
    only resolves names). *)

val populate :
  t -> dir -> prefix:string -> count:int -> (unit, string) result
(** Add [count] files named [<prefix><i>.dat]; the benchmark's 1000
    entries per directory. *)

val lookup : t -> dir -> string -> Fat_types.entry option
(** Simulated name resolution (call inside a thread; caller holds the
    directory lock if racing with other threads). *)

val lookup_locked : t -> dir -> string -> Fat_types.entry option
(** {!lookup} bracketed by the directory's spin lock — the paper's
    benchmark operation. *)

val lookup_host : t -> dir -> string -> Fat_types.entry option
(** Cost-free host-side resolution, for tests and setup. *)

val lookup_83 : t -> dir -> string -> Fat_types.entry option
(** {!lookup} taking an already-encoded 11-byte 8.3 name (hot loops
    precompute these). *)

val lookup_locked_83 : t -> dir -> string -> Fat_types.entry option

val readdir : t -> dir -> Fat_types.entry list
val remove : t -> dir -> string -> bool

val dir_base_addr : t -> dir -> int
(** Simulated address of the directory's first cluster: the object
    identity passed to [ct_start], as in the paper's Figure 3. *)

val dir_bytes : t -> dir -> int
(** Bytes of cluster data the directory occupies (its object size). *)

val dir_clusters : t -> dir -> int list

val compare_cycles : t -> int
(** Per-entry name-compare cost charged by {!lookup} (default 2). *)

val set_compare_cycles : t -> int -> unit
