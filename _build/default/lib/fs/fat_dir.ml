let entries_per_cluster img =
  Fat_image.cluster_bytes img / Fat_types.entry_bytes

(* Scan one cluster host-side. Returns how many slots were examined and
   what stopped the scan. *)
type cluster_scan =
  | Found of Fat_types.entry * int  (* slots examined including the hit *)
  | End_of_dir of int  (* slots examined including the end marker *)
  | Cluster_done

let scan_cluster img cluster ~name83 =
  let buf = Fat_image.buf img in
  let base = Fat_image.cluster_off img cluster in
  let per = entries_per_cluster img in
  let rec go i =
    if i >= per then Cluster_done
    else begin
      let off = base + (i * Fat_types.entry_bytes) in
      if Fat_types.is_end buf ~off then End_of_dir (i + 1)
      else if Fat_types.is_deleted buf ~off then go (i + 1)
      else begin
        let e = Fat_types.decode_entry buf ~off in
        if e.Fat_types.name = name83 then Found (e, i + 1) else go (i + 1)
      end
    end
  in
  go 0

let find img ~head ~name83 =
  let rec walk = function
    | [] -> None
    | cluster :: rest -> (
        match scan_cluster img cluster ~name83 with
        | Found (e, _) -> Some e
        | End_of_dir _ -> None
        | Cluster_done -> walk rest)
  in
  walk (Fat_image.chain img head)

let lookup_sim img ~head ~name83 ~compare_cycles =
  let open O2_runtime in
  let per = entries_per_cluster img in
  let charge cluster slots =
    ignore
      (Api.read
         ~addr:(Fat_image.cluster_addr img cluster)
         ~len:(slots * Fat_types.entry_bytes));
    Api.compute (slots * compare_cycles)
  in
  let rec walk = function
    | [] -> None
    | cluster :: rest -> (
        match scan_cluster img cluster ~name83 with
        | Found (e, slots) ->
            charge cluster slots;
            Some e
        | End_of_dir slots ->
            charge cluster slots;
            None
        | Cluster_done ->
            charge cluster per;
            if rest <> [] then
              (* Moving to the next cluster reads this one's FAT cell. *)
              ignore
                (Api.read ~addr:(Fat_image.fat_entry_addr img cluster) ~len:2);
            walk rest)
  in
  walk (Fat_image.chain img head)

let zero_cluster img cluster =
  Bytes.fill (Fat_image.buf img)
    (Fat_image.cluster_off img cluster)
    (Fat_image.cluster_bytes img) '\x00'

let add img ~head entry =
  if find img ~head ~name83:entry.Fat_types.name <> None then
    Error (Printf.sprintf "duplicate entry %S" entry.Fat_types.name)
  else begin
    let buf = Fat_image.buf img in
    let per = entries_per_cluster img in
    let write_at cluster slot =
      Fat_types.encode_entry entry buf
        ~off:(Fat_image.cluster_off img cluster + (slot * Fat_types.entry_bytes));
      Ok ()
    in
    (* First free slot: a deleted entry or the end marker. Writing over the
       end marker is safe because the rest of the cluster is zero. *)
    let rec scan_chain = function
      | [] -> assert false
      | [ last ] -> (
          match free_slot last with
          | Some slot -> write_at last slot
          | None -> (
              match Fat_image.alloc_cluster img ~prev:(Some last) with
              | None -> Error "volume full"
              | Some fresh ->
                  zero_cluster img fresh;
                  write_at fresh 0))
      | cluster :: rest -> (
          match free_slot cluster with
          | Some slot -> write_at cluster slot
          | None -> scan_chain rest)
    and free_slot cluster =
      let base = Fat_image.cluster_off img cluster in
      let rec go i =
        if i >= per then None
        else begin
          let off = base + (i * Fat_types.entry_bytes) in
          if Fat_types.is_end buf ~off || Fat_types.is_deleted buf ~off then
            Some i
          else go (i + 1)
        end
      in
      go 0
    in
    scan_chain (Fat_image.chain img head)
  end

let append_bulk img ~head entries =
  let buf = Fat_image.buf img in
  let per = entries_per_cluster img in
  (* Find the append point: last cluster of the chain and the index of its
     end marker (or the cluster's end). *)
  let chain = Fat_image.chain img head in
  let rec find_tail = function
    | [] -> assert false
    | [ last ] ->
        let base = Fat_image.cluster_off img last in
        let rec slot i =
          if i >= per then (last, per)
          else if Fat_types.is_end buf ~off:(base + (i * Fat_types.entry_bytes))
          then (last, i)
          else slot (i + 1)
        in
        slot 0
    | _ :: rest -> find_tail rest
  in
  let cluster, slot = find_tail chain in
  let rec go cluster slot = function
    | [] -> Ok ()
    | entry :: rest ->
        if slot >= per then begin
          match Fat_image.alloc_cluster img ~prev:(Some cluster) with
          | None -> Error "volume full"
          | Some fresh ->
              zero_cluster img fresh;
              go fresh 0 (entry :: rest)
        end
        else begin
          Fat_types.encode_entry entry buf
            ~off:
              (Fat_image.cluster_off img cluster
              + (slot * Fat_types.entry_bytes));
          go cluster (slot + 1) rest
        end
  in
  go cluster slot entries

let remove img ~head ~name83 =
  let buf = Fat_image.buf img in
  let per = entries_per_cluster img in
  let rec walk = function
    | [] -> false
    | cluster :: rest ->
        let base = Fat_image.cluster_off img cluster in
        let rec go i =
          if i >= per then walk rest
          else begin
            let off = base + (i * Fat_types.entry_bytes) in
            if Fat_types.is_end buf ~off then false
            else if
              (not (Fat_types.is_deleted buf ~off))
              && (Fat_types.decode_entry buf ~off).Fat_types.name = name83
            then begin
              Bytes.set buf off Fat_types.deleted_marker;
              true
            end
            else go (i + 1)
          end
        in
        go 0
  in
  walk (Fat_image.chain img head)

let list img ~head =
  let buf = Fat_image.buf img in
  let per = entries_per_cluster img in
  let rec walk acc = function
    | [] -> List.rev acc
    | cluster :: rest ->
        let base = Fat_image.cluster_off img cluster in
        let rec go acc i =
          if i >= per then walk acc rest
          else begin
            let off = base + (i * Fat_types.entry_bytes) in
            if Fat_types.is_end buf ~off then List.rev acc
            else if Fat_types.is_deleted buf ~off then go acc (i + 1)
            else go (Fat_types.decode_entry buf ~off :: acc) (i + 1)
          end
        in
        go acc 0
  in
  walk [] (Fat_image.chain img head)

let count img ~head = List.length (list img ~head)
