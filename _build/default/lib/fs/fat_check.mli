(** fsck-style consistency checker for a FAT volume; run by the test suite
    after every mutating scenario. *)

type report = {
  directories : int;
  files : int;
  clusters_used : int;
  problems : string list;
}

val check : Fat.t -> report
(** Walks the tree from the root verifying: boot-record magic and
    geometry; every FAT cell is free / end-of-chain / bad / a valid link;
    no cluster belongs to two chains; chains are acyclic; directory
    entries decode to valid 8.3 names with sane attributes; the image's
    free count matches the FAT. *)

val ok : report -> bool
val pp : Format.formatter -> report -> unit
