type report = {
  directories : int;
  files : int;
  clusters_used : int;
  problems : string list;
}

let ok r = r.problems = []

let check fs =
  let img = Fat.image fs in
  let buf = Fat_image.buf img in
  let problems = ref [] in
  let problem fmt =
    Format.kasprintf (fun s -> problems := s :: !problems) fmt
  in
  (* Boot record. *)
  if Bytes.sub_string buf 0 (String.length Fat_image.magic) <> Fat_image.magic
  then problem "bad magic";
  if Fat_types.get32 buf 8 <> Fat_image.cluster_bytes img then
    problem "boot record cluster size disagrees with image";
  if Fat_types.get32 buf 12 <> Fat_image.total_clusters img then
    problem "boot record cluster count disagrees with image";
  (* FAT cell sanity + used-cluster census. *)
  let first = Fat_image.first_cluster_no in
  let limit = first + Fat_image.total_clusters img in
  let used = ref 0 in
  let link_target_of = Hashtbl.create 256 in
  for c = first to limit - 1 do
    let v = Fat_image.fat_get img c in
    if v <> Fat_types.fat_free then incr used;
    if v <> Fat_types.fat_free && v <> Fat_types.fat_eoc && v <> Fat_types.fat_bad
    then begin
      if not (Fat_image.valid_cluster img v) then
        problem "cluster %d links to invalid cluster %d" c v
      else begin
        (match Hashtbl.find_opt link_target_of v with
        | Some prev -> problem "clusters %d and %d both link to %d" prev c v
        | None -> ());
        Hashtbl.replace link_target_of v c
      end
    end
  done;
  if !used <> Fat_image.total_clusters img - Fat_image.free_clusters img then
    problem "free count %d inconsistent with FAT census %d"
      (Fat_image.free_clusters img)
      !used;
  (* Walk the tree. *)
  let seen = Hashtbl.create 256 in
  let claim_chain owner head =
    match Fat_image.chain img head with
    | exception Failure msg -> problem "%s: %s" owner msg
    | clusters ->
        List.iter
          (fun c ->
            match Hashtbl.find_opt seen c with
            | Some other ->
                problem "cluster %d claimed by both %s and %s" c other owner
            | None -> Hashtbl.replace seen c owner)
          clusters
  in
  let ndirs = ref 0 and nfiles = ref 0 in
  let rec walk_dir name head =
    incr ndirs;
    claim_chain ("dir " ^ name) head;
    let entries =
      (* a corrupt chain was already reported by claim_chain; just skip *)
      match Fat_dir.list img ~head with
      | entries -> entries
      | exception Failure _ -> []
    in
    List.iter
      (fun e ->
        let ename = Fat_name.of_83 e.Fat_types.name in
        (* 8.3 names are printable ASCII padded with spaces. *)
        if
          String.exists
            (fun ch -> not (ch = ' ' || (Char.code ch > 0x20 && Char.code ch < 0x7F)))
            e.Fat_types.name
        then problem "dir %s: entry %S has an unprintable name" name ename;
        if e.Fat_types.attr land Fat_types.attr_directory <> 0 then begin
          if not (Fat_image.valid_cluster img e.Fat_types.first_cluster) then
            problem "dir %s: subdir %s has bad first cluster %d" name ename
              e.Fat_types.first_cluster
          else walk_dir ename e.Fat_types.first_cluster
        end
        else begin
          incr nfiles;
          if e.Fat_types.first_cluster <> 0 then
            claim_chain ("file " ^ ename) e.Fat_types.first_cluster
        end)
      entries
  in
  walk_dir "/" (Fat.root fs).Fat.head;
  {
    directories = !ndirs;
    files = !nfiles;
    clusters_used = !used;
    problems = List.rev !problems;
  }

let pp ppf r =
  Format.fprintf ppf "dirs=%d files=%d clusters=%d %s" r.directories r.files
    r.clusters_used
    (if ok r then "OK"
     else String.concat "; " r.problems)
