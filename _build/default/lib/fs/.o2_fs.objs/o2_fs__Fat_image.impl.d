lib/fs/fat_image.ml: Bytes Fat_types List O2_simcore Printf String
