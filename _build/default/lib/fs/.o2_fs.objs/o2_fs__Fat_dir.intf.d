lib/fs/fat_dir.mli: Fat_image Fat_types
