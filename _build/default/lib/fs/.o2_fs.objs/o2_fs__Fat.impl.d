lib/fs/fat.ml: Fat_dir Fat_image Fat_name Fat_types Hashtbl List O2_runtime O2_simcore Option Printf String
