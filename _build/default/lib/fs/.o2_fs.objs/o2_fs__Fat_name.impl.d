lib/fs/fat_name.ml: Char Format Result String
