lib/fs/fat_check.mli: Fat Format
