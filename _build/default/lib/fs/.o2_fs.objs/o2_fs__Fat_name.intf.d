lib/fs/fat_name.mli:
