lib/fs/fat.mli: Fat_image Fat_types O2_runtime O2_simcore
