lib/fs/fat_types.mli: Format
