lib/fs/fat_types.ml: Bytes Char Format String
