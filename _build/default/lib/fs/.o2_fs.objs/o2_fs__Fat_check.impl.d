lib/fs/fat_check.ml: Bytes Char Fat Fat_dir Fat_image Fat_name Fat_types Format Hashtbl List String
