lib/fs/fat_dir.ml: Api Bytes Fat_image Fat_types List O2_runtime Printf
