lib/fs/fat_image.mli: Bytes O2_simcore
